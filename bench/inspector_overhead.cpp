// Experiment E5 — quantifies the paper's Section 4 argument against runtime
// inspector/executor schemes: the inspection of the index array costs time on
// EVERY invocation, whereas the compile-time proof costs nothing at run time.
//
// The workload re-runs the Fig. 9 product kernel `invocations` times (as an
// iterative solver would); three strategies are compared:
//   static    — parallel, legality proven at compile time (this paper)
//   inspector — inspect rowptr monotonicity on every invocation, then parallel
//   serial    — no parallelization at all (what current compilers do)
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "kernels/pattern_kernels.h"
#include "runtime/inspector.h"
#include "support/text.h"

using namespace sspar;

int main(int argc, char** argv) {
  // Optional override so smoke runs (CI, bench_report.sh with a tiny
  // min-time) don't pay the full 50-invocation solver simulation.
  int invocations = 50;
  if (argc > 1) {
    int parsed = std::atoi(argv[1]);
    if (parsed > 0) invocations = parsed;
  }
  const int kInvocations = invocations;
  constexpr unsigned kThreads = 8;

  std::printf("Inspector/executor overhead vs compile-time proof (%d invocations, %u threads)\n\n",
              kInvocations, kThreads);
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"rows", "nnz", "serial[ms]", "static[ms]", "inspector[ms]",
                  "inspect share", "static speedup", "inspector speedup"});

  for (int64_t n : {20'000, 200'000, 1'000'000}) {
    auto kernel = kern::RowRangeProduct::random(n, 8, 7);
    std::vector<double> product(kernel.value.size(), 0.0);
    int64_t rows_count = static_cast<int64_t>(kernel.rowptr.size()) - 1;

    auto body = [&](int64_t, int64_t j) {
      product[static_cast<size_t>(j)] =
          kernel.value[static_cast<size_t>(j)] * kernel.vec[static_cast<size_t>(j)];
    };

    auto time = [&](auto&& fn) {
      auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kInvocations; ++i) fn();
      return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    };

    double serial = time([&] {
      for (int64_t r = 0; r < rows_count; ++r) {
        for (int64_t j = kernel.rowptr[static_cast<size_t>(r)];
             j < kernel.rowptr[static_cast<size_t>(r) + 1]; ++j) {
          body(r, j);
        }
      }
    });

    rt::ThreadPool pool(kThreads);
    double fixed = time([&] {
      pool.parallel_for(0, rows_count, [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          for (int64_t j = kernel.rowptr[static_cast<size_t>(r)];
               j < kernel.rowptr[static_cast<size_t>(r) + 1]; ++j) {
            body(r, j);
          }
        }
      });
    });

    rt::InspectorExecutor ie(pool);
    ie.reset_timing();
    double inspected = time([&] { ie.run_csr(kernel.rowptr, body); });

    rows.push_back({std::to_string(n), std::to_string(kernel.rowptr.back()),
                    support::format("%.1f", serial * 1e3),
                    support::format("%.1f", fixed * 1e3),
                    support::format("%.1f", inspected * 1e3),
                    support::format("%.0f%%", 100.0 * ie.inspection_seconds() / inspected),
                    support::format("%.2fx", serial / fixed),
                    support::format("%.2fx", serial / inspected)});
  }
  std::printf("%s\n", support::render_table(rows).c_str());
  std::printf("The compile-time approach keeps the full speedup; the inspector pays\n");
  std::printf("an O(n) scan per invocation (its share shrinks as row work grows).\n");
  return 0;
}
