// Experiment E1 — regenerates the paper's Fig. 1: the survey of subscripted
// subscript patterns across the NAS Parallel Benchmarks and SuiteSparse.
//
// For every corpus program the full pipeline runs (parse -> two-phase index
// array analysis -> extended Range Test) and the table reports how many loops
// use subscripted subscripts, how many of those are proven parallel, and the
// enabling properties — the per-program structure of the paper's figure.
// The paper's prose ratios (6/10 NPB, 4/8 SuiteSparse with patterns) are
// checked at the bottom.
#include <cstdio>

#include "corpus/analysis.h"
#include "support/text.h"

using namespace sspar;

int main() {
  std::printf("Fig. 1 — Analysis of subscripted subscript patterns\n");
  std::printf("(NAS Parallel Benchmarks v3.3.1 and SuiteSparse v5.4.0 corpus)\n\n");

  for (corpus::Suite suite : {corpus::Suite::NPB, corpus::Suite::SuiteSparse}) {
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"program", "loops", "subscripted", "parallel(ss)", "properties"});
    int with_pattern = 0, total = 0;
    for (const corpus::Entry* entry : corpus::entries_of(suite)) {
      ++total;
      corpus::EntryAnalysis a = corpus::analyze_entry(*entry);
      if (!a.ok) {
        std::fprintf(stderr, "analysis failed for %s:\n%s\n", entry->name.c_str(),
                     a.diagnostics.c_str());
        return 1;
      }
      if (entry->has_pattern) ++with_pattern;
      std::string properties = a.properties.empty() ? "-" : support::join(a.properties, "; ");
      rows.push_back({entry->name, std::to_string(a.loops), std::to_string(a.subscripted),
                      support::format("%d(%d)", a.parallel, a.parallel_subscripted),
                      properties});
    }
    std::printf("%s\n%s", corpus::suite_name(suite), support::render_table(rows).c_str());
    std::printf("programs with parallelizable subscripted-subscript loops: %d / %d\n\n",
                with_pattern, total);
  }

  std::printf("paper (Sections 1-2): NPB 6/10, SuiteSparse 4/8\n");
  return 0;
}
