// Incremental re-analysis latency: a single-function edit on an N-block
// program through a warm incremental::IncrementalEngine vs a cold full
// analysis of the edited source. Each Fig. 9 pattern block lives in its own
// function and a driver() calls them all, so the dirty cone of a one-block
// edit is {blockB, driver} — two functions out of N+1 — and every other
// function reuses its cached summaries and loop verdicts.
//
// The bench also re-checks the engine's correctness contract on every row:
// the incremental update's annotated output must be byte-identical to the
// cold analysis of the same edited source. Exit status is nonzero if that
// fails, if an update reuses nothing (the dirty-cone machinery would be
// dead weight), or if the warm update is not faster than cold at the
// largest size.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "incremental/incremental_engine.h"
#include "support/text.h"

using namespace sspar;

namespace {

std::string block_function(int b, const char* factor) {
  // Deliberately analysis-heavy for its token count: the recurrence loop
  // exercises BodyInterp's closed-form derivation, and the triple nest runs
  // the range test on each level of a subscripted segment walk.
  return support::format(R"(
void block%d(void) {
  for (int i = 0; i < N; i++) {
    size%d[i] = (i %% 4 == 0) ? 2 : 1;
  }
  ptr%d[0] = 0;
  for (int i = 1; i < N + 1; i++) {
    if (size%d[i-1] > 1) {
      ptr%d[i] = ptr%d[i-1] + size%d[i-1];
    } else {
      ptr%d[i] = ptr%d[i-1] + 1;
    }
  }
  for (int p = 0; p < N; p++) {
    for (int q = 0; q < N; q++) {
      for (int r = 0; r < N; r++) {
        for (int i = 0; i < N; i++) {
          for (int k = ptr%d[i]; k < ptr%d[i+1]; k++) {
            data%d[k] = data%d[k] * %s;
          }
        }
      }
    }
  }
}
)",
                         b, b, b, b, b, b, b, b, b, b, b, b, b, factor);
}

// `edited` < 0 synthesizes the base program; otherwise that one block's
// scaling constant changes to `factor` (a one-function body edit).
// Call-graph topology is a three-level hierarchy — driver() -> super drivers
// -> group drivers -> blocks — so the dirty cone of a one-block edit is
// {block, its group, its super group, driver}: the callers are dirty by key
// folding, everything else reuses. The re-summarized super group consults
// its sibling groups' summaries, which rehydrate from the engine's
// cross-program cache (reused_summaries in the table).
std::string synthesize(int blocks, int edited, const char* factor = "0.25") {
  const int group_size = 4;
  std::string src = "int N;\n";
  for (int b = 0; b < blocks; ++b) {
    src += support::format("int size%d[1024];\nint ptr%d[1025];\ndouble data%d[8192];\n",
                           b, b, b);
  }
  for (int b = 0; b < blocks; ++b) {
    src += block_function(b, b == edited ? factor : "0.5");
  }
  const int groups = (blocks + group_size - 1) / group_size;
  for (int g = 0; g < groups; ++g) {
    src += support::format("void group%d(void) {\n", g);
    for (int b = g * group_size; b < blocks && b < (g + 1) * group_size; ++b) {
      src += support::format("  block%d();\n", b);
    }
    src += "}\n";
  }
  const int supers = (groups + group_size - 1) / group_size;
  for (int s = 0; s < supers; ++s) {
    src += support::format("void super%d(void) {\n", s);
    for (int g = s * group_size; g < groups && g < (s + 1) * group_size; ++g) {
      src += support::format("  group%d();\n", g);
    }
    src += "}\n";
  }
  src += "void driver(void) {\n";
  for (int s = 0; s < supers; ++s) {
    src += support::format("  super%d();\n", s);
  }
  src += "}\n";
  return src;
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  std::printf(
      "Incremental re-analysis latency: single-function edit vs cold analysis\n\n");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"blocks", "functions", "loops", "cold[ms]", "update[ms]", "speedup",
                  "dirty", "reanalyzed", "reused_summaries", "reused_verdicts"});
  bool ok = true;
  double speedup_at_max = 0.0;
  for (int blocks : {16, 64, 128}) {
    std::string base = synthesize(blocks, -1);
    std::string edit1 = synthesize(blocks, 0, "0.25");
    std::string edit2 = synthesize(blocks, 0, "0.125");
    // Further never-seen-before edits for repeated steady-state timings.
    std::vector<std::string> more_edits = {synthesize(blocks, 0, "0.375"),
                                           synthesize(blocks, 0, "0.625"),
                                           synthesize(blocks, 0, "0.875")};

    incremental::EngineOptions options;
    options.assumptions = {{"N", 1}};

    // Cold baseline: a fresh engine analyzing the final source outright
    // (best of two runs to tame scheduler noise).
    double cold_ms = 0.0;
    incremental::UpdateResult cold_result;
    for (int run = 0; run < 2; ++run) {
      incremental::IncrementalEngine cold(options);
      double t0 = now_ms();
      cold_result = cold.update(edit2);
      double ms = now_ms() - t0;
      if (run == 0 || ms < cold_ms) cold_ms = ms;
    }
    if (!cold_result.ok) {
      std::fprintf(stderr, "synthesis broken (cold): %s\n", cold_result.error.c_str());
      return 1;
    }

    // Warm path: apply the base version, then a first edit so the engine is
    // in steady state (the timed update retires a warm snapshot, not the
    // initial full analysis). The timed edit changes block0 to a constant
    // the engine has never seen, so nothing about it can be pre-cached.
    incremental::IncrementalEngine warm(options);
    for (const std::string* src : {&base, &edit1}) {
      incremental::UpdateResult r = warm.update(*src);
      if (!r.ok) {
        std::fprintf(stderr, "synthesis broken (warmup): %s\n", r.error.c_str());
        return 1;
      }
    }
    double t0 = now_ms();
    incremental::UpdateResult update = warm.update(edit2);
    double update_ms = now_ms() - t0;
    if (!update.ok) {
      std::fprintf(stderr, "incremental update failed: %s\n", update.error.c_str());
      return 1;
    }
    // Repeat the measurement with fresh one-block edits (best of four): the
    // operation is identical each time — a single never-seen body change —
    // so the minimum is the honest steady-state latency.
    for (const std::string& next : more_edits) {
      t0 = now_ms();
      incremental::UpdateResult again = warm.update(next);
      double ms = now_ms() - t0;
      if (!again.ok) {
        std::fprintf(stderr, "incremental update failed: %s\n", again.error.c_str());
        return 1;
      }
      if (ms < update_ms) update_ms = ms;
    }

    if (update.output != cold_result.output) {
      std::fprintf(stderr,
                   "FAIL: incremental output diverges from cold analysis at %d blocks\n",
                   blocks);
      ok = false;
    }
    if (update.stats.reused_summaries + update.stats.reused_verdicts == 0) {
      std::fprintf(stderr, "FAIL: update at %d blocks reused nothing\n", blocks);
      ok = false;
    }

    double speedup = update_ms > 0.0 ? cold_ms / update_ms : 0.0;
    if (blocks == 128) speedup_at_max = speedup;
    rows.push_back({std::to_string(blocks), std::to_string(update.stats.functions_total),
                    std::to_string(update.verdicts.size()),
                    support::format("%.2f", cold_ms), support::format("%.2f", update_ms),
                    support::format("%.2fx", speedup),
                    std::to_string(update.stats.dirty),
                    std::to_string(update.stats.reanalyzed),
                    std::to_string(update.stats.reused_summaries),
                    std::to_string(update.stats.reused_verdicts)});
  }
  std::printf("%s\n", support::render_table(rows).c_str());
  if (speedup_at_max <= 1.0) {
    std::fprintf(stderr, "FAIL: no speedup at 128 blocks (%.2fx)\n", speedup_at_max);
    ok = false;
  }
  return ok ? 0 : 1;
}
