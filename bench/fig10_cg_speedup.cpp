// Experiment E2 — regenerates the paper's Fig. 10: speedup of the NPB CG
// benchmark when ONLY the loops with subscripted-subscript patterns (the
// SpMV over the monotonic rowstr array) are parallelized, relative to fully
// sequential execution, for 2/4/6/8 threads.
//
// The paper reports Classes A, B and C on a 4-core/8-thread machine and
// observes ~3.8x on four cores. Absolute numbers depend on hardware; the
// qualitative shape to reproduce is: substantial speedup from the analysis-
// enabled parallelization, growing with thread count, with larger classes
// profiting from more threads.
//
// The run is prefaced by the static-analysis side of the experiment: the CG
// model is analyzed three ways — hand-inlined, with rowstr built in one
// helper, and with the fact chain split across TWO helpers (fill_nzz +
// build_rowstr, the way NPB CG's makea/sparse actually structure it; the
// split form needs context-sensitive summaries). All must statically
// parallelize the subscripted-subscript loop, and the summary-cache hit
// rates — including the cross-program cache shared between sessions — are
// printed for tools/bench_report.sh (BENCH_pr5.json).
//
// Usage: fig10_cg_speedup [--classes S,W,A] [--threads 2,4,6,8] [--full]
//                         [--analysis-only]
//   --full uses the official iteration counts for classes B and C as well
//   (several minutes); the default trims B/C to a few iterations so the
//   whole bench suite stays fast while preserving the speedup shape (the
//   per-iteration work is identical).
//   --analysis-only runs just the static-analysis preface (fast; used by
//   the bench-report tooling and CI smoke).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "corpus/analysis.h"
#include "corpus/corpus.h"
#include "ipa/cross_cache.h"
#include "kernels/npb_cg.h"
#include "pipeline/session.h"
#include "support/text.h"

using namespace sspar;

namespace {

std::vector<std::string> split_list(const std::string& arg) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : arg) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

// Analyzes one CG model from the corpus ("fig3" is the hand-inlined CG
// setup, "ipa_cg" the same program with rowstr built in a helper); returns
// whether the subscripted-subscript loop was statically parallelized and
// prints its verdict line.
bool analyze_model(const char* label, const char* entry_name) {
  const corpus::Entry* entry = corpus::find_entry(entry_name);
  if (!entry) {
    std::printf("analysis %-9s NO CORPUS ENTRY '%s'\n", label, entry_name);
    return false;
  }
  pipeline::Session session(entry->source, corpus::analyzer_assumptions(*entry));
  // Exercise the summary cache the way the ablation loop does: analyze under
  // the defaults, under a different configuration, and under the defaults
  // again (the third run hits the cache for every summarized function).
  core::AnalyzerOptions ablated;
  ablated.enable_copy_rule = false;
  session.analyze(core::AnalyzerOptions{});
  session.analyze(ablated);
  session.analyze(core::AnalyzerOptions{});
  const auto* verdicts = session.parallelize();
  if (!verdicts) {
    std::printf("analysis %-9s FRONTEND FAILURE\n%s", label,
                session.diagnostics().dump().c_str());
    return false;
  }
  bool parallel_ss = false;
  std::string via;
  for (const auto& v : *verdicts) {
    if (v.parallel && v.uses_subscripted_subscripts &&
        v.property == core::EnablingProperty::Monotonic) {
      parallel_ss = true;
      via = support::join(v.summaries_used, ",");
    }
  }
  auto stats = session.summaries().stats();
  double hit_rate =
      stats.requests() == 0 ? 0.0 : double(stats.hits) / double(stats.requests());
  std::printf("analysis %-9s spmv_parallel=%s via=%s\n", label,
              parallel_ss ? "yes" : "NO", via.empty() ? "-" : via.c_str());
  std::printf(
      "summary_cache %-9s computed=%zu hits=%zu applications=%zu context=%zu "
      "hit_rate=%.2f\n",
      label, stats.computed, stats.hits, stats.applications, stats.context_computed,
      hit_rate);
  return parallel_ss;
}

// Cross-program sharing: the chain entries (byte-identical helpers over
// byte-identical globals) analyzed through ONE content-addressed cache —
// the second program rehydrates the first program's helper summaries
// instead of re-deriving them. Prints the cache-level hit rate for
// tools/bench_report.sh (BENCH_pr5.json requires hit_rate > 0).
bool analyze_shared_models() {
  ipa::CrossProgramCache cache;
  bool all_parallel = true;
  size_t rehydrated = 0;
  for (const char* name : {"ipa_cg_chain", "ipa_spmv_chain"}) {
    const corpus::Entry* entry = corpus::find_entry(name);
    if (!entry) {
      std::printf("analysis shared    NO CORPUS ENTRY '%s'\n", name);
      return false;
    }
    pipeline::Session session(entry->source, corpus::analyzer_assumptions(*entry));
    session.share_summaries(&cache);
    const auto* verdicts = session.parallelize();
    if (!verdicts) {
      std::printf("analysis shared    FRONTEND FAILURE (%s)\n%s", name,
                  session.diagnostics().dump().c_str());
      return false;
    }
    bool parallel_ss = false;
    for (const auto& v : *verdicts) {
      if (v.parallel && v.uses_subscripted_subscripts) parallel_ss = true;
    }
    all_parallel = all_parallel && parallel_ss;
    rehydrated += session.summaries().stats().shared_hits;
  }
  auto stats = cache.stats();
  double hit_rate =
      stats.lookups == 0 ? 0.0 : double(stats.hits) / double(stats.lookups);
  std::printf(
      "summary_cache shared    lookups=%zu hits=%zu inserts=%zu entries=%zu "
      "rehydrated=%zu hit_rate=%.2f\n",
      stats.lookups, stats.hits, stats.inserts, stats.entries, rehydrated, hit_rate);
  return all_parallel && stats.hits > 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> classes = {"S", "W", "A", "B"};
  std::vector<unsigned> threads = {2, 4, 6, 8};
  bool full = false;
  bool analysis_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else if (std::strcmp(argv[i], "--analysis-only") == 0) {
      analysis_only = true;
    } else if (std::strcmp(argv[i], "--classes") == 0 && i + 1 < argc) {
      classes = split_list(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads.clear();
      for (const auto& t : split_list(argv[++i])) threads.push_back(std::stoul(t));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--classes S,W,A,B,C] [--threads 2,4,6,8] [--full]"
                   " [--analysis-only]\n",
                   argv[0]);
      return 1;
    }
  }

  // Static-analysis preface: the loop the kernel below parallelizes must be
  // provable both hand-inlined and with rowstr built in a helper (the
  // interprocedural variant).
  bool inlined_ok = analyze_model("inlined", "fig3");
  bool helper_ok = analyze_model("helper", "ipa_cg");
  bool chain_ok = analyze_model("chain", "ipa_cg_chain");
  bool shared_ok = analyze_shared_models();
  if (!inlined_ok || !helper_ok || !chain_ok || !shared_ok) {
    std::printf("static analysis FAILED to justify the parallelization\n");
    return 1;
  }
  if (analysis_only) return 0;

  std::printf("\nFig. 10 — NPB CG speedup from parallelizing ONLY the subscripted-\n");
  std::printf("subscript loops (SpMV over monotonic rowstr), vs sequential.\n\n");

  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header = {"class", "n", "nnz", "niter", "serial[s]", "zeta ok"};
  for (unsigned t : threads) header.push_back(support::format("T=%u", t));
  rows.push_back(header);

  for (const std::string& klass : classes) {
    kern::CgParams params = kern::cg_params(klass);
    // Untrimmed S/W/A are quick; B/C get trimmed unless --full.
    int64_t niter = params.niter;
    if (!full && (params.klass == kern::CgClass::B || params.klass == kern::CgClass::C)) {
      niter = 5;
    }
    kern::CgBenchmark bench(params, niter);
    kern::CgResult serial = bench.run(kern::CgMode::Serial);

    std::vector<std::string> row = {
        params.name,
        std::to_string(params.na),
        std::to_string(serial.nnz),
        std::to_string(niter),
        support::format("%.3f", serial.total_seconds),
        niter == params.niter ? (serial.verified ? "yes" : "NO") : "n/a (trimmed)"};
    for (unsigned t : threads) {
      rt::ThreadPool pool(t);
      kern::CgResult parallel = bench.run(kern::CgMode::ParallelSS, &pool);
      double speedup = serial.total_seconds / parallel.total_seconds;
      bool zeta_ok = parallel.zeta == serial.zeta ||
                     std::abs(parallel.zeta - serial.zeta) < 1e-9;
      row.push_back(support::format("%.2fx%s", speedup, zeta_ok ? "" : " (!)"));
    }
    rows.push_back(row);
  }

  std::printf("%s\n", support::render_table(rows).c_str());
  std::printf("paper (Fig. 10, 4C/8T Kaby Lake R): Class A ~3.8x at 4 threads,\n");
  std::printf("saturating by 6-8 threads; B and C keep improving through 8 threads.\n");
  return 0;
}
