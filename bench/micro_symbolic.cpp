// Micro benchmarks for the symbolic substrate: canonicalization, the prover,
// and the whole-pipeline translation of the Fig. 9 program. These are the
// inner loops of the compile-time analysis whose cost E6 measures end to end.
#include <benchmark/benchmark.h>

#include "symbolic/context.h"
#include "transform/omp_emitter.h"

using namespace sspar;

namespace {

void BM_ExprCanonicalize(benchmark::State& state) {
  sym::SymbolTable syms;
  auto i = sym::make_sym(syms.intern("i"));
  auto n = sym::make_sym(syms.intern("n"));
  for (auto _ : state) {
    // (3i + n - 1) - (2i + n) + (i + 1) == 0 after canonicalization.
    auto a = sym::add(sym::mul_const(i, 3), sym::sub(n, sym::make_const(1)));
    auto b = sym::add(sym::mul_const(i, 2), n);
    auto c = sym::add(i, sym::make_const(1));
    auto r = sym::add(sym::sub(a, b), c);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ExprCanonicalize);

void BM_ProveWithMonotonicityFact(benchmark::State& state) {
  sym::SymbolTable syms;
  sym::SymbolId i_sym = syms.intern("i");
  sym::SymbolId rowptr = syms.intern("rowptr");
  auto i = sym::make_sym(i_sym);
  sym::AssumptionContext ctx;
  ctx.assume(i_sym, sym::Range::of(sym::make_const(1), nullptr));
  ctx.set_elem_diff([rowptr](sym::SymbolId array, const sym::ExprPtr& hi,
                             const sym::ExprPtr& lo) -> std::optional<sym::Range> {
    if (array != rowptr) return std::nullopt;
    auto d = sym::const_value(sym::sub(hi, lo));
    if (!d || *d < 0) return std::nullopt;
    return sym::Range::of(sym::make_const(0), nullptr);
  });
  auto elem_i = sym::make_array_elem(rowptr, i);
  auto elem_next = sym::make_array_elem(rowptr, sym::add(i, sym::make_const(1)));
  for (auto _ : state) {
    auto verdict = sym::prove_lt(sym::sub(elem_i, sym::make_const(1)), elem_next, ctx);
    benchmark::DoNotOptimize(verdict);
  }
}
BENCHMARK(BM_ProveWithMonotonicityFact);

void BM_SubstIterStart(benchmark::State& state) {
  // The analyzer's hottest rewrite: replacing λ(x) while aggregating a loop
  // body. The arena memoizes on (node, replacement, symbol), so steady-state
  // iterations are a memo hit.
  sym::SymbolTable syms;
  sym::SymbolId x = syms.intern("x");
  auto i = sym::make_sym(syms.intern("i"));
  auto rowptr = syms.intern("rowptr");
  auto e = sym::add(sym::make_array_elem(rowptr, sym::add(sym::make_iter_start(x), i)),
                    sym::mul_const(sym::make_iter_start(x), 3));
  auto repl = sym::add(sym::make_loop_start(x), sym::mul_const(i, 2));
  for (auto _ : state) {
    auto r = sym::subst_iter_start(e, x, repl);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SubstIterStart);

void BM_ContainsSymMiss(benchmark::State& state) {
  // Containment misses are the common case during aggregation; the subtree
  // bloom answers without walking.
  sym::SymbolTable syms;
  auto i = sym::make_sym(syms.intern("i"));
  auto n = sym::make_sym(syms.intern("n"));
  sym::SymbolId absent = syms.intern("absent");
  auto e = sym::add(sym::mul(i, n), sym::make_array_elem(syms.intern("a"), i));
  for (auto _ : state) {
    bool r = sym::contains_sym(e, absent);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ContainsSymMiss);

const char* kFig9 = R"(
int ROWLEN;
int COLUMNLEN;
int j1;
int rowsize[100];
int rowptr[101];
double value[10000];
double vector[10000];
double product_array[10000];
void f(void) {
  for (int i = 0; i < ROWLEN; i++) {
    rowsize[i] = (i % 3 == 0) ? 2 : 1;
  }
  rowptr[0] = 0;
  for (int i = 1; i < ROWLEN + 1; i++) {
    rowptr[i] = rowptr[i-1] + rowsize[i-1];
  }
  for (int i = 0; i < ROWLEN + 1; i++) {
    if (i == 0) { j1 = i; } else { j1 = rowptr[i-1]; }
    for (int j = j1; j < rowptr[i]; j++) {
      product_array[j] = value[j] * vector[j];
    }
  }
}
)";

void BM_TranslateFig9(benchmark::State& state) {
  for (auto _ : state) {
    auto result = transform::translate_source(kFig9, core::AnalyzerOptions{},
                                              {{"ROWLEN", 1}, {"COLUMNLEN", 1}});
    benchmark::DoNotOptimize(result.parallelized);
  }
}
BENCHMARK(BM_TranslateFig9);

}  // namespace
