// Experiment E3 — the paper's pattern catalogue (Figs. 2-9) as a verdict
// table: for each figure, the property the analysis derives and the
// parallelization result, cross-checked against the dynamic dependence
// oracle.
#include <cstdio>

#include "corpus/analysis.h"
#include "interp/interpreter.h"
#include "support/text.h"

using namespace sspar;

int main() {
  std::printf("Figs. 2-9 — pattern catalogue verdicts\n\n");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"figure", "kernel", "loops", "parallel", "enabling property", "oracle"});

  for (const corpus::Entry* entry : corpus::entries_of(corpus::Suite::Paper)) {
    corpus::EntryAnalysis a = corpus::analyze_entry(*entry);
    if (!a.ok) {
      std::fprintf(stderr, "analysis failed for %s\n", entry->name.c_str());
      return 1;
    }
    // Oracle cross-check for every statically-parallel loop.
    bool oracle_agrees = true;
    for (const auto& v : a.verdicts) {
      if (!v.parallel) continue;
      interp::Interpreter interp(*a.parsed.program);
      for (const auto& param : entry->params) {
        interp.set_scalar(param.name, param.interp_value);
      }
      auto report = interp.analyze_loop_dependences("f", v.loop);
      oracle_agrees = oracle_agrees && report.dependence_free;
    }
    std::string property = a.properties.empty() ? "-" : support::join(a.properties, "; ");
    rows.push_back({entry->name, entry->description.substr(0, 48),
                    std::to_string(a.loops),
                    support::format("%d (%d via index arrays)", a.parallel,
                                    a.parallel_subscripted),
                    property, oracle_agrees ? "agrees" : "CONFLICT"});
  }
  std::printf("%s\n", support::render_table(rows).c_str());
  return 0;
}
