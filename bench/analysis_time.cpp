// Experiment E6 — cost of the compile-time analysis itself: wall time of the
// pipeline stages (parse vs Phase 1/2 analysis vs Range Test) as a function
// of program size. Programs are synthesized by repeating the Fig. 9 pattern
// block. A second analyze() on the same pipeline::Session demonstrates the
// staged API's re-run-without-reparse win (the ablation loop's inner step).
#include <cstdio>

#include "pipeline/session.h"
#include "support/text.h"

using namespace sspar;

namespace {

std::string synthesize(int blocks) {
  std::string src = "int N;\n";
  for (int b = 0; b < blocks; ++b) {
    src += support::format("int size%d[1024];\nint ptr%d[1025];\ndouble data%d[8192];\n", b, b, b);
  }
  src += "void f(void) {\n";
  for (int b = 0; b < blocks; ++b) {
    src += support::format(R"(
  for (int i = 0; i < N; i++) {
    size%d[i] = (i %% 4 == 0) ? 2 : 1;
  }
  ptr%d[0] = 0;
  for (int i = 1; i < N + 1; i++) {
    ptr%d[i] = ptr%d[i-1] + size%d[i-1];
  }
  for (int i = 0; i < N; i++) {
    for (int k = ptr%d[i]; k < ptr%d[i+1]; k++) {
      data%d[k] = data%d[k] * 0.5;
    }
  }
)",
                           b, b, b, b, b, b, b, b, b);
  }
  src += "}\n";
  return src;
}

}  // namespace

int main() {
  std::printf("Compile-time cost of the analysis (synthetic Fig. 9 pattern blocks)\n\n");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"blocks", "loops", "source lines", "parse[ms]", "analyze[ms]",
                  "range test[ms]", "re-analyze[ms]", "parallel loops"});
  for (int blocks : {1, 4, 16, 64, 128}) {
    std::string src = synthesize(blocks);
    size_t lines = support::split_lines(src).size();

    pipeline::Session session(src, {{"N", 1}});
    if (!session.parse()) {
      std::fprintf(stderr, "synthesis broken:\n%s\n", session.diagnostics().dump().c_str());
      return 1;
    }
    session.analyze();
    const auto* verdicts = session.parallelize();
    size_t total_loops = verdicts->size();
    int parallel = 0;
    for (const auto& v : *verdicts) parallel += v.parallel ? 1 : 0;
    double first_analyze_ms = session.stats().analyze.last_ms;

    // Re-analyze under different options on the SAME session: the parse is
    // cached, so this pays only the analysis cost again.
    core::AnalyzerOptions no_recurrence;
    no_recurrence.enable_recurrence_rule = false;
    session.analyze(no_recurrence);

    const pipeline::SessionStats& stats = session.stats();
    rows.push_back({std::to_string(blocks), std::to_string(total_loops),
                    std::to_string(lines), support::format("%.2f", stats.parse.total_ms),
                    support::format("%.2f", first_analyze_ms),
                    support::format("%.2f", stats.parallelize.total_ms),
                    support::format("%.2f", stats.analyze.last_ms),
                    std::to_string(parallel)});
  }
  std::printf("%s\n", support::render_table(rows).c_str());
  return 0;
}
