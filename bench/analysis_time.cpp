// Experiment E6 — cost of the compile-time analysis itself: wall time of the
// full pipeline (parse -> Phase 1/2 -> Range Test) as a function of program
// size. Programs are synthesized by repeating the Fig. 9 pattern block.
#include <chrono>
#include <cstdio>

#include "support/text.h"
#include "transform/omp_emitter.h"

using namespace sspar;

namespace {

std::string synthesize(int blocks) {
  std::string src = "int N;\n";
  for (int b = 0; b < blocks; ++b) {
    src += support::format("int size%d[1024];\nint ptr%d[1025];\ndouble data%d[8192];\n", b, b, b);
  }
  src += "void f(void) {\n";
  for (int b = 0; b < blocks; ++b) {
    src += support::format(R"(
  for (int i = 0; i < N; i++) {
    size%d[i] = (i %% 4 == 0) ? 2 : 1;
  }
  ptr%d[0] = 0;
  for (int i = 1; i < N + 1; i++) {
    ptr%d[i] = ptr%d[i-1] + size%d[i-1];
  }
  for (int i = 0; i < N; i++) {
    for (int k = ptr%d[i]; k < ptr%d[i+1]; k++) {
      data%d[k] = data%d[k] * 0.5;
    }
  }
)",
                           b, b, b, b, b, b, b, b, b);
  }
  src += "}\n";
  return src;
}

}  // namespace

int main() {
  std::printf("Compile-time cost of the analysis (synthetic Fig. 9 pattern blocks)\n\n");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"blocks", "loops", "source lines", "analysis[ms]", "parallel loops"});
  for (int blocks : {1, 4, 16, 64, 128}) {
    std::string src = synthesize(blocks);
    size_t lines = support::split_lines(src).size();
    auto t0 = std::chrono::steady_clock::now();
    auto result = transform::translate_source(src, core::AnalyzerOptions{}, {{"N", 1}});
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (!result.ok) {
      std::fprintf(stderr, "synthesis broken:\n%s\n", result.diagnostics.c_str());
      return 1;
    }
    rows.push_back({std::to_string(blocks), std::to_string(result.verdicts.size()),
                    std::to_string(lines), support::format("%.2f", seconds * 1e3),
                    std::to_string(result.parallelized)});
  }
  std::printf("%s\n", support::render_table(rows).c_str());
  return 0;
}
