// Experiment E7 — ablation of the aggregation rules (paper Section 3.4 and
// its "forthcoming algebra" extensions): each rule is disabled in turn and
// the corpus re-analyzed; the table shows how many parallel subscripted-
// subscript loops survive, i.e. which patterns each rule unlocks.
#include <cstdio>

#include "corpus/analysis.h"
#include "support/text.h"

using namespace sspar;

namespace {

struct Variant {
  const char* name;
  core::AnalyzerOptions options;
};

int count_parallel_ss(const core::AnalyzerOptions& options, std::vector<std::string>* lost) {
  int total = 0;
  core::AnalyzerOptions baseline;  // all rules on
  for (const corpus::Entry& entry : corpus::all_entries()) {
    corpus::EntryAnalysis with = corpus::analyze_entry(entry, options);
    total += with.parallel_subscripted;
    if (lost) {
      corpus::EntryAnalysis base = corpus::analyze_entry(entry, baseline);
      if (with.parallel_subscripted < base.parallel_subscripted) {
        lost->push_back(entry.name);
      }
    }
  }
  return total;
}

}  // namespace

int main() {
  std::vector<Variant> variants;
  variants.push_back({"all rules (baseline)", {}});
  {
    core::AnalyzerOptions o;
    o.enable_recurrence_rule = false;
    variants.push_back({"- recurrence (a[i]=a[i-1]+v)", o});
  }
  {
    core::AnalyzerOptions o;
    o.enable_affine_value_rule = false;
    variants.push_back({"- affine value (a[i]=p*i+q)", o});
  }
  {
    core::AnalyzerOptions o;
    o.enable_identity_rule = false;
    variants.push_back({"- identity (a[i]=i)", o});
  }
  {
    core::AnalyzerOptions o;
    o.enable_inverse_perm_rule = false;
    variants.push_back({"- inverse permutation", o});
  }
  {
    core::AnalyzerOptions o;
    o.enable_dense_prefix_rule = false;
    variants.push_back({"- dense prefix (a[x++]=v)", o});
  }
  {
    core::AnalyzerOptions o;
    o.enable_branch_rules = false;
    variants.push_back({"- branch rules (subset/disjoint)", o});
  }
  {
    core::AnalyzerOptions o;
    o.enable_copy_rule = false;
    variants.push_back({"- copy propagation", o});
  }
  {
    core::AnalyzerOptions o;
    o.enable_lambda_sum_rule = false;
    variants.push_back({"- lambda+i closed form", o});
  }

  std::printf("Ablation — parallel subscripted-subscript loops across the corpus\n\n");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"configuration", "parallel ss-loops", "entries losing loops"});
  for (const Variant& v : variants) {
    std::vector<std::string> lost;
    int count = count_parallel_ss(v.options, &lost);
    rows.push_back({v.name, std::to_string(count),
                    lost.empty() ? "-" : support::join(lost, ", ")});
  }
  std::printf("%s\n", support::render_table(rows).c_str());
  return 0;
}
