// Experiment E7 — ablation of the aggregation rules (paper Section 3.4 and
// its "forthcoming algebra" extensions): each rule is disabled in turn and
// the corpus re-analyzed; the table shows how many parallel subscripted-
// subscript loops survive, i.e. which patterns each rule unlocks.
//
// Each corpus entry is held in ONE pipeline::Session across all nine
// configurations, so the source is parsed once and only analyze/parallelize
// re-run per configuration — the per-stage timing summary at the bottom
// shows the re-run-without-reparse win.
#include <cstdio>

#include "corpus/analysis.h"
#include "pipeline/session.h"
#include "support/text.h"

using namespace sspar;

namespace {

struct Variant {
  const char* name;
  core::AnalyzerOptions options;
};

int parallel_ss(const std::vector<core::LoopVerdict>& verdicts) {
  int count = 0;
  for (const auto& v : verdicts) {
    if (v.parallel && v.uses_subscripted_subscripts) ++count;
  }
  return count;
}

}  // namespace

int main() {
  std::vector<Variant> variants;
  variants.push_back({"all rules (baseline)", {}});
  {
    core::AnalyzerOptions o;
    o.enable_recurrence_rule = false;
    variants.push_back({"- recurrence (a[i]=a[i-1]+v)", o});
  }
  {
    core::AnalyzerOptions o;
    o.enable_affine_value_rule = false;
    variants.push_back({"- affine value (a[i]=p*i+q)", o});
  }
  {
    core::AnalyzerOptions o;
    o.enable_identity_rule = false;
    variants.push_back({"- identity (a[i]=i)", o});
  }
  {
    core::AnalyzerOptions o;
    o.enable_inverse_perm_rule = false;
    variants.push_back({"- inverse permutation", o});
  }
  {
    core::AnalyzerOptions o;
    o.enable_dense_prefix_rule = false;
    variants.push_back({"- dense prefix (a[x++]=v)", o});
  }
  {
    core::AnalyzerOptions o;
    o.enable_branch_rules = false;
    variants.push_back({"- branch rules (subset/disjoint)", o});
  }
  {
    core::AnalyzerOptions o;
    o.enable_copy_rule = false;
    variants.push_back({"- copy propagation", o});
  }
  {
    core::AnalyzerOptions o;
    o.enable_lambda_sum_rule = false;
    variants.push_back({"- lambda+i closed form", o});
  }

  // One session per corpus entry, reused across every configuration.
  std::vector<pipeline::Session> sessions;
  sessions.reserve(corpus::all_entries().size());
  for (const corpus::Entry& entry : corpus::all_entries()) {
    sessions.emplace_back(entry.source, corpus::analyzer_assumptions(entry));
  }

  // Baseline counts per entry (first variant is the all-rules baseline).
  std::vector<int> baseline(sessions.size(), 0);

  std::printf("Ablation — parallel subscripted-subscript loops across the corpus\n\n");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"configuration", "parallel ss-loops", "entries losing loops"});
  for (size_t vi = 0; vi < variants.size(); ++vi) {
    const Variant& variant = variants[vi];
    int total = 0;
    std::vector<std::string> lost;
    for (size_t si = 0; si < sessions.size(); ++si) {
      pipeline::Session& session = sessions[si];
      session.analyze(variant.options);
      const auto* verdicts = session.parallelize();
      int count = verdicts ? parallel_ss(*verdicts) : 0;
      total += count;
      if (vi == 0) {
        baseline[si] = count;
      } else if (count < baseline[si]) {
        lost.push_back(corpus::all_entries()[si].name);
      }
    }
    rows.push_back({variant.name, std::to_string(total),
                    lost.empty() ? "-" : support::join(lost, ", ")});
  }
  std::printf("%s\n", support::render_table(rows).c_str());

  // Per-stage cost split: parse ran once per entry, analyze/parallelize once
  // per entry per configuration.
  pipeline::SessionStats sum;
  for (const pipeline::Session& session : sessions) {
    const pipeline::SessionStats& s = session.stats();
    sum.parse.runs += s.parse.runs;
    sum.parse.total_ms += s.parse.total_ms;
    sum.analyze.runs += s.analyze.runs;
    sum.analyze.total_ms += s.analyze.total_ms;
    sum.parallelize.runs += s.parallelize.runs;
    sum.parallelize.total_ms += s.parallelize.total_ms;
  }
  std::printf("Per-stage totals across %zu sessions x %zu configurations\n\n",
              sessions.size(), variants.size());
  std::vector<std::vector<std::string>> stage_rows;
  stage_rows.push_back({"stage", "runs", "total[ms]"});
  stage_rows.push_back({"parse (cached after first run)", std::to_string(sum.parse.runs),
                        support::format("%.2f", sum.parse.total_ms)});
  stage_rows.push_back({"analyze", std::to_string(sum.analyze.runs),
                        support::format("%.2f", sum.analyze.total_ms)});
  stage_rows.push_back({"parallelize", std::to_string(sum.parallelize.runs),
                        support::format("%.2f", sum.parallelize.total_ms)});
  std::printf("%s\n", support::render_table(stage_rows).c_str());
  return 0;
}
