// Experiment E4 — the paper's Fig. 9 kernel (CSR-style product over rowptr
// ranges) end to end: the analysis proves the loop parallel at compile time,
// and this bench measures the speedup that proof unlocks across thread
// counts and problem sizes.
#include <chrono>
#include <cstdio>

#include "kernels/pattern_kernels.h"
#include "support/text.h"
#include "transform/omp_emitter.h"

using namespace sspar;

namespace {
double time_seconds(const std::function<void()>& fn, int repeats) {
  auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < repeats; ++r) fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count() /
         repeats;
}
}  // namespace

int main() {
  // First: show that the compile-time pipeline actually proves the loop.
  std::printf("Fig. 9 product kernel — compile-time verdict and runtime speedup\n\n");

  auto translated = transform::translate_source(R"(
    int ROWS;
    int rowptr[100001];
    double value[1000000];
    double vec[1000000];
    double product[1000000];
    int rowsize[100000];
    void f(void) {
      for (int i = 0; i < ROWS; i++) {
        rowsize[i] = (i % 3 == 0) ? 2 : 1;
      }
      rowptr[0] = 0;
      for (int i = 1; i < ROWS + 1; i++) {
        rowptr[i] = rowptr[i-1] + rowsize[i-1];
      }
      for (int i = 0; i < ROWS; i++) {
        for (int j = rowptr[i]; j < rowptr[i+1]; j++) {
          product[j] = value[j] * vec[j];
        }
      }
    }
  )",
                                                core::AnalyzerOptions{}, {{"ROWS", 1}});
  for (const auto& v : translated.verdicts) {
    if (v.parallel && v.uses_subscripted_subscripts) {
      std::printf("compile-time: loop %d parallel — %s\n", v.loop_id, v.reason.c_str());
    }
  }
  std::printf("\n");

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"rows", "avg row", "nnz", "serial[ms]", "T=2", "T=4", "T=6", "T=8"});
  for (int64_t n : {20'000, 200'000, 2'000'000}) {
    auto kernel = kern::RowRangeProduct::random(n, 8, 42);
    int repeats = n >= 2'000'000 ? 3 : 10;
    double serial = time_seconds([&] { kernel.run_serial(); }, repeats);
    std::vector<std::string> row = {
        std::to_string(n), "8", std::to_string(kernel.rowptr.back()),
        support::format("%.2f", serial * 1e3)};
    for (unsigned t : {2u, 4u, 6u, 8u}) {
      rt::ThreadPool pool(t);
      double parallel = time_seconds([&] { kernel.run_parallel(pool); }, repeats);
      row.push_back(support::format("%.2fx", serial / parallel));
    }
    rows.push_back(row);
  }
  std::printf("%s\n", support::render_table(rows).c_str());
  return 0;
}
