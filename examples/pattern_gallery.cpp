// Walks the whole benchmark corpus (paper figures + NPB + SuiteSparse
// kernels), prints each program's analysis verdicts, and demonstrates the
// corresponding runnable kernels with their measured parallel speedup.
#include <chrono>
#include <cstdio>

#include "corpus/analysis.h"
#include "kernels/pattern_kernels.h"
#include "support/text.h"

using namespace sspar;

namespace {
template <typename Kernel>
void demo(const char* label, const Kernel& kernel, unsigned threads) {
  rt::ThreadPool pool(threads);
  auto t0 = std::chrono::steady_clock::now();
  auto serial = kernel.run_serial();
  auto t1 = std::chrono::steady_clock::now();
  auto parallel = kernel.run_parallel(pool);
  auto t2 = std::chrono::steady_clock::now();
  bool equal = serial == parallel;
  double ts = std::chrono::duration<double>(t1 - t0).count();
  double tp = std::chrono::duration<double>(t2 - t1).count();
  std::printf("  %-22s serial %.2fms | %u threads %.2fms (%.2fx) | results %s\n", label,
              ts * 1e3, threads, tp * 1e3, ts / tp, equal ? "identical" : "DIFFER");
}
}  // namespace

int main() {
  std::printf("=== static analysis across the corpus ===\n");
  for (const corpus::Entry& entry : corpus::all_entries()) {
    corpus::EntryAnalysis a = corpus::analyze_entry(entry);
    if (!a.ok) {
      std::printf("%-10s %-18s FRONTEND ERROR\n", suite_name(entry.suite), entry.name.c_str());
      continue;
    }
    std::printf("%-18s %-10s loops=%d ss=%d parallel=%d  %s\n", suite_name(entry.suite),
                entry.name.c_str(), a.loops, a.subscripted, a.parallel,
                a.properties.empty() ? "" : support::join(a.properties, "; ").c_str());
  }

  std::printf("\n=== runnable pattern kernels (property => legal parallelization) ===\n");
  const unsigned threads = 8;
  demo("inverse permutation", kern::InversePermutation::random(2'000'000, 1), threads);
  demo("row-range product", kern::RowRangeProduct::random(500'000, 8, 2), threads);
  demo("guarded scatter", kern::GuardedScatter::random(2'000'000, 0.6, 3), threads);
  demo("block scatter", kern::BlockScatter::random(500'000, 4, 4), threads);
  demo("window scatter", kern::WindowScatter::random(500'000, 5), threads);
  return 0;
}
