// Quickstart: run the staged pipeline on the paper's Fig. 9 program.
//
//   parse  ->  index-array analysis (Phase 1 + Phase 2)  ->  extended Range
//   Test  ->  OpenMP annotation  ->  source emission
//
// Each stage is an explicit pipeline::Session call, so re-analysis under
// different AnalyzerOptions reuses the cached parse (see the ablation bench).
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "pipeline/session.h"

using namespace sspar;

int main() {
  const char* source = R"(
int ROWLEN;
int COLUMNLEN;
int ind;
int index;
int j1;
int a[100][100];
int column_number[10000];
double value[10000];
double vector[10000];
double product_array[10000];
int rowsize[100];
int rowptr[101];
void f(void) {
  for (int i = 0; i < ROWLEN; i++) {
    int count = 0;
    for (int j = 0; j < COLUMNLEN; j++) {
      if (a[i][j] != 0) {
        count++;
        column_number[index++] = j;
        value[ind++] = a[i][j];
      }
    }
    rowsize[i] = count;
  }
  rowptr[0] = 0;
  for (int i = 1; i < ROWLEN + 1; i++) {
    rowptr[i] = rowptr[i-1] + rowsize[i-1];
  }
  for (int i = 0; i < ROWLEN + 1; i++) {
    if (i == 0) {
      j1 = i;
    } else {
      j1 = rowptr[i-1];
    }
    for (int j = j1; j < rowptr[i]; j++) {
      product_array[j] = value[j] * vector[j];
    }
  }
}
)";

  // Problem sizes are positive — the only assumption the analysis needs.
  pipeline::Session session(source, {{"ROWLEN", 1}, {"COLUMNLEN", 1}});
  if (!session.parse()) {
    // Structured diagnostics: stable code + location per record.
    for (const auto& d : session.diagnostics().diagnostics()) {
      std::fprintf(stderr, "%s\n", d.to_string().c_str());
    }
    return 1;
  }

  session.analyze();  // default AnalyzerOptions; cached until options change
  const auto* verdicts = session.parallelize();

  std::printf("=== loop verdicts ===\n");
  for (const auto& v : *verdicts) {
    std::printf("loop %d: %s", v.loop_id, v.parallel ? "PARALLEL" : "sequential");
    if (v.parallel) {
      std::printf(" — %s [%s%s]", v.reason.c_str(), core::property_name(v.property),
                  v.peeled ? ", peeled" : "");
    } else if (!v.blockers.empty()) {
      std::printf(" — %s", v.blockers.front().c_str());
    }
    if (v.uses_subscripted_subscripts) std::printf("  [subscripted subscripts]");
    std::printf("\n");
  }

  int annotated = session.annotate();
  auto emitted = session.emit();
  std::printf("\n=== transformed source (%d loop(s) parallelized) ===\n%s", annotated,
              emitted.output.c_str());
  std::printf("\n=== stage costs ===\nparse %.2fms  analyze %.2fms  range-test %.2fms\n",
              session.stats().parse.total_ms, session.stats().analyze.total_ms,
              session.stats().parallelize.total_ms);
  return 0;
}
