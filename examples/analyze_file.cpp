// Command-line source-to-source parallelizer (a miniature Cetus).
//
// Usage:
//   analyze_file input.c [--assume NAME=MIN ...] [--report-only]
//
// Reads a mini-C file, runs the subscripted-subscript analysis, and prints
// the OpenMP-annotated source (or just the per-loop report).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "pipeline/session.h"
#include "support/text.h"

using namespace sspar;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s input.c [--assume NAME=MIN ...] [--report-only]\n",
                 argv[0]);
    return 1;
  }
  const char* path = nullptr;
  pipeline::Assumptions assumptions;
  bool report_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--assume") == 0 && i + 1 < argc) {
      if (!assumptions.add_spec(argv[++i])) {
        std::fprintf(stderr, "bad --assume spec '%s' (want NAME=MIN)\n", argv[i]);
        return 1;
      }
    } else if (std::strcmp(argv[i], "--report-only") == 0) {
      report_only = true;
    } else if (!path) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "unexpected argument '%s'\n", argv[i]);
      return 1;
    }
  }
  if (!path) {
    std::fprintf(stderr, "no input file\n");
    return 1;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  pipeline::Session session(buffer.str(), assumptions);
  if (!session.parse()) {
    std::fprintf(stderr, "%s", session.diagnostics().dump().c_str());
    return 1;
  }
  const auto* verdicts = session.parallelize();
  int parallelized = session.annotate();

  std::fprintf(stderr, "=== %s: %zu loop(s), %d parallelized ===\n", path, verdicts->size(),
               parallelized);
  for (const auto& v : *verdicts) {
    std::fprintf(stderr, "  loop %d (line %u): %s", v.loop_id, v.loop->location.line,
                 v.parallel ? "PARALLEL" : "sequential");
    if (v.parallel) {
      std::fprintf(stderr, " — %s", v.reason.c_str());
    } else {
      std::fprintf(stderr, " — %s", support::join(v.blockers, "; ").c_str());
    }
    std::fprintf(stderr, "\n");
  }
  if (!report_only) std::printf("%s", session.emit().output.c_str());
  return 0;
}
