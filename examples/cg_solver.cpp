// NPB CG as a library user would run it: solve the Class S/W systems serial
// and with the paper-enabled SpMV parallelization, verify against the
// official zeta values, and report the speedup.
//
// Usage: cg_solver [CLASS] [THREADS]   (defaults: W 8)
#include <cstdio>
#include <cstdlib>

#include "kernels/npb_cg.h"

using namespace sspar;

int main(int argc, char** argv) {
  std::string klass = argc > 1 ? argv[1] : "W";
  unsigned threads = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 8;

  kern::CgParams params = kern::cg_params(klass);
  std::printf("NPB CG Class %s: n=%lld, nonzer=%lld, niter=%lld, shift=%.1f\n", params.name,
              (long long)params.na, (long long)params.nonzer, (long long)params.niter,
              params.shift);

  kern::CgBenchmark bench(params);
  kern::CgResult serial = bench.run(kern::CgMode::Serial);
  std::printf("serial:      zeta = %.13f  (%s)  %.3fs (+%.3fs makea, nnz=%lld)\n",
              serial.zeta, serial.verified ? "VERIFIED" : "verification FAILED",
              serial.total_seconds, serial.makea_seconds, (long long)serial.nnz);

  rt::ThreadPool pool(threads);
  kern::CgResult parallel = bench.run(kern::CgMode::ParallelSS, &pool);
  std::printf("parallel-ss: zeta = %.13f  (%s)  %.3fs with %u threads -> %.2fx\n",
              parallel.zeta, parallel.verified ? "VERIFIED" : "verification FAILED",
              parallel.total_seconds, threads, serial.total_seconds / parallel.total_seconds);

  kern::CgResult full = bench.run(kern::CgMode::ParallelFull, &pool);
  std::printf("parallel-all: zeta = %.13f  %.3fs -> %.2fx (vector ops too; ablation)\n",
              full.zeta, full.total_seconds, serial.total_seconds / full.total_seconds);
  return serial.verified && parallel.verified ? 0 : 1;
}
