// Differential validation of the batch driver, in the spirit of the NAS
// auto-vs-manual parallelization comparison study: every loop the static
// pipeline marks parallel is re-checked against the dynamic dependence
// oracle. A single false positive (statically parallel, dynamically
// dependence-carrying) fails the test.
#include <gtest/gtest.h>

#include "corpus/analysis.h"
#include "corpus/corpus.h"
#include "driver/batch_analyzer.h"
#include "interp/interpreter.h"

namespace sspar::driver {
namespace {

TEST(DriverDifferential, NoStaticParallelVerdictIsADynamicFalsePositive) {
  BatchAnalyzer analyzer(BatchOptions{/*threads=*/4, {}});
  BatchReport report = analyzer.run(BatchAnalyzer::corpus_inputs());
  ASSERT_EQ(report.programs.size(), corpus::all_entries().size());
  ASSERT_EQ(report.stats.failed, 0);

  int checked = 0;
  for (const ProgramReport& p : report.programs) {
    const corpus::Entry* entry = corpus::find_entry(p.name);
    ASSERT_NE(entry, nullptr) << p.name;
    ASSERT_TRUE(p.ok) << p.name << ": " << p.error;
    for (const auto& v : p.result.verdicts) {
      if (!v.parallel) continue;
      interp::Interpreter interp(*p.result.parsed.program);
      corpus::seed_interpreter_inputs(*entry, interp);
      auto oracle = interp.analyze_loop_dependences("f", v.loop);
      EXPECT_TRUE(oracle.executed) << p.name << " loop " << v.loop_id;
      EXPECT_TRUE(oracle.dependence_free)
          << p.name << " loop " << v.loop_id << " FALSE POSITIVE: " << oracle.first_conflict
          << " (static reason: " << v.reason << ")";
      ++checked;
    }
  }
  // The corpus is built so a substantial number of loops are provably
  // parallel; an empty check set would mean the differential test is vacuous.
  EXPECT_GT(checked, 10);
}

TEST(DriverDifferential, SerialLoopsWithBlockersAreReported) {
  // Sanity on the negative side of the differential: loops the static
  // analysis rejects must say why, so a comparison study can attribute them.
  BatchAnalyzer analyzer;
  BatchReport report = analyzer.run(BatchAnalyzer::corpus_inputs());
  for (const ProgramReport& p : report.programs) {
    ASSERT_TRUE(p.ok) << p.name;
    bool any_serial = false;
    bool any_blocker = false;
    for (const auto& v : p.result.verdicts) {
      if (!v.parallel) {
        any_serial = true;
        any_blocker = any_blocker || !v.blockers.empty();
      }
    }
    if (any_serial) {
      EXPECT_TRUE(any_blocker) << p.name;
    }
  }
}

}  // namespace
}  // namespace sspar::driver
