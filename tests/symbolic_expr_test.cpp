#include <gtest/gtest.h>

#include "symbolic/expr.h"

namespace sspar::sym {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  SymbolTable syms;
  SymbolId i = syms.intern("i");
  SymbolId n = syms.intern("n");
  SymbolId a = syms.intern("a");

  ExprPtr I() { return make_sym(i); }
  ExprPtr N() { return make_sym(n); }
  std::string str(const ExprPtr& e) { return to_string(e, syms); }
};

TEST_F(ExprTest, ConstFolding) {
  EXPECT_EQ(str(add(make_const(2), make_const(3))), "5");
  EXPECT_EQ(str(sub(make_const(2), make_const(3))), "-1");
  EXPECT_EQ(str(mul(make_const(4), make_const(-3))), "-12");
}

TEST_F(ExprTest, AdditionCanonicalizes) {
  // i + i == 2*i
  EXPECT_EQ(str(add(I(), I())), "2*i");
  // i - i == 0
  EXPECT_EQ(str(sub(I(), I())), "0");
  // (i + 2) + (n - 2) == i + n
  auto e = add(add(I(), make_const(2)), sub(N(), make_const(2)));
  EXPECT_EQ(str(e), "i + n");
}

TEST_F(ExprTest, StructuralEqualityIsSemanticForAffine) {
  auto e1 = add(mul_const(I(), 3), sub(N(), make_const(1)));
  auto e2 = sub(add(N(), mul_const(I(), 3)), make_const(1));
  EXPECT_TRUE(equal(e1, e2));
  EXPECT_EQ(compare(e1, e2), 0);
  EXPECT_EQ(hash(e1), hash(e2));
}

TEST_F(ExprTest, MulDistributesOverAdd) {
  // (i + 1) * 3 == 3*i + 3
  EXPECT_EQ(str(mul(add(I(), make_const(1)), make_const(3))), "3*i + 3");
  // (i + 1) * (i - 1) == i*i - 1
  auto e = mul(add(I(), make_const(1)), sub(I(), make_const(1)));
  EXPECT_EQ(str(e), "i*i - 1");
}

TEST_F(ExprTest, MulProductsAreSorted) {
  auto e1 = mul(N(), I());
  auto e2 = mul(I(), N());
  EXPECT_TRUE(equal(e1, e2));
}

TEST_F(ExprTest, BottomAbsorbs) {
  EXPECT_TRUE(is_bottom(add(make_bottom(), I())));
  EXPECT_TRUE(is_bottom(mul(I(), make_bottom())));
  EXPECT_TRUE(is_bottom(smin(make_bottom(), I())));
  EXPECT_TRUE(is_bottom(make_array_elem(a, make_bottom())));
}

TEST_F(ExprTest, DivFloorFolding) {
  EXPECT_EQ(str(div_floor(make_const(7), make_const(2))), "3");
  EXPECT_EQ(str(div_floor(make_const(-7), make_const(2))), "-4");
  EXPECT_EQ(str(div_floor(I(), make_const(1))), "i");
  EXPECT_TRUE(is_bottom(div_floor(I(), make_const(0))));
}

TEST_F(ExprTest, ModFolding) {
  EXPECT_EQ(str(mod(make_const(7), make_const(3))), "1");
  EXPECT_EQ(str(mod(make_const(-1), make_const(8))), "7");  // floor-mod
  EXPECT_EQ(str(mod(I(), make_const(1))), "0");
}

TEST_F(ExprTest, MinMaxFolding) {
  EXPECT_EQ(str(smin(make_const(3), make_const(5))), "3");
  EXPECT_EQ(str(smax(make_const(3), make_const(5))), "5");
  EXPECT_EQ(str(smin(I(), I())), "i");
  // min(i, i+3) folds to i via constant difference.
  EXPECT_EQ(str(smin(I(), add(I(), make_const(3)))), "i");
  EXPECT_EQ(str(smax(I(), add(I(), make_const(3)))), "i + 3");
}

TEST_F(ExprTest, MinMaxFlattenAndDedup) {
  auto e = smin(smin(I(), N()), I());
  EXPECT_EQ(str(e), "min(i, n)");
}

TEST_F(ExprTest, ArrayElemPrinting) {
  auto e = make_array_elem(a, sub(I(), make_const(1)));
  EXPECT_EQ(str(e), "a[i - 1]");
}

TEST_F(ExprTest, LambdaPrinting) {
  EXPECT_EQ(str(make_iter_start(i)), "lam.i");
  EXPECT_EQ(str(make_loop_start(i)), "LAM.i");
  EXPECT_EQ(str(make_bottom()), "_|_");
}

TEST_F(ExprTest, LinearFormRoundTrip) {
  auto e = add(mul_const(I(), 3), add(mul_const(make_array_elem(a, I()), -2), make_const(7)));
  LinearForm lf = to_linear(e);
  EXPECT_FALSE(lf.bottom);
  EXPECT_EQ(lf.constant, 7);
  EXPECT_EQ(lf.terms.size(), 2u);
  EXPECT_EQ(lf.coeff_of(I()), 3);
  EXPECT_EQ(lf.coeff_of(make_array_elem(a, I())), -2);
  EXPECT_TRUE(equal(from_linear(lf), e));
}

TEST_F(ExprTest, AsAffineIn) {
  auto aff = as_affine_in(add(mul_const(I(), 7), make_const(5)), i);
  ASSERT_TRUE(aff.has_value());
  EXPECT_EQ(aff->first, 7);
  EXPECT_EQ(aff->second, 5);

  EXPECT_FALSE(as_affine_in(mul(I(), I()), i).has_value());
  EXPECT_FALSE(as_affine_in(add(I(), N()), i).has_value());     // extra symbol term
  EXPECT_FALSE(as_affine_in(make_array_elem(a, I()), i).has_value());
}

TEST_F(ExprTest, AsAffineInConstant) {
  auto aff = as_affine_in(make_const(4), i);
  ASSERT_TRUE(aff.has_value());
  EXPECT_EQ(aff->first, 0);
  EXPECT_EQ(aff->second, 4);
}

TEST_F(ExprTest, SubstSym) {
  auto e = add(mul_const(I(), 2), N());
  auto r = subst_sym(e, i, make_const(5));
  EXPECT_EQ(str(r), "n + 10");
}

TEST_F(ExprTest, SubstIterAndLoopStart) {
  SymbolId x = syms.intern("x");
  auto e = add(make_iter_start(x), make_const(1));
  auto r = subst_iter_start(e, x, make_loop_start(x));
  EXPECT_EQ(str(r), "LAM.x + 1");
  r = subst_loop_start(r, x, make_const(0));
  EXPECT_EQ(str(r), "1");
}

TEST_F(ExprTest, SubstInsideArrayElem) {
  auto e = make_array_elem(a, sub(I(), make_const(1)));
  auto r = subst_sym(e, i, add(I(), make_const(1)));
  EXPECT_EQ(str(r), "a[i]");
}

TEST_F(ExprTest, ContainsQueries) {
  auto e = make_array_elem(a, add(I(), make_const(1)));
  EXPECT_TRUE(contains_sym(e, i));
  EXPECT_FALSE(contains_sym(e, n));
  EXPECT_TRUE(contains_kind(e, ExprKind::ArrayElem));
  EXPECT_FALSE(contains_kind(e, ExprKind::Min));
}

TEST_F(ExprTest, CollectArrayElems) {
  SymbolId b = syms.intern("b");
  auto e = add(make_array_elem(a, I()), make_array_elem(b, N()));
  EXPECT_EQ(collect_array_elems(e).size(), 2u);
  EXPECT_EQ(collect_array_elems(e, a).size(), 1u);
  EXPECT_EQ(collect_array_elems(e, a)[0]->symbol, a);
}

TEST_F(ExprTest, PrintingOfNegativeTerms) {
  auto e = sub(make_const(3), mul_const(I(), 2));
  EXPECT_EQ(str(e), "-2*i + 3");
}

// Property-style sweep: add/sub/mul_const agree with direct integer math for
// constant expressions across a parameter grid.
class ExprArithSweep : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(ExprArithSweep, ConstantsBehaveLikeIntegers) {
  auto [x, y] = GetParam();
  auto ex = make_const(x);
  auto ey = make_const(y);
  EXPECT_EQ(const_value(add(ex, ey)), x + y);
  EXPECT_EQ(const_value(sub(ex, ey)), x - y);
  EXPECT_EQ(const_value(mul(ex, ey)), x * y);
  EXPECT_EQ(const_value(smin(ex, ey)), std::min(x, y));
  EXPECT_EQ(const_value(smax(ex, ey)), std::max(x, y));
  if (y != 0) {
    int64_t q = *const_value(div_floor(ex, ey));
    int64_t r = *const_value(mod(ex, ey));
    EXPECT_EQ(q * y + r, x) << "floor div/mod identity";
    if (y > 0) {
      EXPECT_GE(r, 0);
      EXPECT_LT(r, y);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ExprArithSweep,
    ::testing::Combine(::testing::Values(-7, -2, -1, 0, 1, 3, 10),
                       ::testing::Values(-5, -1, 0, 1, 2, 8)));

}  // namespace
}  // namespace sspar::sym
