// Tests for the staged pipeline::Session API, the structured diagnostics it
// reports, the Assumptions helper, and the JSON report round-trip.
#include <gtest/gtest.h>

#include "corpus/analysis.h"
#include "driver/batch_analyzer.h"
#include "driver/json_report.h"
#include "interp/interpreter.h"
#include "pipeline/session.h"
#include "support/json.h"
#include "transform/omp_emitter.h"

namespace sspar::pipeline {
namespace {

// An identity-permutation kernel: the second loop is parallel only while
// the identity rule derives facts about perm, which makes analysis results
// observably depend on AnalyzerOptions (for the re-analysis tests).
const char* kPermSource = R"(
  int n;
  int perm[100];
  double a[100];
  void f(void) {
    for (int i = 0; i < n; i++) {
      perm[i] = i;
    }
    for (int i = 0; i < n; i++) {
      a[perm[i]] = a[perm[i]] * 2.0;
    }
  }
)";

int parallel_count(const std::vector<core::LoopVerdict>& verdicts) {
  int count = 0;
  for (const auto& v : verdicts) count += v.parallel ? 1 : 0;
  return count;
}

// ---------------------------------------------------------------------------
// Session staging & caching
// ---------------------------------------------------------------------------

TEST(Session, StagesRunInOrderAndImplyPredecessors) {
  Session session(kPermSource, {{"n", 1}});
  // parallelize() alone runs parse + analyze + parallelize.
  const auto* verdicts = session.parallelize();
  ASSERT_NE(verdicts, nullptr);
  EXPECT_EQ(verdicts->size(), 2u);
  EXPECT_EQ(session.stats().parse.runs, 1);
  EXPECT_EQ(session.stats().analyze.runs, 1);
  EXPECT_EQ(session.stats().parallelize.runs, 1);
  EXPECT_EQ(parallel_count(*verdicts), 2);
}

TEST(Session, ReanalyzeWithDifferentOptionsReusesCachedParse) {
  Session session(kPermSource, {{"n", 1}});
  const AnalysisResult* first = session.analyze();
  ASSERT_NE(first, nullptr);
  const ast::Program* program_before = session.program();
  const auto* verdicts_all = session.parallelize();
  ASSERT_NE(verdicts_all, nullptr);
  int with_rule = parallel_count(*verdicts_all);

  // perm[i] = i is derivable through either the identity rule or the affine
  // value rule; only disabling both removes all facts about perm.
  core::AnalyzerOptions no_identity;
  no_identity.enable_identity_rule = false;
  no_identity.enable_affine_value_rule = false;
  const AnalysisResult* second = session.analyze(no_identity);
  ASSERT_NE(second, nullptr);
  const auto* verdicts_ablated = session.parallelize();
  ASSERT_NE(verdicts_ablated, nullptr);

  // (a) the parse ran exactly once and the AST is the same object...
  EXPECT_EQ(session.stats().parse.runs, 1);
  EXPECT_EQ(session.program(), program_before);
  // ...while the analysis genuinely re-ran and produced different verdicts.
  EXPECT_EQ(session.stats().analyze.runs, 2);
  EXPECT_LT(parallel_count(*verdicts_ablated), with_rule);
}

TEST(Session, AnalyzeWithEqualOptionsHitsTheCache) {
  Session session(kPermSource, {{"n", 1}});
  const AnalysisResult* first = session.analyze();
  ASSERT_NE(first, nullptr);
  const AnalysisResult* again = session.analyze(core::AnalyzerOptions{});
  EXPECT_EQ(first, again);
  EXPECT_EQ(session.stats().analyze.runs, 1);
  // The cached analysis also preserves the verdict cache.
  const auto* v1 = session.parallelize();
  const auto* v2 = session.parallelize();
  EXPECT_EQ(v1, v2);
  EXPECT_EQ(session.stats().parallelize.runs, 1);
}

TEST(Session, AnnotateIsReentrantAcrossReanalysis) {
  Session session(kPermSource, {{"n", 1}});
  EXPECT_EQ(session.annotate(), 2);
  std::string annotated_once = session.emit().output;

  // Disable the enabling rules: fewer pragmas, and the old ones must be gone.
  core::AnalyzerOptions no_identity;
  no_identity.enable_identity_rule = false;
  no_identity.enable_affine_value_rule = false;
  session.analyze(no_identity);
  int annotated = session.annotate();
  EXPECT_LT(annotated, 2);
  std::string annotated_again = session.emit().output;
  EXPECT_NE(annotated_once, annotated_again);

  // Re-enabling reproduces the original output exactly (no stale pragmas,
  // no duplicates).
  session.analyze(core::AnalyzerOptions{});
  EXPECT_EQ(session.annotate(), 2);
  EXPECT_EQ(session.emit().output, annotated_once);
}

TEST(Session, TakeParseDropsDerivedCaches) {
  Session session(kPermSource, {{"n", 1}});
  ASSERT_NE(session.analyze(), nullptr);
  {
    ast::ParseResult owned = session.take_parse();
    ASSERT_TRUE(owned.ok);
  }  // moved-out AST destroyed here
  // analyze() with the same options must not serve the stale cached
  // analysis (its analyzer referenced the destroyed AST); the session
  // re-parses from source and re-analyzes.
  const AnalysisResult* fresh = session.analyze();
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(session.stats().parse.runs, 2);
  EXPECT_EQ(session.stats().analyze.runs, 2);
  const auto* verdicts = session.parallelize();
  ASSERT_NE(verdicts, nullptr);
  EXPECT_EQ(parallel_count(*verdicts), 2);
}

TEST(Session, EmitWithoutAnnotateEmitsPlainSource) {
  Session session(kPermSource, {{"n", 1}});
  EmitResult emitted = session.emit();
  ASSERT_TRUE(emitted.ok);
  EXPECT_EQ(emitted.annotated, 0);
  EXPECT_EQ(emitted.output.find("#pragma"), std::string::npos);
}

TEST(Session, ParseFailureMakesDownstreamStagesNull) {
  Session session("void f( { nope");
  EXPECT_FALSE(session.parse());
  EXPECT_EQ(session.analyze(), nullptr);
  EXPECT_EQ(session.parallelize(), nullptr);
  EXPECT_EQ(session.annotate(), -1);
  EXPECT_FALSE(session.emit().ok);
  EXPECT_TRUE(session.diagnostics().has_errors());
  // Only one parse attempt despite five stage calls.
  EXPECT_EQ(session.stats().parse.runs, 1);
}

// ---------------------------------------------------------------------------
// Structured diagnostics (stable codes + locations)
// ---------------------------------------------------------------------------

TEST(Diagnostics, FrontendErrorsCarryStableCodesAndLocations) {
  struct Case {
    const char* source;
    support::DiagCode code;
  };
  const Case cases[] = {
      {"void f() { y = 1; }", support::DiagCode::SemaUndeclared},
      {"void f() { int x; int x; }", support::DiagCode::SemaRedeclaration},
      {"void f(int x) { x[0] = 1; }", support::DiagCode::SemaNotAnArray},
      {"void f() { int x = ; }", support::DiagCode::ParseExpectedExpr},
      {"void f() { int x = 1 @ 2; }", support::DiagCode::LexUnexpectedChar},
  };
  for (const Case& c : cases) {
    Session session(c.source);
    EXPECT_FALSE(session.parse()) << c.source;
    const auto& diags = session.diagnostics().diagnostics();
    ASSERT_FALSE(diags.empty()) << c.source;
    bool found = false;
    for (const auto& d : diags) {
      if (d.code == c.code) {
        found = true;
        EXPECT_TRUE(d.location.valid()) << c.source;
        EXPECT_EQ(d.severity, support::Severity::Error);
        // The stable spelling is embedded in the rendered form.
        EXPECT_NE(d.to_string().find(support::diag_code_name(c.code)), std::string::npos);
      }
    }
    EXPECT_TRUE(found) << c.source << "\n" << session.diagnostics().dump();
  }
}

TEST(Diagnostics, TranslateSourceExposesStructuredRecords) {
  auto result = transform::translate_source("void f() { y = 1; }");
  EXPECT_FALSE(result.ok);
  ASSERT_FALSE(result.diags.empty());
  EXPECT_EQ(result.diags[0].code, support::DiagCode::SemaUndeclared);
  EXPECT_TRUE(result.diags[0].location.valid());
}

// ---------------------------------------------------------------------------
// EnablingProperty enum
// ---------------------------------------------------------------------------

TEST(EnablingProperty, VerdictsCarryTheEnumMatchingTheReasonPrefix) {
  Session session(kPermSource, {{"n", 1}});
  const auto* verdicts = session.parallelize();
  ASSERT_NE(verdicts, nullptr);
  for (const auto& v : *verdicts) {
    if (!v.parallel) {
      EXPECT_EQ(v.property, core::EnablingProperty::None);
      continue;
    }
    EXPECT_NE(v.property, core::EnablingProperty::None);
    // The legacy string key and the enum agree.
    EXPECT_EQ(driver::property_key(v.reason), core::property_name(v.property));
  }
  // The a[perm[i]] loop needs an index-array property (not plain affine
  // reasoning) — the identity fill makes perm's ranges/injectivity provable.
  bool saw_indirection_property = false;
  for (const auto& v : *verdicts) {
    if (v.parallel && v.uses_subscripted_subscripts) {
      EXPECT_TRUE(v.property == core::EnablingProperty::Monotonic ||
                  v.property == core::EnablingProperty::Injective)
          << core::property_name(v.property);
      saw_indirection_property = true;
    }
  }
  EXPECT_TRUE(saw_indirection_property);
}

// ---------------------------------------------------------------------------
// Assumptions (one encoding for analyzer bounds and interpreter inputs)
// ---------------------------------------------------------------------------

TEST(Assumptions, SpecParsingAcceptsValidRejectsMalformed) {
  Assumptions assumptions;
  EXPECT_TRUE(assumptions.add_spec("n=4"));
  EXPECT_TRUE(assumptions.add_spec("m=-2"));
  EXPECT_FALSE(assumptions.add_spec("noequals"));
  EXPECT_FALSE(assumptions.add_spec("=5"));
  EXPECT_FALSE(assumptions.add_spec("n=abc"));
  EXPECT_FALSE(assumptions.add_spec("n=4x"));
  ASSERT_EQ(assumptions.size(), 2u);
  EXPECT_EQ(assumptions.items()[0].name, "n");
  EXPECT_EQ(assumptions.items()[0].value, 4);
  EXPECT_EQ(assumptions.items()[1].value, -2);
}

TEST(Assumptions, SeedsInterpreterScalars) {
  Assumptions assumptions{{"n", 7}};
  support::DiagnosticEngine diags;
  auto parsed = ast::parse_and_resolve("int n; void f(void) { n = n; }", diags);
  ASSERT_TRUE(parsed.ok);
  interp::Interpreter interp(*parsed.program);
  assumptions.seed_interpreter(interp);
  EXPECT_EQ(interp.scalar_int("n"), 7);
}

TEST(Assumptions, CorpusHelpersSplitAnalyzerAndInterpreterViews) {
  const corpus::Entry* entry = corpus::find_entry("CG");
  ASSERT_NE(entry, nullptr);
  ASSERT_FALSE(entry->params.empty());
  Assumptions analyzer_view = corpus::analyzer_assumptions(*entry);
  Assumptions interp_view = corpus::interpreter_params(*entry);
  ASSERT_EQ(analyzer_view.size(), entry->params.size());
  ASSERT_EQ(interp_view.size(), entry->params.size());
  for (size_t i = 0; i < entry->params.size(); ++i) {
    EXPECT_EQ(analyzer_view.items()[i].name, entry->params[i].name);
    EXPECT_EQ(analyzer_view.items()[i].value, entry->params[i].assume_min);
    EXPECT_EQ(interp_view.items()[i].value, entry->params[i].interp_value);
  }
}

// ---------------------------------------------------------------------------
// JSON report round-trip (the --json contract)
// ---------------------------------------------------------------------------

TEST(JsonReport, BatchStatsRoundTripThroughParser) {
  // The exact document sspar-analyze --json prints for these inputs.
  driver::BatchAnalyzer analyzer(driver::BatchOptions{2, {}});
  std::vector<driver::ProgramInput> inputs = {
      driver::ProgramInput{"perm", kPermSource, {{"n", 1}}},
      driver::ProgramInput{"bad", "void f( {", {}},
  };
  driver::BatchReport report = analyzer.run(inputs);
  ASSERT_EQ(report.stats.programs, 2);
  ASSERT_EQ(report.stats.failed, 1);
  ASSERT_FALSE(report.stats.property_counts.empty());

  std::string text = driver::batch_report_to_json(report, analyzer.threads()).dump(2);
  std::string error;
  auto parsed = support::json::parse(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;

  const support::json::Value* stats = parsed->find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(driver::stats_from_json(*stats), report.stats);

  // Per-program structure survives too.
  const support::json::Value* programs = parsed->find("programs");
  ASSERT_NE(programs, nullptr);
  ASSERT_EQ(programs->as_array().size(), 2u);
  const support::json::Value& bad = programs->as_array()[1];
  EXPECT_FALSE(bad.find("ok")->as_bool());
  const support::json::Value* diags = bad.find("diagnostics");
  ASSERT_NE(diags, nullptr);
  ASSERT_FALSE(diags->as_array().empty());
  EXPECT_FALSE(diags->as_array()[0].find("code")->as_string().empty());
}

TEST(JsonReport, CorpusStatsRoundTripExactly) {
  driver::BatchAnalyzer analyzer;
  driver::BatchReport report = analyzer.run(driver::BatchAnalyzer::corpus_inputs());
  std::string text = driver::batch_report_to_json(report, analyzer.threads()).dump();
  auto parsed = support::json::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(driver::stats_from_json(*parsed->find("stats")), report.stats);
}

TEST(JsonReport, FactsSerializeByArrayName) {
  Session session(R"(
    int n;
    int ptr[101];
    void f(void) {
      ptr[0] = 0;
      for (int i = 1; i < n + 1; i++) {
        ptr[i] = ptr[i-1] + 1;
      }
    }
  )",
                  {{"n", 1}});
  ASSERT_NE(session.parallelize(), nullptr);
  const core::Analyzer* analyzer = session.analyzer();
  ASSERT_NE(analyzer, nullptr);
  const ast::FuncDecl* f = session.program()->find_function("f");
  const core::FactDB* facts = analyzer->facts_at_end(f);
  ASSERT_NE(facts, nullptr);
  auto json = driver::facts_to_json(*facts, *session.symbols());
  const support::json::Value* ptr_facts = json.find("ptr");
  ASSERT_NE(ptr_facts, nullptr);
  // The prefix-sum loop derives a step fact for ptr.
  EXPECT_FALSE(ptr_facts->find("steps")->as_array().empty());
  // And the document is valid JSON.
  EXPECT_TRUE(support::json::parse(json.dump(2)).has_value());
}

// ---------------------------------------------------------------------------
// JSON value model basics
// ---------------------------------------------------------------------------

TEST(Json, ParseRejectsMalformedDocuments) {
  EXPECT_FALSE(support::json::parse("{").has_value());
  EXPECT_FALSE(support::json::parse("[1,]").has_value());
  EXPECT_FALSE(support::json::parse("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(support::json::parse("nul").has_value());
  // Malformed numbers: partial-prefix parses must not be accepted.
  EXPECT_FALSE(support::json::parse("1.2.3").has_value());
  EXPECT_FALSE(support::json::parse("1e+").has_value());
  EXPECT_FALSE(support::json::parse("+5").has_value());
  EXPECT_FALSE(support::json::parse(".5").has_value());
  std::string error;
  EXPECT_FALSE(support::json::parse("", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Json, EscapesRoundTrip) {
  support::json::Object o;
  o.emplace("k\"ey", support::json::Value("line1\nline2\ttab \\slash"));
  std::string text = support::json::Value(std::move(o)).dump();
  auto parsed = support::json::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("k\"ey")->as_string(), "line1\nline2\ttab \\slash");
}

TEST(Json, NumbersRoundTrip) {
  auto parsed = support::json::parse("{\"i\":-42,\"d\":2.5,\"big\":123456789012345}");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->int_or("i", 0), -42);
  EXPECT_EQ(parsed->find("d")->as_double(), 2.5);
  EXPECT_EQ(parsed->int_or("big", 0), 123456789012345);
  EXPECT_EQ(parsed->int_or("absent", 9), 9);
}

}  // namespace
}  // namespace sspar::pipeline
