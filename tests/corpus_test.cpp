// Integration tests over the benchmark corpus: expected verdicts, soundness
// against the dynamic dependence oracle, and permuted-execution equivalence.
#include <gtest/gtest.h>

#include "corpus/analysis.h"
#include "interp/interpreter.h"
#include "support/text.h"

namespace sspar::corpus {
namespace {

// Shared with the driver differential tests; lives in corpus/analysis.
void seed_inputs(const Entry& entry, interp::Interpreter& interp) {
  seed_interpreter_inputs(entry, interp);
}

class CorpusTest : public ::testing::TestWithParam<const char*> {
 protected:
  const Entry& entry() {
    const Entry* e = find_entry(GetParam());
    EXPECT_NE(e, nullptr);
    return *e;
  }
};

TEST_P(CorpusTest, AnalysisMatchesExpectedVerdicts) {
  const Entry& e = entry();
  EntryAnalysis analysis = analyze_entry(e);
  ASSERT_TRUE(analysis.ok) << analysis.diagnostics;
  EXPECT_EQ(analysis.loops, e.expected_loops) << e.name;
  EXPECT_EQ(analysis.subscripted, e.expected_subscripted) << e.name;
  EXPECT_EQ(analysis.parallel, e.expected_parallel) << e.name;
  EXPECT_EQ(analysis.parallel_subscripted, e.expected_parallel_subscripted) << e.name;
  if (e.expected_parallel < analysis.loops) {
    // At least one loop is (correctly) not parallel; blockers must say why.
    bool has_blocker = false;
    for (const auto& v : analysis.verdicts) {
      if (!v.parallel) has_blocker = has_blocker || !v.blockers.empty();
    }
    EXPECT_TRUE(has_blocker);
  }
}

TEST_P(CorpusTest, StaticParallelImpliesDynamicallyDependenceFree) {
  const Entry& e = entry();
  EntryAnalysis analysis = analyze_entry(e);
  ASSERT_TRUE(analysis.ok) << analysis.diagnostics;
  for (const auto& v : analysis.verdicts) {
    if (!v.parallel) continue;
    interp::Interpreter interp(*analysis.parsed.program);
    seed_inputs(e, interp);
    auto report = interp.analyze_loop_dependences("f", v.loop);
    EXPECT_TRUE(report.executed) << e.name << " loop " << v.loop_id;
    EXPECT_TRUE(report.dependence_free)
        << e.name << " loop " << v.loop_id << " UNSOUND: " << report.first_conflict
        << " (reason was: " << v.reason << ")";
  }
}

TEST_P(CorpusTest, PermutedExecutionPreservesState) {
  const Entry& e = entry();
  EntryAnalysis analysis = analyze_entry(e);
  ASSERT_TRUE(analysis.ok) << analysis.diagnostics;

  interp::Interpreter sequential(*analysis.parsed.program);
  seed_inputs(e, sequential);
  sequential.run("f");
  auto expected = sequential.snapshot();

  for (const auto& v : analysis.verdicts) {
    if (!v.parallel) continue;
    // Only outermost parallel loops are transformed; nested ones execute
    // inside them.
    std::set<std::string> exclude;
    for (const auto* decl : v.privates) exclude.insert(decl->name);
    for (uint64_t seed : {3u, 17u}) {
      interp::Interpreter permuted(*analysis.parsed.program);
      seed_inputs(e, permuted);
      permuted.run_permuted("f", v.loop, seed);
      auto got = permuted.snapshot();
      std::string diff;
      EXPECT_TRUE(interp::Interpreter::equal_state(*expected, *got, exclude, &diff))
          << e.name << " loop " << v.loop_id << " differs at " << diff << " (seed " << seed
          << ", reason: " << v.reason << ")";
    }
  }
}

std::vector<const char*> corpus_names() {
  std::vector<const char*> names;
  for (const Entry& e : all_entries()) names.push_back(e.name.c_str());
  return names;
}

INSTANTIATE_TEST_SUITE_P(All, CorpusTest, ::testing::ValuesIn(corpus_names()),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

TEST(Corpus, SurveyRatiosMatchThePaper) {
  // Paper Section 1/2: 6 of 10 NPB programs and 4 of 8 SuiteSparse programs
  // contain parallelizable loops with subscripted-subscript patterns.
  int npb_total = 0, npb_with = 0, ss_total = 0, ss_with = 0;
  for (const Entry& e : all_entries()) {
    if (e.suite == Suite::NPB) {
      ++npb_total;
      if (e.has_pattern) ++npb_with;
    } else if (e.suite == Suite::SuiteSparse) {
      ++ss_total;
      if (e.has_pattern) ++ss_with;
    }
  }
  EXPECT_EQ(npb_total, 10);
  EXPECT_EQ(npb_with, 6);
  EXPECT_EQ(ss_total, 8);
  EXPECT_EQ(ss_with, 4);
}

TEST(Corpus, PatternEntriesDetectSubscriptedParallelLoops) {
  for (const Entry& e : all_entries()) {
    if (!e.has_pattern) continue;
    EXPECT_GT(e.expected_parallel_subscripted, 0) << e.name;
  }
}

TEST(Corpus, EntriesAreUniquelyNamed) {
  std::set<std::string> names;
  for (const Entry& e : all_entries()) {
    EXPECT_TRUE(names.insert(e.name).second) << "duplicate " << e.name;
  }
  EXPECT_NE(find_entry("fig9"), nullptr);
  EXPECT_EQ(find_entry("nonexistent"), nullptr);
}

}  // namespace
}  // namespace sspar::corpus
