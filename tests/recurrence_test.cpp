// Chains-of-recurrences canonicalization (symbolic/recurrence.h): randomized
// differential checks against brute-force substitution, hash/pointer-equality
// stability within and across arenas, and the relocated-loop regression.
#include "symbolic/recurrence.h"

#include <gtest/gtest.h>

#include <random>

#include "symbolic/arena.h"
#include "symbolic/expr.h"

namespace sspar::sym {
namespace {

constexpr SymbolId kI = 1;   // loop index
constexpr SymbolId kJ = 2;   // outer loop index
constexpr SymbolId kM = 3;   // symbolic stride
constexpr SymbolId kQ = 4;   // symbolic offset
constexpr SymbolId kArr = 9;

// A random expression affine in kI: c1*i + c2*m*i + c3*j + c4*q + c5.
ExprPtr random_affine(std::mt19937& rng) {
  std::uniform_int_distribution<int64_t> coeff(-5, 5);
  ExprPtr i = make_sym(kI);
  ExprPtr e = make_const(coeff(rng));
  e = add(e, mul_const(i, coeff(rng)));
  e = add(e, mul_const(mul(make_sym(kM), i), coeff(rng)));
  e = add(e, mul_const(make_sym(kJ), coeff(rng)));
  e = add(e, mul_const(make_sym(kQ), coeff(rng)));
  return e;
}

TEST(RecurrenceTest, DifferentialAgainstSubstitution) {
  // value_at(chain, k) must be pointer-equal to substituting k for the index:
  // both canonicalize through the same interning arena.
  std::mt19937 rng(20260808);
  std::uniform_int_distribution<int64_t> first_dist(-3, 3);
  RecurrenceBuilder& rec = ExprArena::current().recurrences();
  for (int trial = 0; trial < 200; ++trial) {
    ExprPtr e = random_affine(rng);
    ExprPtr first = make_const(first_dist(rng));
    const RecChain* chain = rec.chain_for(e, kI, first);
    ASSERT_NE(chain, nullptr);
    for (int64_t k = -4; k <= 8; ++k) {
      ExprPtr at_k = RecurrenceBuilder::value_at(*chain, make_const(k));
      ExprPtr brute = subst_sym(e, kI, make_const(k));
      EXPECT_EQ(at_k, brute) << "trial " << trial << " k " << k;
    }
  }
}

TEST(RecurrenceTest, DifferentialNumericOnRandomizedNests) {
  // Concretize every free symbol and compare numeric evaluation of the chain
  // against the original expression across a simulated loop nest
  // (j outer, i inner) — the interpreter's-eye view of the subscripts.
  std::mt19937 rng(7);
  std::uniform_int_distribution<int64_t> val(-7, 7);
  RecurrenceBuilder& rec = ExprArena::current().recurrences();
  for (int trial = 0; trial < 100; ++trial) {
    ExprPtr e = random_affine(rng);
    int64_t m = val(rng), q = val(rng);
    for (int64_t j = 0; j < 3; ++j) {
      auto concretize = [&](ExprPtr x) {
        x = subst_sym(x, kM, make_const(m));
        x = subst_sym(x, kQ, make_const(q));
        return subst_sym(x, kJ, make_const(j));
      };
      const RecChain* chain = rec.chain_for(e, kI, make_const(0));
      ASSERT_NE(chain, nullptr);
      for (int64_t i = 0; i < 6; ++i) {
        auto expect = const_value(concretize(subst_sym(e, kI, make_const(i))));
        ExprPtr base = concretize(chain->base);
        ExprPtr stride = concretize(chain->stride);
        auto got = const_value(add(base, mul_const(stride, i)));
        ASSERT_TRUE(expect.has_value());
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, *expect) << "trial " << trial << " j " << j << " i " << i;
      }
    }
  }
}

TEST(RecurrenceTest, ChainsArePointerEqualWithinBuilder) {
  RecurrenceBuilder& rec = ExprArena::current().recurrences();
  ExprPtr e1 = add(mul_const(make_sym(kI), 3), make_sym(kQ));
  const RecChain* a = rec.chain_for(e1, kI, make_const(0));
  // Rebuild the structurally identical expression through different factory
  // paths; interning makes it the same node, and the chain memo the same chain.
  ExprPtr e2 = add(make_sym(kQ), mul(make_sym(kI), make_const(3)));
  const RecChain* b = rec.chain_for(e2, kI, make_const(0));
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);
  EXPECT_EQ(RecurrenceBuilder::const_stride(*a), std::optional<int64_t>(3));
}

TEST(RecurrenceTest, RelocatedIdenticalLoopProducesIdenticalChain) {
  // Regression: a loop that moved in the source (same bounds, same body)
  // re-derives its subscript expressions later and in a different creation
  // order; the chain must come back pointer-identical, not merely equal.
  RecurrenceBuilder& rec = ExprArena::current().recurrences();
  ExprPtr subscript = add(mul(make_sym(kM), make_sym(kI)), make_const(2));
  const RecChain* before = rec.chain_for(subscript, kI, make_const(0));
  ASSERT_NE(before, nullptr);
  // Unrelated interning traffic between the two "locations".
  for (int64_t v = 100; v < 140; ++v) {
    (void)add(make_sym(kQ), make_const(v));
    (void)make_array_elem(kArr, make_const(v));
  }
  ExprPtr relocated = add(make_const(2), mul(make_sym(kI), make_sym(kM)));
  const RecChain* after = rec.chain_for(relocated, kI, make_const(0));
  EXPECT_EQ(before, after);
}

TEST(RecurrenceTest, HashStableAcrossArenas) {
  auto build_chain_hash = [](size_t* chain_count) {
    ExprArena arena;
    ArenaScope scope(arena);
    RecurrenceBuilder& rec = arena.recurrences();
    ExprPtr e = add(mul(make_sym(kM), make_sym(kI)), make_sym(kQ));
    const RecChain* chain = rec.chain_for(e, kI, make_const(1));
    EXPECT_NE(chain, nullptr);
    *chain_count = rec.stats().chains;
    return chain->hash_value;
  };
  size_t n1 = 0, n2 = 0;
  size_t h1 = build_chain_hash(&n1);
  size_t h2 = build_chain_hash(&n2);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(n1, n2);
}

TEST(RecurrenceTest, NestedChainOverOuterIndex) {
  // e = 4*j + i: the inner chain's base (over i, anchored at i = 0) is 4*j,
  // itself a chain over the outer index j.
  RecurrenceBuilder& rec = ExprArena::current().recurrences();
  ExprPtr e = add(mul_const(make_sym(kJ), 4), make_sym(kI));
  const RecChain* inner = rec.chain_for(e, kI, make_const(0));
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(RecurrenceBuilder::const_stride(*inner), std::optional<int64_t>(1));
  const RecChain* outer = rec.chain_for(inner->base, kJ, make_const(0));
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(RecurrenceBuilder::const_stride(*outer), std::optional<int64_t>(4));
  EXPECT_EQ(const_value(outer->base), std::optional<int64_t>(0));
}

TEST(RecurrenceTest, RejectsNonAffineAndLambdaDependence) {
  RecurrenceBuilder& rec = ExprArena::current().recurrences();
  ExprPtr i = make_sym(kI);
  // i*i: the index appears twice in one product.
  EXPECT_EQ(rec.chain_for(mul(i, i), kI, make_const(0)), nullptr);
  // a[i]: the index inside a subscript.
  EXPECT_EQ(rec.chain_for(make_array_elem(kArr, i), kI, make_const(0)), nullptr);
  // λ(x) + i: per-iteration state with no closed form over i.
  EXPECT_EQ(rec.chain_for(add(make_iter_start(kQ), i), kI, make_const(0)), nullptr);
  // div(i, 2): non-linear in the index.
  EXPECT_EQ(rec.chain_for(div_floor(i, make_const(2)), kI, make_const(0)), nullptr);
  // Index-free expressions are the degenerate {e, +, 0} chain.
  const RecChain* inv = rec.chain_for(make_sym(kQ), kI, make_const(0));
  ASSERT_NE(inv, nullptr);
  EXPECT_EQ(RecurrenceBuilder::const_stride(*inv), std::optional<int64_t>(0));
  // Failures are memoized too (second query answers from the memo).
  size_t hits = rec.stats().memo_hits;
  EXPECT_EQ(rec.chain_for(mul(i, i), kI, make_const(0)), nullptr);
  EXPECT_GT(rec.stats().memo_hits, hits);
}

}  // namespace
}  // namespace sspar::sym
