// Crash matrix for the persistent store's recovery paths: for EVERY
// registered store.* fault point, fork a child, arm that point with "kill"
// (raise SIGKILL — no atexit, no flushes, the closest a test gets to the
// machine losing the process), let the child run a full warm batch + flush
// against the shared journal-mode store, and assert that the survivor state
//
//   * reloads without quarantine (open() == true, no "<path>.corrupt"),
//   * still holds every durable record (at most the in-flight batch lost),
//   * serves a warm run whose report is BYTE-IDENTICAL (modulo wall-clock)
//     to an uncrashed control run, with warm store hits > 0.
//
// This is the determinism contract of ISSUE 8: a SIGKILL at any fault point
// must be indistinguishable, to the next run, from no crash at all.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "driver/json_report.h"
#include "driver/store_session.h"
#include "store/summary_store.h"
#include "support/faultpoint.h"
#include "support/json.h"

namespace sspar::store {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "sspar_store_crash_" + name;
}

// Two programs sharing a byte-identical helper and a recursive helper — the
// same corpus shape the store tests use, so the store ends up holding both
// plain and SCC summaries.
std::vector<driver::ProgramInput> crash_inputs() {
  const char* kProgramA = R"(
    int n;
    int acc;
    int a[100];
    int idx[100];
    int clamp(int v) {
      if (v < 0) { v = 0; }
      return v;
    }
    int rec(int k) {
      if (k > 0) { acc = acc + rec(k - 1); }
      return acc;
    }
    void main_loop() {
      acc = rec(n);
      for (int i = 0; i < n; i++) {
        a[idx[i]] = clamp(i);
      }
    }
  )";
  const char* kProgramB = R"(
    int n;
    int acc;
    int b[100];
    int clamp(int v) {
      if (v < 0) { v = 0; }
      return v;
    }
    int rec(int k) {
      if (k > 0) { acc = acc + rec(k - 1); }
      return acc;
    }
    void other() {
      acc = rec(n);
      for (int i = 0; i < n; i++) {
        b[i] = clamp(i);
      }
    }
  )";
  std::vector<driver::ProgramInput> inputs;
  inputs.push_back(driver::ProgramInput{"prog_a", kProgramA, {{"n", 1}}});
  inputs.push_back(driver::ProgramInput{"prog_b", kProgramB, {{"n", 1}}});
  return inputs;
}

StoreOptions journal_options() {
  StoreOptions options;
  options.journal = true;
  return options;
}

// Zeroes every "total_ms" — wall-clock is the one legitimately varying field.
void canonicalize(support::json::Value& value) {
  if (value.is_object()) {
    for (auto& [key, child] : value.as_object()) {
      if (key == "total_ms") {
        child = support::json::Value(int64_t{0});
      } else {
        canonicalize(child);
      }
    }
  } else if (value.is_array()) {
    for (auto& child : value.as_array()) canonicalize(child);
  }
}

std::string canonical_report(const driver::BatchReport& report) {
  support::json::Value json = driver::batch_report_to_json(report, 1, true);
  canonicalize(json);
  return json.dump(2);
}

// One warm run against the store at `path`; everything serial (threads=1)
// so forked children never clone a threaded parent.
driver::BatchReport warm_run(const std::string& path) {
  driver::BatchOptions options;
  options.threads = 1;
  SummaryStore store(path, journal_options());
  EXPECT_TRUE(store.open());
  return driver::run_with_store(crash_inputs(), options, &store);
}

// The child's life: arm the point, then walk every store code path the
// point could live on — open (replay), warm batch (journal append), full
// flush. Exits 0 only if the armed point never fired, which the parent
// treats as a matrix bug.
[[noreturn]] void child_run(const std::string& path, const std::string& point) {
  ::alarm(10);  // a wedged child must not hang the suite
  support::faultpoint::disarm_all();
  support::faultpoint::arm(point, "kill");
  {
    driver::BatchOptions options;
    options.threads = 1;
    SummaryStore store(path, journal_options());
    store.open();
    driver::run_with_store(crash_inputs(), options, &store);
    store.flush();
  }
  ::_exit(0);
}

TEST(StoreCrashMatrix, KilledAtEveryStoreFaultPointReloadsConsistently) {
  if (!support::faultpoint::compiled_in()) GTEST_SKIP() << "faultpoints off";
  const std::string path = temp_path("matrix.bin");
  std::remove(path.c_str());
  std::remove((path + ".journal").c_str());
  std::remove((path + ".corrupt").c_str());
  std::remove((path + ".tmp").c_str());

  // Durable baseline: a cold run whose absorbed summaries the WAL holds.
  driver::BatchReport cold = warm_run(path);
  ASSERT_EQ(cold.stats.failed, 0);
  ASSERT_GT(cold.stats.store_misses, 0);
  size_t baseline = 0;
  {
    SummaryStore probe(path, journal_options());
    ASSERT_TRUE(probe.open());
    baseline = probe.size();
    ASSERT_GT(baseline, 0u);
    ASSERT_EQ(probe.stats().journal_replayed, baseline);
  }

  // Uncrashed control: every post-crash warm report must match this byte
  // for byte (modulo wall-clock).
  driver::BatchReport control = warm_run(path);
  ASSERT_GT(control.stats.store_hits, 0);
  ASSERT_EQ(control.stats.journal_replays, static_cast<int>(baseline));
  const std::string control_bytes = canonical_report(control);

  const std::vector<std::string> points = support::faultpoint::known_points("store.");
  ASSERT_GE(points.size(), 9u);
  for (const std::string& point : points) {
    SCOPED_TRACE(point);
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) child_run(path, point);  // never returns

    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    // The child must have died AT the armed point — exiting cleanly means
    // the matrix missed it (a site was removed without unregistering it).
    ASSERT_TRUE(WIFSIGNALED(status)) << "child exited " << WEXITSTATUS(status)
                                     << " instead of dying at " << point;
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    // Survivor state: reloads with no quarantine and no lost records.
    EXPECT_FALSE(std::ifstream(path + ".corrupt").good());
    {
      SummaryStore survivor(path, journal_options());
      ASSERT_TRUE(survivor.open());
      EXPECT_EQ(survivor.size(), baseline);
      EXPECT_EQ(survivor.stats().journal_replayed, baseline);
    }
    // And the next warm run cannot tell the crash ever happened.
    driver::BatchReport after = warm_run(path);
    EXPECT_GT(after.stats.store_hits, 0);
    EXPECT_TRUE(after.stats == control.stats);
    EXPECT_EQ(canonical_report(after), control_bytes);
  }

  std::remove(path.c_str());
  std::remove((path + ".journal").c_str());
  std::remove((path + ".tmp").c_str());
}

// The journal bounds data loss to the IN-FLIGHT batch: records absorbed by
// an earlier, completed run survive a kill during a LATER run's append, even
// when that later run was adding new records of its own.
TEST(StoreCrashMatrix, KillDuringAppendLosesAtMostTheInFlightBatch) {
  if (!support::faultpoint::compiled_in()) GTEST_SKIP() << "faultpoints off";
  const std::string path = temp_path("inflight.bin");
  std::remove(path.c_str());
  std::remove((path + ".journal").c_str());

  driver::BatchReport cold = warm_run(path);
  ASSERT_EQ(cold.stats.failed, 0);
  size_t baseline = 0;
  {
    SummaryStore probe(path, journal_options());
    ASSERT_TRUE(probe.open());
    baseline = probe.size();
  }

  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // This child analyzes a NEW program, so its absorb carries fresh 'A'
    // records — and dies before the batch is written.
    ::alarm(10);
    support::faultpoint::disarm_all();
    support::faultpoint::arm("store.journal.pre_append", "kill");
    driver::BatchOptions options;
    options.threads = 1;
    SummaryStore store(path, journal_options());
    store.open();
    std::vector<driver::ProgramInput> extra;
    extra.push_back(driver::ProgramInput{
        "prog_c",
        "int n; int c[50]; int half(int v) { if (v < 0) { v = 0; } return v; } "
        "void f() { for (int i = 0; i < n; i++) { c[i] = half(i); } }",
        {{"n", 1}}});
    driver::run_with_store(extra, options, &store);
    ::_exit(0);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // The in-flight batch is gone; every earlier record is intact.
  SummaryStore survivor(path, journal_options());
  ASSERT_TRUE(survivor.open());
  EXPECT_EQ(survivor.size(), baseline);
  EXPECT_EQ(survivor.stats().rejected, 0u);
  std::remove(path.c_str());
  std::remove((path + ".journal").c_str());
}

}  // namespace
}  // namespace sspar::store
