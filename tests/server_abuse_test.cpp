// Abuse suite for the analysis server's resilience layer: slowloris clients
// time out, excess connections are shed with E_OVERLOADED while admitted
// clients keep getting byte-identical reports, oversized request lines are
// rejected, a throwing analyze answers E_INTERNAL without wounding the
// daemon, deadlines answer E_DEADLINE — and a SIGKILL at every server.*
// fault point leaves the persistent store consistent for the next run.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "driver/json_report.h"
#include "driver/store_session.h"
#include "server/analysis_server.h"
#include "server/client.h"
#include "server/protocol.h"
#include "store/summary_store.h"
#include "support/faultpoint.h"
#include "support/json.h"

namespace sspar::server {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "sspar_server_abuse_" + name;
}

std::string fresh_path(const std::string& name) {
  std::string path = temp_path(name);
  std::remove(path.c_str());
  return path;
}

std::vector<driver::ProgramInput> abuse_inputs() {
  const char* kProgram = R"(
    int n;
    int a[100];
    int idx[100];
    int clamp(int v) {
      if (v < 0) { v = 0; }
      return v;
    }
    void f() {
      for (int i = 0; i < n; i++) {
        a[idx[i]] = clamp(i);
      }
    }
  )";
  std::vector<driver::ProgramInput> inputs;
  inputs.push_back(driver::ProgramInput{"prog", kProgram, {{"n", 1}}});
  return inputs;
}

void canonicalize(support::json::Value& value) {
  if (value.is_object()) {
    for (auto& [key, child] : value.as_object()) {
      if (key == "total_ms") {
        child = support::json::Value(int64_t{0});
      } else {
        canonicalize(child);
      }
    }
  } else if (value.is_array()) {
    for (auto& child : value.as_array()) canonicalize(child);
  }
}

std::string canonical_dump(support::json::Value value) {
  canonicalize(value);
  return value.dump(2);
}

// Every test disarms on entry AND exit so a failing assertion cannot leak an
// armed fault into its neighbors.
struct FaultGuard {
  FaultGuard() { support::faultpoint::disarm_all(); }
  ~FaultGuard() { support::faultpoint::disarm_all(); }
};

struct AbuseFixture {
  std::string socket_path;
  std::string store_path;
  store::SummaryStore store;
  AnalysisServer server;

  AbuseFixture(const std::string& name, ServerOptions options)
      : socket_path(fresh_path(name + ".sock")),
        store_path(fresh_path(name + ".bin")),
        store(store_path),
        server([&] {
          options.socket_path = socket_path;
          options.store = &store;
          return options;
        }()) {
    EXPECT_TRUE(store.open());
  }

  ~AbuseFixture() {
    server.stop();
    std::remove(store_path.c_str());
  }

  bool start() {
    std::string error;
    bool ok = server.start(&error);
    EXPECT_TRUE(ok) << error;
    return ok;
  }
};

const char* error_code_of(const support::json::Value& response) {
  const support::json::Value* err = response.find("error");
  if (!err || !err->is_object()) return "";
  const support::json::Value* code = err->find("code");
  return code && code->is_string() ? code->as_string().c_str() : "";
}

TEST(ServerAbuse, SlowlorisPartialRequestTimesOutFreshClientsUnaffected) {
  FaultGuard guard;
  ServerOptions options;
  options.threads = 1;
  options.read_timeout_ms = 150;
  AbuseFixture fx("slowloris", options);
  ASSERT_TRUE(fx.start());

  // Drip three bytes of a request and go silent: the server must give up on
  // the PARTIAL line after read_timeout_ms with E_TIMEOUT.
  Client slow;
  slow.set_timeout_ms(5000);
  ASSERT_TRUE(slow.connect(fx.socket_path));
  ASSERT_TRUE(slow.send_bytes(R"({"m)"));
  auto verdict = slow.read_response();
  ASSERT_TRUE(verdict.has_value());
  EXPECT_FALSE(verdict->find("ok")->as_bool());
  EXPECT_STREQ(error_code_of(*verdict), "E_TIMEOUT");
  EXPECT_GE(fx.server.timed_out(), 1u);

  // An IDLE connection (no partial line pending) is never timed out…
  Client idle;
  ASSERT_TRUE(idle.connect(fx.socket_path));
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  auto ping = idle.request(make_simple_request(Method::Ping));
  ASSERT_TRUE(ping.has_value());
  EXPECT_TRUE(ping->find("ok")->as_bool());

  // …and the abuse never touched fresh clients.
  Client fresh;
  ASSERT_TRUE(fresh.connect(fx.socket_path));
  auto response = fresh.request(make_analyze_request(abuse_inputs(), false, 1));
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->find("ok")->as_bool());
}

TEST(ServerAbuse, ConnectionCapShedsExcessClientsAdmittedOnesAreUnperturbed) {
  FaultGuard guard;
  ServerOptions options;
  options.threads = 1;
  options.max_connections = 2;
  AbuseFixture fx("capshed", options);
  ASSERT_TRUE(fx.start());
  const std::string request = make_analyze_request(abuse_inputs(), true, 1);

  // Warm the store, then capture the control report every later response
  // must match byte for byte.
  Client a;
  ASSERT_TRUE(a.connect(fx.socket_path));
  ASSERT_TRUE(a.request(request).has_value());
  auto control = a.request(request);
  ASSERT_TRUE(control.has_value());
  ASSERT_TRUE(control->find("ok")->as_bool());
  const std::string control_bytes = canonical_dump(*control);

  // Fill the second slot, then pile on: every extra connection gets ONE
  // E_OVERLOADED response and is closed by the accept thread.
  Client b;
  ASSERT_TRUE(b.connect(fx.socket_path));
  ASSERT_TRUE(b.request(make_simple_request(Method::Ping)).has_value());
  constexpr int kExtra = 4;
  int shed_seen = 0;
  for (int i = 0; i < kExtra; ++i) {
    Client extra;
    extra.set_timeout_ms(5000);
    ASSERT_TRUE(extra.connect(fx.socket_path));
    auto notice = extra.read_response();
    ASSERT_TRUE(notice.has_value()) << "extra client " << i;
    EXPECT_FALSE(notice->find("ok")->as_bool());
    EXPECT_STREQ(error_code_of(*notice), "E_OVERLOADED");
    ++shed_seen;
  }
  EXPECT_EQ(shed_seen, kExtra);
  EXPECT_GE(fx.server.shed(), static_cast<uint64_t>(kExtra));

  // The admitted clients never noticed: same bytes as the control, and the
  // per-run resilience stats inside the report stay deterministic zeros.
  auto during = a.request(request);
  ASSERT_TRUE(during.has_value());
  EXPECT_EQ(canonical_dump(*during), control_bytes);
  const support::json::Value* resilience =
      during->find("report")->find("stats")->find("resilience");
  ASSERT_NE(resilience, nullptr);
  EXPECT_EQ(resilience->int_or("shed", -1), 0);
  EXPECT_EQ(resilience->int_or("timed_out", -1), 0);
  EXPECT_EQ(resilience->int_or("recovered", -1), 0);

  // Freeing a slot re-admits: close one admitted client and a newcomer gets
  // in (the accept loop reaps finished handlers before judging the cap).
  b.close();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  bool readmitted = false;
  while (std::chrono::steady_clock::now() < deadline) {
    Client c;
    c.set_timeout_ms(2000);
    if (!c.connect(fx.socket_path)) continue;
    auto response = c.request(request);
    if (response && response->find("ok")->as_bool()) {
      EXPECT_EQ(canonical_dump(*response), control_bytes);
      readmitted = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(readmitted);
}

TEST(ServerAbuse, OversizedRequestLineIsRejectedAndTheConnectionClosed) {
  FaultGuard guard;
  ServerOptions options;
  options.threads = 1;
  options.max_request_bytes = 1024;
  AbuseFixture fx("toolarge", options);
  ASSERT_TRUE(fx.start());

  Client big;
  big.set_timeout_ms(5000);
  ASSERT_TRUE(big.connect(fx.socket_path));
  auto response = big.request(std::string(4096, 'x'));
  ASSERT_TRUE(response.has_value());
  EXPECT_FALSE(response->find("ok")->as_bool());
  EXPECT_STREQ(error_code_of(*response), "E_REQ_TOO_LARGE");
  // The connection is gone — the server refuses to keep buffering for it.
  auto next = big.request(make_simple_request(Method::Ping));
  EXPECT_FALSE(next.has_value());

  // A request UNDER the cap on a fresh connection is served normally.
  Client fine;
  ASSERT_TRUE(fine.connect(fx.socket_path));
  auto ping = fine.request(make_simple_request(Method::Ping));
  ASSERT_TRUE(ping.has_value());
  EXPECT_TRUE(ping->find("ok")->as_bool());
}

TEST(ServerAbuse, ThrowingAnalyzeAnswersInternalAndTheDaemonKeepsServing) {
  if (!support::faultpoint::compiled_in()) GTEST_SKIP() << "faultpoints off";
  FaultGuard guard;
  ServerOptions options;
  options.threads = 1;
  AbuseFixture fx("throwing", options);
  ASSERT_TRUE(fx.start());
  const std::string request = make_analyze_request(abuse_inputs(), false, 1);

  support::faultpoint::arm("server.analyze.pre_run", "throw");
  Client victim;
  ASSERT_TRUE(victim.connect(fx.socket_path));
  auto failed = victim.request(request);
  ASSERT_TRUE(failed.has_value());
  EXPECT_FALSE(failed->find("ok")->as_bool());
  EXPECT_STREQ(error_code_of(*failed), "E_INTERNAL");
  EXPECT_GE(fx.server.recovered(), 1u);

  // Disarmed, the NEXT analyze on a fresh connection succeeds — the thrown
  // exception wounded one request, not the daemon.
  support::faultpoint::disarm_all();
  Client fresh;
  ASSERT_TRUE(fresh.connect(fx.socket_path));
  auto ok = fresh.request(request);
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(ok->find("ok")->as_bool());
  EXPECT_NE(ok->find("report"), nullptr);
}

TEST(ServerAbuse, RequestDeadlineAnswersDeadlineInsteadOfTheReport) {
  if (!support::faultpoint::compiled_in()) GTEST_SKIP() << "faultpoints off";
  FaultGuard guard;
  ServerOptions options;
  options.threads = 1;
  options.request_timeout_ms = 50;
  AbuseFixture fx("deadline", options);
  ASSERT_TRUE(fx.start());

  support::faultpoint::arm("server.analyze.pre_run", "sleep=300");
  Client client;
  client.set_timeout_ms(5000);
  ASSERT_TRUE(client.connect(fx.socket_path));
  auto late = client.request(make_analyze_request(abuse_inputs(), false, 1));
  ASSERT_TRUE(late.has_value());
  EXPECT_FALSE(late->find("ok")->as_bool());
  EXPECT_STREQ(error_code_of(*late), "E_DEADLINE");
  EXPECT_GE(fx.server.timed_out(), 1u);

  // Under the deadline, the same connection gets its report.
  support::faultpoint::disarm_all();
  auto ok = client.request(make_analyze_request(abuse_inputs(), false, 1));
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(ok->find("ok")->as_bool());
}

// Kill matrix over the server.* fault points: fork a child that RUNS the
// daemon, arm one point with "kill", drive a request into it from the
// parent, and assert (a) the child died by SIGKILL at the point, (b) the
// journal-mode store reloads consistently afterwards, (c) a follow-up warm
// run in the parent still hits. gtest runs tests sequentially and every
// prior fixture has stopped its server, so the parent is single-threaded at
// each fork.
TEST(ServerAbuse, KilledAtEveryServerFaultPointLeavesTheStoreConsistent) {
  if (!support::faultpoint::compiled_in()) GTEST_SKIP() << "faultpoints off";
  FaultGuard guard;
  const std::string store_path = fresh_path("killmatrix.bin");
  std::remove((store_path + ".journal").c_str());
  std::remove((store_path + ".corrupt").c_str());

  store::StoreOptions journal_options;
  journal_options.journal = true;

  // Durable baseline the kills must never lose.
  size_t baseline = 0;
  {
    store::SummaryStore store(store_path, journal_options);
    ASSERT_TRUE(store.open());
    driver::BatchOptions options;
    options.threads = 1;
    driver::BatchReport cold = driver::run_with_store(abuse_inputs(), options, &store);
    ASSERT_EQ(cold.stats.failed, 0);
    baseline = store.size();
    ASSERT_GT(baseline, 0u);
  }

  const std::vector<std::string> points = support::faultpoint::known_points("server.");
  ASSERT_GE(points.size(), 4u);
  // The request sequence that actually reaches `point`: session-family fault
  // sites only fire on session requests, everything else on an analyze. All
  // but the LAST request of a sequence must succeed; the last dies with the
  // daemon.
  auto requests_for = [](const std::string& point) -> std::vector<std::string> {
    if (point == "server.session.open") {
      return {make_open_session_request("victim", {{"n", 1}})};
    }
    if (point == "server.session.update.pre_run") {
      return {make_open_session_request("victim", {{"n", 1}}),
              make_update_request("victim", abuse_inputs()[0].source)};
    }
    if (point == "server.session.close") {
      return {make_open_session_request("victim", {{"n", 1}}),
              make_close_session_request("victim")};
    }
    return {make_analyze_request(abuse_inputs(), false, 1)};
  };
  for (const std::string& point : points) {
    SCOPED_TRACE(point);
    const std::string socket_path = fresh_path("killmatrix.sock");
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: run the daemon with the fault armed until the kill lands.
      ::alarm(10);
      support::faultpoint::disarm_all();
      support::faultpoint::arm(point, "kill");
      store::SummaryStore store(store_path, journal_options);
      if (!store.open()) ::_exit(3);
      ServerOptions options;
      options.socket_path = socket_path;
      options.threads = 1;
      options.store = &store;
      AnalysisServer server(options);
      std::string error;
      if (!server.start(&error)) ::_exit(4);
      server.wait();
      ::_exit(2);  // the armed point never fired — a matrix bug
    }

    // Parent: connect (retrying while the child binds) and push a request
    // into the fault. Whichever point fires, the request must fail — the
    // daemon died mid-flight.
    Client client;
    client.set_timeout_ms(2000);
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    bool connected = false;
    while (std::chrono::steady_clock::now() < deadline) {
      if (client.connect(socket_path)) {
        connected = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_TRUE(connected);
    const std::vector<std::string> requests = requests_for(point);
    for (size_t i = 0; i + 1 < requests.size(); ++i) {
      auto setup = client.request(requests[i]);
      ASSERT_TRUE(setup.has_value()) << "setup request " << i << " got no response";
      ASSERT_TRUE(setup->find("ok")->as_bool());
    }
    auto response = client.request(requests.back());
    EXPECT_FALSE(response.has_value());

    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status)) << "child exited " << WEXITSTATUS(status)
                                     << " instead of dying at " << point;
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    // The store the dead daemon was holding reloads clean and full, and a
    // warm run still hits.
    EXPECT_FALSE(std::ifstream(store_path + ".corrupt").good());
    store::SummaryStore survivor(store_path, journal_options);
    ASSERT_TRUE(survivor.open());
    EXPECT_EQ(survivor.size(), baseline);
    driver::BatchOptions options;
    options.threads = 1;
    driver::BatchReport warm = driver::run_with_store(abuse_inputs(), options, &survivor);
    EXPECT_EQ(warm.stats.failed, 0);
    EXPECT_GT(warm.stats.store_hits, 0);
    std::remove(socket_path.c_str());
  }

  std::remove(store_path.c_str());
  std::remove((store_path + ".journal").c_str());
}

}  // namespace
}  // namespace sspar::server
