#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "runtime/inspector.h"
#include "runtime/thread_pool.h"

namespace sspar::rt {
namespace {

TEST(ThreadPool, SingleThreadDegeneratesToSerial) {
  ThreadPool pool(1);
  std::vector<int> data(100, 0);
  pool.parallel_for(0, 100, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) data[static_cast<size_t>(i)] = static_cast<int>(i);
  });
  for (int i = 0; i < 100; ++i) EXPECT_EQ(data[static_cast<size_t>(i)], i);
}

TEST(ThreadPool, CoversWholeRangeExactlyOnce) {
  for (unsigned threads : {2u, 4u, 7u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(1000);
    for (auto& h : hits) h = 0;
    pool.parallel_for(0, 1000, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) hits[static_cast<size_t>(i)]++;
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, EmptyAndTinyRanges) {
  ThreadPool pool(8);
  int calls = 0;
  pool.parallel_for(5, 5, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int64_t> sum{0};
  pool.parallel_for(0, 3, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) sum += i;
  });
  EXPECT_EQ(sum.load(), 3);
}

TEST(ThreadPool, ReduceMatchesSerialSum) {
  ThreadPool pool(6);
  std::vector<double> v(10007);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i % 13) * 0.5;
  double serial = std::accumulate(v.begin(), v.end(), 0.0);
  double parallel = pool.parallel_reduce(0, static_cast<int64_t>(v.size()),
                                         [&](int64_t lo, int64_t hi) {
                                           double s = 0.0;
                                           for (int64_t i = lo; i < hi; ++i) s += v[static_cast<size_t>(i)];
                                           return s;
                                         });
  EXPECT_NEAR(serial, parallel, 1e-9);
}

TEST(ThreadPool, ManySequentialJobs) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(0, 64, [&](int64_t lo, int64_t hi) { total += hi - lo; });
  }
  EXPECT_EQ(total.load(), 200 * 64);
}

TEST(Inspector, Monotonicity) {
  EXPECT_TRUE(is_nondecreasing(std::vector<int64_t>{0, 0, 1, 5, 5}));
  EXPECT_FALSE(is_nondecreasing(std::vector<int64_t>{0, 2, 1}));
  EXPECT_TRUE(is_strictly_increasing(std::vector<int64_t>{1, 2, 9}));
  EXPECT_FALSE(is_strictly_increasing(std::vector<int64_t>{1, 1, 2}));
  EXPECT_TRUE(is_nondecreasing(std::vector<int64_t>{}));
  EXPECT_TRUE(is_nondecreasing(std::vector<int64_t>{7}));
}

TEST(Inspector, Injectivity) {
  EXPECT_TRUE(is_injective(std::vector<int64_t>{3, 1, 4, 0, 2}));
  EXPECT_FALSE(is_injective(std::vector<int64_t>{3, 1, 3}));
  EXPECT_TRUE(is_injective(std::vector<int64_t>{}));
  // Large sparse values force the sort-based path.
  EXPECT_TRUE(is_injective(std::vector<int64_t>{1'000'000'000, 5, -7}));
  EXPECT_FALSE(is_injective(std::vector<int64_t>{1'000'000'000, 5, 1'000'000'000}));
}

TEST(Inspector, SubsetInjectivity) {
  // Negative sentinels repeat but do not participate.
  EXPECT_TRUE(is_subset_injective(std::vector<int64_t>{-1, 3, -1, 5, -1, 0}, 0));
  EXPECT_FALSE(is_subset_injective(std::vector<int64_t>{-1, 3, 3}, 0));
}

TEST(Inspector, ExtremeValueSpansDoNotOverflow) {
  // Regression: `hi - lo + 1` in int64_t overflows when the values straddle
  // INT64_MIN/INT64_MAX, which used to size the mark vector from a wrapped
  // negative span and write out of bounds.
  EXPECT_TRUE(is_injective(std::vector<int64_t>{INT64_MIN, INT64_MAX}));
  EXPECT_FALSE(is_injective(std::vector<int64_t>{INT64_MIN, INT64_MAX, INT64_MAX}));
  EXPECT_TRUE(is_injective(std::vector<int64_t>{INT64_MIN, 0, INT64_MAX}));
  EXPECT_FALSE(is_injective(std::vector<int64_t>{INT64_MIN, INT64_MIN}));
  // Near-maximal span (0 .. INT64_MAX - 1) must route to the sort.
  EXPECT_TRUE(is_injective(std::vector<int64_t>{0, INT64_MAX - 1}));
  EXPECT_FALSE(is_injective(std::vector<int64_t>{0, INT64_MAX - 1, 0}));
  // Subset injectivity with participating extremes.
  EXPECT_TRUE(is_subset_injective(std::vector<int64_t>{INT64_MIN, 1, INT64_MAX}, 0));
  EXPECT_FALSE(is_subset_injective(std::vector<int64_t>{-5, INT64_MAX, INT64_MAX}, 0));
}

TEST(Inspector, UniverseHintIsBoundedByAllocationCap) {
  // A huge hint used to permit an allocation proportional to the hint even
  // for a handful of values; now it is clamped by a hard cap and large spans
  // fall through to the sort-based check — with identical results.
  EXPECT_TRUE(is_injective(std::vector<int64_t>{0, 1'000'000'000}, 2'000'000'000));
  EXPECT_FALSE(is_injective(std::vector<int64_t>{0, 1'000'000'000, 0}, 2'000'000'000));
  EXPECT_TRUE(is_injective(std::vector<int64_t>{3, 9, 7}, INT64_MAX));
  EXPECT_FALSE(is_injective(std::vector<int64_t>{3, 9, 3}, INT64_MAX));
}

TEST(Inspector, HintSmallerThanSpanStillCorrect) {
  // The hint widens the mark-vector threshold; a hint smaller than the
  // actual span must not change the verdict (dense path still applies via
  // the 4*n default, or the sort path takes over).
  std::vector<int64_t> dense = {0, 5, 3, 9, 1, 7};
  EXPECT_TRUE(is_injective(dense, 2));
  dense.push_back(5);
  EXPECT_FALSE(is_injective(dense, 2));
  // Values outside the hinted universe ([0, 4)) are still handled.
  EXPECT_TRUE(is_injective(std::vector<int64_t>{-100, 2, 200}, 4));
}

TEST(Inspector, InspectionReportsAllProperties) {
  auto result = inspect(std::vector<int64_t>{0, 2, 4, 9});
  EXPECT_TRUE(result.nondecreasing);
  EXPECT_TRUE(result.strictly_increasing);
  EXPECT_TRUE(result.injective);
  EXPECT_GE(result.inspection_seconds, 0.0);
}

TEST(InspectorExecutor, ParallelPathOnMonotonicPtr) {
  ThreadPool pool(4);
  InspectorExecutor ie(pool);
  std::vector<int64_t> ptr = {0, 2, 2, 5, 9};
  std::vector<int64_t> touched(9, 0);
  bool parallel = ie.run_csr(ptr, [&](int64_t, int64_t k) { touched[static_cast<size_t>(k)]++; });
  EXPECT_TRUE(parallel);
  for (int64_t t : touched) EXPECT_EQ(t, 1);
  EXPECT_GT(ie.inspection_seconds(), 0.0);
}

TEST(InspectorExecutor, SerialFallbackOnBrokenPtr) {
  ThreadPool pool(4);
  InspectorExecutor ie(pool);
  std::vector<int64_t> ptr = {0, 5, 3, 6};  // not monotonic
  std::atomic<int> count{0};
  bool parallel = ie.run_csr(ptr, [&](int64_t, int64_t) { count++; });
  EXPECT_FALSE(parallel);
  // The serial path must still execute every (r, k) pair: rows 0 and 2 have
  // nonempty ranges ([0,5) and [3,6)), row 1's range [5,3) is empty.
  EXPECT_EQ(count.load(), 8);
}

TEST(InspectorExecutor, EmptyPtrDoesNotInvokePool) {
  ThreadPool pool(4);
  InspectorExecutor ie(pool);
  std::atomic<int> calls{0};
  // rows == -1: there is no row to execute and the pool must not be entered.
  bool parallel = ie.run_csr(std::span<const int64_t>{}, [&](int64_t, int64_t) { calls++; });
  EXPECT_TRUE(parallel);  // vacuously monotonic
  EXPECT_EQ(calls.load(), 0);
}

TEST(InspectorExecutor, SingleElementPtrHasNoRows) {
  ThreadPool pool(4);
  InspectorExecutor ie(pool);
  std::vector<int64_t> ptr = {5};  // rows == 0
  std::atomic<int> calls{0};
  bool parallel = ie.run_csr(ptr, [&](int64_t, int64_t) { calls++; });
  EXPECT_TRUE(parallel);
  EXPECT_EQ(calls.load(), 0);
}

TEST(InspectorExecutor, InspectionSecondsAccumulateAcrossInvocations) {
  ThreadPool pool(2);
  InspectorExecutor ie(pool);
  std::vector<int64_t> ptr(4097);
  for (size_t i = 0; i < ptr.size(); ++i) ptr[i] = static_cast<int64_t>(i * 2);
  std::atomic<int64_t> sink{0};
  ie.run_csr(ptr, [&](int64_t, int64_t k) { sink += k; });
  double after_first = ie.inspection_seconds();
  EXPECT_GT(after_first, 0.0);
  ie.run_csr(ptr, [&](int64_t, int64_t k) { sink += k; });
  EXPECT_GE(ie.inspection_seconds(), after_first);
  ie.reset_timing();
  EXPECT_EQ(ie.inspection_seconds(), 0.0);
}

}  // namespace
}  // namespace sspar::rt
