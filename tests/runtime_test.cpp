#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "runtime/inspector.h"
#include "runtime/thread_pool.h"

namespace sspar::rt {
namespace {

TEST(ThreadPool, SingleThreadDegeneratesToSerial) {
  ThreadPool pool(1);
  std::vector<int> data(100, 0);
  pool.parallel_for(0, 100, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) data[static_cast<size_t>(i)] = static_cast<int>(i);
  });
  for (int i = 0; i < 100; ++i) EXPECT_EQ(data[static_cast<size_t>(i)], i);
}

TEST(ThreadPool, CoversWholeRangeExactlyOnce) {
  for (unsigned threads : {2u, 4u, 7u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(1000);
    for (auto& h : hits) h = 0;
    pool.parallel_for(0, 1000, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) hits[static_cast<size_t>(i)]++;
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, EmptyAndTinyRanges) {
  ThreadPool pool(8);
  int calls = 0;
  pool.parallel_for(5, 5, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int64_t> sum{0};
  pool.parallel_for(0, 3, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) sum += i;
  });
  EXPECT_EQ(sum.load(), 3);
}

TEST(ThreadPool, ReduceMatchesSerialSum) {
  ThreadPool pool(6);
  std::vector<double> v(10007);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i % 13) * 0.5;
  double serial = std::accumulate(v.begin(), v.end(), 0.0);
  double parallel = pool.parallel_reduce(0, static_cast<int64_t>(v.size()),
                                         [&](int64_t lo, int64_t hi) {
                                           double s = 0.0;
                                           for (int64_t i = lo; i < hi; ++i) s += v[static_cast<size_t>(i)];
                                           return s;
                                         });
  EXPECT_NEAR(serial, parallel, 1e-9);
}

TEST(ThreadPool, ManySequentialJobs) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(0, 64, [&](int64_t lo, int64_t hi) { total += hi - lo; });
  }
  EXPECT_EQ(total.load(), 200 * 64);
}

TEST(Inspector, Monotonicity) {
  EXPECT_TRUE(is_nondecreasing(std::vector<int64_t>{0, 0, 1, 5, 5}));
  EXPECT_FALSE(is_nondecreasing(std::vector<int64_t>{0, 2, 1}));
  EXPECT_TRUE(is_strictly_increasing(std::vector<int64_t>{1, 2, 9}));
  EXPECT_FALSE(is_strictly_increasing(std::vector<int64_t>{1, 1, 2}));
  EXPECT_TRUE(is_nondecreasing(std::vector<int64_t>{}));
  EXPECT_TRUE(is_nondecreasing(std::vector<int64_t>{7}));
}

TEST(Inspector, Injectivity) {
  EXPECT_TRUE(is_injective(std::vector<int64_t>{3, 1, 4, 0, 2}));
  EXPECT_FALSE(is_injective(std::vector<int64_t>{3, 1, 3}));
  EXPECT_TRUE(is_injective(std::vector<int64_t>{}));
  // Large sparse values force the sort-based path.
  EXPECT_TRUE(is_injective(std::vector<int64_t>{1'000'000'000, 5, -7}));
  EXPECT_FALSE(is_injective(std::vector<int64_t>{1'000'000'000, 5, 1'000'000'000}));
}

TEST(Inspector, SubsetInjectivity) {
  // Negative sentinels repeat but do not participate.
  EXPECT_TRUE(is_subset_injective(std::vector<int64_t>{-1, 3, -1, 5, -1, 0}, 0));
  EXPECT_FALSE(is_subset_injective(std::vector<int64_t>{-1, 3, 3}, 0));
}

TEST(Inspector, InspectionReportsAllProperties) {
  auto result = inspect(std::vector<int64_t>{0, 2, 4, 9});
  EXPECT_TRUE(result.nondecreasing);
  EXPECT_TRUE(result.strictly_increasing);
  EXPECT_TRUE(result.injective);
  EXPECT_GE(result.inspection_seconds, 0.0);
}

TEST(InspectorExecutor, ParallelPathOnMonotonicPtr) {
  ThreadPool pool(4);
  InspectorExecutor ie(pool);
  std::vector<int64_t> ptr = {0, 2, 2, 5, 9};
  std::vector<int64_t> touched(9, 0);
  bool parallel = ie.run_csr(ptr, [&](int64_t, int64_t k) { touched[static_cast<size_t>(k)]++; });
  EXPECT_TRUE(parallel);
  for (int64_t t : touched) EXPECT_EQ(t, 1);
  EXPECT_GT(ie.inspection_seconds(), 0.0);
}

TEST(InspectorExecutor, SerialFallbackOnBrokenPtr) {
  ThreadPool pool(4);
  InspectorExecutor ie(pool);
  std::vector<int64_t> ptr = {0, 5, 3, 6};  // not monotonic
  std::atomic<int> count{0};
  bool parallel = ie.run_csr(ptr, [&](int64_t, int64_t) { count++; });
  EXPECT_FALSE(parallel);
}

}  // namespace
}  // namespace sspar::rt
