// Near-miss tests: patterns that LOOK like the paper's figures but lack the
// property. The analyzer must refuse facts and the parallelizer must refuse
// verdicts — each case is one soundness trap.
#include <gtest/gtest.h>

#include "core/parallelizer.h"
#include "frontend/frontend.h"
#include "support/diagnostics.h"

namespace sspar::core {
namespace {

struct Pipeline {
  ast::ParseResult parsed;
  std::unique_ptr<Analyzer> analyzer;
  std::unique_ptr<Parallelizer> parallelizer;
};

Pipeline build(const char* source,
               const std::vector<std::pair<const char*, int64_t>>& assumptions = {}) {
  Pipeline p;
  support::DiagnosticEngine diags;
  p.parsed = ast::parse_and_resolve(source, diags);
  EXPECT_TRUE(p.parsed.ok) << diags.dump();
  p.analyzer = std::make_unique<Analyzer>(*p.parsed.program, *p.parsed.symbols);
  for (const auto& [name, lo] : assumptions) {
    p.analyzer->assume_ge(p.parsed.program->find_global(name), lo);
  }
  p.analyzer->run();
  p.parallelizer = std::make_unique<Parallelizer>(*p.analyzer);
  return p;
}

LoopVerdict verdict_of(Pipeline& p, int loop_id) {
  for (const ast::For* loop :
       ast::collect_loops(p.parsed.program->find_function("f")->body.get())) {
    if (loop->loop_id == loop_id) return p.parallelizer->analyze(*loop);
  }
  ADD_FAILURE() << "no loop " << loop_id;
  return {};
}

TEST(Negative, RecurrenceWithPossiblyNegativeStep) {
  // Step range [-1 : 1]: rowstr may decrease; consumer must stay sequential.
  auto p = build(R"(
    int n; int w[100]; int rowstr[101]; int x[1000];
    void f() {
      rowstr[0] = 0;
      for (int i = 1; i < n + 1; i++) {
        rowstr[i] = rowstr[i-1] + (w[i] > 0 ? 1 : -1);
      }
      for (int j = 0; j < n; j++) {
        for (int k = rowstr[j]; k < rowstr[j+1]; k++) {
          x[k] = j;
        }
      }
    }
  )", {{"n", 1}});
  EXPECT_FALSE(verdict_of(p, 1).parallel);
}

TEST(Negative, ConditionalRecurrenceBreaksTheChain) {
  // The write itself is conditional: skipped elements keep stale values, so
  // no monotonicity fact may be derived.
  auto p = build(R"(
    int n; int w[100]; int rowstr[101]; int x[1000];
    void f() {
      rowstr[0] = 0;
      for (int i = 1; i < n + 1; i++) {
        if (w[i] > 0) {
          rowstr[i] = rowstr[i-1] + 2;
        }
      }
      for (int j = 0; j < n; j++) {
        for (int k = rowstr[j]; k < rowstr[j+1]; k++) {
          x[k] = j;
        }
      }
    }
  )", {{"n", 1}});
  EXPECT_FALSE(verdict_of(p, 1).parallel);
}

TEST(Negative, RecurrenceAtDistanceTwoNotSupported) {
  auto p = build(R"(
    int n; int rowstr[102]; int x[1000];
    void f() {
      rowstr[0] = 0;
      rowstr[1] = 1;
      for (int i = 2; i < n + 2; i++) {
        rowstr[i] = rowstr[i-2] + 1;
      }
      for (int j = 0; j < n; j++) {
        for (int k = rowstr[j]; k < rowstr[j+1]; k++) {
          x[k] = j;
        }
      }
    }
  )", {{"n", 1}});
  EXPECT_FALSE(verdict_of(p, 1).parallel);
}

TEST(Negative, NonInjectiveIndirectionScatter) {
  // idx[i] = i/2 hits every target twice.
  auto p = build(R"(
    int n; int idx[100]; int out[100];
    void f() {
      for (int i = 0; i < n; i++) {
        idx[i] = i / 2;
      }
      for (int i = 0; i < n; i++) {
        out[idx[i]] = i;
      }
    }
  )", {{"n", 1}});
  EXPECT_FALSE(verdict_of(p, 1).parallel);
}

TEST(Negative, SubsetInjectivityWithoutGuardRejected) {
  auto p = build(R"(
    int n; int w[100]; int jmatch[100]; int imatch[300];
    void f() {
      for (int i = 0; i < n; i++) {
        if (w[i] > 0) {
          jmatch[i] = 2 * i;
        } else {
          jmatch[i] = -1;
        }
      }
      for (int i = 0; i < n; i++) {
        imatch[jmatch[i] + 1] = i;
      }
    }
  )", {{"n", 1}});
  EXPECT_FALSE(verdict_of(p, 1).parallel);
}

TEST(Negative, GuardOnWrongArrayRejected) {
  auto p = build(R"(
    int n; int w[100]; int other[100]; int jmatch[100]; int imatch[300];
    void f() {
      for (int i = 0; i < n; i++) {
        if (w[i] > 0) {
          jmatch[i] = 2 * i;
        } else {
          jmatch[i] = -1;
        }
      }
      for (int i = 0; i < n; i++) {
        if (other[i] >= 0) {
          imatch[jmatch[i]] = i;
        }
      }
    }
  )", {{"n", 1}});
  EXPECT_FALSE(verdict_of(p, 1).parallel);
}

TEST(Negative, GuardThresholdTooWeakRejected) {
  // Guard admits the -1 sentinels (jmatch[i] >= -1), so writes can collide
  // at imatch[-1+offset] -- the subset fact requires min 0.
  auto p = build(R"(
    int n; int w[100]; int jmatch[100]; int imatch[300];
    void f() {
      for (int i = 0; i < n; i++) {
        if (w[i] > 0) {
          jmatch[i] = 2 * i;
        } else {
          jmatch[i] = -1;
        }
      }
      for (int i = 0; i < n; i++) {
        if (jmatch[i] >= -1) {
          imatch[jmatch[i] + 1] = i;
        }
      }
    }
  )", {{"n", 1}});
  EXPECT_FALSE(verdict_of(p, 1).parallel);
}

TEST(Negative, SentinelInsideValueRangeNoSubsetFact) {
  // "Sentinel" 5 is non-negative: it may collide with the moving branch.
  auto p = build(R"(
    int n; int w[100]; int jmatch[100]; int imatch[300];
    void f() {
      for (int i = 0; i < n; i++) {
        if (w[i] > 0) {
          jmatch[i] = 2 * i;
        } else {
          jmatch[i] = 5;
        }
      }
      for (int i = 0; i < n; i++) {
        if (jmatch[i] >= 0) {
          imatch[jmatch[i]] = i;
        }
      }
    }
  )", {{"n", 1}});
  EXPECT_FALSE(verdict_of(p, 1).parallel);
}

TEST(Negative, DisjointStridedWithCollidingOffsets) {
  // 7i+3 vs 7i+10 = 7(i+1)+3: iteration i's else value equals iteration
  // i+1's then value -> the value sets overlap; no injectivity fact.
  auto p = build(R"(
    int n; int w[100]; int dest[1000]; int use[1000];
    void f() {
      for (int i = 0; i < n; i++) {
        if (w[i] > 0) {
          dest[i] = 7 * i + 3;
        } else {
          dest[i] = 7 * i + 10;
        }
      }
      for (int i = 0; i < n; i++) {
        use[dest[i]] = i;
      }
    }
  )", {{"n", 1}});
  EXPECT_FALSE(verdict_of(p, 1).parallel);
}

TEST(Negative, OverlappingWindowsRejected) {
  // Base advances by 7 but windows are 8 wide.
  auto p = build(R"(
    int n; int front[100]; int tree[10000];
    void f() {
      for (int i = 0; i < n; i++) {
        front[i] = i + 1;
      }
      for (int i = 0; i < n; i++) {
        int base = front[i] * 7;
        for (int j = 0; j < 8; j++) {
          tree[base + j] = i;
        }
      }
    }
  )", {{"n", 1}});
  EXPECT_FALSE(verdict_of(p, 1).parallel);
}

TEST(Negative, FactKilledByInterveningWrite) {
  // idx is re-written (conditionally, unprovable section) between the fill
  // and the use: the injectivity fact must die.
  auto p = build(R"(
    int n; int m; int idx[100]; int out[100];
    void f() {
      for (int i = 0; i < n; i++) {
        idx[i] = i;
      }
      idx[m] = 0;
      for (int i = 0; i < n; i++) {
        out[idx[i]] = i;
      }
    }
  )", {{"n", 1}});
  EXPECT_FALSE(verdict_of(p, 1).parallel);
}

TEST(Negative, FactSurvivesProvablyDisjointWrite) {
  // Same shape, but the intervening write is provably outside [0:n-1].
  auto p = build(R"(
    int n; int idx[200]; int out[100];
    void f() {
      for (int i = 0; i < n; i++) {
        idx[i] = i;
      }
      idx[n] = 0;
      for (int i = 0; i < n; i++) {
        out[idx[i]] = i;
      }
    }
  )", {{"n", 1}});
  EXPECT_TRUE(verdict_of(p, 1).parallel);
}

TEST(Negative, MonotonicButReadOfNeighborBlocks) {
  // Ranges are disjoint, but the body also reads x[rowstr[j+1]] (the next
  // iteration's first element): flow/anti dependence.
  auto p = build(R"(
    int n; int w[100]; int rowstr[101]; int x[1000];
    void f() {
      rowstr[0] = 0;
      for (int i = 1; i < n + 1; i++) {
        rowstr[i] = rowstr[i-1] + 1 + (w[i] > 0 ? 1 : 0);
      }
      for (int j = 0; j < n; j++) {
        for (int k = rowstr[j]; k < rowstr[j+1]; k++) {
          x[k] = x[rowstr[j+1]] + 1;
        }
      }
    }
  )", {{"n", 1}});
  EXPECT_FALSE(verdict_of(p, 1).parallel);
}

TEST(Negative, TripCountWithoutAssumptionBlocksFacts) {
  // Without n >= 0, the aggregation cannot prove the fill loop covers the
  // claimed section; the consumer must stay sequential.
  auto p = build(R"(
    int n; int idx[100]; int out[100];
    void f() {
      for (int i = 0; i < n; i++) {
        idx[i] = i;
      }
      for (int i = 0; i < n; i++) {
        out[idx[i]] = i;
      }
    }
  )");  // note: no assumptions
  EXPECT_FALSE(verdict_of(p, 1).parallel);
}

TEST(Negative, WhileLoopBetweenFillAndUseHavocs) {
  auto p = build(R"(
    int n; int idx[100]; int out[100];
    void f() {
      for (int i = 0; i < n; i++) {
        idx[i] = i;
      }
      int t = 0;
      while (t < n) {
        idx[t] = 0;
        t = t + 1;
      }
      for (int i = 0; i < n; i++) {
        out[idx[i]] = i;
      }
    }
  )", {{"n", 1}});
  EXPECT_FALSE(verdict_of(p, 1).parallel);
}

TEST(Negative, CallInBodyBlocksAnalysis) {
  auto p = build(R"(
    int n; int a[100];
    void g() { }
    void f() {
      for (int i = 0; i < n; i++) {
        g();
        a[i] = i;
      }
    }
  )", {{"n", 1}});
  EXPECT_FALSE(verdict_of(p, 0).parallel);
}

TEST(Negative, NonCanonicalStepRejected) {
  auto p = build(R"(
    int n; int a[100];
    void f() {
      for (int i = 0; i < n; i = i + 2) {
        a[i] = i;
      }
    }
  )", {{"n", 1}});
  LoopVerdict v = verdict_of(p, 0);
  EXPECT_FALSE(v.canonical);
  EXPECT_FALSE(v.parallel);
}

TEST(Negative, IndexAssignedInBodyRejected) {
  auto p = build(R"(
    int n; int a[100];
    void f() {
      for (int i = 0; i < n; i++) {
        a[i] = i;
        i = i + a[i] % 2;
      }
    }
  )", {{"n", 1}});
  EXPECT_FALSE(verdict_of(p, 0).parallel);
}

}  // namespace
}  // namespace sspar::core
