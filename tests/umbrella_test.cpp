// Compile-and-use smoke test for the umbrella header: the public API surface
// a downstream user sees.
#include "sspar.h"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, FullPipelineThroughPublicApi) {
  auto result = sspar::transform::translate_source(R"(
    int n;
    int nsz[100];
    int ptr[101];
    double data[1000];
    void f(void) {
      for (int i = 0; i < n; i++) {
        nsz[i] = (i % 2 == 0) ? 2 : 1;
      }
      ptr[0] = 0;
      for (int i = 1; i < n + 1; i++) {
        ptr[i] = ptr[i-1] + nsz[i-1];
      }
      for (int i = 0; i < n; i++) {
        for (int k = ptr[i]; k < ptr[i+1]; k++) {
          data[k] = data[k] * 0.5;
        }
      }
    }
  )",
                                                   sspar::core::AnalyzerOptions{},
                                                   {{"n", 1}});
  ASSERT_TRUE(result.ok) << result.diagnostics;
  EXPECT_GE(result.parallelized, 1);

  // Dynamic validation through the same public surface.
  sspar::interp::Interpreter interp(*result.parsed.program);
  interp.set_scalar("n", int64_t{40});
  for (const auto& v : result.verdicts) {
    if (!v.parallel) continue;
    auto report = interp.analyze_loop_dependences("f", v.loop);
    EXPECT_TRUE(report.dependence_free) << report.first_conflict;
  }

  // Kernel + runtime surface.
  sspar::rt::ThreadPool pool(4);
  auto kernel = sspar::kern::RowRangeProduct::random(1000, 4, 1);
  EXPECT_EQ(kernel.run_serial(), kernel.run_parallel(pool));
  EXPECT_FALSE(sspar::corpus::all_entries().empty());
}

}  // namespace
