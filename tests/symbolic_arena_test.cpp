// Randomized differential test of the hash-consed expression arena.
//
// A seeded generator produces ~10k random expression-construction programs;
// each program is executed twice through the canonicalizing factories. Within
// one arena the two runs must intern to the *same node* (equal ⇔ pointer
// identity), hashes must be stable (also across arenas), compare() must stay
// a total order consistent with equality, and the to_linear/from_linear round
// trip must be the identity on canonical nodes.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "symbolic/arena.h"
#include "symbolic/expr.h"

namespace sspar::sym {
namespace {

constexpr int kPrograms = 10000;
constexpr SymbolId kNumSyms = 6;

// One deterministic "construction program": a recursive random build driven
// entirely by `rng` draws, so replaying with an equally-seeded rng rebuilds
// the structurally identical expression — through a possibly different
// sequence of intermediate nodes.
ExprPtr build_random(std::mt19937& rng, int depth) {
  std::uniform_int_distribution<int> op_dist(0, depth <= 0 ? 4 : 11);
  switch (op_dist(rng)) {
    case 0:
      return make_const(static_cast<int64_t>(rng() % 21) - 10);
    case 1:
      return make_sym(static_cast<SymbolId>(rng() % kNumSyms));
    case 2:
      return make_iter_start(static_cast<SymbolId>(rng() % kNumSyms));
    case 3:
      return make_loop_start(static_cast<SymbolId>(rng() % kNumSyms));
    case 4:
      return rng() % 8 == 0 ? make_bottom()
                            : make_array_elem(static_cast<SymbolId>(rng() % kNumSyms),
                                              build_random(rng, depth - 1));
    case 5:
      return add(build_random(rng, depth - 1), build_random(rng, depth - 1));
    case 6:
      return sub(build_random(rng, depth - 1), build_random(rng, depth - 1));
    case 7:
      return mul(build_random(rng, depth - 1), build_random(rng, depth - 1));
    case 8:
      return mul_const(build_random(rng, depth - 1), static_cast<int64_t>(rng() % 7) - 3);
    case 9:
      return smin(build_random(rng, depth - 1), build_random(rng, depth - 1));
    case 10:
      return smax(build_random(rng, depth - 1), build_random(rng, depth - 1));
    default:
      return div_floor(build_random(rng, depth - 1), build_random(rng, depth - 1));
  }
}

TEST(SymbolicArenaTest, RebuildInternsToTheSameNode) {
  ExprArena arena;
  ArenaScope scope(arena);
  for (int p = 0; p < kPrograms; ++p) {
    std::mt19937 rng_a(p);
    std::mt19937 rng_b(p);
    ExprPtr first = build_random(rng_a, 3);
    ExprPtr second = build_random(rng_b, 3);
    // Hash-consing: rebuilding the same program yields the same pointer, and
    // pointer identity agrees with structural equality and hashing.
    ASSERT_EQ(first, second) << "program " << p;
    ASSERT_TRUE(equal(first, second));
    ASSERT_EQ(compare(first, second), 0);
    ASSERT_EQ(hash(first), hash(second));
    ASSERT_TRUE(arena.owns(first));
  }
  EXPECT_GT(arena.stats().intern_hits, 0u);
}

TEST(SymbolicArenaTest, EqualIffSameNodeAcrossDistinctPrograms) {
  ExprArena arena;
  ArenaScope scope(arena);
  std::vector<ExprPtr> pool;
  for (int p = 0; p < kPrograms; ++p) {
    std::mt19937 rng(p);
    pool.push_back(build_random(rng, 3));
  }
  std::mt19937 pick(12345);
  for (int t = 0; t < 20000; ++t) {
    const ExprPtr& a = pool[pick() % pool.size()];
    const ExprPtr& b = pool[pick() % pool.size()];
    ASSERT_EQ(equal(a, b), a == b);
    ASSERT_EQ(compare(a, b) == 0, a == b);
    ASSERT_EQ(hash(a) == hash(b), a == b) << "hash collision or instability";
  }
}

TEST(SymbolicArenaTest, CompareIsATotalOrder) {
  ExprArena arena;
  ArenaScope scope(arena);
  std::vector<ExprPtr> pool;
  for (int p = 0; p < 2000; ++p) {
    std::mt19937 rng(p);
    pool.push_back(build_random(rng, 2));
  }
  std::sort(pool.begin(), pool.end(),
            [](const ExprPtr& a, const ExprPtr& b) { return compare(a, b) < 0; });
  std::mt19937 pick(999);
  for (int t = 0; t < 20000; ++t) {
    const ExprPtr& a = pool[pick() % pool.size()];
    const ExprPtr& b = pool[pick() % pool.size()];
    // Antisymmetry.
    ASSERT_EQ(compare(a, b), -compare(b, a));
  }
  // Transitivity along the sorted pool: adjacent order implies global order.
  for (size_t i = 0; i + 1 < pool.size(); ++i) {
    ASSERT_LE(compare(pool[i], pool[i + 1]), 0);
  }
  for (size_t i = 0; i + 2 < pool.size(); i += 97) {
    ASSERT_LE(compare(pool[i], pool[i + 2]), 0);
  }
}

TEST(SymbolicArenaTest, HashesAreStableAcrossArenas) {
  std::vector<size_t> first_hashes;
  {
    ExprArena arena;
    ArenaScope scope(arena);
    for (int p = 0; p < 500; ++p) {
      std::mt19937 rng(p);
      first_hashes.push_back(hash(build_random(rng, 3)));
    }
  }
  ExprArena other;
  ArenaScope scope(other);
  for (int p = 0; p < 500; ++p) {
    std::mt19937 rng(p);
    ASSERT_EQ(hash(build_random(rng, 3)), first_hashes[p]) << "program " << p;
  }
}

TEST(SymbolicArenaTest, LinearRoundTripIsIdentity) {
  ExprArena arena;
  ArenaScope scope(arena);
  for (int p = 0; p < kPrograms; ++p) {
    std::mt19937 rng(p);
    ExprPtr e = build_random(rng, 3);
    LinearForm lf = to_linear(e);
    ExprPtr back = from_linear(lf);
    if (is_bottom(e)) {
      ASSERT_TRUE(is_bottom(back));
    } else {
      // Canonical nodes survive the linear-view round trip as the same node.
      ASSERT_EQ(back, e) << "program " << p;
    }
    // Terms come back sorted by compare() with no zero coefficients.
    for (size_t i = 0; i + 1 < lf.terms.size(); ++i) {
      ASSERT_LT(compare(lf.terms[i].first, lf.terms[i + 1].first), 0);
    }
    for (const auto& [atom, coeff] : lf.terms) {
      ASSERT_NE(coeff, 0);
      ASSERT_NE(atom->kind, ExprKind::Add);
      ASSERT_NE(atom->kind, ExprKind::Const);
    }
  }
}

TEST(SymbolicArenaTest, ContainmentMatchesExplicitWalk) {
  ExprArena arena;
  ArenaScope scope(arena);
  for (int p = 0; p < 2000; ++p) {
    std::mt19937 rng(p);
    ExprPtr e = build_random(rng, 3);
    for (SymbolId s = 0; s < kNumSyms; ++s) {
      bool expected = any_of(
          e, [s](const Expr& n) { return n.kind == ExprKind::Sym && n.symbol == s; });
      ASSERT_EQ(contains_sym(e, s), expected);
    }
    for (ExprKind k : {ExprKind::IterStart, ExprKind::ArrayElem, ExprKind::Mul,
                       ExprKind::Bottom, ExprKind::Min}) {
      bool expected = any_of(e, [k](const Expr& n) { return n.kind == k; });
      ASSERT_EQ(contains_kind(e, k), expected);
    }
  }
}

TEST(SymbolicArenaTest, SubstitutionMemoReturnsCanonicalResults) {
  ExprArena arena;
  ArenaScope scope(arena);
  for (int p = 0; p < 2000; ++p) {
    std::mt19937 rng(p);
    ExprPtr e = build_random(rng, 3);
    SymbolId target = static_cast<SymbolId>(p % kNumSyms);
    ExprPtr repl = add(make_sym((target + 1) % kNumSyms), make_const(1));
    ExprPtr once = subst_sym(e, target, repl);
    ExprPtr twice = subst_sym(e, target, repl);  // memo hit
    ASSERT_EQ(once, twice);
    ASSERT_FALSE(contains_sym(once, target));
    if (!contains_sym(e, target)) {
      ASSERT_EQ(once, e);
    }
  }
  EXPECT_GT(arena.stats().memo_entries, 0u);
}

TEST(SymbolicArenaTest, ScopesNestAndRestore) {
  ExprArena outer;
  ArenaScope outer_scope(outer);
  ExprPtr in_outer = make_sym(0);
  {
    ExprArena inner;
    ArenaScope inner_scope(inner);
    ExprPtr in_inner = make_sym(0);
    EXPECT_TRUE(inner.owns(in_inner));
    EXPECT_FALSE(inner.owns(in_outer));
    EXPECT_TRUE(outer.owns(in_outer));
    // Same structure, different arenas: distinct nodes, still structurally
    // equal with identical hashes.
    EXPECT_NE(in_inner, in_outer);
    EXPECT_TRUE(equal(in_inner, in_outer));
    EXPECT_EQ(hash(in_inner), hash(in_outer));
  }
  // Scope restored: new nodes intern into `outer` again.
  EXPECT_EQ(make_sym(0), in_outer);
}

}  // namespace
}  // namespace sspar::sym
