// Incremental re-analysis engine: the correctness contract is that after ANY
// update sequence the verdicts, annotated output, and canonical diagnostics
// are byte-identical to a cold full analysis of the final source — at any
// thread count of the cold reference (the engine itself is single-threaded).
// The mutation matrix below drives every edit class through one engine and
// checks that contract plus the dirty-cone accounting after each step.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "driver/batch_analyzer.h"
#include "incremental/incremental_engine.h"
#include "store/summary_store.h"
#include "support/diagnostics.h"

namespace sspar::incremental {
namespace {

// Stable, pointer-free projection of a verdict so engine verdicts compare
// against a cold run's (the `loop` pointers necessarily differ).
std::vector<std::string> verdict_lines(const std::vector<core::LoopVerdict>& verdicts) {
  std::vector<std::string> out;
  for (const core::LoopVerdict& v : verdicts) {
    std::string line = std::to_string(v.loop != nullptr ? v.loop->location.line : 0);
    line += v.parallel ? " parallel" : " serial";
    if (v.hybrid) line += " hybrid:" + v.hybrid_index_array;
    line += " [" + v.reason + "]";
    for (const std::string& s : v.summaries_used) line += " via:" + s;
    for (const std::string& b : v.blockers) line += " blocked:" + b;
    for (const ast::VarDecl* p : v.privates) line += " private:" + p->name;
    out.push_back(std::move(line));
  }
  return out;
}

// Cold full analysis of `source` through the batch driver at the given
// thread count — the reference every incremental update must match.
driver::ProgramReport cold_reference(const std::string& source,
                                     const pipeline::Assumptions& assumptions,
                                     unsigned threads) {
  driver::BatchOptions options;
  options.threads = threads;
  driver::BatchAnalyzer batch(options);
  driver::BatchReport report = batch.run({{"prog", source, assumptions}});
  return std::move(report.programs.at(0));
}

// Asserts the update is byte-identical to cold analysis of the same source
// at 1 and 8 threads (verdicts, output, annotation count, canonical diags).
void expect_matches_cold(const UpdateResult& update, const std::string& source,
                         const pipeline::Assumptions& assumptions,
                         const std::string& label) {
  ASSERT_TRUE(update.ok) << label << ": " << update.error;
  for (unsigned threads : {1u, 8u}) {
    SCOPED_TRACE(label + " vs cold@" + std::to_string(threads) + " threads");
    driver::ProgramReport cold = cold_reference(source, assumptions, threads);
    ASSERT_TRUE(cold.ok) << cold.error;
    EXPECT_EQ(update.output, cold.result.output);
    EXPECT_EQ(verdict_lines(update.verdicts), verdict_lines(cold.result.verdicts));
    EXPECT_EQ(update.annotated, cold.result.parallelized);
    std::vector<support::Diagnostic> diags = cold.result.diags;
    support::canonicalize_diagnostics(diags);
    EXPECT_EQ(update.diagnostics, diags);
  }
}

// --------------------------------------------------------------------------
// Mutation matrix: every edit class, one engine, cold byte-identity after
// each step plus exact dirty-cone accounting.
// --------------------------------------------------------------------------

TEST(IncrementalEngine, MutationMatrixStaysByteIdenticalToColdAnalysis) {
  const pipeline::Assumptions assume = {{"n", 1}};
  const std::string base = R"(int n;
int a[100];
int b[100];
int idx[100];
int clamp(int v) {
  if (v < 0) { v = 0; }
  return v;
}
void fill(void) {
  for (int i = 0; i < n; i++) {
    idx[i] = i + 1;
  }
}
void scale(void) {
  for (int i = 0; i < n; i++) {
    a[idx[i]] = clamp(b[i]);
  }
}
void driver(void) {
  fill();
  scale();
}
)";

  EngineOptions options;
  options.assumptions = assume;
  IncrementalEngine engine(options);

  UpdateResult r = engine.update(base);
  expect_matches_cold(r, base, assume, "base");
  EXPECT_EQ(r.stats.functions_total, 4);
  EXPECT_EQ(r.stats.dirty, 4) << "first update analyzes everything";

  // Body edit: only the edited function and its (transitive) callers dirty.
  std::string body_edit = base;
  body_edit.replace(body_edit.find("clamp(b[i])"), 11, "clamp(b[i] + 1)");
  r = engine.update(body_edit);
  expect_matches_cold(r, body_edit, assume, "body edit");
  EXPECT_EQ(r.stats.dirty, 2) << "scale + driver";
  EXPECT_EQ(r.stats.reanalyzed, 2) << "line counts unchanged: nothing relocated";
  EXPECT_GT(r.stats.reused_verdicts, 0);

  // Helper edit: callers are dirty via callee-key folding.
  std::string helper_edit = body_edit;
  helper_edit.replace(helper_edit.find("{ v = 0; }"), 10, "{ v = 1; }");
  r = engine.update(helper_edit);
  expect_matches_cold(r, helper_edit, assume, "helper edit");
  EXPECT_EQ(r.stats.dirty, 3) << "clamp + scale + driver";

  // Signature change (arity): the callee AND the call site change.
  std::string sig_change = helper_edit;
  sig_change.replace(sig_change.find("int clamp(int v)"), 16, "int clamp(int v, int lo)");
  sig_change.replace(sig_change.find("{ v = 1; }"), 10, "{ v = lo; }");
  sig_change.replace(sig_change.find("clamp(b[i] + 1)"), 15, "clamp(b[i] + 1, 1)");
  r = engine.update(sig_change);
  expect_matches_cold(r, sig_change, assume, "signature change");
  EXPECT_EQ(r.stats.dirty, 3) << "clamp + scale + driver";

  // Added function (called from driver): new + driver dirty, others reuse.
  std::string added = sig_change;
  added += R"(void extra(void) {
  for (int i = 0; i < n; i++) {
    b[i] = i;
  }
}
)";
  added.replace(added.find("  scale();"), 10, "  scale();\n  extra();");
  r = engine.update(added);
  expect_matches_cold(r, added, assume, "added function");
  EXPECT_EQ(r.stats.functions_total, 5);
  EXPECT_EQ(r.stats.dirty, 2) << "extra (new) + driver";

  // Removed function: only the caller that lost the call is dirty.
  r = engine.update(sig_change);
  expect_matches_cold(r, sig_change, assume, "removed function");
  EXPECT_EQ(r.stats.functions_total, 4);
  EXPECT_EQ(r.stats.dirty, 1) << "driver";

  // Renamed function (definition + call site).
  std::string renamed = sig_change;
  renamed.replace(renamed.find("int clamp(int v, int lo)"), 24, "int bound(int v, int lo)");
  renamed.replace(renamed.find("clamp(b[i] + 1, 1)"), 18, "bound(b[i] + 1, 1)");
  r = engine.update(renamed);
  expect_matches_cold(r, renamed, assume, "renamed function");
  EXPECT_EQ(r.stats.dirty, 3) << "bound (new name) + scale + driver";

  // Comment-only edit (appended, so no location shifts): nothing re-runs.
  std::string comment_only = renamed + "// trailing note\n";
  r = engine.update(comment_only);
  expect_matches_cold(r, comment_only, assume, "comment-only edit");
  EXPECT_EQ(r.stats.dirty, 0);
  EXPECT_EQ(r.stats.reanalyzed, 0);
  EXPECT_EQ(static_cast<size_t>(r.stats.reused_verdicts), r.verdicts.size())
      << "every verdict rebinds from cache";
  EXPECT_EQ(r.delta.added.size(), 0u);
  EXPECT_EQ(r.delta.removed.size(), 0u);
}

TEST(IncrementalEngine, FailedParseKeepsTheSessionIncremental) {
  const pipeline::Assumptions assume = {{"n", 1}};
  const std::string base = R"(int n;
int a[100];
void fill(void) {
  for (int i = 0; i < n; i++) {
    a[i] = i;
  }
}
void driver(void) {
  fill();
}
)";
  EngineOptions options;
  options.assumptions = assume;
  IncrementalEngine engine(options);
  ASSERT_TRUE(engine.update(base).ok);

  // A syntax error mid-edit: the update fails with diagnostics, the previous
  // snapshot is released (program() is null until the next good update)...
  UpdateResult bad = engine.update("void broken( {");
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.error.empty());
  EXPECT_FALSE(bad.diagnostics.empty());
  EXPECT_EQ(engine.program(), nullptr);

  // ...but the incremental state survives: the next good update only
  // re-analyzes the edited cone, not the whole program.
  std::string edited = base;
  edited.replace(edited.find("a[i] = i;"), 9, "a[i] = i + 2;");
  UpdateResult r = engine.update(edited);
  expect_matches_cold(r, edited, assume, "update after failed parse");
  EXPECT_EQ(r.stats.dirty, 2) << "fill + driver; the syntax error cost nothing";
  EXPECT_NE(engine.program(), nullptr);
}

// --------------------------------------------------------------------------
// Edge cases from the dirty-cone design
// --------------------------------------------------------------------------

TEST(IncrementalEngine, EditingOneSccMemberDirtiesTheWholeScc) {
  const pipeline::Assumptions assume = {{"n", 1}};
  const std::string base = R"(int n;
int a[100];
void even(int v) {
  if (v > 0) { odd(v - 1); }
}
void odd(int v) {
  if (v > 0) { even(v - 1); }
}
void work(void) {
  for (int i = 0; i < n; i++) {
    a[i] = i;
  }
  even(n);
}
)";
  EngineOptions options;
  options.assumptions = assume;
  IncrementalEngine engine(options);
  ASSERT_TRUE(engine.update(base).ok);

  // Editing `odd` must dirty `even` too (the SCC is keyed as a group) and
  // `work` (caller of the SCC) — the entire program here.
  std::string edited = base;
  edited.replace(edited.find("even(v - 1)"), 11, "even(v - 2)");
  UpdateResult r = engine.update(edited);
  expect_matches_cold(r, edited, assume, "SCC member edit");
  EXPECT_EQ(r.stats.functions_total, 3);
  EXPECT_EQ(r.stats.dirty, 3) << "odd + even (same SCC) + work (caller)";
}

TEST(IncrementalEngine, DirtyCallerInvalidatesContextFingerprintedSummaries) {
  // `build_rowstr` is only provably monotonic under the entry facts the
  // caller projects into it (nzz >= 0 from fill_nzz); that proof lives in a
  // context-fingerprinted cache slot. Editing fill_nzz leaves build_rowstr's
  // content key UNCHANGED, but the caller's new entry facts hash to a new
  // fingerprint — so the stale specialized summary must not be served.
  const pipeline::Assumptions assume = {{"nrows", 1}};
  const std::string base = R"(int nrows;
int cols[512];
int nzz[512];
int rowstr[513];
double data[8192];
void fill_nzz(void) {
  for (int i = 0; i < nrows; i++) {
    nzz[i] = cols[i] > 0 ? 1 : 0;
  }
}
void build_rowstr(void) {
  rowstr[0] = 0;
  for (int i = 1; i < nrows + 1; i++) {
    rowstr[i] = rowstr[i-1] + nzz[i-1];
  }
}
void consume(void) {
  fill_nzz();
  build_rowstr();
  for (int i = 0; i < nrows; i++) {
    for (int k = rowstr[i]; k < rowstr[i+1]; k++) {
      data[k] = data[k] * 0.5;
    }
  }
}
)";
  EngineOptions options;
  options.assumptions = assume;
  IncrementalEngine engine(options);
  UpdateResult before = engine.update(base);
  ASSERT_TRUE(before.ok) << before.error;
  const std::vector<std::string> before_verdicts = verdict_lines(before.verdicts);

  // nzz entries may now be negative: the projected facts change, the rowstr
  // monotonicity proof must be re-derived (and fail), and the consume loop's
  // verdict must match a cold analysis — a stale fingerprint slot would
  // keep the old (now unsound) parallel verdict.
  std::string edited = base;
  edited.replace(edited.find("cols[i] > 0 ? 1 : 0"), 19, "cols[i] - 5        ");
  UpdateResult after = engine.update(edited);
  expect_matches_cold(after, edited, assume, "dirty caller, clean callee");
  EXPECT_EQ(after.stats.dirty, 2) << "fill_nzz + consume; build_rowstr stays clean";
  EXPECT_NE(verdict_lines(after.verdicts), before_verdicts)
      << "the edit must actually change an analysis result, or this test "
         "proves nothing about fingerprint invalidation";
}

TEST(IncrementalEngine, StorePreloadedSummariesServeAndSurviveUpdates) {
  const pipeline::Assumptions assume = {{"n", 1}};
  const std::string base = R"(int n;
int idx[100];
int a[100];
void fill(void) {
  for (int i = 0; i < n; i++) {
    idx[i] = i + 1;
  }
}
void scale(void) {
  fill();
  for (int i = 0; i < n; i++) {
    a[idx[i]] = i;
  }
}
void driver(void) {
  scale();
}
)";
  const std::string store_path = testing::TempDir() + "sspar_incremental_store.bin";
  std::remove(store_path.c_str());

  // First engine warms the persistent store with fill's summary.
  {
    store::SummaryStore store(store_path);
    ASSERT_TRUE(store.open());
    EngineOptions options;
    options.assumptions = assume;
    options.store = &store;
    IncrementalEngine warmup(options);
    ASSERT_TRUE(warmup.update(base).ok);
    warmup.flush_store();
  }

  // A fresh engine preloads the store at construction: even its FIRST update
  // (everything dirty) rehydrates fill's summary instead of recomputing it.
  store::SummaryStore store(store_path);
  ASSERT_TRUE(store.open());
  EngineOptions options;
  options.assumptions = assume;
  options.store = &store;
  IncrementalEngine engine(options);
  UpdateResult r = engine.update(base);
  expect_matches_cold(r, base, assume, "store-preloaded first update");
  EXPECT_GT(r.stats.reused_summaries, 0) << "fill's summary must come from the store";

  // The preloaded entry survives updates: editing scale re-analyzes it, and
  // its fill() call is answered by the same cached summary again.
  std::string edited = base;
  edited.replace(edited.find("a[idx[i]] = i;"), 14, "a[idx[i]] = i + 1;");
  r = engine.update(edited);
  expect_matches_cold(r, edited, assume, "edit against preloaded store");
  EXPECT_EQ(r.stats.dirty, 2) << "scale + driver";
  EXPECT_GT(r.stats.reused_summaries, 0)
      << "dirty scale consults fill's summary, which must still be cached";
  std::remove(store_path.c_str());
}

// --------------------------------------------------------------------------
// Diagnostics: canonical order, dedup, and the delta
// --------------------------------------------------------------------------

TEST(IncrementalEngine, DiagnosticsStayCanonicalWhenCachedAndFreshMerge) {
  // zz_noisy comes FIRST in the source but LAST in name order; after editing
  // only aa_noisy, its cached diagnostics must interleave with aa_noisy's
  // fresh ones in (line, column, code) order — not in map/name order and not
  // cached-then-fresh.
  const pipeline::Assumptions assume = {{"n", 1}};
  const std::string base = R"(int n;
int a[100];
void zz_noisy(void) {
  for (int i = 0; i < n; i++) {
    while (a[i] > 0) { a[i] = a[i] - 1; }
  }
}
void aa_noisy(void) {
  for (int i = 0; i < n; i++) {
    while (a[i] > 1) { a[i] = a[i] - 2; }
  }
}
)";
  EngineOptions options;
  options.assumptions = assume;
  IncrementalEngine engine(options);
  UpdateResult r = engine.update(base);
  expect_matches_cold(r, base, assume, "two-warning base");
  ASSERT_GE(r.diagnostics.size(), 2u) << "both while loops must warn";
  for (size_t i = 1; i < r.diagnostics.size(); ++i) {
    EXPECT_LE(r.diagnostics[i - 1].location.line, r.diagnostics[i].location.line)
        << "diagnostics out of canonical order at index " << i;
  }

  // Edit only aa_noisy: zz_noisy's warning is cached, aa_noisy's is fresh.
  std::string edited = base;
  edited.replace(edited.find("a[i] - 2"), 8, "a[i] - 3");
  r = engine.update(edited);
  expect_matches_cold(r, edited, assume, "cached + fresh diagnostics");
  EXPECT_EQ(r.delta.added.size(), 0u);
  EXPECT_EQ(r.delta.removed.size(), 0u);
  EXPECT_EQ(r.delta.unchanged, static_cast<int>(r.diagnostics.size()));

  // Removing zz_noisy's while loop shows up as a removed diagnostic.
  std::string calmed = edited;
  calmed.replace(calmed.find("while (a[i] > 0) { a[i] = a[i] - 1; }"), 37,
                 "a[i] = 0;                            ");
  r = engine.update(calmed);
  expect_matches_cold(r, calmed, assume, "warning removed");
  EXPECT_EQ(r.delta.removed.size(), 1u);
  EXPECT_EQ(r.delta.added.size(), 0u);
}

}  // namespace
}  // namespace sspar::incremental
