// Tests for the Phase 1 / Phase 2 index-array analysis against the worked
// example of paper Section 3.5 and related patterns.
#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "frontend/frontend.h"
#include "support/diagnostics.h"

namespace sspar::core {
namespace {

struct Analyzed {
  ast::ParseResult parsed;
  std::unique_ptr<Analyzer> analyzer;

  const ast::FuncDecl* func(const char* name) const {
    return parsed.program->find_function(name);
  }
  const FactDB* end_facts(const char* name) const {
    return analyzer->facts_at_end(func(name));
  }
  sym::SymbolTable& syms() const { return *parsed.symbols; }
  sym::SymbolId sym_of(const char* name) const {
    auto id = parsed.symbols->lookup(name);
    EXPECT_NE(id, sym::kInvalidSymbol) << name;
    return id;
  }
};

Analyzed analyze(const char* source,
                 const std::vector<std::pair<const char*, int64_t>>& assumptions = {},
                 AnalyzerOptions options = {}) {
  Analyzed a;
  support::DiagnosticEngine diags;
  a.parsed = ast::parse_and_resolve(source, diags);
  EXPECT_TRUE(a.parsed.ok) << diags.dump();
  a.analyzer = std::make_unique<Analyzer>(*a.parsed.program, *a.parsed.symbols, options);
  for (const auto& [name, lo] : assumptions) {
    a.analyzer->assume_ge(a.parsed.program->find_global(name), lo);
  }
  a.analyzer->run();
  return a;
}

// The paper's Fig. 9 lines 1-15: index-array creation for CSR-style storage.
const char* kFig9Fill = R"(
  int ROWLEN;
  int COLUMNLEN;
  int ind;
  int index;
  int a[100][100];
  int column_number[10000];
  double value[10000];
  int rowsize[100];
  int rowptr[101];
  void fill() {
    for (int i = 0; i < ROWLEN; i++) {
      int count = 0;
      for (int j = 0; j < COLUMNLEN; j++) {
        if (a[i][j] != 0) {
          count++;
          column_number[index++] = j;
          value[ind++] = a[i][j];
        }
      }
      rowsize[i] = count;
    }
    rowptr[0] = 0;
    for (int i = 1; i < ROWLEN + 1; i++) {
      rowptr[i] = rowptr[i-1] + rowsize[i-1];
    }
  }
)";

TEST(Phase2, Fig9RowsizeValueFact) {
  auto a = analyze(kFig9Fill, {{"ROWLEN", 1}, {"COLUMNLEN", 1}});
  const FactDB* facts = a.end_facts("fill");
  ASSERT_NE(facts, nullptr);
  // Paper Section 3.5: rowsize : [0 : ROWLEN-1], [0 : COLUMNLEN]
  // (we use the sound trip-count bound COLUMNLEN where the paper writes
  // COLUMNLEN-1; see DESIGN.md).
  sym::AssumptionContext ctx;
  ctx.assume_ge(a.sym_of("ROWLEN"), 1);
  auto value = facts->elem_value(a.sym_of("rowsize"), sym::make_const(0), ctx);
  ASSERT_TRUE(value.has_value()) << facts->to_string(a.syms());
  ASSERT_TRUE(value->lo_bounded());
  EXPECT_EQ(sym::to_string(value->lo(), a.syms()), "0");
  ASSERT_TRUE(value->hi_bounded());
  EXPECT_EQ(sym::to_string(value->hi(), a.syms()), "COLUMNLEN");
}

TEST(Phase2, Fig9RowptrMonotonicStepFact) {
  auto a = analyze(kFig9Fill, {{"ROWLEN", 1}, {"COLUMNLEN", 1}});
  const FactDB* facts = a.end_facts("fill");
  ASSERT_NE(facts, nullptr);
  // Paper Section 3.5: rowptr : [1 : ROWLEN], Monotonic_inc.
  sym::AssumptionContext ctx;
  ctx.assume_ge(a.sym_of("ROWLEN"), 1);
  auto i = sym::make_sym(a.syms().intern("qi"));
  ctx.assume(a.syms().lookup("qi"), sym::Range::of_consts(1, 1));
  // Difference across one link: rowptr[1] - rowptr[0] in [0 : COLUMNLEN].
  auto diff = facts->elem_diff(a.sym_of("rowptr"), sym::make_const(1), sym::make_const(0), ctx);
  ASSERT_TRUE(diff.has_value()) << facts->to_string(a.syms());
  ASSERT_TRUE(diff->lo_bounded());
  EXPECT_EQ(sym::to_string(diff->lo(), a.syms()), "0");
  (void)i;
}

TEST(Phase2, Fig9RowptrBasePointFact) {
  auto a = analyze(kFig9Fill, {{"ROWLEN", 1}, {"COLUMNLEN", 1}});
  const FactDB* facts = a.end_facts("fill");
  // rowptr[0] = 0 must survive the fill loop (writes go to [1 : ROWLEN]).
  sym::AssumptionContext ctx;
  ctx.assume_ge(a.sym_of("ROWLEN"), 1);
  auto value = facts->elem_value(a.sym_of("rowptr"), sym::make_const(0), ctx);
  ASSERT_TRUE(value.has_value()) << facts->to_string(a.syms());
  EXPECT_TRUE(value->is_exact());
  EXPECT_EQ(sym::to_string(value->exact_value(), a.syms()), "0");
}

TEST(Phase2, IdentityFill) {
  auto a = analyze(R"(
    int n;
    int perm[100];
    void fill() {
      for (int i = 0; i < n; i++) {
        perm[i] = i;
      }
    }
  )", {{"n", 1}});
  const FactDB* facts = a.end_facts("fill");
  sym::AssumptionContext ctx;
  ctx.assume_ge(a.sym_of("n"), 1);
  EXPECT_TRUE(facts->identity_over(a.sym_of("perm"), sym::make_const(0),
                                   sym::sub(sym::make_sym(a.sym_of("n")), sym::make_const(1)),
                                   ctx))
      << facts->to_string(a.syms());
  EXPECT_TRUE(facts->injective_over(a.sym_of("perm"), sym::make_const(0),
                                    sym::sub(sym::make_sym(a.sym_of("n")), sym::make_const(1)),
                                    ctx));
}

TEST(Phase2, StrictAffineFillIsInjective) {
  auto a = analyze(R"(
    int n;
    int idx[100];
    void fill() {
      for (int i = 0; i < n; i++) {
        idx[i] = 3 * i + 5;
      }
    }
  )", {{"n", 1}});
  const FactDB* facts = a.end_facts("fill");
  sym::AssumptionContext ctx;
  ctx.assume_ge(a.sym_of("n"), 1);
  auto n = sym::make_sym(a.sym_of("n"));
  EXPECT_TRUE(facts->injective_over(a.sym_of("idx"), sym::make_const(0),
                                    sym::sub(n, sym::make_const(1)), ctx))
      << facts->to_string(a.syms());
  // Value fact: [5 : 3n+2].
  auto value = facts->elem_value(a.sym_of("idx"), sym::make_const(0), ctx);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(sym::to_string(value->lo(), a.syms()), "5");
}

TEST(Phase2, DecreasingFill) {
  auto a = analyze(R"(
    int n;
    int idx[100];
    void fill() {
      for (int i = 0; i < n; i++) {
        idx[i] = n - i;
      }
    }
  )", {{"n", 1}});
  const FactDB* facts = a.end_facts("fill");
  sym::AssumptionContext ctx;
  ctx.assume_ge(a.sym_of("n"), 1);
  auto n = sym::make_sym(a.sym_of("n"));
  // Strictly decreasing is still injective.
  EXPECT_TRUE(facts->injective_over(a.sym_of("idx"), sym::make_const(0),
                                    sym::sub(n, sym::make_const(1)), ctx))
      << facts->to_string(a.syms());
}

TEST(Phase2, ConditionalWriteProducesNoValueFact) {
  auto a = analyze(R"(
    int n;
    int flag[100];
    int out[100];
    void fill() {
      for (int i = 0; i < n; i++) {
        if (flag[i] > 0) {
          out[i] = 1;
        }
      }
    }
  )", {{"n", 1}});
  const FactDB* facts = a.end_facts("fill");
  sym::AssumptionContext ctx;
  ctx.assume_ge(a.sym_of("n"), 1);
  EXPECT_FALSE(facts->elem_value(a.sym_of("out"), sym::make_const(0), ctx).has_value())
      << facts->to_string(a.syms());
}

TEST(Phase2, OverwriteKillsFacts) {
  auto a = analyze(R"(
    int n;
    int idx[100];
    void fill() {
      for (int i = 0; i < n; i++) {
        idx[i] = i;
      }
      for (int i = 0; i < n; i++) {
        idx[i] = 7;
      }
    }
  )", {{"n", 1}});
  const FactDB* facts = a.end_facts("fill");
  sym::AssumptionContext ctx;
  ctx.assume_ge(a.sym_of("n"), 1);
  auto n = sym::make_sym(a.sym_of("n"));
  // The identity/injectivity from the first loop must be gone...
  EXPECT_FALSE(facts->injective_over(a.sym_of("idx"), sym::make_const(0),
                                     sym::sub(n, sym::make_const(1)), ctx))
      << facts->to_string(a.syms());
  // ...and replaced by the constant value fact.
  auto value = facts->elem_value(a.sym_of("idx"), sym::make_const(0), ctx);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(sym::to_string(value->lo(), a.syms()), "7");
  EXPECT_EQ(sym::to_string(value->hi(), a.syms()), "7");
}

TEST(Phase2, DisjointWritesPreserveFacts) {
  auto a = analyze(R"(
    int n;
    int idx[200];
    void fill() {
      for (int i = 0; i < n; i++) {
        idx[i] = i;
      }
      for (int i = 100; i < 100 + n; i++) {
        idx[i] = 7;
      }
    }
  )", {{"n", 1}});
  // With n <= 100 unknown, the second write [100 : 99+n] cannot be proven
  // disjoint from [0 : n-1], so facts die. Declare n <= 50 via a range.
  support::DiagnosticEngine diags;
  auto parsed = ast::parse_and_resolve(R"(
    int n;
    int idx[200];
    void fill() {
      for (int i = 0; i < n; i++) {
        idx[i] = i;
      }
      for (int i = 100; i < 100 + n; i++) {
        idx[i] = 7;
      }
    }
  )", diags);
  ASSERT_TRUE(parsed.ok);
  Analyzer analyzer(*parsed.program, *parsed.symbols);
  analyzer.assume(parsed.program->find_global("n"),
                  sym::Range::of_consts(1, 50));
  analyzer.run();
  const FactDB* facts = analyzer.facts_at_end(parsed.program->find_function("fill"));
  sym::AssumptionContext ctx;
  ctx.assume(parsed.symbols->lookup("n"), sym::Range::of_consts(1, 50));
  auto n = sym::make_sym(parsed.symbols->lookup("n"));
  EXPECT_TRUE(facts->injective_over(parsed.symbols->lookup("idx"), sym::make_const(0),
                                    sym::sub(n, sym::make_const(1)), ctx))
      << facts->to_string(*parsed.symbols);
}

TEST(Phase2, DensePrefixGatherLoop) {
  // Lin & Padua's "index gathering loop": idx[k++] = 2*i, unconditional.
  auto a = analyze(R"(
    int n;
    int k;
    int idx[100];
    void fill() {
      k = 0;
      for (int i = 0; i < n; i++) {
        idx[k++] = 2 * i;
      }
    }
  )", {{"n", 1}});
  const FactDB* facts = a.end_facts("fill");
  sym::AssumptionContext ctx;
  ctx.assume_ge(a.sym_of("n"), 1);
  auto n = sym::make_sym(a.sym_of("n"));
  EXPECT_TRUE(facts->injective_over(a.sym_of("idx"), sym::make_const(0),
                                    sym::sub(n, sym::make_const(1)), ctx))
      << facts->to_string(a.syms());
  auto value = facts->elem_value(a.sym_of("idx"), sym::make_const(0), ctx);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(sym::to_string(value->lo(), a.syms()), "0");
}

TEST(Phase2, InversePermutationRule) {
  auto a = analyze(R"(
    int n;
    int perm[100];
    int inv[100];
    void fill() {
      for (int i = 0; i < n; i++) {
        perm[i] = n - 1 - i;
      }
      for (int i = 0; i < n; i++) {
        inv[perm[i]] = i;
      }
    }
  )", {{"n", 1}});
  const FactDB* facts = a.end_facts("fill");
  sym::AssumptionContext ctx;
  ctx.assume_ge(a.sym_of("n"), 1);
  auto n = sym::make_sym(a.sym_of("n"));
  EXPECT_TRUE(facts->injective_over(a.sym_of("inv"), sym::make_const(0),
                                    sym::sub(n, sym::make_const(1)), ctx))
      << facts->to_string(a.syms());
}

TEST(Phase2, SubsetInjectiveBranchFill) {
  // Fig. 5 fill shape: non-negative branch strictly monotone, else sentinel.
  auto a = analyze(R"(
    int n;
    int flag[100];
    int jmatch[100];
    void fill() {
      for (int i = 0; i < n; i++) {
        if (flag[i] > 0) {
          jmatch[i] = 2 * i;
        } else {
          jmatch[i] = -1;
        }
      }
    }
  )", {{"n", 1}});
  const FactDB* facts = a.end_facts("fill");
  sym::AssumptionContext ctx;
  ctx.assume_ge(a.sym_of("n"), 1);
  auto n = sym::make_sym(a.sym_of("n"));
  std::optional<int64_t> min_value;
  EXPECT_TRUE(facts->injective_over(a.sym_of("jmatch"), sym::make_const(0),
                                    sym::sub(n, sym::make_const(1)), ctx, &min_value))
      << facts->to_string(a.syms());
  ASSERT_TRUE(min_value.has_value());
  EXPECT_EQ(*min_value, 0);
}

TEST(Phase2, DisjointStridedBranchFill) {
  // Fig. 8 shape: 7i+3 vs 7i+5 never collide (offsets differ mod 7).
  auto a = analyze(R"(
    int n;
    int flag[100];
    int dest[1000];
    void fill() {
      for (int i = 0; i < n; i++) {
        if (flag[i] > 0) {
          dest[i] = 7 * i + 3;
        } else {
          dest[i] = 7 * i + 5;
        }
      }
    }
  )", {{"n", 1}});
  const FactDB* facts = a.end_facts("fill");
  sym::AssumptionContext ctx;
  ctx.assume_ge(a.sym_of("n"), 1);
  auto n = sym::make_sym(a.sym_of("n"));
  EXPECT_TRUE(facts->injective_over(a.sym_of("dest"), sym::make_const(0),
                                    sym::sub(n, sym::make_const(1)), ctx))
      << facts->to_string(a.syms());
}

TEST(Phase2, ScalarLambdaAggregation) {
  // count: [λ : λ+1] per iteration over n iterations => [0 : n].
  auto a = analyze(R"(
    int n;
    int total;
    int flag[100];
    int out[100];
    void fill() {
      total = 0;
      for (int i = 0; i < n; i++) {
        if (flag[i] > 0) {
          total = total + 1;
        }
        out[i] = total;
      }
    }
  )", {{"n", 1}});
  const FactDB* facts = a.end_facts("fill");
  sym::AssumptionContext ctx;
  ctx.assume_ge(a.sym_of("n"), 1);
  auto value = facts->elem_value(a.sym_of("out"), sym::make_const(0), ctx);
  ASSERT_TRUE(value.has_value()) << facts->to_string(a.syms());
  EXPECT_EQ(sym::to_string(value->lo(), a.syms()), "0");
  EXPECT_EQ(sym::to_string(value->hi(), a.syms()), "n");
}

TEST(Phase2, LambdaPlusIndexClosedForm) {
  // x += i aggregates to Λ + n(n-1)/2 (paper Section 3.4 advanced case);
  // the value fact on out[0..n-1] proves a non-negative range.
  auto a = analyze(R"(
    int n;
    int x;
    int out[100];
    void fill() {
      x = 0;
      for (int i = 0; i < n; i++) {
        x = x + i;
      }
      for (int i = 0; i < n; i++) {
        out[i] = x;
      }
    }
  )", {{"n", 1}});
  const FactDB* facts = a.end_facts("fill");
  sym::AssumptionContext ctx;
  ctx.assume_ge(a.sym_of("n"), 1);
  auto value = facts->elem_value(a.sym_of("out"), sym::make_const(0), ctx);
  ASSERT_TRUE(value.has_value()) << facts->to_string(a.syms());
  ASSERT_TRUE(value->is_exact());
  // x = sum_{i=0}^{n-1} i = n(n-1)/2 = (n*n - n)/2 in canonical print order.
  EXPECT_EQ(sym::to_string(value->exact_value(), a.syms()), "div(-n + n*n, 2)");
}

TEST(Phase2, RecurrenceWithNegativeStepIsDecreasing) {
  auto a = analyze(R"(
    int n;
    int down[101];
    void fill() {
      down[0] = 1000;
      for (int i = 1; i < n + 1; i++) {
        down[i] = down[i-1] - 2;
      }
    }
  )", {{"n", 1}});
  const FactDB* facts = a.end_facts("fill");
  sym::AssumptionContext ctx;
  ctx.assume_ge(a.sym_of("n"), 1);
  auto diff = facts->elem_diff(a.sym_of("down"), sym::make_const(1), sym::make_const(0), ctx);
  ASSERT_TRUE(diff.has_value()) << facts->to_string(a.syms());
  EXPECT_EQ(sym::to_string(diff->lo(), a.syms()), "-2");
  EXPECT_EQ(sym::to_string(diff->hi(), a.syms()), "-2");
  // Strictly decreasing => injective.
  auto n = sym::make_sym(a.sym_of("n"));
  EXPECT_TRUE(facts->injective_over(a.sym_of("down"), sym::make_const(0), n, ctx));
}

TEST(Phase2, UnanalyzableLoopHavocsFacts) {
  auto a = analyze(R"(
    int n;
    int idx[100];
    void fill() {
      for (int i = 0; i < n; i++) {
        idx[i] = i;
      }
      int i = 0;
      while (i < n) {
        idx[i] = 0;
        i = i + 1;
      }
    }
  )", {{"n", 1}});
  const FactDB* facts = a.end_facts("fill");
  sym::AssumptionContext ctx;
  ctx.assume_ge(a.sym_of("n"), 1);
  auto n = sym::make_sym(a.sym_of("n"));
  EXPECT_FALSE(facts->injective_over(a.sym_of("idx"), sym::make_const(0),
                                     sym::sub(n, sym::make_const(1)), ctx))
      << facts->to_string(a.syms());
}

// Ablation: every extension rule can be switched off and its fact disappears.
TEST(Phase2, AblationRecurrenceRule) {
  AnalyzerOptions opts;
  opts.enable_recurrence_rule = false;
  auto a = analyze(kFig9Fill, {{"ROWLEN", 1}, {"COLUMNLEN", 1}}, opts);
  const FactDB* facts = a.end_facts("fill");
  sym::AssumptionContext ctx;
  ctx.assume_ge(a.sym_of("ROWLEN"), 1);
  EXPECT_FALSE(
      facts->elem_diff(a.sym_of("rowptr"), sym::make_const(1), sym::make_const(0), ctx)
          .has_value());
}

TEST(Phase2, AblationIdentityRule) {
  AnalyzerOptions opts;
  opts.enable_identity_rule = false;
  auto a = analyze(R"(
    int n;
    int perm[100];
    void fill() {
      for (int i = 0; i < n; i++) {
        perm[i] = i;
      }
    }
  )", {{"n", 1}}, opts);
  const FactDB* facts = a.end_facts("fill");
  sym::AssumptionContext ctx;
  ctx.assume_ge(a.sym_of("n"), 1);
  auto n = sym::make_sym(a.sym_of("n"));
  EXPECT_FALSE(facts->identity_over(a.sym_of("perm"), sym::make_const(0),
                                    sym::sub(n, sym::make_const(1)), ctx));
  // The affine rule still catches it as strictly monotonic (coeff 1).
  EXPECT_TRUE(facts->injective_over(a.sym_of("perm"), sym::make_const(0),
                                    sym::sub(n, sym::make_const(1)), ctx));
}

}  // namespace
}  // namespace sspar::core
