// Property-based end-to-end soundness harness.
//
// A generator synthesizes random mini-C programs from the paper's pattern
// space: a fill loop writes an index array with a randomly chosen idiom
// (identity / affine / recurrence with random step bounds / conditional with
// sentinel / gather), then a consumer loop uses the array as a subscript or
// as inner-loop bounds. Some idioms produce parallel-provable consumers,
// some provably don't — the invariant under test is SOUNDNESS:
//
//     static "parallel"  ⇒  the dynamic dependence oracle finds no
//                           loop-carried dependence, and permuted execution
//                           reproduces the sequential final state.
//
// The generator deliberately includes broken variants (negative recurrence
// steps with overlapping use, duplicate values, shuffled-but-not-injective
// fills) so the suite fails if the analyzer ever over-claims.
#include <gtest/gtest.h>

#include <random>

#include "corpus/analysis.h"
#include "interp/interpreter.h"
#include "support/text.h"

namespace sspar {
namespace {

struct GeneratedProgram {
  std::string source;
  std::string description;
};

GeneratedProgram generate(uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto pick = [&rng](int n) { return static_cast<int>(rng() % static_cast<uint64_t>(n)); };

  GeneratedProgram prog;
  std::string fill;
  std::string consumer;
  int fill_kind = pick(6);
  int consumer_kind = pick(3);

  switch (fill_kind) {
    case 0: {  // identity
      fill = "  for (int i = 0; i < n; i++) {\n    idx[i] = i;\n  }\n";
      prog.description = "identity fill";
      break;
    }
    case 1: {  // affine, random slope including 0 and negatives
      int p = pick(5) - 2;  // -2..2
      int q = pick(4);
      fill = support::format(
          "  for (int i = 0; i < n; i++) {\n    idx[i] = %d * i + %d + n;\n  }\n", p, q);
      prog.description = support::format("affine fill p=%d", p);
      break;
    }
    case 2: {  // non-negative recurrence (monotonic)
      int lo = pick(3);           // 0..2
      int hi = lo + pick(3);      // lo..lo+2
      fill = support::format(
          "  idx[0] = 0;\n"
          "  for (int i = 1; i < n + 1; i++) {\n"
          "    idx[i] = idx[i-1] + %d + (w[i] > 0 ? %d : 0);\n  }\n",
          lo, hi - lo);
      prog.description = support::format("recurrence step [%d:%d]", lo, hi);
      break;
    }
    case 3: {  // recurrence with possibly-negative step (NOT monotonic)
      fill =
          "  idx[0] = n;\n"
          "  for (int i = 1; i < n + 1; i++) {\n"
          "    idx[i] = idx[i-1] + (w[i] > 0 ? 1 : -1);\n  }\n";
      prog.description = "mixed-sign recurrence";
      break;
    }
    case 4: {  // conditional with sentinel (subset-injective)
      int stride = 1 + pick(3);
      fill = support::format(
          "  for (int i = 0; i < n; i++) {\n"
          "    if (w[i] > 0) {\n      idx[i] = %d * i;\n    } else {\n      idx[i] = -1;\n    }\n"
          "  }\n",
          stride);
      prog.description = support::format("subset fill stride %d", stride);
      break;
    }
    default: {  // duplicate-producing fill (i/2): NOT injective
      fill = "  for (int i = 0; i < n; i++) {\n    idx[i] = i / 2;\n  }\n";
      prog.description = "duplicating fill";
      break;
    }
  }

  switch (consumer_kind) {
    case 0:  // scatter through idx
      consumer =
          "  for (int i = 0; i < n; i++) {\n"
          "    if (idx[i] >= 0) {\n      out[idx[i]] = i;\n    }\n  }\n";
      prog.description += " + guarded scatter";
      break;
    case 1:  // unguarded scatter
      consumer =
          "  for (int i = 0; i < n; i++) {\n    out[idx[i] + n] = 2 * i;\n  }\n";
      prog.description += " + unguarded scatter";
      break;
    default:  // range traversal (CSR style); only sane for monotonic fills
      consumer =
          "  for (int i = 0; i < n; i++) {\n"
          "    int lo2 = idx[i] < 0 ? 0 : idx[i];\n"
          "    int hi2 = idx[i+1] < lo2 ? lo2 : idx[i+1];\n"
          "    for (int k = lo2; k < hi2; k++) {\n      out[k] = out[k] + 1;\n    }\n  }\n";
      prog.description += " + range traversal";
      break;
  }

  prog.source =
      "int n;\nint w[600];\nint idx[601];\nint out[4096];\n"
      "void f() {\n" +
      fill + consumer + "}\n";
  return prog;
}

class RandomProgramSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramSoundness, StaticParallelImpliesOracleAgreement) {
  GeneratedProgram prog = generate(GetParam());
  SCOPED_TRACE(prog.description + "\n" + prog.source);

  corpus::Entry entry;
  entry.name = "generated";
  entry.source = prog.source;
  entry.params.push_back({"n", 64, 1});
  corpus::EntryAnalysis analysis = corpus::analyze_entry(entry);
  ASSERT_TRUE(analysis.ok) << analysis.diagnostics;

  // Seed w with a deterministic but irregular pattern.
  auto seed_interp = [&](interp::Interpreter& interp) {
    interp.set_scalar("n", int64_t{64});
    std::vector<int64_t> w(600);
    std::mt19937_64 rng(GetParam() ^ 0x9e3779b9);
    for (auto& v : w) v = static_cast<int64_t>(rng() % 3) - 1;
    interp.set_array_int("w", std::move(w));
  };

  interp::Interpreter sequential(*analysis.parsed.program);
  seed_interp(sequential);
  sequential.run("f");
  auto expected = sequential.snapshot();

  for (const auto& v : analysis.verdicts) {
    if (!v.parallel) continue;
    // Oracle: exact dependence check.
    interp::Interpreter oracle(*analysis.parsed.program);
    seed_interp(oracle);
    auto report = oracle.analyze_loop_dependences("f", v.loop);
    EXPECT_TRUE(report.dependence_free)
        << "UNSOUND verdict (loop " << v.loop_id << ", reason: " << v.reason
        << "): " << report.first_conflict;
    // Permuted execution: state equivalence.
    std::set<std::string> exclude;
    for (const auto* d : v.privates) exclude.insert(d->name);
    interp::Interpreter permuted(*analysis.parsed.program);
    seed_interp(permuted);
    permuted.run_permuted("f", v.loop, GetParam());
    std::string diff;
    EXPECT_TRUE(interp::Interpreter::equal_state(*expected, *permuted.snapshot(), exclude,
                                                 &diff))
        << "state mismatch at " << diff << " (loop " << v.loop_id << ", " << v.reason << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramSoundness,
                         ::testing::Range<uint64_t>(0, 120));

// Completeness tracking (not a hard guarantee, but the generator contains
// patterns the paper's technique must catch; if coverage collapses, a
// regression sneaked in).
TEST(RandomProgramCoverage, AnalyzerCatchesAReasonableShare) {
  int parallel_claims = 0;
  int programs = 0;
  for (uint64_t seed = 0; seed < 120; ++seed) {
    GeneratedProgram prog = generate(seed);
    corpus::Entry entry;
    entry.name = "generated";
    entry.source = prog.source;
    entry.params.push_back({"n", 64, 1});
    corpus::EntryAnalysis analysis = corpus::analyze_entry(entry);
    ASSERT_TRUE(analysis.ok);
    ++programs;
    parallel_claims += analysis.parallel;
  }
  // Fill loops alone give at least one parallel loop in most programs.
  EXPECT_GT(parallel_claims, programs / 2)
      << "static coverage collapsed: " << parallel_claims << " parallel loops over "
      << programs << " programs";
}

}  // namespace
}  // namespace sspar
