// Session-scoped incremental protocol of the analysis server:
// open_session / update / close_session round trips, E_NO_SESSION on every
// stale-name path (never opened, closed, LRU-evicted, idle-expired),
// concurrent clients on distinct sessions, the stats "incremental" object,
// byte-identity of the update's emitted output with a one-shot translation,
// and fault injection at the session handlers.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "server/analysis_server.h"
#include "server/client.h"
#include "server/protocol.h"
#include "store/summary_store.h"
#include "support/faultpoint.h"
#include "support/json.h"
#include "transform/omp_emitter.h"

namespace sspar::server {
namespace {

std::string fresh_path(const std::string& name) {
  std::string path = testing::TempDir() + "sspar_incr_session_" + name;
  std::remove(path.c_str());
  return path;
}

const char* kBase = R"(int n;
int a[100];
int idx[100];
void fill(void) {
  for (int i = 0; i < n; i++) {
    idx[i] = i + 1;
  }
}
void scale(void) {
  for (int i = 0; i < n; i++) {
    a[idx[i]] = i;
  }
}
void driver(void) {
  fill();
  scale();
}
)";

std::string edited_base() {
  std::string src = kBase;
  src.replace(src.find("a[idx[i]] = i;"), 14, "a[idx[i]] = i + 1;");
  return src;
}

struct FaultGuard {
  FaultGuard() { support::faultpoint::disarm_all(); }
  ~FaultGuard() { support::faultpoint::disarm_all(); }
};

struct SessionFixture {
  std::string socket_path;
  std::string store_path;
  store::SummaryStore store;
  AnalysisServer server;

  SessionFixture(const std::string& name, ServerOptions options)
      : socket_path(fresh_path(name + ".sock")),
        store_path(fresh_path(name + ".bin")),
        store(store_path),
        server([&] {
          options.socket_path = socket_path;
          options.store = &store;
          return options;
        }()) {
    EXPECT_TRUE(store.open());
  }

  ~SessionFixture() {
    server.stop();
    std::remove(store_path.c_str());
  }

  bool start() {
    std::string error;
    bool ok = server.start(&error);
    EXPECT_TRUE(ok) << error;
    return ok;
  }
};

const char* error_code_of(const support::json::Value& response) {
  const support::json::Value* error = response.find("error");
  if (error == nullptr || error->find("code") == nullptr) return "";
  return error->find("code")->as_string().c_str();
}

int64_t update_stat(const support::json::Value& response, const std::string& key) {
  const support::json::Value* update = response.find("update");
  if (update == nullptr || update->find("stats") == nullptr) return -1;
  return update->find("stats")->int_or(key, -1);
}

TEST(IncrementalSession, OpenUpdateCloseRoundTrip) {
  ServerOptions options;
  options.threads = 1;
  SessionFixture fx("roundtrip", options);
  ASSERT_TRUE(fx.start());
  Client client;
  ASSERT_TRUE(client.connect(fx.socket_path));

  auto opened = client.request(make_open_session_request("editor", {{"n", 1}}));
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->find("ok")->as_bool());
  EXPECT_EQ(opened->find("session")->as_string(), "editor");

  // First update: everything is dirty (the engine is cold).
  auto first = client.request(make_update_request("editor", kBase));
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(first->find("ok")->as_bool());
  EXPECT_EQ(update_stat(*first, "functions_total"), 3);
  EXPECT_EQ(update_stat(*first, "dirty"), 3);
  EXPECT_GT(first->find("update")->int_or("loops", 0), 0);

  // Second update: a one-function edit only re-analyzes its cone.
  auto second = client.request(make_update_request("editor", edited_base()));
  ASSERT_TRUE(second.has_value());
  ASSERT_TRUE(second->find("ok")->as_bool());
  EXPECT_EQ(update_stat(*second, "dirty"), 2) << "scale + driver";
  EXPECT_GT(update_stat(*second, "reused_verdicts"), 0);

  auto closed = client.request(make_close_session_request("editor"));
  ASSERT_TRUE(closed.has_value());
  EXPECT_TRUE(closed->find("ok")->as_bool());

  // The closed name is gone: update and re-close both answer E_NO_SESSION.
  auto stale = client.request(make_update_request("editor", kBase));
  ASSERT_TRUE(stale.has_value());
  EXPECT_FALSE(stale->find("ok")->as_bool());
  EXPECT_STREQ(error_code_of(*stale), "E_NO_SESSION");
  auto reclosed = client.request(make_close_session_request("editor"));
  ASSERT_TRUE(reclosed.has_value());
  EXPECT_STREQ(error_code_of(*reclosed), "E_NO_SESSION");
}

TEST(IncrementalSession, UpdateOnNeverOpenedSessionAnswersENoSession) {
  ServerOptions options;
  options.threads = 1;
  SessionFixture fx("unknown", options);
  ASSERT_TRUE(fx.start());
  Client client;
  ASSERT_TRUE(client.connect(fx.socket_path));
  auto response = client.request(make_update_request("never-opened", kBase));
  ASSERT_TRUE(response.has_value());
  EXPECT_FALSE(response->find("ok")->as_bool());
  EXPECT_STREQ(error_code_of(*response), "E_NO_SESSION");
}

TEST(IncrementalSession, LruCapEvictsTheLeastRecentlyUsedSession) {
  ServerOptions options;
  options.threads = 1;
  options.max_sessions = 2;
  SessionFixture fx("lru", options);
  ASSERT_TRUE(fx.start());
  Client client;
  ASSERT_TRUE(client.connect(fx.socket_path));

  for (const char* name : {"s1", "s2"}) {
    auto opened = client.request(make_open_session_request(name, {{"n", 1}}));
    ASSERT_TRUE(opened.has_value());
    ASSERT_TRUE(opened->find("ok")->as_bool());
    auto updated = client.request(make_update_request(name, kBase));
    ASSERT_TRUE(updated.has_value());
    ASSERT_TRUE(updated->find("ok")->as_bool());
  }
  // Touch s1 so s2 is the LRU victim when s3 opens over the cap.
  ASSERT_TRUE(client.request(make_update_request("s1", edited_base()))->find("ok")->as_bool());
  auto third = client.request(make_open_session_request("s3", {{"n", 1}}));
  ASSERT_TRUE(third.has_value());
  ASSERT_TRUE(third->find("ok")->as_bool());

  auto evicted = client.request(make_update_request("s2", kBase));
  ASSERT_TRUE(evicted.has_value());
  EXPECT_FALSE(evicted->find("ok")->as_bool());
  EXPECT_STREQ(error_code_of(*evicted), "E_NO_SESSION");

  // The survivors still serve, and s1 is still WARM (a re-update of already
  // seen source dirties nothing).
  auto survivor = client.request(make_update_request("s1", edited_base()));
  ASSERT_TRUE(survivor.has_value());
  ASSERT_TRUE(survivor->find("ok")->as_bool());
  EXPECT_EQ(update_stat(*survivor, "dirty"), 0);
  ASSERT_TRUE(client.request(make_update_request("s3", kBase))->find("ok")->as_bool());
}

TEST(IncrementalSession, IdleSessionsExpire) {
  ServerOptions options;
  options.threads = 1;
  options.session_idle_ms = 50;
  SessionFixture fx("idle", options);
  ASSERT_TRUE(fx.start());
  Client client;
  ASSERT_TRUE(client.connect(fx.socket_path));

  ASSERT_TRUE(client.request(make_open_session_request("sleepy", {{"n", 1}}))
                  ->find("ok")
                  ->as_bool());
  ASSERT_TRUE(client.request(make_update_request("sleepy", kBase))->find("ok")->as_bool());

  // Expiry is enforced at access time, so no purge tick needs to run first.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  auto expired = client.request(make_update_request("sleepy", edited_base()));
  ASSERT_TRUE(expired.has_value());
  EXPECT_FALSE(expired->find("ok")->as_bool());
  EXPECT_STREQ(error_code_of(*expired), "E_NO_SESSION");
}

TEST(IncrementalSession, ConcurrentClientsOnDistinctSessionsDoNotInterfere) {
  ServerOptions options;
  options.threads = 1;
  SessionFixture fx("concurrent", options);
  ASSERT_TRUE(fx.start());

  constexpr int kClients = 4;
  std::vector<std::string> outputs(kClients);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client client;
      if (!client.connect(fx.socket_path)) return;
      const std::string session = "editor-" + std::to_string(i);
      auto opened = client.request(make_open_session_request(session, {{"n", 1}}));
      if (!opened || !opened->find("ok")->as_bool()) return;
      auto first = client.request(make_update_request(session, kBase));
      if (!first || !first->find("ok")->as_bool()) return;
      auto second =
          client.request(make_update_request(session, edited_base(), /*emit=*/true));
      if (!second || !second->find("ok")->as_bool()) return;
      if (update_stat(*second, "dirty") != 2) return;
      outputs[static_cast<size_t>(i)] =
          second->find("update")->find("output")->as_string();
    });
  }
  for (std::thread& t : threads) t.join();

  // Every session completed its sequence and all emitted outputs agree.
  for (int i = 0; i < kClients; ++i) {
    ASSERT_FALSE(outputs[static_cast<size_t>(i)].empty()) << "client " << i << " failed";
    EXPECT_EQ(outputs[static_cast<size_t>(i)], outputs[0]) << "client " << i;
  }
}

TEST(IncrementalSession, UpdateOutputMatchesOneShotTranslation) {
  ServerOptions options;
  options.threads = 1;
  SessionFixture fx("oneshot", options);
  ASSERT_TRUE(fx.start());
  Client client;
  ASSERT_TRUE(client.connect(fx.socket_path));
  ASSERT_TRUE(client.request(make_open_session_request("cmp", {{"n", 1}}))
                  ->find("ok")
                  ->as_bool());
  ASSERT_TRUE(client.request(make_update_request("cmp", kBase))->find("ok")->as_bool());
  auto update =
      client.request(make_update_request("cmp", edited_base(), /*emit=*/true));
  ASSERT_TRUE(update.has_value());
  ASSERT_TRUE(update->find("ok")->as_bool());

  transform::TranslateResult oneshot =
      transform::translate_source(edited_base(), {}, {{"n", 1}});
  ASSERT_TRUE(oneshot.ok) << oneshot.diagnostics;
  EXPECT_EQ(update->find("update")->find("output")->as_string(), oneshot.output)
      << "session update must emit byte-identical transformed source";
  EXPECT_EQ(update->find("update")->int_or("annotated", -1), oneshot.parallelized);
}

TEST(IncrementalSession, StatsReportTheIncrementalObject) {
  ServerOptions options;
  options.threads = 1;
  options.max_sessions = 2;
  SessionFixture fx("stats", options);
  ASSERT_TRUE(fx.start());
  Client client;
  ASSERT_TRUE(client.connect(fx.socket_path));

  ASSERT_TRUE(client.request(make_open_session_request("a", {{"n", 1}}))
                  ->find("ok")
                  ->as_bool());
  ASSERT_TRUE(client.request(make_update_request("a", kBase))->find("ok")->as_bool());
  ASSERT_TRUE(
      client.request(make_update_request("a", edited_base()))->find("ok")->as_bool());
  ASSERT_TRUE(client.request(make_close_session_request("a"))->find("ok")->as_bool());
  ASSERT_TRUE(client.request(make_open_session_request("b", {{"n", 1}}))
                  ->find("ok")
                  ->as_bool());

  auto stats = client.request(make_simple_request(Method::Stats));
  ASSERT_TRUE(stats.has_value());
  ASSERT_TRUE(stats->find("ok")->as_bool());
  const support::json::Value* incr = stats->find("incremental");
  ASSERT_NE(incr, nullptr) << "stats response must carry the incremental object";
  EXPECT_EQ(incr->int_or("updates", -1), 2);
  EXPECT_EQ(incr->int_or("sessions_open", -1), 1);
  EXPECT_EQ(incr->int_or("sessions_opened", -1), 2);
  EXPECT_EQ(incr->int_or("sessions_closed", -1), 1);
  // 3 functions per update: the first update dirties all 3, the second 2.
  EXPECT_EQ(incr->int_or("functions_total", -1), 6);
  EXPECT_EQ(incr->int_or("dirty", -1), 5);
  ASSERT_NE(incr->find("dirty_cone_ratio"), nullptr);
  EXPECT_NEAR(incr->find("dirty_cone_ratio")->as_double(), 5.0 / 6.0, 1e-9);
}

TEST(IncrementalSession, ThrowingUpdateAnswersInternalAndTheSessionSurvives) {
  if (!support::faultpoint::compiled_in()) GTEST_SKIP() << "faultpoints off";
  FaultGuard guard;
  ServerOptions options;
  options.threads = 1;
  SessionFixture fx("faulty", options);
  ASSERT_TRUE(fx.start());
  Client client;
  ASSERT_TRUE(client.connect(fx.socket_path));
  ASSERT_TRUE(client.request(make_open_session_request("robust", {{"n", 1}}))
                  ->find("ok")
                  ->as_bool());
  ASSERT_TRUE(
      client.request(make_update_request("robust", kBase))->find("ok")->as_bool());

  support::faultpoint::arm("server.session.update.pre_run", "throw");
  auto failed = client.request(make_update_request("robust", edited_base()));
  ASSERT_TRUE(failed.has_value());
  EXPECT_FALSE(failed->find("ok")->as_bool());
  EXPECT_STREQ(error_code_of(*failed), "E_INTERNAL");
  EXPECT_GE(fx.server.recovered(), 1u);
  EXPECT_GE(support::faultpoint::hit_count("server.session.update.pre_run"), 1u);

  // Disarmed, the SAME session serves the same edit incrementally — the
  // injected failure wounded one request, not the warm engine state.
  support::faultpoint::disarm_all();
  auto recovered = client.request(make_update_request("robust", edited_base()));
  ASSERT_TRUE(recovered.has_value());
  ASSERT_TRUE(recovered->find("ok")->as_bool());
  EXPECT_EQ(update_stat(*recovered, "dirty"), 2) << "scale + driver";
}

}  // namespace
}  // namespace sspar::server
