// Parallelizer tests: each of the paper's figures must get the right verdict
// with the right enabling property.
#include <gtest/gtest.h>

#include "core/body_interp.h"
#include "core/parallelizer.h"
#include "frontend/frontend.h"
#include "support/diagnostics.h"
#include "support/text.h"

namespace sspar::core {
namespace {

struct Pipeline {
  ast::ParseResult parsed;
  std::unique_ptr<Analyzer> analyzer;
  std::unique_ptr<Parallelizer> parallelizer;

  LoopVerdict verdict_of(const char* func, int loop_id) {
    const auto* f = parsed.program->find_function(func);
    EXPECT_NE(f, nullptr);
    for (const ast::For* loop : ast::collect_loops(f->body.get())) {
      if (loop->loop_id == loop_id) return parallelizer->analyze(*loop);
    }
    ADD_FAILURE() << "no loop with id " << loop_id;
    return {};
  }
};

Pipeline build(const char* source,
               const std::vector<std::pair<const char*, int64_t>>& assumptions = {},
               AnalyzerOptions options = {}) {
  Pipeline p;
  support::DiagnosticEngine diags;
  p.parsed = ast::parse_and_resolve(source, diags);
  EXPECT_TRUE(p.parsed.ok) << diags.dump();
  p.analyzer = std::make_unique<Analyzer>(*p.parsed.program, *p.parsed.symbols, options);
  for (const auto& [name, lo] : assumptions) {
    p.analyzer->assume_ge(p.parsed.program->find_global(name), lo);
  }
  p.analyzer->run();
  p.parallelizer = std::make_unique<Parallelizer>(*p.analyzer);
  return p;
}

std::string blockers(const LoopVerdict& v) { return support::join(v.blockers, "; "); }

// --------------------------------------------------------------------------
// Affine baseline cases
// --------------------------------------------------------------------------

TEST(Parallelizer, SimpleAffineLoopIsParallel) {
  auto p = build(R"(
    int n; int a[100]; int b[100];
    void f() {
      for (int i = 0; i < n; i++) {
        a[i] = b[i] + 1;
      }
    }
  )", {{"n", 1}});
  auto v = p.verdict_of("f", 0);
  EXPECT_TRUE(v.parallel) << blockers(v);
  EXPECT_EQ(v.reason, "affine disjoint accesses");
  EXPECT_FALSE(v.uses_subscripted_subscripts);
}

TEST(Parallelizer, LoopCarriedFlowDependenceBlocks) {
  auto p = build(R"(
    int n; int a[100];
    void f() {
      for (int i = 1; i < n; i++) {
        a[i] = a[i-1] + 1;
      }
    }
  )", {{"n", 2}});
  auto v = p.verdict_of("f", 0);
  EXPECT_FALSE(v.parallel);
}

TEST(Parallelizer, ScalarRecurrenceBlocks) {
  auto p = build(R"(
    int n; int s; int a[100];
    void f() {
      s = 0;
      for (int i = 0; i < n; i++) {
        s = s + a[i];
      }
    }
  )", {{"n", 1}});
  auto v = p.verdict_of("f", 0);
  EXPECT_FALSE(v.parallel);
  EXPECT_NE(blockers(v).find("loop-carried scalar"), std::string::npos);
}

TEST(Parallelizer, PrivatizableScalarIsFine) {
  auto p = build(R"(
    int n; int t; int a[100]; int b[100];
    void f() {
      for (int i = 0; i < n; i++) {
        t = b[i] * 2;
        a[i] = t + 1;
      }
    }
  )", {{"n", 1}});
  auto v = p.verdict_of("f", 0);
  EXPECT_TRUE(v.parallel) << blockers(v);
  ASSERT_EQ(v.privates.size(), 1u);
  EXPECT_EQ(v.privates[0]->name, "t");
}

TEST(Parallelizer, StridedWriteIsParallel) {
  auto p = build(R"(
    int n; int a[1000];
    void f() {
      for (int i = 0; i < n; i++) {
        a[3*i + 1] = i;
      }
    }
  )", {{"n", 1}});
  auto v = p.verdict_of("f", 0);
  EXPECT_TRUE(v.parallel) << blockers(v);
}

TEST(Parallelizer, OverlappingWindowsBlock) {
  auto p = build(R"(
    int n; int a[1000];
    void f() {
      for (int i = 0; i < n; i++) {
        a[2*i] = 1;
        a[2*i + 2] = 2;
      }
    }
  )", {{"n", 1}});
  auto v = p.verdict_of("f", 0);
  EXPECT_FALSE(v.parallel);  // a[2i+2] collides with a[2(i+1)]
}

// --------------------------------------------------------------------------
// Fig. 2 — injectivity of mt_to_id makes the loop parallel
// --------------------------------------------------------------------------

TEST(Parallelizer, Fig2InjectiveSubscript) {
  auto p = build(R"(
    int nelt;
    int mt_to_id[100];
    int id_to_mt[100];
    void setup() {
      for (int i = 0; i < nelt; i++) {
        mt_to_id[i] = nelt - 1 - i;
      }
    }
    void f() {
      for (int miel = 0; miel < nelt; miel++) {
        int iel = mt_to_id[miel];
        id_to_mt[iel] = miel;
      }
    }
  )", {{"nelt", 1}});
  // NOTE: both functions see the same globals; the analyzer runs per function
  // in program order, and facts survive at function end only per function.
  // Use a single function for the end-to-end check:
  auto p2 = build(R"(
    int nelt;
    int mt_to_id[100];
    int id_to_mt[100];
    void f() {
      for (int i = 0; i < nelt; i++) {
        mt_to_id[i] = nelt - 1 - i;
      }
      for (int miel = 0; miel < nelt; miel++) {
        int iel = mt_to_id[miel];
        id_to_mt[iel] = miel;
      }
    }
  )", {{"nelt", 1}});
  auto v = p2.verdict_of("f", 1);
  EXPECT_TRUE(v.parallel) << blockers(v);
  EXPECT_TRUE(v.uses_subscripted_subscripts);
}

// --------------------------------------------------------------------------
// Fig. 3 — monotonic rowstr ranges (CG)
// --------------------------------------------------------------------------

TEST(Parallelizer, Fig3MonotonicRanges) {
  auto p = build(R"(
    int nrows;
    int firstcol;
    int nzz[100];
    int rowstr[101];
    int colidx[10000];
    void f() {
      rowstr[0] = 0;
      for (int i = 1; i < nrows + 1; i++) {
        rowstr[i] = rowstr[i-1] + nzz[i-1];
      }
      for (int j = 0; j < nrows; j++) {
        for (int k = rowstr[j]; k < rowstr[j+1]; k++) {
          colidx[k] = colidx[k] - firstcol;
        }
      }
    }
  )", {{"nrows", 1}});
  // nzz values unknown => step could be negative; the loop is NOT provably
  // parallel without a non-negativity fact on nzz.
  auto v = p.verdict_of("f", 1);
  EXPECT_FALSE(v.parallel);

  // With the fill code for nzz present (as the paper argues, the information
  // is in the program), the proof goes through.
  auto p2 = build(R"(
    int nrows;
    int firstcol;
    int cols[100];
    int nzz[100];
    int rowstr[101];
    int colidx[10000];
    void f() {
      for (int i = 0; i < nrows; i++) {
        nzz[i] = cols[i] > 0 ? 1 : 0;
      }
      rowstr[0] = 0;
      for (int i = 1; i < nrows + 1; i++) {
        rowstr[i] = rowstr[i-1] + nzz[i-1];
      }
      for (int j = 0; j < nrows; j++) {
        for (int k = rowstr[j]; k < rowstr[j+1]; k++) {
          colidx[k] = colidx[k] - firstcol;
        }
      }
    }
  )", {{"nrows", 1}});
  auto v2 = p2.verdict_of("f", 2);
  EXPECT_TRUE(v2.parallel) << blockers(v2);
  EXPECT_NE(v2.reason.find("monotonic"), std::string::npos) << v2.reason;
  EXPECT_TRUE(v2.uses_subscripted_subscripts);
}

// --------------------------------------------------------------------------
// Fig. 5 — injective subset with guard (CSparse)
// --------------------------------------------------------------------------

TEST(Parallelizer, Fig5SubsetInjectiveGuarded) {
  auto p = build(R"(
    int m;
    int flag[100];
    int jmatch[100];
    int imatch[100];
    void f() {
      for (int i = 0; i < m; i++) {
        if (flag[i] > 0) {
          jmatch[i] = 2 * i;
        } else {
          jmatch[i] = -1;
        }
      }
      for (int i = 0; i < m; i++) {
        if (jmatch[i] >= 0) {
          imatch[jmatch[i]] = i;
        }
      }
    }
  )", {{"m", 1}});
  auto v = p.verdict_of("f", 1);
  EXPECT_TRUE(v.parallel) << blockers(v);
  EXPECT_NE(v.reason.find("subset-injective"), std::string::npos) << v.reason;

  // Without the guard the same loop must NOT be parallel.
  auto p2 = build(R"(
    int m;
    int flag[100];
    int jmatch[100];
    int imatch[100];
    void f() {
      for (int i = 0; i < m; i++) {
        if (flag[i] > 0) {
          jmatch[i] = 2 * i;
        } else {
          jmatch[i] = -1;
        }
      }
      for (int i = 0; i < m; i++) {
        imatch[jmatch[i]] = i;
      }
    }
  )", {{"m", 1}});
  auto v2 = p2.verdict_of("f", 1);
  EXPECT_FALSE(v2.parallel);
}

// --------------------------------------------------------------------------
// Fig. 6 — simultaneous monotonicity (r) and injectivity (p)
// --------------------------------------------------------------------------

TEST(Parallelizer, Fig6SimultaneousMonotonicAndInjective) {
  auto p = build(R"(
    int nb;
    int nsz[100];
    int r[101];
    int pvec[1000];
    int Blk[1000];
    void f() {
      for (int i = 0; i < nb + 1; i++) {
        nsz[i] = i < nb ? 2 : 0;
      }
      r[0] = 0;
      for (int i = 1; i < nb + 1; i++) {
        r[i] = r[i-1] + nsz[i-1];
      }
      for (int i = 0; i < 2 * nb; i++) {
        pvec[i] = 2 * nb - 1 - i;
      }
      for (int b = 0; b < nb; b++) {
        for (int k = r[b]; k < r[b+1]; k++) {
          Blk[pvec[k]] = b;
        }
      }
    }
  )", {{"nb", 1}});
  auto v = p.verdict_of("f", 3);
  EXPECT_TRUE(v.parallel) << blockers(v);
  EXPECT_TRUE(v.uses_subscripted_subscripts);
}

// --------------------------------------------------------------------------
// Fig. 7-style — strided windows over a strictly monotonic base
// --------------------------------------------------------------------------

TEST(Parallelizer, Fig7StridedWindows) {
  auto p = build(R"(
    int nref;
    int nelttemp;
    int front[100];
    int tree[10000];
    int ntemp;
    void f() {
      for (int i = 0; i < nref; i++) {
        front[i] = i + 1;
      }
      for (int index = 0; index < nref; index++) {
        int nelt = nelttemp + front[index] * 7;
        for (int i = 0; i < 7; i++) {
          tree[nelt + i] = ntemp + (i + 1) % 8;
        }
      }
    }
  )", {{"nref", 1}});
  auto v = p.verdict_of("f", 1);
  EXPECT_TRUE(v.parallel) << blockers(v);
  EXPECT_NE(v.reason.find("monotonic"), std::string::npos) << v.reason;
}

// --------------------------------------------------------------------------
// Fig. 8-style — branch-dependent disjoint windows
// --------------------------------------------------------------------------

TEST(Parallelizer, Fig8DisjointBranchWindows) {
  auto p = build(R"(
    int nelt;
    int ich[100];
    int front[100];
    int mt_to_id_old[100];
    int mt_to_id[10000];
    int ref_front_id[10000];
    void f() {
      for (int i = 0; i < nelt; i++) {
        front[i] = i + 1;
      }
      for (int i = 0; i < nelt; i++) {
        mt_to_id_old[i] = nelt - 1 - i;
      }
      for (int miel = 0; miel < nelt; miel++) {
        int iel = mt_to_id_old[miel];
        int ntemp;
        int mielnew;
        if (ich[iel] == 4) {
          ntemp = (front[miel] - 1) * 7;
          mielnew = miel + ntemp;
        } else {
          ntemp = front[miel] * 7;
          mielnew = miel + ntemp;
        }
        mt_to_id[mielnew] = iel;
        ref_front_id[iel] = nelt + ntemp;
      }
    }
  )", {{"nelt", 1}});
  auto v = p.verdict_of("f", 2);
  EXPECT_TRUE(v.parallel) << blockers(v);
  EXPECT_TRUE(v.uses_subscripted_subscripts);
}

// --------------------------------------------------------------------------
// Fig. 9 — the paper's running example, end to end
// --------------------------------------------------------------------------

const char* kFig9Full = R"(
  int ROWLEN;
  int COLUMNLEN;
  int ind;
  int index;
  int j1;
  int a[100][100];
  int column_number[10000];
  double value[10000];
  double vector[10000];
  double product_array[10000];
  int rowsize[100];
  int rowptr[101];
  void f() {
    for (int i = 0; i < ROWLEN; i++) {
      int count = 0;
      for (int j = 0; j < COLUMNLEN; j++) {
        if (a[i][j] != 0) {
          count++;
          column_number[index++] = j;
          value[ind++] = a[i][j];
        }
      }
      rowsize[i] = count;
    }
    rowptr[0] = 0;
    for (int i = 1; i < ROWLEN + 1; i++) {
      rowptr[i] = rowptr[i-1] + rowsize[i-1];
    }
    for (int i = 0; i < ROWLEN + 1; i++) {
      if (i == 0) {
        j1 = i;
      } else {
        j1 = rowptr[i-1];
      }
      for (int j = j1; j < rowptr[i]; j++) {
        product_array[j] = value[j] * vector[j];
      }
    }
  }
)";

TEST(Parallelizer, Fig9ProductLoopParallel) {
  auto p = build(kFig9Full, {{"ROWLEN", 1}, {"COLUMNLEN", 1}});
  // Loop ids: 0 = outer fill, 1 = inner fill, 2 = rowptr recurrence,
  // 3 = product outer, 4 = product inner.
  auto v = p.verdict_of("f", 3);
  EXPECT_TRUE(v.parallel) << blockers(v);
  EXPECT_NE(v.reason.find("monotonic"), std::string::npos) << v.reason;
  EXPECT_NE(v.reason.find("peeled"), std::string::npos) << v.reason;
  EXPECT_TRUE(v.uses_subscripted_subscripts);
  // j1 (and possibly j) must be privatized; j is declared inside the loop.
  bool has_j1 = false;
  for (const auto* d : v.privates) has_j1 = has_j1 || d->name == "j1";
  EXPECT_TRUE(has_j1);
}

TEST(Parallelizer, Fig9FillLoopNotParallel) {
  auto p = build(kFig9Full, {{"ROWLEN", 1}, {"COLUMNLEN", 1}});
  // The fill loop carries `index`/`ind` across iterations: not parallel.
  auto v = p.verdict_of("f", 0);
  EXPECT_FALSE(v.parallel);
  EXPECT_NE(blockers(v).find("loop-carried scalar"), std::string::npos) << blockers(v);
}

TEST(Parallelizer, Fig9RecurrenceLoopNotParallel) {
  auto p = build(kFig9Full, {{"ROWLEN", 1}, {"COLUMNLEN", 1}});
  auto v = p.verdict_of("f", 2);
  EXPECT_FALSE(v.parallel);  // rowptr[i] depends on rowptr[i-1]
}

// --------------------------------------------------------------------------
// Fig. 4 — monotonic difference of two arrays (CG)
// --------------------------------------------------------------------------

TEST(Parallelizer, Fig4MonotonicDifference) {
  // rowstr grows by [2:5] per row, nzloc by [0:2]: the difference
  // rowstr[j+1]-nzloc[j] advances at least as fast as rowstr[j]-nzloc[j-1].
  auto p = build(R"(
    int nrows;
    int w1[100];
    int w2[100];
    int rowstr[101];
    int nzloc[101];
    double a[10000];
    double v[10000];
    int colidx[10000];
    int iv[10000];
    void f() {
      rowstr[0] = 0;
      nzloc[0] = 0;
      for (int i = 1; i < nrows + 1; i++) {
        rowstr[i] = rowstr[i-1] + 3 + (w1[i] > 0 ? 2 : 0);
      }
      for (int i = 1; i < nrows + 1; i++) {
        nzloc[i] = nzloc[i-1] + (w2[i] > 0 ? 2 : 0);
      }
      for (int j = 0; j < nrows; j++) {
        int j1;
        if (j > 0) {
          j1 = rowstr[j] - nzloc[j-1];
        } else {
          j1 = 0;
        }
        int j2 = rowstr[j+1] - nzloc[j];
        int nza = rowstr[j];
        for (int k = j1; k < j2; k++) {
          a[k] = v[nza];
          colidx[k] = iv[nza];
          nza = nza + 1;
        }
      }
    }
  )", {{"nrows", 1}});
  auto v = p.verdict_of("f", 2);
  EXPECT_TRUE(v.parallel) << blockers(v);
  EXPECT_NE(v.reason.find("monotonic"), std::string::npos) << v.reason;
}

// --------------------------------------------------------------------------
// BodyInterp::force_branches vs branch-write pairs
// --------------------------------------------------------------------------

TEST(BodyInterpForceBranches, ForcedIfDropsItsPairButKeepsTheOthers) {
  // Two top-level if/else statements: the first is a peel candidate
  // (i == 0), the second a branch-write pair (same array, same subscript).
  auto p = build(R"(
    int n; int flag[1024]; int a[1024]; int b[4096];
    void f() {
      for (int i = 0; i < n; i++) {
        if (i == 0) {
          a[i] = 5;
        } else {
          a[i] = 7;
        }
        if (flag[i] > 0) {
          b[i] = 2 * i;
        } else {
          b[i] = -1;
        }
      }
    }
  )", {{"n", 1}});
  const auto* f = p.parsed.program->find_function("f");
  const ast::For* loop = ast::collect_loops(f->body.get())[0];
  const LoopSnapshot* snap = p.analyzer->snapshot(loop);
  ASSERT_NE(snap, nullptr);
  ASSERT_TRUE(snap->info.has_value());
  const auto* body = loop->body->as<ast::Compound>();
  const auto* peel_if = body->body[0]->as<ast::If>();
  ASSERT_NE(peel_if, nullptr);

  // Unforced: both if/else statements contribute a branch-write pair.
  BodyInterp unforced(*p.analyzer, *loop->body, snap->info->index,
                      snap->scalars_at_entry, snap->facts_at_entry);
  ASSERT_TRUE(unforced.run());
  ASSERT_EQ(unforced.branch_pairs.size(), 2u);
  EXPECT_EQ(unforced.branch_pairs[0].array->name, "a");
  EXPECT_EQ(unforced.branch_pairs[1].array->name, "b");

  // Forcing the peel candidate executes exactly one of its branches, so it
  // cannot pair any more — the guarded pair must survive untouched.
  std::map<const ast::If*, bool> forced{{peel_if, false}};
  BodyInterp general(*p.analyzer, *loop->body, snap->info->index,
                     snap->scalars_at_entry, snap->facts_at_entry);
  general.force_branches(&forced);
  ASSERT_TRUE(general.run());
  ASSERT_EQ(general.branch_pairs.size(), 1u);
  EXPECT_EQ(general.branch_pairs[0].array->name, "b");
  // The forced branch's write is unconditional now (single path taken).
  bool saw_a_write = false;
  for (const auto& w : general.writes) {
    if (w.array && w.array->name == "a") {
      saw_a_write = true;
      EXPECT_FALSE(w.conditional);
    }
  }
  EXPECT_TRUE(saw_a_write);
}

TEST(BodyInterpForceBranches, PeeledFirstIterationCoexistsWithGuardedPairs) {
  // One loop mixes the Fig. 9 peel idiom (if (i == 0)) with the Fig. 5
  // guarded branch-write pair; the peel must not stop the subset-injective
  // fact from reaching the scatter loop.
  auto p = build(R"(
    int n; int flag[2048]; int jm[2048]; int imatch[8192]; int first;
    void f() {
      for (int i = 0; i < n; i++) {
        flag[i] = (i % 2 == 0) ? 1 : 0;
      }
      for (int i = 0; i < n; i++) {
        if (i == 0) {
          first = 1;
        } else {
          first = 0;
        }
        if (flag[i] > 0) {
          jm[i] = 2 * i;
        } else {
          jm[i] = -1;
        }
      }
      for (int i = 0; i < n; i++) {
        if (jm[i] >= 0) {
          imatch[jm[i]] = i;
        }
      }
    }
  )", {{"n", 1}});
  auto producer = p.verdict_of("f", 1);
  EXPECT_TRUE(producer.parallel) << blockers(producer);
  EXPECT_TRUE(producer.peeled);
  ASSERT_EQ(producer.privates.size(), 1u);
  EXPECT_EQ(producer.privates[0]->name, "first");
  auto scatter = p.verdict_of("f", 2);
  EXPECT_TRUE(scatter.parallel) << blockers(scatter);
  EXPECT_EQ(scatter.property, EnablingProperty::SubsetInjective);
}

// --------------------------------------------------------------------------
// Chain injectivity (recurrence layer)
// --------------------------------------------------------------------------

constexpr const char* kSymbolicStrideScatter = R"(
  int n; int m; int idx[4096]; double x[4096]; double y[4096];
  void f() {
    for (int i = 0; i < n; i++) {
      idx[i] = m * i + 2;
    }
    for (int i = 0; i < n; i++) {
      y[idx[i]] = x[i] + 1.0;
    }
  }
)";

TEST(Parallelizer, SymbolicStrideFillProvesChainInjectivity) {
  auto p = build(kSymbolicStrideScatter, {{"n", 1}, {"m", 1}});
  auto v = p.verdict_of("f", 1);
  EXPECT_TRUE(v.parallel) << blockers(v);
  EXPECT_EQ(v.property, EnablingProperty::AffineInjective);
  EXPECT_EQ(v.reason, "affine-injective index array (provably nonzero chain stride)");
  EXPECT_TRUE(v.uses_subscripted_subscripts);
}

TEST(Parallelizer, ChainInjectivityIsLoadBearing) {
  // The symbolic stride m*i is invisible to the integer-coefficient affine
  // rule, so with the chain rule disabled the scatter must not be statically
  // parallel — the entry parallelizes only via the new proof.
  AnalyzerOptions options;
  options.enable_chain_injectivity_rule = false;
  auto p = build(kSymbolicStrideScatter, {{"n", 1}, {"m", 1}}, options);
  auto v = p.verdict_of("f", 1);
  EXPECT_FALSE(v.parallel);
  // It stays a hybrid candidate: injectivity of idx is the single unproven
  // property, discharged at runtime instead.
  EXPECT_TRUE(v.hybrid);
  EXPECT_EQ(v.hybrid_property, EnablingProperty::Injective);
}

TEST(Parallelizer, ChainInjectivityUnprovableStrideSignStaysSerial) {
  // Without the m >= 1 assumption the stride could be zero, so the chain
  // rule must not fire (idx could be constant and the scatter colliding).
  auto p = build(kSymbolicStrideScatter, {{"n", 1}});
  auto v = p.verdict_of("f", 1);
  EXPECT_FALSE(v.parallel);
}

TEST(Parallelizer, DecreasingSymbolicStrideChainInjectivity) {
  auto p = build(R"(
    int n; int m; int q; int idx[4096]; double x[4096]; double y[4096];
    void f() {
      for (int i = 0; i < n; i++) {
        idx[i] = q - m * i;
      }
      for (int i = 0; i < n; i++) {
        y[idx[i]] = x[i] * 2.0;
      }
    }
  )", {{"n", 1}, {"m", 1}, {"q", 200}});
  auto v = p.verdict_of("f", 1);
  EXPECT_TRUE(v.parallel) << blockers(v);
  EXPECT_EQ(v.property, EnablingProperty::AffineInjective);
}

TEST(Parallelizer, ScheduleHintStaticForConstantStrideChains) {
  auto p = build(R"(
    int n; int a[100]; int b[100];
    void f() {
      for (int i = 0; i < n; i++) {
        a[i] = b[i] + 1;
      }
    }
  )", {{"n", 1}});
  auto v = p.verdict_of("f", 0);
  ASSERT_TRUE(v.parallel) << blockers(v);
  EXPECT_EQ(v.schedule, LoopVerdict::ScheduleHint::Static);
  EXPECT_FALSE(v.schedule_reason.empty());
}

TEST(Parallelizer, ScheduleHintDynamicForIndexArrayDependentRanges) {
  // CSR-style traversal: per-iteration work is rowstr[i+1] - rowstr[i],
  // which varies with index-array contents.
  auto p = build(R"(
    int n; int rowstr[100]; int colidx[1000]; double a[1000];
    double x[100]; double y[100];
    void f() {
      for (int i = 0; i < n; i++) {
        double sum = 0.0;
        for (int k = rowstr[i]; k < rowstr[i+1]; k++) {
          sum = sum + a[k] * x[colidx[k]];
        }
        y[i] = sum;
      }
    }
  )", {{"n", 1}});
  auto v = p.verdict_of("f", 0);
  ASSERT_TRUE(v.parallel) << blockers(v);
  EXPECT_EQ(v.schedule, LoopVerdict::ScheduleHint::Dynamic);
}

}  // namespace
}  // namespace sspar::core
