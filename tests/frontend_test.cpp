#include <gtest/gtest.h>

#include "frontend/frontend.h"

namespace sspar::ast {
namespace {

using support::DiagnosticEngine;

ParseResult parse_ok(std::string_view source) {
  DiagnosticEngine diags;
  ParseResult result = parse_and_resolve(source, diags);
  EXPECT_TRUE(result.ok) << diags.dump();
  return result;
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(Lexer, TokenizesOperators) {
  DiagnosticEngine diags;
  auto toks = Lexer::tokenize("+ += ++ - -= -- <= < >= > == = != ! && ||", diags);
  ASSERT_FALSE(diags.has_errors());
  std::vector<TokenKind> kinds;
  for (const auto& t : toks) kinds.push_back(t.kind);
  std::vector<TokenKind> expected = {
      TokenKind::Plus,       TokenKind::PlusAssign, TokenKind::PlusPlus,
      TokenKind::Minus,      TokenKind::MinusAssign, TokenKind::MinusMinus,
      TokenKind::Le,         TokenKind::Lt,          TokenKind::Ge,
      TokenKind::Gt,         TokenKind::EqEq,        TokenKind::Assign,
      TokenKind::NotEq,      TokenKind::Not,         TokenKind::AmpAmp,
      TokenKind::PipePipe,   TokenKind::End};
  EXPECT_EQ(kinds, expected);
}

TEST(Lexer, NumbersAndIdentifiers) {
  DiagnosticEngine diags;
  auto toks = Lexer::tokenize("42 3.5 1e3 x_1 for", diags);
  ASSERT_FALSE(diags.has_errors());
  EXPECT_EQ(toks[0].kind, TokenKind::IntLiteral);
  EXPECT_EQ(toks[0].int_value, 42);
  EXPECT_EQ(toks[1].kind, TokenKind::FloatLiteral);
  EXPECT_DOUBLE_EQ(toks[1].float_value, 3.5);
  EXPECT_EQ(toks[2].kind, TokenKind::FloatLiteral);
  EXPECT_DOUBLE_EQ(toks[2].float_value, 1000.0);
  EXPECT_EQ(toks[3].kind, TokenKind::Identifier);
  EXPECT_EQ(toks[3].text, "x_1");
  EXPECT_EQ(toks[4].kind, TokenKind::KwFor);
}

TEST(Lexer, SkipsCommentsAndPragmas) {
  DiagnosticEngine diags;
  auto toks = Lexer::tokenize(
      "// line comment\n/* block\ncomment */ #pragma omp parallel\nx", diags);
  ASSERT_FALSE(diags.has_errors());
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].text, "x");
}

TEST(Lexer, TracksLineAndColumn) {
  DiagnosticEngine diags;
  auto toks = Lexer::tokenize("a\n  b", diags);
  EXPECT_EQ(toks[0].location.line, 1u);
  EXPECT_EQ(toks[0].location.column, 1u);
  EXPECT_EQ(toks[1].location.line, 2u);
  EXPECT_EQ(toks[1].location.column, 3u);
}

TEST(Lexer, ReportsUnexpectedCharacter) {
  DiagnosticEngine diags;
  Lexer::tokenize("a @ b", diags);
  EXPECT_TRUE(diags.has_errors());
}

// ---------------------------------------------------------------------------
// Parser structure
// ---------------------------------------------------------------------------

TEST(Parser, GlobalAndFunction) {
  auto r = parse_ok(R"(
    int n;
    int a[100];
    double m[10][20];
    void f(int x, int b[]) {
      x = b[0];
    }
  )");
  EXPECT_EQ(r.program->globals.size(), 3u);
  ASSERT_EQ(r.program->functions.size(), 1u);
  const auto* f = r.program->find_function("f");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->params.size(), 2u);
  EXPECT_TRUE(f->params[1]->is_array());
  EXPECT_EQ(r.program->find_global("m")->dims.size(), 2u);
  EXPECT_EQ(r.program->find_global("m")->elem_type, TypeKind::Double);
}

TEST(Parser, ForLoopCanonical) {
  auto r = parse_ok(R"(
    void f(int n, int a[]) {
      for (int i = 0; i < n; i++) {
        a[i] = i;
      }
    }
  )");
  auto loops = collect_loops(r.program->find_function("f")->body.get());
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0]->loop_id, 0);
  EXPECT_NE(loops[0]->cond, nullptr);
  EXPECT_NE(loops[0]->step, nullptr);
}

TEST(Parser, NestedLoopsGetPreOrderIds) {
  auto r = parse_ok(R"(
    void f(int n, int a[]) {
      for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
          a[j] = j;
        }
      }
      for (int k = 0; k < n; k++) {
        a[k] = k;
      }
    }
  )");
  auto loops = collect_loops(r.program->find_function("f")->body.get());
  ASSERT_EQ(loops.size(), 3u);
  EXPECT_EQ(loops[0]->loop_id, 0);
  EXPECT_EQ(loops[1]->loop_id, 1);
  EXPECT_EQ(loops[2]->loop_id, 2);
}

TEST(Parser, PrecedenceAndAssociativity) {
  auto r = parse_ok("void f(int a, int b, int c) { a = a + b * c - 1; }");
  const auto* f = r.program->find_function("f");
  const auto* stmt = f->body->body[0]->as<ExprStmt>();
  EXPECT_EQ(print_expr(*stmt->expr), "a = a + b * c - 1");
}

TEST(Parser, TernaryAndLogical) {
  auto r = parse_ok("void f(int a, int b) { a = a > 0 && b < 3 ? a : b; }");
  const auto* stmt = r.program->find_function("f")->body->body[0]->as<ExprStmt>();
  EXPECT_EQ(print_expr(*stmt->expr), "a = a > 0 && b < 3 ? a : b");
}

TEST(Parser, PostfixChains) {
  auto r = parse_ok("void f(int x, int a[], int b[]) { a[b[x++]]--; }");
  const auto* stmt = r.program->find_function("f")->body->body[0]->as<ExprStmt>();
  EXPECT_EQ(print_expr(*stmt->expr), "a[b[x++]]--");
}

TEST(Parser, MultiDimSubscripts) {
  auto r = parse_ok("void f(int m[10][20], int i, int j) { m[i][j] = 1; }");
  const auto* stmt = r.program->find_function("f")->body->body[0]->as<ExprStmt>();
  const auto* assign = stmt->expr->as<Assign>();
  const auto* ar = assign->target->as<ArrayRef>();
  ASSERT_NE(ar, nullptr);
  EXPECT_EQ(ar->root()->name, "m");
  EXPECT_EQ(ar->subscripts().size(), 2u);
}

TEST(Parser, CallsParse) {
  auto r = parse_ok("void f(int x) { g(x, x + 1); }");
  const auto* stmt = r.program->find_function("f")->body->body[0]->as<ExprStmt>();
  const auto* call = stmt->expr->as<Call>();
  ASSERT_NE(call, nullptr);
  EXPECT_EQ(call->callee, "g");
  EXPECT_EQ(call->args.size(), 2u);
}

TEST(Parser, WhileBreakContinueReturn) {
  auto r = parse_ok(R"(
    int f(int n) {
      while (n > 0) {
        n--;
        if (n == 5) break;
        if (n == 3) continue;
      }
      return n;
    }
  )");
  EXPECT_EQ(r.program->functions.size(), 1u);
}

TEST(Parser, CommaDeclarations) {
  auto r = parse_ok("void f() { int a = 1, b, c = 2; b = a + c; }");
  const auto* ds = r.program->find_function("f")->body->body[0]->as<DeclStmt>();
  ASSERT_NE(ds, nullptr);
  EXPECT_EQ(ds->decls.size(), 3u);
}

TEST(Parser, ErrorRecovery) {
  DiagnosticEngine diags;
  auto result = parse_and_resolve("void f() { int x = ; x = 1; }", diags);
  EXPECT_TRUE(diags.has_errors());
  EXPECT_FALSE(result.ok);
}

// ---------------------------------------------------------------------------
// Sema
// ---------------------------------------------------------------------------

TEST(Sema, BindsReferencesToDecls) {
  auto r = parse_ok("int g; void f(int p) { p = g; }");
  const auto* stmt = r.program->find_function("f")->body->body[0]->as<ExprStmt>();
  const auto* assign = stmt->expr->as<Assign>();
  EXPECT_EQ(assign->target->as<VarRef>()->decl->name, "p");
  EXPECT_EQ(assign->value->as<VarRef>()->decl, r.program->find_global("g"));
}

TEST(Sema, InnerScopeShadows) {
  auto r = parse_ok(R"(
    int x;
    void f() {
      int x;
      x = 1;
    }
  )");
  const auto* stmt = r.program->find_function("f")->body->body[1]->as<ExprStmt>();
  const auto* assign = stmt->expr->as<Assign>();
  const auto* bound = assign->target->as<VarRef>()->decl;
  EXPECT_NE(bound, r.program->find_global("x"));
  // Distinct declarations get distinct symbols even with the same name.
  EXPECT_NE(bound->symbol, r.program->find_global("x")->symbol);
}

TEST(Sema, UndeclaredIdentifierIsError) {
  DiagnosticEngine diags;
  auto result = parse_and_resolve("void f() { y = 1; }", diags);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(diags.dump().find("undeclared"), std::string::npos);
}

TEST(Sema, RedeclarationInSameScopeIsError) {
  DiagnosticEngine diags;
  auto result = parse_and_resolve("void f() { int x; int x; }", diags);
  EXPECT_FALSE(result.ok);
}

TEST(Sema, SubscriptOfScalarIsError) {
  DiagnosticEngine diags;
  auto result = parse_and_resolve("void f(int x) { x[0] = 1; }", diags);
  EXPECT_FALSE(result.ok);
}

TEST(Sema, TooManySubscriptsIsError) {
  DiagnosticEngine diags;
  auto result = parse_and_resolve("void f(int a[10]) { a[0][1] = 1; }", diags);
  EXPECT_FALSE(result.ok);
}

TEST(Sema, ForInitDeclScopesOverLoopOnly) {
  DiagnosticEngine diags;
  auto result = parse_and_resolve(R"(
    void f(int a[]) {
      for (int i = 0; i < 10; i++) { a[i] = i; }
      a[i] = 0;
    }
  )", diags);
  EXPECT_FALSE(result.ok);  // i out of scope after the loop
}

// ---------------------------------------------------------------------------
// Printer (round-trip)
// ---------------------------------------------------------------------------

TEST(Printer, RoundTripPreservesSemantics) {
  const char* source = R"(
    int rowptr[101];
    int rowsize[100];
    void fill(int ROWLEN) {
      rowptr[0] = 0;
      for (int i = 1; i < ROWLEN + 1; i++) {
        rowptr[i] = rowptr[i - 1] + rowsize[i - 1];
      }
    }
  )";
  auto r1 = parse_ok(source);
  std::string printed = print_program(*r1.program);
  // The printed source must re-parse cleanly and re-print identically
  // (fixed-point after one round).
  auto r2 = parse_ok(printed);
  EXPECT_EQ(print_program(*r2.program), printed);
}

TEST(Printer, EmitsAnnotationsAboveLoop) {
  auto r = parse_ok("void f(int n, int a[]) { for (int i = 0; i < n; i++) { a[i] = i; } }");
  auto loops = collect_loops(r.program->find_function("f")->body.get());
  const_cast<For*>(loops[0])->annotations.push_back("#pragma omp parallel for");
  std::string printed = print_program(*r.program);
  size_t pragma_pos = printed.find("#pragma omp parallel for");
  size_t for_pos = printed.find("for (");
  ASSERT_NE(pragma_pos, std::string::npos);
  EXPECT_LT(pragma_pos, for_pos);
}

TEST(Printer, ParenthesizesByPrecedence) {
  auto r = parse_ok("void f(int a, int b, int c) { a = (a + b) * c; a = a - (b - c); }");
  const auto* f = r.program->find_function("f");
  EXPECT_EQ(print_expr(*f->body->body[0]->as<ExprStmt>()->expr), "a = (a + b) * c");
  EXPECT_EQ(print_expr(*f->body->body[1]->as<ExprStmt>()->expr), "a = a - (b - c)");
}

// All of the paper's figure codes must parse; exact analysis semantics are
// covered by corpus integration tests.
class PaperFigureParse : public ::testing::TestWithParam<const char*> {};

TEST_P(PaperFigureParse, Parses) {
  parse_ok(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Figures, PaperFigureParse,
    ::testing::Values(
        // Fig 2 core loop
        R"(int nelt; int mt_to_id[100]; int id_to_mt[100];
           void f() {
             for (int miel = 0; miel < nelt; miel++) {
               int iel = mt_to_id[miel];
               id_to_mt[iel] = miel;
             }
           })",
        // Fig 3 core loop
        R"(int lastrow; int firstrow; int firstcol; int rowstr[101]; int colidx[1000];
           void f() {
             for (int j = 0; j < lastrow - firstrow + 1; j++) {
               for (int k = rowstr[j]; k < rowstr[j+1]; k++) {
                 colidx[k] = colidx[k] - firstcol;
               }
             }
           })",
        // Fig 5 core loop
        R"(int m; int jmatch[100]; int imatch[100];
           void f() {
             for (int i = 0; i < m; i++) {
               if (jmatch[i] >= 0) {
                 imatch[jmatch[i]] = i;
               }
             }
           })",
        // Fig 9 lines 1-15 (index array creation)
        R"(int ROWLEN; int COLUMNLEN; int ind; int index;
           int a[100][100]; int column_number[10000]; double value[10000];
           int rowsize[100]; int rowptr[101];
           void f() {
             for (int i = 0; i < ROWLEN; i++) {
               int count = 0;
               for (int j = 0; j < COLUMNLEN; j++) {
                 if (a[i][j] != 0) {
                   count++;
                   column_number[index++] = j;
                   value[ind++] = a[i][j];
                 }
               }
               rowsize[i] = count;
             }
             rowptr[0] = 0;
             for (int i = 1; i < ROWLEN + 1; i++) {
               rowptr[i] = rowptr[i-1] + rowsize[i-1];
             }
           })"));

}  // namespace
}  // namespace sspar::ast
