// Direct unit tests for the fact database (sections, kills, queries) and the
// canonical-loop recognizer.
#include <gtest/gtest.h>

#include "core/facts.h"
#include "core/loop_info.h"
#include "frontend/frontend.h"
#include "support/diagnostics.h"

namespace sspar::core {
namespace {

class FactDbTest : public ::testing::Test {
 protected:
  sym::SymbolTable syms;
  sym::SymbolId arr = syms.intern("arr");
  sym::SymbolId n = syms.intern("n");
  sym::AssumptionContext ctx;

  void SetUp() override { ctx.assume_ge(n, 10); }

  sym::ExprPtr c(int64_t v) { return sym::make_const(v); }
  sym::ExprPtr N() { return sym::make_sym(n); }
};

TEST_F(FactDbTest, ValueFactCoverage) {
  FactDB db;
  db.add_value(arr, ValueFact{c(0), sym::sub(N(), c(1)), sym::Range::of_consts(0, 9)});
  EXPECT_TRUE(db.elem_value(arr, c(0), ctx).has_value());
  // Index n is outside [0 : n-1].
  EXPECT_FALSE(db.elem_value(arr, N(), ctx).has_value());
  // Unknown array.
  EXPECT_FALSE(db.elem_value(syms.intern("other"), c(0), ctx).has_value());
}

TEST_F(FactDbTest, StepFactScalesWithDistance) {
  FactDB db;
  db.add_step(arr, StepFact{c(1), N(), sym::Range::of_consts(2, 5)});
  auto diff = db.elem_diff(arr, c(3), c(1), ctx);
  ASSERT_TRUE(diff.has_value());
  EXPECT_EQ(sym::to_string(diff->lo(), syms), "4");   // 2 * 2
  EXPECT_EQ(sym::to_string(diff->hi(), syms), "10");  // 2 * 5
  // Reverse order negates.
  auto rev = db.elem_diff(arr, c(1), c(3), ctx);
  ASSERT_TRUE(rev.has_value());
  EXPECT_EQ(sym::to_string(rev->lo(), syms), "-10");
  // Zero distance.
  auto zero = db.elem_diff(arr, c(2), c(2), ctx);
  ASSERT_TRUE(zero.has_value());
  EXPECT_TRUE(zero->is_exact());
}

TEST_F(FactDbTest, StepFactRejectsUncoveredLinks) {
  FactDB db;
  db.add_step(arr, StepFact{c(1), c(5), sym::Range::of_consts(1, 1)});
  // Links (5, 6] are outside the fact.
  EXPECT_FALSE(db.elem_diff(arr, c(6), c(4), ctx).has_value());
  // Symbolic distance is rejected.
  EXPECT_FALSE(db.elem_diff(arr, N(), c(0), ctx).has_value());
}

TEST_F(FactDbTest, AnchoredValueDerivation) {
  FactDB db;
  // arr[0] = 0 and non-negative steps: arr[k] >= 0 for covered k.
  db.add_value(arr, ValueFact{c(0), c(0), sym::Range::of_consts(0, 0)});
  db.add_step(arr, StepFact{c(1), N(), sym::Range::of_consts(0, 3)});
  sym::AssumptionContext q = ctx;
  sym::SymbolId b = syms.intern("b");
  q.assume(b, sym::Range::of(c(0), sym::sub(N(), c(1))));
  auto value = db.elem_value(arr, sym::make_sym(b), q);
  ASSERT_TRUE(value.has_value());
  ASSERT_TRUE(value->lo_bounded());
  EXPECT_EQ(sym::to_string(value->lo(), syms), "0");
  EXPECT_EQ(sym::to_string(value->hi(), syms), "3*b");
}

TEST_F(FactDbTest, KillOverlappingDropsOnlyIntersecting) {
  FactDB db;
  db.add_value(arr, ValueFact{c(0), c(9), sym::Range::of_consts(1, 1)});
  db.add_value(arr, ValueFact{c(20), c(29), sym::Range::of_consts(2, 2)});
  db.kill_overlapping(arr, c(5), c(12), ctx);
  EXPECT_FALSE(db.elem_value(arr, c(0), ctx).has_value());   // overlapped
  EXPECT_TRUE(db.elem_value(arr, c(25), ctx).has_value());   // disjoint
}

TEST_F(FactDbTest, KillWithUnboundedSectionDropsAll) {
  FactDB db;
  db.add_value(arr, ValueFact{c(0), c(9), sym::Range::of_consts(1, 1)});
  db.kill_overlapping(arr, nullptr, nullptr, ctx);
  EXPECT_FALSE(db.elem_value(arr, c(0), ctx).has_value());
}

TEST_F(FactDbTest, KillSparesFactsProvablyDisjointUnderSymbolicBounds) {
  FactDB db;
  // Fact about [0 : n-1]; write to [n : n+9]. Disjointness needs the symbol
  // bound n >= 10 from the context — a purely constant comparison cannot
  // decide it.
  db.add_value(arr, ValueFact{c(0), sym::sub(N(), c(1)), sym::Range::of_consts(1, 1)});
  db.add_injective(arr, InjectiveFact{c(0), sym::sub(N(), c(1)), std::nullopt});
  db.kill_overlapping(arr, N(), sym::add(N(), c(9)), ctx);
  EXPECT_TRUE(db.elem_value(arr, c(0), ctx).has_value());
  EXPECT_TRUE(db.injective_over(arr, c(0), sym::sub(N(), c(1)), ctx));

  // The same write kills a fact whose section reaches index n.
  db.add_value(arr, ValueFact{c(0), N(), sym::Range::of_consts(2, 2)});
  db.kill_overlapping(arr, N(), sym::add(N(), c(9)), ctx);
  EXPECT_TRUE(db.elem_value(arr, c(0), ctx).has_value());  // [0:n-1] fact survives
  EXPECT_FALSE(db.elem_value(arr, N(), ctx).has_value());  // [0:n] fact is gone
}

TEST_F(FactDbTest, HalfUnboundedWriteKillsOnlyFactsItMayReach) {
  FactDB db;
  // Fact entirely below the write's lower bound: still provably disjoint.
  db.add_value(arr, ValueFact{c(0), c(9), sym::Range::of_consts(1, 1)});
  // Fact whose section reaches into [100 : ∞): must die.
  db.add_value(arr, ValueFact{c(50), c(200), sym::Range::of_consts(2, 2)});
  db.kill_overlapping(arr, c(100), nullptr, ctx);
  EXPECT_TRUE(db.elem_value(arr, c(0), ctx).has_value());
  EXPECT_FALSE(db.elem_value(arr, c(150), ctx).has_value());
  EXPECT_FALSE(db.elem_value(arr, c(60), ctx).has_value());  // whole fact gone
}

TEST_F(FactDbTest, FullyUnboundedWriteDropsEveryFactKind) {
  FactDB db;
  db.add_value(arr, ValueFact{c(0), c(9), sym::Range::of_consts(1, 1)});
  db.add_step(arr, StepFact{c(1), c(9), sym::Range::of_consts(1, 1)});
  db.add_injective(arr, InjectiveFact{c(0), c(9), std::nullopt});
  db.add_identity(arr, IdentityFact{c(0), c(9)});
  // Both bounds unknown: no disjointness proof can succeed for any fact.
  db.kill_overlapping(arr, nullptr, nullptr, ctx);
  EXPECT_FALSE(db.elem_value(arr, c(0), ctx).has_value());
  EXPECT_FALSE(db.elem_diff(arr, c(2), c(1), ctx).has_value());
  EXPECT_FALSE(db.injective_over(arr, c(0), c(9), ctx));
  EXPECT_FALSE(db.identity_over(arr, c(0), c(9), ctx));
}

TEST_F(FactDbTest, WithFactsContextObservesPostKillState) {
  FactDB db;
  db.add_value(arr, ValueFact{c(0), c(9), sym::Range::of_consts(0, 5)});
  db.add_step(arr, StepFact{c(1), c(9), sym::Range::of_consts(1, 1)});

  // Before the kill, the derived context answers element queries.
  sym::AssumptionContext with = db.with_facts(ctx);
  ASSERT_TRUE(with.elem_value());
  ASSERT_TRUE(with.elem_diff());
  EXPECT_TRUE(with.elem_value()(arr, c(3)).has_value());
  EXPECT_TRUE(with.elem_diff()(arr, c(5), c(2)).has_value());

  // Kill overlapping facts. The context references the FactDB (not a copy),
  // so the same context object must stop answering.
  db.kill_overlapping(arr, c(3), c(3), ctx);
  EXPECT_FALSE(with.elem_value()(arr, c(3)).has_value());
  EXPECT_FALSE(with.elem_diff()(arr, c(5), c(2)).has_value());

  // A context rebuilt after the kill agrees.
  sym::AssumptionContext rebuilt = db.with_facts(ctx);
  EXPECT_FALSE(rebuilt.elem_value()(arr, c(3)).has_value());
}

TEST_F(FactDbTest, StepFactKilledByWriteToBaseElement) {
  FactDB db;
  // Links [1:9] read element 0; writing element 0 must kill the fact.
  db.add_step(arr, StepFact{c(1), c(9), sym::Range::of_consts(1, 1)});
  db.kill_overlapping(arr, c(0), c(0), ctx);
  EXPECT_FALSE(db.elem_diff(arr, c(2), c(1), ctx).has_value());
}

TEST_F(FactDbTest, IdentityImpliesEverything) {
  FactDB db;
  db.add_identity(arr, IdentityFact{c(0), sym::sub(N(), c(1))});
  EXPECT_TRUE(db.identity_over(arr, c(0), sym::sub(N(), c(1)), ctx));
  EXPECT_TRUE(db.injective_over(arr, c(0), sym::sub(N(), c(1)), ctx));
  auto value = db.elem_value(arr, c(3), ctx);
  ASSERT_TRUE(value.has_value());
  EXPECT_TRUE(sym::equal(value->exact_value(), c(3)));
  auto diff = db.elem_diff(arr, c(5), c(2), ctx);
  ASSERT_TRUE(diff.has_value());
  EXPECT_EQ(sym::to_string(diff->lo(), syms), "3");
}

TEST_F(FactDbTest, StrictStepImpliesInjectivity) {
  FactDB db;
  db.add_step(arr, StepFact{c(1), c(9), sym::Range::of_consts(1, 4)});
  EXPECT_TRUE(db.injective_over(arr, c(0), c(9), ctx));
  FactDB loose;
  loose.add_step(arr, StepFact{c(1), c(9), sym::Range::of_consts(0, 4)});
  EXPECT_FALSE(loose.injective_over(arr, c(0), c(9), ctx));
  FactDB dec;
  dec.add_step(arr, StepFact{c(1), c(9), sym::Range::of_consts(-3, -1)});
  EXPECT_TRUE(dec.injective_over(arr, c(0), c(9), ctx));
}

TEST_F(FactDbTest, SubsetInjectivityReportsThreshold) {
  FactDB db;
  db.add_injective(arr, InjectiveFact{c(0), c(9), 0});
  std::optional<int64_t> min_value;
  EXPECT_TRUE(db.injective_over(arr, c(0), c(9), ctx, &min_value));
  ASSERT_TRUE(min_value.has_value());
  EXPECT_EQ(*min_value, 0);
}

TEST_F(FactDbTest, ToStringListsFacts) {
  FactDB db;
  db.add_value(arr, ValueFact{c(0), c(9), sym::Range::of_consts(0, 5)});
  db.add_step(arr, StepFact{c(1), c(9), sym::Range::of_consts(0, 2)});
  std::string dump = db.to_string(syms);
  EXPECT_NE(dump.find("arr"), std::string::npos);
  EXPECT_NE(dump.find("step"), std::string::npos);
}

// --------------------------------------------------------------------------
// Canonical loop recognition
// --------------------------------------------------------------------------

const ast::For* first_loop(const ast::ParseResult& r) {
  return ast::collect_loops(r.program->functions[0]->body.get())[0];
}

ast::ParseResult parse(const char* src) {
  support::DiagnosticEngine diags;
  auto result = ast::parse_and_resolve(src, diags);
  EXPECT_TRUE(result.ok) << diags.dump();
  return result;
}

TEST(LoopInfo, RecognizesCanonicalForms) {
  for (const char* step : {"i++", "++i", "i += 1", "i = i + 1", "i = 1 + i"}) {
    std::string src = std::string("void f(int n, int a[]) { for (int i = 0; i < n; ") + step +
                      ") { a[i] = i; } }";
    auto r = parse(src.c_str());
    auto info = recognize_loop(*first_loop(r));
    ASSERT_TRUE(info.has_value()) << step;
    EXPECT_EQ(info->index->name, "i");
    EXPECT_FALSE(info->ub_inclusive);
  }
}

TEST(LoopInfo, InclusiveUpperBound) {
  auto r = parse("void f(int n, int a[]) { for (int i = 0; i <= n; i++) { a[i] = i; } }");
  auto info = recognize_loop(*first_loop(r));
  ASSERT_TRUE(info.has_value());
  EXPECT_TRUE(info->ub_inclusive);
}

TEST(LoopInfo, AssignmentInitOutsideDecl) {
  auto r = parse("void f(int n, int a[]) { int i; for (i = 2; i < n; i++) { a[i] = i; } }");
  EXPECT_TRUE(recognize_loop(*first_loop(r)).has_value());
}

TEST(LoopInfo, RejectsNonCanonical) {
  for (const char* loop : {
           "for (int i = 0; i < n; i += 2) { a[i] = i; }",
           "for (int i = n; i > 0; i--) { a[i] = i; }",
           "for (int i = 0; n > i; i++) { a[i] = i; }",
           "for (int i = 0; i != n; i++) { a[i] = i; }",
           "for (int i = 0; ; i++) { a[i] = i; break; }",
       }) {
    std::string src = std::string("void f(int n, int a[]) { ") + loop + " }";
    auto r = parse(src.c_str());
    EXPECT_FALSE(recognize_loop(*first_loop(r)).has_value()) << loop;
  }
}

TEST(LoopInfo, WrittenCollectorsFindAllTargets) {
  auto r = parse(R"(
    void f(int n, int s, int a[], int b[]) {
      for (int i = 0; i < n; i++) {
        s += 1;
        a[i] = i;
        b[a[i]]++;
      }
    }
  )");
  const ast::For* loop = first_loop(r);
  auto scalars = written_scalars(*loop);
  auto arrays = written_arrays(*loop);
  ASSERT_EQ(scalars.size(), 2u);  // s and i (step)
  EXPECT_EQ(arrays.size(), 2u);   // a and b
}

}  // namespace
}  // namespace sspar::core
