#include <gtest/gtest.h>

#include "support/diagnostics.h"
#include "support/text.h"

namespace sspar::support {
namespace {

TEST(Diagnostics, CountsErrorsOnly) {
  DiagnosticEngine diags;
  EXPECT_FALSE(diags.has_errors());
  diags.warning({1, 2, 0}, "w");
  EXPECT_FALSE(diags.has_errors());
  diags.error({3, 4, 0}, "e");
  EXPECT_TRUE(diags.has_errors());
  EXPECT_EQ(diags.error_count(), 1u);
  EXPECT_EQ(diags.diagnostics().size(), 2u);
}

TEST(Diagnostics, ToStringIncludesLocation) {
  Diagnostic d{Severity::Error, DiagCode::Unspecified, {12, 5, 0}, "unexpected token"};
  EXPECT_EQ(d.to_string(), "12:5: error: unexpected token");
}

TEST(Diagnostics, ToStringIncludesStableCode) {
  Diagnostic d{Severity::Error, DiagCode::SemaUndeclared, {3, 7, 0}, "no such thing"};
  EXPECT_EQ(d.to_string(), "3:7: error: no such thing [E0302]");
  EXPECT_EQ(diag_code_name(DiagCode::SemaUndeclared), "E0302");
  EXPECT_EQ(diag_code_name(DiagCode::LexUnexpectedChar), "E0102");
  EXPECT_EQ(diag_code_name(DiagCode::Unspecified), "");
}

TEST(Diagnostics, ReportWithCodeStoresCode) {
  DiagnosticEngine diags;
  diags.error(DiagCode::ParseExpectedExpr, {1, 1, 0}, "expected expression");
  ASSERT_EQ(diags.diagnostics().size(), 1u);
  EXPECT_EQ(diags.diagnostics()[0].code, DiagCode::ParseExpectedExpr);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Diagnostics, DumpJoinsAll) {
  DiagnosticEngine diags;
  diags.error({1, 1, 0}, "a");
  diags.note({2, 1, 0}, "b");
  std::string dump = diags.dump();
  EXPECT_NE(dump.find("error: a"), std::string::npos);
  EXPECT_NE(dump.find("note: b"), std::string::npos);
}

TEST(Diagnostics, ClearResets) {
  DiagnosticEngine diags;
  diags.error({1, 1, 0}, "a");
  diags.clear();
  EXPECT_FALSE(diags.has_errors());
  EXPECT_TRUE(diags.diagnostics().empty());
}

TEST(Text, Format) {
  EXPECT_EQ(format("x=%d y=%s", 42, "hi"), "x=42 y=hi");
  EXPECT_EQ(format("%s", ""), "");
}

TEST(Text, SplitLines) {
  auto lines = split_lines("a\nb\nc");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[2], "c");
  EXPECT_EQ(split_lines("").size(), 1u);
  EXPECT_EQ(split_lines("x\n").size(), 2u);
}

TEST(Text, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Text, Contains) {
  EXPECT_TRUE(contains("hello world", "lo wo"));
  EXPECT_FALSE(contains("hello", "xyz"));
}

TEST(Text, RenderTableAligns) {
  std::string table = render_table({{"name", "count"}, {"cg", "12"}, {"ua", "3"}});
  auto lines = split_lines(table);
  ASSERT_GE(lines.size(), 4u);
  // Header separator is dashes.
  EXPECT_EQ(lines[1].find_first_not_of('-'), std::string::npos);
  // Columns aligned: "count" starts at same offset in all rows.
  size_t col = lines[0].find("count");
  EXPECT_EQ(lines[2].find("12"), col);
}

}  // namespace
}  // namespace sspar::support
