// Hybrid static/dynamic inspector–executor dispatch: loops whose static
// verdict is blocked by exactly one unproven index-array property become
// dual-version loops guarded by the matching sspar::rt runtime check. The
// differential half of the suite executes the emitted dual-version semantics
// against the interpreter oracle on both property-satisfying and
// property-violating inputs.
#include <gtest/gtest.h>

#include <functional>

#include "core/parallelizer.h"
#include "frontend/sema.h"
#include "interp/interpreter.h"
#include "support/diagnostics.h"
#include "support/text.h"
#include "transform/omp_emitter.h"

namespace sspar::transform {
namespace {

constexpr const char* kPermSource = R"(
    int n;
    int perm[2048];
    int inv[2048];
    void f(void) {
      for (int i = 0; i < n; i++) {
        inv[perm[i]] = i;
      }
    }
  )";

constexpr const char* kScatterSource = R"(
    int n;
    int match[2048];
    int out[8192];
    void f(void) {
      for (int i = 0; i < n; i++) {
        if (match[i] >= 0) {
          out[match[i]] = i;
        }
      }
    }
  )";

constexpr const char* kCsrSource = R"(
    int n;
    int rowcnt[128];
    int rowptr[129];
    double value[16384];
    double vector[16384];
    double product_array[16384];
    void build_rowptr(void) {
      rowptr[0] = 0;
      for (int i = 1; i < n + 1; i++) {
        rowptr[i] = rowptr[i-1] + rowcnt[i-1];
      }
    }
    void f(void) {
      build_rowptr();
      for (int i = 0; i < n; i++) {
        for (int j = rowptr[i]; j < rowptr[i+1]; j++) {
          product_array[j] = value[j] * vector[j];
        }
      }
    }
  )";

TEST(HybridDispatch, PermutationScatterBecomesInjectiveHybrid) {
  auto result = translate_source(kPermSource);
  ASSERT_TRUE(result.ok) << result.diagnostics;
  ASSERT_EQ(result.verdicts.size(), 1u);
  const core::LoopVerdict& v = result.verdicts[0];
  EXPECT_FALSE(v.parallel);
  ASSERT_TRUE(v.hybrid) << support::join(v.blockers, "; ");
  EXPECT_EQ(v.hybrid_property, core::EnablingProperty::Injective);
  EXPECT_EQ(v.hybrid_index_array, "perm");
  EXPECT_EQ(v.hybrid_check_lo, "0");
  EXPECT_EQ(v.hybrid_check_hi, "n - 1");
}

TEST(HybridDispatch, GuardedScatterBecomesSubsetInjectiveHybrid) {
  auto result = translate_source(kScatterSource);
  ASSERT_TRUE(result.ok) << result.diagnostics;
  ASSERT_EQ(result.verdicts.size(), 1u);
  const core::LoopVerdict& v = result.verdicts[0];
  EXPECT_FALSE(v.parallel);
  ASSERT_TRUE(v.hybrid) << support::join(v.blockers, "; ");
  EXPECT_EQ(v.hybrid_property, core::EnablingProperty::SubsetInjective);
  EXPECT_EQ(v.hybrid_index_array, "match");
  EXPECT_EQ(v.hybrid_min_value, 0);
}

TEST(HybridDispatch, DataDependentCsrBecomesMonotonicHybrid) {
  // rowptr is built from an input count array, so its Monotonic property is
  // out of static reach; the product loop becomes a Monotonic hybrid.
  auto result = translate_source(kCsrSource);
  ASSERT_TRUE(result.ok) << result.diagnostics;
  const core::LoopVerdict* outer = nullptr;
  for (const auto& v : result.verdicts) {
    if (v.hybrid) {
      ASSERT_EQ(outer, nullptr) << "expected exactly one hybrid verdict";
      outer = &v;
    }
  }
  ASSERT_NE(outer, nullptr);
  EXPECT_FALSE(outer->parallel);
  EXPECT_EQ(outer->hybrid_property, core::EnablingProperty::Monotonic);
  EXPECT_EQ(outer->hybrid_index_array, "rowptr");
  EXPECT_EQ(outer->hybrid_check_lo, "0");
  EXPECT_EQ(outer->hybrid_check_hi, "n");
}

TEST(HybridDispatch, TrueDependenceIsNotAHybridCandidate) {
  // a[i] = a[i-1] + 1 has a real loop-carried dependence; no index-array
  // property can unlock it, so no hybrid candidacy.
  auto result = translate_source(R"(
    int n;
    int idx[100];
    int a[100];
    void f(void) {
      for (int i = 1; i < n; i++) {
        a[idx[i]] = a[idx[i-1]] + 1;
      }
    }
  )");
  ASSERT_TRUE(result.ok) << result.diagnostics;
  for (const auto& v : result.verdicts) {
    EXPECT_FALSE(v.parallel);
    EXPECT_FALSE(v.hybrid) << "loop " << v.loop_id;
  }
}

TEST(HybridDispatch, EmitsGuardedDualVersionLoop) {
  auto result = translate_source(kPermSource);
  ASSERT_TRUE(result.ok) << result.diagnostics;
  EXPECT_EQ(result.parallelized, 0);  // hybrid is not a static parallelization
  EXPECT_TRUE(support::contains(result.output, "if (sspar_check_injective(perm, 0, n - 1)) {"))
      << result.output;
  EXPECT_TRUE(support::contains(result.output, "#pragma omp parallel for")) << result.output;
  EXPECT_TRUE(support::contains(result.output, "} else {")) << result.output;
  EXPECT_TRUE(support::contains(result.output,
                                "// sspar: hybrid — injective of 'perm' verified at runtime"))
      << result.output;
  // The loop body appears twice: once parallel, once serial.
  size_t count = 0;
  for (size_t pos = 0; (pos = result.output.find("inv[perm[i]] = i;", pos)) != std::string::npos;
       ++pos) {
    ++count;
  }
  EXPECT_EQ(count, 2u) << result.output;
  // The transformed source must still parse.
  support::DiagnosticEngine diags;
  auto reparsed = ast::parse_and_resolve(result.output, diags);
  EXPECT_TRUE(reparsed.ok) << diags.dump() << result.output;
}

TEST(HybridDispatch, MonotonicAndSubsetChecksUseTheMatchingInspector) {
  auto csr = translate_source(kCsrSource);
  ASSERT_TRUE(csr.ok);
  EXPECT_TRUE(support::contains(csr.output, "if (sspar_check_nondecreasing(rowptr, 0, n)) {"))
      << csr.output;
  auto scatter = translate_source(kScatterSource);
  ASSERT_TRUE(scatter.ok);
  EXPECT_TRUE(support::contains(scatter.output,
                                "if (sspar_check_subset_injective(match, 0, n - 1, 0)) {"))
      << scatter.output;
}

// ---- Differential execution of the dual-version semantics -------------------

struct DualVersion {
  const ast::For* guarded = nullptr;  // loop behind the runtime check
  const ast::For* serial = nullptr;   // else-branch fallback loop
};

// Locates the emitted `if (sspar_check_*(...)) { ... } else { ... }` dispatch
// in the re-parsed output.
DualVersion find_dual_version(const ast::Program& program) {
  DualVersion dual;
  for (const auto& fn : program.functions) {
    ast::walk_stmts(static_cast<const ast::Stmt*>(fn->body.get()), [&](const ast::Stmt* s) {
      const auto* iff = s->as<ast::If>();
      if (!iff || !iff->else_branch) return true;
      const auto* call = iff->cond->as<ast::Call>();
      if (!call || call->callee.rfind("sspar_check_", 0) != 0) return true;
      auto thens = ast::collect_loops(iff->then_branch.get());
      auto elses = ast::collect_loops(iff->else_branch.get());
      if (!thens.empty() && !elses.empty()) {
        dual.guarded = thens.front();
        dual.serial = elses.front();
      }
      return true;
    });
  }
  return dual;
}

using Seeder = std::function<void(interp::Interpreter&)>;

// Runs the emitted dual-version program against the interpreter oracle:
// with a property-satisfying input the guarded (parallel) version must
// execute, be dependence-free, permutation-safe, and byte-identical to the
// original serial program; with a violating input the dispatch must fall
// back to the serial version, still matching the original.
void check_dual_version_semantics(const char* source, const Seeder& seed_satisfying,
                                  const Seeder& seed_violating) {
  auto result = translate_source(source);
  ASSERT_TRUE(result.ok) << result.diagnostics;
  support::DiagnosticEngine diags;
  auto reparsed = ast::parse_and_resolve(result.output, diags);
  ASSERT_TRUE(reparsed.ok) << diags.dump() << result.output;
  DualVersion dual = find_dual_version(*reparsed.program);
  ASSERT_NE(dual.guarded, nullptr) << result.output;
  ASSERT_NE(dual.serial, nullptr) << result.output;

  auto reference_state = [&](const Seeder& seed) {
    interp::Interpreter original(*result.parsed.program);
    seed(original);
    original.run("f");
    return original.snapshot();
  };

  {  // Satisfying input: the parallel version runs and is actually parallel.
    interp::Interpreter emitted(*reparsed.program);
    seed_satisfying(emitted);
    auto oracle = emitted.analyze_loop_dependences("f", dual.guarded);
    EXPECT_TRUE(oracle.executed);
    EXPECT_TRUE(oracle.dependence_free) << oracle.first_conflict;

    interp::Interpreter fallback(*reparsed.program);
    seed_satisfying(fallback);
    EXPECT_FALSE(fallback.analyze_loop_dependences("f", dual.serial).executed);

    auto expected = reference_state(seed_satisfying);
    interp::Interpreter transformed(*reparsed.program);
    seed_satisfying(transformed);
    transformed.run("f");
    std::string diff;
    EXPECT_TRUE(interp::Interpreter::equal_state(*expected, *transformed.snapshot(), {}, &diff))
        << diff;

    interp::Interpreter permuted(*reparsed.program);
    seed_satisfying(permuted);
    permuted.run_permuted("f", dual.guarded, /*seed=*/12345);
    EXPECT_TRUE(interp::Interpreter::equal_state(*expected, *permuted.snapshot(), {}, &diff))
        << diff;
  }

  {  // Violating input: dispatch takes the serial fallback.
    interp::Interpreter emitted(*reparsed.program);
    seed_violating(emitted);
    EXPECT_FALSE(emitted.analyze_loop_dependences("f", dual.guarded).executed);

    interp::Interpreter fallback(*reparsed.program);
    seed_violating(fallback);
    EXPECT_TRUE(fallback.analyze_loop_dependences("f", dual.serial).executed);

    auto expected = reference_state(seed_violating);
    interp::Interpreter transformed(*reparsed.program);
    seed_violating(transformed);
    transformed.run("f");
    std::string diff;
    EXPECT_TRUE(interp::Interpreter::equal_state(*expected, *transformed.snapshot(), {}, &diff))
        << diff;
  }
}

TEST(HybridDispatch, DifferentialPermutation) {
  auto seed = [](bool satisfying) {
    return [satisfying](interp::Interpreter& interp) {
      interp.set_scalar("n", int64_t{64});
      std::vector<int64_t> perm(2048, 0);
      for (size_t i = 0; i < perm.size(); ++i) {
        perm[i] = static_cast<int64_t>((i * 7) % 2048);  // injective
      }
      if (!satisfying) perm[3] = perm[5];  // duplicate target
      interp.set_array_int("perm", std::move(perm));
    };
  };
  check_dual_version_semantics(kPermSource, seed(true), seed(false));
}

TEST(HybridDispatch, DifferentialGuardedScatter) {
  auto seed = [](bool satisfying) {
    return [satisfying](interp::Interpreter& interp) {
      interp.set_scalar("n", int64_t{64});
      std::vector<int64_t> match(2048, -1);
      for (size_t i = 0; i < match.size(); i += 3) {
        match[i] = static_cast<int64_t>(2 * i);  // sparse injective targets
      }
      if (!satisfying) match[0] = match[6];  // two rows hit the same slot
      interp.set_array_int("match", std::move(match));
    };
  };
  check_dual_version_semantics(kScatterSource, seed(true), seed(false));
}

TEST(HybridDispatch, DifferentialDataDependentCsr) {
  auto seed = [](bool satisfying) {
    return [satisfying](interp::Interpreter& interp) {
      interp.set_scalar("n", int64_t{32});
      std::vector<int64_t> rowcnt(128, 0);
      for (size_t i = 0; i < rowcnt.size(); ++i) rowcnt[i] = static_cast<int64_t>(i % 4);
      if (!satisfying) rowcnt[5] = -3;  // rowptr dips: non-monotonic
      interp.set_array_int("rowcnt", std::move(rowcnt));
      std::vector<double> value(16384), vec(16384);
      for (size_t i = 0; i < value.size(); ++i) {
        value[i] = 0.5 * static_cast<double>(i % 17);
        vec[i] = 1.0 + static_cast<double>(i % 5);
      }
      interp.set_array_double("value", std::move(value));
      interp.set_array_double("vector", std::move(vec));
    };
  };
  check_dual_version_semantics(kCsrSource, seed(true), seed(false));
}

}  // namespace
}  // namespace sspar::transform
