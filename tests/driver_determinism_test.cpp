// Determinism: the batch driver's verdicts and aggregates must not depend on
// the degree of parallelism. Runs the whole corpus with 1 and 8 threads and
// requires bit-identical per-loop verdicts and aggregate statistics.
#include <gtest/gtest.h>

#include "driver/batch_analyzer.h"

namespace sspar::driver {
namespace {

struct FlatVerdict {
  std::string program;
  int loop_id;
  bool canonical, parallel, subscripted;
  std::string reason;
  std::vector<std::string> blockers;

  bool operator==(const FlatVerdict& other) const {
    return program == other.program && loop_id == other.loop_id &&
           canonical == other.canonical && parallel == other.parallel &&
           subscripted == other.subscripted && reason == other.reason &&
           blockers == other.blockers;
  }
};

std::vector<FlatVerdict> flatten(const BatchReport& report) {
  std::vector<FlatVerdict> flat;
  for (const ProgramReport& p : report.programs) {
    for (const auto& v : p.result.verdicts) {
      flat.push_back(FlatVerdict{p.name, v.loop_id, v.canonical, v.parallel,
                                 v.uses_subscripted_subscripts, v.reason, v.blockers});
    }
  }
  return flat;
}

TEST(DriverDeterminism, OneThreadAndEightThreadsAgreeOverTheCorpus) {
  auto inputs = BatchAnalyzer::corpus_inputs();

  BatchReport serial = BatchAnalyzer(BatchOptions{1, {}}).run(inputs);
  BatchReport parallel = BatchAnalyzer(BatchOptions{8, {}}).run(inputs);

  ASSERT_EQ(serial.programs.size(), parallel.programs.size());
  for (size_t i = 0; i < serial.programs.size(); ++i) {
    EXPECT_EQ(serial.programs[i].name, parallel.programs[i].name);
    EXPECT_EQ(serial.programs[i].ok, parallel.programs[i].ok);
    EXPECT_EQ(serial.programs[i].result.output, parallel.programs[i].result.output)
        << serial.programs[i].name;
  }

  auto serial_verdicts = flatten(serial);
  auto parallel_verdicts = flatten(parallel);
  ASSERT_EQ(serial_verdicts.size(), parallel_verdicts.size());
  for (size_t i = 0; i < serial_verdicts.size(); ++i) {
    EXPECT_TRUE(serial_verdicts[i] == parallel_verdicts[i])
        << serial_verdicts[i].program << " loop " << serial_verdicts[i].loop_id;
  }

  EXPECT_EQ(serial.stats, parallel.stats);
  // identical aggregate counts, spelled out for readable failures
  EXPECT_EQ(serial.stats.loops, parallel.stats.loops);
  EXPECT_EQ(serial.stats.parallel, parallel.stats.parallel);
  EXPECT_EQ(serial.stats.parallel_subscripted, parallel.stats.parallel_subscripted);
  EXPECT_EQ(serial.stats.property_counts, parallel.stats.property_counts);
}

TEST(DriverDeterminism, RepeatedRunsAreStable) {
  auto inputs = BatchAnalyzer::corpus_inputs();
  BatchAnalyzer analyzer(BatchOptions{4, {}});
  BatchReport first = analyzer.run(inputs);
  BatchReport second = analyzer.run(inputs);
  EXPECT_EQ(first.stats, second.stats);
  EXPECT_TRUE(flatten(first) == flatten(second));
}

}  // namespace
}  // namespace sspar::driver
