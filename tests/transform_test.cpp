#include <gtest/gtest.h>

#include "frontend/printer.h"
#include "frontend/sema.h"
#include "support/diagnostics.h"
#include "support/text.h"
#include "transform/omp_emitter.h"

namespace sspar::transform {
namespace {

TEST(Transform, AnnotatesParallelLoopWithPragma) {
  auto result = translate_source(R"(
    int n;
    int a[100];
    int b[100];
    void f(void) {
      for (int i = 0; i < n; i++) {
        a[i] = b[i] + 1;
      }
    }
  )");
  ASSERT_TRUE(result.ok) << result.diagnostics;
  EXPECT_EQ(result.parallelized, 1);
  EXPECT_TRUE(support::contains(result.output, "#pragma omp parallel for"));
}

TEST(Transform, PrivateClauseListsScalars) {
  auto result = translate_source(R"(
    int n;
    int t;
    int a[100];
    int b[100];
    void f(void) {
      for (int i = 0; i < n; i++) {
        t = b[i] * 2;
        a[i] = t;
      }
    }
  )");
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(support::contains(result.output, "private(t)")) << result.output;
}

TEST(Transform, SequentialLoopNotAnnotated) {
  auto result = translate_source(R"(
    int n;
    int a[100];
    void f(void) {
      for (int i = 1; i < n; i++) {
        a[i] = a[i-1] + 1;
      }
    }
  )");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.parallelized, 0);
  EXPECT_FALSE(support::contains(result.output, "#pragma"));
}

TEST(Transform, OnlyOutermostParallelLoopAnnotated) {
  auto result = translate_source(R"(
    int n;
    int a[100][100];
    double c[100];
    double d[100];
    void f(void) {
      for (int i = 0; i < n; i++) {
        c[i] = d[i] * 2.0;
        for (int j = 0; j < n; j++) {
          d[j] = 0.0;
        }
      }
    }
  )");
  ASSERT_TRUE(result.ok);
  // The outer loop is NOT parallel (all iterations write d[0..n-1]); the
  // inner one is, and it should carry the pragma.
  size_t count = 0;
  size_t pos = 0;
  while ((pos = result.output.find("#pragma omp parallel for", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 1u);
}

TEST(Transform, DuplicateVerdictsResolveDeterministically) {
  // Two verdicts for the same loop used to resolve last-writer-wins; the
  // annotation choice must not depend on verdict order: parallel beats
  // hybrid beats serial.
  support::DiagnosticEngine diags;
  auto parsed = ast::parse_and_resolve(R"(
    int n;
    int a[100];
    int b[100];
    void f(void) {
      for (int i = 0; i < n; i++) {
        a[i] = b[i] + 1;
      }
    }
  )",
                                       diags);
  ASSERT_TRUE(parsed.ok) << diags.dump();
  auto loops = ast::collect_loops(parsed.program->functions[0]->body.get());
  ASSERT_EQ(loops.size(), 1u);

  core::LoopVerdict serial;
  serial.loop = loops[0];
  serial.blockers.push_back("synthetic blocker");
  core::LoopVerdict parallel;
  parallel.loop = loops[0];
  parallel.parallel = true;
  parallel.reason = "affine disjoint accesses";
  core::LoopVerdict hybrid;
  hybrid.loop = loops[0];
  hybrid.hybrid = true;
  hybrid.hybrid_property = core::EnablingProperty::Injective;
  hybrid.hybrid_index_array = "b";
  hybrid.hybrid_check_lo = "0";
  hybrid.hybrid_check_hi = "n - 1";

  for (bool parallel_first : {false, true}) {
    std::vector<core::LoopVerdict> verdicts =
        parallel_first ? std::vector<core::LoopVerdict>{parallel, serial, hybrid}
                       : std::vector<core::LoopVerdict>{serial, hybrid, parallel};
    clear_annotations(*parsed.program);
    EXPECT_EQ(annotate_parallel_loops(*parsed.program, verdicts), 1);
    std::string out = ast::print_program(*parsed.program);
    EXPECT_TRUE(support::contains(out, "#pragma omp parallel for")) << out;
    EXPECT_FALSE(support::contains(out, "sspar_check_")) << out;
  }
  for (bool hybrid_first : {false, true}) {
    std::vector<core::LoopVerdict> verdicts =
        hybrid_first ? std::vector<core::LoopVerdict>{hybrid, serial}
                     : std::vector<core::LoopVerdict>{serial, hybrid};
    clear_annotations(*parsed.program);
    EXPECT_EQ(annotate_parallel_loops(*parsed.program, verdicts), 0);
    std::string out = ast::print_program(*parsed.program);
    EXPECT_TRUE(support::contains(out, "if (sspar_check_injective(b, 0, n - 1)) {")) << out;
  }
}

TEST(Transform, Fig9EndToEnd) {
  // The headline transformation: the paper's Fig. 9 product loop gets the
  // pragma with j1 privatized; the fill loops stay sequential.
  auto result = translate_source(R"(
    int ROWLEN;
    int COLUMNLEN;
    int ind;
    int index;
    int j1;
    int a[100][100];
    int column_number[10000];
    double value[10000];
    double vector[10000];
    double product_array[10000];
    int rowsize[100];
    int rowptr[101];
    void f(void) {
      for (int i = 0; i < ROWLEN; i++) {
        int count = 0;
        for (int j = 0; j < COLUMNLEN; j++) {
          if (a[i][j] != 0) {
            count++;
            column_number[index++] = j;
            value[ind++] = a[i][j];
          }
        }
        rowsize[i] = count;
      }
      rowptr[0] = 0;
      for (int i = 1; i < ROWLEN + 1; i++) {
        rowptr[i] = rowptr[i-1] + rowsize[i-1];
      }
      for (int i = 0; i < ROWLEN + 1; i++) {
        if (i == 0) {
          j1 = i;
        } else {
          j1 = rowptr[i-1];
        }
        for (int j = j1; j < rowptr[i]; j++) {
          product_array[j] = value[j] * vector[j];
        }
      }
    }
  )",
                                 core::AnalyzerOptions{},
                                 {{"ROWLEN", 1}, {"COLUMNLEN", 1}});
  ASSERT_TRUE(result.ok) << result.diagnostics;
  EXPECT_EQ(result.parallelized, 1);
  EXPECT_TRUE(support::contains(result.output, "private(j1)")) << result.output;
  // The pragma must be attached to the product loop (after rowptr[0] = 0).
  size_t pragma_pos = result.output.find("#pragma omp parallel for");
  size_t rowptr0_pos = result.output.find("rowptr[0] = 0");
  ASSERT_NE(pragma_pos, std::string::npos);
  ASSERT_NE(rowptr0_pos, std::string::npos);
  EXPECT_GT(pragma_pos, rowptr0_pos);
  // The transformed source must still parse.
  support::DiagnosticEngine diags;
  auto reparsed = ast::parse_and_resolve(result.output, diags);
  EXPECT_TRUE(reparsed.ok) << diags.dump();
}

}  // namespace
}  // namespace sspar::transform
