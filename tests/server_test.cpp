// Analysis server: concurrent clients get byte-identical responses matching
// the one-shot CLI report, malformed requests get errors without killing the
// connection, disconnecting clients never take the server down, and a
// shutdown request flushes the persistent store.
#include <gtest/gtest.h>

#include <cstdio>
#include <thread>
#include <vector>

#include "driver/json_report.h"
#include "driver/store_session.h"
#include "server/analysis_server.h"
#include "server/client.h"
#include "server/protocol.h"
#include "store/summary_store.h"
#include "support/json.h"

namespace sspar::server {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "sspar_server_test_" + name;
}

std::vector<driver::ProgramInput> test_inputs() {
  const char* kProgram = R"(
    int n;
    int a[100];
    int idx[100];
    int clamp(int v) {
      if (v < 0) { v = 0; }
      return v;
    }
    void f() {
      for (int i = 0; i < n; i++) {
        a[idx[i]] = clamp(i);
      }
    }
  )";
  std::vector<driver::ProgramInput> inputs;
  inputs.push_back(driver::ProgramInput{"prog", kProgram, {{"n", 1}}});
  return inputs;
}

// Zeroes every "total_ms" — wall-clock is the one legitimately varying field
// between otherwise byte-identical reports.
void canonicalize(support::json::Value& value) {
  if (value.is_object()) {
    for (auto& [key, child] : value.as_object()) {
      if (key == "total_ms") {
        child = support::json::Value(int64_t{0});
      } else {
        canonicalize(child);
      }
    }
  } else if (value.is_array()) {
    for (auto& child : value.as_array()) canonicalize(child);
  }
}

std::string canonical_dump(support::json::Value value) {
  canonicalize(value);
  return value.dump(2);
}

std::string fresh_path(const std::string& name) {
  std::string path = temp_path(name);
  std::remove(path.c_str());
  return path;
}

struct ServerFixture {
  std::string socket_path;
  std::string store_path;
  store::SummaryStore store;
  AnalysisServer server;

  explicit ServerFixture(const std::string& name, unsigned threads = 2)
      : socket_path(fresh_path(name + ".sock")),
        store_path(fresh_path(name + ".bin")),
        store(store_path),
        server(ServerOptions{socket_path, threads, {}, &store}) {
    EXPECT_TRUE(store.open());
  }

  ~ServerFixture() {
    server.stop();
    std::remove(store_path.c_str());
  }

  bool start() {
    std::string error;
    bool ok = server.start(&error);
    EXPECT_TRUE(ok) << error;
    return ok;
  }
};

TEST(AnalysisServer, ConcurrentClientsGetByteIdenticalReports) {
  ServerFixture fx("concurrent");
  ASSERT_TRUE(fx.start());
  auto inputs = test_inputs();
  const std::string request = make_analyze_request(inputs, /*emit=*/true, /*threads=*/2);

  // Warm the store with one sequential request so every concurrent request
  // below sees the same preloaded record set.
  {
    Client warmup;
    ASSERT_TRUE(warmup.connect(fx.socket_path));
    auto response = warmup.request(request);
    ASSERT_TRUE(response.has_value());
    ASSERT_TRUE(response->find("ok")->as_bool());
  }

  constexpr int kClients = 5;
  std::vector<std::string> responses(kClients);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client client;
      std::string error;
      if (!client.connect(fx.socket_path, &error)) return;
      auto response = client.request(request, &error);
      if (response) responses[static_cast<size_t>(i)] = canonical_dump(*response);
    });
  }
  for (std::thread& t : threads) t.join();

  for (int i = 0; i < kClients; ++i) {
    ASSERT_FALSE(responses[static_cast<size_t>(i)].empty()) << "client " << i << " failed";
    EXPECT_EQ(responses[static_cast<size_t>(i)], responses[0]) << "client " << i;
  }

  // And the daemon's report is byte-identical to what one-shot
  // `sspar-analyze --json --store` produces for the same warm store.
  store::SummaryStore local_store(fx.store_path);
  ASSERT_TRUE(local_store.open());
  driver::BatchOptions options;
  options.threads = 2;
  driver::BatchReport local = driver::run_with_store(inputs, options, &local_store);
  const std::string expected = canonical_dump(
      driver::batch_report_to_json(local, driver::BatchAnalyzer(options).threads(), true));
  auto first = support::json::parse(responses[0]);
  ASSERT_TRUE(first.has_value());
  const support::json::Value* report = first->find("report");
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(canonical_dump(*report), expected);
}

TEST(AnalysisServer, MalformedRequestsGetErrorsAndTheConnectionSurvives) {
  ServerFixture fx("malformed");
  ASSERT_TRUE(fx.start());
  Client client;
  ASSERT_TRUE(client.connect(fx.socket_path));

  auto garbage = client.request("this is not json");
  ASSERT_TRUE(garbage.has_value());
  EXPECT_FALSE(garbage->find("ok")->as_bool());
  // Structured error object with a stable machine-readable code.
  ASSERT_TRUE(garbage->find("error")->is_object());
  EXPECT_EQ(garbage->find("error")->find("code")->as_string(), "E_BAD_REQUEST");
  EXPECT_TRUE(garbage->find("error")->find("message")->is_string());

  auto wrong_method = client.request(R"({"method":"transmogrify"})");
  ASSERT_TRUE(wrong_method.has_value());
  EXPECT_FALSE(wrong_method->find("ok")->as_bool());

  auto bad_programs = client.request(R"({"method":"analyze","programs":"nope"})");
  ASSERT_TRUE(bad_programs.has_value());
  EXPECT_FALSE(bad_programs->find("ok")->as_bool());

  // The same connection still answers valid requests afterwards.
  auto ping = client.request(make_simple_request(Method::Ping));
  ASSERT_TRUE(ping.has_value());
  EXPECT_TRUE(ping->find("ok")->as_bool());
  EXPECT_EQ(ping->find("method")->as_string(), "ping");
}

TEST(AnalysisServer, ClientDisconnectMidRequestLeavesTheServerServing) {
  ServerFixture fx("disconnect");
  ASSERT_TRUE(fx.start());

  {
    // Half a request line, NO newline, then gone: the server must drop the
    // partial buffer without parsing or answering it.
    Client goner;
    ASSERT_TRUE(goner.connect(fx.socket_path));
    ASSERT_TRUE(goner.send_bytes(R"({"method":"analyze","programs":[{"na)"));
    goner.close();
  }
  {
    // …and a connection that opens and dies without a single byte.
    Client goner;
    ASSERT_TRUE(goner.connect(fx.socket_path));
    goner.close();
  }

  Client client;
  ASSERT_TRUE(client.connect(fx.socket_path));
  auto response = client.request(make_analyze_request(test_inputs(), false, 1));
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->find("ok")->as_bool());
  EXPECT_NE(response->find("report"), nullptr);
}

TEST(AnalysisServer, StatsAndPingReportServerState) {
  ServerFixture fx("stats");
  ASSERT_TRUE(fx.start());
  Client client;
  ASSERT_TRUE(client.connect(fx.socket_path));

  auto ping = client.request(make_simple_request(Method::Ping));
  ASSERT_TRUE(ping.has_value());
  EXPECT_TRUE(ping->find("ok")->as_bool());

  auto analyze = client.request(make_analyze_request(test_inputs(), false, 1));
  ASSERT_TRUE(analyze.has_value());
  EXPECT_TRUE(analyze->find("ok")->as_bool());

  auto stats = client.request(make_simple_request(Method::Stats));
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->find("ok")->as_bool());
  EXPECT_GE(stats->int_or("requests", 0), 3);
  const support::json::Value* store_stats = stats->find("store");
  ASSERT_NE(store_stats, nullptr);
  EXPECT_GT(store_stats->int_or("records", 0), 0);  // the analyze was absorbed
}

TEST(AnalysisServer, ShutdownRequestStopsTheServerAndFlushesTheStore) {
  ServerFixture fx("shutdown");
  ASSERT_TRUE(fx.start());
  {
    Client client;
    ASSERT_TRUE(client.connect(fx.socket_path));
    auto analyze = client.request(make_analyze_request(test_inputs(), false, 1));
    ASSERT_TRUE(analyze.has_value());
    auto bye = client.request(make_simple_request(Method::Shutdown));
    ASSERT_TRUE(bye.has_value());
    EXPECT_TRUE(bye->find("ok")->as_bool());
  }
  fx.server.wait();  // returns once the shutdown lands
  EXPECT_FALSE(fx.server.running());

  // The store was flushed on the way out: a fresh open sees the records.
  store::SummaryStore reopened(fx.store_path);
  ASSERT_TRUE(reopened.open());
  EXPECT_GT(reopened.size(), 0u);
}

TEST(AnalysisServer, StaleSocketFileIsReplacedLiveServerIsNot) {
  ServerFixture fx("stale");
  ASSERT_TRUE(fx.start());

  // A second server on the SAME path must refuse: the first one is alive.
  AnalysisServer rival(ServerOptions{fx.socket_path, 1, {}, nullptr});
  std::string error;
  EXPECT_FALSE(rival.start(&error));
  EXPECT_NE(error.find("already"), std::string::npos) << error;

  fx.server.stop();

  // stop() unlinked the socket; simulate a crash leftover instead.
  ServerFixture fresh("stale2");
  ASSERT_TRUE(fresh.start());
  fresh.server.stop();
}

}  // namespace
}  // namespace sspar::server
