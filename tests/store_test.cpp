// Persistent summary store: payload round-trips, corruption robustness
// (truncation, bit flips, version/magic mismatch), eviction, concurrent
// first-writer-wins absorbs, and warm-start batch runs whose reports are
// byte-identical to their cold-run predecessors.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "driver/json_report.h"
#include "driver/store_session.h"
#include "store/summary_store.h"
#include "support/faultpoint.h"
#include "support/json.h"

namespace sspar::store {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "sspar_store_test_" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

ipa::PortableExpr sym_expr(const std::string& name) {
  ipa::PortableExpr e;
  e.kind = sym::ExprKind::Sym;
  e.symbol = name;
  return e;
}

ipa::PortableExpr const_expr(int64_t v) {
  ipa::PortableExpr e;
  e.kind = sym::ExprKind::Const;
  e.value = v;
  return e;
}

// A summary exercising every field of the portable mirror, including nested
// expression trees, guards, end facts, and the unanalyzable-failure payload.
ipa::PortableSummary rich_summary() {
  ipa::PortableSummary s;
  s.function = "kernel";
  s.may_write_scalars = {"acc", "count"};
  s.may_write_arrays = {"a", "b"};
  s.definite_scalar_writes = {"acc"};
  s.exposed_scalar_reads = {"n"};
  s.writes_array_params = true;
  s.analyzable = true;
  s.opaque = false;
  ipa::PortableExpr add;
  add.kind = sym::ExprKind::Add;
  add.value = 3;
  add.operands = {sym_expr("n"), sym_expr("m")};
  add.coeffs = {2, -1};
  s.scalar_finals["acc"] = ipa::PortableRange{const_expr(0), add};
  ipa::PortableEffect effect;
  effect.array = "a";
  effect.dims = 2;
  effect.index = add;
  effect.index_range = ipa::PortableRange{const_expr(0), sym_expr("n")};
  effect.value = ipa::PortableRange{std::nullopt, const_expr(7)};
  effect.conditional = true;
  effect.from_inner = true;
  effect.guards.push_back(ipa::PortableGuard{"idx", sym_expr("i"), 1});
  effect.via_array = "idx";
  effect.via_domain = ipa::PortableRange{const_expr(1), sym_expr("n")};
  effect.post_inc_subscript = "cursor";
  s.writes.push_back(effect);
  s.reads.push_back(effect);
  ipa::PortableArrayFacts facts;
  facts.values.push_back(ipa::PortableValueFact{
      const_expr(0), sym_expr("n"), ipa::PortableRange{const_expr(0), sym_expr("n")}});
  facts.steps.push_back(ipa::PortableStepFact{
      const_expr(0), sym_expr("n"), ipa::PortableRange{const_expr(1), const_expr(1)}});
  ipa::PortableInjectiveFact injective{const_expr(0), sym_expr("n"), 0};
  injective.min_value = 4;
  facts.injectives.push_back(injective);
  facts.identities.push_back(ipa::PortableIdentityFact{const_expr(0), sym_expr("n")});
  s.end_facts["idx"] = facts;
  s.return_value = ipa::PortableRange{const_expr(0), sym_expr("n")};
  s.entry_fingerprint = 0x1234abcd5678ull;
  return s;
}

ipa::PortableSummary unanalyzable_summary() {
  ipa::PortableSummary s;
  s.function = "rec";
  s.may_write_scalars = {"acc"};
  s.analyzable = false;
  s.failure = "recursive";
  s.failure_line = 12;
  s.failure_column = 5;
  return s;
}

// --------------------------------------------------------------------------
// Payload serialization
// --------------------------------------------------------------------------

TEST(SummarySerialization, RichSummaryRoundTripsByteIdentically) {
  const ipa::PortableSummary original = rich_summary();
  const std::string bytes = serialize_summary(original);
  auto decoded = deserialize_summary(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->function, "kernel");
  EXPECT_EQ(decoded->may_write_scalars, original.may_write_scalars);
  EXPECT_EQ(decoded->scalar_finals.size(), 1u);
  ASSERT_EQ(decoded->writes.size(), 1u);
  EXPECT_EQ(decoded->writes[0].guards.size(), 1u);
  EXPECT_EQ(decoded->writes[0].post_inc_subscript, "cursor");
  EXPECT_EQ(decoded->end_facts.count("idx"), 1u);
  EXPECT_EQ(decoded->entry_fingerprint, original.entry_fingerprint);
  ASSERT_TRUE(decoded->return_value.has_value());
  // Re-encoding the decoded summary must reproduce the exact bytes — the
  // encoder/decoder pair loses nothing.
  EXPECT_EQ(serialize_summary(*decoded), bytes);
}

TEST(SummarySerialization, UnanalyzableSummaryCarriesFailure) {
  const std::string bytes = serialize_summary(unanalyzable_summary());
  auto decoded = deserialize_summary(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->analyzable);
  EXPECT_EQ(decoded->failure, "recursive");
  EXPECT_EQ(decoded->failure_line, 12u);
  EXPECT_EQ(decoded->failure_column, 5u);
  EXPECT_EQ(serialize_summary(*decoded), bytes);
}

TEST(SummarySerialization, EveryTruncationIsRejected) {
  const std::string bytes = serialize_summary(rich_summary());
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(deserialize_summary(std::string_view(bytes.data(), len)).has_value())
        << "prefix of length " << len << " parsed";
  }
}

TEST(SummarySerialization, TrailingGarbageIsRejected) {
  std::string bytes = serialize_summary(rich_summary());
  bytes.push_back('\0');
  EXPECT_FALSE(deserialize_summary(bytes).has_value());
}

TEST(SummarySerialization, OversizedCountsAreRejectedWithoutAllocating) {
  // A payload claiming 2^31 strings must fail the remaining-bytes check, not
  // try to resize a vector to it.
  std::string bytes;
  bytes.append("\x03\x00\x00\x00rec", 7);  // function name
  bytes.append("\xff\xff\xff\x7f", 4);     // may_write_scalars count
  EXPECT_FALSE(deserialize_summary(bytes).has_value());
}

// --------------------------------------------------------------------------
// Store files: round-trip and corruption
// --------------------------------------------------------------------------

// Builds a store file at `path` with `count` distinct records.
void build_store(const std::string& path, size_t count, size_t cap = 4096) {
  ipa::CrossProgramCache cache;
  for (size_t i = 0; i < count; ++i) {
    ipa::PortableSummary s = rich_summary();
    s.function = "kernel_" + std::to_string(i);
    cache.insert(ipa::CacheKey{i + 1, i + 101}, std::move(s));
  }
  SummaryStore store(path, StoreOptions{cap});
  ASSERT_TRUE(store.open());
  store.absorb(cache);
  ASSERT_TRUE(store.flush());
}

TEST(SummaryStore, SaveReopenRoundTripsByteIdentically) {
  const std::string path = temp_path("roundtrip.bin");
  std::remove(path.c_str());
  build_store(path, 5);
  const std::string first = read_file(path);
  ASSERT_FALSE(first.empty());

  SummaryStore reopened(path);
  ASSERT_TRUE(reopened.open());
  EXPECT_EQ(reopened.size(), 5u);
  EXPECT_EQ(reopened.stats().loaded, 5u);
  EXPECT_EQ(reopened.stats().rejected, 0u);
  ASSERT_TRUE(reopened.flush());
  const std::string second = read_file(path);

  // Only the 8-byte next-generation counter in the header may differ; every
  // record byte must survive the reopen+flush round trip untouched.
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(first.substr(0, 8), second.substr(0, 8));    // magic + version
  EXPECT_EQ(first.substr(16), second.substr(16));        // all records
  std::remove(path.c_str());
}

TEST(SummaryStore, TruncatedFileKeepsTheGoodPrefix) {
  const std::string path = temp_path("truncated.bin");
  std::remove(path.c_str());
  build_store(path, 4);
  std::string bytes = read_file(path);
  write_file(path, bytes.substr(0, bytes.size() - 25));  // tears the last record

  SummaryStore store(path);
  EXPECT_TRUE(store.open());  // not a wholesale reject
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.stats().loaded, 3u);
  EXPECT_EQ(store.stats().rejected, 1u);
  std::remove(path.c_str());
}

TEST(SummaryStore, ChecksumMismatchDropsOnlyThatRecord) {
  const std::string path = temp_path("bitflip.bin");
  std::remove(path.c_str());
  build_store(path, 4);
  std::string bytes = read_file(path);
  // Header is 16 bytes; the first record's payload starts after its 44-byte
  // record header. Flip a byte well inside the payload.
  bytes[16 + 44 + 10] = static_cast<char>(bytes[16 + 44 + 10] ^ 0x5a);
  write_file(path, bytes);

  SummaryStore store(path);
  EXPECT_TRUE(store.open());
  EXPECT_EQ(store.size(), 3u);  // the other three records survive
  EXPECT_EQ(store.stats().rejected, 1u);
  std::remove(path.c_str());
}

TEST(SummaryStore, VersionMismatchQuarantinesTheWholeFile) {
  const std::string path = temp_path("badversion.bin");
  std::remove(path.c_str());
  std::remove((path + ".corrupt").c_str());
  build_store(path, 3);
  std::string bytes = read_file(path);
  bytes[4] = 99;  // version field
  write_file(path, bytes);

  SummaryStore store(path);
  EXPECT_FALSE(store.open());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.stats().rejected, 1u);
  // Quarantined, not deleted: the bad bytes moved to .corrupt and the
  // original path is free for the next flush.
  EXPECT_TRUE(std::ifstream(path + ".corrupt").good());
  EXPECT_FALSE(std::ifstream(path).good());
  ASSERT_TRUE(store.flush());
  EXPECT_TRUE(std::ifstream(path).good());
  std::remove(path.c_str());
  std::remove((path + ".corrupt").c_str());
}

TEST(SummaryStore, BadMagicQuarantinesTheWholeFile) {
  const std::string path = temp_path("badmagic.bin");
  std::remove(path.c_str());
  std::remove((path + ".corrupt").c_str());
  write_file(path, "definitely not a summary store");

  SummaryStore store(path);
  EXPECT_FALSE(store.open());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(std::ifstream(path + ".corrupt").good());
  std::remove((path + ".corrupt").c_str());
}

TEST(SummaryStore, MissingFileOpensEmpty) {
  const std::string path = temp_path("missing.bin");
  std::remove(path.c_str());
  SummaryStore store(path);
  EXPECT_TRUE(store.open());
  EXPECT_EQ(store.size(), 0u);
}

// --------------------------------------------------------------------------
// Eviction
// --------------------------------------------------------------------------

TEST(SummaryStore, EvictionKeepsWarmRecordsUnderTheCap) {
  const std::string path = temp_path("evict.bin");
  std::remove(path.c_str());
  build_store(path, 6, /*cap=*/4096);

  // Reopen with a tight cap; HIT two records so their generations are
  // bumped past the cold ones, then flush: the two warm keys must survive.
  SummaryStore store(path, StoreOptions{3});
  ASSERT_TRUE(store.open());
  ipa::CrossProgramCache cache;
  EXPECT_EQ(store.preload(cache), 6u);
  EXPECT_TRUE(cache.find(ipa::CacheKey{1, 101}) != nullptr);
  EXPECT_TRUE(cache.find(ipa::CacheKey{2, 102}) != nullptr);
  store.absorb(cache);
  ASSERT_TRUE(store.flush());
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.stats().evicted, 3u);
  EXPECT_EQ(store.stats().flushed, 3u);

  SummaryStore reopened(path);
  ASSERT_TRUE(reopened.open());
  ipa::CrossProgramCache warm;
  reopened.preload(warm);
  EXPECT_TRUE(warm.find(ipa::CacheKey{1, 101}) != nullptr);
  EXPECT_TRUE(warm.find(ipa::CacheKey{2, 102}) != nullptr);
  std::remove(path.c_str());
}

// --------------------------------------------------------------------------
// Concurrency: first-writer-wins under absorb/flush races
// --------------------------------------------------------------------------

TEST(SummaryStore, ConcurrentAbsorbsAreFirstWriterWins) {
  const std::string path = temp_path("concurrent.bin");
  std::remove(path.c_str());

  // Seed the store with the canonical payloads first.
  SummaryStore store(path);
  ASSERT_TRUE(store.open());
  constexpr size_t kKeys = 32;
  {
    ipa::CrossProgramCache seed;
    for (size_t i = 0; i < kKeys; ++i) {
      ipa::PortableSummary s = rich_summary();
      s.function = "canonical_" + std::to_string(i);
      seed.insert(ipa::CacheKey{i + 1, 7}, std::move(s));
    }
    store.absorb(seed);
  }

  // Racing absorbs carry DIFFERENT payloads for the same keys plus some new
  // keys of their own; flushes race too. The seeded payloads must win.
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&store, t] {
      for (int round = 0; round < 8; ++round) {
        ipa::CrossProgramCache cache;
        for (size_t i = 0; i < kKeys; ++i) {
          ipa::PortableSummary s;
          s.function = "imposter_t" + std::to_string(t);
          cache.insert(ipa::CacheKey{i + 1, 7}, std::move(s));
        }
        ipa::PortableSummary extra;
        extra.function = "extra_t" + std::to_string(t);
        cache.insert(ipa::CacheKey{1000 + t, 7}, std::move(extra));
        store.absorb(cache);
        store.flush();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_TRUE(store.flush());

  SummaryStore reopened(path);
  ASSERT_TRUE(reopened.open());
  EXPECT_EQ(reopened.size(), kKeys + 4);
  ipa::CrossProgramCache check;
  reopened.preload(check);
  for (size_t i = 0; i < kKeys; ++i) {
    auto summary = check.find(ipa::CacheKey{i + 1, 7});
    ASSERT_TRUE(summary != nullptr);
    EXPECT_EQ(summary->function, "canonical_" + std::to_string(i));
  }
  std::remove(path.c_str());
}

// --------------------------------------------------------------------------
// Crash-safe journal (write-ahead log)
// --------------------------------------------------------------------------

StoreOptions journal_options(size_t cap = 4096, size_t checkpoint_bytes = 1u << 20) {
  StoreOptions options;
  options.max_entries = cap;
  options.journal = true;
  options.journal_checkpoint_bytes = checkpoint_bytes;
  return options;
}

// Absorbs `count` distinct records into a journal-mode store WITHOUT a full
// flush: durability comes from the WAL sidecar alone.
void build_journal(const std::string& path, size_t count) {
  ipa::CrossProgramCache cache;
  for (size_t i = 0; i < count; ++i) {
    ipa::PortableSummary s = rich_summary();
    s.function = "kernel_" + std::to_string(i);
    cache.insert(ipa::CacheKey{i + 1, i + 101}, std::move(s));
  }
  SummaryStore store(path, journal_options());
  ASSERT_TRUE(store.open());
  store.absorb(cache);
  ASSERT_TRUE(store.commit());  // journal small: no base-file rewrite
  EXPECT_EQ(store.stats().journal_appended, count);
}

TEST(SummaryStoreJournal, ReplayRestoresRecordsNeverFlushed) {
  const std::string path = temp_path("journal.bin");
  std::remove(path.c_str());
  std::remove((path + ".journal").c_str());
  build_journal(path, 5);
  // commit() never rewrote the base file — the journal is the only bytes.
  EXPECT_FALSE(std::ifstream(path).good());
  ASSERT_TRUE(std::ifstream(path + ".journal").good());

  SummaryStore reopened(path, journal_options());
  ASSERT_TRUE(reopened.open());
  EXPECT_EQ(reopened.size(), 5u);
  EXPECT_EQ(reopened.stats().journal_replayed, 5u);
  EXPECT_EQ(reopened.stats().rejected, 0u);
  ipa::CrossProgramCache check;
  EXPECT_EQ(reopened.preload(check), 5u);
  auto summary = check.find(ipa::CacheKey{1, 101});
  ASSERT_TRUE(summary != nullptr);
  EXPECT_EQ(summary->function, "kernel_0");
  std::remove(path.c_str());
  std::remove((path + ".journal").c_str());
}

TEST(SummaryStoreJournal, TornTailKeepsGoodPrefixAndTruncatesFile) {
  const std::string path = temp_path("journal_torn.bin");
  std::remove(path.c_str());
  std::remove((path + ".journal").c_str());
  build_journal(path, 4);
  std::string bytes = read_file(path + ".journal");
  // A crash mid-append leaves a torn final record.
  write_file(path + ".journal", bytes.substr(0, bytes.size() - 25));

  SummaryStore store(path, journal_options());
  ASSERT_TRUE(store.open());
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.stats().journal_replayed, 3u);
  EXPECT_EQ(store.stats().rejected, 1u);
  // The torn tail was physically removed so later appends never follow it.
  const std::string after = read_file(path + ".journal");
  EXPECT_LT(after.size(), bytes.size() - 25);
  EXPECT_EQ(after, bytes.substr(0, after.size()));

  // The survivor store keeps absorbing and replaying cleanly.
  SummaryStore again(path, journal_options());
  ASSERT_TRUE(again.open());
  EXPECT_EQ(again.size(), 3u);
  EXPECT_EQ(again.stats().rejected, 0u);
  std::remove(path.c_str());
  std::remove((path + ".journal").c_str());
}

TEST(SummaryStoreJournal, CorruptRecordStopsReplayAtThePrefix) {
  const std::string path = temp_path("journal_bitflip.bin");
  std::remove(path.c_str());
  std::remove((path + ".journal").c_str());
  build_journal(path, 3);
  std::string bytes = read_file(path + ".journal");
  // Flip a byte in the middle of the file: the checksum of that record
  // fails, and — unlike the base file's length-prefixed framing — nothing
  // after an untrusted journal record can be trusted either.
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x5a);
  write_file(path + ".journal", bytes);

  SummaryStore store(path, journal_options());
  ASSERT_TRUE(store.open());
  EXPECT_LT(store.size(), 3u);
  EXPECT_EQ(store.stats().rejected, 1u);
  EXPECT_EQ(store.stats().journal_replayed, store.size());
  std::remove(path.c_str());
  std::remove((path + ".journal").c_str());
}

TEST(SummaryStoreJournal, FlushCompactsJournalIntoBaseFile) {
  const std::string path = temp_path("journal_compact.bin");
  std::remove(path.c_str());
  std::remove((path + ".journal").c_str());
  build_journal(path, 4);

  SummaryStore store(path, journal_options());
  ASSERT_TRUE(store.open());
  EXPECT_EQ(store.stats().journal_replayed, 4u);
  ASSERT_TRUE(store.flush());
  // The checkpoint moved every journaled record into the base file and
  // emptied the journal.
  EXPECT_EQ(read_file(path + ".journal").size(), 0u);
  ASSERT_TRUE(std::ifstream(path).good());

  SummaryStore reopened(path, journal_options());
  ASSERT_TRUE(reopened.open());
  EXPECT_EQ(reopened.size(), 4u);
  EXPECT_EQ(reopened.stats().loaded, 4u);
  EXPECT_EQ(reopened.stats().journal_replayed, 0u);
  std::remove(path.c_str());
  std::remove((path + ".journal").c_str());
}

TEST(SummaryStoreJournal, CommitCheckpointsWhenTheJournalGrowsPastTheCap) {
  const std::string path = temp_path("journal_checkpoint.bin");
  std::remove(path.c_str());
  std::remove((path + ".journal").c_str());
  // A 1-byte checkpoint threshold: the very first commit must checkpoint.
  ipa::CrossProgramCache cache;
  ipa::PortableSummary s = rich_summary();
  cache.insert(ipa::CacheKey{1, 101}, std::move(s));
  SummaryStore store(path, journal_options(4096, 1));
  ASSERT_TRUE(store.open());
  store.absorb(cache);
  ASSERT_TRUE(store.commit());
  EXPECT_TRUE(std::ifstream(path).good());  // base file written
  EXPECT_EQ(read_file(path + ".journal").size(), 0u);
  std::remove(path.c_str());
  std::remove((path + ".journal").c_str());
}

TEST(SummaryStoreJournal, SimulatedAppendFailureFallsBackToFullFlush) {
  if (!support::faultpoint::compiled_in()) GTEST_SKIP() << "faultpoints off";
  const std::string path = temp_path("journal_degraded.bin");
  std::remove(path.c_str());
  std::remove((path + ".journal").c_str());
  support::faultpoint::disarm_all();
  support::faultpoint::arm("store.journal.pre_append", "fail");

  ipa::CrossProgramCache cache;
  ipa::PortableSummary s = rich_summary();
  cache.insert(ipa::CacheKey{1, 101}, std::move(s));
  SummaryStore store(path, journal_options());
  ASSERT_TRUE(store.open());
  store.absorb(cache);  // WAL append "fails"; degraded mode kicks in
  support::faultpoint::disarm_all();
  ASSERT_TRUE(store.commit());  // must full-flush despite the tiny journal
  EXPECT_TRUE(std::ifstream(path).good());

  SummaryStore reopened(path, journal_options());
  ASSERT_TRUE(reopened.open());
  EXPECT_EQ(reopened.size(), 1u);  // nothing lost
  std::remove(path.c_str());
  std::remove((path + ".journal").c_str());
}

// --------------------------------------------------------------------------
// Warm-start batch runs
// --------------------------------------------------------------------------

// Two programs sharing a byte-identical helper AND a recursive helper: the
// store must cover both the analyzable and the SCC (recursive) summaries.
std::vector<driver::ProgramInput> batch_inputs() {
  const char* kProgramA = R"(
    int n;
    int acc;
    int a[100];
    int idx[100];
    int clamp(int v) {
      if (v < 0) { v = 0; }
      return v;
    }
    int rec(int k) {
      if (k > 0) { acc = acc + rec(k - 1); }
      return acc;
    }
    void main_loop() {
      acc = rec(n);
      for (int i = 0; i < n; i++) {
        a[idx[i]] = clamp(i);
      }
    }
  )";
  const char* kProgramB = R"(
    int n;
    int acc;
    int b[100];
    int clamp(int v) {
      if (v < 0) { v = 0; }
      return v;
    }
    int rec(int k) {
      if (k > 0) { acc = acc + rec(k - 1); }
      return acc;
    }
    void other() {
      acc = rec(n);
      for (int i = 0; i < n; i++) {
        b[i] = clamp(i);
      }
    }
  )";
  std::vector<driver::ProgramInput> inputs;
  inputs.push_back(driver::ProgramInput{"prog_a", kProgramA, {{"n", 1}}});
  inputs.push_back(driver::ProgramInput{"prog_b", kProgramB, {{"n", 1}}});
  return inputs;
}

// Zeroes every "total_ms" in the report tree — wall-clock is the one field
// legitimately different between byte-identical runs.
void canonicalize(support::json::Value& value) {
  if (value.is_object()) {
    for (auto& [key, child] : value.as_object()) {
      if (key == "total_ms") {
        child = support::json::Value(int64_t{0});
      } else {
        canonicalize(child);
      }
    }
  } else if (value.is_array()) {
    for (auto& child : value.as_array()) canonicalize(child);
  }
}

std::string canonical_report(const driver::BatchReport& report, unsigned threads) {
  support::json::Value json = driver::batch_report_to_json(report, threads, true);
  canonicalize(json);
  return json.dump(2);
}

TEST(StoreBatch, WarmRunHitsTheStoreAndReportsByteIdentically) {
  const std::string path = temp_path("warm.bin");
  std::remove(path.c_str());
  auto inputs = batch_inputs();
  driver::BatchOptions options;
  options.threads = 2;

  SummaryStore cold_store(path);
  ASSERT_TRUE(cold_store.open());
  driver::BatchReport cold = driver::run_with_store(inputs, options, &cold_store);
  ASSERT_EQ(cold.stats.failed, 0);
  EXPECT_EQ(cold.stats.store_hits, 0);
  EXPECT_GT(cold.stats.store_misses, 0);
  EXPECT_GT(cold.stats.store_flushed, 0);
  // The recursive helper got a combined-SCC content key and entered the
  // store alongside the analyzable summaries.
  EXPECT_GT(cold.stats.summary_scc, 0);

  SummaryStore warm_store(path);
  ASSERT_TRUE(warm_store.open());
  EXPECT_EQ(warm_store.stats().loaded, static_cast<size_t>(cold.stats.store_flushed));
  driver::BatchReport warm = driver::run_with_store(inputs, options, &warm_store);
  EXPECT_GT(warm.stats.store_hits, 0);
  EXPECT_GT(warm.stats.store_loaded, 0);
  EXPECT_GT(warm.stats.summary_scc, 0);

  // Verdicts and aggregates are identical cold vs warm (the store fields
  // themselves necessarily differ), and two warm runs — even at different
  // thread counts — are byte-identical reports modulo wall-clock.
  ASSERT_EQ(cold.programs.size(), warm.programs.size());
  for (size_t i = 0; i < cold.programs.size(); ++i) {
    EXPECT_EQ(cold.programs[i].result.output, warm.programs[i].result.output);
  }
  EXPECT_EQ(cold.stats.parallel, warm.stats.parallel);
  EXPECT_EQ(cold.stats.property_counts, warm.stats.property_counts);

  SummaryStore warm2_store(path);
  ASSERT_TRUE(warm2_store.open());
  driver::BatchReport warm2 = driver::run_with_store(inputs, options, &warm2_store);
  EXPECT_TRUE(warm.stats == warm2.stats);
  EXPECT_EQ(canonical_report(warm, 2), canonical_report(warm2, 2));

  driver::BatchOptions serial = options;
  serial.threads = 1;
  SummaryStore warm3_store(path);
  ASSERT_TRUE(warm3_store.open());
  driver::BatchReport warm3 = driver::run_with_store(inputs, serial, &warm3_store);
  EXPECT_TRUE(warm.stats == warm3.stats);
  std::remove(path.c_str());
}

TEST(StoreBatch, SameNameDifferentBodyRecursiveHelpersDoNotCollide) {
  // Both programs define a recursive `rec`, with DIFFERENT bodies writing
  // different globals. If SCC content keys collided on the name, program B
  // would rehydrate A's summary and mis-attribute the may-write set; the
  // loop verdicts would then differ from a no-sharing run.
  const char* kProgramA = R"(
    int n;
    int acc;
    int a[100];
    int rec(int k) {
      if (k > 0) { acc = acc + rec(k - 1); }
      return acc;
    }
    void f() {
      acc = rec(n);
      for (int i = 0; i < n; i++) { a[i] = i; }
    }
  )";
  const char* kProgramB = R"(
    int n;
    int other;
    int a[100];
    int rec(int k) {
      if (k > 1) { other = other + rec(k - 2); }
      return other;
    }
    void f() {
      other = rec(n);
      for (int i = 0; i < n; i++) { a[i] = i; }
    }
  )";
  std::vector<driver::ProgramInput> inputs;
  inputs.push_back(driver::ProgramInput{"prog_a", kProgramA, {{"n", 1}}});
  inputs.push_back(driver::ProgramInput{"prog_b", kProgramB, {{"n", 1}}});

  const std::string path = temp_path("scc_collide.bin");
  std::remove(path.c_str());
  driver::BatchOptions options;
  options.threads = 1;
  SummaryStore store(path);
  ASSERT_TRUE(store.open());
  driver::BatchReport shared = driver::run_with_store(inputs, options, &store);

  SummaryStore warm(path);
  ASSERT_TRUE(warm.open());
  driver::BatchReport warm_run = driver::run_with_store(inputs, options, &warm);

  driver::BatchOptions isolated = options;
  isolated.shared_summaries = false;
  driver::BatchReport unshared = driver::BatchAnalyzer(isolated).run(inputs);

  ASSERT_EQ(shared.programs.size(), unshared.programs.size());
  for (size_t i = 0; i < shared.programs.size(); ++i) {
    EXPECT_EQ(shared.programs[i].result.output, unshared.programs[i].result.output);
    EXPECT_EQ(warm_run.programs[i].result.output, unshared.programs[i].result.output);
  }
  EXPECT_EQ(shared.stats.parallel, unshared.stats.parallel);
  EXPECT_EQ(warm_run.stats.parallel, unshared.stats.parallel);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sspar::store
