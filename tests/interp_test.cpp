#include <gtest/gtest.h>

#include "frontend/frontend.h"
#include "interp/interpreter.h"
#include "support/diagnostics.h"

namespace sspar::interp {
namespace {

ast::ParseResult parse(const char* source) {
  support::DiagnosticEngine diags;
  auto result = ast::parse_and_resolve(source, diags);
  EXPECT_TRUE(result.ok) << diags.dump();
  return result;
}

TEST(Interpreter, ArithmeticAndControlFlow) {
  auto r = parse(R"(
    int out;
    void f() {
      out = 0;
      for (int i = 1; i <= 10; i++) {
        if (i % 2 == 0) {
          out = out + i;
        }
      }
    }
  )");
  Interpreter interp(*r.program);
  interp.run("f");
  EXPECT_EQ(interp.scalar_int("out"), 2 + 4 + 6 + 8 + 10);
}

TEST(Interpreter, DoubleArithmetic) {
  auto r = parse(R"(
    double x;
    void f() {
      x = 1.5;
      x = x * 4.0 + 1.0;
    }
  )");
  Interpreter interp(*r.program);
  interp.run("f");
  EXPECT_DOUBLE_EQ(interp.scalar_double("x"), 7.0);
}

TEST(Interpreter, ArraysAndMultiDim) {
  auto r = parse(R"(
    int m[3][4];
    int total;
    void f() {
      for (int i = 0; i < 3; i++) {
        for (int j = 0; j < 4; j++) {
          m[i][j] = i * 10 + j;
        }
      }
      total = m[2][3] + m[0][1];
    }
  )");
  Interpreter interp(*r.program);
  interp.run("f");
  EXPECT_EQ(interp.scalar_int("total"), 23 + 1);
}

TEST(Interpreter, WhileBreakContinue) {
  auto r = parse(R"(
    int n;
    void f() {
      n = 0;
      while (1) {
        n++;
        if (n == 3) continue;
        if (n >= 7) break;
      }
    }
  )");
  Interpreter interp(*r.program);
  interp.run("f");
  EXPECT_EQ(interp.scalar_int("n"), 7);
}

TEST(Interpreter, PostIncrementSubscript) {
  auto r = parse(R"(
    int k;
    int out[10];
    void f() {
      k = 0;
      for (int i = 0; i < 5; i++) {
        out[k++] = i * i;
      }
    }
  )");
  Interpreter interp(*r.program);
  interp.run("f");
  EXPECT_EQ(interp.scalar_int("k"), 5);
  EXPECT_EQ(interp.array_int("out")[3], 9);
}

TEST(Interpreter, TernaryAndLogical) {
  auto r = parse(R"(
    int a; int b;
    void f() {
      a = 5 > 3 && 2 > 1 ? 10 : 20;
      b = 0 || 5 < 3 ? 1 : 2;
    }
  )");
  Interpreter interp(*r.program);
  interp.run("f");
  EXPECT_EQ(interp.scalar_int("a"), 10);
  EXPECT_EQ(interp.scalar_int("b"), 2);
}

TEST(Interpreter, ShortCircuitPreventsSideEffect) {
  auto r = parse(R"(
    int x; int guard;
    void f() {
      x = 0;
      guard = 0;
      if (guard && x++) {
        x = 100;
      }
    }
  )");
  Interpreter interp(*r.program);
  interp.run("f");
  EXPECT_EQ(interp.scalar_int("x"), 0);  // x++ never evaluated
}

TEST(Interpreter, OutOfBoundsThrows) {
  auto r = parse(R"(
    int a[4];
    void f() {
      a[4] = 1;
    }
  )");
  Interpreter interp(*r.program);
  EXPECT_THROW(interp.run("f"), std::runtime_error);
}

TEST(Interpreter, StepLimitStopsInfiniteLoop) {
  auto r = parse(R"(
    void f() {
      while (1) {
      }
    }
  )");
  Interpreter interp(*r.program);
  interp.set_step_limit(10'000);
  EXPECT_THROW(interp.run("f"), std::runtime_error);
}

TEST(Interpreter, ZeroArgCalls) {
  auto r = parse(R"(
    int x;
    void inc() {
      x = x + 1;
    }
    void f() {
      x = 40;
      inc();
      inc();
    }
  )");
  Interpreter interp(*r.program);
  interp.run("f");
  EXPECT_EQ(interp.scalar_int("x"), 42);
}

TEST(Interpreter, SnapshotEquality) {
  auto r = parse(R"(
    int a[4]; int s;
    void f() {
      s = 1;
      a[0] = 2;
    }
  )");
  Interpreter i1(*r.program);
  i1.run("f");
  Interpreter i2(*r.program);
  i2.run("f");
  auto s1 = i1.snapshot();
  auto s2 = i2.snapshot();
  EXPECT_TRUE(Interpreter::equal_state(*s1, *s2));
  i2.set_scalar("s", int64_t{5});
  auto s3 = i2.snapshot();
  std::string diff;
  EXPECT_FALSE(Interpreter::equal_state(*s1, *s3, {}, &diff));
  EXPECT_EQ(diff, "scalar s");
  EXPECT_TRUE(Interpreter::equal_state(*s1, *s3, {"s"}));
}

// --------------------------------------------------------------------------
// Dynamic dependence oracle
// --------------------------------------------------------------------------

const ast::For* loop_by_id(const ast::Program& program, const char* func, int id) {
  for (const ast::For* loop : ast::collect_loops(program.find_function(func)->body.get())) {
    if (loop->loop_id == id) return loop;
  }
  return nullptr;
}

TEST(Oracle, IndependentLoopIsDependenceFree) {
  auto r = parse(R"(
    int a[10];
    void f() {
      for (int i = 0; i < 10; i++) {
        a[i] = i;
      }
    }
  )");
  Interpreter interp(*r.program);
  auto report = interp.analyze_loop_dependences("f", loop_by_id(*r.program, "f", 0));
  EXPECT_TRUE(report.executed);
  EXPECT_TRUE(report.dependence_free) << report.first_conflict;
}

TEST(Oracle, FlowDependenceDetected) {
  auto r = parse(R"(
    int a[10];
    void f() {
      a[0] = 1;
      for (int i = 1; i < 10; i++) {
        a[i] = a[i-1] + 1;
      }
    }
  )");
  Interpreter interp(*r.program);
  auto report = interp.analyze_loop_dependences("f", loop_by_id(*r.program, "f", 0));
  EXPECT_FALSE(report.dependence_free);
  EXPECT_GT(report.conflicting_locations, 0u);
}

TEST(Oracle, OutputDependenceDetected) {
  auto r = parse(R"(
    int a[10];
    void f() {
      for (int i = 0; i < 10; i++) {
        a[i / 2] = i;
      }
    }
  )");
  Interpreter interp(*r.program);
  auto report = interp.analyze_loop_dependences("f", loop_by_id(*r.program, "f", 0));
  EXPECT_FALSE(report.dependence_free);
}

TEST(Oracle, PrivatizableScalarIsNotADependence) {
  auto r = parse(R"(
    int t;
    int a[10]; int b[10];
    void f() {
      for (int i = 0; i < 10; i++) {
        t = b[i] * 2;
        a[i] = t;
      }
    }
  )");
  Interpreter interp(*r.program);
  auto report = interp.analyze_loop_dependences("f", loop_by_id(*r.program, "f", 0));
  EXPECT_TRUE(report.dependence_free) << report.first_conflict;
}

TEST(Oracle, ScalarRecurrenceIsADependence) {
  auto r = parse(R"(
    int s;
    int a[10];
    void f() {
      s = 0;
      for (int i = 0; i < 10; i++) {
        s = s + a[i];
      }
    }
  )");
  Interpreter interp(*r.program);
  auto report = interp.analyze_loop_dependences("f", loop_by_id(*r.program, "f", 0));
  EXPECT_FALSE(report.dependence_free);
}

TEST(Oracle, InjectiveIndirectionIsDependenceFree) {
  auto r = parse(R"(
    int perm[10];
    int out[10];
    void f() {
      for (int i = 0; i < 10; i++) {
        perm[i] = 9 - i;
      }
      for (int i = 0; i < 10; i++) {
        out[perm[i]] = i;
      }
    }
  )");
  Interpreter interp(*r.program);
  auto report = interp.analyze_loop_dependences("f", loop_by_id(*r.program, "f", 1));
  EXPECT_TRUE(report.dependence_free) << report.first_conflict;
}

TEST(Oracle, DuplicateIndirectionIsCaught) {
  auto r = parse(R"(
    int idx[10];
    int out[10];
    void f() {
      for (int i = 0; i < 10; i++) {
        idx[i] = i / 2;
      }
      for (int i = 0; i < 10; i++) {
        out[idx[i]] = i;
      }
    }
  )");
  Interpreter interp(*r.program);
  auto report = interp.analyze_loop_dependences("f", loop_by_id(*r.program, "f", 1));
  EXPECT_FALSE(report.dependence_free);
}

TEST(Oracle, MultipleInvocationsAllChecked) {
  auto r = parse(R"(
    int a[10];
    void f() {
      for (int outer = 0; outer < 3; outer++) {
        for (int i = 0; i < 10; i++) {
          a[i] = a[i] + outer;
        }
      }
    }
  )");
  Interpreter interp(*r.program);
  auto report = interp.analyze_loop_dependences("f", loop_by_id(*r.program, "f", 1));
  EXPECT_EQ(report.invocations, 3u);
  EXPECT_TRUE(report.dependence_free) << report.first_conflict;
}

// --------------------------------------------------------------------------
// Permuted execution
// --------------------------------------------------------------------------

TEST(Permuted, ParallelLoopStateMatchesSequential) {
  const char* source = R"(
    int a[64]; int b[64];
    void f() {
      for (int i = 0; i < 64; i++) {
        b[i] = 3 * i + 1;
      }
      for (int i = 0; i < 64; i++) {
        a[i] = b[i] * b[i];
      }
    }
  )";
  auto r = parse(source);
  Interpreter seq(*r.program);
  seq.run("f");
  auto expected = seq.snapshot();
  for (uint64_t seed : {1u, 7u, 42u}) {
    Interpreter perm(*r.program);
    perm.run_permuted("f", loop_by_id(*r.program, "f", 1), seed);
    auto got = perm.snapshot();
    EXPECT_TRUE(Interpreter::equal_state(*expected, *got)) << "seed " << seed;
  }
}

TEST(Permuted, SequentialLoopStateDiffers) {
  // Prefix sum: permuting iterations must corrupt the result for some seed.
  const char* source = R"(
    int a[64];
    void f() {
      a[0] = 1;
      for (int i = 1; i < 64; i++) {
        a[i] = a[i-1] + 1;
      }
    }
  )";
  auto r = parse(source);
  Interpreter seq(*r.program);
  seq.run("f");
  auto expected = seq.snapshot();
  bool any_diff = false;
  for (uint64_t seed : {1u, 7u, 42u}) {
    Interpreter perm(*r.program);
    perm.run_permuted("f", loop_by_id(*r.program, "f", 0), seed);
    auto got = perm.snapshot();
    if (!Interpreter::equal_state(*expected, *got)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace sspar::interp
