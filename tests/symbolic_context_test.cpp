#include <gtest/gtest.h>

#include "symbolic/context.h"

namespace sspar::sym {
namespace {

class ContextTest : public ::testing::Test {
 protected:
  SymbolTable syms;
  SymbolId i = syms.intern("i");
  SymbolId n = syms.intern("n");
  SymbolId rowptr = syms.intern("rowptr");

  ExprPtr I() { return make_sym(i); }
  ExprPtr N() { return make_sym(n); }
  ExprPtr elem(const ExprPtr& idx) { return make_array_elem(rowptr, idx); }
};

TEST_F(ContextTest, ConstComparisons) {
  AssumptionContext ctx;
  EXPECT_EQ(prove_ge(make_const(3), make_const(3), ctx), Truth::True);
  EXPECT_EQ(prove_gt(make_const(3), make_const(3), ctx), Truth::False);
  EXPECT_EQ(prove_lt(make_const(2), make_const(3), ctx), Truth::True);
}

TEST_F(ContextTest, SymbolBoundsDecide) {
  AssumptionContext ctx;
  ctx.assume_ge(n, 1);
  // n - 1 >= 0
  EXPECT_EQ(prove_ge(N(), make_const(1), ctx), Truth::True);
  // 2n >= n requires n >= 0 knowledge
  EXPECT_EQ(prove_ge(mul_const(N(), 2), N(), ctx), Truth::True);
  // n >= 2 is unknown
  EXPECT_EQ(prove_ge(N(), make_const(2), ctx), Truth::Unknown);
}

TEST_F(ContextTest, UpperBoundDisproves) {
  AssumptionContext ctx;
  ctx.assume(i, Range::of_consts(0, 9));
  EXPECT_EQ(prove_ge(I(), make_const(10), ctx), Truth::False);
  EXPECT_EQ(prove_lt(I(), make_const(10), ctx), Truth::True);
}

TEST_F(ContextTest, IdenticalExpressionsEqual) {
  AssumptionContext ctx;
  auto e = add(elem(I()), make_const(2));
  EXPECT_EQ(prove_eq(e, e, ctx), Truth::True);
  EXPECT_EQ(prove_ge(e, e, ctx), Truth::True);
}

TEST_F(ContextTest, ArrayElemCancellation) {
  AssumptionContext ctx;
  // rowptr[i] + 1 > rowptr[i] even with no facts: the array terms cancel.
  EXPECT_EQ(prove_gt(add(elem(I()), make_const(1)), elem(I()), ctx), Truth::True);
}

TEST_F(ContextTest, MonotonicityFactProvesAdjacentOrder) {
  AssumptionContext ctx;
  // Install the Monotonic_inc fact: rowptr[hi] - rowptr[lo] in [0 : +inf)
  // whenever hi - lo is a non-negative constant.
  ctx.set_elem_diff([this](SymbolId array, const ExprPtr& hi_idx,
                           const ExprPtr& lo_idx) -> std::optional<Range> {
    if (array != rowptr) return std::nullopt;
    auto d = const_value(sub(hi_idx, lo_idx));
    if (!d) return std::nullopt;
    if (*d >= 0) return Range::of(make_const(0), nullptr);
    return Range::of(nullptr, make_const(0));
  });
  // rowptr[i+1] >= rowptr[i]
  EXPECT_EQ(prove_ge(elem(add(I(), make_const(1))), elem(I()), ctx), Truth::True);
  // rowptr[i] <= rowptr[i+2]
  EXPECT_EQ(prove_le(elem(I()), elem(add(I(), make_const(2))), ctx), Truth::True);
  // The key Range Test query (paper Section 5): upper bound of iteration i is
  // rowptr[i] - 1, lower bound of iteration i+1 is rowptr[i]:
  EXPECT_EQ(prove_lt(sub(elem(I()), make_const(1)), elem(I()), ctx), Truth::True);
  // Strictness is NOT provable from a non-strict fact:
  EXPECT_EQ(prove_gt(elem(add(I(), make_const(1))), elem(I()), ctx), Truth::Unknown);
}

TEST_F(ContextTest, StepRangeFactScalesWithDistance) {
  AssumptionContext ctx;
  ctx.assume_ge(n, 1);
  // Strict monotonicity with step in [7 : 7]: rowptr[hi]-rowptr[lo] = 7*(hi-lo).
  ctx.set_elem_diff([this](SymbolId array, const ExprPtr& hi_idx,
                           const ExprPtr& lo_idx) -> std::optional<Range> {
    if (array != rowptr) return std::nullopt;
    auto d = const_value(sub(hi_idx, lo_idx));
    if (!d) return std::nullopt;
    return Range::of_consts(7 * *d, 7 * *d);
  });
  // Window disjointness: rowptr[i]+6 < rowptr[i+1]
  EXPECT_EQ(prove_lt(add(elem(I()), make_const(6)), elem(add(I(), make_const(1))), ctx),
            Truth::True);
  // But rowptr[i]+7 is not strictly less.
  EXPECT_EQ(prove_lt(add(elem(I()), make_const(7)), elem(add(I(), make_const(1))), ctx),
            Truth::False);
}

TEST_F(ContextTest, ElemValueFactsBound) {
  SymbolId rowsize = syms.intern("rowsize");
  AssumptionContext ctx;
  SymbolId columnlen = syms.intern("COLUMNLEN");
  ctx.assume_ge(columnlen, 1);
  ctx.set_elem_value([&](SymbolId array, const ExprPtr&) -> std::optional<Range> {
    if (array != rowsize) return std::nullopt;
    return Range::of(make_const(0), make_sym(columnlen));
  });
  // rowsize[i] >= 0 via value fact.
  EXPECT_EQ(prove_ge(make_array_elem(rowsize, I()), make_const(0), ctx), Truth::True);
  // rowsize[i] + 1 > 0
  EXPECT_EQ(prove_gt(add(make_array_elem(rowsize, I()), make_const(1)), make_const(0), ctx),
            Truth::True);
}

TEST_F(ContextTest, SymbolicBoundIteration) {
  // step lower bound is the symbol K, and K >= 3: prove diff >= 2.
  SymbolId k = syms.intern("K");
  AssumptionContext ctx;
  ctx.assume_ge(k, 3);
  ctx.set_elem_diff([this, k](SymbolId array, const ExprPtr& hi_idx,
                              const ExprPtr& lo_idx) -> std::optional<Range> {
    if (array != rowptr) return std::nullopt;
    auto d = const_value(sub(hi_idx, lo_idx));
    if (!d || *d != 1) return std::nullopt;
    return Range::of(make_sym(k), nullptr);
  });
  EXPECT_EQ(prove_ge(sub(elem(add(I(), make_const(1))), elem(I())), make_const(2), ctx),
            Truth::True);
}

TEST_F(ContextTest, DivAtomBounds) {
  AssumptionContext ctx;
  ctx.assume(n, Range::of(make_const(1), nullptr));
  // n*(n-1)/2 >= 0 when n >= 1: numerator n*n - n has lower bound... this needs
  // the Mul rule: n*n >= 0 since n >= 0.
  auto tri = div_floor(mul(N(), sub(N(), make_const(1))), make_const(2));
  EXPECT_EQ(prove_ge(tri, make_const(0), ctx), Truth::Unknown);
  // A simpler exact case: n/2 >= 0 when n >= 0.
  auto half = div_floor(N(), make_const(2));
  EXPECT_EQ(prove_ge(half, make_const(0), ctx), Truth::True);
}

TEST_F(ContextTest, ModAtomBounds) {
  AssumptionContext ctx;
  // (x mod 8) in [0:7] regardless of x.
  SymbolId x = syms.intern("x");
  auto m = mod(make_sym(x), make_const(8));
  EXPECT_EQ(prove_ge(m, make_const(0), ctx), Truth::True);
  EXPECT_EQ(prove_lt(m, make_const(8), ctx), Truth::True);
}

TEST_F(ContextTest, ProveNonnegOnRanges) {
  AssumptionContext ctx;
  ctx.assume_ge(n, 0);
  EXPECT_EQ(prove_nonneg(Range::of(make_const(0), N()), ctx), Truth::True);
  // prove_pos reports on the lower bound: 0 >= 1 is provably false.
  EXPECT_EQ(prove_pos(Range::of(make_const(0), N()), ctx), Truth::False);
  EXPECT_EQ(prove_pos(Range::of(make_const(1), nullptr), ctx), Truth::True);
  EXPECT_EQ(prove_nonneg(Range::bottom(), ctx), Truth::Unknown);
}

// Parameterized soundness sweep for the prover: for constant-bounded symbols,
// prove_ge must never contradict exhaustive evaluation.
struct ProverCase {
  int64_t ilo, ihi;  // bounds assumed for symbol i
  int64_t c1, c0;    // lhs = c1*i + c0, rhs = 0
};

class ProverSoundness : public ::testing::TestWithParam<ProverCase> {};

TEST_P(ProverSoundness, NeverContradictsExhaustiveCheck) {
  const auto& p = GetParam();
  SymbolTable syms;
  SymbolId i = syms.intern("i");
  AssumptionContext ctx;
  ctx.assume(i, Range::of_consts(p.ilo, p.ihi));
  auto lhs = add(mul_const(make_sym(i), p.c1), make_const(p.c0));
  Truth verdict = prove_ge(lhs, make_const(0), ctx);
  bool all_ge = true, none_ge = true;
  for (int64_t v = p.ilo; v <= p.ihi; ++v) {
    if (p.c1 * v + p.c0 >= 0) {
      none_ge = false;
    } else {
      all_ge = false;
    }
  }
  if (verdict == Truth::True) {
    EXPECT_TRUE(all_ge);
  }
  if (verdict == Truth::False) {
    EXPECT_TRUE(none_ge);
  }
  // For affine expressions over interval bounds the prover is also complete:
  if (all_ge) {
    EXPECT_EQ(verdict, Truth::True);
  }
  if (none_ge) {
    EXPECT_EQ(verdict, Truth::False);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, ProverSoundness,
                         ::testing::Values(ProverCase{0, 9, 1, 0}, ProverCase{0, 9, -1, 9},
                                           ProverCase{0, 9, -1, 8}, ProverCase{1, 5, 2, -2},
                                           ProverCase{-5, -1, 1, 0}, ProverCase{-5, -1, -1, -1},
                                           ProverCase{3, 3, 5, -15}, ProverCase{0, 0, 0, 0}));

}  // namespace
}  // namespace sspar::sym
