// BatchAnalyzer unit tests: aggregate correctness, negative paths (malformed
// programs must not abort the batch), and option handling.
#include <gtest/gtest.h>

#include <mutex>
#include <set>
#include <thread>

#include "corpus/corpus.h"
#include "driver/batch_analyzer.h"

namespace sspar::driver {
namespace {

const char* kGoodSource = R"(
  int n;
  int perm[100];
  double a[100];
  void f(void) {
    for (int i = 0; i < n; i++) {
      perm[i] = i;
    }
    for (int i = 0; i < n; i++) {
      a[perm[i]] = a[perm[i]] * 2.0;
    }
  }
)";

ProgramInput good(const std::string& name) {
  return ProgramInput{name, kGoodSource, {{"n", 1}}};
}

TEST(BatchAnalyzer, EmptyBatchReturnsEmptyStats) {
  BatchAnalyzer analyzer;
  BatchReport report = analyzer.run({});
  EXPECT_TRUE(report.programs.empty());
  EXPECT_EQ(report.stats, BatchStats{});
}

TEST(BatchAnalyzer, AnalyzesASingleProgram) {
  BatchAnalyzer analyzer(BatchOptions{/*threads=*/2, {}});
  BatchReport report = analyzer.run({good("p0")});
  ASSERT_EQ(report.programs.size(), 1u);
  const ProgramReport& p = report.programs[0];
  EXPECT_TRUE(p.ok) << p.error;
  EXPECT_EQ(p.name, "p0");
  EXPECT_EQ(p.loops, 2);
  EXPECT_GE(p.parallel, 1);
  EXPECT_GE(p.subscripted, 1);
  EXPECT_EQ(report.stats.programs, 1);
  EXPECT_EQ(report.stats.failed, 0);
  EXPECT_EQ(report.stats.loops, 2);
}

TEST(BatchAnalyzer, MalformedSourceYieldsDiagnosticNotAbort) {
  BatchAnalyzer analyzer(BatchOptions{/*threads=*/4, {}});
  std::vector<ProgramInput> inputs = {
      good("ok-before"),
      ProgramInput{"bad-syntax", "void f( { this is not C }", {}},
      ProgramInput{"bad-sema", "void f(void) { undeclared[0] = 1; }", {}},
      good("ok-after"),
  };
  BatchReport report = analyzer.run(inputs);
  ASSERT_EQ(report.programs.size(), 4u);

  EXPECT_TRUE(report.programs[0].ok);
  EXPECT_FALSE(report.programs[1].ok);
  EXPECT_FALSE(report.programs[1].error.empty()) << "diagnostic must name the failure";
  EXPECT_FALSE(report.programs[2].ok);
  EXPECT_FALSE(report.programs[2].error.empty());
  EXPECT_TRUE(report.programs[3].ok) << "batch must continue past malformed entries";

  EXPECT_EQ(report.stats.programs, 4);
  EXPECT_EQ(report.stats.failed, 2);
  // Failed programs contribute nothing to loop counts.
  EXPECT_EQ(report.stats.loops, 4);
}

TEST(BatchAnalyzer, ReportsComeBackInInputOrder) {
  BatchAnalyzer analyzer(BatchOptions{/*threads=*/8, {}});
  std::vector<ProgramInput> inputs;
  for (int i = 0; i < 40; ++i) inputs.push_back(good("p" + std::to_string(i)));
  BatchReport report = analyzer.run(inputs);
  ASSERT_EQ(report.programs.size(), inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(report.programs[i].name, inputs[i].name);
  }
}

TEST(BatchAnalyzer, CorpusInputsCoverTheWholeCorpus) {
  auto inputs = BatchAnalyzer::corpus_inputs();
  ASSERT_EQ(inputs.size(), corpus::all_entries().size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(inputs[i].name, corpus::all_entries()[i].name);
    EXPECT_FALSE(inputs[i].source.empty());
  }
}

TEST(BatchAnalyzer, ThreadClamping) {
  // 0 = hardware_concurrency() (one lane per logical core), falling back to
  // 2 when the hardware cannot be queried — the BatchOptions contract.
  const unsigned hw = std::thread::hardware_concurrency();
  EXPECT_EQ(BatchAnalyzer(BatchOptions{0, {}}).threads(), hw == 0 ? 2u : hw);
  // Explicit requests are honored as-is; no clamp.
  EXPECT_EQ(BatchAnalyzer(BatchOptions{1, {}}).threads(), 1u);
  EXPECT_EQ(BatchAnalyzer(BatchOptions{3, {}}).threads(), 3u);
}

TEST(BatchAnalyzer, SingleThreadRunsSeriallyOnCallingThread) {
  BatchAnalyzer analyzer(BatchOptions{/*threads=*/1, {}});
  std::vector<ProgramInput> inputs;
  for (int i = 0; i < 6; ++i) inputs.push_back(good("p" + std::to_string(i)));

  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::string> streamed;
  std::vector<std::thread::id> callback_threads;
  BatchReport report = analyzer.run(inputs, [&](const ProgramReport& p) {
    streamed.push_back(p.name);
    callback_threads.push_back(std::this_thread::get_id());
  });

  // Serial mode: every report was produced on the calling thread, in input
  // order — no pool threads were involved at all.
  ASSERT_EQ(streamed.size(), inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(streamed[i], inputs[i].name);
    EXPECT_EQ(callback_threads[i], caller);
  }
  EXPECT_EQ(report.stats.failed, 0);
  // Serial and concurrent runs aggregate identically.
  EXPECT_EQ(report.stats, BatchAnalyzer(BatchOptions{4, {}}).run(inputs).stats);
}

TEST(BatchAnalyzer, StreamingCallbackSeesEveryReportOnceConcurrently) {
  BatchAnalyzer analyzer(BatchOptions{/*threads=*/4, {}});
  std::vector<ProgramInput> inputs;
  for (int i = 0; i < 24; ++i) inputs.push_back(good("p" + std::to_string(i)));
  inputs.push_back(ProgramInput{"broken", "void f( {", {}});

  std::mutex seen_mutex;
  std::multiset<std::string> seen;
  BatchReport report = analyzer.run(inputs, [&](const ProgramReport& p) {
    // The analyzer serializes callback invocations, but guard anyway so the
    // test itself is clean under TSan-style analysis.
    std::lock_guard<std::mutex> lock(seen_mutex);
    seen.insert(p.name);
  });

  // Exactly one callback per input, regardless of completion order.
  ASSERT_EQ(seen.size(), inputs.size());
  for (const ProgramInput& input : inputs) {
    EXPECT_EQ(seen.count(input.name), 1u) << input.name;
  }
  // Aggregation stays input-ordered and complete.
  ASSERT_EQ(report.programs.size(), inputs.size());
  EXPECT_EQ(report.programs.back().name, "broken");
  EXPECT_EQ(report.stats.failed, 1);
}

TEST(BatchAnalyzer, FailedProgramsCarryStructuredDiagnostics) {
  BatchAnalyzer analyzer(BatchOptions{1, {}});
  BatchReport report = analyzer.run({ProgramInput{"bad", "void f() { y = 1; }", {}}});
  ASSERT_EQ(report.programs.size(), 1u);
  const ProgramReport& p = report.programs[0];
  EXPECT_FALSE(p.ok);
  ASSERT_FALSE(p.result.diags.empty());
  EXPECT_EQ(p.result.diags[0].code, sspar::support::DiagCode::SemaUndeclared);
  EXPECT_TRUE(p.result.diags[0].location.valid());
}

TEST(BatchAnalyzer, PropertyKeyStripsDetail) {
  EXPECT_EQ(property_key("monotonic non-decreasing bounds"), "monotonic");
  EXPECT_EQ(property_key("subset-injective (guarded)"), "subset-injective");
  EXPECT_EQ(property_key("affine"), "affine");
}

}  // namespace
}  // namespace sspar::driver
