#include <gtest/gtest.h>

#include <numeric>

#include "kernels/csr.h"
#include "kernels/npb_cg.h"
#include "kernels/pattern_kernels.h"
#include "runtime/inspector.h"

namespace sspar::kern {
namespace {

TEST(Csr, FromTriplesSortsAndMergesDuplicates) {
  std::vector<int64_t> row = {1, 0, 1, 1};
  std::vector<int64_t> col = {2, 0, 2, 0};
  std::vector<double> val = {1.0, 5.0, 2.0, 7.0};
  Csr a = Csr::from_triples(2, 3, row, col, val);
  EXPECT_EQ(a.nnz(), 3);
  ASSERT_EQ(a.rowptr, (std::vector<int64_t>{0, 1, 3}));
  EXPECT_EQ(a.colidx, (std::vector<int64_t>{0, 0, 2}));
  EXPECT_DOUBLE_EQ(a.values[0], 5.0);
  EXPECT_DOUBLE_EQ(a.values[1], 7.0);
  EXPECT_DOUBLE_EQ(a.values[2], 3.0);  // 1.0 + 2.0 merged
}

TEST(Csr, RandomHasMonotonicRowptr) {
  Csr a = Csr::random(64, 64, 0.1, 42);
  EXPECT_TRUE(rt::is_nondecreasing(a.rowptr));
  EXPECT_EQ(a.rowptr.size(), 65u);
  EXPECT_EQ(static_cast<int64_t>(a.values.size()), a.nnz());
}

TEST(Csr, SpmvSerialMatchesDense) {
  std::vector<int64_t> row = {0, 0, 1};
  std::vector<int64_t> col = {0, 1, 1};
  std::vector<double> val = {2.0, 3.0, 4.0};
  Csr a = Csr::from_triples(2, 2, row, col, val);
  std::vector<double> x = {1.0, 10.0};
  std::vector<double> y(2, 0.0);
  spmv_serial(a, x, y);
  EXPECT_DOUBLE_EQ(y[0], 2.0 + 30.0);
  EXPECT_DOUBLE_EQ(y[1], 40.0);
}

class SpmvParallelSweep : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

TEST_P(SpmvParallelSweep, MatchesSerial) {
  auto [size, threads] = GetParam();
  Csr a = Csr::random(size, size, 0.05, 7);
  std::vector<double> x(static_cast<size_t>(size));
  for (size_t i = 0; i < x.size(); ++i) x[i] = 0.01 * static_cast<double>(i % 97);
  std::vector<double> y_serial(static_cast<size_t>(size), 0.0);
  std::vector<double> y_parallel(static_cast<size_t>(size), 0.0);
  spmv_serial(a, x, y_serial);
  rt::ThreadPool pool(threads);
  spmv_parallel(a, x, y_parallel, pool);
  for (size_t i = 0; i < y_serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(y_serial[i], y_parallel[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, SpmvParallelSweep,
                         ::testing::Combine(::testing::Values(1, 17, 256),
                                            ::testing::Values(1u, 2u, 4u, 8u)));

// --------------------------------------------------------------------------
// NPB CG
// --------------------------------------------------------------------------

TEST(NpbCg, RandlcMatchesReference) {
  // First values of the NPB sequence from seed 314159265.0 with the standard
  // multiplier; the identity x_{k+1} = a*x_k mod 2^46 must hold exactly.
  double x = 314159265.0;
  double r1 = randlc(&x, 1220703125.0);
  EXPECT_GT(r1, 0.0);
  EXPECT_LT(r1, 1.0);
  // Cross-check against a 128-bit integer reference implementation.
  unsigned __int128 xi = 314159265u;
  const unsigned __int128 ai = 1220703125u;
  const unsigned __int128 mod46 = (static_cast<unsigned __int128>(1) << 46);
  double y = 314159265.0;
  for (int i = 0; i < 100; ++i) {
    xi = (xi * ai) % mod46;
    randlc(&y, 1220703125.0);
    EXPECT_EQ(static_cast<double>(static_cast<uint64_t>(xi)), y) << "step " << i;
  }
}

TEST(NpbCg, ClassParamsMatchOfficialTables) {
  EXPECT_EQ(cg_params(CgClass::S).na, 1400);
  EXPECT_EQ(cg_params(CgClass::S).nonzer, 7);
  EXPECT_EQ(cg_params(CgClass::A).na, 14000);
  EXPECT_EQ(cg_params(CgClass::A).niter, 15);
  EXPECT_EQ(cg_params(CgClass::B).na, 75000);
  EXPECT_EQ(cg_params(CgClass::C).shift, 110.0);
  EXPECT_EQ(cg_params("W").na, 7000);
  EXPECT_THROW(cg_params("X"), std::invalid_argument);
}

TEST(NpbCg, ClassSVerifiesSerial) {
  CgBenchmark bench(cg_params(CgClass::S));
  CgResult result = bench.run(CgMode::Serial);
  EXPECT_TRUE(result.verified) << "zeta = " << result.zeta;
  EXPECT_NEAR(result.zeta, 8.5971775078648, 1e-10);
  EXPECT_GT(result.nnz, 0);
}

TEST(NpbCg, ClassSVerifiesParallelSS) {
  rt::ThreadPool pool(4);
  CgBenchmark bench(cg_params(CgClass::S));
  CgResult result = bench.run(CgMode::ParallelSS, &pool);
  EXPECT_TRUE(result.verified) << "zeta = " << result.zeta;
}

TEST(NpbCg, ClassWVerifiesSerialAndParallel) {
  CgBenchmark bench(cg_params(CgClass::W));
  CgResult serial = bench.run(CgMode::Serial);
  EXPECT_TRUE(serial.verified) << "zeta = " << serial.zeta;
  EXPECT_NEAR(serial.zeta, 10.362595087124, 1e-10);
  rt::ThreadPool pool(8);
  CgResult parallel = bench.run(CgMode::ParallelSS, &pool);
  EXPECT_TRUE(parallel.verified) << "zeta = " << parallel.zeta;
  // SpMV partitioning must not perturb the result at all: the reductions
  // stay sequential in ParallelSS mode.
  EXPECT_EQ(serial.zeta, parallel.zeta);
}

TEST(NpbCg, TrimmedIterationsStillConverge) {
  CgBenchmark bench(cg_params(CgClass::S), /*niter_override=*/5);
  CgResult result = bench.run(CgMode::Serial);
  EXPECT_FALSE(result.verified);  // official value only holds for niter=15
  EXPECT_EQ(result.niter_run, 5);
  EXPECT_NEAR(result.zeta, 8.59, 0.5);  // same fixed point, fewer refinements
}

TEST(NpbCg, RowstrIsMonotonicAfterAssembly) {
  CgBenchmark bench(cg_params(CgClass::S));
  bench.run(CgMode::Serial);
  // The property the paper's analysis derives statically holds dynamically.
  EXPECT_TRUE(rt::is_nondecreasing(bench.rowstr()));
}

TEST(NpbCg, ColidxWithinBounds) {
  CgBenchmark bench(cg_params(CgClass::S));
  bench.run(CgMode::Serial);
  int64_t n = cg_params(CgClass::S).na;
  int64_t nnz = bench.rowstr().back();
  for (int64_t k = 0; k < nnz; ++k) {
    ASSERT_GE(bench.colidx()[static_cast<size_t>(k)], 0);
    ASSERT_LT(bench.colidx()[static_cast<size_t>(k)], n);
  }
}

// --------------------------------------------------------------------------
// Pattern kernels (Figs. 2-9): serial == parallel on randomized inputs
// --------------------------------------------------------------------------

class PatternSweep : public ::testing::TestWithParam<std::tuple<int64_t, unsigned, uint64_t>> {
 protected:
  int64_t n() const { return std::get<0>(GetParam()); }
  unsigned threads() const { return std::get<1>(GetParam()); }
  uint64_t seed() const { return std::get<2>(GetParam()); }
};

TEST_P(PatternSweep, InversePermutation) {
  auto kernel = InversePermutation::random(n(), seed());
  rt::ThreadPool pool(threads());
  EXPECT_EQ(kernel.run_serial(), kernel.run_parallel(pool));
}

TEST_P(PatternSweep, RowRangeProduct) {
  auto kernel = RowRangeProduct::random(n(), 5, seed());
  rt::ThreadPool pool(threads());
  EXPECT_EQ(kernel.run_serial(), kernel.run_parallel(pool));
}

TEST_P(PatternSweep, GuardedScatter) {
  auto kernel = GuardedScatter::random(n(), 0.6, seed());
  rt::ThreadPool pool(threads());
  EXPECT_EQ(kernel.run_serial(), kernel.run_parallel(pool));
}

TEST_P(PatternSweep, BlockScatter) {
  auto kernel = BlockScatter::random(n(), 4, seed());
  rt::ThreadPool pool(threads());
  EXPECT_EQ(kernel.run_serial(), kernel.run_parallel(pool));
}

TEST_P(PatternSweep, WindowScatter) {
  auto kernel = WindowScatter::random(n(), seed());
  rt::ThreadPool pool(threads());
  EXPECT_EQ(kernel.run_serial(), kernel.run_parallel(pool));
}

INSTANTIATE_TEST_SUITE_P(Grid, PatternSweep,
                         ::testing::Combine(::testing::Values<int64_t>(1, 33, 512),
                                            ::testing::Values(2u, 8u),
                                            ::testing::Values<uint64_t>(1, 99)));

TEST(Patterns, InversePermutationIsActuallyInjective) {
  auto kernel = InversePermutation::random(100, 5);
  EXPECT_TRUE(rt::is_injective(kernel.mt_to_id));
  auto inverse = kernel.run_serial();
  // inverse ∘ forward == identity
  for (size_t i = 0; i < kernel.mt_to_id.size(); ++i) {
    EXPECT_EQ(inverse[static_cast<size_t>(kernel.mt_to_id[i])], static_cast<int64_t>(i));
  }
}

TEST(Patterns, GuardedScatterSubsetIsInjective) {
  auto kernel = GuardedScatter::random(200, 0.5, 11);
  EXPECT_TRUE(rt::is_subset_injective(kernel.jmatch, 0));
}

TEST(Patterns, WindowScatterFrontIsStrictlyIncreasing) {
  auto kernel = WindowScatter::random(100, 3);
  EXPECT_TRUE(rt::is_strictly_increasing(kernel.front));
}

}  // namespace
}  // namespace sspar::kern
