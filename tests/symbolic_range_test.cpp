#include <gtest/gtest.h>

#include "symbolic/range.h"

namespace sspar::sym {
namespace {

class RangeTest : public ::testing::Test {
 protected:
  SymbolTable syms;
  SymbolId i = syms.intern("i");
  SymbolId n = syms.intern("n");
  SymbolId x = syms.intern("x");

  ExprPtr I() { return make_sym(i); }
  ExprPtr N() { return make_sym(n); }
  std::string str(const Range& r) { return r.to_string(syms); }
};

TEST_F(RangeTest, BottomAndExact) {
  EXPECT_TRUE(Range::bottom().is_bottom());
  Range r = Range::exact(I());
  EXPECT_TRUE(r.is_exact());
  EXPECT_TRUE(equal(r.exact_value(), I()));
  EXPECT_EQ(str(r), "[i : i]");
}

TEST_F(RangeTest, BottomBoundsBecomeUnbounded) {
  Range r = Range::of(make_bottom(), make_const(3));
  EXPECT_FALSE(r.lo_bounded());
  EXPECT_TRUE(r.hi_bounded());
  EXPECT_EQ(str(r), "[-inf : 3]");
}

TEST_F(RangeTest, Add) {
  Range r = range_add(Range::of_consts(0, 1), Range::of_consts(2, 5));
  EXPECT_EQ(str(r), "[2 : 6]");
}

TEST_F(RangeTest, AddUnboundedPropagates) {
  Range r = range_add(Range::of(make_const(0), nullptr), Range::of_consts(1, 1));
  EXPECT_EQ(str(r), "[1 : +inf]");
}

TEST_F(RangeTest, NegateSwapsBounds) {
  Range r = range_negate(Range::of_consts(2, 5));
  EXPECT_EQ(str(r), "[-5 : -2]");
  r = range_negate(Range::of(make_const(0), nullptr));
  EXPECT_EQ(str(r), "[-inf : 0]");
}

TEST_F(RangeTest, Sub) {
  Range r = range_sub(Range::of_consts(10, 12), Range::of_consts(1, 3));
  EXPECT_EQ(str(r), "[7 : 11]");
}

TEST_F(RangeTest, MulConstNegativeSwaps) {
  Range r = range_mul_const(Range::of_consts(2, 5), -2);
  EXPECT_EQ(str(r), "[-10 : -4]");
  EXPECT_EQ(str(range_mul_const(Range::of_consts(2, 5), 0)), "[0 : 0]");
}

TEST_F(RangeTest, MulNonnegSymbolic) {
  Range r = range_mul_nonneg(Range::of_consts(0, 1), N());
  EXPECT_EQ(str(r), "[0 : n]");
}

TEST_F(RangeTest, JoinUsesMinMax) {
  Range r = range_join(Range::of_consts(0, 5), Range::of_consts(3, 9));
  EXPECT_EQ(str(r), "[0 : 9]");
  Range s = range_join(Range::exact(I()), Range::exact(N()));
  EXPECT_EQ(str(s), "[min(i, n) : max(i, n)]");
}

TEST_F(RangeTest, JoinProvableByConstantDifference) {
  Range s = range_join(Range::exact(I()), Range::exact(add(I(), make_const(2))));
  EXPECT_EQ(str(s), "[i : i + 2]");
}

TEST_F(RangeTest, EvalRangeSubstitutesSymbol) {
  // 2*i + 1 with i in [0 : n-1]  ->  [1 : 2n-1]
  RangeEnv env;
  env.entries.emplace_back(i, Range::of(make_const(0), sub(N(), make_const(1))));
  Range r = eval_range(add(mul_const(I(), 2), make_const(1)), env);
  EXPECT_EQ(str(r), "[1 : 2*n - 1]");
}

TEST_F(RangeTest, EvalRangeNegativeCoefficientSwaps) {
  RangeEnv env;
  env.entries.emplace_back(i, Range::of_consts(0, 9));
  Range r = eval_range(sub(make_const(100), I()), env);
  EXPECT_EQ(str(r), "[91 : 100]");
}

TEST_F(RangeTest, EvalRangeKeepsUntouchedAtomsSymbolic) {
  SymbolId a = syms.intern("a");
  RangeEnv env;
  env.entries.emplace_back(i, Range::of_consts(0, 4));
  // a[n] is unaffected; i is substituted.
  Range r = eval_range(add(make_array_elem(a, N()), I()), env);
  EXPECT_EQ(str(r), "[a[n] : a[n] + 4]");
}

TEST_F(RangeTest, EvalRangeNonlinearAtomMentioningEnvDegrades) {
  SymbolId a = syms.intern("a");
  RangeEnv env;
  env.entries.emplace_back(i, Range::of_consts(0, 4));
  // a[i] cannot be bounded when i varies.
  Range r = eval_range(make_array_elem(a, I()), env);
  EXPECT_TRUE(r.is_bottom());
}

TEST_F(RangeTest, PromoteIterToLoop) {
  Range r = Range::of(make_iter_start(x), add(make_iter_start(x), make_const(1)));
  Range p = promote_iter_to_loop(r);
  EXPECT_EQ(str(p), "[LAM.x : LAM.x + 1]");
}

// Soundness sweep: eval_range's interval always contains the concrete result
// of substituting any value inside the symbol's interval.
class EvalRangeSoundness
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t>> {};

TEST_P(EvalRangeSoundness, IntervalContainsAllConcretizations) {
  auto [lo, width, coeff] = GetParam();
  int64_t hi = lo + width;
  SymbolTable syms;
  SymbolId i = syms.intern("i");
  RangeEnv env;
  env.entries.emplace_back(i, Range::of_consts(lo, hi));
  // e = coeff*i + 3
  auto e = add(mul_const(make_sym(i), coeff), make_const(3));
  Range r = eval_range(e, env);
  ASSERT_TRUE(r.lo_bounded());
  ASSERT_TRUE(r.hi_bounded());
  int64_t rlo = *const_value(r.lo());
  int64_t rhi = *const_value(r.hi());
  for (int64_t v = lo; v <= hi; ++v) {
    int64_t concrete = coeff * v + 3;
    EXPECT_LE(rlo, concrete);
    EXPECT_GE(rhi, concrete);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EvalRangeSoundness,
    ::testing::Combine(::testing::Values(-10, -1, 0, 5),
                       ::testing::Values(0, 1, 7),
                       ::testing::Values(-3, -1, 0, 1, 4)));

}  // namespace
}  // namespace sspar::sym
