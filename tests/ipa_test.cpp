// Interprocedural summary engine tests.
//
// The core contract is differential: a program whose index arrays are built
// inside helper functions must get the SAME verdicts and OpenMP annotations
// as its hand-inlined twin — the summary application is semantically
// inlining. On top of that: call-graph structure, summary caching across
// re-analysis, W03xx degradation diagnostics, conservative havoc for
// unsummarizable calls (soundness), and batch determinism with the
// session-owned SummaryDB.
#include <gtest/gtest.h>

#include <algorithm>

#include "corpus/analysis.h"
#include "corpus/corpus.h"
#include "driver/batch_analyzer.h"
#include "driver/json_report.h"
#include "interp/interpreter.h"
#include "ipa/call_graph.h"
#include "ipa/summary.h"
#include "pipeline/session.h"
#include "support/text.h"

namespace sspar {
namespace {

// One comparable line per verdict, excluding loop ids and line numbers
// (helper extraction moves loops between functions, renumbering them).
std::string verdict_key(const core::LoopVerdict& v) {
  std::string out;
  out += v.canonical ? "canonical " : "non-canonical ";
  out += v.parallel ? "parallel " : "serial ";
  out += v.uses_subscripted_subscripts ? "subscripted " : "plain ";
  out += core::property_name(v.property);
  out += v.peeled ? " peeled" : "";
  out += " reason='" + v.reason + "'";
  out += " blockers=[";
  for (const auto& b : v.blockers) out += b + ";";
  out += "] privates=[";
  for (const auto* p : v.privates) out += p->name + ";";
  out += "]";
  return out;
}

std::vector<std::string> verdict_keys(pipeline::Session& session) {
  const auto* verdicts = session.parallelize();
  std::vector<std::string> keys;
  if (!verdicts) return keys;
  for (const auto& v : *verdicts) keys.push_back(verdict_key(v));
  return keys;
}

std::vector<std::string> pragma_lines(const std::string& source) {
  std::vector<std::string> out;
  size_t pos = 0;
  while ((pos = source.find("#pragma", pos)) != std::string::npos) {
    size_t end = source.find('\n', pos);
    out.push_back(source.substr(pos, end - pos));
    pos = end;
  }
  return out;
}

struct Twin {
  const char* name;
  std::string helper_source;
  std::string inlined_source;
  pipeline::Assumptions assumptions;
};

// The interprocedural corpus entries and their hand-inlined twins.
std::vector<Twin> twin_programs() {
  std::vector<Twin> twins;
  auto assume = [](const corpus::Entry& e) { return corpus::analyzer_assumptions(e); };
  const corpus::Entry* cg = corpus::find_entry("ipa_cg");
  const corpus::Entry* csr = corpus::find_entry("ipa_csr");
  const corpus::Entry* scatter = corpus::find_entry("ipa_scatter");
  const corpus::Entry* cg_chain = corpus::find_entry("ipa_cg_chain");
  const corpus::Entry* spmv_chain = corpus::find_entry("ipa_spmv_chain");
  const corpus::Entry* csr_chain = corpus::find_entry("ipa_csr_chain");
  EXPECT_NE(cg, nullptr);
  EXPECT_NE(csr, nullptr);
  EXPECT_NE(scatter, nullptr);
  EXPECT_NE(cg_chain, nullptr);
  EXPECT_NE(spmv_chain, nullptr);
  EXPECT_NE(csr_chain, nullptr);

  twins.push_back(Twin{"ipa_cg", cg->source,
                       R"(int nrows;
int firstcol;
int cols[512];
int nzz[512];
int rowstr[513];
int colidx[8192];
void f() {
  for (int i = 0; i < nrows; i++) {
    nzz[i] = cols[i] > 0 ? 1 : 0;
  }
  rowstr[0] = 0;
  for (int i = 1; i < nrows + 1; i++) {
    rowstr[i] = rowstr[i-1] + nzz[i-1];
  }
  for (int j = 0; j < nrows; j++) {
    for (int k = rowstr[j]; k < rowstr[j+1]; k++) {
      colidx[k] = colidx[k] - firstcol;
    }
  }
}
)",
                       assume(*cg)});

  twins.push_back(Twin{"ipa_csr", csr->source,
                       R"(int ROWLEN;
int COLUMNLEN;
int ind;
int index;
int j1;
int a[128][128];
int column_number[16384];
double value[16384];
double vector[16384];
double product_array[16384];
int rowsize[128];
int rowptr[129];
void f() {
  for (int i = 0; i < ROWLEN; i++) {
    int count = 0;
    for (int j = 0; j < COLUMNLEN; j++) {
      if (a[i][j] != 0) {
        count++;
        column_number[index++] = j;
        value[ind++] = a[i][j];
      }
    }
    rowsize[i] = count;
  }
  rowptr[0] = 0;
  for (int i = 1; i < ROWLEN + 1; i++) {
    rowptr[i] = rowptr[i-1] + rowsize[i-1];
  }
  for (int i = 0; i < ROWLEN + 1; i++) {
    if (i == 0) {
      j1 = i;
    } else {
      j1 = rowptr[i-1];
    }
    for (int j = j1; j < rowptr[i]; j++) {
      product_array[j] = value[j] * vector[j];
    }
  }
}
)",
                       assume(*csr)});

  twins.push_back(Twin{"ipa_scatter", scatter->source,
                       R"(int nelt;
int mt_to_id[4096];
int id_to_mt[4096];
void f() {
  for (int i = 0; i < nelt; i++) {
    mt_to_id[i] = nelt - 1 - i;
  }
  for (int miel = 0; miel < nelt; miel++) {
    id_to_mt[mt_to_id[miel]] = miel;
  }
}
)",
                       assume(*scatter)});

  // The context-sensitive chains: the fact chain (nzz filled by helper A,
  // rowstr built from it by helper B) only survives helper extraction when
  // B is re-summarized under the caller facts A established. Their inlined
  // twins are the same programs with both helpers hand-inlined into f().
  twins.push_back(Twin{"ipa_cg_chain", cg_chain->source,
                       R"(int nrows;
int firstcol;
int cols[512];
int nzz[512];
int rowstr[513];
int colidx[8192];
void f() {
  for (int i = 0; i < nrows; i++) {
    nzz[i] = cols[i] > 0 ? 1 : 0;
  }
  rowstr[0] = 0;
  for (int i = 1; i < nrows + 1; i++) {
    rowstr[i] = rowstr[i-1] + nzz[i-1];
  }
  for (int j = 0; j < nrows; j++) {
    for (int k = rowstr[j]; k < rowstr[j+1]; k++) {
      colidx[k] = colidx[k] - firstcol;
    }
  }
}
)",
                       assume(*cg_chain)});

  twins.push_back(Twin{"ipa_spmv_chain", spmv_chain->source,
                       R"(int nrows;
int cols[512];
int nzz[512];
int rowstr[513];
double aval[8192];
double p[513];
double q[513];
void f() {
  for (int i = 0; i < nrows; i++) {
    nzz[i] = cols[i] > 0 ? 1 : 0;
  }
  rowstr[0] = 0;
  for (int i = 1; i < nrows + 1; i++) {
    rowstr[i] = rowstr[i-1] + nzz[i-1];
  }
  for (int j = 0; j < nrows; j++) {
    double sum = 0.0;
    for (int k = rowstr[j]; k < rowstr[j+1]; k++) {
      sum = sum + aval[k];
    }
    q[j] = sum * p[j];
  }
}
)",
                       assume(*spmv_chain)});

  twins.push_back(Twin{"ipa_csr_chain", csr_chain->source,
                       R"(int ROWLEN;
int COLUMNLEN;
int ind;
int index;
int j1;
int a[128][128];
int column_number[16384];
double value[16384];
double vector[16384];
double product_array[16384];
int rowsize[128];
int rowptr[129];
void f() {
  for (int i = 0; i < ROWLEN; i++) {
    int count = 0;
    for (int j = 0; j < COLUMNLEN; j++) {
      if (a[i][j] != 0) {
        count++;
        column_number[index++] = j;
        value[ind++] = a[i][j];
      }
    }
    rowsize[i] = count;
  }
  rowptr[0] = 0;
  for (int i = 1; i < ROWLEN + 1; i++) {
    rowptr[i] = rowptr[i-1] + rowsize[i-1];
  }
  for (int i = 0; i < ROWLEN + 1; i++) {
    if (i == 0) {
      j1 = i;
    } else {
      j1 = rowptr[i-1];
    }
    for (int j = j1; j < rowptr[i]; j++) {
      product_array[j] = value[j] * vector[j];
    }
  }
}
)",
                       assume(*csr_chain)});
  return twins;
}

// --------------------------------------------------------------------------
// Differential: helper version == hand-inlined twin
// --------------------------------------------------------------------------

TEST(IpaDifferential, VerdictsAreByteIdenticalToHandInlinedTwin) {
  for (const Twin& twin : twin_programs()) {
    pipeline::Session helper(twin.helper_source, twin.assumptions);
    pipeline::Session inlined(twin.inlined_source, twin.assumptions);
    std::vector<std::string> helper_keys = verdict_keys(helper);
    std::vector<std::string> inlined_keys = verdict_keys(inlined);
    ASSERT_FALSE(helper_keys.empty()) << twin.name << helper.diagnostics().dump();
    ASSERT_FALSE(inlined_keys.empty()) << twin.name << inlined.diagnostics().dump();
    // Extracting a helper permutes loop order (function decls come first), so
    // compare the verdict multisets: every loop must get the byte-identical
    // verdict it gets in the inlined program.
    std::sort(helper_keys.begin(), helper_keys.end());
    std::sort(inlined_keys.begin(), inlined_keys.end());
    EXPECT_EQ(helper_keys, inlined_keys) << twin.name;
  }
}

TEST(IpaDifferential, EmittedAnnotationsAreByteIdenticalToHandInlinedTwin) {
  for (const Twin& twin : twin_programs()) {
    pipeline::Session helper(twin.helper_source, twin.assumptions);
    pipeline::Session inlined(twin.inlined_source, twin.assumptions);
    ASSERT_GT(helper.annotate(), 0) << twin.name;
    ASSERT_GT(inlined.annotate(), 0) << twin.name;
    EXPECT_EQ(pragma_lines(helper.emit().output), pragma_lines(inlined.emit().output))
        << twin.name;
  }
}

TEST(IpaDifferential, HelperBuiltRowstrProvesMonotonicAndParallelizesTheCgLoop) {
  const corpus::Entry* cg = corpus::find_entry("ipa_cg");
  ASSERT_NE(cg, nullptr);
  pipeline::Session session(cg->source, corpus::analyzer_assumptions(*cg));
  const auto* verdicts = session.parallelize();
  ASSERT_NE(verdicts, nullptr) << session.diagnostics().dump();
  // The CG adjustment loop (over rowstr windows) must be proven parallel via
  // the Monotonic property, with provenance naming the helper.
  bool found = false;
  for (const auto& v : *verdicts) {
    if (v.property != core::EnablingProperty::Monotonic) continue;
    found = true;
    EXPECT_TRUE(v.parallel);
    EXPECT_TRUE(v.uses_subscripted_subscripts);
    EXPECT_EQ(v.summaries_used, std::vector<std::string>{"build_rowstr"});
  }
  EXPECT_TRUE(found) << "no Monotonic verdict in ipa_cg";
  // And the summary derives a Monotonic_inc (non-negative step) fact for
  // rowstr: inspect the cached summary directly.
  const ast::FuncDecl* helper = session.program()->find_function("build_rowstr");
  ASSERT_NE(helper, nullptr);
  const ipa::FunctionSummary* summary =
      session.summaries().find(helper, core::AnalyzerOptions{});
  ASSERT_NE(summary, nullptr);
  ASSERT_TRUE(summary->analyzable) << summary->failure;
  const ast::VarDecl* rowstr = session.program()->find_global("rowstr");
  ASSERT_NE(rowstr, nullptr);
  const core::ArrayFacts* facts = summary->end_facts.find(rowstr->symbol);
  ASSERT_NE(facts, nullptr);
  ASSERT_FALSE(facts->steps.empty());
  bool monotonic_inc = false;
  for (const auto& step : facts->steps) {
    auto lo = sym::const_value(step.step.lo());
    if (lo && *lo >= 0) monotonic_inc = true;
  }
  EXPECT_TRUE(monotonic_inc) << "rowstr step fact is not Monotonic_inc";
}

// No false positives: every statically parallel loop of the interprocedural
// corpus entries is dependence-free under the dynamic oracle.
TEST(IpaDifferential, NoFalsePositivesAgainstTheDynamicOracle) {
  for (const char* name : {"ipa_cg", "ipa_csr", "ipa_scatter", "ipa_cg_chain",
                           "ipa_spmv_chain", "ipa_csr_chain"}) {
    const corpus::Entry* entry = corpus::find_entry(name);
    ASSERT_NE(entry, nullptr);
    corpus::EntryAnalysis analysis = corpus::analyze_entry(*entry);
    ASSERT_TRUE(analysis.ok) << analysis.diagnostics;
    EXPECT_GT(analysis.parallel, 0) << name;
    for (const auto& v : analysis.verdicts) {
      if (!v.parallel) continue;
      interp::Interpreter interp(*analysis.parsed.program);
      corpus::seed_interpreter_inputs(*entry, interp);
      auto oracle = interp.analyze_loop_dependences("f", v.loop);
      EXPECT_TRUE(oracle.executed) << name << " loop " << v.loop_id;
      EXPECT_TRUE(oracle.dependence_free)
          << name << " loop " << v.loop_id << " FALSE POSITIVE: " << oracle.first_conflict;
    }
  }
}

// --------------------------------------------------------------------------
// Call graph
// --------------------------------------------------------------------------

TEST(CallGraph, BottomUpOrderPutsCalleesFirst) {
  pipeline::Session session(R"(
    int x;
    void c() { x = x + 1; }
    void b() { c(); }
    void a() { b(); c(); }
  )");
  ASSERT_TRUE(session.parse());
  ipa::CallGraph graph(*session.program());
  const auto& order = graph.bottom_up();
  ASSERT_EQ(order.size(), 3u);
  auto pos = [&](const char* name) {
    for (size_t i = 0; i < order.size(); ++i) {
      if (order[i]->name == name) return i;
    }
    return order.size();
  };
  EXPECT_LT(pos("c"), pos("b"));
  EXPECT_LT(pos("b"), pos("a"));
  EXPECT_FALSE(graph.is_recursive(session.program()->find_function("a")));
  const auto* node_a = graph.node(session.program()->find_function("a"));
  ASSERT_NE(node_a, nullptr);
  EXPECT_EQ(node_a->callees.size(), 2u);
  EXPECT_TRUE(node_a->called == false);
  EXPECT_TRUE(graph.node(session.program()->find_function("c"))->called);
}

TEST(CallGraph, DetectsRecursionAndUnknownCallees) {
  // Sema resolves calls against the whole program, so even/odd may call each
  // other without prototypes (the grammar has none).
  pipeline::Session s(R"(
    int x;
    void even(int n) { odd(n - 1); }
    void odd(int n) { even(n - 1); }
    void self() { self(); }
    void unknown_caller() { mystery(); }
  )");
  ASSERT_TRUE(s.parse()) << s.diagnostics().dump();
  ipa::CallGraph graph(*s.program());
  EXPECT_TRUE(graph.is_recursive(s.program()->find_function("even")));
  EXPECT_TRUE(graph.is_recursive(s.program()->find_function("odd")));
  EXPECT_TRUE(graph.is_recursive(s.program()->find_function("self")));
  EXPECT_FALSE(graph.is_recursive(s.program()->find_function("unknown_caller")));
  EXPECT_TRUE(graph.has_unknown_callee(s.program()->find_function("unknown_caller")));
}

// --------------------------------------------------------------------------
// Summary cache
// --------------------------------------------------------------------------

TEST(SummaryDB, ReanalysisUnderKnownOptionsHitsTheCache) {
  const corpus::Entry* entry = corpus::find_entry("ipa_cg");
  ASSERT_NE(entry, nullptr);
  pipeline::Session session(entry->source, corpus::analyzer_assumptions(*entry));
  core::AnalyzerOptions defaults;
  core::AnalyzerOptions no_recurrence;
  no_recurrence.enable_recurrence_rule = false;

  ASSERT_NE(session.analyze(defaults), nullptr);
  const auto after_first = session.summaries().stats();
  EXPECT_EQ(after_first.computed, 1u);
  EXPECT_EQ(after_first.hits, 0u);

  // Different options: a fresh summary is computed under its own key.
  ASSERT_NE(session.analyze(no_recurrence), nullptr);
  const auto after_second = session.summaries().stats();
  EXPECT_EQ(after_second.computed, 2u);
  EXPECT_EQ(after_second.hits, 0u);

  // Back to the first configuration: served from the cache.
  ASSERT_NE(session.analyze(defaults), nullptr);
  const auto after_third = session.summaries().stats();
  EXPECT_EQ(after_third.computed, 2u);
  EXPECT_EQ(after_third.hits, 1u);

  // The ablated summary really is different: without the recurrence rule the
  // helper cannot prove the rowstr step fact.
  const ast::FuncDecl* helper = session.program()->find_function("build_rowstr");
  const ipa::FunctionSummary* ablated = session.summaries().find(helper, no_recurrence);
  ASSERT_NE(ablated, nullptr);
  const ast::VarDecl* rowstr = session.program()->find_global("rowstr");
  const core::ArrayFacts* facts = ablated->end_facts.find(rowstr->symbol);
  EXPECT_TRUE(!facts || facts->steps.empty());
}

TEST(SummaryDB, TakeParseClearsSummaries) {
  const corpus::Entry* entry = corpus::find_entry("ipa_cg");
  pipeline::Session session(entry->source, corpus::analyzer_assumptions(*entry));
  ASSERT_NE(session.analyze(), nullptr);
  EXPECT_GT(session.summaries().size(), 0u);
  auto parsed = session.take_parse();
  EXPECT_EQ(session.summaries().size(), 0u);
}

// --------------------------------------------------------------------------
// W03xx degradation diagnostics
// --------------------------------------------------------------------------

bool has_diag(const pipeline::Session& session, support::DiagCode code,
              const std::string& substring) {
  for (const auto& d : session.diagnostics().diagnostics()) {
    if (d.code == code && d.severity == support::Severity::Warning &&
        d.message.find(substring) != std::string::npos) {
      return true;
    }
  }
  return false;
}

TEST(Diagnostics, LoopWithRecursiveCallEmitsW0301WithCalleeName) {
  pipeline::Session session(R"(
    int n;
    int acc;
    int tri(int k) {
      if (k > 0) {
        acc = acc + k;
        tri(k - 1);
      }
      return acc;
    }
    void f() {
      for (int i = 0; i < n; i++) {
        tri(i);
      }
    }
  )",
                            {{"n", 1}});
  const auto* verdicts = session.parallelize();
  ASSERT_NE(verdicts, nullptr) << session.diagnostics().dump();
  EXPECT_TRUE(has_diag(session, support::DiagCode::AnalysisLoopCall, "tri"))
      << session.diagnostics().dump();
  EXPECT_EQ(support::diag_code_name(support::DiagCode::AnalysisLoopCall), "W0301");
  // The loop is degraded, not mis-analyzed.
  for (const auto& v : *verdicts) EXPECT_FALSE(v.parallel);
}

TEST(Diagnostics, WhileAndBreakEmitW0302AndW0303) {
  pipeline::Session session(R"(
    int n;
    int a[1024];
    void f() {
      for (int i = 0; i < n; i++) {
        int k = 0;
        while (k < i) {
          k = k + 1;
        }
        a[i] = k;
      }
      for (int i = 0; i < n; i++) {
        if (a[i] > 100) {
          break;
        }
        a[i] = a[i] + 1;
      }
    }
  )",
                            {{"n", 1}});
  ASSERT_NE(session.parallelize(), nullptr);
  EXPECT_TRUE(has_diag(session, support::DiagCode::AnalysisLoopWhile, "while"))
      << session.diagnostics().dump();
  EXPECT_TRUE(has_diag(session, support::DiagCode::AnalysisLoopAbruptExit, "break"))
      << session.diagnostics().dump();
  EXPECT_EQ(support::diag_code_name(support::DiagCode::AnalysisLoopWhile), "W0302");
  EXPECT_EQ(support::diag_code_name(support::DiagCode::AnalysisLoopAbruptExit), "W0303");
}

TEST(Diagnostics, WarningsSurfaceInTheJsonReport) {
  driver::BatchAnalyzer analyzer(driver::BatchOptions{1, {}});
  driver::ProgramInput input;
  input.name = "warny";
  input.source = R"(
    int n;
    int total;
    void f() {
      for (int i = 0; i < n; i++) {
        int k = 0;
        while (k < i) { k = k + 1; }
        total = total + k;
      }
    }
  )";
  input.assumptions = pipeline::Assumptions{{"n", 1}};
  driver::BatchReport report = analyzer.run({input});
  ASSERT_EQ(report.programs.size(), 1u);
  support::json::Value doc = driver::program_report_to_json(report.programs[0], false);
  std::string text = doc.dump();
  EXPECT_NE(text.find("W0302"), std::string::npos) << text;
}

// --------------------------------------------------------------------------
// Soundness: unsummarizable calls degrade conservatively
// --------------------------------------------------------------------------

TEST(IpaSoundness, OpaqueCallHavocsFactsAboutEveryGlobal) {
  // g() is not summarizable (calls an unknown function) and writes perm; the
  // facts proven about perm before the call must not survive it.
  pipeline::Session session(R"(
    int n;
    int perm[2048];
    int out[2048];
    void g() {
      mystery();
    }
    void f() {
      for (int i = 0; i < n; i++) {
        perm[i] = n - 1 - i;
      }
      g();
      for (int i = 0; i < n; i++) {
        out[perm[i]] = i;
      }
    }
  )",
                            {{"n", 1}});
  const auto* verdicts = session.parallelize();
  ASSERT_NE(verdicts, nullptr) << session.diagnostics().dump();
  // The scatter loop must NOT be proven parallel: g() may have scrambled perm.
  bool scatter_seen = false;
  for (const auto& v : *verdicts) {
    if (!v.uses_subscripted_subscripts) continue;
    scatter_seen = true;
    EXPECT_FALSE(v.parallel) << v.reason;
  }
  EXPECT_TRUE(scatter_seen);
}

TEST(IpaSoundness, SummarizedCallKillsOverlappingCallerFacts) {
  // reset() rewrites a prefix of perm with a non-injective constant; the
  // injectivity proven by the fill loop must die at the call.
  pipeline::Session session(R"(
    int n;
    int perm[2048];
    int out[2048];
    void reset() {
      for (int i = 0; i < n; i++) {
        perm[i] = 0;
      }
    }
    void f() {
      for (int i = 0; i < n; i++) {
        perm[i] = n - 1 - i;
      }
      reset();
      for (int i = 0; i < n; i++) {
        out[perm[i]] = i;
      }
    }
  )",
                            {{"n", 1}});
  const auto* verdicts = session.parallelize();
  ASSERT_NE(verdicts, nullptr) << session.diagnostics().dump();
  bool scatter_seen = false;
  for (const auto& v : *verdicts) {
    if (!v.uses_subscripted_subscripts) continue;
    scatter_seen = true;
    EXPECT_FALSE(v.parallel) << v.reason;
  }
  EXPECT_TRUE(scatter_seen);
}

TEST(IpaSoundness, ConditionallyWrittenCalleeGlobalCarriesLambdaDependence) {
  // mark() assigns the global s only on some paths; in a caller loop the
  // skip-path keeps the previous iteration's value — a loop-carried scalar
  // dependence, exactly as if the conditional assignment were inlined.
  pipeline::Session session(R"(
    int n;
    int s;
    int flag[1024];
    int out[1024];
    void mark(int i) {
      if (flag[i] > 0) {
        s = i;
      }
    }
    void f() {
      for (int i = 0; i < n; i++) {
        mark(i);
        out[i] = s;
      }
    }
  )",
                            {{"n", 1}});
  const auto* verdicts = session.parallelize();
  ASSERT_NE(verdicts, nullptr) << session.diagnostics().dump();
  ASSERT_EQ(verdicts->size(), 1u);
  const auto& v = (*verdicts)[0];
  EXPECT_FALSE(v.parallel);
  bool lambda_blocker = false;
  for (const auto& b : v.blockers) {
    if (b.find("loop-carried scalar dependence on 's'") != std::string::npos) {
      lambda_blocker = true;
    }
  }
  EXPECT_TRUE(lambda_blocker) << support::join(v.blockers, "; ");
}

TEST(IpaSoundness, OpaqueCallKillsFactsAboutLocalArraysToo) {
  // tmp is function-local; mystery(tmp) may rewrite it, so the identity fact
  // from the fill loop must not survive into the scatter loop.
  pipeline::Session session(R"(
    int n;
    int out[64];
    void f() {
      int tmp[64];
      for (int i = 0; i < n; i++) {
        tmp[i] = i;
      }
      mystery(tmp);
      for (int i = 0; i < n; i++) {
        out[tmp[i]] = i;
      }
    }
  )",
                            {{"n", 1}});
  const auto* verdicts = session.parallelize();
  ASSERT_NE(verdicts, nullptr) << session.diagnostics().dump();
  bool scatter_seen = false;
  for (const auto& v : *verdicts) {
    if (!v.uses_subscripted_subscripts) continue;
    scatter_seen = true;
    EXPECT_FALSE(v.parallel) << v.reason;
  }
  EXPECT_TRUE(scatter_seen);
}

TEST(IpaDifferential, NestedHelperIndirectionCountsAsSubscripted) {
  // lookup2 forwards to lookup; the indirection is one call deeper but the
  // subscripted-subscript classification must still see it.
  pipeline::Session session(R"(
    int nelt;
    int mt_to_id[4096];
    int id_to_mt[4096];
    int lookup(int m) {
      return mt_to_id[m];
    }
    int lookup2(int m) {
      return lookup(m);
    }
    void f() {
      for (int i = 0; i < nelt; i++) {
        mt_to_id[i] = nelt - 1 - i;
      }
      for (int miel = 0; miel < nelt; miel++) {
        id_to_mt[lookup2(miel)] = miel;
      }
    }
  )",
                            {{"nelt", 1}});
  const auto* verdicts = session.parallelize();
  ASSERT_NE(verdicts, nullptr) << session.diagnostics().dump();
  bool scatter_seen = false;
  for (const auto& v : *verdicts) {
    if (!v.uses_subscripted_subscripts) continue;
    scatter_seen = true;
    EXPECT_TRUE(v.parallel) << support::join(v.blockers, "; ");
  }
  EXPECT_TRUE(scatter_seen);
}

TEST(IpaSoundness, ArityMismatchedCallInReturnExpressionIsNotSummarizable) {
  // g2 writes out[0]; h calls it with the wrong arity from its return
  // expression. The summary of h must be rejected (not silently analyzable
  // with g2's write effects dropped).
  pipeline::Session session(R"(
    int n;
    int out[64];
    int g2(int a) {
      out[0] = 1;
      return a;
    }
    int h() {
      return g2();
    }
    void f() {
      out[0] = 7;
      for (int i = 0; i < n; i++) {
        out[i] = h();
      }
    }
  )",
                            {{"n", 1}});
  ASSERT_TRUE(session.parse()) << session.diagnostics().dump();
  ASSERT_NE(session.analyze(), nullptr);
  const ast::FuncDecl* h = session.program()->find_function("h");
  const ipa::FunctionSummary* summary = session.summaries().find(h, core::AnalyzerOptions{});
  ASSERT_NE(summary, nullptr);
  EXPECT_FALSE(summary->analyzable) << "arity mismatch must not summarize";
  EXPECT_TRUE(has_diag(session, support::DiagCode::AnalysisLoopCall, "h"))
      << session.diagnostics().dump();
}

TEST(IpaInterpreter, FallingOffTheEndReturnsZeroNotAStaleNestedValue) {
  support::DiagnosticEngine diags;
  auto parsed = ast::parse_and_resolve(R"(
    int x;
    int g() {
      return 5;
    }
    int h() {
      g();
    }
    void f() {
      x = h();
    }
  )",
                                       diags);
  ASSERT_TRUE(parsed.ok) << diags.dump();
  interp::Interpreter interp(*parsed.program);
  interp.run("f");
  EXPECT_EQ(interp.scalar_int("x"), 0);
}

TEST(IpaPrecision, CalleeScalarAssignedBeforeReadIsNotExposed) {
  // compute() assigns the global temporary t before every read of it, so t's
  // entry value never flows into the callee: the call site must not treat t
  // as a loop-carried λ-read. The loop parallelizes with t privatized,
  // byte-identically to its hand-inlined twin.
  static const char* kHelper = R"(
    int n;
    int t;
    int a[1024];
    int b[1024];
    void compute(int i) {
      t = b[i] * 2;
      a[i] = t;
    }
    void f() {
      for (int i = 0; i < n; i++) {
        compute(i);
      }
    }
  )";
  static const char* kInlined = R"(
    int n;
    int t;
    int a[1024];
    int b[1024];
    void f() {
      for (int i = 0; i < n; i++) {
        t = b[i] * 2;
        a[i] = t;
      }
    }
  )";
  pipeline::Session helper(kHelper, {{"n", 1}});
  pipeline::Session inlined(kInlined, {{"n", 1}});
  const auto* hv = helper.parallelize();
  const auto* iv = inlined.parallelize();
  ASSERT_NE(hv, nullptr) << helper.diagnostics().dump();
  ASSERT_NE(iv, nullptr) << inlined.diagnostics().dump();
  ASSERT_EQ(hv->size(), 1u);
  ASSERT_EQ(iv->size(), 1u);
  EXPECT_TRUE((*iv)[0].parallel) << support::join((*iv)[0].blockers, "; ");
  EXPECT_TRUE((*hv)[0].parallel) << support::join((*hv)[0].blockers, "; ");
  EXPECT_EQ(verdict_key((*hv)[0]), verdict_key((*iv)[0]));
  EXPECT_EQ(helper.annotate(), 1);
  EXPECT_TRUE(support::contains(helper.emit().output, "private(t)"))
      << helper.emit().output;

  // Dynamic differential: the flipped verdict must survive the permutation
  // oracle (excluding the privatized t, whose final value is unspecified).
  support::DiagnosticEngine diags;
  auto parsed = ast::parse_and_resolve(kHelper, diags);
  ASSERT_TRUE(parsed.ok) << diags.dump();
  auto seed = [](interp::Interpreter& interp) {
    interp.set_scalar("n", int64_t{512});
    std::vector<int64_t> b(1024);
    for (size_t i = 0; i < b.size(); ++i) b[i] = static_cast<int64_t>(i % 37);
    interp.set_array_int("b", std::move(b));
  };
  interp::Interpreter sequential(*parsed.program);
  seed(sequential);
  sequential.run("f");
  auto expected = sequential.snapshot();
  auto loops = ast::collect_loops(parsed.program->find_function("f")->body.get());
  ASSERT_EQ(loops.size(), 1u);
  interp::Interpreter permuted(*parsed.program);
  seed(permuted);
  permuted.run_permuted("f", loops[0], 99);
  std::string diff;
  EXPECT_TRUE(
      interp::Interpreter::equal_state(*expected, *permuted.snapshot(), {"t"}, &diff))
      << diff;
}

TEST(IpaPrecision, ReadBeforeAssignmentStaysExposed) {
  // The mirror case: accumulate() reads s before writing it, so s IS exposed
  // and the caller loop keeps its loop-carried scalar dependence.
  pipeline::Session session(R"(
    int n;
    int s;
    int b[1024];
    void accumulate(int i) {
      s = s + b[i];
    }
    void f() {
      for (int i = 0; i < n; i++) {
        accumulate(i);
      }
    }
  )",
                            {{"n", 1}});
  const auto* verdicts = session.parallelize();
  ASSERT_NE(verdicts, nullptr) << session.diagnostics().dump();
  ASSERT_EQ(verdicts->size(), 1u);
  EXPECT_FALSE((*verdicts)[0].parallel);
  bool lambda_blocker = false;
  for (const auto& b : (*verdicts)[0].blockers) {
    if (b.find("loop-carried scalar dependence on 's'") != std::string::npos) {
      lambda_blocker = true;
    }
  }
  EXPECT_TRUE(lambda_blocker) << support::join((*verdicts)[0].blockers, "; ");
}

TEST(Diagnostics, ReanalysisDoesNotDuplicateWarnings) {
  pipeline::Session session(R"(
    int n;
    int total;
    void f() {
      for (int i = 0; i < n; i++) {
        int k = 0;
        while (k < i) { k = k + 1; }
        total = total + k;
      }
    }
  )",
                            {{"n", 1}});
  core::AnalyzerOptions ablated;
  ablated.enable_recurrence_rule = false;
  session.analyze(core::AnalyzerOptions{});
  session.analyze(ablated);
  session.analyze(core::AnalyzerOptions{});
  int w0302 = 0;
  for (const auto& d : session.diagnostics().diagnostics()) {
    if (d.code == support::DiagCode::AnalysisLoopWhile) ++w0302;
  }
  EXPECT_EQ(w0302, 1) << session.diagnostics().dump();
}

// --------------------------------------------------------------------------
// Context sensitivity: summaries specialized to caller entry facts
// --------------------------------------------------------------------------

TEST(ContextSensitivity, BaseSummaryLosesTheChainButContextSummaryKeepsIt) {
  const corpus::Entry* entry = corpus::find_entry("ipa_cg_chain");
  ASSERT_NE(entry, nullptr);
  pipeline::Session session(entry->source, corpus::analyzer_assumptions(*entry));
  const auto* verdicts = session.parallelize();
  ASSERT_NE(verdicts, nullptr) << session.diagnostics().dump();

  // The CG adjustment loop is proven Monotonic, with provenance naming the
  // helper that finished the chain.
  bool monotonic = false;
  for (const auto& v : *verdicts) {
    if (v.property != core::EnablingProperty::Monotonic) continue;
    monotonic = true;
    EXPECT_TRUE(v.parallel);
    EXPECT_EQ(v.summaries_used, std::vector<std::string>{"build_rowstr"});
  }
  EXPECT_TRUE(monotonic) << "no Monotonic verdict in ipa_cg_chain";

  // The BASE summary of build_rowstr (empty entry facts) cannot bound
  // nzz[i-1], so it has no rowstr step fact — the property exists only in
  // the context-sensitive re-summary.
  const ast::FuncDecl* helper = session.program()->find_function("build_rowstr");
  ASSERT_NE(helper, nullptr);
  const ipa::FunctionSummary* base =
      session.summaries().find(helper, core::AnalyzerOptions{});
  ASSERT_NE(base, nullptr);
  ASSERT_TRUE(base->analyzable) << base->failure;
  EXPECT_EQ(base->entry_fingerprint, 0u);
  const ast::VarDecl* rowstr = session.program()->find_global("rowstr");
  ASSERT_NE(rowstr, nullptr);
  const core::ArrayFacts* base_facts = base->end_facts.find(rowstr->symbol);
  bool base_monotonic = false;
  if (base_facts) {
    for (const auto& step : base_facts->steps) {
      auto lo = sym::const_value(step.step.lo());
      if (lo && *lo >= 0) base_monotonic = true;
    }
  }
  EXPECT_FALSE(base_monotonic) << "base summary should not know nzz >= 0";
  EXPECT_GE(session.summaries().stats().context_computed, 1u);
}

TEST(ContextSensitivity, RepeatedCallSitesHitTheFingerprintedCacheSlot) {
  // f and g run the identical chain, so g's build_rowstr call site projects
  // the same entry facts as f's: its context summary is served from the
  // fingerprinted cache slot, not recomputed.
  pipeline::Session session(R"(
    int nrows;
    int cols[512];
    int nzz[512];
    int rowstr[513];
    void fill_nzz() {
      for (int i = 0; i < nrows; i++) {
        nzz[i] = cols[i] > 0 ? 1 : 0;
      }
    }
    void build_rowstr() {
      rowstr[0] = 0;
      for (int i = 1; i < nrows + 1; i++) {
        rowstr[i] = rowstr[i-1] + nzz[i-1];
      }
    }
    void f() {
      fill_nzz();
      build_rowstr();
    }
    void g() {
      fill_nzz();
      build_rowstr();
    }
  )",
                            {{"nrows", 1}});
  ASSERT_NE(session.analyze(), nullptr) << session.diagnostics().dump();
  const auto stats = session.summaries().stats();
  EXPECT_EQ(stats.context_computed, 1u) << "g's call site must reuse f's entry";
  EXPECT_GE(stats.hits, 1u);
}

TEST(ContextSensitivity, StaleCallerFactsAreNotProjected) {
  // The caller scrambles nzz between fill_nzz() and build_rowstr(): the
  // nzz facts at statement entry no longer hold at the call, so the context
  // summary must not claim Monotonic_inc for rowstr (soundness).
  pipeline::Session session(R"(
    int nrows;
    int cols[512];
    int nzz[512];
    int rowstr[513];
    int out[8192];
    void fill_nzz() {
      for (int i = 0; i < nrows; i++) {
        nzz[i] = cols[i] > 0 ? 1 : 0;
      }
    }
    void build_rowstr() {
      rowstr[0] = 0;
      for (int i = 1; i < nrows + 1; i++) {
        rowstr[i] = rowstr[i-1] + nzz[i-1];
      }
    }
    void f() {
      fill_nzz();
      nzz[0] = 0 - 5;
      build_rowstr();
      for (int j = 0; j < nrows; j++) {
        for (int k = rowstr[j]; k < rowstr[j+1]; k++) {
          out[k] = out[k] + 1;
        }
      }
    }
  )",
                            {{"nrows", 1}});
  const auto* verdicts = session.parallelize();
  ASSERT_NE(verdicts, nullptr) << session.diagnostics().dump();
  for (const auto& v : *verdicts) {
    EXPECT_NE(v.property, core::EnablingProperty::Monotonic)
        << "scrambled nzz must not yield a Monotonic rowstr";
  }
}

TEST(ContextSensitivity, ScalarModifiedBetweenCallsInvalidatesTheProjection) {
  // n grows between fill_nzz() and build_rowstr(): the nzz fact, expressed
  // in caller-entry terms over [0 : n-1], would be reinterpreted over the
  // grown range inside the callee — the tail of nzz is unconstrained, so
  // Monotonic must NOT be proven (soundness).
  pipeline::Session session(R"(
    int n;
    int cols[512];
    int nzz[512];
    int rowstr[513];
    int colidx[8192];
    void fill_nzz() {
      for (int i = 0; i < n; i++) {
        nzz[i] = cols[i] > 0 ? 1 : 0;
      }
    }
    void build_rowstr() {
      rowstr[0] = 0;
      for (int i = 1; i < n + 1; i++) {
        rowstr[i] = rowstr[i-1] + nzz[i-1];
      }
    }
    void f() {
      fill_nzz();
      n = n + 50;
      build_rowstr();
      for (int j = 0; j < n; j++) {
        for (int k = rowstr[j]; k < rowstr[j+1]; k++) {
          colidx[k] = colidx[k] + 1;
        }
      }
    }
  )",
                            {{"n", 1}});
  const auto* verdicts = session.parallelize();
  ASSERT_NE(verdicts, nullptr) << session.diagnostics().dump();
  for (const auto& v : *verdicts) {
    EXPECT_NE(v.property, core::EnablingProperty::Monotonic)
        << "nzz facts over the old n must not survive the n = n + 50";
  }
}

TEST(ContextSensitivity, NegativeInjectiveThresholdGetsItsOwnFingerprint) {
  // min_value == -1 must not alias the "no threshold" encoding: the two
  // projections would otherwise share a SummaryDB slot and a cross-program
  // cache key, serving a summary proven under the stronger fact.
  sym::SymbolTable symbols;
  sym::SymbolId array = symbols.intern("perm");
  core::FactDB with_threshold;
  core::FactDB without_threshold;
  core::InjectiveFact fact;
  fact.lo = sym::make_const(0);
  fact.hi = sym::make_const(7);
  fact.min_value = -1;
  with_threshold.add_injective(array, fact);
  fact.min_value.reset();
  without_threshold.add_injective(array, fact);
  EXPECT_NE(ipa::fingerprint_facts(with_threshold, symbols),
            ipa::fingerprint_facts(without_threshold, symbols));
}

// --------------------------------------------------------------------------
// Cross-program summary cache
// --------------------------------------------------------------------------

TEST(CrossCache, SecondSessionRehydratesEverySummaryByteIdentically) {
  const corpus::Entry* entry = corpus::find_entry("ipa_cg_chain");
  ASSERT_NE(entry, nullptr);
  ipa::CrossProgramCache cache;

  pipeline::Session cold(entry->source, corpus::analyzer_assumptions(*entry));
  cold.share_summaries(&cache);
  std::vector<std::string> cold_keys = verdict_keys(cold);
  ASSERT_FALSE(cold_keys.empty()) << cold.diagnostics().dump();
  const auto cold_stats = cold.summaries().stats();
  EXPECT_GT(cold_stats.computed, 0u);
  EXPECT_EQ(cold_stats.shared_hits, 0u);
  EXPECT_GT(cache.size(), 0u);

  pipeline::Session warm(entry->source, corpus::analyzer_assumptions(*entry));
  warm.share_summaries(&cache);
  std::vector<std::string> warm_keys = verdict_keys(warm);
  const auto warm_stats = warm.summaries().stats();
  EXPECT_EQ(warm_stats.computed, 0u) << "every summary should rehydrate";
  EXPECT_EQ(warm_stats.shared_hits, cold_stats.computed);
  EXPECT_EQ(warm_keys, cold_keys);

  // And against a session that never saw the cache: byte-identical verdicts.
  pipeline::Session solo(entry->source, corpus::analyzer_assumptions(*entry));
  EXPECT_EQ(verdict_keys(solo), cold_keys);
  EXPECT_EQ(solo.emit().output, warm.emit().output);
}

TEST(CrossCache, ByteIdenticalHelpersShareAcrossDifferentPrograms) {
  // ipa_cg_chain and ipa_spmv_chain carry byte-identical helpers over
  // byte-identical globals; analyzing them through one cache rehydrates the
  // second program's helper summaries from the first's.
  const corpus::Entry* a = corpus::find_entry("ipa_cg_chain");
  const corpus::Entry* b = corpus::find_entry("ipa_spmv_chain");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ipa::CrossProgramCache cache;
  pipeline::Session first(a->source, corpus::analyzer_assumptions(*a));
  first.share_summaries(&cache);
  ASSERT_NE(first.parallelize(), nullptr);
  pipeline::Session second(b->source, corpus::analyzer_assumptions(*b));
  second.share_summaries(&cache);
  ASSERT_NE(second.parallelize(), nullptr);
  EXPECT_GT(second.summaries().stats().shared_hits, 0u)
      << "identical helpers in a different program must rehydrate";
  // Sharing never changes verdicts.
  pipeline::Session solo(b->source, corpus::analyzer_assumptions(*b));
  EXPECT_EQ(verdict_keys(solo), verdict_keys(second));
}

TEST(CrossCache, DifferentAssumptionsDoNotShare) {
  // Same source, different analyzer assumptions about a referenced global:
  // the content address must differ (the summary's trip-count proofs depend
  // on the assumption).
  const corpus::Entry* entry = corpus::find_entry("ipa_cg_chain");
  ASSERT_NE(entry, nullptr);
  ipa::CrossProgramCache cache;
  pipeline::Session low(entry->source, pipeline::Assumptions{{"nrows", 1}});
  low.share_summaries(&cache);
  ASSERT_NE(low.analyze(), nullptr);
  pipeline::Session high(entry->source, pipeline::Assumptions{{"nrows", 64}});
  high.share_summaries(&cache);
  ASSERT_NE(high.analyze(), nullptr);
  EXPECT_EQ(high.summaries().stats().shared_hits, 0u)
      << "nrows >= 1 and nrows >= 64 must not share summaries";
}

TEST(CrossCache, BatchWithAndWithoutSharingAgreeEverywhere) {
  auto inputs = driver::BatchAnalyzer::corpus_inputs();
  driver::BatchOptions with;
  with.threads = 1;
  driver::BatchOptions without;
  without.threads = 1;
  without.shared_summaries = false;
  driver::BatchReport shared = driver::BatchAnalyzer(with).run(inputs);
  driver::BatchReport isolated = driver::BatchAnalyzer(without).run(inputs);
  ASSERT_EQ(shared.programs.size(), isolated.programs.size());
  for (size_t i = 0; i < shared.programs.size(); ++i) {
    EXPECT_EQ(shared.programs[i].result.output, isolated.programs[i].result.output)
        << shared.programs[i].name;
  }
  EXPECT_EQ(shared.stats.loops, isolated.stats.loops);
  EXPECT_EQ(shared.stats.parallel, isolated.stats.parallel);
  EXPECT_EQ(shared.stats.parallel_subscripted, isolated.stats.parallel_subscripted);
  EXPECT_EQ(shared.stats.property_counts, isolated.stats.property_counts);
  EXPECT_EQ(shared.stats.summaries_computed, isolated.stats.summaries_computed);
  // The shared run actually shared something...
  EXPECT_GT(shared.shared_cache.hits, 0u);
  EXPECT_GT(shared.stats.cross_summary_requests, 0);
  EXPECT_GT(shared.stats.cross_summary_entries, 0);
  // ...and the isolated run had no cache at all.
  EXPECT_EQ(isolated.shared_cache.lookups, 0u);
  EXPECT_EQ(isolated.stats.cross_summary_requests, 0);
  EXPECT_EQ(isolated.stats.cross_summary_entries, 0);
}

// --------------------------------------------------------------------------
// W0301 per-callee dedup
// --------------------------------------------------------------------------

TEST(Diagnostics, TwoDifferentAbandonedCallsInOneLoopBothSurface) {
  // Both helpers are unsummarizable (recursive / undefined); the loop must
  // emit one W0301 naming each callee instead of collapsing onto the first.
  pipeline::Session session(R"(
    int n;
    int acc;
    int rec(int k) {
      if (k > 0) {
        acc = acc + rec(k - 1);
      }
      return acc;
    }
    void f() {
      for (int i = 0; i < n; i++) {
        rec(i);
        mystery(i);
      }
    }
  )",
                            {{"n", 1}});
  ASSERT_NE(session.parallelize(), nullptr);
  int w0301_rec = 0, w0301_mystery = 0;
  for (const auto& d : session.diagnostics().diagnostics()) {
    if (d.code != support::DiagCode::AnalysisLoopCall) continue;
    if (d.message.find("'rec'") != std::string::npos) ++w0301_rec;
    if (d.message.find("'mystery'") != std::string::npos) ++w0301_mystery;
  }
  EXPECT_EQ(w0301_rec, 1) << session.diagnostics().dump();
  EXPECT_EQ(w0301_mystery, 1) << session.diagnostics().dump();
}

// --------------------------------------------------------------------------
// Batch determinism with the shared SummaryDB
// --------------------------------------------------------------------------

TEST(IpaBatch, OneVsEightThreadRunsAreIdenticalOverTheCorpus) {
  auto inputs = driver::BatchAnalyzer::corpus_inputs();
  driver::BatchReport serial = driver::BatchAnalyzer(driver::BatchOptions{1, {}}).run(inputs);
  driver::BatchReport wide = driver::BatchAnalyzer(driver::BatchOptions{8, {}}).run(inputs);
  EXPECT_EQ(serial.stats, wide.stats);
  ASSERT_EQ(serial.programs.size(), wide.programs.size());
  for (size_t i = 0; i < serial.programs.size(); ++i) {
    EXPECT_EQ(serial.programs[i].result.output, wide.programs[i].result.output)
        << serial.programs[i].name;
  }
  // The interprocedural entries actually exercised the summary machinery.
  EXPECT_GE(serial.stats.summaries_computed, 4);
  EXPECT_GE(serial.stats.summary_applications, 4);
  // The cross-program cache is on by default, and its deterministic
  // counters (lookups performed, unique content keys, context summaries
  // materialized) must not depend on the thread count — only the hit/miss
  // split may (it lives outside BatchStats equality).
  EXPECT_GT(serial.stats.cross_summary_requests, 0);
  EXPECT_GT(serial.stats.cross_summary_entries, 0);
  EXPECT_GT(serial.stats.summary_context_computed, 0);
  EXPECT_EQ(serial.stats.cross_summary_requests, wide.stats.cross_summary_requests);
  EXPECT_EQ(serial.stats.cross_summary_entries, wide.stats.cross_summary_entries);
  EXPECT_EQ(serial.stats.summary_context_computed, wide.stats.summary_context_computed);
}

}  // namespace
}  // namespace sspar
