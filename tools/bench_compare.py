#!/usr/bin/env python3
"""Compare two bench_report.sh snapshots and fail on perf regressions.

usage: bench_compare.py <baseline.json> <candidate.json>
           [--threshold 0.25] [--noise-floor-ms 5.0]

The two snapshots usually come from different machines (a checked-in
BENCH_pr<N>.json vs a CI runner), so raw wall-clock deltas are meaningless.
The gate self-normalizes instead: it computes the candidate/baseline ratio
for every time-based metric, takes the median ratio as the machine-speed
factor, and flags a metric only when its ratio exceeds the median by more
than --threshold AND the absolute delta clears --noise-floor-ms. A uniform
slowdown (slower CI box) moves the median and trips nothing; a single hot
path regressing moves one ratio away from the pack and trips the gate.

A metric must regress BOTH after normalization AND in raw terms (ratio and
absolute delta). Normalization alone would manufacture regressions out of
flat metrics whenever a PR genuinely improves the median (the improvements
read as a "faster machine", making everything else look relatively slower);
raw ratios alone would flag everything on a slower runner. Requiring both
keeps the gate quiet in each failure mode while still catching a real
regression on a slower runner, where raw ratios only grow.

Quality metrics (cross-cache hit rate, warm persistent-store hits, static
coverage) are machine-independent and gated directly: a drop of more than
--threshold from baseline fails, and warm store hits must stay positive.

Exit status: 0 clean, 1 regression(s), 2 usage/input error.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"bench_compare.py: cannot read {path}: {e}")


def time_metrics(doc):
    """Flat {name: milliseconds} map of every wall-clock metric in a report."""
    out = {}
    for row in doc.get("analysis_time", []):
        blocks = row.get("blocks")
        for key in ("analyze_ms", "range_test_ms", "reanalyze_ms"):
            if key in row:
                out[f"analysis_time[{blocks}].{key}"] = row[key]
    for row in doc.get("incremental_latency", []):
        blocks = row.get("blocks")
        for key in ("cold_ms", "update_ms"):
            if key in row:
                out[f"incremental[{blocks}].{key}"] = row[key]
    warm = (doc.get("persistent_store") or {}).get("warm") or {}
    if "stage_ms" in warm:
        out["store.warm.stage_ms"] = warm["stage_ms"]
    return out


def quality_metrics(doc):
    """Machine-independent metrics where LOWER is worse."""
    out = {}
    shared = (doc.get("interprocedural_cg") or {}).get("shared") or {}
    if "hit_rate" in shared:
        out["cross_cache.shared.hit_rate"] = shared["hit_rate"]
    warm = (doc.get("persistent_store") or {}).get("warm") or {}
    hits = (warm.get("persistent_store") or {}).get("hits")
    if hits is not None:
        out["store.warm.hits"] = hits
    agg = (doc.get("coverage") or {}).get("aggregate") or {}
    if "static_parallel" in agg:
        out["coverage.static_parallel"] = agg["static_parallel"]
    return out


def median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fraction above the normalized baseline"
                             " (default 0.25)")
    parser.add_argument("--noise-floor-ms", type=float, default=5.0,
                        help="absolute delta a time metric must exceed to"
                             " count as a regression (default 5.0)")
    args = parser.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)

    base_times = time_metrics(base)
    cand_times = time_metrics(cand)
    shared_names = sorted(set(base_times) & set(cand_times))
    # Zero-ms baseline entries can't form a ratio; ignore them (they are far
    # below any noise floor anyway).
    ratios = {n: cand_times[n] / base_times[n]
              for n in shared_names if base_times[n] > 0}
    if not ratios:
        sys.exit("bench_compare.py: no comparable time metrics between "
                 f"{args.baseline} and {args.candidate}")
    speed = median(ratios.values())

    failures = []
    report = [f"machine-speed factor (median candidate/baseline ratio over "
              f"{len(ratios)} time metrics): {speed:.2f}x",
              "",
              f"{'metric':44s} {'base':>9s} {'cand':>9s} {'ratio':>6s} "
              f"{'norm':>6s}  verdict"]
    for name in shared_names:
        if name not in ratios:
            continue
        ratio = ratios[name]
        normalized = ratio / speed
        raw_delta = cand_times[name] - base_times[name]
        regressed = (normalized > 1.0 + args.threshold
                     and ratio > 1.0 + args.threshold
                     and raw_delta > args.noise_floor_ms)
        verdict = "REGRESSED" if regressed else "ok"
        if regressed:
            failures.append(
                f"{name}: {base_times[name]:.2f} ms -> {cand_times[name]:.2f} ms "
                f"({normalized:.2f}x after speed normalization, raw {ratio:.2f}x, "
                f"+{raw_delta:.1f} ms beyond the {args.noise_floor_ms:.0f} ms floor)")
        report.append(f"{name:44s} {base_times[name]:9.2f} {cand_times[name]:9.2f} "
                      f"{ratio:6.2f} {normalized:6.2f}  {verdict}")

    report.append("")
    base_quality = quality_metrics(base)
    cand_quality = quality_metrics(cand)
    for name in sorted(set(base_quality) & set(cand_quality)):
        b, c = base_quality[name], cand_quality[name]
        floor = b * (1.0 - args.threshold)
        regressed = c < floor or (name == "store.warm.hits" and c <= 0)
        verdict = "REGRESSED" if regressed else "ok"
        if regressed:
            failures.append(f"{name}: {b} -> {c} (floor {floor:.2f})")
        report.append(f"{name:44s} {b!s:>9s} {c!s:>9s} {'':6s} {'':6s}  {verdict}")

    print("\n".join(report))
    if failures:
        print("\nbench_compare.py: PERF REGRESSION vs "
              f"{args.baseline}:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"\nbench_compare.py: no regressions vs {args.baseline} "
          f"(threshold {args.threshold:.0%}, noise floor "
          f"{args.noise_floor_ms:.0f} ms)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
