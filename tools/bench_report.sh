#!/usr/bin/env sh
# Runs the symbolic micro benches (google-benchmark JSON), the E6
# analysis-time stage-split bench, the fig10 interprocedural-analysis
# preface (summary-cache hit rates), the E5 inspector-overhead table, a
# corpus coverage run ({static_parallel, hybrid_parallel, serial}), a
# cold-vs-warm persistent-store pair (the warm run MUST report store hits,
# or the script fails), a journal-overhead guard (a warm run with the
# crash-safe WAL on must cost < 5% over one without, outside the timer noise
# floor), and the incremental-latency bench (single-function edit through a
# warm IncrementalEngine; an update that reuses NO summaries or verdicts
# fails the run), and merges them into one JSON document — the perf
# trajectory snapshot checked in at the repo root (BENCH_pr<N>.json).
#
# usage: bench_report.sh <build-dir> <output.json> [min_time_seconds]
set -eu

BUILD_DIR=${1:?usage: bench_report.sh <build-dir> <output.json> [min_time]}
OUT=${2:?usage: bench_report.sh <build-dir> <output.json> [min_time]}
MIN_TIME=${3:-0.2}

MICRO="$BUILD_DIR/bench_micro_symbolic"
ANALYSIS="$BUILD_DIR/bench_analysis_time"
FIG10="$BUILD_DIR/bench_fig10_cg_speedup"
INSPECTOR="$BUILD_DIR/bench_inspector_overhead"
INCREMENTAL="$BUILD_DIR/bench_incremental_latency"
ANALYZE="$BUILD_DIR/sspar-analyze"

if [ ! -x "$MICRO" ]; then
  echo "bench_report.sh: $MICRO not built (google-benchmark missing?)" >&2
  exit 1
fi

TMP_MICRO=$(mktemp)
TMP_ANALYSIS=$(mktemp)
TMP_IPA=$(mktemp)
TMP_INSPECTOR=$(mktemp)
TMP_COVERAGE=$(mktemp)
TMP_STORE_COLD=$(mktemp)
TMP_STORE_WARM=$(mktemp)
TMP_STORE_FILE=$(mktemp)
TMP_JOURNAL_WARM=$(mktemp)
TMP_JOURNAL_FILE=$(mktemp)
TMP_INCREMENTAL=$(mktemp)
trap 'rm -f "$TMP_MICRO" "$TMP_ANALYSIS" "$TMP_IPA" "$TMP_INSPECTOR" "$TMP_COVERAGE" "$TMP_STORE_COLD" "$TMP_STORE_WARM" "$TMP_STORE_FILE" "$TMP_JOURNAL_WARM" "$TMP_JOURNAL_FILE" "$TMP_JOURNAL_FILE.journal" "$TMP_INCREMENTAL"' EXIT

# Older google-benchmark rejects the "0.01s" suffix form; pass a plain double.
"$MICRO" --benchmark_format=json --benchmark_min_time="$MIN_TIME" >"$TMP_MICRO"
if [ -x "$ANALYSIS" ]; then
  "$ANALYSIS" >"$TMP_ANALYSIS"
else
  : >"$TMP_ANALYSIS"
fi
if [ -x "$FIG10" ]; then
  "$FIG10" --analysis-only >"$TMP_IPA"
else
  : >"$TMP_IPA"
fi
# The inspector bench simulates an iterative solver; scale the invocation
# count down for smoke runs (min_time < 0.1 → CI's tiny-budget mode).
case "$MIN_TIME" in
  0.0*) INSPECTOR_INVOCATIONS=3 ;;
  *) INSPECTOR_INVOCATIONS=50 ;;
esac
if [ -x "$INSPECTOR" ]; then
  "$INSPECTOR" "$INSPECTOR_INVOCATIONS" >"$TMP_INSPECTOR"
else
  : >"$TMP_INSPECTOR"
fi
if [ -x "$ANALYZE" ]; then
  "$ANALYZE" --threads=1 --json >"$TMP_COVERAGE"
else
  : >"$TMP_COVERAGE"
fi
# Cold-vs-warm persistent store over the corpus: run 1 populates the store
# from scratch, run 2 starts from it. The warm run's persistent_store.hits
# must be positive — a warm store that serves nothing is a regression.
if [ -x "$ANALYZE" ]; then
  rm -f "$TMP_STORE_FILE"  # mktemp created it empty; the store wants absent-or-valid
  "$ANALYZE" --threads=1 --json --store="$TMP_STORE_FILE" >"$TMP_STORE_COLD"
  "$ANALYZE" --threads=1 --json --store="$TMP_STORE_FILE" >"$TMP_STORE_WARM"
else
  : >"$TMP_STORE_COLD"
  : >"$TMP_STORE_WARM"
fi

# Journal-overhead guard: the crash-safe WAL (--journal) must not make warm
# runs measurably slower. Warm both stores, then time best-of-3 warm runs
# each way; the merge step fails if the journaled run costs >= 5% more
# (beyond a 25 ms noise floor — process startup dominates at corpus scale).
PLAIN_WARM_MS=""
JOURNAL_WARM_MS=""
if [ -x "$ANALYZE" ]; then
  rm -f "$TMP_JOURNAL_FILE" "$TMP_JOURNAL_FILE.journal"
  "$ANALYZE" --threads=1 --quiet --store="$TMP_JOURNAL_FILE" --journal
  "$ANALYZE" --threads=1 --json --store="$TMP_JOURNAL_FILE" --journal >"$TMP_JOURNAL_WARM"
  best_of_3() {
    python3 -c '
import subprocess, sys, time
best = None
for _ in range(3):
    t = time.perf_counter()
    subprocess.run(sys.argv[1:], stdout=subprocess.DEVNULL, check=True)
    ms = (time.perf_counter() - t) * 1000.0
    best = ms if best is None or ms < best else best
print(f"{best:.1f}")' "$@"
  }
  PLAIN_WARM_MS=$(best_of_3 "$ANALYZE" --threads=1 --quiet --store="$TMP_STORE_FILE")
  JOURNAL_WARM_MS=$(best_of_3 "$ANALYZE" --threads=1 --quiet --store="$TMP_JOURNAL_FILE" --journal)
else
  : >"$TMP_JOURNAL_WARM"
fi

# Incremental-latency bench: exits nonzero itself (failing this script via
# set -e) when the warm update reuses nothing, diverges from cold analysis,
# or shows no speedup at the largest size.
if [ -x "$INCREMENTAL" ]; then
  "$INCREMENTAL" >"$TMP_INCREMENTAL"
else
  : >"$TMP_INCREMENTAL"
fi

python3 - "$TMP_MICRO" "$TMP_ANALYSIS" "$TMP_IPA" "$TMP_INSPECTOR" "$TMP_COVERAGE" "$TMP_STORE_COLD" "$TMP_STORE_WARM" "$TMP_JOURNAL_WARM" "${PLAIN_WARM_MS:-}" "${JOURNAL_WARM_MS:-}" "$TMP_INCREMENTAL" "$OUT" <<'EOF'
import json
import sys

(micro_path, analysis_path, ipa_path, inspector_path, coverage_path,
 store_cold_path, store_warm_path, journal_warm_path,
 plain_warm_ms, journal_warm_ms, incremental_path, out_path) = sys.argv[1:13]

with open(micro_path) as f:
    micro = json.load(f)

# The stage-split bench prints an ASCII table; keep it verbatim (it is the
# human-readable record) and parse the data rows into structured form.
with open(analysis_path) as f:
    analysis_text = f.read()

rows = []
header = None
for line in analysis_text.splitlines():
    cells = line.split()
    if cells[:1] == ["blocks"]:
        header = ["blocks", "loops", "source_lines", "parse_ms", "analyze_ms",
                  "range_test_ms", "reanalyze_ms", "parallel_loops"]
        continue
    if header and len(cells) == len(header) and cells[0].isdigit():
        rows.append({k: float(v) if "." in v else int(v)
                     for k, v in zip(header, cells)})

# fig10 --analysis-only: the interprocedural CG variant. Parse the
# "summary_cache <label> k=v ..." lines into per-model summary-cache stats.
with open(ipa_path) as f:
    ipa_text = f.read()

ipa = {}
for line in ipa_text.splitlines():
    cells = line.split()
    if not cells:
        continue
    if cells[0] == "analysis" and len(cells) >= 3:
        entry = ipa.setdefault(cells[1], {})
        for kv in cells[2:]:
            k, _, v = kv.partition("=")
            entry[k] = v
    elif cells[0] == "summary_cache" and len(cells) >= 3:
        entry = ipa.setdefault(cells[1], {})
        for kv in cells[2:]:
            k, _, v = kv.partition("=")
            entry[k] = float(v) if "." in v else int(v)

# E5 inspector-overhead table: keep the raw text, parse the data rows.
with open(inspector_path) as f:
    inspector_text = f.read()

inspector_rows = []
for line in inspector_text.splitlines():
    cells = line.split()
    if len(cells) == 8 and cells[0].isdigit():
        inspector_rows.append({
            "rows": int(cells[0]),
            "nnz": int(cells[1]),
            "serial_ms": float(cells[2]),
            "static_ms": float(cells[3]),
            "inspector_ms": float(cells[4]),
            "inspect_share_pct": float(cells[5].rstrip("%")),
            "static_speedup": float(cells[6].rstrip("x")),
            "inspector_speedup": float(cells[7].rstrip("x")),
        })

# Corpus coverage: the static/hybrid/serial partition from sspar-analyze
# --json (deterministic at any thread count).
with open(coverage_path) as f:
    coverage_text = f.read()

coverage = {}
if coverage_text.strip():
    report = json.loads(coverage_text)
    coverage = {
        "aggregate": report.get("stats", {}).get("coverage", {}),
        "hybrid_programs": sorted(
            p["name"] for p in report.get("programs", [])
            if p.get("coverage", {}).get("hybrid_parallel", 0) > 0),
    }

# Persistent-store cold/warm pair: stats.persistent_store from each run plus
# the summed per-stage analysis wall-clock, the store's payoff signal.
def store_run(path):
    with open(path) as f:
        text = f.read()
    if not text.strip():
        return None
    report = json.loads(text)
    stage_ms = sum(
        stage.get("total_ms", 0.0)
        for p in report.get("programs", [])
        for stage in p.get("stages", {}).values())
    return {
        "persistent_store": report.get("stats", {}).get("persistent_store", {}),
        "summary_scc": report.get("stats", {}).get("summary_scc", 0),
        "stage_ms": round(stage_ms, 3),
    }

store_cold = store_run(store_cold_path)
store_warm = store_run(store_warm_path)
if store_warm is not None:
    warm_hits = store_warm["persistent_store"].get("hits", 0)
    if warm_hits <= 0:
        sys.exit("bench_report.sh: warm persistent-store run reported 0 hits "
                 "— the store round-trip is broken")

# Journal guard: a warm --journal run must serve hits (its records live only
# in the WAL until a checkpoint) and must not cost >= 5% over the plain warm
# run, outside a 25 ms absolute noise floor.
journal = None
journal_warm = store_run(journal_warm_path)
if journal_warm is not None:
    if journal_warm["persistent_store"].get("hits", 0) <= 0:
        sys.exit("bench_report.sh: warm journal-mode run reported 0 hits "
                 "— WAL replay is broken")
    plain_ms = float(plain_warm_ms) if plain_warm_ms else 0.0
    wal_ms = float(journal_warm_ms) if journal_warm_ms else 0.0
    overhead_pct = ((wal_ms - plain_ms) / plain_ms * 100.0) if plain_ms > 0 else 0.0
    if overhead_pct >= 5.0 and (wal_ms - plain_ms) > 25.0:
        sys.exit(f"bench_report.sh: journal warm-run overhead {overhead_pct:.1f}% "
                 f"({plain_ms:.1f} ms plain vs {wal_ms:.1f} ms journal) — "
                 "the WAL must stay under 5%")
    journal = {
        "warm": journal_warm,
        "plain_warm_best_ms": round(plain_ms, 1),
        "journal_warm_best_ms": round(wal_ms, 1),
        "overhead_pct": round(overhead_pct, 1),
    }

# Incremental-latency table: "blocks functions loops cold update speedup
# dirty reanalyzed reused_summaries reused_verdicts" data rows. Re-enforce
# the reuse invariant here too (the bench binary already failed on it, but
# a stale/empty capture must not slip a hollow report through).
with open(incremental_path) as f:
    incremental_text = f.read()

incremental_rows = []
for line in incremental_text.splitlines():
    cells = line.split()
    if len(cells) == 10 and cells[0].isdigit():
        incremental_rows.append({
            "blocks": int(cells[0]),
            "functions": int(cells[1]),
            "loops": int(cells[2]),
            "cold_ms": float(cells[3]),
            "update_ms": float(cells[4]),
            "speedup": float(cells[5].rstrip("x")),
            "dirty": int(cells[6]),
            "reanalyzed": int(cells[7]),
            "reused_summaries": int(cells[8]),
            "reused_verdicts": int(cells[9]),
        })

if incremental_text.strip():
    if not incremental_rows:
        sys.exit("bench_report.sh: incremental-latency output had no data rows")
    for row in incremental_rows:
        if row["reused_summaries"] + row["reused_verdicts"] <= 0:
            sys.exit("bench_report.sh: incremental update at %d blocks reused "
                     "nothing — dirty-cone reuse is broken" % row["blocks"])

doc = {
    "context": micro.get("context", {}),
    "micro_symbolic": micro.get("benchmarks", []),
    "analysis_time": rows,
    "analysis_time_raw": analysis_text,
    "interprocedural_cg": ipa,
    "interprocedural_cg_raw": ipa_text,
    "inspector_overhead": inspector_rows,
    "inspector_overhead_raw": inspector_text,
    "coverage": coverage,
    "persistent_store": {"cold": store_cold, "warm": store_warm,
                         "journal": journal},
    "incremental_latency": incremental_rows,
    "incremental_latency_raw": incremental_text,
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path}")
EOF
