#!/usr/bin/env sh
# Runs the symbolic micro benches (google-benchmark JSON), the E6
# analysis-time stage-split bench, and the fig10 interprocedural-analysis
# preface (summary-cache hit rates), and merges them into one JSON document —
# the perf trajectory snapshot checked in at the repo root (BENCH_pr4.json).
#
# usage: bench_report.sh <build-dir> <output.json> [min_time_seconds]
set -eu

BUILD_DIR=${1:?usage: bench_report.sh <build-dir> <output.json> [min_time]}
OUT=${2:?usage: bench_report.sh <build-dir> <output.json> [min_time]}
MIN_TIME=${3:-0.2}

MICRO="$BUILD_DIR/bench_micro_symbolic"
ANALYSIS="$BUILD_DIR/bench_analysis_time"
FIG10="$BUILD_DIR/bench_fig10_cg_speedup"

if [ ! -x "$MICRO" ]; then
  echo "bench_report.sh: $MICRO not built (google-benchmark missing?)" >&2
  exit 1
fi

TMP_MICRO=$(mktemp)
TMP_ANALYSIS=$(mktemp)
TMP_IPA=$(mktemp)
trap 'rm -f "$TMP_MICRO" "$TMP_ANALYSIS" "$TMP_IPA"' EXIT

# Older google-benchmark rejects the "0.01s" suffix form; pass a plain double.
"$MICRO" --benchmark_format=json --benchmark_min_time="$MIN_TIME" >"$TMP_MICRO"
if [ -x "$ANALYSIS" ]; then
  "$ANALYSIS" >"$TMP_ANALYSIS"
else
  : >"$TMP_ANALYSIS"
fi
if [ -x "$FIG10" ]; then
  "$FIG10" --analysis-only >"$TMP_IPA"
else
  : >"$TMP_IPA"
fi

python3 - "$TMP_MICRO" "$TMP_ANALYSIS" "$TMP_IPA" "$OUT" <<'EOF'
import json
import sys

micro_path, analysis_path, ipa_path, out_path = sys.argv[1:5]

with open(micro_path) as f:
    micro = json.load(f)

# The stage-split bench prints an ASCII table; keep it verbatim (it is the
# human-readable record) and parse the data rows into structured form.
with open(analysis_path) as f:
    analysis_text = f.read()

rows = []
header = None
for line in analysis_text.splitlines():
    cells = line.split()
    if cells[:1] == ["blocks"]:
        header = ["blocks", "loops", "source_lines", "parse_ms", "analyze_ms",
                  "range_test_ms", "reanalyze_ms", "parallel_loops"]
        continue
    if header and len(cells) == len(header) and cells[0].isdigit():
        rows.append({k: float(v) if "." in v else int(v)
                     for k, v in zip(header, cells)})

# fig10 --analysis-only: the interprocedural CG variant. Parse the
# "summary_cache <label> k=v ..." lines into per-model summary-cache stats.
with open(ipa_path) as f:
    ipa_text = f.read()

ipa = {}
for line in ipa_text.splitlines():
    cells = line.split()
    if not cells:
        continue
    if cells[0] == "analysis" and len(cells) >= 3:
        entry = ipa.setdefault(cells[1], {})
        for kv in cells[2:]:
            k, _, v = kv.partition("=")
            entry[k] = v
    elif cells[0] == "summary_cache" and len(cells) >= 3:
        entry = ipa.setdefault(cells[1], {})
        for kv in cells[2:]:
            k, _, v = kv.partition("=")
            entry[k] = float(v) if "." in v else int(v)

doc = {
    "context": micro.get("context", {}),
    "micro_symbolic": micro.get("benchmarks", []),
    "analysis_time": rows,
    "analysis_time_raw": analysis_text,
    "interprocedural_cg": ipa,
    "interprocedural_cg_raw": ipa_text,
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path}")
EOF
