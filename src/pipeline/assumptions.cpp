#include "pipeline/assumptions.h"

#include <exception>

#include "core/analyzer.h"
#include "frontend/ast.h"
#include "interp/interpreter.h"

namespace sspar::pipeline {

Assumptions::Assumptions(std::initializer_list<std::pair<std::string, int64_t>> items) {
  for (const auto& [name, value] : items) add(name, value);
}

Assumptions::Assumptions(const std::vector<std::pair<std::string, int64_t>>& items) {
  for (const auto& [name, value] : items) add(name, value);
}

void Assumptions::add(std::string name, int64_t value) {
  items_.push_back(Assumption{std::move(name), value});
}

bool Assumptions::add_spec(const std::string& spec) {
  size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  try {
    size_t consumed = 0;
    int64_t value = std::stoll(spec.substr(eq + 1), &consumed);
    if (consumed != spec.size() - eq - 1) return false;
    add(spec.substr(0, eq), value);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

void Assumptions::apply(core::Analyzer& analyzer, const ast::Program& program) const {
  for (const Assumption& a : items_) {
    if (const ast::VarDecl* decl = program.find_global(a.name)) {
      analyzer.assume_ge(decl, a.value);
    }
  }
}

void Assumptions::seed_interpreter(interp::Interpreter& interp) const {
  for (const Assumption& a : items_) {
    interp.set_scalar(a.name, a.value);
  }
}

}  // namespace sspar::pipeline
