// Staged, re-entrant compilation session — the library's primary API.
//
// A Session owns one program (source text, AST, symbol table, diagnostics)
// and exposes the paper's pipeline as explicit, independently re-runnable
// stages:
//
//   Session session(source, {{"N", 1}});
//   session.parse();                 // lex + parse + sema (cached)
//   session.analyze(options);        // index-array property analysis
//   session.parallelize();           // extended Range Test per loop
//   session.annotate();              // #pragma omp onto the AST
//   auto emitted = session.emit();   // re-emit annotated source
//
// Each stage implies the ones before it, so `session.parallelize()` alone
// runs the whole front half. Results are cached on the session:
//
//   * parse() runs at most once per source; re-analyzing under different
//     AnalyzerOptions (the ablation loop) NEVER re-parses.
//   * analyze(options) reuses the previous analysis when `options` compare
//     equal, otherwise re-runs analysis only (invalidating the downstream
//     verdict/annotation caches).
//   * parallelize() caches verdicts until the analysis changes.
//   * annotate() is idempotent: it strips any annotations from a previous
//     run before re-annotating, so emit() never sees stale pragmas.
//
// Per-stage wall-clock timings and run counts are recorded in stats() for
// the benches (parse vs analyze vs parallelize cost split).
//
// Errors are reported through the session's DiagnosticEngine as structured
// support::Diagnostic records (stable code + source location), not strings.
// A failed parse makes every downstream stage return null/empty; the
// session stays usable (e.g. for diagnostics inspection).
//
// The legacy one-shot transform::translate_source() is a thin wrapper over
// this class.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/analyzer.h"
#include "core/parallelizer.h"
#include "frontend/sema.h"
#include "ipa/summary.h"
#include "pipeline/assumptions.h"
#include "support/diagnostics.h"
#include "symbolic/arena.h"

namespace sspar::pipeline {

// Wall-clock accounting for one stage.
struct StageStats {
  int runs = 0;         // times the stage actually executed (cache hits excluded)
  double last_ms = 0.0;
  double total_ms = 0.0;
};

struct SessionStats {
  StageStats parse;
  StageStats analyze;
  StageStats parallelize;
  StageStats annotate;
  StageStats emit;
};

// Output of analyze(): the analyzer (owned by the session, valid until the
// next analyze() with different options) plus the options it ran under.
struct AnalysisResult {
  const core::Analyzer* analyzer = nullptr;
  core::AnalyzerOptions options;
};

// Output of emit().
struct EmitResult {
  bool ok = false;
  std::string output;  // the program source (annotated if annotate() ran)
  int annotated = 0;   // loops carrying a pragma at emission time
};

class Session {
 public:
  explicit Session(std::string source, Assumptions assumptions = {});

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  Session(Session&&) = default;
  Session& operator=(Session&&) = default;

  // --- Stages (each implies its predecessors) ------------------------------

  // Lex + parse + resolve. Cached: only the first call does work. Returns
  // false (and records diagnostics) on frontend errors.
  bool parse();

  // Index-array property analysis under `options`. Reuses the cached
  // analysis when `options` equal the previous run's. Null on parse failure.
  const AnalysisResult* analyze(const core::AnalyzerOptions& options = {});

  // Extended Range Test over every loop of every function, in pre-order.
  // Runs analyze({}) first if no analysis exists. Null on parse failure.
  const std::vector<core::LoopVerdict>* parallelize();

  // Annotates outermost parallel loops with OpenMP pragmas (replacing any
  // previous annotation pass). Returns the number of loops annotated, or -1
  // on parse failure.
  int annotate();

  // Prints the program in its current state.
  EmitResult emit();

  // --- Accessors -----------------------------------------------------------

  bool parsed() const { return parse_done_; }
  const ast::Program* program() const { return parsed_.program.get(); }
  const sym::SymbolTable* symbols() const { return parsed_.symbols.get(); }
  const support::DiagnosticEngine& diagnostics() const { return *diags_; }

  // The session's interprocedural summary cache: function summaries computed
  // by analyze()/parallelize() stay here across stages and across re-analysis
  // under different AnalyzerOptions (the ablation loop re-hits them). Cleared
  // by take_parse() (summaries point into the released AST).
  const ipa::SummaryDB& summaries() const { return *summaries_; }

  // Attaches a content-addressed cross-program summary cache (thread-safe;
  // see ipa/cross_cache.h): this session's summary misses then rehydrate
  // byte-identical helper summaries computed by OTHER sessions, and publish
  // their own. Call before the first analyze(); `cache` must outlive the
  // session's analysis stages. The batch driver shares one cache across all
  // corpus entries.
  void share_summaries(ipa::CrossProgramCache* cache) { summaries_->attach_shared(cache); }
  const Assumptions& assumptions() const { return assumptions_; }
  const std::string& source() const { return source_; }

  // The current analyzer (null before analyze()/parallelize()). Useful for
  // fact inspection (facts_at_end, snapshots).
  const core::Analyzer* analyzer() const { return analyzer_.get(); }

  const SessionStats& stats() const { return stats_; }

  // Moves AST + symbol-table ownership out (used by the translate_source()
  // compatibility wrapper, whose result type owns the parse). Verdicts
  // copied out earlier stay valid — they point into the moved-out Program,
  // whose nodes do not relocate. The session resets to its unparsed state:
  // every derived cache (analysis, verdicts, annotations) is dropped, and a
  // later stage call re-parses from the retained source.
  ast::ParseResult take_parse();

 private:
  void invalidate_analysis_downstream();

  std::string source_;
  Assumptions assumptions_;
  // unique_ptr: the Analyzer holds a pointer to the engine; Session moves
  // must not relocate it.
  std::unique_ptr<support::DiagnosticEngine> diags_;

  // Declared before the analysis caches: every sym::Expr they reference is
  // owned by this arena. unique_ptr keeps nodes' addresses stable across
  // Session moves.
  std::unique_ptr<sym::ExprArena> arena_;
  // Interprocedural summary cache (address-stable for the same reason);
  // declared right after the arena, which owns every expression it interns.
  std::unique_ptr<ipa::SummaryDB> summaries_;

  ast::ParseResult parsed_;
  bool parse_done_ = false;

  std::unique_ptr<core::Analyzer> analyzer_;
  std::optional<AnalysisResult> analysis_;
  // W03xx warnings are options-independent; emit them from the first
  // analysis only (re-analysis would duplicate them in diags_).
  bool analysis_diags_emitted_ = false;

  std::optional<std::vector<core::LoopVerdict>> verdicts_;
  int annotated_ = 0;
  bool annotate_done_ = false;

  SessionStats stats_;
};

}  // namespace sspar::pipeline
