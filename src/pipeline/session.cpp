#include "pipeline/session.h"

#include <chrono>

#include "frontend/printer.h"
#include "transform/omp_emitter.h"

namespace sspar::pipeline {

namespace {

// Scope guard: charges the enclosed work to one stage's stats.
class StageTimer {
 public:
  explicit StageTimer(StageStats& stats)
      : stats_(stats), start_(std::chrono::steady_clock::now()) {}
  ~StageTimer() {
    double ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                          start_)
                    .count();
    ++stats_.runs;
    stats_.last_ms = ms;
    stats_.total_ms += ms;
  }

 private:
  StageStats& stats_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

Session::Session(std::string source, Assumptions assumptions)
    : source_(std::move(source)),
      assumptions_(std::move(assumptions)),
      diags_(std::make_unique<support::DiagnosticEngine>()),
      arena_(std::make_unique<sym::ExprArena>()),
      summaries_(std::make_unique<ipa::SummaryDB>()) {}

bool Session::parse() {
  if (parse_done_) return parsed_.ok;
  StageTimer timer(stats_.parse);
  parsed_ = ast::parse_and_resolve(source_, *diags_);
  parse_done_ = true;
  return parsed_.ok;
}

void Session::invalidate_analysis_downstream() {
  verdicts_.reset();
  annotated_ = 0;
  if (annotate_done_ && parsed_.program) {
    transform::clear_annotations(*parsed_.program);
    annotate_done_ = false;
  }
}

const AnalysisResult* Session::analyze(const core::AnalyzerOptions& options) {
  if (!parse()) return nullptr;
  if (analysis_ && analysis_->options == options) return &*analysis_;
  invalidate_analysis_downstream();
  StageTimer timer(stats_.analyze);
  sym::ArenaScope arena_scope(*arena_);
  // Analysis warnings (W03xx) describe the program, not the options — every
  // re-analysis would re-emit the identical set, so only the first analyzer
  // gets the diagnostic engine.
  support::DiagnosticEngine* diags = analysis_diags_emitted_ ? nullptr : diags_.get();
  analysis_diags_emitted_ = true;
  analyzer_ = std::make_unique<core::Analyzer>(*parsed_.program, *parsed_.symbols, options,
                                               summaries_.get(), diags);
  assumptions_.apply(*analyzer_, *parsed_.program);
  analyzer_->run();
  analysis_ = AnalysisResult{analyzer_.get(), options};
  return &*analysis_;
}

const std::vector<core::LoopVerdict>* Session::parallelize() {
  if (verdicts_) return &*verdicts_;
  if (!analysis_ && !analyze()) return nullptr;
  if (!parsed_.ok) return nullptr;
  StageTimer timer(stats_.parallelize);
  sym::ArenaScope arena_scope(*arena_);
  core::Parallelizer parallelizer(*analyzer_);
  std::vector<core::LoopVerdict> verdicts;
  for (const auto& function : parsed_.program->functions) {
    auto vs = parallelizer.analyze_all(*function);
    verdicts.insert(verdicts.end(), vs.begin(), vs.end());
  }
  verdicts_ = std::move(verdicts);
  return &*verdicts_;
}

int Session::annotate() {
  const std::vector<core::LoopVerdict>* verdicts = parallelize();
  if (!verdicts) return -1;
  StageTimer timer(stats_.annotate);
  if (annotate_done_) transform::clear_annotations(*parsed_.program);
  annotated_ = transform::annotate_parallel_loops(*parsed_.program, *verdicts);
  annotate_done_ = true;
  return annotated_;
}

EmitResult Session::emit() {
  EmitResult result;
  if (!parse()) return result;
  StageTimer timer(stats_.emit);
  result.output = ast::print_program(*parsed_.program);
  result.annotated = annotated_;
  result.ok = true;
  return result;
}

ast::ParseResult Session::take_parse() {
  ast::ParseResult out = std::move(parsed_);
  parsed_ = ast::ParseResult{};
  parse_done_ = false;
  // Drop every cache derived from the moved-out AST: a later analyze() must
  // not hand back an Analyzer referencing a Program this session no longer
  // owns (the caller may have destroyed it). Function summaries reference
  // that AST too.
  analyzer_.reset();
  analysis_.reset();
  summaries_->clear();
  verdicts_.reset();
  annotated_ = 0;
  annotate_done_ = false;
  analysis_diags_emitted_ = false;
  return out;
}

}  // namespace sspar::pipeline
