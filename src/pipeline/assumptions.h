// One encoding for "symbol NAME has (at least) value V" shared by every
// pipeline entry point.
//
// Three consumers used to carry their own parallel {name, value} vectors:
// driver::ProgramInput::assumptions, transform::translate_source's
// assumptions parameter, and the corpus' per-entry parameter seeding. They
// all flow through this type now: the analyzer reads it as lower bounds
// (assume_ge), the interpreter reads it as concrete scalar inputs.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

namespace sspar::ast {
struct Program;
}
namespace sspar::core {
class Analyzer;
}
namespace sspar::interp {
class Interpreter;
}

namespace sspar::pipeline {

struct Assumption {
  std::string name;   // global / parameter symbol
  int64_t value = 1;  // lower bound for analysis, concrete value for interp
};

class Assumptions {
 public:
  Assumptions() = default;
  // Implicit on purpose: lets call sites keep writing {{"N", 1}, {"M", 2}}.
  Assumptions(std::initializer_list<std::pair<std::string, int64_t>> items);
  Assumptions(const std::vector<std::pair<std::string, int64_t>>& items);

  void add(std::string name, int64_t value);

  // Parses a CLI-style "NAME=VALUE" spec; false on malformed input.
  bool add_spec(const std::string& spec);

  // Declares every assumption to the analyzer as `name >= value`, resolving
  // names against the program's globals. Unknown names are ignored (the
  // program may simply not use that symbol).
  void apply(core::Analyzer& analyzer, const ast::Program& program) const;

  // Seeds every assumption as a concrete interpreter scalar `name = value`.
  void seed_interpreter(interp::Interpreter& interp) const;

  bool empty() const { return items_.empty(); }
  size_t size() const { return items_.size(); }
  const std::vector<Assumption>& items() const { return items_; }

 private:
  std::vector<Assumption> items_;
};

}  // namespace sspar::pipeline
