#include "runtime/thread_pool.h"

namespace sspar::rt {

ThreadPool::ThreadPool(unsigned threads) : threads_(threads == 0 ? 1 : threads) {
  workers_.reserve(threads_ - 1);
  for (unsigned w = 1; w < threads_; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::chunk_bounds(unsigned worker_id, int64_t* lo, int64_t* hi) const {
  int64_t total = job_end_ - job_begin_;
  int64_t base = total / threads_;
  int64_t extra = total % threads_;
  int64_t offset = worker_id * base + std::min<int64_t>(worker_id, extra);
  int64_t len = base + (worker_id < static_cast<unsigned>(extra) ? 1 : 0);
  *lo = job_begin_ + offset;
  *hi = *lo + len;
}

void ThreadPool::worker_loop(unsigned worker_id) {
  uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(int64_t, int64_t)>* job = nullptr;
    int64_t lo = 0, hi = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen_generation; });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
      chunk_bounds(worker_id, &lo, &hi);
    }
    if (lo < hi) (*job)(lo, hi);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::parallel_for(int64_t begin, int64_t end,
                              const std::function<void(int64_t, int64_t)>& chunk_fn) {
  if (end <= begin) return;
  if (threads_ == 1) {
    chunk_fn(begin, end);
    return;
  }
  int64_t lo = 0, hi = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &chunk_fn;
    job_begin_ = begin;
    job_end_ = end;
    pending_ = threads_ - 1;
    ++generation_;
    chunk_bounds(0, &lo, &hi);
  }
  start_cv_.notify_all();
  if (lo < hi) chunk_fn(lo, hi);  // the caller runs chunk 0
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return pending_ == 0; });
  job_ = nullptr;
}

double ThreadPool::parallel_reduce(int64_t begin, int64_t end,
                                   const std::function<double(int64_t, int64_t)>& chunk_fn) {
  if (end <= begin) return 0.0;
  std::vector<double> partials(threads_, 0.0);
  std::atomic<unsigned> next{0};
  // Identify each chunk by its position so the reduction order is stable.
  parallel_for(begin, end, [&](int64_t lo, int64_t hi) {
    unsigned slot = next.fetch_add(1, std::memory_order_relaxed);
    partials[slot % threads_] += chunk_fn(lo, hi);
  });
  double total = 0.0;
  for (double p : partials) total += p;
  return total;
}

}  // namespace sspar::rt
