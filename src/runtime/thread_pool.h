// Persistent worker pool with a blocking fork-join parallel_for.
//
// The kernels use this instead of OpenMP so thread count is controlled
// programmatically per benchmark run (2/4/6/8 threads as in the paper's
// Fig. 10) and so the project is self-contained.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sspar::rt {

class ThreadPool {
 public:
  // `threads` is the total degree of parallelism including the caller
  // (threads - 1 workers are spawned). threads == 1 degenerates to serial.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned threads() const { return threads_; }

  // Statically splits [begin, end) into `threads` contiguous chunks and runs
  // `chunk_fn(chunk_begin, chunk_end)` on each; blocks until all complete.
  // The calling thread executes chunk 0.
  void parallel_for(int64_t begin, int64_t end,
                    const std::function<void(int64_t, int64_t)>& chunk_fn);

  // Parallel sum-reduction over chunks: `chunk_fn` returns a partial value;
  // partials are added in chunk order (deterministic for a fixed thread
  // count).
  double parallel_reduce(int64_t begin, int64_t end,
                         const std::function<double(int64_t, int64_t)>& chunk_fn);

 private:
  void worker_loop(unsigned worker_id);

  unsigned threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;
  bool shutdown_ = false;
  unsigned pending_ = 0;

  // Current job (valid while pending_ > 0).
  const std::function<void(int64_t, int64_t)>* job_ = nullptr;
  int64_t job_begin_ = 0;
  int64_t job_end_ = 0;

  void chunk_bounds(unsigned worker_id, int64_t* lo, int64_t* hi) const;
};

}  // namespace sspar::rt
