#include "runtime/inspector.h"

#include <algorithm>
#include <chrono>

namespace sspar::rt {

bool is_nondecreasing(std::span<const int64_t> values) {
  for (size_t i = 1; i < values.size(); ++i) {
    if (values[i] < values[i - 1]) return false;
  }
  return true;
}

bool is_strictly_increasing(std::span<const int64_t> values) {
  for (size_t i = 1; i < values.size(); ++i) {
    if (values[i] <= values[i - 1]) return false;
  }
  return true;
}

namespace {
bool injective_impl(std::span<const int64_t> values, int64_t min_value,
                    int64_t universe_hint) {
  size_t participating = 0;
  int64_t lo = INT64_MAX, hi = INT64_MIN;
  for (int64_t v : values) {
    if (v < min_value) continue;
    ++participating;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (participating <= 1) return true;
  // Span of occupied values, computed in uint64_t: `hi - lo` can exceed
  // INT64_MAX (e.g. values straddling INT64_MIN and INT64_MAX), where a
  // signed `hi - lo + 1` overflows into a zero/negative "span" and an
  // undersized mark vector with out-of-bounds writes.
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
  // Mark-vector path while the occupied span fits within
  // max(universe_hint, 4 * size), bounded by a hard allocation cap so a
  // generous hint can never trigger a multi-gigabyte allocation for a
  // handful of values. Everything else falls through to the sort.
  constexpr uint64_t kMarkAllocationCap = uint64_t{1} << 26;  // 64 MiB of marks
  uint64_t limit = static_cast<uint64_t>(values.size()) * 4;
  if (universe_hint > 0) limit = std::max(limit, static_cast<uint64_t>(universe_hint));
  limit = std::min(limit, kMarkAllocationCap);
  if (span < limit) {  // span + 1 slots needed; `<` keeps span + 1 <= limit overflow-free
    std::vector<uint8_t> seen(static_cast<size_t>(span) + 1, 0);
    for (int64_t v : values) {
      if (v < min_value) continue;
      size_t slot = static_cast<size_t>(static_cast<uint64_t>(v) - static_cast<uint64_t>(lo));
      if (seen[slot]) return false;
      seen[slot] = 1;
    }
    return true;
  }
  std::vector<int64_t> sorted;
  sorted.reserve(participating);
  for (int64_t v : values) {
    if (v >= min_value) sorted.push_back(v);
  }
  std::sort(sorted.begin(), sorted.end());
  return std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end();
}
}  // namespace

bool is_injective(std::span<const int64_t> values, int64_t universe_hint) {
  return injective_impl(values, INT64_MIN, universe_hint);
}

bool is_subset_injective(std::span<const int64_t> values, int64_t min_value,
                         int64_t universe_hint) {
  return injective_impl(values, min_value, universe_hint);
}

InspectionResult inspect(std::span<const int64_t> values, int64_t universe_hint) {
  auto t0 = std::chrono::steady_clock::now();
  InspectionResult result;
  result.nondecreasing = is_nondecreasing(values);
  result.strictly_increasing = result.nondecreasing && is_strictly_increasing(values);
  result.injective = is_injective(values, universe_hint);
  result.inspection_seconds = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - t0).count();
  return result;
}

uint64_t InspectorExecutor::clock_now() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double InspectorExecutor::seconds_since(uint64_t t0) {
  return (clock_now() - t0) * 1e-9;
}

}  // namespace sspar::rt
