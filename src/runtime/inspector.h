// Runtime inspector/executor baseline (paper Section 4 related work).
//
// Inspector/executor schemes verify index-array properties at run time before
// executing a loop in parallel. The paper's argument against them is the
// inspection overhead on every invocation; bench/inspector_overhead
// quantifies that against the compile-time approach (which pays nothing).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "runtime/thread_pool.h"

namespace sspar::rt {

// O(n) monotonicity checks.
bool is_nondecreasing(std::span<const int64_t> values);
bool is_strictly_increasing(std::span<const int64_t> values);

// Injectivity check. A mark vector (O(n + span)) is used while the occupied
// value span fits within max(universe_hint, 4 * n), bounded by a hard
// allocation cap; otherwise a sort-based check (O(n log n)). `universe_hint`
// is the caller's promise that values fall inside [0, universe) — it widens
// the mark-vector threshold for dense-but-larger-than-4n universes, it never
// shrinks it, and it does not affect the result.
bool is_injective(std::span<const int64_t> values, int64_t universe_hint = -1);

// Injectivity of the subset with values >= min_value (paper Fig. 5).
bool is_subset_injective(std::span<const int64_t> values, int64_t min_value,
                         int64_t universe_hint = -1);

struct InspectionResult {
  bool nondecreasing = false;
  bool strictly_increasing = false;
  bool injective = false;
  double inspection_seconds = 0.0;
};

// Runs all inspections with timing.
InspectionResult inspect(std::span<const int64_t> values, int64_t universe_hint = -1);

// Inspector/executor for the canonical CSR-style loop
//   for r in [0, rows): for k in [ptr[r], ptr[r+1]): body(r, k)
// The inspector verifies that `ptr` is non-decreasing on every invocation;
// if it is, rows are executed in parallel, otherwise serially.
class InspectorExecutor {
 public:
  explicit InspectorExecutor(ThreadPool& pool) : pool_(pool) {}

  // Returns true if the parallel path was taken. Timing of the inspection is
  // accumulated in inspection_seconds().
  template <typename Body>
  bool run_csr(std::span<const int64_t> ptr, const Body& body) {
    auto t0 = clock_now();
    bool monotonic = is_nondecreasing(ptr);
    inspection_seconds_ += seconds_since(t0);
    int64_t rows = static_cast<int64_t>(ptr.size()) - 1;
    // An empty `ptr` gives rows == -1 and a single-element `ptr` gives
    // rows == 0: neither describes any row, so never touch the pool.
    if (rows <= 0) return monotonic;
    if (monotonic) {
      pool_.parallel_for(0, rows, [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          for (int64_t k = ptr[r]; k < ptr[r + 1]; ++k) body(r, k);
        }
      });
    } else {
      for (int64_t r = 0; r < rows; ++r) {
        for (int64_t k = ptr[r]; k < ptr[r + 1]; ++k) body(r, k);
      }
    }
    return monotonic;
  }

  double inspection_seconds() const { return inspection_seconds_; }
  void reset_timing() { inspection_seconds_ = 0.0; }

 private:
  static uint64_t clock_now();
  static double seconds_since(uint64_t t0);

  ThreadPool& pool_;
  double inspection_seconds_ = 0.0;
};

}  // namespace sspar::rt
