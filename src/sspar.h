// Umbrella header for the sspar library.
//
// Typical pipeline:
//
//   #include "sspar.h"
//   auto result = sspar::transform::translate_source(source, {}, {{"N", 1}});
//   // result.verdicts  — per-loop analysis (parallel? enabling property?)
//   // result.output    — OpenMP-annotated source
//
// Lower-level entry points: ast::parse_and_resolve, core::Analyzer,
// core::Parallelizer, interp::Interpreter (dynamic oracle), rt::ThreadPool,
// kern::CgBenchmark (NPB CG), corpus::all_entries().
// Batch mode: driver::BatchAnalyzer runs the pipeline over many programs
// concurrently and aggregates corpus-wide statistics.
#pragma once

#include "core/analyzer.h"        // IWYU pragma: export
#include "core/facts.h"           // IWYU pragma: export
#include "core/parallelizer.h"    // IWYU pragma: export
#include "corpus/analysis.h"      // IWYU pragma: export
#include "corpus/corpus.h"        // IWYU pragma: export
#include "driver/batch_analyzer.h"  // IWYU pragma: export
#include "frontend/frontend.h"    // IWYU pragma: export
#include "interp/interpreter.h"   // IWYU pragma: export
#include "kernels/csr.h"          // IWYU pragma: export
#include "kernels/npb_cg.h"       // IWYU pragma: export
#include "kernels/pattern_kernels.h"  // IWYU pragma: export
#include "runtime/inspector.h"    // IWYU pragma: export
#include "runtime/thread_pool.h"  // IWYU pragma: export
#include "symbolic/context.h"     // IWYU pragma: export
#include "transform/omp_emitter.h"  // IWYU pragma: export
