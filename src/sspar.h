// Umbrella header for the sspar library.
//
// Primary API — the staged pipeline session (src/pipeline/):
//
//   #include "sspar.h"
//   sspar::pipeline::Session session(source, {{"N", 1}});
//   session.parse();                        // cached; never re-runs
//   session.analyze(options);               // re-runnable per AnalyzerOptions
//   auto* verdicts = session.parallelize(); // per-loop LoopVerdict
//   session.annotate();                     // OpenMP pragmas onto the AST
//   auto emitted = session.emit();          // annotated source out
//
// Each stage implies its predecessors and caches its result on the session,
// so an ablation loop re-analyzing under many AnalyzerOptions parses once.
// Errors surface as structured support::Diagnostic records (stable DiagCode
// + SourceLocation) on session.diagnostics(); parallel verdicts carry a
// core::EnablingProperty enum. pipeline::Assumptions is the one encoding for
// "symbol >= bound" (analyzer) / "symbol = value" (interpreter) inputs.
//
// One-shot convenience (compatibility wrapper over Session):
//
//   auto result = sspar::transform::translate_source(source, {}, {{"N", 1}});
//   // result.verdicts  — per-loop analysis (parallel? enabling property?)
//   // result.output    — OpenMP-annotated source
//
// Batch mode: driver::BatchAnalyzer runs sessions over many programs
// concurrently (deterministic input-ordered aggregation, optional streaming
// per-report callback) and driver/json_report.h renders verdicts, facts, and
// BatchStats as JSON — the `sspar-analyze --json` document.
//
// Lower-level entry points: ast::parse_and_resolve, core::Analyzer,
// core::Parallelizer, interp::Interpreter (dynamic oracle), rt::ThreadPool,
// kern::CgBenchmark (NPB CG), corpus::all_entries().
#pragma once

#include "core/analyzer.h"        // IWYU pragma: export
#include "core/facts.h"           // IWYU pragma: export
#include "core/parallelizer.h"    // IWYU pragma: export
#include "corpus/analysis.h"      // IWYU pragma: export
#include "corpus/corpus.h"        // IWYU pragma: export
#include "driver/batch_analyzer.h"  // IWYU pragma: export
#include "driver/json_report.h"   // IWYU pragma: export
#include "frontend/frontend.h"    // IWYU pragma: export
#include "interp/interpreter.h"   // IWYU pragma: export
#include "ipa/call_graph.h"       // IWYU pragma: export
#include "ipa/cross_cache.h"      // IWYU pragma: export
#include "ipa/summary.h"          // IWYU pragma: export
#include "kernels/csr.h"          // IWYU pragma: export
#include "kernels/npb_cg.h"       // IWYU pragma: export
#include "kernels/pattern_kernels.h"  // IWYU pragma: export
#include "pipeline/assumptions.h"  // IWYU pragma: export
#include "pipeline/session.h"     // IWYU pragma: export
#include "runtime/inspector.h"    // IWYU pragma: export
#include "runtime/thread_pool.h"  // IWYU pragma: export
#include "support/json.h"         // IWYU pragma: export
#include "symbolic/context.h"     // IWYU pragma: export
#include "transform/omp_emitter.h"  // IWYU pragma: export
