#include "core/facts.h"

#include <algorithm>

#include "support/text.h"

namespace sspar::core {

using sym::AssumptionContext;
using sym::ExprPtr;
using sym::Range;
using sym::Truth;

namespace {

// fact section [flo:fhi] covers query section [qlo:qhi]?
bool covers(const ExprPtr& flo, const ExprPtr& fhi, const ExprPtr& qlo, const ExprPtr& qhi,
            const AssumptionContext& ctx) {
  if (!flo || !fhi || !qlo || !qhi) return false;
  return prove_le(flo, qlo, ctx) == Truth::True && prove_le(qhi, fhi, ctx) == Truth::True;
}

// Sections [alo:ahi] and [blo:bhi] provably disjoint?
bool provably_disjoint(const ExprPtr& alo, const ExprPtr& ahi, const ExprPtr& blo,
                       const ExprPtr& bhi, const AssumptionContext& ctx) {
  if (ahi && blo && prove_lt(ahi, blo, ctx) == Truth::True) return true;
  if (bhi && alo && prove_lt(bhi, alo, ctx) == Truth::True) return true;
  return false;
}

}  // namespace

ArrayFacts& FactDB::mutate(sym::SymbolId array) {
  FactsPtr& slot = facts_[array];
  if (!slot) {
    slot = std::make_shared<ArrayFacts>();
  } else if (slot.use_count() > 1) {
    slot = std::make_shared<ArrayFacts>(*slot);
  }
  // The set is uniquely owned here, so dropping const is safe.
  return const_cast<ArrayFacts&>(*slot);
}

void FactDB::add_value(sym::SymbolId array, ValueFact fact) {
  if (!fact.lo || !fact.hi || fact.value.is_bottom()) return;
  // Exact duplicates arise when a callee's exit facts re-state entry facts
  // the caller still holds; admitting them would bloat the database and
  // perturb entry-fact fingerprints. Checked before mutate(): a duplicate
  // must not trigger a copy-on-write clone.
  if (const ArrayFacts* existing = find(array)) {
    for (const ValueFact& f : existing->values) {
      if (sym::equal(f.lo, fact.lo) && sym::equal(f.hi, fact.hi) && f.value == fact.value) {
        return;
      }
    }
  }
  mutate(array).values.push_back(std::move(fact));
}

void FactDB::add_step(sym::SymbolId array, StepFact fact) {
  if (!fact.lo || !fact.hi || fact.step.is_bottom()) return;
  if (const ArrayFacts* existing = find(array)) {
    for (const StepFact& f : existing->steps) {
      if (sym::equal(f.lo, fact.lo) && sym::equal(f.hi, fact.hi) && f.step == fact.step) {
        return;
      }
    }
  }
  mutate(array).steps.push_back(std::move(fact));
}

void FactDB::add_injective(sym::SymbolId array, InjectiveFact fact) {
  if (!fact.lo || !fact.hi) return;
  // Dedup ignores from_chain: the first-added fact wins, deterministically.
  if (const ArrayFacts* existing = find(array)) {
    for (const InjectiveFact& f : existing->injectives) {
      if (sym::equal(f.lo, fact.lo) && sym::equal(f.hi, fact.hi) &&
          f.min_value == fact.min_value) {
        return;
      }
    }
  }
  mutate(array).injectives.push_back(std::move(fact));
}

void FactDB::add_identity(sym::SymbolId array, IdentityFact fact) {
  if (!fact.lo || !fact.hi) return;
  if (const ArrayFacts* existing = find(array)) {
    for (const IdentityFact& f : existing->identities) {
      if (sym::equal(f.lo, fact.lo) && sym::equal(f.hi, fact.hi)) return;
    }
  }
  // Identity implies value == index, unit step, and injectivity.
  add_value(array, ValueFact{fact.lo, fact.hi, Range::of(fact.lo, fact.hi)});
  add_step(array, StepFact{sym::add(fact.lo, sym::make_const(1)), fact.hi,
                           Range::of_consts(1, 1)});
  add_injective(array, InjectiveFact{fact.lo, fact.hi, std::nullopt});
  mutate(array).identities.push_back(std::move(fact));
}

void FactDB::restore(sym::SymbolId array, ArrayFacts facts) {
  if (facts.empty()) {
    facts_.erase(array);
    return;
  }
  facts_[array] = std::make_shared<ArrayFacts>(std::move(facts));
}

const ArrayFacts* FactDB::find(sym::SymbolId array) const {
  auto it = facts_.find(array);
  return it == facts_.end() ? nullptr : it->second.get();
}

void FactDB::kill_overlapping(sym::SymbolId array, const ExprPtr& lo, const ExprPtr& hi,
                              const AssumptionContext& ctx) {
  auto it = facts_.find(array);
  if (it == facts_.end()) return;
  const ArrayFacts& facts = *it->second;
  auto survives = [&](const ExprPtr& flo, const ExprPtr& fhi) {
    return provably_disjoint(flo, fhi, lo, hi, ctx);
  };
  auto step_survives = [&](const StepFact& f) {
    // A step fact about links [lo:hi] reads elements [lo-1:hi].
    return survives(sym::sub(f.lo, sym::make_const(1)), f.hi);
  };
  bool any_killed =
      std::any_of(facts.values.begin(), facts.values.end(),
                  [&](const ValueFact& f) { return !survives(f.lo, f.hi); }) ||
      std::any_of(facts.steps.begin(), facts.steps.end(),
                  [&](const StepFact& f) { return !step_survives(f); }) ||
      std::any_of(facts.injectives.begin(), facts.injectives.end(),
                  [&](const InjectiveFact& f) { return !survives(f.lo, f.hi); }) ||
      std::any_of(facts.identities.begin(), facts.identities.end(),
                  [&](const IdentityFact& f) { return !survives(f.lo, f.hi); });
  if (!any_killed) return;  // no clone when every fact survives
  ArrayFacts& own = mutate(array);
  std::erase_if(own.values, [&](const ValueFact& f) { return !survives(f.lo, f.hi); });
  std::erase_if(own.steps, [&](const StepFact& f) { return !step_survives(f); });
  std::erase_if(own.injectives, [&](const InjectiveFact& f) { return !survives(f.lo, f.hi); });
  std::erase_if(own.identities, [&](const IdentityFact& f) { return !survives(f.lo, f.hi); });
}

void FactDB::kill_all(sym::SymbolId array) { facts_.erase(array); }

std::optional<Range> FactDB::elem_diff(sym::SymbolId array, const ExprPtr& hi_idx,
                                       const ExprPtr& lo_idx,
                                       const AssumptionContext& ctx) const {
  auto d = sym::const_value(sym::sub(hi_idx, lo_idx));
  if (!d) return std::nullopt;
  if (*d == 0) return Range::of_consts(0, 0);
  if (*d < 0) {
    auto r = elem_diff(array, lo_idx, hi_idx, ctx);
    if (!r) return std::nullopt;
    return sym::range_negate(*r);
  }
  const ArrayFacts* facts = find(array);
  if (!facts) return std::nullopt;
  // a[hi] - a[lo] = Σ_{idx=lo+1}^{hi} (a[idx] - a[idx-1]); a covering step
  // fact bounds every term, so the sum lies in d * step.
  ExprPtr link_lo = sym::add(lo_idx, sym::make_const(1));
  for (const StepFact& f : facts->steps) {
    if (covers(f.lo, f.hi, link_lo, hi_idx, ctx)) {
      return sym::range_mul_const(f.step, *d);
    }
  }
  return std::nullopt;
}

std::optional<Range> FactDB::elem_value(sym::SymbolId array, const ExprPtr& idx,
                                        const AssumptionContext& ctx) const {
  const ArrayFacts* facts = find(array);
  if (!facts) return std::nullopt;
  for (const IdentityFact& f : facts->identities) {
    if (covers(f.lo, f.hi, idx, idx, ctx)) return Range::exact(idx);
  }
  for (const ValueFact& f : facts->values) {
    if (covers(f.lo, f.hi, idx, idx, ctx)) return f.value;
  }
  // Anchored derivation: a point value fact a[p] plus a step fact covering the
  // links (p, idx] bounds a[idx] by a[p] + (idx - p) * step (e.g. the prefix
  // sum r[0] = 0 with step in [0 : 2] gives r[b] ∈ [0 : 2b]).
  for (const ValueFact& anchor : facts->values) {
    if (!sym::equal(anchor.lo, anchor.hi)) continue;
    const ExprPtr& p = anchor.lo;
    if (prove_ge(idx, p, ctx) != Truth::True) continue;
    ExprPtr link_lo = sym::add(p, sym::make_const(1));
    for (const StepFact& f : facts->steps) {
      if (!covers(f.lo, f.hi, link_lo, idx, ctx)) continue;
      ExprPtr dist = sym::sub(idx, p);
      Range walk = sym::range_mul_nonneg(f.step, dist);
      // Only meaningful when the step has a definite sign; otherwise the
      // product bound above is not valid for a symbolic distance.
      bool nonneg = sym::prove_nonneg(f.step, ctx) == Truth::True;
      bool nonpos = f.step.hi() &&
                    prove_ge(sym::make_const(0), f.step.hi(), ctx) == Truth::True;
      if (nonneg) {
        // Values rise from the anchor: lo = anchor.lo, hi = anchor.hi + d*step.hi.
        ExprPtr hi = (anchor.value.hi() && walk.hi()) ? sym::add(anchor.value.hi(), walk.hi())
                                                      : nullptr;
        return Range::of(anchor.value.lo(), hi);
      }
      if (nonpos) {
        ExprPtr lo = (anchor.value.lo() && walk.lo()) ? sym::add(anchor.value.lo(), walk.lo())
                                                      : nullptr;
        return Range::of(lo, anchor.value.hi());
      }
    }
  }
  return std::nullopt;
}

bool FactDB::injective_over(sym::SymbolId array, const ExprPtr& lo, const ExprPtr& hi,
                            const AssumptionContext& ctx,
                            std::optional<int64_t>* min_value_out,
                            bool* from_chain_out) const {
  const ArrayFacts* facts = find(array);
  if (!facts) return false;
  for (const InjectiveFact& f : facts->injectives) {
    if (covers(f.lo, f.hi, lo, hi, ctx)) {
      if (min_value_out) *min_value_out = f.min_value;
      if (from_chain_out) *from_chain_out = f.from_chain;
      return true;
    }
  }
  // Strict monotonicity over the whole section implies injectivity.
  for (const StepFact& f : facts->steps) {
    if (!covers(f.lo, f.hi, sym::add(lo, sym::make_const(1)), hi, ctx)) continue;
    bool strict_inc = sym::prove_pos(f.step, ctx) == Truth::True;
    bool strict_dec =
        f.step.hi() && sym::prove_le(f.step.hi(), sym::make_const(-1), ctx) == Truth::True;
    if (strict_inc || strict_dec) {
      if (min_value_out) *min_value_out = std::nullopt;
      if (from_chain_out) *from_chain_out = false;
      return true;
    }
  }
  return false;
}

bool FactDB::identity_over(sym::SymbolId array, const ExprPtr& lo, const ExprPtr& hi,
                           const AssumptionContext& ctx) const {
  const ArrayFacts* facts = find(array);
  if (!facts) return false;
  for (const IdentityFact& f : facts->identities) {
    if (covers(f.lo, f.hi, lo, hi, ctx)) return true;
  }
  return false;
}

AssumptionContext FactDB::with_facts(const AssumptionContext& base) const {
  AssumptionContext ctx = base;
  // Coverage proofs inside the callbacks use `base` (symbol bounds only), so
  // the callbacks cannot recurse into themselves.
  ctx.set_elem_diff([this, &base](sym::SymbolId array, const ExprPtr& hi_idx,
                                  const ExprPtr& lo_idx) { return elem_diff(array, hi_idx, lo_idx, base); });
  ctx.set_elem_value([this, &base](sym::SymbolId array, const ExprPtr& idx) {
    return elem_value(array, idx, base);
  });
  return ctx;
}

std::string FactDB::to_string(const sym::SymbolTable& syms) const {
  std::string out;
  auto section = [&syms](const ExprPtr& lo, const ExprPtr& hi) {
    return "[" + sym::to_string(lo, syms) + " : " + sym::to_string(hi, syms) + "]";
  };
  for (const auto& [array, facts_ptr] : facts_) {
    const ArrayFacts& facts = *facts_ptr;
    const std::string& name = syms.name(array);
    for (const auto& f : facts.identities) {
      out += name + ": " + section(f.lo, f.hi) + ", Identity\n";
    }
    for (const auto& f : facts.values) {
      out += name + ": " + section(f.lo, f.hi) + ", value " + f.value.to_string(syms) + "\n";
    }
    for (const auto& f : facts.steps) {
      out += name + ": links " + section(f.lo, f.hi) + ", step " + f.step.to_string(syms) + "\n";
    }
    for (const auto& f : facts.injectives) {
      out += name + ": " + section(f.lo, f.hi) + ", Injective";
      if (f.min_value) out += support::format(" (values >= %lld)", (long long)*f.min_value);
      out += "\n";
    }
  }
  return out;
}

}  // namespace sspar::core
