// Array-property facts (paper Sections 2 and 3.2).
//
// The analyzer derives facts about index arrays from the code that fills
// them; the dependence test consumes the facts through an AssumptionContext.
// Fact kinds mirror the paper's property catalogue:
//
//  * ValueFact      — all elements in [lo:hi] have a value in `value`
//                     (the paper's "y : [sl:su], [vl:vu]" form).
//  * StepFact       — for every idx in [lo:hi], a[idx] - a[idx-1] ∈ step.
//                     step >= 0 is Monotonic_inc, step >= 1 is strictly
//                     increasing (hence injective); dually for decreasing.
//                     Carrying the whole step *range* (not just a direction)
//                     lets the Range Test scale differences with distance and
//                     prove the monotonic-difference pattern of Fig. 4.
//  * InjectiveFact  — elements in [lo:hi] are pairwise distinct; if
//                     `min_value` is set, only elements with value >=
//                     min_value participate (Fig. 5's injective subset, where
//                     negative entries are sentinels).
//  * IdentityFact   — a[idx] == idx on [lo:hi] (adds Value/Step/Injective).
//
// Sections are inclusive symbolic index ranges.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "symbolic/context.h"
#include "symbolic/range.h"

namespace sspar::core {

struct ValueFact {
  sym::ExprPtr lo = nullptr, hi = nullptr;
  sym::Range value;
};

struct StepFact {
  sym::ExprPtr lo = nullptr, hi = nullptr;  // link indices: constrains pairs (idx-1, idx)
  sym::Range step;
};

struct InjectiveFact {
  sym::ExprPtr lo = nullptr, hi = nullptr;
  std::optional<int64_t> min_value;  // subset injectivity threshold
  // Derived by the recurrence-chain layer (a provably nonzero symbolic
  // stride); proofs discharged through such a fact report the
  // "affine-injective" enabling property instead of plain "injective".
  bool from_chain = false;
};

struct IdentityFact {
  sym::ExprPtr lo = nullptr, hi = nullptr;
};

struct ArrayFacts {
  std::vector<ValueFact> values;
  std::vector<StepFact> steps;
  std::vector<InjectiveFact> injectives;
  std::vector<IdentityFact> identities;

  bool empty() const {
    return values.empty() && steps.empty() && injectives.empty() && identities.empty();
  }
};

// Flow-sensitive fact database for one program point.
//
// Copy-on-write: copying a FactDB shares the per-array fact sets and only
// clones an array's set when a mutation actually lands on it. The analyzer
// snapshots the whole database at every loop entry (LoopSnapshot), which made
// database copies the superlinear term of large-program analysis; under COW a
// snapshot is a map of pointers. Not thread-safe (one FactDB per session).
class FactDB {
 public:
  void add_value(sym::SymbolId array, ValueFact fact);
  void add_step(sym::SymbolId array, StepFact fact);
  void add_injective(sym::SymbolId array, InjectiveFact fact);
  // Adds the identity fact plus its derived Value/Step/Injective facts.
  void add_identity(sym::SymbolId array, IdentityFact fact);

  const ArrayFacts* find(sym::SymbolId array) const;

  // Installs an already-derived fact set for `array` verbatim, replacing any
  // existing facts. Used by the entry-fact projection and by cross-program
  // cache rehydration, which transfer complete fact vectors: replaying them
  // through add_identity would re-derive (and duplicate) the implied
  // Value/Step/Injective facts.
  void restore(sym::SymbolId array, ArrayFacts facts);

  // Invalidates facts of `array` that may overlap the written index section
  // [lo:hi] (null bounds = unbounded). Facts provably disjoint from the write
  // survive. `ctx` supplies symbol bounds for the disjointness proofs.
  void kill_overlapping(sym::SymbolId array, const sym::ExprPtr& lo, const sym::ExprPtr& hi,
                        const sym::AssumptionContext& ctx);
  // Drops every fact about `array`.
  void kill_all(sym::SymbolId array);

  // --- Queries (all proofs use `ctx` for symbol bounds only) ---------------

  // Range of a[hi_idx] - a[lo_idx] from step facts; handles negative and zero
  // constant distances. Nullopt if no covering fact.
  std::optional<sym::Range> elem_diff(sym::SymbolId array, const sym::ExprPtr& hi_idx,
                                      const sym::ExprPtr& lo_idx,
                                      const sym::AssumptionContext& ctx) const;

  // Value range of a[idx] from value facts covering idx.
  std::optional<sym::Range> elem_value(sym::SymbolId array, const sym::ExprPtr& idx,
                                       const sym::AssumptionContext& ctx) const;

  // True if an injectivity fact (possibly subset-restricted) covers [lo:hi].
  // When the covering fact is subset-restricted, `min_value_out` receives the
  // threshold; `from_chain_out` (if given) reports whether the discharging
  // fact came from the recurrence-chain layer.
  bool injective_over(sym::SymbolId array, const sym::ExprPtr& lo, const sym::ExprPtr& hi,
                      const sym::AssumptionContext& ctx,
                      std::optional<int64_t>* min_value_out = nullptr,
                      bool* from_chain_out = nullptr) const;

  bool identity_over(sym::SymbolId array, const sym::ExprPtr& lo, const sym::ExprPtr& hi,
                     const sym::AssumptionContext& ctx) const;

  // Extends `base` (symbol bounds) with elem_diff / elem_value callbacks
  // backed by this database. The returned context references *this; it must
  // not outlive the FactDB.
  sym::AssumptionContext with_facts(const sym::AssumptionContext& base) const;

  std::string to_string(const sym::SymbolTable& syms) const;

  using FactsPtr = std::shared_ptr<const ArrayFacts>;
  const std::map<sym::SymbolId, FactsPtr>& all() const { return facts_; }

 private:
  // Clone-on-write access for mutations; creates the entry if absent.
  ArrayFacts& mutate(sym::SymbolId array);

  std::map<sym::SymbolId, FactsPtr> facts_;
};

}  // namespace sspar::core
