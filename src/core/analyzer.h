// The paper's compile-time index-array analysis (Section 3).
//
// The Analyzer walks each function in program order. For every canonical
// loop it runs:
//
//   Phase 1 (BodyInterp): abstract interpretation of one iteration of the
//   loop body with symbolic range propagation. Scalars written in the body
//   start at λ(x) (IterStart); the loop index is the symbol i; reads of
//   loop-invariant scalars use their entry values. The phase produces
//   (a) the end-of-body value range of every written scalar as a function of
//   λ and i, and (b) the list of array-write effects with symbolic subscripts.
//
//   Phase 2 (aggregate): extends the one-iteration effect across the whole
//   iteration space [lb : ub-1] with trip count n:
//     * scalar λ+k effects become entry + n*k (ranges component-wise),
//     * scalar λ+g(i) effects use the closed-form sum Σ g(i),
//     * array writes a[i+k] = v expand the subscript across the loop range
//       and produce Value/Step/Injective/Identity facts; in particular the
//       recurrence a[i] = a[i-1] + (value with provably non-negative range)
//       yields the Monotonic_inc step fact that drives the CG pattern,
//     * everything else degrades soundly (facts killed, values unbounded).
//
// After Phase 2 the loop is *collapsed*: the caller's scalar environment and
// fact database are updated with the loop's aggregate effect and analysis
// proceeds with the next statement (the paper's program-order, inside-out
// traversal falls out of the recursion).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "core/facts.h"
#include "core/loop_info.h"
#include "frontend/ast.h"
#include "symbolic/context.h"

namespace sspar::support {
class DiagnosticEngine;
}
namespace sspar::ipa {
class CallGraph;
class ContentHasher;
class SummaryDB;
struct FunctionSummary;
}

namespace sspar::core {

// May-range values of integer scalars at a program point.
struct ScalarEnv {
  std::map<const ast::VarDecl*, sym::Range> values;

  const sym::Range* find(const ast::VarDecl* decl) const {
    auto it = values.find(decl);
    return it == values.end() ? nullptr : &it->second;
  }
  void set(const ast::VarDecl* decl, sym::Range r) { values[decl] = std::move(r); }
};

// A guard `array[index] >= min` enclosing an access (paper Fig. 5: the
// access pattern references only the injective subset).
struct AccessGuard {
  const ast::VarDecl* array = nullptr;
  sym::ExprPtr index = nullptr;
  int64_t min = 0;
};

// One array access as observed by Phase 1 (per-iteration view) or aggregated
// by Phase 2 (whole-loop view; subscripts then no longer mention the index).
struct ArrayWriteEffect {
  const ast::VarDecl* array = nullptr;
  size_t dims = 1;              // number of subscripts at the access site
  sym::ExprPtr index = nullptr;  // exact symbolic subscript (innermost), may be null
  sym::Range index_range;       // may-range of the subscript (for kills)
  sym::Range value;             // may-range of the stored value (writes only)
  bool conditional = false;     // access may not execute every iteration
  bool from_inner = false;      // aggregated from a nested loop
  std::vector<AccessGuard> guards;  // enclosing array-value guards
  // Indirection structure a[b[t]] preserved through aggregation: the access
  // touches positions {b[t] : t ∈ via_domain}. When b is injective, position
  // disjointness reduces to domain disjointness (Fig. 6: Blk[p[k]] with
  // k ∈ [r[b] : r[b+1]-1]).
  const ast::VarDecl* via_array = nullptr;
  sym::Range via_domain;
  // Subscript was literally `x++` on an integer scalar (dense-prefix pattern,
  // paper Fig. 9 line 6; aggregation rule is an extension of Section 3.4).
  const ast::VarDecl* post_inc_subscript = nullptr;
  // Non-null when this effect was instantiated from a callee's function
  // summary at a call site (provenance for verdicts and fact tracking).
  const ast::FuncDecl* summary_origin = nullptr;
};

// Aggregate effect of one loop, expressed in terms of values at loop entry.
struct LoopEffect {
  // Final value of every scalar the loop may modify (loop index included when
  // it outlives the loop).
  std::map<const ast::VarDecl*, sym::Range> scalar_finals;
  // All array writes/reads, aggregated across the iteration space.
  std::vector<ArrayWriteEffect> writes;
  std::vector<ArrayWriteEffect> reads;
  // Facts established by this loop (applied by the caller after kills).
  struct ProducedFact {
    sym::SymbolId array;
    std::optional<ValueFact> value;
    std::optional<StepFact> step;
    std::optional<InjectiveFact> injective;
    std::optional<IdentityFact> identity;
  };
  std::vector<ProducedFact> facts;
  bool analyzable = true;  // false => caller must havoc conservatively
};

// Result snapshots keyed by For::loop_id, for consumption by the
// parallelizer / dependence test.
struct LoopSnapshot {
  const ast::For* loop = nullptr;
  std::optional<LoopInfo> info;
  FactDB facts_at_entry;
  ScalarEnv scalars_at_entry;
  // For each array with facts at loop entry that were produced by applying a
  // callee's summary: the (sorted) names of the summarized functions. Feeds
  // LoopVerdict::summaries_used ("property proven via summary of f").
  std::map<sym::SymbolId, std::vector<std::string>> fact_provenance;
};

struct AnalyzerOptions {
  // Extension rules (paper Section 3.4 "forthcoming aggregation algebra");
  // individually toggleable for the ablation bench.
  bool enable_identity_rule = true;       // x[i] = i  =>  Identity
  bool enable_affine_value_rule = true;   // x[i] = p*i+q => strict monotone
  bool enable_recurrence_rule = true;     // x[i] = x[i-1] + nonneg => Monotonic
  bool enable_inverse_perm_rule = true;   // a[b[i]] = i, b bijective => injective
  bool enable_dense_prefix_rule = true;   // a[x++] = v gather loops
  bool enable_branch_rules = true;        // subset-injective / disjoint strided
  bool enable_copy_rule = true;           // a[i] = b[i] propagates facts
  bool enable_lambda_sum_rule = true;     // λ+g(i) closed-form aggregation
  bool enable_chain_injectivity_rule = true;  // x[i] = m*i+q, m != 0 => injective

  // Equality lets pipeline::Session reuse a cached analysis when asked to
  // re-analyze under options it has already run.
  bool operator==(const AnalyzerOptions&) const = default;
};

class Analyzer {
 public:
  // `summaries` (optional) enables interprocedural analysis: before the
  // per-function walk, every called function is summarized bottom-up over the
  // call graph and cached there, and call sites apply the summaries instead
  // of rejecting the enclosing body. Without it the analysis is strictly
  // intraprocedural (calls degrade conservatively, as in the paper).
  // `diags` (optional) receives W03xx warnings when a loop is abandoned as
  // unanalyzable (see support::DiagCode).
  Analyzer(const ast::Program& program, sym::SymbolTable& symbols,
           AnalyzerOptions options = {}, ipa::SummaryDB* summaries = nullptr,
           support::DiagnosticEngine* diags = nullptr);

  // Declares an assumption about a global/parameter symbol (e.g. N >= 1).
  void assume(const ast::VarDecl* decl, sym::Range range);
  void assume_ge(const ast::VarDecl* decl, int64_t lo);

  // Analyzes every function in the program.
  void run();
  // Restricted run for incremental re-analysis: only functions in `only` get
  // per-loop snapshots, and summaries are materialized only for their callee
  // closure (everything a restricted analysis can request). nullptr = "all".
  void run(const std::set<const ast::FuncDecl*>* only);

  // Computes the cross-program content key of every function (bottom-up, so
  // callee keys exist before their callers fold them in). Idempotent; call
  // after assumptions are declared — keys mix assumption bounds.
  void key_all_functions(const ipa::CallGraph& graph);
  // The (hi, lo) content key of `function`, or null if not yet keyed.
  const std::pair<uint64_t, uint64_t>* content_key(const ast::FuncDecl* function) const;

  // Snapshot of the analysis state at the entry of `loop` (after run()).
  const LoopSnapshot* snapshot(const ast::For* loop) const;

  // Facts at the end of `function` (after run()).
  const FactDB* facts_at_end(const ast::FuncDecl* function) const;

  const sym::AssumptionContext& base_context() const { return base_ctx_; }
  sym::SymbolTable& symbols() const { return symbols_; }
  const AnalyzerOptions& options() const { return options_; }

  // True for declarations from the program's global scope.
  bool is_global(const ast::VarDecl* decl) const { return global_decls_.count(decl) > 0; }

 private:
  friend class BodyInterp;

  void analyze_function(const ast::FuncDecl& function);
  // Interprets a statement sequence at "top level" (not inside a loop being
  // summarized), updating env/facts in flow order and snapshotting loops.
  void flow_stmt(const ast::Stmt& stmt, ScalarEnv& env, FactDB& facts);

  // --- Interprocedural analysis (active when summaries_ is set) -------------
  // Summarizes every called function bottom-up over the call graph; with
  // `roots`, only their callee closure.
  void compute_summaries(const ipa::CallGraph& graph);
  void compute_summaries(const ipa::CallGraph& graph,
                         const std::set<const ast::FuncDecl*>* roots);
  // True when the shared cross-program cache holds a rehydratable base
  // summary for `function` (probed at its fingerprint-0 cache address).
  bool shared_summary_available(const ast::FuncDecl* function) const;
  ipa::FunctionSummary summarize_function(const ast::FuncDecl& function,
                                          const ipa::CallGraph& graph);
  // The effect-computation half of summarization: flows the body in
  // function-entry terms, seeded with `entry_facts` when given (context-
  // sensitive re-summaries) or an empty database (base summaries).
  void summarize_effects(const ast::FuncDecl& function, ipa::FunctionSummary& summary,
                         const FactDB* entry_facts);
  // Context-sensitive re-summary: re-runs the effect computation of an
  // analyzable base summary under the given entry facts (the gates and
  // conservative may-write sets carry over unchanged).
  ipa::FunctionSummary resummarize_with_context(const ipa::FunctionSummary& base,
                                                const FactDB& entry_facts);
  // Cache-through summary acquisition: session SummaryDB first, then the
  // attached cross-program cache (rehydrating on a content hit), computing
  // and publishing on miss. `graph` is required for base summaries
  // (fingerprint 0); `entry_facts` for context-sensitive ones.
  const ipa::FunctionSummary* obtain_summary(const ast::FuncDecl* function,
                                             const FactDB* entry_facts,
                                             uint64_t fingerprint,
                                             const ipa::CallGraph* graph);
  // Call-site summary selection: when the caller's fact database holds
  // entry-visible facts about arrays the callee reads, returns (computing if
  // needed) the summary specialized to the projection of those facts;
  // otherwise the base summary. `stale_arrays` excludes arrays already
  // written earlier in the interpreted body (their caller facts no longer
  // describe the state the callee observes); `scalar_unchanged` must return
  // true only for global scalars whose call-site value provably still equals
  // their caller-entry symbol (facts are expressed in caller-entry terms,
  // but the callee reinterprets the same symbols as call-time values — a
  // scalar modified in between would silently rescale every fact section).
  const ipa::FunctionSummary* context_summary(
      const ast::Call& call, const FactDB& caller_facts,
      const std::set<sym::SymbolId>& stale_arrays,
      const std::function<bool(sym::SymbolId)>& scalar_unchanged);
  // The caller-fact projection context_summary keys its cache on: facts
  // about global arrays the callee reads, restricted to expressions whose
  // meaning is frame-independent — global scalars unchanged since caller
  // entry, no array-element atoms (contents may have changed since the fact
  // was recorded), no λ/Λ/⊥, nothing caller-local.
  FactDB project_entry_facts(
      const ipa::FunctionSummary& base, const FactDB& caller_facts,
      const std::set<sym::SymbolId>& stale_arrays,
      const std::function<bool(sym::SymbolId)>& scalar_unchanged) const;
  // True if `e` keeps its meaning across the call boundary (see above).
  bool entry_visible(const sym::ExprPtr& e,
                     const std::function<bool(sym::SymbolId)>& scalar_unchanged) const;
  // The global declaration behind a symbol (null for non-globals).
  const ast::VarDecl* global_by_symbol(sym::SymbolId id) const {
    auto it = global_by_symbol_.find(id);
    return it == global_by_symbol_.end() ? nullptr : it->second;
  }
  // Content address for the cross-program cache: printed function source,
  // referenced-global declarations + assumptions, callee keys (transitive
  // closure). Stored in content_keys_; requires callees to be keyed first
  // (bottom-up order). Members of a recursive SCC are keyed as a group via
  // compute_scc_content_keys.
  void compute_content_key(const ast::FuncDecl& function, const ipa::CallGraph& graph);
  // Combined content key for a whole recursive SCC: every member's printed
  // source, referenced globals, external callee keys AND source location
  // (recursive summaries carry a failure location; folding locations into
  // the key keeps cross-program reuse of those locations sound). Each member
  // is then addressed as H(combined, member name).
  void compute_scc_content_keys(const ast::FuncDecl& member, const ipa::CallGraph& graph);
  // Mixes one function's identity (signature, printed body, referenced
  // globals + assumptions) into `h` — shared by both key paths.
  void mix_function_identity(const ast::FuncDecl& function, ipa::ContentHasher& h) const;
  // The cached summary for a call site's callee (null without a DB, for
  // unknown callees, or before compute_summaries ran).
  const ipa::FunctionSummary* call_summary(const ast::Call& call) const;
  // Conservative degradation of a statement that could not be analyzed:
  // havocs its syntactic writes plus everything its calls may write (an
  // opaque call havocs every global).
  void havoc_stmt(const ast::Stmt& stmt, ScalarEnv& env, FactDB& facts);
  // Merges a successful straight-line interpretation into env/facts (scalar
  // finals, fact kills, point facts, call-produced facts).
  void apply_straight_line(class BodyInterp& interp, ScalarEnv& env, FactDB& facts,
                           bool track_provenance);
  // W03xx: records why `loop` degraded to unanalyzable (once per loop).
  void warn_unanalyzable(const ast::For& loop, const class BodyInterp& body);

  // Phase 1 + Phase 2 for one loop. Returns the collapsed effect relative to
  // `entry_env`; `entry_facts` supplies array facts for in-loop proofs.
  LoopEffect analyze_loop(const ast::For& loop, const ScalarEnv& entry_env,
                          const FactDB& entry_facts);

  // Applies a loop effect (or a havoc if !analyzable) at a flow point.
  void apply_effect(const ast::For& loop, const LoopEffect& effect, ScalarEnv& env,
                    FactDB& facts);

  // Phase 2 helpers (implemented in aggregate.cpp).
  LoopEffect aggregate(const ast::For& loop, const LoopInfo& info, const ScalarEnv& entry_env,
                       const FactDB& entry_facts, class BodyInterp& body);

  const ast::Program& program_;
  sym::SymbolTable& symbols_;
  AnalyzerOptions options_;
  ipa::SummaryDB* summaries_ = nullptr;
  support::DiagnosticEngine* diags_ = nullptr;
  sym::AssumptionContext base_ctx_;
  std::map<int, LoopSnapshot> snapshots_;  // keyed by loop_id per function
  std::map<const ast::For*, int> loop_keys_;
  std::map<const ast::FuncDecl*, FactDB> end_facts_;
  int next_key_ = 0;
  // Summary computation re-flows callee bodies; it must not pollute the
  // per-loop snapshots the parallelizer consumes.
  bool summary_mode_ = false;
  // One-time scan: call-free programs (the common case) skip every
  // interprocedural code path, including the per-body call prescans.
  bool program_has_calls_ = false;
  // One W03xx per (loop, callee): two different abandoned calls in one loop
  // each get their own W0301; non-call failures use an empty callee key.
  std::set<std::pair<const ast::For*, std::string>> warned_loops_;
  std::set<const ast::VarDecl*> global_decls_;
  std::map<sym::SymbolId, const ast::VarDecl*> global_by_symbol_;
  // Cross-program content addresses ((hi, lo) halves of ipa::CacheKey),
  // computed bottom-up when a shared cache is attached.
  std::map<const ast::FuncDecl*, std::pair<uint64_t, uint64_t>> content_keys_;
  // Functions keyed as members of a recursive SCC: their (unanalyzable)
  // summaries are still published to the shared cache, and their
  // materializations are counted in SummaryDB::Stats::scc_summaries.
  std::set<const ast::FuncDecl*> scc_functions_;
  // Flow state of the function being analyzed: which summaries produced the
  // facts currently held for each array (cleared when locally re-derived).
  std::map<sym::SymbolId, std::set<std::string>> fact_provenance_;
};

// Evaluates an AST expression to a symbolic may-range under `env`.
// Pure (no side effects); assignment/increment sub-expressions make the
// result bottom. Used by the parallelizer for loop bounds and subscripts.
sym::Range eval_pure(const ast::Expr& expr, const ScalarEnv& env,
                     const std::set<const ast::VarDecl*>* lambda_vars = nullptr);

}  // namespace sspar::core
