// Phase 2: aggregation of one-iteration effects across the iteration space
// (paper Section 3.4, including the "forthcoming algebra" extensions).
#include "core/body_interp.h"
#include "symbolic/arena.h"
#include "symbolic/recurrence.h"

namespace sspar::core {

using sym::ExprPtr;
using sym::Range;
using sym::Truth;

namespace {

// Does the expression mention any IterStart (λ) symbol other than `except`?
bool has_foreign_lambda(const ExprPtr& e, sym::SymbolId except) {
  return sym::any_of(e, [except](const sym::Expr& n) {
    return n.kind == sym::ExprKind::IterStart && n.symbol != except;
  });
}

bool has_any_lambda(const ExprPtr& e) {
  return sym::contains_kind(e, sym::ExprKind::IterStart);
}

// Closed-form Σ_{i=lb}^{ub-1} (p*i + q) = p * (lb + ub - 1) * n / 2 + q * n.
ExprPtr affine_sum(int64_t p, const ExprPtr& q, const ExprPtr& lb, const ExprPtr& ub,
                   const ExprPtr& n) {
  ExprPtr total = sym::mul(n, q);
  if (p != 0) {
    ExprPtr twice_mean = sym::add(lb, sym::sub(ub, sym::make_const(1)));
    ExprPtr sum_i = sym::div_floor(sym::mul(twice_mean, n), sym::make_const(2));
    total = sym::add(total, sym::mul_const(sum_i, p));
  }
  return total;
}

}  // namespace

LoopEffect Analyzer::aggregate(const ast::For& loop, const LoopInfo& info,
                               const ScalarEnv& entry_env, const FactDB& entry_facts,
                               BodyInterp& body) {
  LoopEffect effect;
  const sym::SymbolId index_sym = info.index->symbol;

  // --- Loop bounds and trip count ------------------------------------------
  Range lb_r = eval_pure(*info.lb_expr, entry_env);
  Range ub_r = eval_pure(*info.ub_expr, entry_env);
  if (!lb_r.is_exact() || !ub_r.is_exact()) {
    effect.analyzable = false;
    return effect;
  }
  ExprPtr lb = lb_r.exact_value();
  ExprPtr ub = ub_r.exact_value();
  if (info.ub_inclusive) ub = sym::add(ub, sym::make_const(1));

  ExprPtr n = sym::sub(ub, lb);
  const bool trip_nonneg = prove_ge(n, sym::make_const(0), base_ctx_) == Truth::True;
  const bool trip_pos = prove_ge(n, sym::make_const(1), base_ctx_) == Truth::True;
  ExprPtr n_use = trip_nonneg ? n : sym::smax(n, sym::make_const(0));

  // Context for in-loop proofs: base assumptions + the index range + entry
  // facts (masked for arrays this loop writes, whose facts may be stale).
  sym::AssumptionContext ctx_i = base_ctx_;
  ctx_i.assume(index_sym, Range::of(lb, sym::sub(ub, sym::make_const(1))));
  FactDB masked_facts = entry_facts;
  for (const auto& w : body.writes) {
    if (w.array) masked_facts.kill_all(w.array->symbol);
  }
  sym::AssumptionContext ctx_facts = masked_facts.with_facts(ctx_i);

  // --- Scalars ---------------------------------------------------------------
  auto entry_value = [&](const ast::VarDecl* decl) -> Range {
    if (const Range* e = entry_env.find(decl)) return *e;
    return Range::exact(sym::make_sym(decl->symbol));
  };

  // λ evolution bounds for monotonically evolving scalars: if x advances by a
  // non-negative delta every iteration, its start-of-iteration value λ(x)
  // lies in [entry.lo : entry.hi + (n-1)*delta_hi]. Used to bound subscripts
  // and values that still mention λ when widening over the loop.
  sym::RangeEnv loop_env;
  loop_env.entries.emplace_back(index_sym, Range::of(lb, sym::sub(ub, sym::make_const(1))));

  for (const ast::VarDecl* decl : body.written) {
    if (body.body_locals.count(decl)) continue;
    const Range* end = body.env.find(decl);
    Range f = end ? *end : Range::bottom();
    Range entry = entry_value(decl);
    Range final = Range::bottom();

    const sym::SymbolId lam = decl->symbol;
    auto foreign = [&](const ExprPtr& e) { return e && has_foreign_lambda(e, lam); };
    if (!f.is_bottom() && !foreign(f.lo()) && !foreign(f.hi())) {
      bool lo_has = f.lo() && sym::contains_kind(f.lo(), sym::ExprKind::IterStart);
      bool hi_has = f.hi() && sym::contains_kind(f.hi(), sym::ExprKind::IterStart);
      if (!lo_has && !hi_has) {
        // Case (b): the body overwrites the value; aggregate over the index.
        Range over =
            Range::of(f.lo() ? eval_range(f.lo(), loop_env).lo() : nullptr,
                      f.hi() ? eval_range(f.hi(), loop_env).hi() : nullptr);
        if (body.definitely_written.count(decl) && trip_pos) {
          final = over;
        } else {
          final = range_join(over, entry);
        }
      } else if (lo_has && hi_has) {
        // Case (a): λ-relative recurrence; per-iteration delta in
        // [f.lo - λ : f.hi - λ].
        ExprPtr delta_lo_expr = nullptr, delta_hi_expr = nullptr;  // deltas as functions of i
        auto aggregate_bound = [&](const ExprPtr& bound, bool lower) -> ExprPtr {
          sym::LinearForm lf = sym::to_linear(bound);
          int64_t lam_coeff = 0;
          for (const auto& [atom, c] : lf.terms) {
            if (atom->kind == sym::ExprKind::IterStart && atom->symbol == lam) lam_coeff = c;
          }
          if (lam_coeff != 1) return nullptr;
          ExprPtr delta = sym::sub(bound, sym::make_iter_start(lam));
          (lower ? delta_lo_expr : delta_hi_expr) = delta;
          auto split = sym::split_affine_in(delta, index_sym);
          if (!split || has_any_lambda(delta)) return nullptr;
          if (split->coeff != 0 && (!options_.enable_lambda_sum_rule || !trip_nonneg)) {
            return nullptr;
          }
          ExprPtr total = split->coeff == 0 ? sym::mul(n_use, split->rest)
                                            : affine_sum(split->coeff, split->rest, lb, ub, n);
          ExprPtr base = lower ? entry.lo() : entry.hi();
          if (!base) return nullptr;
          return sym::add(base, total);
        };
        final = Range::of(aggregate_bound(f.lo(), true), aggregate_bound(f.hi(), false));
        if (!trip_nonneg) final = range_join(final, entry);

        // λ evolution bound for the widening environment.
        if (delta_lo_expr && delta_hi_expr && trip_nonneg) {
          Range dlo = eval_range(delta_lo_expr, loop_env);
          Range dhi = eval_range(delta_hi_expr, loop_env);
          if (!dlo.is_bottom() && !dhi.is_bottom()) {
            ExprPtr n_minus_1 = sym::sub(n, sym::make_const(1));
            if (dlo.lo() && prove_ge(dlo.lo(), sym::make_const(0), ctx_i) == Truth::True) {
              // Non-decreasing: λ ∈ [entry.lo : entry.hi + (n-1)*delta_hi].
              ExprPtr hi = (entry.hi() && dhi.hi()) ? sym::add(entry.hi(), sym::mul(n_minus_1, dhi.hi()))
                                                    : nullptr;
              loop_env.lambda_entries.emplace_back(lam, Range::of(entry.lo(), hi));
            } else if (dhi.hi() &&
                       prove_ge(sym::make_const(0), dhi.hi(), ctx_i) == Truth::True) {
              // Non-increasing: λ ∈ [entry.lo + (n-1)*delta_lo : entry.hi].
              ExprPtr lo = (entry.lo() && dlo.lo()) ? sym::add(entry.lo(), sym::mul(n_minus_1, dlo.lo()))
                                                    : nullptr;
              loop_env.lambda_entries.emplace_back(lam, Range::of(lo, entry.hi()));
            }
          }
        }
      }
      // Mixed λ / non-λ bounds: leave bottom.
    }
    effect.scalar_finals[decl] = final;
  }

  // The loop index itself survives the loop unless declared in the for-init.
  if (loop.init->kind != ast::StmtNodeKind::DeclStmt) {
    effect.scalar_finals[info.index] = Range::exact(sym::smax(lb, ub));
  }

  // Widens a per-iteration range to a whole-loop may-range using the loop
  // environment (index range + λ evolution bounds).
  auto widen = [&](const Range& r) -> Range {
    auto widen_bound = [&](const ExprPtr& bound, bool lower) -> ExprPtr {
      if (!bound) return nullptr;
      Range evaluated = eval_range(bound, loop_env);
      return lower ? evaluated.lo() : evaluated.hi();
    };
    return Range::of(widen_bound(r.lo(), true), widen_bound(r.hi(), false));
  };

  // --- Array accesses: aggregated ranges (kills + dependence info) -----------
  auto widen_access = [&](const ArrayWriteEffect& w) {
    ArrayWriteEffect agg = w;
    agg.index_range = widen(w.index_range);
    agg.value = widen(w.value);
    agg.index = nullptr;
    agg.conditional = agg.conditional || !trip_pos;
    if (w.via_array) agg.via_domain = widen(w.via_domain);
    return agg;
  };
  for (const auto& w : body.writes) effect.writes.push_back(widen_access(w));
  for (const auto& r : body.reads) effect.reads.push_back(widen_access(r));

  // --- Array writes: produced facts -----------------------------------------
  // Only direct (non-inner) 1-D writes with exact subscripts generate facts.
  auto push_fact = [&](LoopEffect::ProducedFact fact) { effect.facts.push_back(std::move(fact)); };

  std::map<const ast::VarDecl*, int> direct_writes;
  for (const auto& w : body.writes) {
    if (!w.from_inner && w.array) direct_writes[w.array]++;
  }

  for (const auto& w : body.writes) {
    if (w.from_inner || !w.array || w.dims != 1 || !w.index) continue;
    const sym::SymbolId array_sym = w.array->symbol;

    // Dense-prefix gather: a[x++] = v.
    if (w.post_inc_subscript) {
      if (!options_.enable_dense_prefix_rule) continue;
      const ast::VarDecl* x = w.post_inc_subscript;
      const Range* x_end = body.env.find(x);
      Range x_entry = entry_value(x);
      bool unit_step = x_end && x_end->is_exact() &&
                       sym::equal(x_end->exact_value(),
                                  sym::add(sym::make_iter_start(x->symbol), sym::make_const(1)));
      if (!unit_step || w.conditional || !trip_nonneg || !x_entry.is_exact() ||
          direct_writes[w.array] != 1) {
        continue;
      }
      ExprPtr sec_lo = x_entry.exact_value();
      ExprPtr sec_hi = sym::add(sec_lo, sym::sub(n, sym::make_const(1)));
      LoopEffect::ProducedFact fact;
      fact.array = array_sym;
      if (w.value.is_exact()) {
        if (auto split = sym::split_affine_in(w.value.exact_value(), index_sym);
            split && !has_any_lambda(w.value.exact_value())) {
          int64_t p = split->coeff;
          fact.step = StepFact{sym::add(sec_lo, sym::make_const(1)), sec_hi,
                               Range::of_consts(p, p)};
          if (p != 0) fact.injective = InjectiveFact{sec_lo, sec_hi, std::nullopt};
        }
      }
      Range vals = widen(w.value);
      if (!vals.is_bottom()) fact.value = ValueFact{sec_lo, sec_hi, vals};
      if (fact.value || fact.step || fact.injective) push_fact(std::move(fact));
      continue;
    }

    auto aff_idx = sym::split_affine_in(w.index, index_sym);
    bool idx_clean = aff_idx && aff_idx->rest && !has_any_lambda(aff_idx->rest) &&
                     !sym::contains_kind(aff_idx->rest, sym::ExprKind::ArrayElem);
    if (!aff_idx || !idx_clean || aff_idx->coeff == 0) {
      // Subscripted-subscript write a[b[i+m]] = i: inverse permutation rule.
      if (options_.enable_inverse_perm_rule && !w.conditional && trip_pos &&
          w.index->kind == sym::ExprKind::ArrayElem) {
        const sym::SymbolId b_sym = w.index->symbol;
        auto b_aff = sym::split_affine_in(w.index->operands[0], index_sym);
        if (b_aff && b_aff->coeff == 1 && w.value.is_exact() &&
            sym::equal(w.value.exact_value(), sym::make_sym(index_sym))) {
          ExprPtr read_lo = sym::add(lb, b_aff->rest);
          ExprPtr read_hi = sym::add(sym::sub(ub, sym::make_const(1)), b_aff->rest);
          if (masked_facts.injective_over(b_sym, read_lo, read_hi, ctx_i)) {
            if (auto b_vals = masked_facts.elem_value(b_sym, w.index->operands[0], ctx_i)) {
              Range section = widen(*b_vals);
              if (section.lo_bounded() && section.hi_bounded()) {
                ExprPtr width =
                    sym::add(sym::sub(section.hi(), section.lo()), sym::make_const(1));
                if (prove_eq(width, n, base_ctx_) == Truth::True) {
                  LoopEffect::ProducedFact fact;
                  fact.array = array_sym;
                  fact.value = ValueFact{section.lo(), section.hi(),
                                         Range::of(lb, sym::sub(ub, sym::make_const(1)))};
                  fact.injective = InjectiveFact{section.lo(), section.hi(), std::nullopt};
                  push_fact(std::move(fact));
                }
              }
            }
          }
        }
      }
      // Loop-invariant subscript a[k] = v every iteration.
      if (aff_idx && aff_idx->coeff == 0 && idx_clean && !w.conditional && trip_pos) {
        Range vals = widen(w.value);
        if (!vals.is_bottom()) {
          LoopEffect::ProducedFact fact;
          fact.array = array_sym;
          fact.value = ValueFact{w.index, w.index, vals};
          push_fact(std::move(fact));
        }
      }
      continue;
    }

    const int64_t c = aff_idx->coeff;
    const ExprPtr k = aff_idx->rest;
    ExprPtr pos_at_lb = sym::add(sym::mul_const(lb, c), k);
    ExprPtr pos_at_last = sym::add(sym::mul_const(sym::sub(ub, sym::make_const(1)), c), k);
    ExprPtr sec_lo = c > 0 ? pos_at_lb : pos_at_last;
    ExprPtr sec_hi = c > 0 ? pos_at_last : pos_at_lb;

    if (c != 1 && c != -1) continue;  // strided writes: kill-only

    LoopEffect::ProducedFact fact;
    fact.array = array_sym;
    bool matched = false;

    // Identity: a[s] = s.
    if (options_.enable_identity_rule && !w.conditional && trip_nonneg && w.value.is_exact() &&
        sym::equal(w.value.exact_value(), w.index)) {
      fact.identity = IdentityFact{sec_lo, sec_hi};
      matched = true;
    }

    // Recurrence a[s] = a[s-1] + rest (c == 1 only). Handles range-valued
    // rest, e.g. rowstr[i] = rowstr[i-1] + 3 + (w > 0 ? 2 : 0).
    if (!matched && options_.enable_recurrence_rule && c == 1 && !w.conditional &&
        trip_nonneg && !w.value.is_bottom()) {
      auto strip = [&](const ExprPtr& bound) -> ExprPtr {
        if (!bound) return nullptr;
        auto elems = sym::collect_array_elems(bound, array_sym);
        if (elems.size() != 1) return nullptr;
        if (!sym::equal(elems[0]->operands[0], sym::sub(w.index, sym::make_const(1)))) {
          return nullptr;
        }
        if (sym::to_linear(bound).coeff_of(elems[0]) != 1) return nullptr;
        return sym::sub(bound, elems[0]);
      };
      ExprPtr rest_lo = strip(w.value.lo());
      ExprPtr rest_hi = strip(w.value.hi());
      if (rest_lo && rest_hi && !has_any_lambda(rest_lo) && !has_any_lambda(rest_hi)) {
        Range step = Range::of(sym::bound_range(rest_lo, ctx_facts).lo(),
                               sym::bound_range(rest_hi, ctx_facts).hi());
        step = widen(step);
        if (!step.is_bottom()) {
          fact.step = StepFact{sec_lo, sec_hi, step};
          matched = true;
        }
      }
    }

    // Affine value: a[s] = p*i + rest (rest loop-invariant).
    if (!matched && options_.enable_affine_value_rule && !w.conditional && trip_nonneg &&
        w.value.is_exact()) {
      const ExprPtr v = w.value.exact_value();
      auto split = sym::split_affine_in(v, index_sym);
      if (split && !has_any_lambda(v) &&
          !sym::contains_kind(split->rest, sym::ExprKind::ArrayElem)) {
        Range vals = widen(w.value);
        if (!vals.is_bottom()) fact.value = ValueFact{sec_lo, sec_hi, vals};
        if (split->coeff != 0) {
          int64_t step = split->coeff * c;  // value step per +1 position
          fact.step = StepFact{sym::add(sec_lo, sym::make_const(1)), sec_hi,
                               Range::of_consts(step, step)};
          fact.injective = InjectiveFact{sec_lo, sec_hi, std::nullopt};
        }
        matched = true;
      }
    }

    // Chain injectivity: a[s] = v where the recurrence chain of v over i has
    // a provably nonzero *symbolic* stride, e.g. idx[i] = m*i + q with
    // m >= 1. The affine-value rule above cannot see this (split_affine_in
    // only yields integer coefficients); the chain layer carries the stride
    // as an expression and discharges its sign through the prover.
    if (!matched && options_.enable_chain_injectivity_rule && !w.conditional && trip_nonneg &&
        w.value.is_exact()) {
      const ExprPtr v = w.value.exact_value();
      sym::RecurrenceBuilder& rec = sym::ExprArena::current().recurrences();
      const sym::RecChain* chain = rec.chain_for(v, index_sym, lb);
      if (chain && !sym::is_const(chain->stride) &&
          !sym::contains_kind(chain->stride, sym::ExprKind::ArrayElem)) {
        // Value step per +1 array position (subscript advances by c per
        // iteration, c is ±1 here).
        ExprPtr pos_step = sym::mul_const(chain->stride, c);
        bool inc = prove_ge(pos_step, sym::make_const(1), ctx_i) == Truth::True;
        bool dec =
            !inc && prove_le(pos_step, sym::make_const(-1), ctx_i) == Truth::True;
        if (inc || dec) {
          Range vals = widen(w.value);
          if (!vals.is_bottom()) fact.value = ValueFact{sec_lo, sec_hi, vals};
          // Injectivity is the chain's claim; deliberately no Monotonic step
          // fact here — ordering proofs stay with the paper's per-element
          // catalogue, so verdicts credit the layer that actually proved them.
          fact.injective =
              InjectiveFact{sec_lo, sec_hi, std::nullopt, /*from_chain=*/true};
          matched = true;
        }
      }
    }

    // Copy: a[s] = b[i+m] propagates value and injectivity facts.
    if (!matched && options_.enable_copy_rule && !w.conditional && trip_nonneg &&
        w.value.is_exact() && w.value.exact_value()->kind == sym::ExprKind::ArrayElem) {
      const ExprPtr v = w.value.exact_value();
      auto src_aff = sym::split_affine_in(v->operands[0], index_sym);
      if (src_aff && src_aff->coeff == 1) {
        ExprPtr src_lo = sym::add(lb, src_aff->rest);
        ExprPtr src_hi = sym::add(sym::sub(ub, sym::make_const(1)), src_aff->rest);
        if (auto src_vals = masked_facts.elem_value(v->symbol, v->operands[0], ctx_i)) {
          Range vals = widen(*src_vals);
          if (!vals.is_bottom()) {
            fact.value = ValueFact{sec_lo, sec_hi, vals};
            matched = true;
          }
        }
        if (c == 1 && masked_facts.injective_over(v->symbol, src_lo, src_hi, ctx_i)) {
          fact.injective = InjectiveFact{sec_lo, sec_hi, std::nullopt};
          matched = true;
        }
      }
    }

    // Fallback: any known value range on an unconditional dense write. Array
    // elements in the value (e.g. reads of other indexed arrays) are bounded
    // through the entry facts first.
    if (!matched && !w.conditional && trip_nonneg) {
      Range per = w.value;
      auto bound_side = [&](const ExprPtr& side, bool lower) -> ExprPtr {
        if (!side) return nullptr;
        if (!sym::contains_kind(side, sym::ExprKind::ArrayElem)) return side;
        Range b = sym::bound_range(side, ctx_facts);
        return lower ? b.lo() : b.hi();
      };
      per = Range::of(bound_side(per.lo(), true), bound_side(per.hi(), false));
      Range vals = widen(per);
      if (!vals.is_bottom()) {
        fact.value = ValueFact{sec_lo, sec_hi, vals};
        matched = true;
      }
    }
    if (matched) push_fact(std::move(fact));
  }

  // --- Branch-pair rules (subset-injective and disjoint-strided) -------------
  if (options_.enable_branch_rules && trip_nonneg) {
    for (const auto& pair : body.branch_pairs) {
      auto aff_idx = sym::split_affine_in(pair.index, index_sym);
      if (!aff_idx || (aff_idx->coeff != 1 && aff_idx->coeff != -1)) continue;
      if (has_any_lambda(aff_idx->rest) ||
          sym::contains_kind(aff_idx->rest, sym::ExprKind::ArrayElem)) {
        continue;
      }
      const int64_t c = aff_idx->coeff;
      ExprPtr pos_at_lb = sym::add(sym::mul_const(lb, c), aff_idx->rest);
      ExprPtr pos_at_last =
          sym::add(sym::mul_const(sym::sub(ub, sym::make_const(1)), c), aff_idx->rest);
      ExprPtr sec_lo = c > 0 ? pos_at_lb : pos_at_last;
      ExprPtr sec_hi = c > 0 ? pos_at_last : pos_at_lb;
      if (!pair.then_value || !pair.else_value) continue;
      auto v1 = sym::split_affine_in(pair.then_value, index_sym);
      auto v2 = sym::split_affine_in(pair.else_value, index_sym);
      if (!v1 || !v2 || has_any_lambda(pair.then_value) || has_any_lambda(pair.else_value)) {
        continue;
      }
      auto try_subset = [&](const sym::AffineSplit& moving, const sym::AffineSplit& fixed,
                            const ExprPtr& moving_expr) -> bool {
        // Subset-injective: moving branch strictly monotone with values >= 0,
        // fixed branch a negative constant sentinel.
        auto sentinel = sym::const_value(fixed.rest);
        if (moving.coeff == 0 || fixed.coeff != 0 || !sentinel || *sentinel >= 0) return false;
        Range values = eval_range(moving_expr, loop_env);
        if (prove_nonneg(values, base_ctx_) != Truth::True) return false;
        LoopEffect::ProducedFact fact;
        fact.array = pair.array->symbol;
        fact.injective = InjectiveFact{sec_lo, sec_hi, 0};
        push_fact(std::move(fact));
        return true;
      };
      if (try_subset(*v1, *v2, pair.then_value) || try_subset(*v2, *v1, pair.else_value)) {
        continue;
      }
      // Disjoint strided expressions (paper Fig. 8): same slope p, offsets in
      // different residue classes mod p -> the two value sets never collide.
      if (v1->coeff == v2->coeff && v1->coeff != 0) {
        auto offset_diff = sym::const_value(sym::sub(v1->rest, v2->rest));
        if (offset_diff && (*offset_diff % v1->coeff) != 0) {
          LoopEffect::ProducedFact fact;
          fact.array = pair.array->symbol;
          fact.injective = InjectiveFact{sec_lo, sec_hi, std::nullopt};
          push_fact(std::move(fact));
        }
      }
    }
  }

  return effect;
}

}  // namespace sspar::core
