#include "core/parallelizer.h"

#include <algorithm>
#include <map>

#include "core/body_interp.h"
#include "support/text.h"
#include "symbolic/arena.h"
#include "symbolic/recurrence.h"

namespace sspar::core {

using sym::ExprPtr;
using sym::Range;
using sym::Truth;

namespace {

// First-iteration peel detection: top-level `if` statements whose condition
// distinguishes exactly the first iteration (i == lb or i > lb).
struct PeelPlan {
  std::map<const ast::If*, bool> general;  // branch taken for i >= lb+1
  std::map<const ast::If*, bool> first;    // branch taken for i == lb
  bool empty() const { return general.empty(); }
};

PeelPlan find_peelable_ifs(const ast::Stmt& body, const ast::VarDecl* index,
                           const ExprPtr& lb, const ScalarEnv& env) {
  PeelPlan plan;
  const auto* compound = body.as<ast::Compound>();
  if (!compound) return plan;
  for (const auto& stmt : compound->body) {
    const auto* s = stmt->as<ast::If>();
    if (!s || !s->else_branch) continue;
    const auto* cond = s->cond->as<ast::Binary>();
    if (!cond) continue;
    const auto* var = cond->lhs->as<ast::VarRef>();
    if (!var || var->decl != index) continue;
    Range rhs = eval_pure(*cond->rhs, env);
    if (!rhs.is_exact()) continue;
    if (cond->op == ast::BinaryOp::Eq && sym::equal(rhs.exact_value(), lb)) {
      plan.general[s] = false;  // i != lb in the steady state
      plan.first[s] = true;
    } else if (cond->op == ast::BinaryOp::Gt && sym::equal(rhs.exact_value(), lb)) {
      plan.general[s] = true;  // i > lb in the steady state
      plan.first[s] = false;
    } else if (cond->op == ast::BinaryOp::Ge &&
               sym::equal(rhs.exact_value(), sym::add(lb, sym::make_const(1)))) {
      plan.general[s] = true;
      plan.first[s] = false;
    }
  }
  return plan;
}

struct ArrayAccessSet {
  const ast::VarDecl* array = nullptr;
  std::vector<const ArrayWriteEffect*> writes;
  std::vector<const ArrayWriteEffect*> reads;
};

// Verdict text (blockers, private lists) is produced by iterating decl-keyed
// containers; ordering them by raw AST pointer would make the output depend
// on heap layout and differ run to run. Symbol ids are assigned in sema
// (source) order, so they give a stable, meaningful iteration order.
struct DeclOrder {
  bool operator()(const ast::VarDecl* a, const ast::VarDecl* b) const {
    if (a->symbol != b->symbol) return a->symbol < b->symbol;
    if (a->location.offset != b->location.offset) return a->location.offset < b->location.offset;
    return a->name < b->name;
  }
};

using AccessGroups = std::map<const ast::VarDecl*, ArrayAccessSet, DeclOrder>;

std::vector<const ast::VarDecl*> sorted_decls(const std::set<const ast::VarDecl*>& decls) {
  std::vector<const ast::VarDecl*> out(decls.begin(), decls.end());
  std::sort(out.begin(), out.end(), DeclOrder{});
  return out;
}

AccessGroups group_accesses(const BodyInterp& interp) {
  AccessGroups groups;
  for (const auto& w : interp.writes) {
    auto& g = groups[w.array];
    g.array = w.array;
    g.writes.push_back(&w);
  }
  for (const auto& r : interp.reads) {
    auto& g = groups[r.array];
    g.array = r.array;
    g.reads.push_back(&r);
  }
  return groups;
}

// Combined per-iteration access range of an array (join over all accesses).
// Bottom if any access has an unknown subscript.
Range combined_range(const ArrayAccessSet& set) {
  Range acc;
  bool started = false;
  auto fold = [&](const ArrayWriteEffect* e) {
    if (!started) {
      acc = e->index_range;
      started = true;
    } else {
      acc = range_join(acc, e->index_range);
    }
  };
  for (const auto* w : set.writes) fold(w);
  for (const auto* r : set.reads) fold(r);
  return acc;
}

ExprPtr shift_index(const ExprPtr& e, sym::SymbolId index_sym, int64_t delta) {
  if (!e) return nullptr;
  return sym::subst_sym(e, index_sym, sym::add(sym::make_sym(index_sym), sym::make_const(delta)));
}

// Blocker text for a body BodyInterp::run() rejected, specialized by cause.
std::string unanalyzable_blocker(const BodyInterp& interp) {
  if (interp.failure) {
    switch (interp.failure->code) {
      case support::DiagCode::AnalysisLoopCall:
        return support::format("loop body is not analyzable (%s)",
                               interp.failure->message.c_str());
      case support::DiagCode::AnalysisLoopWhile:
        return "loop body is not analyzable (inner while loop)";
      case support::DiagCode::AnalysisLoopAbruptExit:
        return "loop body is not analyzable (break/continue/return)";
      default:
        break;
    }
  }
  return "loop body is not analyzable (call/while/branch-out)";
}

}  // namespace

// A hypothesized (statically unproven) enabling property of one index array,
// granted to the dependence tests to decide whether it alone unlocks the
// loop. If it does, the loop is a hybrid inspector–executor candidate and the
// property is verified at run time instead.
struct Parallelizer::Hypothesis {
  sym::SymbolId array = sym::kInvalidSymbol;
  EnablingProperty property = EnablingProperty::None;
  std::optional<int64_t> min_value;  // SubsetInjective participation threshold
};

// Candidate index arrays collected while the base analysis fails the
// independence test: every array subscripting the failing group's access
// ranges, with the joined subscript domain (the section the runtime check
// must cover) and the smallest guard threshold seen (for SubsetInjective
// trials). std::map keyed by symbol id keeps enumeration deterministic.
struct Parallelizer::HybridScan {
  int independence_blockers = 0;
  std::map<sym::SymbolId, Range> candidate_domain;
  std::map<sym::SymbolId, int64_t> guard_min;
};

bool uses_subscripted_subscripts(const ast::For& loop) {
  bool found = false;
  // An expression "reads an array" if it subscripts one directly, or calls a
  // function whose body does, transitively (the helper-function form of the
  // same indirection, e.g. id_to_mt[lookup(miel)] with lookup reading
  // mt_to_id). Per-function answers are memoized; the visited set bounds
  // recursion.
  std::map<const ast::FuncDecl*, bool> function_reads_array;
  auto expr_reads_array = [&function_reads_array](const ast::Expr* e) {
    std::set<const ast::FuncDecl*> visiting;
    std::function<bool(const ast::Expr*)> scan_expr;
    std::function<bool(const ast::FuncDecl*)> scan_function =
        [&](const ast::FuncDecl* f) -> bool {
      auto memo = function_reads_array.find(f);
      if (memo != function_reads_array.end()) return memo->second;
      if (!f->body || !visiting.insert(f).second) return false;
      bool reads = false;
      ast::walk_exprs(f->body.get(), [&](const ast::Expr* inner) {
        if (inner->kind == ast::ExprNodeKind::ArrayRef) reads = true;
        if (const auto* call = inner->as<ast::Call>()) {
          if (!reads && call->decl) reads = scan_function(call->decl);
        }
      });
      visiting.erase(f);
      function_reads_array[f] = reads;
      return reads;
    };
    bool reads = false;
    ast::walk_subexprs(e, [&](const ast::Expr* sub) {
      if (sub->kind == ast::ExprNodeKind::ArrayRef) reads = true;
      if (const auto* call = sub->as<ast::Call>()) {
        if (!reads && call->decl) reads = scan_function(call->decl);
      }
    });
    return reads;
  };
  // Scalars assigned (anywhere in the loop) from an expression that reads an
  // array; a subscript through such a scalar is an indirection too
  // (Fig. 2: iel = mt_to_id[miel]; id_to_mt[iel] = miel).
  std::set<const ast::VarDecl*> indirection_scalars;
  ast::walk_exprs(&loop, [&indirection_scalars, &expr_reads_array](const ast::Expr* e) {
    const ast::Expr* target = nullptr;
    const ast::Expr* value = nullptr;
    if (const auto* assign = e->as<ast::Assign>()) {
      target = assign->target.get();
      value = assign->value.get();
    }
    if (!target || !value) return;
    const auto* var = target->as<ast::VarRef>();
    if (!var || !var->decl) return;
    if (expr_reads_array(value)) indirection_scalars.insert(var->decl);
  });
  // DeclStmt initializers count as well (int iel = mt_to_id[miel]).
  ast::walk_stmts(static_cast<const ast::Stmt*>(&loop), [&](const ast::Stmt* s) {
    if (const auto* ds = s->as<ast::DeclStmt>()) {
      for (const auto& d : ds->decls) {
        if (d->init && expr_reads_array(d->init.get())) indirection_scalars.insert(d.get());
      }
    }
    return true;
  });
  // Direct nesting or indirection-scalar subscripts.
  ast::walk_exprs(&loop, [&](const ast::Expr* e) {
    if (const auto* arr = e->as<ast::ArrayRef>()) {
      if (expr_reads_array(arr->index.get())) found = true;
      ast::walk_subexprs(arr->index.get(), [&](const ast::Expr* sub) {
        if (const auto* var = sub->as<ast::VarRef>()) {
          if (var->decl && indirection_scalars.count(var->decl)) found = true;
        }
      });
    }
  });
  if (found) return true;
  // Inner loop bounds taken from an index array (Fig. 3 / Fig. 9 pattern).
  for (const ast::For* inner : ast::collect_loops(loop.body.get())) {
    auto scan = [&found](const ast::Expr* e) {
      if (!e) return;
      ast::walk_subexprs(e, [&found](const ast::Expr* sub) {
        if (sub->kind == ast::ExprNodeKind::ArrayRef) found = true;
      });
    };
    if (const auto* es = inner->init->as<ast::ExprStmt>()) scan(es->expr.get());
    if (const auto* ds = inner->init->as<ast::DeclStmt>()) {
      for (const auto& d : ds->decls) {
        if (d->init) scan(d->init.get());
      }
    }
    scan(inner->cond.get());
  }
  return found;
}

LoopVerdict Parallelizer::analyze_impl(const ast::For& loop, const Hypothesis* hypothesis,
                                       HybridScan* scan) {
  LoopVerdict verdict;
  verdict.loop = &loop;
  verdict.loop_id = loop.loop_id;
  verdict.uses_subscripted_subscripts = uses_subscripted_subscripts(loop);

  const LoopSnapshot* snap = analyzer_.snapshot(&loop);
  if (!snap || !snap->info) {
    verdict.blockers.push_back("loop is not in canonical form (i = lb; i < ub; i++)");
    return verdict;
  }
  verdict.canonical = true;
  const LoopInfo& info = *snap->info;
  const sym::SymbolId index_sym = info.index->symbol;

  Range lb_r = eval_pure(*info.lb_expr, snap->scalars_at_entry);
  Range ub_r = eval_pure(*info.ub_expr, snap->scalars_at_entry);
  if (!lb_r.is_exact() || !ub_r.is_exact()) {
    verdict.blockers.push_back("loop bounds are not symbolically exact");
    return verdict;
  }
  ExprPtr lb = lb_r.exact_value();
  ExprPtr ub = ub_r.exact_value();
  if (info.ub_inclusive) ub = sym::add(ub, sym::make_const(1));

  // --- Interpret the body (general variant; optionally a peeled variant) ----
  PeelPlan peel = find_peelable_ifs(*loop.body, info.index, lb, snap->scalars_at_entry);

  BodyInterp general(analyzer_, *loop.body, info.index, snap->scalars_at_entry,
                     snap->facts_at_entry);
  if (!peel.empty()) general.force_branches(&peel.general);
  if (!general.run()) {
    verdict.blockers.push_back(unanalyzable_blocker(general));
    return verdict;
  }
  std::unique_ptr<BodyInterp> first;
  if (!peel.empty()) {
    first = std::make_unique<BodyInterp>(analyzer_, *loop.body, info.index,
                                         snap->scalars_at_entry, snap->facts_at_entry);
    first->force_branches(&peel.first);
    if (!first->run()) {
      verdict.blockers.push_back("peeled first iteration is not analyzable");
      return verdict;
    }
  }

  // --- Scalar dependences -----------------------------------------------------
  // Declarations anywhere inside the loop (including inner for-inits) are
  // iteration-local storage: never loop-carried and never privatized.
  std::set<const ast::VarDecl*> declared_inside;
  ast::walk_stmts(static_cast<const ast::Stmt*>(&loop), [&](const ast::Stmt* s) {
    if (const auto* ds = s->as<ast::DeclStmt>()) {
      for (const auto& d : ds->decls) declared_inside.insert(d.get());
    }
    if (const auto* f = s->as<ast::For>()) {
      if (const auto* ds = f->init->as<ast::DeclStmt>()) {
        for (const auto& d : ds->decls) declared_inside.insert(d.get());
      }
    }
    return true;
  });
  auto check_scalars = [&](const BodyInterp& interp) {
    for (const ast::VarDecl* decl : sorted_decls(interp.written)) {
      if (decl == info.index) {
        verdict.blockers.push_back("loop index is assigned inside the body");
        continue;
      }
      if (interp.body_locals.count(decl) || declared_inside.count(decl)) continue;
      if (interp.lambda_reads.count(decl)) {
        verdict.blockers.push_back(
            support::format("loop-carried scalar dependence on '%s'", decl->name.c_str()));
        continue;
      }
      if (std::find(verdict.privates.begin(), verdict.privates.end(), decl) ==
          verdict.privates.end()) {
        verdict.privates.push_back(decl);
      }
    }
  };
  check_scalars(general);
  if (first) check_scalars(*first);

  // --- Array dependences --------------------------------------------------------
  // The general variant covers iterations from lb (no peel) or lb+1 (peeled).
  ExprPtr general_lb = peel.empty() ? lb : sym::add(lb, sym::make_const(1));

  sym::AssumptionContext ctx_pair = analyzer_.base_context();
  // Both i and i+1 must be valid iterations for the adjacent test.
  ctx_pair.assume(index_sym, Range::of(general_lb, sym::sub(ub, sym::make_const(2))));
  sym::AssumptionContext ctx_facts = snap->facts_at_entry.with_facts(ctx_pair);

  sym::AssumptionContext ctx_any = analyzer_.base_context();
  ctx_any.assume(index_sym, Range::of(general_lb, sym::sub(ub, sym::make_const(1))));
  sym::AssumptionContext ctx_facts_any = snap->facts_at_entry.with_facts(ctx_any);

  // For the peeled check, i ranges over the steady-state iterations.
  sym::AssumptionContext ctx_steady = analyzer_.base_context();
  ctx_steady.assume(index_sym,
                    Range::of(sym::add(lb, sym::make_const(1)), sym::sub(ub, sym::make_const(1))));
  sym::AssumptionContext ctx_facts_steady = snap->facts_at_entry.with_facts(ctx_steady);

  // Under a Monotonic hypothesis the hypothesized array behaves as if a
  // nondecreasing step fact covered its whole extent: constant index
  // distances give signed element-difference ranges. Real facts are
  // consulted first so they keep their (possibly tighter) precision.
  if (hypothesis && hypothesis->property == EnablingProperty::Monotonic) {
    auto grant = [hyp_array = hypothesis->array](sym::AssumptionContext& ctx) {
      sym::AssumptionContext::ElemDiffFn prev = ctx.elem_diff();
      ctx.set_elem_diff([prev, hyp_array](sym::SymbolId array, const ExprPtr& hi_idx,
                                          const ExprPtr& lo_idx) -> std::optional<Range> {
        if (prev) {
          if (auto r = prev(array, hi_idx, lo_idx)) return r;
        }
        if (array != hyp_array) return std::nullopt;
        auto d = sym::const_value(sym::sub(hi_idx, lo_idx));
        if (!d) return std::nullopt;
        if (*d >= 0) return Range::of(sym::make_const(0), nullptr);
        return Range::of(nullptr, sym::make_const(0));
      });
    };
    grant(ctx_facts);
    grant(ctx_facts_any);
    grant(ctx_facts_steady);
  }

  // Injectivity queries go through this wrapper so an Injective /
  // SubsetInjective hypothesis can vouch for the hypothesized array.
  auto injective_over = [&](sym::SymbolId array, const ExprPtr& qlo, const ExprPtr& qhi,
                            const sym::AssumptionContext& ctx,
                            std::optional<int64_t>* min_value,
                            bool* from_chain = nullptr) -> bool {
    if (hypothesis && array == hypothesis->array &&
        (hypothesis->property == EnablingProperty::Injective ||
         hypothesis->property == EnablingProperty::SubsetInjective)) {
      if (min_value) *min_value = hypothesis->min_value;
      if (from_chain) *from_chain = false;
      return true;
    }
    return snap->facts_at_entry.injective_over(array, qlo, qhi, ctx, min_value, from_chain);
  };

  bool used_monotonic_facts = false;
  bool used_injectivity = false;
  bool used_chain_injectivity = false;
  bool used_subset = false;
  bool used_peel = !peel.empty();
  // Index arrays whose facts discharged a passing test (for provenance).
  std::set<sym::SymbolId> fact_arrays_used;

  auto range_mentions_elem = [](const Range& r) {
    return (r.lo() && sym::contains_kind(r.lo(), sym::ExprKind::ArrayElem)) ||
           (r.hi() && sym::contains_kind(r.hi(), sym::ExprKind::ArrayElem));
  };
  auto note_fact_arrays = [&fact_arrays_used](const Range& r) {
    for (const ExprPtr& bound : {r.lo(), r.hi()}) {
      if (!bound) continue;
      for (const ExprPtr& elem : sym::collect_array_elems(bound)) {
        fact_arrays_used.insert(elem->symbol);
      }
    }
  };

  // The adjacent Range Test over a combined access range U(i).
  auto range_test = [&](const Range& u) -> bool {
    if (u.is_bottom() || !u.lo_bounded() || !u.hi_bounded()) return false;
    ExprPtr lo_i = u.lo(), hi_i = u.hi();
    // Chain fast path: when both bounds have constant-stride recurrence
    // chains over i and the range width folds to a constant, the adjacent
    // comparisons below reduce to constant tests — the canonical affine form
    // makes both differences Const nodes, on which the prover is exact, so
    // the outcome here is definitive in both directions and the subst +
    // prover machinery is skipped entirely.
    {
      sym::RecurrenceBuilder& rec = sym::ExprArena::current().recurrences();
      const sym::RecChain* clo = rec.chain_for(lo_i, index_sym, general_lb);
      const sym::RecChain* chi = clo ? rec.chain_for(hi_i, index_sym, general_lb) : nullptr;
      if (clo && chi) {
        auto slo = sym::RecurrenceBuilder::const_stride(*clo);
        auto shi = sym::RecurrenceBuilder::const_stride(*chi);
        auto width = sym::const_value(sym::sub(hi_i, lo_i));
        if (slo && shi && width) {
          // Forward: hi(i) < lo(i+1) && lo(i+1) >= lo(i); backward mirrored.
          bool forward = *width < *slo && *slo >= 0;
          bool backward = *width + *shi < 0 && *slo <= 0;
          if (!forward && !backward) return false;
          if (range_mentions_elem(u)) {
            used_monotonic_facts = true;
            note_fact_arrays(u);
          }
          return true;
        }
      }
    }
    ExprPtr lo_next = shift_index(lo_i, index_sym, 1);
    ExprPtr hi_next = shift_index(hi_i, index_sym, 1);
    // Forward: ranges advance with i.
    if (prove_lt(hi_i, lo_next, ctx_facts) == Truth::True &&
        prove_ge(lo_next, lo_i, ctx_facts) == Truth::True) {
      if (range_mentions_elem(u)) {
        used_monotonic_facts = true;
        note_fact_arrays(u);
      }
      return true;
    }
    // Backward: ranges retreat with i.
    if (prove_lt(hi_next, lo_i, ctx_facts) == Truth::True &&
        prove_le(lo_next, lo_i, ctx_facts) == Truth::True) {
      if (range_mentions_elem(u)) {
        used_monotonic_facts = true;
        note_fact_arrays(u);
      }
      return true;
    }
    return false;
  };

  // Indirection route: every access goes through the same injective array b
  // (a[b[t]]) and the domains of t are disjoint across iterations (Fig. 6).
  auto via_test = [&](const ArrayAccessSet& set) -> bool {
    const ast::VarDecl* via = nullptr;
    Range domain;
    bool started = false;
    auto fold = [&](const ArrayWriteEffect* e) -> bool {
      if (!e->via_array || e->dims != 1) return false;
      if (via && e->via_array != via) return false;
      via = e->via_array;
      domain = started ? range_join(domain, e->via_domain) : e->via_domain;
      started = true;
      return true;
    };
    for (const auto* w : set.writes) {
      if (!fold(w)) return false;
    }
    for (const auto* r : set.reads) {
      if (!fold(r)) return false;
    }
    if (!via || domain.is_bottom()) return false;
    // Injectivity must cover the whole domain span across all iterations.
    ExprPtr span_lo = domain.lo() ? sym::bound_range(domain.lo(), ctx_facts_any).lo() : nullptr;
    ExprPtr span_hi = domain.hi() ? sym::bound_range(domain.hi(), ctx_facts_any).hi() : nullptr;
    if (!span_lo || !span_hi) return false;
    std::optional<int64_t> min_value;
    bool from_chain = false;
    if (!injective_over(via->symbol, span_lo, span_hi, ctx_facts_any, &min_value,
                        &from_chain) ||
        min_value) {
      // Subset injectivity needs guard matching; handled by injectivity_test.
      return false;
    }
    if (!range_test(domain)) return false;
    used_injectivity = true;
    used_chain_injectivity = used_chain_injectivity || from_chain;
    fact_arrays_used.insert(via->symbol);
    return true;
  };

  // Injectivity route: every access must target the same exact subscript s(i).
  auto injectivity_test = [&](const ArrayAccessSet& set) -> bool {
    ExprPtr s = nullptr;
    std::vector<const ArrayWriteEffect*> all;
    for (const auto* w : set.writes) all.push_back(w);
    for (const auto* r : set.reads) all.push_back(r);
    for (const auto* e : all) {
      if (e->dims != 1 || !e->index) return false;
      if (!s) {
        s = e->index;
      } else if (!sym::equal(s, e->index)) {
        return false;
      }
    }
    if (!s || s->kind != sym::ExprKind::ArrayElem) return false;
    const sym::SymbolId b_sym = s->symbol;
    auto aff = sym::as_affine_in(s->operands[0], index_sym);
    if (!aff || (aff->first != 1 && aff->first != -1)) return false;
    // Domain of the inner subscript over the iteration space.
    sym::RangeEnv env;
    env.entries.emplace_back(index_sym, Range::of(lb, sym::sub(ub, sym::make_const(1))));
    Range domain = eval_range(s->operands[0], env);
    if (!domain.lo_bounded() || !domain.hi_bounded()) return false;
    std::optional<int64_t> min_value;
    bool from_chain = false;
    if (!injective_over(b_sym, domain.lo(), domain.hi(), ctx_facts_any, &min_value,
                        &from_chain)) {
      return false;
    }
    if (!min_value) {
      used_injectivity = true;
      used_chain_injectivity = used_chain_injectivity || from_chain;
      fact_arrays_used.insert(b_sym);
      return true;
    }
    // Subset injectivity: every access must be guarded by b[t] >= min.
    for (const auto* e : all) {
      bool guarded = false;
      for (const auto& g : e->guards) {
        if (g.array && g.array->symbol == b_sym && g.index &&
            sym::equal(g.index, s->operands[0]) && g.min >= *min_value) {
          guarded = true;
        }
      }
      if (!guarded) return false;
    }
    used_subset = true;
    fact_arrays_used.insert(b_sym);
    return true;
  };

  auto groups = group_accesses(general);
  std::set<const ast::VarDecl*> passed_by_range_test;
  for (auto& [array, set] : groups) {
    if (set.writes.empty()) continue;  // read-only arrays carry no dependence
    bool multi_dim = false;
    for (const auto* w : set.writes) multi_dim = multi_dim || w->dims != 1;
    if (multi_dim) {
      verdict.blockers.push_back(
          support::format("multi-dimensional write to '%s'", array->name.c_str()));
      continue;
    }
    Range u = combined_range(set);
    if (range_test(u)) {
      passed_by_range_test.insert(array);
      continue;
    }
    if (via_test(set)) continue;
    if (injectivity_test(set)) continue;
    if (scan) {
      // Collect hybrid candidates: the arrays subscripting this group's
      // access ranges, each with the subscript domain a runtime check would
      // have to cover, and guard thresholds for SubsetInjective trials.
      ++scan->independence_blockers;
      sym::RangeEnv env;
      env.entries.emplace_back(index_sym, Range::of(lb, sym::sub(ub, sym::make_const(1))));
      auto note = [&](const ExprPtr& bound) {
        if (!bound) return;
        for (const ExprPtr& elem : sym::collect_array_elems(bound)) {
          Range d = eval_range(elem->operands[0], env);
          if (!d.lo_bounded() || !d.hi_bounded()) continue;
          auto [it, inserted] = scan->candidate_domain.emplace(elem->symbol, d);
          if (!inserted) it->second = range_join(it->second, d);
        }
      };
      note(u.lo());
      note(u.hi());
      auto note_access = [&](const ArrayWriteEffect* e) {
        note(e->index);
        note(e->via_domain.lo());
        note(e->via_domain.hi());
        for (const auto& g : e->guards) {
          if (!g.array) continue;
          auto [it, inserted] = scan->guard_min.emplace(g.array->symbol, g.min);
          if (!inserted) it->second = std::min(it->second, g.min);
        }
      };
      for (const auto* w : set.writes) note_access(w);
      for (const auto* r : set.reads) note_access(r);
    }
    verdict.blockers.push_back(support::format(
        "cannot prove independence of accesses to '%s'", array->name.c_str()));
  }

  // --- Peeled first iteration vs the steady state ---------------------------
  if (first && verdict.blockers.empty()) {
    auto first_groups = group_accesses(*first);
    for (auto& [array, fset] : first_groups) {
      auto git = groups.find(array);
      bool general_writes = git != groups.end() && !git->second.writes.empty();
      if (fset.writes.empty() && !general_writes) continue;
      // Access range of iteration lb under the first-variant bindings.
      Range uf = combined_range(fset);
      ExprPtr lo_f = uf.lo() ? sym::subst_sym(uf.lo(), index_sym, lb) : nullptr;
      ExprPtr hi_f = uf.hi() ? sym::subst_sym(uf.hi(), index_sym, lb) : nullptr;
      if (!lo_f || !hi_f) {
        verdict.blockers.push_back(support::format(
            "peeled iteration has unknown access range for '%s'", array->name.c_str()));
        continue;
      }
      // Empty first-iteration range: trivially independent.
      if (prove_lt(hi_f, lo_f, ctx_facts_any) == Truth::True) continue;
      if (git == groups.end()) continue;
      Range ug = combined_range(git->second);
      if (!ug.lo_bounded()) {
        verdict.blockers.push_back(support::format(
            "steady-state access range unknown for '%s'", array->name.c_str()));
        continue;
      }
      // hi_first < lo_general(i) for every steady-state iteration i.
      if (prove_lt(hi_f, ug.lo(), ctx_facts_steady) == Truth::True) continue;
      // Monotone-chain argument: the adjacent Range Test already proved
      // lo_general non-decreasing, so comparing against the first steady
      // iteration (i = lb+1) suffices.
      if (passed_by_range_test.count(array)) {
        ExprPtr lo_at_first =
            sym::subst_sym(ug.lo(), index_sym, sym::add(lb, sym::make_const(1)));
        if (prove_lt(hi_f, lo_at_first, ctx_facts_any) == Truth::True) continue;
      }
      verdict.blockers.push_back(support::format(
          "cannot prove peeled first iteration independent for '%s'", array->name.c_str()));
    }
  }

  verdict.parallel = verdict.blockers.empty();
  if (verdict.parallel) {
    // Interprocedural provenance: map the index arrays whose facts fed the
    // proof back to the summaries that produced those facts at loop entry.
    std::set<std::string> via;
    for (sym::SymbolId array : fact_arrays_used) {
      auto it = snap->fact_provenance.find(array);
      if (it == snap->fact_provenance.end()) continue;
      via.insert(it->second.begin(), it->second.end());
    }
    verdict.summaries_used.assign(via.begin(), via.end());
    std::string reason;
    if (used_subset) {
      verdict.property = EnablingProperty::SubsetInjective;
      reason = "subset-injective index array with matching guard";
    } else if (used_chain_injectivity) {
      verdict.property = EnablingProperty::AffineInjective;
      reason = "affine-injective index array (provably nonzero chain stride)";
    } else if (used_injectivity) {
      verdict.property = EnablingProperty::Injective;
      reason = "injective index array subscript";
    } else if (used_monotonic_facts) {
      verdict.property = EnablingProperty::Monotonic;
      reason = "monotonic index array ranges (extended Range Test)";
    } else {
      verdict.property = EnablingProperty::Affine;
      reason = "affine disjoint accesses";
    }
    verdict.peeled = used_peel;
    if (used_peel) reason += " + peeled first iteration";
    verdict.reason = reason;

    // Schedule hint from the access-range chains: per-iteration work is
    // uniform (static) when every access range advances by a compile-time
    // constant stride; it varies (dynamic) as soon as a range bound depends
    // on index-array contents — rowstr[i]..rowstr[i+1] style inner trip
    // counts are exactly the imbalanced case the paper's CSR kernels hit.
    {
      sym::RecurrenceBuilder& rec = sym::ExprArena::current().recurrences();
      bool variable_work = false;
      bool all_const_stride = !groups.empty();
      for (auto& [array, set] : groups) {
        Range u = combined_range(set);
        if (u.is_bottom() || !u.lo_bounded() || !u.hi_bounded()) {
          all_const_stride = false;
          continue;
        }
        if (range_mentions_elem(u)) {
          variable_work = true;
          break;
        }
        const sym::RecChain* clo = rec.chain_for(u.lo(), index_sym, general_lb);
        const sym::RecChain* chi = clo ? rec.chain_for(u.hi(), index_sym, general_lb) : nullptr;
        if (!clo || !chi || !sym::RecurrenceBuilder::const_stride(*clo) ||
            !sym::RecurrenceBuilder::const_stride(*chi)) {
          all_const_stride = false;
        }
      }
      if (variable_work) {
        verdict.schedule = LoopVerdict::ScheduleHint::Dynamic;
        verdict.schedule_reason = "variable per-iteration work from index-array-dependent ranges";
      } else if (all_const_stride) {
        verdict.schedule = LoopVerdict::ScheduleHint::Static;
        verdict.schedule_reason = "constant-stride access chains, uniform per-iteration work";
      }
    }
  }
  return verdict;
}

LoopVerdict Parallelizer::analyze(const ast::For& loop) {
  HybridScan scan;
  LoopVerdict verdict = analyze_impl(loop, nullptr, &scan);
  if (verdict.parallel || !verdict.canonical || !verdict.uses_subscripted_subscripts) {
    return verdict;
  }
  // Hybrid candidacy (paper Section 4's inspector–executor alternative):
  // exactly one blocker, and it is the array-independence one. Re-run the
  // dependence tests granting one unproven property of one index array at a
  // time; the first hypothesis that clears every blocker is checkable at run
  // time, so the emitter can dispatch between a parallel and a serial version.
  if (verdict.blockers.size() != 1 || scan.independence_blockers != 1) return verdict;

  const sym::SymbolTable& syms = analyzer_.symbols();
  auto renderable = [](const std::string& s) {
    // The check domain is spliced into emitted C source; reject bounds whose
    // rendering uses non-C constructs (div/mod/min/max nodes, λ markers,
    // nested array elements, bottom).
    for (const char* bad : {"div(", "mod(", "min(", "max(", "lam.", "LAM.", "_|_", "["}) {
      if (s.find(bad) != std::string::npos) return false;
    }
    return true;
  };
  for (const auto& [array, domain] : scan.candidate_domain) {
    std::string lo = sym::to_string(domain.lo(), syms);
    std::string hi = sym::to_string(domain.hi(), syms);
    if (!renderable(lo) || !renderable(hi)) continue;
    // Monotonic is the cheapest check, so try it first; SubsetInjective
    // before Injective so guarded scatters get a check their sentinel-laden
    // data can actually satisfy.
    std::vector<Hypothesis> trials;
    trials.push_back({array, EnablingProperty::Monotonic, std::nullopt});
    auto gm = scan.guard_min.find(array);
    if (gm != scan.guard_min.end()) {
      trials.push_back({array, EnablingProperty::SubsetInjective, gm->second});
    }
    trials.push_back({array, EnablingProperty::Injective, std::nullopt});
    for (const Hypothesis& hyp : trials) {
      LoopVerdict trial = analyze_impl(loop, &hyp, nullptr);
      if (!trial.parallel) continue;
      verdict.hybrid = true;
      verdict.hybrid_property = hyp.property;
      verdict.hybrid_index_array = syms.name(array);
      verdict.hybrid_min_value = hyp.min_value.value_or(0);
      verdict.hybrid_check_lo = lo;
      verdict.hybrid_check_hi = hi;
      // The parallel version of the dual loop needs the hypothetical run's
      // privatization (and peel) decisions; the serial version ignores them.
      verdict.privates = trial.privates;
      verdict.peeled = trial.peeled;
      verdict.summaries_used = trial.summaries_used;
      return verdict;
    }
  }
  return verdict;
}

const char* property_name(EnablingProperty property) {
  switch (property) {
    case EnablingProperty::None:
      return "";
    case EnablingProperty::Affine:
      return "affine";
    case EnablingProperty::Monotonic:
      return "monotonic";
    case EnablingProperty::Injective:
      return "injective";
    case EnablingProperty::SubsetInjective:
      return "subset-injective";
    case EnablingProperty::AffineInjective:
      return "affine-injective";
  }
  return "";
}

std::vector<LoopVerdict> Parallelizer::analyze_all(const ast::FuncDecl& function) {
  std::vector<LoopVerdict> verdicts;
  for (const ast::For* loop : ast::collect_loops(function.body.get())) {
    verdicts.push_back(analyze(*loop));
  }
  return verdicts;
}

}  // namespace sspar::core
