#include "core/body_interp.h"

#include "ipa/summary.h"
#include "support/text.h"

namespace sspar::core {

using sym::ExprPtr;
using sym::Range;

namespace {

// Expressions evaluated unconditionally within `expr` (excludes ?:-branches
// and the right-hand sides of && / ||).
void walk_unconditional(const ast::Expr* e, const std::function<void(const ast::Expr*)>& fn) {
  if (!e) return;
  fn(e);
  switch (e->kind) {
    case ast::ExprNodeKind::ArrayRef: {
      const auto* a = e->as<ast::ArrayRef>();
      walk_unconditional(a->base.get(), fn);
      walk_unconditional(a->index.get(), fn);
      break;
    }
    case ast::ExprNodeKind::Binary: {
      const auto* b = e->as<ast::Binary>();
      walk_unconditional(b->lhs.get(), fn);
      if (b->op != ast::BinaryOp::LAnd && b->op != ast::BinaryOp::LOr) {
        walk_unconditional(b->rhs.get(), fn);
      }
      break;
    }
    case ast::ExprNodeKind::Unary:
      walk_unconditional(e->as<ast::Unary>()->operand.get(), fn);
      break;
    case ast::ExprNodeKind::Assign: {
      const auto* a = e->as<ast::Assign>();
      walk_unconditional(a->target.get(), fn);
      walk_unconditional(a->value.get(), fn);
      break;
    }
    case ast::ExprNodeKind::IncDec:
      walk_unconditional(e->as<ast::IncDec>()->target.get(), fn);
      break;
    case ast::ExprNodeKind::Conditional:
      walk_unconditional(e->as<ast::Conditional>()->cond.get(), fn);
      break;
    case ast::ExprNodeKind::Call:
      for (const auto& a : e->as<ast::Call>()->args) walk_unconditional(a.get(), fn);
      break;
    default:
      break;
  }
}

bool expr_definitely_assigns(const ast::Expr* e, const ast::VarDecl* decl) {
  bool found = false;
  walk_unconditional(e, [&](const ast::Expr* n) {
    if (const auto* a = n->as<ast::Assign>()) {
      const auto* var = a->target->as<ast::VarRef>();
      if (var && var->decl == decl) found = true;
    } else if (const auto* i = n->as<ast::IncDec>()) {
      const auto* var = i->target->as<ast::VarRef>();
      if (var && var->decl == decl) found = true;
    }
  });
  return found;
}

bool contains_abrupt_exit(const ast::Stmt& stmt) {
  bool found = false;
  ast::walk_stmts(&stmt, [&found](const ast::Stmt* s) {
    if (s->kind == ast::StmtNodeKind::Break || s->kind == ast::StmtNodeKind::Continue ||
        s->kind == ast::StmtNodeKind::Return) {
      found = true;
    }
    return !found;
  });
  return found;
}

}  // namespace

std::optional<AccessGuard> match_guard(
    const ast::Expr& cond, const std::function<sym::Range(const ast::Expr&)>& eval) {
  const auto* bin = cond.as<ast::Binary>();
  if (!bin) return std::nullopt;
  const ast::Expr* array_side = nullptr;
  const ast::Expr* const_side = nullptr;
  bool array_on_left = false;
  if (bin->lhs->kind == ast::ExprNodeKind::ArrayRef &&
      bin->rhs->kind == ast::ExprNodeKind::IntLit) {
    array_side = bin->lhs.get();
    const_side = bin->rhs.get();
    array_on_left = true;
  } else if (bin->rhs->kind == ast::ExprNodeKind::ArrayRef &&
             bin->lhs->kind == ast::ExprNodeKind::IntLit) {
    array_side = bin->rhs.get();
    const_side = bin->lhs.get();
  } else {
    return std::nullopt;
  }
  int64_t c = const_side->as<ast::IntLit>()->value;
  // Normalize to array[e] >= min.
  std::optional<int64_t> min;
  switch (bin->op) {
    case ast::BinaryOp::Ge:
      if (array_on_left) min = c;
      break;
    case ast::BinaryOp::Gt:
      if (array_on_left) min = c + 1;
      break;
    case ast::BinaryOp::Le:
      if (!array_on_left) min = c;  // c <= a[e]
      break;
    case ast::BinaryOp::Lt:
      if (!array_on_left) min = c + 1;  // c < a[e]
      break;
    default:
      break;
  }
  if (!min) return std::nullopt;
  const auto* arr = array_side->as<ast::ArrayRef>();
  const ast::VarRef* root = arr->root();
  if (!root || !root->decl || arr->subscripts().size() != 1) return std::nullopt;
  sym::Range idx = eval(*arr->subscripts()[0]);
  if (!idx.is_exact()) return std::nullopt;
  return AccessGuard{root->decl, idx.exact_value(), *min};
}

bool definitely_assigns(const ast::Stmt& stmt, const ast::VarDecl* decl) {
  switch (stmt.kind) {
    case ast::StmtNodeKind::ExprStmt:
      return expr_definitely_assigns(stmt.as<ast::ExprStmt>()->expr.get(), decl);
    case ast::StmtNodeKind::Compound: {
      for (const auto& s : stmt.as<ast::Compound>()->body) {
        if (contains_abrupt_exit(*s)) return false;
        if (definitely_assigns(*s, decl)) return true;
      }
      return false;
    }
    case ast::StmtNodeKind::If: {
      const auto* s = stmt.as<ast::If>();
      if (expr_definitely_assigns(s->cond.get(), decl)) return true;
      if (!s->else_branch) return false;
      return definitely_assigns(*s->then_branch, decl) &&
             definitely_assigns(*s->else_branch, decl);
    }
    case ast::StmtNodeKind::For: {
      // Only the init runs unconditionally (the body may run zero times).
      const auto* s = stmt.as<ast::For>();
      return s->init && definitely_assigns(*s->init, decl);
    }
    default:
      return false;
  }
}

BodyInterp::BodyInterp(Analyzer& analyzer, const ast::Stmt& body, const ast::VarDecl* index,
                       const ScalarEnv& entry_env, const FactDB& entry_facts)
    : analyzer_(analyzer), body_(body), index_(index), entry_env_(entry_env),
      entry_facts_(entry_facts) {
  // Track every scalar (doubles too: their values are not modeled, but the
  // dependence analysis must still see read-before-write patterns such as a
  // floating-point reduction).
  for (const ast::VarDecl* decl : written_scalars(body)) {
    if (decl->is_array()) continue;
    written.insert(decl);
    if (definitely_assigns(body, decl)) definitely_written.insert(decl);
  }
  // Global scalars written only inside called functions evolve per iteration
  // too; without them in `written`, reads would miss λ semantics.
  if (analyzer_.summaries_ && analyzer_.program_has_calls_) {
    ast::walk_exprs(&body, [this](const ast::Expr* e) {
      const auto* call = e->as<ast::Call>();
      if (!call) return;
      const ipa::FunctionSummary* s = analyzer_.call_summary(*call);
      if (!s || !s->analyzable) return;
      for (const ast::VarDecl* decl : s->may_write_scalars) written.insert(decl);
    });
  }
}

bool BodyInterp::run() {
  // Every call must be coverable by a callee summary (without a SummaryDB the
  // analysis stays intraprocedural and any call rejects the body, as in the
  // paper).
  if (!prescan_calls()) return false;
  return exec(body_);
}

std::optional<BodyInterp::Failure> BodyInterp::vet_call(const Analyzer& analyzer,
                                                        const ast::Call& call) {
  auto fail = [&call](std::string message) {
    return Failure{support::DiagCode::AnalysisLoopCall, call.location, std::move(message),
                   call.callee};
  };
  if (!analyzer.summaries_) {
    return fail(support::format("call to '%s' (interprocedural analysis disabled)",
                                call.callee.c_str()));
  }
  if (!call.decl) {
    return fail(support::format("call to undefined function '%s'", call.callee.c_str()));
  }
  const ipa::FunctionSummary* s = analyzer.call_summary(call);
  if (!s) {
    return fail(support::format("call to '%s' has no function summary", call.callee.c_str()));
  }
  if (!s->analyzable) {
    return fail(support::format("call to '%s' is not summarizable (%s)",
                                call.callee.c_str(), s->failure.c_str()));
  }
  if (call.args.size() != call.decl->params.size()) {
    return fail(support::format("call to '%s' passes %zu arguments for %zu parameters",
                                call.callee.c_str(), call.args.size(),
                                call.decl->params.size()));
  }
  for (size_t i = 0; i < call.args.size(); ++i) {
    const ast::VarDecl* param = call.decl->params[i].get();
    if (!param->is_array()) continue;
    const auto* var = call.args[i]->as<ast::VarRef>();
    if (!var || !var->decl || !var->decl->is_array()) {
      return fail(support::format("call to '%s': argument %zu must be a plain array variable",
                                  call.callee.c_str(), i + 1));
    }
  }
  return std::nullopt;
}

bool BodyInterp::prescan_calls() {
  if (!analyzer_.program_has_calls_) return true;
  // Collect every distinct failing callee (not just the first): the W0301
  // report names each one, keyed per callee.
  std::set<std::string> seen;
  ast::walk_exprs(&body_, [this, &seen](const ast::Expr* e) {
    const auto* call = e->as<ast::Call>();
    if (!call) return;
    if (auto vetoed = vet_call(analyzer_, *call)) {
      if (seen.insert(vetoed->callee).second) failures.push_back(*vetoed);
      if (!failure) failure = std::move(vetoed);
    }
  });
  return failures.empty();
}

bool BodyInterp::array_written(const ast::VarDecl* array) const {
  for (const auto& w : writes) {
    if (w.array == array) return true;
  }
  return false;
}

Range BodyInterp::read_scalar(const ast::VarDecl* decl) {
  if (index_ && decl == index_) return Range::exact(sym::make_sym(decl->symbol));
  if (const Range* r = env.find(decl)) return *r;
  Range initial;
  if (index_ && written.count(decl)) {
    // Written somewhere in the body: its start-of-iteration value is λ(x).
    lambda_reads.insert(decl);
    initial = Range::exact(sym::make_iter_start(decl->symbol));
  } else if (const Range* entry = entry_env_.find(decl)) {
    initial = *entry;
  } else {
    initial = Range::exact(sym::make_sym(decl->symbol));
  }
  env.set(decl, initial);
  return initial;
}

void BodyInterp::write_scalar(const ast::VarDecl* decl, Range value) {
  if (decl->elem_type != ast::TypeKind::Int) {
    double_assigned_.insert(decl);
    return;
  }
  env.set(decl, std::move(value));
}

void BodyInterp::record_array_write(const ast::ArrayRef& target, Range value, bool also_read) {
  const ast::VarRef* root = target.root();
  if (!root || !root->decl) return;
  ArrayWriteEffect effect;
  effect.array = root->decl;
  auto subs = target.subscripts();
  effect.dims = subs.size();
  // Evaluate subscripts in order (they may carry side effects, e.g. x++).
  Range innermost;
  for (size_t s = 0; s < subs.size(); ++s) {
    Range r = eval(*subs[s]);
    if (s + 1 == subs.size()) innermost = r;
  }
  effect.index_range = innermost;
  if (innermost.is_exact()) effect.index = innermost.exact_value();
  if (effect.index && effect.index->kind == sym::ExprKind::ArrayElem) {
    const ast::VarDecl* via = nullptr;
    // Map the symbol back to a declaration via the subscript AST.
    ast::walk_subexprs(subs.back(), [&](const ast::Expr* e) {
      if (const auto* ar = e->as<ast::ArrayRef>()) {
        const ast::VarRef* r = ar->root();
        if (r && r->decl && r->decl->symbol == effect.index->symbol) via = r->decl;
      }
    });
    if (via) {
      effect.via_array = via;
      effect.via_domain = Range::exact(effect.index->operands[0]);
    }
  }
  effect.value = std::move(value);
  effect.conditional = cond_depth_ > 0;
  effect.guards = guard_stack_;
  if (effect.dims == 1) {
    if (const auto* inc = subs[0]->as<ast::IncDec>()) {
      if (inc->op == ast::IncDecOp::PostInc) {
        if (const auto* var = inc->target->as<ast::VarRef>()) {
          effect.post_inc_subscript = var->decl;
        }
      }
    }
  }
  if (also_read) reads.push_back(effect);  // read-modify-write: same location
  writes.push_back(std::move(effect));
}

Range BodyInterp::eval(const ast::Expr& expr) {
  switch (expr.kind) {
    case ast::ExprNodeKind::IntLit:
      return Range::exact(sym::make_const(expr.as<ast::IntLit>()->value));
    case ast::ExprNodeKind::FloatLit:
      return Range::bottom();
    case ast::ExprNodeKind::VarRef: {
      const auto* decl = expr.as<ast::VarRef>()->decl;
      if (!decl || decl->is_array()) return Range::bottom();
      if (decl->elem_type != ast::TypeKind::Int) {
        // Value not modeled, but a read before any write in this iteration is
        // still a loop-carried use.
        if (index_ && written.count(decl) && !double_assigned_.count(decl)) {
          lambda_reads.insert(decl);
        }
        return Range::bottom();
      }
      return read_scalar(decl);
    }
    case ast::ExprNodeKind::ArrayRef: {
      const auto* a = expr.as<ast::ArrayRef>();
      auto subs = a->subscripts();
      Range innermost;
      for (size_t s = 0; s < subs.size(); ++s) {
        Range r = eval(*subs[s]);
        if (s + 1 == subs.size()) innermost = r;
      }
      const ast::VarRef* root = a->root();
      if (!root || !root->decl) return Range::bottom();
      // Record the read reference (for the dependence test), whatever its
      // element type.
      ArrayWriteEffect effect;
      effect.array = root->decl;
      effect.dims = subs.size();
      effect.index_range = innermost;
      if (innermost.is_exact()) effect.index = innermost.exact_value();
      effect.value = Range::bottom();
      effect.conditional = cond_depth_ > 0;
      effect.guards = guard_stack_;
      reads.push_back(std::move(effect));
      if (subs.size() != 1 || !innermost.is_exact() ||
          root->decl->elem_type != ast::TypeKind::Int) {
        return Range::bottom();
      }
      // Reads of arrays already written in this body would see stale symbolic
      // values; degrade them.
      if (array_written(root->decl)) return Range::bottom();
      return Range::exact(sym::make_array_elem(root->decl->symbol, innermost.exact_value()));
    }
    case ast::ExprNodeKind::Binary: {
      const auto* b = expr.as<ast::Binary>();
      Range lhs = eval(*b->lhs);
      Range rhs = eval(*b->rhs);
      switch (b->op) {
        case ast::BinaryOp::Add:
          return range_add(lhs, rhs);
        case ast::BinaryOp::Sub:
          return range_sub(lhs, rhs);
        case ast::BinaryOp::Mul:
          if (lhs.is_exact() && rhs.is_exact()) {
            return Range::exact(sym::mul(lhs.exact_value(), rhs.exact_value()));
          }
          if (rhs.is_exact()) {
            if (auto c = sym::const_value(rhs.exact_value())) return range_mul_const(lhs, *c);
          }
          if (lhs.is_exact()) {
            if (auto c = sym::const_value(lhs.exact_value())) return range_mul_const(rhs, *c);
          }
          return Range::bottom();
        case ast::BinaryOp::Div:
          if (lhs.is_exact() && rhs.is_exact()) {
            return Range::exact(sym::div_floor(lhs.exact_value(), rhs.exact_value()));
          }
          return Range::bottom();
        case ast::BinaryOp::Rem:
          if (lhs.is_exact() && rhs.is_exact()) {
            return Range::exact(sym::mod(lhs.exact_value(), rhs.exact_value()));
          }
          return Range::bottom();
        default:
          // Comparison / logical operators yield a flag.
          return Range::of_consts(0, 1);
      }
    }
    case ast::ExprNodeKind::Unary: {
      const auto* u = expr.as<ast::Unary>();
      Range v = eval(*u->operand);
      if (u->op == ast::UnaryOp::Neg) return range_negate(v);
      return Range::of_consts(0, 1);
    }
    case ast::ExprNodeKind::Assign: {
      const auto* a = expr.as<ast::Assign>();
      Range value = eval(*a->value);
      bool rmw = a->op != ast::AssignOp::Assign;
      if (rmw) {
        // Compound assignment reads the target first.
        Range old;
        if (const auto* var = a->target->as<ast::VarRef>()) {
          old = var->decl ? read_scalar(var->decl) : Range::bottom();
        } else {
          old = Range::bottom();  // a[i] += v handled as unknown-valued store
        }
        switch (a->op) {
          case ast::AssignOp::Add: value = range_add(old, value); break;
          case ast::AssignOp::Sub: value = range_sub(old, value); break;
          default: value = Range::bottom(); break;
        }
      }
      if (const auto* var = a->target->as<ast::VarRef>()) {
        if (var->decl) write_scalar(var->decl, value);
      } else if (const auto* arr = a->target->as<ast::ArrayRef>()) {
        record_array_write(*arr, value, /*also_read=*/rmw);
      }
      return value;
    }
    case ast::ExprNodeKind::IncDec: {
      const auto* i = expr.as<ast::IncDec>();
      if (const auto* var = i->target->as<ast::VarRef>()) {
        if (!var->decl) return Range::bottom();
        Range old = read_scalar(var->decl);
        Range neu = i->is_increment() ? range_add(old, Range::of_consts(1, 1))
                                      : range_sub(old, Range::of_consts(1, 1));
        write_scalar(var->decl, neu);
        return i->is_post() ? old : neu;
      }
      if (const auto* arr = i->target->as<ast::ArrayRef>()) {
        record_array_write(*arr, Range::bottom(), /*also_read=*/true);
      }
      return Range::bottom();
    }
    case ast::ExprNodeKind::Conditional: {
      const auto* c = expr.as<ast::Conditional>();
      eval(*c->cond);
      ++cond_depth_;
      Range t = eval(*c->then_expr);
      Range f = eval(*c->else_expr);
      --cond_depth_;
      return range_join(t, f);
    }
    case ast::ExprNodeKind::Call:
      // prescan_calls() vetted every call site; apply the callee's summary.
      return apply_call(*expr.as<ast::Call>());
  }
  return Range::bottom();
}

Range BodyInterp::apply_call(const ast::Call& call) {
  const ipa::FunctionSummary* s = analyzer_.call_summary(call);
  // Evaluate the arguments in order regardless (they may carry side effects).
  std::vector<Range> arg_values;
  arg_values.reserve(call.args.size());
  for (const auto& a : call.args) arg_values.push_back(eval(*a));
  if (!s || !s->analyzable || !call.decl ||
      call.args.size() != call.decl->params.size()) {
    return Range::bottom();  // prescan rejected the body already
  }

  // Context sensitivity (straight-line mode only, matching exit-fact
  // propagation): when the caller's facts describe arrays the callee reads,
  // apply the summary specialized to those entry facts — that is how a
  // helper that only finishes a fact chain (build_rowstr over an nzz filled
  // by a different helper) keeps the enabling property. Arrays this body
  // already wrote are stale: their statement-entry facts no longer describe
  // what the callee observes.
  if (!index_) {
    std::set<sym::SymbolId> stale;
    for (const auto& w : writes) {
      if (w.array) stale.insert(w.array->symbol);
    }
    // A global scalar mentioned by a projected fact must still hold its
    // caller-entry value at the call: its current state (this statement's
    // env over the flow entry env) must read as exactly its own symbol.
    auto scalar_unchanged = [this](sym::SymbolId id) {
      const ast::VarDecl* decl = analyzer_.global_by_symbol(id);
      if (!decl || !decl->is_integer_scalar()) return false;
      const Range* r = env.find(decl);
      if (!r) r = entry_env_.find(decl);
      if (!r) return true;  // never touched: still its entry symbol
      return r->is_exact() && sym::equal(r->exact_value(), sym::make_sym(id));
    };
    s = analyzer_.context_summary(call, entry_facts_, stale, scalar_unchanged);
  }

  ipa::SummaryApplier applier;
  for (size_t i = 0; i < call.decl->params.size(); ++i) {
    const ast::VarDecl* param = call.decl->params[i].get();
    if (param->is_array()) {
      if (const auto* var = call.args[i]->as<ast::VarRef>()) {
        if (var->decl) applier.bind_array(param, var->decl);
      }
    } else if (param->is_integer_scalar()) {
      applier.bind(param->symbol, arg_values[i]);
    }
  }
  // The callee observes the caller's *current* values of the globals it may
  // read; read_scalar registers the λ-dependence when this body writes them.
  for (const ast::VarDecl* g : s->exposed_scalar_reads) {
    if (g->is_integer_scalar()) {
      applier.bind(g->symbol, read_scalar(g));
    } else if (index_ && written.count(g) && !double_assigned_.count(g)) {
      lambda_reads.insert(g);
    }
  }
  // Summary expressions read array elements at call-entry; elements of arrays
  // this body already wrote are stale and must degrade.
  for (const auto& w : writes) {
    if (w.array) applier.mark_stale(w.array->symbol);
  }

  // Scalar effects. A scalar the callee assigns only on some paths keeps its
  // pre-call value on the others — join with it, exactly like merge_branches
  // does for an inlined conditional assignment (read_scalar registers the
  // λ-dependence in loop mode).
  for (const auto& [decl, final] : s->scalar_finals) {
    Range value = applier.apply(final);
    if (!s->definite_scalar_writes.count(decl)) {
      value = range_join(value, read_scalar(decl));
    }
    write_scalar(decl, value);
  }
  for (const ast::VarDecl* g : s->may_write_scalars) {
    if (g->is_array() || g->elem_type == ast::TypeKind::Int) continue;
    // Only a definitely assigned double counts as assigned — a later read of
    // a conditionally assigned one must still register its λ-dependence
    // (mirrors the both-branches rule in exec's If merge).
    if (s->definite_scalar_writes.count(g)) double_assigned_.insert(g);
  }

  // Array effects, instantiated for this call site.
  auto instantiate = [this, s, &applier](const ArrayWriteEffect& e) {
    ArrayWriteEffect out = e;
    out.array = applier.remap_array(e.array);
    out.index = applier.apply(e.index);
    out.index_range = applier.apply(e.index_range);
    out.value = applier.apply(e.value);
    out.conditional = e.conditional || cond_depth_ > 0;
    out.guards.clear();
    for (const AccessGuard& g : e.guards) {
      AccessGuard mapped{applier.remap_array(g.array), applier.apply(g.index), g.min};
      if (mapped.array && mapped.index) out.guards.push_back(std::move(mapped));
    }
    for (const AccessGuard& g : guard_stack_) out.guards.push_back(g);
    out.via_array = e.via_array ? applier.remap_array(e.via_array) : nullptr;
    out.via_domain = applier.apply(e.via_domain);
    if (e.post_inc_subscript && !analyzer_.is_global(e.post_inc_subscript)) {
      out.post_inc_subscript = nullptr;
    }
    out.summary_origin = s->function;
    return out;
  };
  for (const auto& w : s->writes) writes.push_back(instantiate(w));
  for (const auto& r : s->reads) reads.push_back(instantiate(r));

  // Exit facts: propagated only from unconditional straight-line call sites
  // (the analyzer's flow applies them after the statement's kills). Facts
  // from calls inside a loop iteration or branch are dropped, like
  // inner-loop facts.
  if (!index_ && cond_depth_ == 0) {
    for (const auto& [array, facts_ptr] : s->end_facts.all()) {
      const ArrayFacts& facts = *facts_ptr;
      const sym::SymbolId mapped = applier.remap_array_symbol(array);
      auto push = [this, s](LoopEffect::ProducedFact fact) {
        pending_facts.push_back(PendingFact{std::move(fact), s->function, writes.size()});
      };
      for (const auto& f : facts.identities) {
        sym::ExprPtr lo = applier.apply(f.lo), hi = applier.apply(f.hi);
        if (!lo || !hi) continue;
        LoopEffect::ProducedFact fact;
        fact.array = mapped;
        fact.identity = IdentityFact{lo, hi};
        push(std::move(fact));
      }
      for (const auto& f : facts.values) {
        sym::ExprPtr lo = applier.apply(f.lo), hi = applier.apply(f.hi);
        Range value = applier.apply(f.value);
        if (!lo || !hi || value.is_bottom()) continue;
        LoopEffect::ProducedFact fact;
        fact.array = mapped;
        fact.value = ValueFact{lo, hi, std::move(value)};
        push(std::move(fact));
      }
      for (const auto& f : facts.steps) {
        sym::ExprPtr lo = applier.apply(f.lo), hi = applier.apply(f.hi);
        Range step = applier.apply(f.step);
        if (!lo || !hi || step.is_bottom()) continue;
        LoopEffect::ProducedFact fact;
        fact.array = mapped;
        fact.step = StepFact{lo, hi, std::move(step)};
        push(std::move(fact));
      }
      for (const auto& f : facts.injectives) {
        sym::ExprPtr lo = applier.apply(f.lo), hi = applier.apply(f.hi);
        if (!lo || !hi) continue;
        LoopEffect::ProducedFact fact;
        fact.array = mapped;
        fact.injective = InjectiveFact{lo, hi, f.min_value, f.from_chain};
        push(std::move(fact));
      }
    }
  }

  applied_summaries.insert(s->function);
  analyzer_.summaries_->note_application();
  return s->return_value ? applier.apply(*s->return_value) : Range::bottom();
}

void BodyInterp::merge_branches(const ScalarEnv& before, ScalarEnv then_env,
                                ScalarEnv else_env) {
  // The value a variable has on a path that never touched it: its λ (loop
  // mode, written somewhere in the body), its entry value, or its own symbol.
  auto initial_value = [&](const ast::VarDecl* decl) -> Range {
    if (index_ && decl == index_) return Range::exact(sym::make_sym(decl->symbol));
    if (index_ && written.count(decl)) {
      lambda_reads.insert(decl);  // the merged value depends on the λ value
      return Range::exact(sym::make_iter_start(decl->symbol));
    }
    if (const Range* entry = entry_env_.find(decl)) return *entry;
    return Range::exact(sym::make_sym(decl->symbol));
  };
  ScalarEnv merged = before;
  std::set<const ast::VarDecl*> touched;
  for (const auto& [decl, r] : then_env.values) touched.insert(decl);
  for (const auto& [decl, r] : else_env.values) touched.insert(decl);
  for (const ast::VarDecl* decl : touched) {
    const Range* t = then_env.find(decl);
    const Range* f = else_env.find(decl);
    const Range* pre = before.find(decl);
    Range tr = t ? *t : (pre ? *pre : initial_value(decl));
    Range fr = f ? *f : (pre ? *pre : initial_value(decl));
    merged.set(decl, range_join(tr, fr));
  }
  env = std::move(merged);
}

bool BodyInterp::exec(const ast::Stmt& stmt) {
  switch (stmt.kind) {
    case ast::StmtNodeKind::Empty:
      return true;
    case ast::StmtNodeKind::ExprStmt:
      eval(*stmt.as<ast::ExprStmt>()->expr);
      return true;
    case ast::StmtNodeKind::DeclStmt: {
      for (const auto& d : stmt.as<ast::DeclStmt>()->decls) {
        body_locals.insert(d.get());
        if (d->is_array()) continue;
        Range init = d->init ? eval(*d->init) : Range::bottom();
        if (d->elem_type == ast::TypeKind::Int) env.set(d.get(), init);
      }
      return true;
    }
    case ast::StmtNodeKind::Compound: {
      for (const auto& s : stmt.as<ast::Compound>()->body) {
        if (!exec(*s)) return false;
      }
      return true;
    }
    case ast::StmtNodeKind::If: {
      const auto* s = stmt.as<ast::If>();
      // Forced branch (parallelizer's first-iteration peeling): execute only
      // the selected branch, unconditionally.
      if (forced_) {
        auto it = forced_->find(s);
        if (it != forced_->end()) {
          eval(*s->cond);
          if (it->second) return exec(*s->then_branch);
          return s->else_branch ? exec(*s->else_branch) : true;
        }
      }
      eval(*s->cond);
      auto eval_fn = [this](const ast::Expr& e) { return eval(e); };
      std::optional<AccessGuard> guard = match_guard(*s->cond, eval_fn);
      ScalarEnv before = env;
      std::set<const ast::VarDecl*> doubles_before = double_assigned_;
      size_t writes_before = writes.size();
      ++cond_depth_;
      if (guard) guard_stack_.push_back(*guard);
      bool then_ok = exec(*s->then_branch);
      if (guard) guard_stack_.pop_back();
      if (!then_ok) return false;
      ScalarEnv then_env = std::move(env);
      std::set<const ast::VarDecl*> doubles_then = std::move(double_assigned_);
      size_t then_write_end = writes.size();
      env = before;
      double_assigned_ = doubles_before;
      if (s->else_branch && !exec(*s->else_branch)) return false;
      ScalarEnv else_env = std::move(env);
      --cond_depth_;
      // A double counts as definitely-assigned only if both branches assign.
      std::set<const ast::VarDecl*> doubles_merged = doubles_before;
      for (const auto* d : doubles_then) {
        if (double_assigned_.count(d)) doubles_merged.insert(d);
      }
      double_assigned_ = std::move(doubles_merged);
      merge_branches(before, std::move(then_env), std::move(else_env));
      // Branch-write pairing for the subset-injective / disjoint-strided
      // rules: one write per branch, same array, same exact subscript.
      if (s->else_branch && then_write_end - writes_before == 1 &&
          writes.size() - then_write_end == 1) {
        const ArrayWriteEffect& tw = writes[writes_before];
        const ArrayWriteEffect& ew = writes[then_write_end];
        if (tw.array == ew.array && tw.index && ew.index && sym::equal(tw.index, ew.index)) {
          BranchWritePair pair;
          pair.array = tw.array;
          pair.index = tw.index;
          pair.then_value = tw.value.is_exact() ? tw.value.exact_value() : nullptr;
          pair.else_value = ew.value.is_exact() ? ew.value.exact_value() : nullptr;
          branch_pairs.push_back(std::move(pair));
        }
      }
      return true;
    }
    case ast::StmtNodeKind::For: {
      const auto* inner = stmt.as<ast::For>();
      // Scalars of the enclosing body read by the inner loop must see their
      // λ value if they have not been assigned yet in this iteration. The
      // inner loop's own index is defined by its init and excluded.
      auto inner_info = recognize_loop(*inner);
      const ast::VarDecl* inner_index = inner_info ? inner_info->index : nullptr;
      ast::walk_exprs(inner, [this, inner_index](const ast::Expr* e) {
        if (const auto* var = e->as<ast::VarRef>()) {
          if (var->decl && var->decl != inner_index && written.count(var->decl) &&
              !env.find(var->decl)) {
            read_scalar(var->decl);
          }
        }
      });
      LoopEffect effect = analyzer_.analyze_loop(*inner, env, entry_facts_);
      if (!effect.analyzable) return false;
      for (const auto& [decl, final] : effect.scalar_finals) {
        written.insert(decl);
        env.set(decl, final);
      }
      auto adopt = [this](std::vector<ArrayWriteEffect>& sink, const ArrayWriteEffect& src) {
        ArrayWriteEffect w = src;
        w.conditional = true;  // the inner loop may run zero iterations
        w.index = nullptr;     // aggregated: no longer a per-iteration subscript
        w.post_inc_subscript = nullptr;
        w.from_inner = true;
        for (const auto& g : guard_stack_) w.guards.push_back(g);
        sink.push_back(std::move(w));
      };
      for (const auto& w : effect.writes) adopt(writes, w);
      for (const auto& r : effect.reads) adopt(reads, r);
      // Facts produced by an inner loop depend on the outer iteration; they
      // are not propagated (documented limitation).
      return true;
    }
    case ast::StmtNodeKind::While:
      if (!failure) {
        failure = Failure{support::DiagCode::AnalysisLoopWhile, stmt.location,
                          "inner while loop", ""};
      }
      return false;
    case ast::StmtNodeKind::Break:
    case ast::StmtNodeKind::Continue:
    case ast::StmtNodeKind::Return:
      if (!failure) {
        failure = Failure{support::DiagCode::AnalysisLoopAbruptExit, stmt.location,
                          "break/continue/return statement", ""};
      }
      return false;
  }
  return false;
}

}  // namespace sspar::core
