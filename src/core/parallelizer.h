// Parallelism detection: the extended Range Test (paper Section 5) plus the
// injectivity-based output-dependence tests (paper Section 2).
//
// For a candidate loop the test:
//  1. collects every array access in the body (inner loops flattened to their
//     symbolic access ranges, e.g. k ∈ [rowstr[i] : rowstr[i+1]-1]),
//  2. forms the per-iteration access range U(i) of each written array,
//  3. proves U(i) and U(i+1) disjoint and the bounds monotone in i — array
//     element differences are discharged through the Monotonic step facts
//     derived by the analyzer (rowptr[i] <= rowptr[i+1]),
//  4. falls back to injectivity: a single write a[b[i]] is output-dependence
//     free when b is injective (Fig. 2), or subset-injective with a matching
//     guard (Fig. 5),
//  5. "virtually peels" first-iteration special cases (the if (i == 0) idiom
//     of Fig. 9 / Fig. 4) and proves the peeled iteration disjoint from the
//     rest symbolically — the refinement the paper sketches in Section 5.
//
// Scalars written in the loop must be privatizable (defined before use in
// every iteration); a read of the previous iteration's value (λ-read) is a
// loop-carried dependence and blocks parallelization.
#pragma once

#include <string>
#include <vector>

#include "core/analyzer.h"

namespace sspar::core {

// The property of the index array that made the dependence test succeed
// (paper Section 2's property catalogue). `None` for serial loops.
enum class EnablingProperty {
  None,
  Affine,           // no indirection needed: affine disjoint accesses
  Monotonic,        // monotonic index array ranges (extended Range Test)
  Injective,        // injective index array subscript (Fig. 2)
  SubsetInjective,  // subset-injective with matching guard (Fig. 5)
  AffineInjective,  // injective via a nonzero-stride recurrence chain — the
                    // chain layer's addition beyond the paper's catalogue
};

// Stable lowercase spelling ("affine", "monotonic", "injective",
// "subset-injective", "affine-injective"); empty string for None. Used as the
// histogram key in driver::BatchStats and in the JSON reports.
const char* property_name(EnablingProperty property);

struct LoopVerdict {
  const ast::For* loop = nullptr;
  int loop_id = -1;
  bool canonical = false;
  bool parallel = false;
  // The loop involves subscripted subscripts (directly a[b[i]], or inner loop
  // bounds taken from an index array).
  bool uses_subscripted_subscripts = false;
  // Main enabling property when parallel, plus whether the proof needed to
  // virtually peel the first iteration (Fig. 9 / Fig. 4 idiom).
  EnablingProperty property = EnablingProperty::None;
  bool peeled = false;
  // Human-readable restatement of `property` (+ peeling); prefix matches
  // property_name(property) so legacy string consumers keep working.
  std::string reason;
  // Interprocedural provenance: names of the functions whose summaries
  // produced the index-array facts this proof consumed ("property proven via
  // summary of f"). Empty for purely intraprocedural proofs, so reasons stay
  // byte-identical with the hand-inlined equivalent. Sorted, unique.
  std::vector<std::string> summaries_used;
  std::vector<std::string> blockers;
  // Scalars to privatize in the OpenMP clause (declared outside the loop).
  std::vector<const ast::VarDecl*> privates;
  // Emitter guidance read off the access-range recurrence chains (parallel
  // verdicts only): Static when every access range advances by a
  // compile-time-constant stride (uniform, coalesced per-iteration work),
  // Dynamic when access ranges depend on index-array contents (variable
  // inner trip counts, e.g. rowstr[i]..rowstr[i+1]). None when neither is
  // established. Rendered as a provenance comment, never into the pragma.
  enum class ScheduleHint { None, Static, Dynamic };
  ScheduleHint schedule = ScheduleHint::None;
  std::string schedule_reason;
  // Hybrid inspector–executor candidate: the loop stays serial only because a
  // single enabling property of a single index array is statically unproven —
  // re-running the dependence tests under the hypothesis that the property
  // holds clears every blocker. The emitter turns such verdicts into a
  // dual-version loop guarded by the matching sspar::rt runtime check.
  bool hybrid = false;
  EnablingProperty hybrid_property = EnablingProperty::None;
  std::string hybrid_index_array;  // source name of the index array
  int64_t hybrid_min_value = 0;    // participation threshold (SubsetInjective)
  // Inclusive index range of the array section the runtime check must cover,
  // rendered as C expressions over the program's globals.
  std::string hybrid_check_lo;
  std::string hybrid_check_hi;
};

class Parallelizer {
 public:
  explicit Parallelizer(Analyzer& analyzer) : analyzer_(analyzer) {}

  LoopVerdict analyze(const ast::For& loop);

  // Verdicts for every loop of the function, in pre-order.
  std::vector<LoopVerdict> analyze_all(const ast::FuncDecl& function);

 private:
  struct Hypothesis;
  struct HybridScan;
  LoopVerdict analyze_impl(const ast::For& loop, const Hypothesis* hypothesis,
                           HybridScan* scan);

  Analyzer& analyzer_;
};

// True if the loop nest uses subscripted subscripts in the paper's sense.
bool uses_subscripted_subscripts(const ast::For& loop);

}  // namespace sspar::core
