// Phase 1: abstract interpretation of one loop iteration (internal header).
#pragma once

#include <set>

#include "core/analyzer.h"
#include "support/diagnostics.h"

namespace sspar::ipa {
struct FunctionSummary;
}

namespace sspar::core {

class BodyInterp {
 public:
  // Loop mode: `index` is the loop variable; scalars written in `body` start
  // at λ(x). Straight-line mode: `index` is null and reads use entry values
  // directly (the "loop" has exactly one iteration).
  BodyInterp(Analyzer& analyzer, const ast::Stmt& body, const ast::VarDecl* index,
             const ScalarEnv& entry_env, const FactDB& entry_facts);

  // Interprets the body once. Returns false if it is not analyzable: while
  // loops, break/continue/return, and calls without an applicable function
  // summary (with the analyzer's ipa::SummaryDB, calls to summarizable
  // functions are interpreted through their summaries instead).
  bool run();

  // Why run() returned false (unset for causes outside the W03xx catalogue,
  // e.g. an unanalyzable nested for loop).
  struct Failure {
    support::DiagCode code = support::DiagCode::Unspecified;  // AnalysisLoop*
    support::SourceLocation location;  // the blocking construct
    std::string message;               // e.g. "call to 'g' is not summarizable (...)"
    std::string callee;                // non-empty for AnalysisLoopCall
  };
  std::optional<Failure> failure;
  // Every distinct abandoned callee found by the call prescan (one entry per
  // callee name, in source order); `failure` is the first of these. The
  // analyzer emits one W0301 per entry, so two different broken calls in one
  // loop both surface. Empty for non-call failures.
  std::vector<Failure> failures;

  // Forces If statements to a fixed branch (true = then); used by the
  // parallelizer's first-iteration peeling. Must be set before run().
  void force_branches(const std::map<const ast::If*, bool>* forced) { forced_ = forced; }

  // Evaluates one expression in the current state, recording its effects
  // (used by the summarizer for trailing-return expressions, which sit
  // outside any statement this interpreter executes).
  sym::Range eval_expr(const ast::Expr& expr) { return eval(expr); }

  // --- Phase 1 results -------------------------------------------------------
  ScalarEnv env;                                   // end-of-body state
  std::vector<ArrayWriteEffect> writes;            // in execution order
  std::vector<ArrayWriteEffect> reads;             // array read references
  std::set<const ast::VarDecl*> written;           // scalars written (λ-tracked)
  std::set<const ast::VarDecl*> definitely_written;  // assigned on every path
  std::set<const ast::VarDecl*> lambda_reads;      // scalars read before written
  std::set<const ast::VarDecl*> body_locals;       // declared inside the body

  // Guarded branch-write pairs used by the branch rules (subset-injective and
  // disjoint-strided): index expression shared by both branches.
  struct BranchWritePair {
    const ast::VarDecl* array;
    sym::ExprPtr index = nullptr;       // common subscript (exact)
    sym::ExprPtr then_value = nullptr, else_value = nullptr;  // exact values (may be null)
  };
  std::vector<BranchWritePair> branch_pairs;

  // Facts established by calls at unconditional straight-line points (the
  // callee's exit facts, instantiated for this call site). The analyzer's
  // flow applies them after the statement's kills; facts from calls inside a
  // loop iteration are not propagated (like inner-loop facts).
  struct PendingFact {
    LoopEffect::ProducedFact fact;
    const ast::FuncDecl* origin = nullptr;
    // writes.size() when recorded: a later write to the same array within
    // this statement invalidates the fact.
    size_t writes_at_record = 0;
  };
  std::vector<PendingFact> pending_facts;

  // Callees whose summaries were applied while interpreting this body.
  std::set<const ast::FuncDecl*> applied_summaries;

 private:
  sym::Range eval(const ast::Expr& expr);
  sym::Range read_scalar(const ast::VarDecl* decl);
  void write_scalar(const ast::VarDecl* decl, sym::Range value);
  void record_array_write(const ast::ArrayRef& target, sym::Range value,
                          bool also_read = false);
  bool exec(const ast::Stmt& stmt);  // false => unanalyzable
  void merge_branches(const ScalarEnv& before, ScalarEnv then_env, ScalarEnv else_env);

  // Rejects the body up front if any call in it cannot be applied through a
  // function summary; records `failure` with the callee name.
  bool prescan_calls();
  // Applies the callee's summary at one call site; returns the call's value.
  sym::Range apply_call(const ast::Call& call);

 public:
  // Full call-site validation (callee bound, summary analyzable, arity and
  // array-argument shapes). Nullopt when the call is applicable; otherwise
  // the Failure to report. Shared by prescan_calls and the summarizer's
  // trailing-return path.
  static std::optional<Failure> vet_call(const Analyzer& analyzer, const ast::Call& call);

  // True if the array has an earlier write effect in this body (reads of it
  // must degrade to bottom to avoid stale-element values).
  bool array_written(const ast::VarDecl* array) const;

  Analyzer& analyzer_;
  const ast::Stmt& body_;
  const ast::VarDecl* index_;  // null in straight-line mode
  const ScalarEnv& entry_env_;
  const FactDB& entry_facts_;
  const std::map<const ast::If*, bool>* forced_ = nullptr;
  std::vector<AccessGuard> guard_stack_;
  // Non-int scalars assigned so far in this iteration (values not modeled).
  std::set<const ast::VarDecl*> double_assigned_;
  int cond_depth_ = 0;
};

// Recognizes a guard condition of the form `b[e] >= c` / `b[e] > c` (also
// with the comparison flipped); returns nullopt otherwise. `eval` supplies
// subscript evaluation.
std::optional<AccessGuard> match_guard(const ast::Expr& cond,
                                       const std::function<sym::Range(const ast::Expr&)>& eval);

// Static path-sensitive check: is `decl` assigned on every execution path
// through `stmt`? (Conservative: loops/branches handled; break/continue make
// it false.)
bool definitely_assigns(const ast::Stmt& stmt, const ast::VarDecl* decl);

}  // namespace sspar::core
