// Canonical loop recognition.
//
// The analysis handles loops of the form
//     for (i = lb; i < ub; i++)        (also <=, and declarations in init)
// which covers every loop in the paper's figures. Anything else is treated
// conservatively (the analyzer havocs whatever the loop writes).
#pragma once

#include <optional>

#include "frontend/ast.h"
#include "symbolic/expr.h"

namespace sspar::core {

struct LoopInfo {
  const ast::For* node = nullptr;
  const ast::VarDecl* index = nullptr;  // the loop variable
  const ast::Expr* lb_expr = nullptr;   // first value of the index
  const ast::Expr* ub_expr = nullptr;   // condition bound (see inclusive flag)
  bool ub_inclusive = false;            // true for `i <= ub`
};

// Recognizes the canonical form; nullopt otherwise.
std::optional<LoopInfo> recognize_loop(const ast::For& loop);

// The scalar declarations assigned anywhere in `stmt` (array writes excluded);
// includes increments and compound assignments.
std::vector<const ast::VarDecl*> written_scalars(const ast::Stmt& stmt);

// Arrays written anywhere in `stmt`.
std::vector<const ast::VarDecl*> written_arrays(const ast::Stmt& stmt);

}  // namespace sspar::core
