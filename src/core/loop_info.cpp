#include "core/loop_info.h"

#include <set>

namespace sspar::core {

namespace {

// The VarDecl assigned by `for`-init of the form `i = e` / `int i = e`;
// returns the initial-value expression through `lb`.
const ast::VarDecl* init_target(const ast::Stmt& init, const ast::Expr** lb) {
  if (const auto* es = init.as<ast::ExprStmt>()) {
    const auto* assign = es->expr->as<ast::Assign>();
    if (!assign || assign->op != ast::AssignOp::Assign) return nullptr;
    const auto* var = assign->target->as<ast::VarRef>();
    if (!var || !var->decl) return nullptr;
    *lb = assign->value.get();
    return var->decl;
  }
  if (const auto* ds = init.as<ast::DeclStmt>()) {
    if (ds->decls.size() != 1 || !ds->decls[0]->init) return nullptr;
    *lb = ds->decls[0]->init.get();
    return ds->decls[0].get();
  }
  return nullptr;
}

// True if `step` is i++ / ++i / i += 1 / i = i + 1.
bool is_unit_increment(const ast::Expr& step, const ast::VarDecl* index) {
  auto is_index_ref = [index](const ast::Expr& e) {
    const auto* var = e.as<ast::VarRef>();
    return var && var->decl == index;
  };
  if (const auto* inc = step.as<ast::IncDec>()) {
    return inc->is_increment() && is_index_ref(*inc->target);
  }
  if (const auto* assign = step.as<ast::Assign>()) {
    if (!is_index_ref(*assign->target)) return false;
    if (assign->op == ast::AssignOp::Add) {
      const auto* lit = assign->value->as<ast::IntLit>();
      return lit && lit->value == 1;
    }
    if (assign->op == ast::AssignOp::Assign) {
      const auto* bin = assign->value->as<ast::Binary>();
      if (!bin || bin->op != ast::BinaryOp::Add) return false;
      const auto* lit = bin->rhs->as<ast::IntLit>();
      if (lit && lit->value == 1 && is_index_ref(*bin->lhs)) return true;
      lit = bin->lhs->as<ast::IntLit>();
      return lit && lit->value == 1 && is_index_ref(*bin->rhs);
    }
  }
  return false;
}

}  // namespace

std::optional<LoopInfo> recognize_loop(const ast::For& loop) {
  LoopInfo info;
  info.node = &loop;
  if (!loop.init || !loop.cond || !loop.step) return std::nullopt;

  const ast::Expr* lb = nullptr;
  info.index = init_target(*loop.init, &lb);
  if (!info.index || info.index->is_array()) return std::nullopt;
  info.lb_expr = lb;

  const auto* cond = loop.cond->as<ast::Binary>();
  if (!cond) return std::nullopt;
  const auto* cond_var = cond->lhs->as<ast::VarRef>();
  if (!cond_var || cond_var->decl != info.index) return std::nullopt;
  if (cond->op == ast::BinaryOp::Lt) {
    info.ub_inclusive = false;
  } else if (cond->op == ast::BinaryOp::Le) {
    info.ub_inclusive = true;
  } else {
    return std::nullopt;
  }
  info.ub_expr = cond->rhs.get();

  if (!is_unit_increment(*loop.step, info.index)) return std::nullopt;
  return info;
}

namespace {
void collect_written(const ast::Stmt& stmt, std::vector<const ast::VarDecl*>& scalars,
                     std::vector<const ast::VarDecl*>& arrays) {
  std::set<const ast::VarDecl*> seen_scalars, seen_arrays;
  ast::walk_exprs(&stmt, [&](const ast::Expr* e) {
    const ast::Expr* target = nullptr;
    if (const auto* assign = e->as<ast::Assign>()) {
      target = assign->target.get();
    } else if (const auto* inc = e->as<ast::IncDec>()) {
      target = inc->target.get();
    }
    if (!target) return;
    if (const auto* var = target->as<ast::VarRef>()) {
      if (var->decl && seen_scalars.insert(var->decl).second) scalars.push_back(var->decl);
    } else if (const auto* arr = target->as<ast::ArrayRef>()) {
      const ast::VarRef* root = arr->root();
      if (root && root->decl && seen_arrays.insert(root->decl).second) {
        arrays.push_back(root->decl);
      }
    }
  });
}
}  // namespace

std::vector<const ast::VarDecl*> written_scalars(const ast::Stmt& stmt) {
  std::vector<const ast::VarDecl*> scalars, arrays;
  collect_written(stmt, scalars, arrays);
  return scalars;
}

std::vector<const ast::VarDecl*> written_arrays(const ast::Stmt& stmt) {
  std::vector<const ast::VarDecl*> scalars, arrays;
  collect_written(stmt, scalars, arrays);
  return arrays;
}

}  // namespace sspar::core
