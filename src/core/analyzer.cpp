#include "core/analyzer.h"

#include <algorithm>

#include "core/body_interp.h"
#include "frontend/printer.h"
#include "ipa/call_graph.h"
#include "ipa/cross_cache.h"
#include "ipa/summary.h"
#include "support/diagnostics.h"
#include "support/text.h"

namespace sspar::core {

using sym::ExprPtr;
using sym::Range;

// ---------------------------------------------------------------------------
// eval_pure
// ---------------------------------------------------------------------------

Range eval_pure(const ast::Expr& expr, const ScalarEnv& env,
                const std::set<const ast::VarDecl*>* lambda_vars) {
  switch (expr.kind) {
    case ast::ExprNodeKind::IntLit:
      return Range::exact(sym::make_const(expr.as<ast::IntLit>()->value));
    case ast::ExprNodeKind::VarRef: {
      const auto* decl = expr.as<ast::VarRef>()->decl;
      if (!decl || decl->is_array() || decl->elem_type != ast::TypeKind::Int) {
        return Range::bottom();
      }
      if (lambda_vars && lambda_vars->count(decl)) {
        return Range::exact(sym::make_iter_start(decl->symbol));
      }
      if (const Range* r = env.find(decl)) return *r;
      return Range::exact(sym::make_sym(decl->symbol));
    }
    case ast::ExprNodeKind::ArrayRef: {
      const auto* a = expr.as<ast::ArrayRef>();
      auto subs = a->subscripts();
      const ast::VarRef* root = a->root();
      if (!root || !root->decl || subs.size() != 1 ||
          root->decl->elem_type != ast::TypeKind::Int) {
        return Range::bottom();
      }
      Range idx = eval_pure(*subs[0], env, lambda_vars);
      if (!idx.is_exact()) return Range::bottom();
      return Range::exact(sym::make_array_elem(root->decl->symbol, idx.exact_value()));
    }
    case ast::ExprNodeKind::Binary: {
      const auto* b = expr.as<ast::Binary>();
      Range lhs = eval_pure(*b->lhs, env, lambda_vars);
      Range rhs = eval_pure(*b->rhs, env, lambda_vars);
      switch (b->op) {
        case ast::BinaryOp::Add:
          return range_add(lhs, rhs);
        case ast::BinaryOp::Sub:
          return range_sub(lhs, rhs);
        case ast::BinaryOp::Mul:
          if (lhs.is_exact() && rhs.is_exact()) {
            return Range::exact(sym::mul(lhs.exact_value(), rhs.exact_value()));
          }
          if (rhs.is_exact()) {
            if (auto c = sym::const_value(rhs.exact_value())) return range_mul_const(lhs, *c);
          }
          if (lhs.is_exact()) {
            if (auto c = sym::const_value(lhs.exact_value())) return range_mul_const(rhs, *c);
          }
          return Range::bottom();
        case ast::BinaryOp::Div:
          if (lhs.is_exact() && rhs.is_exact()) {
            return Range::exact(sym::div_floor(lhs.exact_value(), rhs.exact_value()));
          }
          return Range::bottom();
        case ast::BinaryOp::Rem:
          if (lhs.is_exact() && rhs.is_exact()) {
            return Range::exact(sym::mod(lhs.exact_value(), rhs.exact_value()));
          }
          return Range::bottom();
        default:
          return Range::of_consts(0, 1);
      }
    }
    case ast::ExprNodeKind::Unary: {
      const auto* u = expr.as<ast::Unary>();
      if (u->op == ast::UnaryOp::Neg) {
        return range_negate(eval_pure(*u->operand, env, lambda_vars));
      }
      return Range::of_consts(0, 1);
    }
    case ast::ExprNodeKind::Conditional: {
      const auto* c = expr.as<ast::Conditional>();
      return range_join(eval_pure(*c->then_expr, env, lambda_vars),
                        eval_pure(*c->else_expr, env, lambda_vars));
    }
    default:
      return Range::bottom();  // assignments / increments / calls are impure
  }
}

// ---------------------------------------------------------------------------
// Analyzer
// ---------------------------------------------------------------------------

Analyzer::Analyzer(const ast::Program& program, sym::SymbolTable& symbols,
                   AnalyzerOptions options, ipa::SummaryDB* summaries,
                   support::DiagnosticEngine* diags)
    : program_(program), symbols_(symbols), options_(options), summaries_(summaries),
      diags_(diags) {
  for (const auto& g : program.globals) {
    global_decls_.insert(g.get());
    global_by_symbol_[g->symbol] = g.get();
  }
  for (const auto& function : program.functions) {
    if (program_has_calls_) break;
    ast::walk_exprs(function->body.get(), [this](const ast::Expr* e) {
      if (e->kind == ast::ExprNodeKind::Call) program_has_calls_ = true;
    });
  }
}

void Analyzer::assume(const ast::VarDecl* decl, Range range) {
  base_ctx_.assume(decl->symbol, std::move(range));
}

void Analyzer::assume_ge(const ast::VarDecl* decl, int64_t lo) {
  base_ctx_.assume_ge(decl->symbol, lo);
}

void Analyzer::run() { run(nullptr); }

void Analyzer::run(const std::set<const ast::FuncDecl*>* only) {
  if (summaries_ && program_has_calls_) {
    ipa::CallGraph graph(program_);
    // The restricted path probes the shared cache by content key, so every
    // function must be keyed up front (idempotent; a no-op when the caller
    // already keyed the program).
    if (only != nullptr && summaries_->shared()) key_all_functions(graph);
    compute_summaries(graph, only);
  }
  for (const auto& function : program_.functions) {
    if (only != nullptr && only->count(function.get()) == 0) continue;
    analyze_function(*function);
  }
}

void Analyzer::key_all_functions(const ipa::CallGraph& graph) {
  for (const ast::FuncDecl* function : graph.bottom_up()) {
    compute_content_key(*function, graph);
  }
}

const std::pair<uint64_t, uint64_t>* Analyzer::content_key(const ast::FuncDecl* function) const {
  auto it = content_keys_.find(function);
  return it == content_keys_.end() ? nullptr : &it->second;
}

void Analyzer::analyze_function(const ast::FuncDecl& function) {
  fact_provenance_.clear();
  ScalarEnv env;
  // Globals with constant initializers have a known entry value; everything
  // else starts as its own symbol.
  for (const auto& g : program_.globals) {
    if (g->is_array() || g->elem_type != ast::TypeKind::Int) continue;
    if (g->init) {
      if (const auto* lit = g->init->as<ast::IntLit>()) {
        env.set(g.get(), Range::exact(sym::make_const(lit->value)));
      }
    }
  }
  FactDB facts;
  flow_stmt(*function.body, env, facts);
  end_facts_[&function] = std::move(facts);
}

void Analyzer::flow_stmt(const ast::Stmt& stmt, ScalarEnv& env, FactDB& facts) {
  switch (stmt.kind) {
    case ast::StmtNodeKind::Compound:
      for (const auto& s : stmt.as<ast::Compound>()->body) flow_stmt(*s, env, facts);
      return;
    case ast::StmtNodeKind::For: {
      const auto& loop = *stmt.as<ast::For>();
      // Snapshot the state at loop entry for the parallelizer.
      LoopSnapshot snap;
      snap.loop = &loop;
      snap.info = recognize_loop(loop);
      snap.facts_at_entry = facts;
      snap.scalars_at_entry = env;
      for (const auto& [array, origins] : fact_provenance_) {
        snap.fact_provenance[array].assign(origins.begin(), origins.end());
      }
      int key = next_key_++;
      loop_keys_[&loop] = key;
      snapshots_[key] = std::move(snap);
      // Also snapshot nested loops (entry state approximated by the outer
      // loop's entry state; sound for facts because inner snapshots are only
      // used for reporting and their own dependence tests re-derive bounds).
      for (const ast::For* inner : ast::collect_loops(loop.body.get())) {
        if (!loop_keys_.count(inner)) {
          LoopSnapshot inner_snap;
          inner_snap.loop = inner;
          inner_snap.info = recognize_loop(*inner);
          inner_snap.facts_at_entry = facts;
          inner_snap.scalars_at_entry = env;
          for (const auto& [array, origins] : fact_provenance_) {
            inner_snap.fact_provenance[array].assign(origins.begin(), origins.end());
          }
          int inner_key = next_key_++;
          loop_keys_[inner] = inner_key;
          snapshots_[inner_key] = std::move(inner_snap);
        }
      }
      LoopEffect effect = analyze_loop(loop, env, facts);
      apply_effect(loop, effect, env, facts);
      return;
    }
    case ast::StmtNodeKind::While:
      // Conservative: havoc everything the while loop (or its calls) writes.
      havoc_stmt(stmt, env, facts);
      return;
    case ast::StmtNodeKind::If:
    case ast::StmtNodeKind::ExprStmt:
    case ast::StmtNodeKind::DeclStmt: {
      // Straight-line interpretation (single-trip "loop").
      BodyInterp interp(*this, stmt, /*index=*/nullptr, env, facts);
      if (!interp.run()) {
        havoc_stmt(stmt, env, facts);
        return;
      }
      apply_straight_line(interp, env, facts, /*track_provenance=*/!summary_mode_);
      return;
    }
    default:
      return;  // Break/Continue/Return/Empty at top level: no effect to model
  }
}

void Analyzer::apply_straight_line(BodyInterp& interp, ScalarEnv& env, FactDB& facts,
                                   bool track_provenance) {
  for (const auto& [decl, value] : interp.env.values) env.set(decl, value);
  for (const auto& w : interp.writes) {
    if (!w.array) continue;
    if (w.index_range.is_bottom() || w.dims != 1) {
      facts.kill_all(w.array->symbol);
    } else {
      facts.kill_overlapping(w.array->symbol, w.index_range.lo(), w.index_range.hi(),
                             base_ctx_);
    }
    // Single unconditional write with known value: point fact (e.g.
    // rowptr[0] = 0 in Fig. 9). Summary-applied writes are skipped: the
    // callee's exit facts below already carry everything provable.
    if (!w.conditional && w.index && !w.value.is_bottom() && w.dims == 1 &&
        !w.summary_origin) {
      facts.add_value(w.array->symbol, ValueFact{w.index, w.index, w.value});
    }
    if (track_provenance && !w.summary_origin) fact_provenance_.erase(w.array->symbol);
  }
  // Callee exit facts from unconditional calls, after the kills.
  for (const auto& pf : interp.pending_facts) {
    // A write later in the same statement clobbers the callee's exit state.
    bool clobbered = false;
    for (size_t j = pf.writes_at_record; j < interp.writes.size(); ++j) {
      const auto& w = interp.writes[j];
      if (w.array && w.array->symbol == pf.fact.array) {
        clobbered = true;
        break;
      }
    }
    if (clobbered) continue;
    if (pf.fact.identity) facts.add_identity(pf.fact.array, *pf.fact.identity);
    if (pf.fact.value) facts.add_value(pf.fact.array, *pf.fact.value);
    if (pf.fact.step) facts.add_step(pf.fact.array, *pf.fact.step);
    if (pf.fact.injective) facts.add_injective(pf.fact.array, *pf.fact.injective);
    if (track_provenance && pf.origin) {
      fact_provenance_[pf.fact.array].insert(pf.origin->name);
    }
  }
}

void Analyzer::havoc_stmt(const ast::Stmt& stmt, ScalarEnv& env, FactDB& facts) {
  for (const ast::VarDecl* decl : written_scalars(stmt)) env.set(decl, Range::bottom());
  for (const ast::VarDecl* arr : written_arrays(stmt)) {
    facts.kill_all(arr->symbol);
    fact_provenance_.erase(arr->symbol);
  }
  // Calls may write state that is invisible syntactically; havoc their
  // may-write sets (or everything, when the callee is opaque or unknown).
  bool havoc_world = false;
  ast::walk_exprs(&stmt, [this, &havoc_world, &env, &facts](const ast::Expr* e) {
    const auto* call = e->as<ast::Call>();
    if (!call || havoc_world) return;
    const ipa::FunctionSummary* s = call_summary(*call);
    if (!s || s->opaque) {
      havoc_world = true;
      return;
    }
    for (const ast::VarDecl* decl : s->may_write_scalars) env.set(decl, Range::bottom());
    for (const ast::VarDecl* arr : s->may_write_arrays) {
      facts.kill_all(arr->symbol);
      fact_provenance_.erase(arr->symbol);
    }
    if (s->writes_array_params) {
      // The callee stores through its array parameters: the actuals at this
      // site may be written. Array actuals are plain variables by grammar.
      for (const auto& arg : call->args) {
        if (const auto* var = arg->as<ast::VarRef>()) {
          if (var->decl && var->decl->is_array()) {
            facts.kill_all(var->decl->symbol);
            fact_provenance_.erase(var->decl->symbol);
          }
        }
      }
    }
  });
  if (havoc_world) {
    for (const auto& g : program_.globals) {
      if (!g->is_array()) env.set(g.get(), Range::bottom());
    }
    // Kill every array fact at this point, not just the globals': a local
    // array passed as an argument is writable by the opaque callee too.
    std::vector<sym::SymbolId> known;
    known.reserve(facts.all().size());
    for (const auto& [array, unused] : facts.all()) known.push_back(array);
    for (sym::SymbolId array : known) facts.kill_all(array);
    fact_provenance_.clear();
  }
}

const ipa::FunctionSummary* Analyzer::call_summary(const ast::Call& call) const {
  if (!summaries_ || !call.decl) return nullptr;
  return summaries_->find(call.decl, options_);
}

void Analyzer::warn_unanalyzable(const ast::For& loop, const BodyInterp& body) {
  if (!diags_) return;
  // Dedup on (loop, callee): a loop that abandons on calls to two different
  // unsummarizable functions surfaces one W0301 per callee instead of
  // collapsing them onto the first.
  auto emit = [this, &loop](const BodyInterp::Failure& f) {
    if (!warned_loops_.insert({&loop, f.callee}).second) return;
    diags_->report(support::Severity::Warning, f.code, f.location,
                   support::format("loop at line %u abandoned as unanalyzable: %s",
                                   loop.location.line, f.message.c_str()));
  };
  for (const BodyInterp::Failure& f : body.failures) emit(f);
  if (body.failures.empty() && body.failure) emit(*body.failure);
}

LoopEffect Analyzer::analyze_loop(const ast::For& loop, const ScalarEnv& entry_env,
                                  const FactDB& entry_facts) {
  auto info = recognize_loop(loop);
  if (!info) {
    LoopEffect effect;
    effect.analyzable = false;
    return effect;
  }
  BodyInterp body(*this, *loop.body, info->index, entry_env, entry_facts);
  if (!body.run()) {
    warn_unanalyzable(loop, body);
    LoopEffect effect;
    effect.analyzable = false;
    return effect;
  }
  return aggregate(loop, *info, entry_env, entry_facts, body);
}

void Analyzer::apply_effect(const ast::For& loop, const LoopEffect& effect, ScalarEnv& env,
                            FactDB& facts) {
  if (!effect.analyzable) {
    // Havoc everything the loop (including its calls) could touch.
    havoc_stmt(loop, env, facts);
    if (auto info = recognize_loop(loop)) env.set(info->index, Range::bottom());
    return;
  }
  for (const auto& [decl, final] : effect.scalar_finals) env.set(decl, final);
  // Kills first...
  for (const auto& w : effect.writes) {
    if (!w.array) continue;
    if (w.dims != 1 || w.index_range.is_bottom() ||
        (!w.index_range.lo_bounded() && !w.index_range.hi_bounded())) {
      facts.kill_all(w.array->symbol);
    } else {
      facts.kill_overlapping(w.array->symbol, w.index_range.lo(), w.index_range.hi(),
                             base_ctx_);
    }
  }
  // ...then the produced facts.
  // Provenance: a fact whose underlying writes came (at least partly) from a
  // callee's summary is attributed to that callee; locally re-derived facts
  // clear the attribution.
  std::map<sym::SymbolId, std::set<std::string>> write_origins;
  for (const auto& w : effect.writes) {
    if (!w.array) continue;
    auto& origins = write_origins[w.array->symbol];
    if (w.summary_origin) origins.insert(w.summary_origin->name);
  }
  for (const auto& f : effect.facts) {
    if (f.identity) facts.add_identity(f.array, *f.identity);
    if (f.value) facts.add_value(f.array, *f.value);
    if (f.step) facts.add_step(f.array, *f.step);
    if (f.injective) facts.add_injective(f.array, *f.injective);
    if (summary_mode_) continue;
    auto it = write_origins.find(f.array);
    if (it != write_origins.end() && !it->second.empty()) {
      fact_provenance_[f.array].insert(it->second.begin(), it->second.end());
    } else {
      fact_provenance_.erase(f.array);
    }
  }
}

// ---------------------------------------------------------------------------
// Interprocedural summaries
// ---------------------------------------------------------------------------

namespace {

// Global scalars read anywhere in `e`. A VarRef that is the target of a
// plain assignment is a write, not a read; compound assignments and
// increments read first.
void collect_expr_scalar_reads(const ast::Expr* e,
                               const std::function<bool(const ast::VarDecl*)>& is_global,
                               std::set<const ast::VarDecl*>& out) {
  if (!e) return;
  auto scan = [&](const ast::Expr* child) { collect_expr_scalar_reads(child, is_global, out); };
  switch (e->kind) {
    case ast::ExprNodeKind::VarRef: {
      const auto* var = e->as<ast::VarRef>();
      if (var->decl && !var->decl->is_array() && is_global(var->decl)) {
        out.insert(var->decl);
      }
      return;
    }
    case ast::ExprNodeKind::Assign: {
      const auto* a = e->as<ast::Assign>();
      // Plain assignment: the target VarRef is not a read. Compound
      // assignment reads the target. Array targets: subscripts are reads.
      if (a->op == ast::AssignOp::Assign &&
          a->target->kind == ast::ExprNodeKind::VarRef) {
        // skip target
      } else {
        scan(a->target.get());
      }
      scan(a->value.get());
      return;
    }
    case ast::ExprNodeKind::ArrayRef: {
      const auto* ar = e->as<ast::ArrayRef>();
      scan(ar->base.get());
      scan(ar->index.get());
      return;
    }
    case ast::ExprNodeKind::Binary: {
      const auto* b = e->as<ast::Binary>();
      scan(b->lhs.get());
      scan(b->rhs.get());
      return;
    }
    case ast::ExprNodeKind::Unary:
      scan(e->as<ast::Unary>()->operand.get());
      return;
    case ast::ExprNodeKind::IncDec:
      scan(e->as<ast::IncDec>()->target.get());
      return;
    case ast::ExprNodeKind::Conditional: {
      const auto* c = e->as<ast::Conditional>();
      scan(c->cond.get());
      scan(c->then_expr.get());
      scan(c->else_expr.get());
      return;
    }
    case ast::ExprNodeKind::Call:
      for (const auto& a : e->as<ast::Call>()->args) scan(a.get());
      return;
    default:
      return;
  }
}

// Every Call node inside `e`, including nested ones in arguments.
void collect_calls(const ast::Expr* e, std::vector<const ast::Call*>& out) {
  if (!e) return;
  switch (e->kind) {
    case ast::ExprNodeKind::Call:
      out.push_back(e->as<ast::Call>());
      for (const auto& a : e->as<ast::Call>()->args) collect_calls(a.get(), out);
      return;
    case ast::ExprNodeKind::Assign:
      collect_calls(e->as<ast::Assign>()->target.get(), out);
      collect_calls(e->as<ast::Assign>()->value.get(), out);
      return;
    case ast::ExprNodeKind::ArrayRef:
      collect_calls(e->as<ast::ArrayRef>()->base.get(), out);
      collect_calls(e->as<ast::ArrayRef>()->index.get(), out);
      return;
    case ast::ExprNodeKind::Binary:
      collect_calls(e->as<ast::Binary>()->lhs.get(), out);
      collect_calls(e->as<ast::Binary>()->rhs.get(), out);
      return;
    case ast::ExprNodeKind::Unary:
      collect_calls(e->as<ast::Unary>()->operand.get(), out);
      return;
    case ast::ExprNodeKind::IncDec:
      collect_calls(e->as<ast::IncDec>()->target.get(), out);
      return;
    case ast::ExprNodeKind::Conditional:
      collect_calls(e->as<ast::Conditional>()->cond.get(), out);
      collect_calls(e->as<ast::Conditional>()->then_expr.get(), out);
      collect_calls(e->as<ast::Conditional>()->else_expr.get(), out);
      return;
    default:
      return;
  }
}

// Position-sensitive exposed (read-before-definite-write) global scalar set.
// Walks the body in execution order tracking which globals are DEFINITELY
// assigned on every path reaching the current statement; a read — from the
// statement's own expressions or a callee's exposed set — only counts when
// it can still observe the caller-entry value. Plain call statements credit
// the callee's definite scalar writes, so a helper temporary pattern like
// { t = b[i]*2; a[i] = t; } never leaks t to its call sites. Anything this
// pass cannot order (loop bodies that may run zero times, one-armed ifs) is
// treated as conditional, which only widens the exposed set — the result is
// always a subset of the whole-body read set and a superset of the true
// exposed set.
class ExposedScalarReads {
 public:
  ExposedScalarReads(
      const std::function<bool(const ast::VarDecl*)>& is_global,
      const std::function<const ipa::FunctionSummary*(const ast::Call&)>& summary_of)
      : is_global_(is_global), summary_of_(summary_of) {}

  std::set<const ast::VarDecl*> run(const ast::FuncDecl& function) {
    for (const ast::VarDecl* decl : written_scalars(*function.body)) {
      if (!decl->is_array() && is_global_(decl)) candidates_.insert(decl);
    }
    std::set<const ast::VarDecl*> assigned;
    visit(function.body.get(), assigned);
    return std::move(exposed_);
  }

 private:
  using DeclSet = std::set<const ast::VarDecl*>;

  void note_expr(const ast::Expr* e, const DeclSet& assigned) {
    if (!e) return;
    DeclSet reads;
    collect_expr_scalar_reads(e, is_global_, reads);
    for (const ast::VarDecl* d : reads) {
      if (!assigned.count(d)) exposed_.insert(d);
    }
    // Call sites surface their callee's exposed reads at call position.
    std::vector<const ast::Call*> calls;
    collect_calls(e, calls);
    for (const ast::Call* call : calls) {
      if (const ipa::FunctionSummary* cs = summary_of_(*call)) {
        for (const ast::VarDecl* d : cs->exposed_scalar_reads) {
          if (!assigned.count(d)) exposed_.insert(d);
        }
      }
    }
  }

  void mark_assigned(const ast::Stmt& s, DeclSet& assigned) {
    for (const ast::VarDecl* d : candidates_) {
      if (!assigned.count(d) && definitely_assigns(s, d)) assigned.insert(d);
    }
  }

  void visit(const ast::Stmt* s, DeclSet& assigned) {
    if (!s) return;
    switch (s->kind) {
      case ast::StmtNodeKind::Compound:
        for (const auto& child : s->as<ast::Compound>()->body) {
          visit(child.get(), assigned);
        }
        return;
      case ast::StmtNodeKind::ExprStmt: {
        const ast::Expr* e = s->as<ast::ExprStmt>()->expr.get();
        note_expr(e, assigned);
        mark_assigned(*s, assigned);
        // A plain call statement runs unconditionally: the callee's definite
        // scalar writes are definite here too.
        if (e && e->kind == ast::ExprNodeKind::Call) {
          if (const ipa::FunctionSummary* cs = summary_of_(*e->as<ast::Call>())) {
            assigned.insert(cs->definite_scalar_writes.begin(),
                            cs->definite_scalar_writes.end());
          }
        }
        return;
      }
      case ast::StmtNodeKind::DeclStmt:
        // Declares locals only; the initializers read against current state.
        for (const auto& d : s->as<ast::DeclStmt>()->decls) {
          if (d->init) note_expr(d->init.get(), assigned);
          for (const auto& dim : d->dims) note_expr(dim.get(), assigned);
        }
        return;
      case ast::StmtNodeKind::If: {
        const auto* i = s->as<ast::If>();
        note_expr(i->cond.get(), assigned);
        DeclSet then_assigned = assigned;
        visit(i->then_branch.get(), then_assigned);
        if (i->else_branch) {
          DeclSet else_assigned = assigned;
          visit(i->else_branch.get(), else_assigned);
          // Only assignments made on BOTH paths survive the join.
          for (const ast::VarDecl* d : then_assigned) {
            if (else_assigned.count(d)) assigned.insert(d);
          }
        }
        mark_assigned(*s, assigned);  // assignments inside the condition
        return;
      }
      case ast::StmtNodeKind::For: {
        const auto* f = s->as<ast::For>();
        visit(f->init.get(), assigned);  // only the init runs unconditionally
        note_expr(f->cond.get(), assigned);
        // Body and step may run zero times: reads inside still respect the
        // in-body order, but nothing they assign is definite afterwards.
        DeclSet body_assigned = assigned;
        visit(f->body.get(), body_assigned);
        note_expr(f->step.get(), body_assigned);
        return;
      }
      case ast::StmtNodeKind::While: {
        const auto* w = s->as<ast::While>();
        note_expr(w->cond.get(), assigned);
        DeclSet body_assigned = assigned;
        visit(w->body.get(), body_assigned);
        return;
      }
      case ast::StmtNodeKind::Return:
        note_expr(s->as<ast::Return>()->value.get(), assigned);
        return;
      default:
        return;  // Break / Continue / Empty
    }
  }

  const std::function<bool(const ast::VarDecl*)>& is_global_;
  const std::function<const ipa::FunctionSummary*(const ast::Call&)>& summary_of_;
  DeclSet candidates_;
  DeclSet exposed_;
};

}  // namespace

void Analyzer::compute_summaries(const ipa::CallGraph& graph) {
  compute_summaries(graph, /*roots=*/nullptr);
}

void Analyzer::compute_summaries(const ipa::CallGraph& graph,
                                 const std::set<const ast::FuncDecl*>* roots) {
  // With `roots`, only the summaries a restricted analysis can actually
  // consult are materialized. Analyzing (or re-summarizing) a function
  // consults its DIRECT callees' summaries — a summary already encapsulates
  // its own callees' transitive effects. The expansion therefore recurses
  // into a callee's callees only when that callee's summary will be
  // COMPUTED rather than rehydrated from the shared cache (shared-cache
  // probe miss): computing replays the cold bottom-up path and needs the
  // next level down, a rehydration is self-contained. For the incremental
  // engine this means a dirty leaf costs its callers plus one rehydrated
  // ring around the cone, not the whole program.
  std::set<const ast::FuncDecl*> needed;
  if (roots != nullptr) {
    std::vector<const ast::FuncDecl*> work;
    auto push_callees = [&](const ast::FuncDecl* f) {
      if (const ipa::CallGraph::Node* node = graph.node(f)) {
        for (const ast::FuncDecl* callee : node->callees) work.push_back(callee);
      }
    };
    // A root needs its direct callees' summaries only if it is summarized
    // itself (called: aggregation folds callee effects in) or its body has a
    // loop (any For/While makes the flow analysis consult call summaries —
    // straight-line call handling feeds loop entry state). A loop-free,
    // uncalled root (a pure dispatcher like main) is analyzed without ever
    // reading a summary, so its callees need none materialized.
    auto has_loop = [](const ast::FuncDecl* f) {
      bool found = false;
      ast::walk_stmts(static_cast<const ast::Stmt*>(f->body.get()),
                      [&found](const ast::Stmt* s) {
                        if (s->kind == ast::StmtNodeKind::For ||
                            s->kind == ast::StmtNodeKind::While) {
                          found = true;
                        }
                        return !found;
                      });
      return found;
    };
    for (const ast::FuncDecl* f : *roots) {
      const ipa::CallGraph::Node* node = graph.node(f);
      if ((node && node->called) || has_loop(f)) push_callees(f);
    }
    while (!work.empty()) {
      const ast::FuncDecl* f = work.back();
      work.pop_back();
      if (!needed.insert(f).second) continue;
      if (!shared_summary_available(f)) push_callees(f);
    }
  }
  for (const ast::FuncDecl* function : graph.bottom_up()) {
    const ipa::CallGraph::Node* node = graph.node(function);
    if (!node || !node->called) continue;  // only functions something calls
    if (roots != nullptr && needed.count(function) == 0 && roots->count(function) == 0) {
      continue;
    }
    // Bottom-up order keys callees before their callers, which is exactly
    // what the content address's transitive-closure composition needs.
    if (summaries_->shared()) compute_content_key(*function, graph);
    obtain_summary(function, /*entry_facts=*/nullptr, /*fingerprint=*/0, &graph);
  }
}

bool Analyzer::shared_summary_available(const ast::FuncDecl* function) const {
  ipa::CrossProgramCache* shared = summaries_ ? summaries_->shared() : nullptr;
  if (shared == nullptr) return false;
  auto it = content_keys_.find(function);
  if (it == content_keys_.end()) return false;
  // Must mirror obtain_summary's base-summary cache address exactly
  // (content key + encoded options + fingerprint 0, no entry facts).
  ipa::ContentHasher h;
  h.mix(it->second.first);
  h.mix(it->second.second);
  h.mix(static_cast<uint64_t>(ipa::SummaryDB::encode(options_)));
  h.mix(uint64_t{0});
  bool from_store = false;
  return shared->find(h.key(), &from_store) != nullptr;
}

void Analyzer::mix_function_identity(const ast::FuncDecl& function,
                                     ipa::ContentHasher& h) const {
  // Signature + printed body: textual identity of the function itself.
  h.mix(function.name);
  h.mix(static_cast<uint64_t>(function.return_type));
  auto mix_decl_shape = [&h](const ast::VarDecl& decl) {
    h.mix(decl.name);
    h.mix(static_cast<uint64_t>(decl.elem_type));
    h.mix(static_cast<uint64_t>(decl.dims.size()));
    for (const auto& dim : decl.dims) {
      h.mix(dim ? ast::print_expr(*dim) : std::string("[]"));
    }
  };
  for (const auto& p : function.params) mix_decl_shape(*p);
  h.mix(ast::print_stmt(*function.body));
  // Declaration shape + analysis assumptions of every referenced global: two
  // textually identical helpers over differently-sized (or differently
  // assumed) globals must not share a summary.
  std::map<std::string, const ast::VarDecl*> referenced;
  ast::walk_exprs(function.body.get(), [&](const ast::Expr* e) {
    const auto* var = e->as<ast::VarRef>();
    if (var && var->decl && is_global(var->decl)) referenced[var->decl->name] = var->decl;
  });
  for (const auto& [name, decl] : referenced) {
    mix_decl_shape(*decl);
    const sym::Range* bound = base_ctx_.bound(decl->symbol);
    h.mix(bound ? bound->to_string(symbols_) : std::string("-"));
  }
}

void Analyzer::compute_content_key(const ast::FuncDecl& function,
                                   const ipa::CallGraph& graph) {
  if (content_keys_.count(&function)) return;
  const ipa::CallGraph::Node* node = graph.node(&function);
  if (node && node->recursive) {
    // Recursive functions are keyed as a whole SCC: a caller's key must
    // reflect the SCC's *content* (its may-write sets feed the caller's
    // summary), and a per-member marker could not do that.
    compute_scc_content_keys(function, graph);
    return;
  }
  ipa::ContentHasher h;
  h.mix("sspar-summary-v1");
  mix_function_identity(function, h);
  // Callee content keys: the summary folds callee effects in, so the address
  // must cover the transitive closure. Bottom-up order (with SCCs keyed as a
  // group) keys every defined callee before its callers; the fallback marker
  // only covers callees outside the traversal.
  if (node) {
    for (const ast::FuncDecl* callee : node->callees) {
      auto it = content_keys_.find(callee);
      if (it != content_keys_.end()) {
        h.mix(it->second.first);
        h.mix(it->second.second);
      } else {
        h.mix("unkeyed-callee");
        h.mix(callee->name);
      }
    }
    if (node->has_unknown_callee) h.mix("unknown-callee");
  }
  ipa::CacheKey key = h.key();
  content_keys_[&function] = {key.hi, key.lo};
}

void Analyzer::compute_scc_content_keys(const ast::FuncDecl& member,
                                        const ipa::CallGraph& graph) {
  const ipa::CallGraph::Node* node = graph.node(&member);
  if (!node) return;
  std::vector<const ast::FuncDecl*> members = graph.scc_members(node->scc);
  if (members.empty()) members.push_back(&member);
  // Hash in name order so the combined key does not depend on discovery
  // order (names are unique per program).
  std::sort(members.begin(), members.end(),
            [](const ast::FuncDecl* a, const ast::FuncDecl* b) { return a->name < b->name; });
  ipa::ContentHasher h;
  h.mix("sspar-scc-v1");
  for (const ast::FuncDecl* f : members) {
    mix_function_identity(*f, h);
    // Recursive summaries carry a failure location (W030x provenance); the
    // key must pin it so a cross-program hit never mis-attributes lines.
    h.mix(static_cast<uint64_t>(f->location.line));
    h.mix(static_cast<uint64_t>(f->location.column));
    const ipa::CallGraph::Node* n = graph.node(f);
    if (!n) continue;
    for (const ast::FuncDecl* callee : n->callees) {
      if (const ipa::CallGraph::Node* cn = graph.node(callee);
          cn && cn->scc == node->scc) {
        h.mix("scc-sibling");
        h.mix(callee->name);
        continue;
      }
      auto it = content_keys_.find(callee);  // bottom-up: externals keyed first
      if (it != content_keys_.end()) {
        h.mix(it->second.first);
        h.mix(it->second.second);
      } else {
        h.mix("unkeyed-callee");
        h.mix(callee->name);
      }
    }
    if (n->has_unknown_callee) h.mix("unknown-callee");
  }
  ipa::CacheKey combined = h.key();
  for (const ast::FuncDecl* f : members) {
    ipa::ContentHasher m;
    m.mix("sspar-scc-member-v1");
    m.mix(combined.hi);
    m.mix(combined.lo);
    m.mix(f->name);
    ipa::CacheKey key = m.key();
    content_keys_[f] = {key.hi, key.lo};
    scc_functions_.insert(f);
  }
}

const ipa::FunctionSummary* Analyzer::obtain_summary(const ast::FuncDecl* function,
                                                     const FactDB* entry_facts,
                                                     uint64_t fingerprint,
                                                     const ipa::CallGraph* graph) {
  if (const ipa::FunctionSummary* cached =
          summaries_->lookup(function, options_, fingerprint)) {
    return cached;
  }
  // Session miss: consult the cross-program cache before computing.
  ipa::CrossProgramCache* shared = summaries_->shared();
  ipa::CacheKey key;
  if (shared) {
    auto it = content_keys_.find(function);
    if (it != content_keys_.end()) {
      ipa::ContentHasher h;
      h.mix(it->second.first);
      h.mix(it->second.second);
      h.mix(static_cast<uint64_t>(ipa::SummaryDB::encode(options_)));
      h.mix(fingerprint);
      if (entry_facts) {
        // The fingerprint covers the facts' text; proofs made under them may
        // additionally depend on assumptions about scalars those facts
        // mention (e.g. a size symbol bounding another helper's values), so
        // fold those bounds into the address too.
        std::set<sym::SymbolId> mentioned = ipa::collect_fact_scalar_symbols(*entry_facts);
        std::vector<std::string> names;
        names.reserve(mentioned.size());
        for (sym::SymbolId id : mentioned) names.push_back(symbols_.name(id));
        std::sort(names.begin(), names.end());
        for (const std::string& name : names) {
          h.mix(name);
          const Range* bound = base_ctx_.bound(symbols_.lookup(name));
          h.mix(bound ? bound->to_string(symbols_) : std::string("-"));
        }
      }
      key = h.key();
      bool from_store = false;
      if (auto portable = shared->find(key, &from_store)) {
        if (auto summary = ipa::rehydrate(*portable, program_, symbols_)) {
          if (scc_functions_.count(function)) summaries_->note_scc_summary();
          return &summaries_->insert(function, options_, fingerprint,
                                     std::move(*summary), /*from_shared=*/true,
                                     from_store);
        }
      }
      summaries_->note_shared_miss();
    }
  }
  ipa::FunctionSummary computed;
  if (fingerprint == 0) {
    computed = summarize_function(*function, *graph);
  } else {
    // context_summary guarantees an analyzable base exists.
    const ipa::FunctionSummary* base = summaries_->find(function, options_);
    computed = resummarize_with_context(*base, *entry_facts);
  }
  if (fingerprint == 0 && scc_functions_.count(function)) summaries_->note_scc_summary();
  const ipa::FunctionSummary& stored =
      summaries_->insert(function, options_, fingerprint, std::move(computed));
  // Analyzable summaries are always publishable; unanalyzable ones only for
  // SCC members, whose combined key pins the failure location (see
  // compute_scc_content_keys).
  const bool publishable = stored.analyzable || scc_functions_.count(function);
  if (shared && key && publishable) {
    if (auto portable = ipa::to_portable(stored, program_, symbols_,
                                         /*allow_unanalyzable=*/true)) {
      shared->insert(key, std::move(*portable));
    }
  }
  return &stored;
}

const ipa::FunctionSummary* Analyzer::context_summary(
    const ast::Call& call, const FactDB& caller_facts,
    const std::set<sym::SymbolId>& stale_arrays,
    const std::function<bool(sym::SymbolId)>& scalar_unchanged) {
  const ipa::FunctionSummary* base = call_summary(call);
  if (!base || !base->analyzable || caller_facts.all().empty()) return base;
  FactDB projected =
      project_entry_facts(*base, caller_facts, stale_arrays, scalar_unchanged);
  if (projected.all().empty()) return base;
  uint64_t fingerprint = ipa::fingerprint_facts(projected, symbols_);
  const ipa::FunctionSummary* specialized =
      obtain_summary(call.decl, &projected, fingerprint, /*graph=*/nullptr);
  // Facts never make a body unanalyzable, but degrade soundly regardless.
  return (specialized && specialized->analyzable) ? specialized : base;
}

FactDB Analyzer::project_entry_facts(
    const ipa::FunctionSummary& base, const FactDB& caller_facts,
    const std::set<sym::SymbolId>& stale_arrays,
    const std::function<bool(sym::SymbolId)>& scalar_unchanged) const {
  // Arrays whose entry content the callee observes (transitively: reads of
  // analyzable callees are folded into `base.reads`).
  std::set<sym::SymbolId> read_arrays;
  for (const ArrayWriteEffect& r : base.reads) {
    if (r.array && is_global(r.array)) read_arrays.insert(r.array->symbol);
  }
  FactDB projected;
  if (read_arrays.empty()) return projected;
  auto visible = [&](const sym::ExprPtr& e) { return entry_visible(e, scalar_unchanged); };
  auto visible_range = [&](const sym::Range& r) {
    return (!r.lo() || visible(r.lo())) && (!r.hi() || visible(r.hi()));
  };
  for (const auto& [array, facts] : caller_facts.all()) {
    if (!read_arrays.count(array) || stale_arrays.count(array)) continue;
    ArrayFacts kept;
    for (const ValueFact& f : facts->values) {
      if (visible(f.lo) && visible(f.hi) && visible_range(f.value)) {
        kept.values.push_back(f);
      }
    }
    for (const StepFact& f : facts->steps) {
      if (visible(f.lo) && visible(f.hi) && visible_range(f.step)) {
        kept.steps.push_back(f);
      }
    }
    for (const InjectiveFact& f : facts->injectives) {
      if (visible(f.lo) && visible(f.hi)) kept.injectives.push_back(f);
    }
    for (const IdentityFact& f : facts->identities) {
      if (visible(f.lo) && visible(f.hi)) kept.identities.push_back(f);
    }
    if (!kept.empty()) projected.restore(array, std::move(kept));
  }
  return projected;
}

bool Analyzer::entry_visible(
    const sym::ExprPtr& e,
    const std::function<bool(sym::SymbolId)>& scalar_unchanged) const {
  if (!e) return false;
  return !sym::any_of(e, [&](const sym::Expr& n) {
    switch (n.kind) {
      case sym::ExprKind::IterStart:
      case sym::ExprKind::LoopStart:
      case sym::ExprKind::Bottom:
        return true;  // caller-flow state: meaningless at the callee's entry
      case sym::ExprKind::Sym:
        // Facts are in caller-entry terms; the callee reads the same symbol
        // as its call-time value. Only scalars provably unmodified since
        // caller entry mean the same thing in both frames.
        return global_by_symbol_.count(n.symbol) == 0 || !scalar_unchanged(n.symbol);
      case sym::ExprKind::ArrayElem:
        // Array contents may have changed between the fact's derivation and
        // the call; without element versioning (ROADMAP) the two frames
        // cannot be reconciled.
        return true;
      default:
        return false;
    }
  });
}

ipa::FunctionSummary Analyzer::resummarize_with_context(const ipa::FunctionSummary& base,
                                                        const FactDB& entry_facts) {
  ipa::FunctionSummary summary = base;  // gates + conservative sets carry over
  summary.scalar_finals.clear();
  summary.writes.clear();
  summary.reads.clear();
  summary.end_facts = FactDB{};
  summary.return_value.reset();
  summary.analyzable = false;
  summary.failure.clear();
  summarize_effects(*base.function, summary, &entry_facts);
  return summary;
}

ipa::FunctionSummary Analyzer::summarize_function(const ast::FuncDecl& function,
                                                  const ipa::CallGraph& graph) {
  ipa::FunctionSummary summary;
  summary.function = &function;

  // --- Conservative may-write sets (valid regardless of analyzability) ------
  for (const ast::VarDecl* decl : written_scalars(*function.body)) {
    if (!is_global(decl)) continue;
    summary.may_write_scalars.insert(decl);
    if (definitely_assigns(*function.body, decl)) {
      summary.definite_scalar_writes.insert(decl);
    }
  }
  for (const ast::VarDecl* arr : written_arrays(*function.body)) {
    if (is_global(arr)) {
      summary.may_write_arrays.insert(arr);
    } else if (arr->is_param) {
      summary.writes_array_params = true;
    }
  }
  const ipa::CallGraph::Node* node = graph.node(&function);
  if (node) {
    if (node->has_unknown_callee) summary.opaque = true;
    for (const ast::FuncDecl* callee : node->callees) {
      if (callee == &function) continue;
      const ipa::FunctionSummary* cs = summaries_->find(callee, options_);
      if (!cs) {
        // SCC sibling not summarized yet (mutual recursion): opaque.
        summary.opaque = true;
        continue;
      }
      summary.opaque = summary.opaque || cs->opaque;
      summary.may_write_scalars.insert(cs->may_write_scalars.begin(),
                                       cs->may_write_scalars.end());
      summary.may_write_arrays.insert(cs->may_write_arrays.begin(),
                                      cs->may_write_arrays.end());
    }
    // Arrays we pass to callees that store through their array parameters.
    for (const ast::Call* call : node->call_sites) {
      if (!call->decl) continue;
      const ipa::FunctionSummary* cs =
          call->decl == &function ? nullptr : summaries_->find(call->decl, options_);
      const bool callee_writes_params = !cs || cs->opaque || cs->writes_array_params;
      if (!callee_writes_params) continue;
      for (size_t i = 0; i < call->args.size() && i < call->decl->params.size(); ++i) {
        if (!call->decl->params[i]->is_array()) continue;
        if (const auto* var = call->args[i]->as<ast::VarRef>()) {
          if (!var->decl || !var->decl->is_array()) continue;
          if (is_global(var->decl)) {
            summary.may_write_arrays.insert(var->decl);
          } else if (var->decl->is_param) {
            summary.writes_array_params = true;
          }
        }
      }
    }
  }
  // Exposed global scalar reads, position-sensitive across statements and
  // call sites (reads of callees surface at their call position, definite
  // callee writes count as assignments): see ExposedScalarReads above.
  std::function<bool(const ast::VarDecl*)> global_scalar = [this](const ast::VarDecl* d) {
    return is_global(d);
  };
  std::function<const ipa::FunctionSummary*(const ast::Call&)> summary_of =
      [&](const ast::Call& call) -> const ipa::FunctionSummary* {
    if (!call.decl || call.decl == &function) return nullptr;
    return summaries_->find(call.decl, options_);
  };
  summary.exposed_scalar_reads =
      ExposedScalarReads(global_scalar, summary_of).run(function);

  // --- Analyzability gates ---------------------------------------------------
  auto fail = [&summary](support::SourceLocation loc, std::string why) {
    if (summary.analyzable || summary.failure.empty()) {
      summary.failure = std::move(why);
      summary.failure_location = loc;
    }
    summary.analyzable = false;
  };
  if (graph.is_recursive(&function)) {
    fail(function.location, "recursive");
    return summary;
  }
  if (node && node->has_unknown_callee) {
    std::string name;
    for (const ast::Call* call : node->call_sites) {
      if (!call->decl) {
        name = call->callee;
        break;
      }
    }
    fail(function.location, support::format("calls undefined function '%s'", name.c_str()));
    return summary;
  }

  summarize_effects(function, summary, /*entry_facts=*/nullptr);
  return summary;
}

void Analyzer::summarize_effects(const ast::FuncDecl& function,
                                 ipa::FunctionSummary& summary,
                                 const FactDB* entry_facts) {
  auto fail = [&summary](support::SourceLocation loc, std::string why) {
    if (summary.analyzable || summary.failure.empty()) {
      summary.failure = std::move(why);
      summary.failure_location = loc;
    }
    summary.analyzable = false;
  };

  // --- Effect computation: flow the body in function-entry terms -------------
  // Nested context-sensitive re-summaries re-enter this function mid-walk;
  // save/restore instead of toggling.
  const bool saved_mode = summary_mode_;
  summary_mode_ = true;
  ScalarEnv env;  // empty: every scalar reads as its own symbol
  // Base summaries flow from an empty fact database (context-insensitive);
  // context-sensitive re-summaries seed it with the caller's projected facts.
  FactDB facts;
  if (entry_facts) facts = *entry_facts;
  std::set<sym::SymbolId> local_arrays;
  bool ok = true;

  auto append_effects = [&](const std::vector<ArrayWriteEffect>& source,
                            std::vector<ArrayWriteEffect>& sink) {
    for (const ArrayWriteEffect& e : source) {
      if (!e.array) continue;
      // Effects on function-local arrays are invisible to callers.
      if (!is_global(e.array) && !e.array->is_param) continue;
      ArrayWriteEffect out = e;
      // Provenance is re-attributed to THIS function at the outer call site.
      out.summary_origin = nullptr;
      // A post-inc subscript through a by-value parameter or local does not
      // survive the call boundary.
      if (out.post_inc_subscript && !is_global(out.post_inc_subscript)) {
        out.post_inc_subscript = nullptr;
      }
      sink.push_back(std::move(out));
    }
  };

  std::function<void(const ast::Stmt&)> walk = [&](const ast::Stmt& stmt) {
    if (!ok) return;
    switch (stmt.kind) {
      case ast::StmtNodeKind::Empty:
        return;
      case ast::StmtNodeKind::Compound:
        for (const auto& s : stmt.as<ast::Compound>()->body) walk(*s);
        return;
      case ast::StmtNodeKind::For: {
        const auto& loop = *stmt.as<ast::For>();
        LoopEffect effect = analyze_loop(loop, env, facts);
        if (!effect.analyzable) {
          ok = false;
          fail(loop.location, "contains an unanalyzable loop");
          return;
        }
        apply_effect(loop, effect, env, facts);
        append_effects(effect.writes, summary.writes);
        append_effects(effect.reads, summary.reads);
        return;
      }
      case ast::StmtNodeKind::If:
      case ast::StmtNodeKind::ExprStmt:
      case ast::StmtNodeKind::DeclStmt: {
        BodyInterp interp(*this, stmt, /*index=*/nullptr, env, facts);
        if (!interp.run()) {
          ok = false;
          if (interp.failure) {
            fail(interp.failure->location, interp.failure->message);
          } else {
            fail(stmt.location, "contains an unanalyzable statement");
          }
          return;
        }
        for (const ast::VarDecl* local : interp.body_locals) {
          if (local->is_array()) local_arrays.insert(local->symbol);
        }
        apply_straight_line(interp, env, facts, /*track_provenance=*/false);
        append_effects(interp.writes, summary.writes);
        append_effects(interp.reads, summary.reads);
        return;
      }
      case ast::StmtNodeKind::Return:
        // Only a trailing return is modeled; the caller peels it off before
        // walking, so reaching one here means early control flow.
        ok = false;
        fail(stmt.location, "early return");
        return;
      case ast::StmtNodeKind::While:
        ok = false;
        fail(stmt.location, "contains a while loop");
        return;
      case ast::StmtNodeKind::Break:
      case ast::StmtNodeKind::Continue:
        ok = false;
        fail(stmt.location, "break/continue outside an analyzable loop");
        return;
    }
  };

  const auto& body = function.body->body;
  const ast::Return* trailing_return = nullptr;
  size_t count = body.size();
  if (!body.empty()) {
    if (const auto* ret = body.back()->as<ast::Return>()) {
      trailing_return = ret;
      --count;
    }
  }
  for (size_t i = 0; i < count && ok; ++i) walk(*body[i]);
  summary_mode_ = saved_mode;

  if (!ok) return;

  // --- Trailing return (before finals: it may carry side effects) ------------
  if (trailing_return && trailing_return->value) {
    // Evaluate the return expression through a BodyInterp so its effects are
    // summarized like any statement's: array reads feed the caller's
    // dependence test, side effects (x++, nested summarizable calls) update
    // the finals, and call values resolve through cached summaries.
    bool calls_ok = true;
    ast::walk_subexprs(trailing_return->value.get(), [&](const ast::Expr* e) {
      const auto* call = e->as<ast::Call>();
      if (!call || !calls_ok) return;
      if (auto vetoed = BodyInterp::vet_call(*this, *call)) {
        calls_ok = false;
        fail(vetoed->location, vetoed->message);
      }
    });
    if (!calls_ok) {
      summary.analyzable = false;
      return;
    }
    ast::Empty return_site;
    BodyInterp interp(*this, return_site, /*index=*/nullptr, env, facts);
    Range returned = interp.eval_expr(*trailing_return->value);
    apply_straight_line(interp, env, facts, /*track_provenance=*/false);
    append_effects(interp.writes, summary.writes);
    append_effects(interp.reads, summary.reads);
    if (function.return_type == ast::TypeKind::Int) {
      // ArrayElem atoms denote call-entry content at the call site; a
      // returned element of an array this function wrote would be misread.
      std::set<sym::SymbolId> written_arrays_syms;
      for (const auto& w : summary.writes) {
        if (w.array) written_arrays_syms.insert(w.array->symbol);
      }
      auto stale = [&](const sym::ExprPtr& e) {
        return e && sym::any_of(e, [&](const sym::Expr& n) {
                 return n.kind == sym::ExprKind::ArrayElem &&
                        written_arrays_syms.count(n.symbol) > 0;
               });
      };
      if (!stale(returned.lo()) && !stale(returned.hi())) summary.return_value = returned;
    }
  }

  // --- Finalize --------------------------------------------------------------
  for (const ast::VarDecl* decl : summary.may_write_scalars) {
    if (!decl->is_integer_scalar()) continue;
    const Range* final = env.find(decl);
    summary.scalar_finals[decl] = final ? *final : Range::bottom();
  }
  for (sym::SymbolId local : local_arrays) facts.kill_all(local);
  summary.end_facts = std::move(facts);
  summary.analyzable = true;
  summary.failure.clear();
}

const LoopSnapshot* Analyzer::snapshot(const ast::For* loop) const {
  auto it = loop_keys_.find(loop);
  if (it == loop_keys_.end()) return nullptr;
  auto found = snapshots_.find(it->second);
  return found == snapshots_.end() ? nullptr : &found->second;
}

const FactDB* Analyzer::facts_at_end(const ast::FuncDecl* function) const {
  auto it = end_facts_.find(function);
  return it == end_facts_.end() ? nullptr : &it->second;
}

}  // namespace sspar::core
