#include "core/analyzer.h"

#include "core/body_interp.h"

namespace sspar::core {

using sym::ExprPtr;
using sym::Range;

// ---------------------------------------------------------------------------
// eval_pure
// ---------------------------------------------------------------------------

Range eval_pure(const ast::Expr& expr, const ScalarEnv& env,
                const std::set<const ast::VarDecl*>* lambda_vars) {
  switch (expr.kind) {
    case ast::ExprNodeKind::IntLit:
      return Range::exact(sym::make_const(expr.as<ast::IntLit>()->value));
    case ast::ExprNodeKind::VarRef: {
      const auto* decl = expr.as<ast::VarRef>()->decl;
      if (!decl || decl->is_array() || decl->elem_type != ast::TypeKind::Int) {
        return Range::bottom();
      }
      if (lambda_vars && lambda_vars->count(decl)) {
        return Range::exact(sym::make_iter_start(decl->symbol));
      }
      if (const Range* r = env.find(decl)) return *r;
      return Range::exact(sym::make_sym(decl->symbol));
    }
    case ast::ExprNodeKind::ArrayRef: {
      const auto* a = expr.as<ast::ArrayRef>();
      auto subs = a->subscripts();
      const ast::VarRef* root = a->root();
      if (!root || !root->decl || subs.size() != 1 ||
          root->decl->elem_type != ast::TypeKind::Int) {
        return Range::bottom();
      }
      Range idx = eval_pure(*subs[0], env, lambda_vars);
      if (!idx.is_exact()) return Range::bottom();
      return Range::exact(sym::make_array_elem(root->decl->symbol, idx.exact_value()));
    }
    case ast::ExprNodeKind::Binary: {
      const auto* b = expr.as<ast::Binary>();
      Range lhs = eval_pure(*b->lhs, env, lambda_vars);
      Range rhs = eval_pure(*b->rhs, env, lambda_vars);
      switch (b->op) {
        case ast::BinaryOp::Add:
          return range_add(lhs, rhs);
        case ast::BinaryOp::Sub:
          return range_sub(lhs, rhs);
        case ast::BinaryOp::Mul:
          if (lhs.is_exact() && rhs.is_exact()) {
            return Range::exact(sym::mul(lhs.exact_value(), rhs.exact_value()));
          }
          if (rhs.is_exact()) {
            if (auto c = sym::const_value(rhs.exact_value())) return range_mul_const(lhs, *c);
          }
          if (lhs.is_exact()) {
            if (auto c = sym::const_value(lhs.exact_value())) return range_mul_const(rhs, *c);
          }
          return Range::bottom();
        case ast::BinaryOp::Div:
          if (lhs.is_exact() && rhs.is_exact()) {
            return Range::exact(sym::div_floor(lhs.exact_value(), rhs.exact_value()));
          }
          return Range::bottom();
        case ast::BinaryOp::Rem:
          if (lhs.is_exact() && rhs.is_exact()) {
            return Range::exact(sym::mod(lhs.exact_value(), rhs.exact_value()));
          }
          return Range::bottom();
        default:
          return Range::of_consts(0, 1);
      }
    }
    case ast::ExprNodeKind::Unary: {
      const auto* u = expr.as<ast::Unary>();
      if (u->op == ast::UnaryOp::Neg) {
        return range_negate(eval_pure(*u->operand, env, lambda_vars));
      }
      return Range::of_consts(0, 1);
    }
    case ast::ExprNodeKind::Conditional: {
      const auto* c = expr.as<ast::Conditional>();
      return range_join(eval_pure(*c->then_expr, env, lambda_vars),
                        eval_pure(*c->else_expr, env, lambda_vars));
    }
    default:
      return Range::bottom();  // assignments / increments / calls are impure
  }
}

// ---------------------------------------------------------------------------
// Analyzer
// ---------------------------------------------------------------------------

Analyzer::Analyzer(const ast::Program& program, sym::SymbolTable& symbols,
                   AnalyzerOptions options)
    : program_(program), symbols_(symbols), options_(options) {}

void Analyzer::assume(const ast::VarDecl* decl, Range range) {
  base_ctx_.assume(decl->symbol, std::move(range));
}

void Analyzer::assume_ge(const ast::VarDecl* decl, int64_t lo) {
  base_ctx_.assume_ge(decl->symbol, lo);
}

void Analyzer::run() {
  for (const auto& function : program_.functions) {
    analyze_function(*function);
  }
}

void Analyzer::analyze_function(const ast::FuncDecl& function) {
  ScalarEnv env;
  // Globals with constant initializers have a known entry value; everything
  // else starts as its own symbol.
  for (const auto& g : program_.globals) {
    if (g->is_array() || g->elem_type != ast::TypeKind::Int) continue;
    if (g->init) {
      if (const auto* lit = g->init->as<ast::IntLit>()) {
        env.set(g.get(), Range::exact(sym::make_const(lit->value)));
      }
    }
  }
  FactDB facts;
  flow_stmt(*function.body, env, facts);
  end_facts_[&function] = std::move(facts);
}

void Analyzer::flow_stmt(const ast::Stmt& stmt, ScalarEnv& env, FactDB& facts) {
  switch (stmt.kind) {
    case ast::StmtNodeKind::Compound:
      for (const auto& s : stmt.as<ast::Compound>()->body) flow_stmt(*s, env, facts);
      return;
    case ast::StmtNodeKind::For: {
      const auto& loop = *stmt.as<ast::For>();
      // Snapshot the state at loop entry for the parallelizer.
      LoopSnapshot snap;
      snap.loop = &loop;
      snap.info = recognize_loop(loop);
      snap.facts_at_entry = facts;
      snap.scalars_at_entry = env;
      int key = next_key_++;
      loop_keys_[&loop] = key;
      snapshots_[key] = std::move(snap);
      // Also snapshot nested loops (entry state approximated by the outer
      // loop's entry state; sound for facts because inner snapshots are only
      // used for reporting and their own dependence tests re-derive bounds).
      for (const ast::For* inner : ast::collect_loops(loop.body.get())) {
        if (!loop_keys_.count(inner)) {
          LoopSnapshot inner_snap;
          inner_snap.loop = inner;
          inner_snap.info = recognize_loop(*inner);
          inner_snap.facts_at_entry = facts;
          inner_snap.scalars_at_entry = env;
          int inner_key = next_key_++;
          loop_keys_[inner] = inner_key;
          snapshots_[inner_key] = std::move(inner_snap);
        }
      }
      LoopEffect effect = analyze_loop(loop, env, facts);
      apply_effect(loop, effect, env, facts);
      return;
    }
    case ast::StmtNodeKind::While: {
      // Conservative: havoc everything the while loop writes.
      const auto& w = *stmt.as<ast::While>();
      for (const ast::VarDecl* decl : written_scalars(*w.body)) {
        env.set(decl, Range::bottom());
      }
      for (const ast::VarDecl* arr : written_arrays(*w.body)) {
        facts.kill_all(arr->symbol);
      }
      return;
    }
    case ast::StmtNodeKind::If:
    case ast::StmtNodeKind::ExprStmt:
    case ast::StmtNodeKind::DeclStmt: {
      // Straight-line interpretation (single-trip "loop").
      BodyInterp interp(*this, stmt, /*index=*/nullptr, env, facts);
      if (!interp.run()) {
        for (const ast::VarDecl* decl : written_scalars(stmt)) env.set(decl, Range::bottom());
        for (const ast::VarDecl* arr : written_arrays(stmt)) facts.kill_all(arr->symbol);
        return;
      }
      for (const auto& [decl, value] : interp.env.values) env.set(decl, value);
      for (const auto& w : interp.writes) {
        if (!w.array) continue;
        if (w.index_range.is_bottom() || w.dims != 1) {
          facts.kill_all(w.array->symbol);
        } else {
          facts.kill_overlapping(w.array->symbol, w.index_range.lo(), w.index_range.hi(),
                                 base_ctx_);
        }
        // Single unconditional write with known value: point fact
        // (e.g. rowptr[0] = 0 in Fig. 9).
        if (!w.conditional && w.index && !w.value.is_bottom() && w.dims == 1) {
          facts.add_value(w.array->symbol, ValueFact{w.index, w.index, w.value});
        }
      }
      return;
    }
    default:
      return;  // Break/Continue/Return/Empty at top level: no effect to model
  }
}

LoopEffect Analyzer::analyze_loop(const ast::For& loop, const ScalarEnv& entry_env,
                                  const FactDB& entry_facts) {
  auto info = recognize_loop(loop);
  if (!info) {
    LoopEffect effect;
    effect.analyzable = false;
    return effect;
  }
  BodyInterp body(*this, *loop.body, info->index, entry_env, entry_facts);
  if (!body.run()) {
    LoopEffect effect;
    effect.analyzable = false;
    return effect;
  }
  return aggregate(loop, *info, entry_env, entry_facts, body);
}

void Analyzer::apply_effect(const ast::For& loop, const LoopEffect& effect, ScalarEnv& env,
                            FactDB& facts) {
  if (!effect.analyzable) {
    // Havoc everything the loop could touch.
    for (const ast::VarDecl* decl : written_scalars(loop)) env.set(decl, Range::bottom());
    if (auto info = recognize_loop(loop)) env.set(info->index, Range::bottom());
    for (const ast::VarDecl* arr : written_arrays(loop)) facts.kill_all(arr->symbol);
    return;
  }
  for (const auto& [decl, final] : effect.scalar_finals) env.set(decl, final);
  // Kills first...
  for (const auto& w : effect.writes) {
    if (!w.array) continue;
    if (w.dims != 1 || w.index_range.is_bottom() ||
        (!w.index_range.lo_bounded() && !w.index_range.hi_bounded())) {
      facts.kill_all(w.array->symbol);
    } else {
      facts.kill_overlapping(w.array->symbol, w.index_range.lo(), w.index_range.hi(),
                             base_ctx_);
    }
  }
  // ...then the produced facts.
  for (const auto& f : effect.facts) {
    if (f.identity) facts.add_identity(f.array, *f.identity);
    if (f.value) facts.add_value(f.array, *f.value);
    if (f.step) facts.add_step(f.array, *f.step);
    if (f.injective) facts.add_injective(f.array, *f.injective);
  }
}

const LoopSnapshot* Analyzer::snapshot(const ast::For* loop) const {
  auto it = loop_keys_.find(loop);
  if (it == loop_keys_.end()) return nullptr;
  auto found = snapshots_.find(it->second);
  return found == snapshots_.end() ? nullptr : &found->second;
}

const FactDB* Analyzer::facts_at_end(const ast::FuncDecl* function) const {
  auto it = end_facts_.find(function);
  return it == end_facts_.end() ? nullptr : &it->second;
}

}  // namespace sspar::core
