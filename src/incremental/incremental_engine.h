// Incremental re-analysis engine: dirty-cone invalidation over the
// content-addressed summary machinery (ROADMAP item 2).
//
// An IncrementalEngine owns persistent analysis state across a sequence of
// source versions and exposes update(new_source) -> UpdateResult. Each
// update:
//
//   1. re-parses the new source and re-keys EVERY function with the PR 5/7
//      cross-program content keys (printed body + signature, referenced
//      globals + assumption bounds, transitive callee keys, SCCs keyed as a
//      group with member locations folded in),
//   2. computes the dirty cone: functions whose key changed or that are new.
//      Transitive callers are dirty automatically — a caller's key folds its
//      callees' keys in, so editing a helper flips every caller up the call
//      graph. Context-sensitive summary slots are invalidated the same way:
//      their cache address includes the entry-fact fingerprint projected
//      from the caller, so a dirty caller stops hitting the old slot even
//      when the callee body is unchanged,
//   3. additionally marks functions whose content key is unchanged but whose
//      source LOCATIONS shifted ("relocated") — verdicts and W03xx messages
//      embed line numbers, so those re-run too (their summaries still reuse),
//   4. re-summarizes/re-analyzes only dirty + relocated functions; every
//      clean function reuses its cached summaries (via the engine's
//      persistent ipa::CrossProgramCache), loop verdicts, and diagnostics,
//   5. re-annotates and re-emits, and reports diagnostics as a delta
//      (added/removed/unchanged) against the previous update in canonical
//      (line, column, code) order.
//
// Correctness contract: for ANY update sequence, the final verdicts,
// annotated output, and canonical diagnostics are byte-identical to a cold
// full analysis of the final source (modulo timings). The engine is
// single-threaded; a server wraps one engine per session.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/analyzer.h"
#include "core/parallelizer.h"
#include "incremental/update_stats.h"
#include "ipa/cross_cache.h"
#include "pipeline/assumptions.h"
#include "support/diagnostics.h"

namespace sspar::store {
class SummaryStore;
}

namespace sspar::incremental {

struct EngineOptions {
  core::AnalyzerOptions analyzer;
  pipeline::Assumptions assumptions;
  // Optional persistent store: preloaded into the engine's cross-program
  // cache at construction (store-preloaded summaries then survive updates
  // untouched), written back by flush_store(). Not owned; must outlive the
  // engine.
  store::SummaryStore* store = nullptr;
};

// Result of one update. `verdicts` point into the engine's current AST and
// stay valid until the next update() or engine destruction.
struct UpdateResult {
  bool ok = false;
  std::string error;  // frontend diagnostics text when !ok
  std::vector<core::LoopVerdict> verdicts;  // program order (pre-order per function)
  std::string output;                        // annotated source
  int annotated = 0;
  std::vector<support::Diagnostic> diagnostics;  // canonical order, deduplicated
  DiagDelta delta;  // vs. the previous successful update
  UpdateStats stats;
};

class IncrementalEngine {
 public:
  explicit IncrementalEngine(EngineOptions options = {});
  ~IncrementalEngine();

  IncrementalEngine(const IncrementalEngine&) = delete;
  IncrementalEngine& operator=(const IncrementalEngine&) = delete;

  // Applies one source version. A failed parse leaves the engine's
  // incremental state (function keys, cached verdicts and diagnostics, the
  // summary cache) untouched — the session survives a syntax error mid-edit
  // and the next successful update is still incremental — but the previous
  // AST snapshot is released, so program() returns null until then.
  UpdateResult update(const std::string& source);

  const EngineTotals& totals() const { return totals_; }
  const ipa::CrossProgramCache& cache() const { return cache_; }
  // Number of successful updates applied.
  int64_t updates() const { return totals_.updates; }

  // Writes the cross-program cache back to options_.store (absorb + commit);
  // no-op without a store.
  void flush_store();

  // The current AST snapshot (null before the first successful update).
  const ast::Program* program() const;

 private:
  // A cached verdict with every AST pointer replaced by rebind info, so it
  // survives re-parses: the loop by pre-order ordinal, each private variable
  // by global name or by ordinal in the function's declaration order
  // (params, then DeclStmts in pre-order). A clean function's printed body
  // is identical, so both enumerations are stable.
  struct PrivateRef {
    bool global = false;
    std::string name;     // global name (global == true)
    size_t ordinal = 0;   // local declaration ordinal (global == false)
  };
  struct CachedVerdict {
    core::LoopVerdict verdict;  // loop = nullptr, privates empty
    size_t loop_ordinal = 0;
    std::vector<PrivateRef> privates;
  };
  // Everything remembered about one function between updates. Keyed by
  // function name; no pointers into any AST.
  struct FuncState {
    std::pair<uint64_t, uint64_t> content_key;
    // Hash of every node kind + source location in the function (plus the
    // signature locations): unchanged layout means every cached line number
    // is still accurate.
    std::pair<uint64_t, uint64_t> layout;
    uint32_t first_line = 0;
    // Immutable once built; clean functions share one vector across updates
    // instead of deep-copying hundreds of verdicts per keystroke.
    std::shared_ptr<const std::vector<CachedVerdict>> verdicts;
    // Diagnostics attributed to this function by source-line span.
    std::vector<support::Diagnostic> diags;
  };
  struct ProgramState;  // arena + summaries + parse + analyzer (in member order)

  EngineOptions options_;
  // Persistent content-addressed summary cache: survives across updates, so
  // clean functions' summaries rehydrate instead of recomputing.
  ipa::CrossProgramCache cache_;
  std::map<std::string, FuncState> func_states_;
  std::vector<support::Diagnostic> last_diags_;
  std::unique_ptr<ProgramState> state_;  // last successful update's program
  EngineTotals totals_;
};

}  // namespace sspar::incremental
