// Accounting types for the incremental re-analysis engine.
//
// UpdateStats mirrors the BatchStats discipline: every field inside
// operator== is deterministic for a fixed update sequence (at any thread
// count); wall-clock time lives outside the equality so reports stay
// byte-comparable modulo timings. EngineTotals accumulates across updates —
// daemon-lifetime counters that are NOT part of any per-update equality,
// exactly like the server's cumulative shed/timed_out totals.
#pragma once

#include <cstdint>
#include <vector>

#include "support/diagnostics.h"
#include "support/json.h"

namespace sspar::incremental {

// Per-update counters. `dirty` counts functions whose content key changed
// (or that are new); `reanalyzed` additionally includes relocated functions
// (same key, shifted source locations — their verdicts embed line numbers,
// so they re-run even though the analysis result is semantically unchanged).
struct UpdateStats {
  int functions_total = 0;
  int dirty = 0;
  int reanalyzed = 0;
  // Summaries rehydrated from the engine's persistent cross-program cache
  // instead of being recomputed (SummaryDB shared hits of this update).
  int reused_summaries = 0;
  // Loop verdicts rebound from the previous snapshot without re-running the
  // parallelizer.
  int reused_verdicts = 0;
  double update_ms = 0.0;  // wall clock; excluded from operator==

  bool operator==(const UpdateStats& o) const {
    return functions_total == o.functions_total && dirty == o.dirty &&
           reanalyzed == o.reanalyzed && reused_summaries == o.reused_summaries &&
           reused_verdicts == o.reused_verdicts;
  }
};

// Diagnostics delta of one update, relative to the previous update's
// canonical diagnostic list (see support::canonicalize_diagnostics).
struct DiagDelta {
  std::vector<support::Diagnostic> added;
  std::vector<support::Diagnostic> removed;
  int unchanged = 0;
};

// Cumulative engine totals across every update served.
struct EngineTotals {
  int64_t updates = 0;
  int64_t functions_total = 0;
  int64_t dirty = 0;
  int64_t reanalyzed = 0;
  int64_t reused_summaries = 0;
  int64_t reused_verdicts = 0;

  void add(const UpdateStats& stats);
  // Fraction of function instances that were dirty across all updates
  // (0.0 when no update has run yet).
  double dirty_cone_ratio() const;
};

support::json::Object to_json(const UpdateStats& stats);
support::json::Object to_json(const DiagDelta& delta);
support::json::Object to_json(const EngineTotals& totals);
support::json::Object diagnostic_to_json(const support::Diagnostic& diag);

}  // namespace sspar::incremental
