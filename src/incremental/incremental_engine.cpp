#include "incremental/incremental_engine.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "frontend/printer.h"
#include "frontend/sema.h"
#include "ipa/call_graph.h"
#include "ipa/summary.h"
#include "store/summary_store.h"
#include "symbolic/arena.h"
#include "transform/omp_emitter.h"

namespace sspar::incremental {

namespace {

// Every declaration of the function in a deterministic order: parameters
// first, then DeclStmt declarations in statement pre-order (walk_stmts
// descends into For::init, so loop-header declarations are covered). Two
// parses of an identical printed body enumerate identically.
std::vector<const ast::VarDecl*> enumerate_locals(const ast::FuncDecl& function) {
  std::vector<const ast::VarDecl*> out;
  for (const auto& param : function.params) out.push_back(param.get());
  ast::walk_stmts(static_cast<const ast::Stmt*>(function.body.get()),
                  [&](const ast::Stmt* stmt) {
                    if (const auto* decl_stmt = stmt->as<ast::DeclStmt>()) {
                      for (const auto& decl : decl_stmt->decls) out.push_back(decl.get());
                    }
                    return true;
                  });
  return out;
}

struct FuncShape {
  std::pair<uint64_t, uint64_t> content_key;
  std::pair<uint64_t, uint64_t> layout;
  uint32_t first_line = 0;
};

// Layout hash: every node kind + source location of the function, signature
// included. Content keys ignore locations (printed source only), so this is
// the second half of the reuse test — an unchanged layout means every cached
// line number (in verdicts and W03xx messages) is still accurate.
FuncShape compute_shape(const ast::FuncDecl& function,
                        const std::pair<uint64_t, uint64_t>& content_key) {
  FuncShape shape;
  shape.content_key = content_key;
  ipa::ContentHasher h;
  uint32_t first = 0;
  auto mix_loc = [&](const support::SourceLocation& loc) {
    h.mix((static_cast<uint64_t>(loc.line) << 32) | loc.column);
    if (loc.line != 0 && (first == 0 || loc.line < first)) first = loc.line;
  };
  mix_loc(function.location);
  for (const auto& param : function.params) mix_loc(param->location);
  ast::walk_stmts(static_cast<const ast::Stmt*>(function.body.get()),
                  [&](const ast::Stmt* stmt) {
                    h.mix(static_cast<uint64_t>(stmt->kind));
                    mix_loc(stmt->location);
                    return true;
                  });
  ast::walk_exprs(function.body.get(), [&](const ast::Expr* expr) {
    h.mix(static_cast<uint64_t>(expr->kind));
    mix_loc(expr->location);
  });
  ipa::CacheKey key = h.key();
  shape.layout = {key.hi, key.lo};
  shape.first_line = first != 0 ? first : function.location.line;
  return shape;
}

}  // namespace

// Per-update analysis state, committed to the engine only after the whole
// update succeeds (an exception mid-update must not corrupt the previous
// snapshot — the server keeps sessions alive after E_INTERNAL). Member order
// matters: the arena owns every expression the summaries and analyzer
// reference, exactly as in pipeline::Session.
struct IncrementalEngine::ProgramState {
  support::DiagnosticEngine diags;
  std::unique_ptr<sym::ExprArena> arena = std::make_unique<sym::ExprArena>();
  std::unique_ptr<ipa::SummaryDB> summaries = std::make_unique<ipa::SummaryDB>();
  ast::ParseResult parsed;
  std::unique_ptr<core::Analyzer> analyzer;
};

IncrementalEngine::IncrementalEngine(EngineOptions options) : options_(std::move(options)) {
  if (options_.store != nullptr) options_.store->preload(cache_);
}

IncrementalEngine::~IncrementalEngine() = default;

const ast::Program* IncrementalEngine::program() const {
  return state_ ? state_->parsed.program.get() : nullptr;
}

void IncrementalEngine::flush_store() {
  if (options_.store == nullptr) return;
  options_.store->absorb(cache_);
  options_.store->commit();
}

UpdateResult IncrementalEngine::update(const std::string& source) {
  const auto start = std::chrono::steady_clock::now();
  UpdateResult result;

  // Retire the previous snapshot up front: every incremental byte of state
  // (function keys, cached verdicts, diagnostics, the cross-program summary
  // cache) lives outside it, and releasing the old AST/arena first lets the
  // new parse and analysis recycle that memory instead of holding two full
  // snapshots live. The result contract already limits verdict pointer
  // lifetime to the next update() call.
  state_.reset();

  auto state = std::make_unique<ProgramState>();
  state->summaries->attach_shared(&cache_);
  state->parsed = ast::parse_and_resolve(source, state->diags);
  if (!state->parsed.ok) {
    result.error = state->diags.dump();
    result.diagnostics = state->diags.diagnostics();
    support::canonicalize_diagnostics(result.diagnostics);
    return result;  // incremental state (keys, verdicts, cache) stays intact
  }
  ast::Program& program = *state->parsed.program;

  sym::ArenaScope arena_scope(*state->arena);
  state->analyzer = std::make_unique<core::Analyzer>(program, *state->parsed.symbols,
                                                     options_.analyzer, state->summaries.get(),
                                                     &state->diags);
  options_.assumptions.apply(*state->analyzer, program);
  ipa::CallGraph graph(program);
  state->analyzer->key_all_functions(graph);

  // --- Dirty-cone classification -------------------------------------------
  // A function is dirty when its content key changed or it is new. Content
  // keys fold the transitive callee closure in, so callers of dirty
  // functions are dirty by construction; removed callees flip their callers
  // the same way (the callee-key mix degrades to the unkeyed/unknown
  // marker). Relocated = same key, shifted locations: summaries reuse, but
  // verdicts/diagnostics embed line numbers, so the function re-runs.
  std::map<std::string, FuncShape> shapes;
  std::set<const ast::FuncDecl*> reanalyze;
  UpdateStats stats;
  stats.functions_total = static_cast<int>(program.functions.size());
  for (const auto& function : program.functions) {
    const std::pair<uint64_t, uint64_t>* key = state->analyzer->content_key(function.get());
    FuncShape shape = compute_shape(*function, key != nullptr ? *key : std::pair<uint64_t, uint64_t>{});
    shapes[function->name] = shape;
    auto prev = func_states_.find(function->name);
    const bool is_dirty = prev == func_states_.end() || prev->second.content_key != shape.content_key;
    const bool relocated = !is_dirty && prev->second.layout != shape.layout;
    if (is_dirty) ++stats.dirty;
    if (is_dirty || relocated) reanalyze.insert(function.get());
  }
  stats.reanalyzed = static_cast<int>(reanalyze.size());

  // --- Analysis over the cone ----------------------------------------------
  // Only summaries the cone's analysis can consult are materialized: the
  // cone functions' direct callees, recursing past a callee only when its
  // summary cannot rehydrate from the persistent cache. Every other clean
  // function's summary stays as an untouched cache entry — reuse by not
  // needing it at all.
  state->analyzer->run(&reanalyze);

  // --- Verdicts: fresh for the cone, rebound from cache elsewhere ----------
  core::Parallelizer parallelizer(*state->analyzer);
  std::vector<core::LoopVerdict> verdicts;
  std::map<std::string, std::pair<size_t, size_t>> verdict_spans;  // name -> [begin, end)
  for (const auto& function : program.functions) {
    const size_t begin = verdicts.size();
    if (reanalyze.count(function.get()) != 0) {
      auto fresh = parallelizer.analyze_all(*function);
      verdicts.insert(verdicts.end(), fresh.begin(), fresh.end());
    } else {
      const FuncState& prev = func_states_.at(function->name);
      std::vector<const ast::For*> loops =
          ast::collect_loops(static_cast<const ast::Stmt*>(function->body.get()));
      std::vector<const ast::VarDecl*> locals = enumerate_locals(*function);
      for (const CachedVerdict& cached : *prev.verdicts) {
        core::LoopVerdict v = cached.verdict;
        const ast::For* loop = loops.at(cached.loop_ordinal);
        v.loop = loop;
        v.loop_id = loop->loop_id;
        for (const PrivateRef& ref : cached.privates) {
          v.privates.push_back(ref.global ? program.find_global(ref.name)
                                          : locals.at(ref.ordinal));
        }
        verdicts.push_back(std::move(v));
        ++stats.reused_verdicts;
      }
    }
    verdict_spans[function->name] = {begin, verdicts.size()};
  }

  // --- Diagnostics: fresh from the cone + cached buckets for clean code ----
  std::vector<support::Diagnostic> diags = state->diags.diagnostics();
  for (const auto& function : program.functions) {
    if (reanalyze.count(function.get()) != 0) continue;
    const FuncState& prev = func_states_.at(function->name);
    diags.insert(diags.end(), prev.diags.begin(), prev.diags.end());
  }
  support::canonicalize_diagnostics(diags);

  // Delta vs. the previous successful update (both lists canonical).
  {
    size_t i = 0, j = 0;
    while (i < last_diags_.size() || j < diags.size()) {
      if (i == last_diags_.size()) {
        result.delta.added.push_back(diags[j++]);
      } else if (j == diags.size()) {
        result.delta.removed.push_back(last_diags_[i++]);
      } else if (last_diags_[i] == diags[j]) {
        ++result.delta.unchanged;
        ++i;
        ++j;
      } else if (support::diag_canonical_less(last_diags_[i], diags[j])) {
        result.delta.removed.push_back(last_diags_[i++]);
      } else {
        result.delta.added.push_back(diags[j++]);
      }
    }
  }

  // --- Annotate + emit ------------------------------------------------------
  result.annotated = transform::annotate_parallel_loops(program, verdicts);
  result.output = ast::print_program(program);

  // --- Harvest the new snapshot --------------------------------------------
  // Diagnostics are attributed to functions by source-line span: every W03xx
  // anchors inside the function being flowed (call sites anchor in the
  // caller), and functions occupy disjoint line ranges in source order.
  std::vector<std::pair<uint32_t, const ast::FuncDecl*>> span_index;
  for (const auto& function : program.functions) {
    span_index.emplace_back(shapes.at(function->name).first_line, function.get());
  }
  std::sort(span_index.begin(), span_index.end());
  auto owner_of = [&](uint32_t line) -> const ast::FuncDecl* {
    if (span_index.empty()) return nullptr;
    auto it = std::upper_bound(
        span_index.begin(), span_index.end(), line,
        [](uint32_t l, const auto& entry) { return l < entry.first; });
    return it == span_index.begin() ? span_index.front().second : std::prev(it)->second;
  };
  std::map<std::string, std::vector<support::Diagnostic>> diag_buckets;
  for (const support::Diagnostic& d : diags) {
    if (const ast::FuncDecl* owner = owner_of(d.location.line)) {
      diag_buckets[owner->name].push_back(d);
    }
  }

  std::map<std::string, FuncState> next_states;
  for (const auto& function : program.functions) {
    FuncState fs;
    const FuncShape& shape = shapes.at(function->name);
    fs.content_key = shape.content_key;
    fs.layout = shape.layout;
    fs.first_line = shape.first_line;
    fs.diags = std::move(diag_buckets[function->name]);
    if (reanalyze.count(function.get()) != 0) {
      // Strip AST pointers from the fresh verdicts so they survive the next
      // re-parse.
      std::vector<const ast::For*> loops =
          ast::collect_loops(static_cast<const ast::Stmt*>(function->body.get()));
      std::vector<const ast::VarDecl*> locals = enumerate_locals(*function);
      std::map<const ast::VarDecl*, size_t> local_ordinals;
      for (size_t k = 0; k < locals.size(); ++k) local_ordinals[locals[k]] = k;
      const auto [begin, end] = verdict_spans.at(function->name);
      std::vector<CachedVerdict> stripped;
      stripped.reserve(end - begin);
      for (size_t k = begin; k < end; ++k) {
        CachedVerdict cached;
        cached.verdict = verdicts[k];
        auto loop_it = std::find(loops.begin(), loops.end(), verdicts[k].loop);
        cached.loop_ordinal = static_cast<size_t>(loop_it - loops.begin());
        for (const ast::VarDecl* priv : verdicts[k].privates) {
          PrivateRef ref;
          auto ord = local_ordinals.find(priv);
          if (ord != local_ordinals.end()) {
            ref.ordinal = ord->second;
          } else {
            ref.global = true;
            ref.name = priv->name;
          }
          cached.privates.push_back(std::move(ref));
        }
        cached.verdict.loop = nullptr;
        cached.verdict.privates.clear();
        stripped.push_back(std::move(cached));
      }
      fs.verdicts =
          std::make_shared<const std::vector<CachedVerdict>>(std::move(stripped));
    } else {
      // Shared, not copied: the cached vector is immutable, so a clean
      // function's verdicts ride through any number of updates for free.
      fs.verdicts = func_states_.at(function->name).verdicts;
    }
    next_states[function->name] = std::move(fs);
  }

  // --- Commit ---------------------------------------------------------------
  stats.reused_summaries = static_cast<int>(state->summaries->stats().shared_hits);
  stats.update_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  func_states_ = std::move(next_states);
  last_diags_ = diags;
  state_ = std::move(state);
  totals_.add(stats);

  result.ok = true;
  result.verdicts = std::move(verdicts);
  result.diagnostics = std::move(diags);
  result.stats = stats;
  return result;
}

}  // namespace sspar::incremental
