#include "incremental/update_stats.h"

namespace sspar::incremental {

void EngineTotals::add(const UpdateStats& stats) {
  ++updates;
  functions_total += stats.functions_total;
  dirty += stats.dirty;
  reanalyzed += stats.reanalyzed;
  reused_summaries += stats.reused_summaries;
  reused_verdicts += stats.reused_verdicts;
}

double EngineTotals::dirty_cone_ratio() const {
  if (functions_total == 0) return 0.0;
  return static_cast<double>(dirty) / static_cast<double>(functions_total);
}

support::json::Object to_json(const UpdateStats& stats) {
  support::json::Object o;
  o["functions_total"] = stats.functions_total;
  o["dirty"] = stats.dirty;
  o["reanalyzed"] = stats.reanalyzed;
  o["reused_summaries"] = stats.reused_summaries;
  o["reused_verdicts"] = stats.reused_verdicts;
  o["update_ms"] = stats.update_ms;
  return o;
}

support::json::Object diagnostic_to_json(const support::Diagnostic& diag) {
  support::json::Object o;
  o["line"] = static_cast<int64_t>(diag.location.line);
  o["column"] = static_cast<int64_t>(diag.location.column);
  o["code"] = support::diag_code_name(diag.code);
  o["severity"] = support::severity_name(diag.severity);
  o["message"] = diag.message;
  return o;
}

support::json::Object to_json(const DiagDelta& delta) {
  support::json::Object o;
  support::json::Array added, removed;
  for (const auto& d : delta.added) added.emplace_back(diagnostic_to_json(d));
  for (const auto& d : delta.removed) removed.emplace_back(diagnostic_to_json(d));
  o["added"] = std::move(added);
  o["removed"] = std::move(removed);
  o["unchanged"] = delta.unchanged;
  return o;
}

support::json::Object to_json(const EngineTotals& totals) {
  support::json::Object o;
  o["updates"] = totals.updates;
  o["functions_total"] = totals.functions_total;
  o["dirty"] = totals.dirty;
  o["reanalyzed"] = totals.reanalyzed;
  o["reused_summaries"] = totals.reused_summaries;
  o["reused_verdicts"] = totals.reused_verdicts;
  o["dirty_cone_ratio"] = totals.dirty_cone_ratio();
  return o;
}

}  // namespace sspar::incremental
