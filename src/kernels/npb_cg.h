// Port of the NAS Parallel Benchmarks CG kernel (v3.3.1).
//
// CG solves an eigenvalue estimation problem on a random sparse symmetric
// matrix with the conjugate gradient method. The matrix assembly (makea /
// sparse) contains the paper's Fig. 3 and Fig. 4 subscripted-subscript loops,
// and the SpMV inside conj_grad is the Fig. 9 pattern whose parallelization
// the paper's analysis enables. Reproduces the official class parameters and
// verification values.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/thread_pool.h"

namespace sspar::kern {

enum class CgClass { S, W, A, B, C };

struct CgParams {
  CgClass klass;
  const char* name;
  int64_t na;       // matrix order
  int64_t nonzer;   // nonzeros per generated row vector
  int64_t niter;    // outer iterations
  double shift;
  double zeta_verify;  // official verification value
};

CgParams cg_params(CgClass klass);
// Parses "S"/"W"/"A"/"B"/"C".
CgParams cg_params(const std::string& name);

enum class CgMode {
  Serial,          // everything single-threaded
  ParallelSS,      // ONLY the subscripted-subscript loops (SpMV) in parallel,
                   // exactly what the paper's technique enables
  ParallelFull,    // SpMV + vector updates + reductions in parallel (ablation)
};

struct CgResult {
  double zeta = 0.0;
  bool verified = false;
  double total_seconds = 0.0;   // conj_grad iterations (the timed region)
  double makea_seconds = 0.0;   // matrix construction
  int64_t nnz = 0;
  int64_t niter_run = 0;
};

class CgBenchmark {
 public:
  // niter_override < 0 keeps the official iteration count.
  explicit CgBenchmark(const CgParams& params, int64_t niter_override = -1);

  // Runs the benchmark. For parallel modes `pool` must outlive the call;
  // serial ignores it.
  CgResult run(CgMode mode, rt::ThreadPool* pool = nullptr);

  // Access to the assembled matrix (after at least one run) for tests.
  const std::vector<int64_t>& rowstr() const { return rowstr_; }
  const std::vector<int64_t>& colidx() const { return colidx_; }
  const std::vector<double>& a() const { return a_; }

 private:
  void make_matrix();
  double conj_grad(std::vector<double>& x, std::vector<double>& z, CgMode mode,
                   rt::ThreadPool* pool);

  CgParams params_;
  int64_t niter_;
  int64_t naa_ = 0;
  int64_t nzz_ = 0;
  bool matrix_built_ = false;
  double makea_seconds_ = 0.0;

  std::vector<double> a_;
  std::vector<int64_t> colidx_;
  std::vector<int64_t> rowstr_;

  std::vector<double> xv_, zv_, pv_, qv_, rv_;
};

// NPB linear congruential generator (randlc) — bit-exact port.
double randlc(double* x, double a);

}  // namespace sspar::kern
