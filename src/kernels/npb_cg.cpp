#include "kernels/npb_cg.h"

#include <chrono>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace sspar::kern {

namespace {
constexpr double kAmult = 1220703125.0;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int icnvrt(double x, int64_t ipwr2) { return static_cast<int>(ipwr2 * x); }
}  // namespace

double randlc(double* x, double a) {
  const double r23 = 1.1920928955078125e-07;  // 2^-23
  const double r46 = r23 * r23;
  const double t23 = 8388608.0;  // 2^23
  const double t46 = t23 * t23;

  double t1 = r23 * a;
  double a1 = static_cast<double>(static_cast<int64_t>(t1));
  double a2 = a - t23 * a1;

  t1 = r23 * (*x);
  double x1 = static_cast<double>(static_cast<int64_t>(t1));
  double x2 = *x - t23 * x1;

  t1 = a1 * x2 + a2 * x1;
  double t2 = static_cast<double>(static_cast<int64_t>(r23 * t1));
  double z = t1 - t23 * t2;
  double t3 = t23 * z + a2 * x2;
  double t4 = static_cast<double>(static_cast<int64_t>(r46 * t3));
  double x3 = t3 - t46 * t4;
  *x = x3;
  return r46 * x3;
}

CgParams cg_params(CgClass klass) {
  switch (klass) {
    case CgClass::S:
      return {CgClass::S, "S", 1400, 7, 15, 10.0, 8.5971775078648};
    case CgClass::W:
      return {CgClass::W, "W", 7000, 8, 15, 12.0, 10.362595087124};
    case CgClass::A:
      return {CgClass::A, "A", 14000, 11, 15, 20.0, 17.130235054029};
    case CgClass::B:
      return {CgClass::B, "B", 75000, 13, 75, 60.0, 22.712745482631};
    case CgClass::C:
      return {CgClass::C, "C", 150000, 15, 75, 110.0, 28.973605592845};
  }
  throw std::invalid_argument("unknown CG class");
}

CgParams cg_params(const std::string& name) {
  if (name == "S") return cg_params(CgClass::S);
  if (name == "W") return cg_params(CgClass::W);
  if (name == "A") return cg_params(CgClass::A);
  if (name == "B") return cg_params(CgClass::B);
  if (name == "C") return cg_params(CgClass::C);
  throw std::invalid_argument("unknown CG class " + name);
}

CgBenchmark::CgBenchmark(const CgParams& params, int64_t niter_override)
    : params_(params), niter_(niter_override < 0 ? params.niter : niter_override) {}

namespace {

struct MakeaState {
  double tran = 314159265.0;

  // Generates a sparse random vector with nz distinct nonzero positions
  // (NPB sprnvc).
  void sprnvc(int64_t n, int64_t nz, int64_t nn1, double v[], int64_t iv[]) {
    int64_t nzv = 0;
    while (nzv < nz) {
      double vecelt = randlc(&tran, kAmult);
      double vecloc = randlc(&tran, kAmult);
      int64_t i = icnvrt(vecloc, nn1) + 1;
      if (i > n) continue;
      bool was_gen = false;
      for (int64_t ii = 0; ii < nzv; ++ii) {
        if (iv[ii] == i) {
          was_gen = true;
          break;
        }
      }
      if (was_gen) continue;
      v[nzv] = vecelt;
      iv[nzv] = i;
      ++nzv;
    }
  }
};

// Sets v[i] = val in the sparse vector, appending if absent (NPB vecset).
void vecset(double v[], int64_t iv[], int64_t* nzv, int64_t i, double val) {
  bool set = false;
  for (int64_t k = 0; k < *nzv; ++k) {
    if (iv[k] == i) {
      v[k] = val;
      set = true;
    }
  }
  if (!set) {
    v[*nzv] = val;
    iv[*nzv] = i;
    ++(*nzv);
  }
}

}  // namespace

void CgBenchmark::make_matrix() {
  if (matrix_built_) return;
  double t0 = now_seconds();

  const int64_t n = params_.na;
  const int64_t nonzer = params_.nonzer;
  const double rcond = 0.1;
  const double shift = params_.shift;
  const int64_t nz = n * (nonzer + 1) * (nonzer + 1);

  a_.assign(static_cast<size_t>(nz), 0.0);
  colidx_.assign(static_cast<size_t>(nz), 0);
  rowstr_.assign(static_cast<size_t>(n) + 1, 0);

  std::vector<int64_t> arow(static_cast<size_t>(n));
  std::vector<int64_t> acol(static_cast<size_t>(n * (nonzer + 1)));
  std::vector<double> aelt(static_cast<size_t>(n * (nonzer + 1)));
  std::vector<int64_t> nzloc(static_cast<size_t>(n));
  std::vector<double> vc(static_cast<size_t>(nonzer + 1));
  std::vector<int64_t> ivc(static_cast<size_t>(nonzer + 1));

  MakeaState state;
  // Warm the generator exactly as NPB does (one draw for zeta's init).
  randlc(&state.tran, kAmult);

  int64_t nn1 = 1;
  do {
    nn1 *= 2;
  } while (nn1 < n);

  // --- generate the outer-product vectors (NPB makea) ----------------------
  for (int64_t iouter = 0; iouter < n; ++iouter) {
    int64_t nzv = nonzer;
    state.sprnvc(n, nzv, nn1, vc.data(), ivc.data());
    vecset(vc.data(), ivc.data(), &nzv, iouter + 1, 0.5);
    arow[static_cast<size_t>(iouter)] = nzv;
    for (int64_t ivelt = 0; ivelt < nzv; ++ivelt) {
      acol[static_cast<size_t>(iouter * (nonzer + 1) + ivelt)] = ivc[static_cast<size_t>(ivelt)] - 1;
      aelt[static_cast<size_t>(iouter * (nonzer + 1) + ivelt)] = vc[static_cast<size_t>(ivelt)];
    }
  }

  // --- assemble the sparse matrix (NPB sparse) -------------------------------
  const int64_t nrows = n;

  // Count triples per row. This is the index-array creation the paper's
  // Fig. 9 models: rowstr becomes a prefix sum of row sizes.
  for (int64_t j = 0; j < nrows + 1; ++j) rowstr_[static_cast<size_t>(j)] = 0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t nza = 0; nza < arow[static_cast<size_t>(i)]; ++nza) {
      int64_t j = acol[static_cast<size_t>(i * (nonzer + 1) + nza)] + 1;
      rowstr_[static_cast<size_t>(j)] += arow[static_cast<size_t>(i)];
    }
  }
  rowstr_[0] = 0;
  for (int64_t j = 1; j < nrows + 1; ++j) {
    rowstr_[static_cast<size_t>(j)] += rowstr_[static_cast<size_t>(j - 1)];
  }
  if (rowstr_[static_cast<size_t>(nrows)] > nz) {
    throw std::runtime_error("space for matrix elements exceeded");
  }

  // Preload with zeros / empty markers.
  for (int64_t j = 0; j < nrows; ++j) {
    for (int64_t k = rowstr_[static_cast<size_t>(j)]; k < rowstr_[static_cast<size_t>(j + 1)]; ++k) {
      a_[static_cast<size_t>(k)] = 0.0;
      colidx_[static_cast<size_t>(k)] = -1;
    }
    nzloc[static_cast<size_t>(j)] = 0;
  }

  // Generate the actual values by summing scaled outer products; entries are
  // kept column-sorted per row with an insertion scheme, duplicates merged
  // and counted in nzloc.
  double size = 1.0;
  const double ratio = std::pow(rcond, 1.0 / static_cast<double>(n));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t nza = 0; nza < arow[static_cast<size_t>(i)]; ++nza) {
      int64_t j = acol[static_cast<size_t>(i * (nonzer + 1) + nza)];
      double scale = size * aelt[static_cast<size_t>(i * (nonzer + 1) + nza)];
      for (int64_t nzrow = 0; nzrow < arow[static_cast<size_t>(i)]; ++nzrow) {
        int64_t jcol = acol[static_cast<size_t>(i * (nonzer + 1) + nzrow)];
        double va = aelt[static_cast<size_t>(i * (nonzer + 1) + nzrow)] * scale;
        if (jcol == j && j == i) {
          va += rcond - shift;
        }
        bool placed = false;
        int64_t k;
        for (k = rowstr_[static_cast<size_t>(j)]; k < rowstr_[static_cast<size_t>(j + 1)]; ++k) {
          if (colidx_[static_cast<size_t>(k)] > jcol) {
            // Insert here: shift the tail of the row right by one.
            for (int64_t kk = rowstr_[static_cast<size_t>(j + 1)] - 2; kk >= k; --kk) {
              if (colidx_[static_cast<size_t>(kk)] > -1) {
                a_[static_cast<size_t>(kk + 1)] = a_[static_cast<size_t>(kk)];
                colidx_[static_cast<size_t>(kk + 1)] = colidx_[static_cast<size_t>(kk)];
              }
            }
            colidx_[static_cast<size_t>(k)] = jcol;
            a_[static_cast<size_t>(k)] = 0.0;
            placed = true;
            break;
          } else if (colidx_[static_cast<size_t>(k)] == -1) {
            colidx_[static_cast<size_t>(k)] = jcol;
            placed = true;
            break;
          } else if (colidx_[static_cast<size_t>(k)] == jcol) {
            // Duplicate: mark for removal by the compression pass.
            ++nzloc[static_cast<size_t>(j)];
            placed = true;
            break;
          }
        }
        if (!placed) throw std::runtime_error("internal error in sparse assembly");
        a_[static_cast<size_t>(k)] += va;
      }
    }
    size *= ratio;
  }

  // Remove duplicate slots: the paper's Fig. 4 loops (monotonic difference of
  // rowstr and nzloc).
  for (int64_t j = 1; j < nrows; ++j) {
    nzloc[static_cast<size_t>(j)] += nzloc[static_cast<size_t>(j - 1)];
  }
  for (int64_t j = 0; j < nrows; ++j) {
    int64_t j1 = j > 0 ? rowstr_[static_cast<size_t>(j)] - nzloc[static_cast<size_t>(j - 1)] : 0;
    int64_t j2 = rowstr_[static_cast<size_t>(j + 1)] - nzloc[static_cast<size_t>(j)];
    int64_t nza = rowstr_[static_cast<size_t>(j)];
    for (int64_t k = j1; k < j2; ++k) {
      a_[static_cast<size_t>(k)] = a_[static_cast<size_t>(nza)];
      colidx_[static_cast<size_t>(k)] = colidx_[static_cast<size_t>(nza)];
      ++nza;
    }
  }
  for (int64_t j = 1; j < nrows + 1; ++j) {
    rowstr_[static_cast<size_t>(j)] -= nzloc[static_cast<size_t>(j - 1)];
  }
  nzz_ = rowstr_[static_cast<size_t>(nrows)];
  naa_ = n;

  xv_.assign(static_cast<size_t>(n), 1.0);
  zv_.assign(static_cast<size_t>(n), 0.0);
  pv_.assign(static_cast<size_t>(n), 0.0);
  qv_.assign(static_cast<size_t>(n), 0.0);
  rv_.assign(static_cast<size_t>(n), 0.0);

  matrix_built_ = true;
  makea_seconds_ = now_seconds() - t0;
}

double CgBenchmark::conj_grad(std::vector<double>& x, std::vector<double>& z, CgMode mode,
                              rt::ThreadPool* pool) {
  const int64_t n = naa_;
  const int64_t cgitmax = 25;
  auto& p = pv_;
  auto& q = qv_;
  auto& r = rv_;

  auto spmv = [&](const std::vector<double>& in, std::vector<double>& out) {
    if (mode != CgMode::Serial && pool) {
      // The paper's enabling transformation: the rows loop runs in parallel
      // because rowstr is monotonic (proved at compile time).
      pool->parallel_for(0, n, [&](int64_t lo, int64_t hi) {
        for (int64_t j = lo; j < hi; ++j) {
          double sum = 0.0;
          for (int64_t k = rowstr_[static_cast<size_t>(j)]; k < rowstr_[static_cast<size_t>(j + 1)]; ++k) {
            sum += a_[static_cast<size_t>(k)] * in[static_cast<size_t>(colidx_[static_cast<size_t>(k)])];
          }
          out[static_cast<size_t>(j)] = sum;
        }
      });
    } else {
      for (int64_t j = 0; j < n; ++j) {
        double sum = 0.0;
        for (int64_t k = rowstr_[static_cast<size_t>(j)]; k < rowstr_[static_cast<size_t>(j + 1)]; ++k) {
          sum += a_[static_cast<size_t>(k)] * in[static_cast<size_t>(colidx_[static_cast<size_t>(k)])];
        }
        out[static_cast<size_t>(j)] = sum;
      }
    }
  };

  auto dot = [&](const std::vector<double>& u, const std::vector<double>& v) {
    if (mode == CgMode::ParallelFull && pool) {
      return pool->parallel_reduce(0, n, [&](int64_t lo, int64_t hi) {
        double s = 0.0;
        for (int64_t j = lo; j < hi; ++j) s += u[static_cast<size_t>(j)] * v[static_cast<size_t>(j)];
        return s;
      });
    }
    double s = 0.0;
    for (int64_t j = 0; j < n; ++j) s += u[static_cast<size_t>(j)] * v[static_cast<size_t>(j)];
    return s;
  };

  auto axpy_loop = [&](const std::function<void(int64_t)>& body) {
    if (mode == CgMode::ParallelFull && pool) {
      pool->parallel_for(0, n, [&](int64_t lo, int64_t hi) {
        for (int64_t j = lo; j < hi; ++j) body(j);
      });
    } else {
      for (int64_t j = 0; j < n; ++j) body(j);
    }
  };

  // Initialization.
  axpy_loop([&](int64_t j) {
    q[static_cast<size_t>(j)] = 0.0;
    z[static_cast<size_t>(j)] = 0.0;
    r[static_cast<size_t>(j)] = x[static_cast<size_t>(j)];
    p[static_cast<size_t>(j)] = r[static_cast<size_t>(j)];
  });
  double rho = dot(r, r);

  for (int64_t cgit = 0; cgit < cgitmax; ++cgit) {
    spmv(p, q);
    double d = dot(p, q);
    double alpha = rho / d;
    axpy_loop([&](int64_t j) {
      z[static_cast<size_t>(j)] += alpha * p[static_cast<size_t>(j)];
      r[static_cast<size_t>(j)] -= alpha * q[static_cast<size_t>(j)];
    });
    double rho0 = rho;
    rho = dot(r, r);
    double beta = rho / rho0;
    axpy_loop([&](int64_t j) {
      p[static_cast<size_t>(j)] = r[static_cast<size_t>(j)] + beta * p[static_cast<size_t>(j)];
    });
  }

  // Residual norm ||x - A*z||.
  spmv(z, r);
  double sum = 0.0;
  for (int64_t j = 0; j < n; ++j) {
    double dlt = x[static_cast<size_t>(j)] - r[static_cast<size_t>(j)];
    sum += dlt * dlt;
  }
  return std::sqrt(sum);
}

CgResult CgBenchmark::run(CgMode mode, rt::ThreadPool* pool) {
  make_matrix();
  CgResult result;
  result.nnz = nzz_;
  result.makea_seconds = makea_seconds_;
  result.niter_run = niter_;

  const int64_t n = naa_;
  auto& x = xv_;
  auto& z = zv_;
  for (int64_t j = 0; j < n; ++j) x[static_cast<size_t>(j)] = 1.0;

  // Untimed warm-up iteration (NPB does one).
  conj_grad(x, z, mode, pool);
  for (int64_t j = 0; j < n; ++j) x[static_cast<size_t>(j)] = 1.0;

  double zeta = 0.0;
  double t0 = now_seconds();
  for (int64_t it = 1; it <= niter_; ++it) {
    conj_grad(x, z, mode, pool);
    double norm1 = 0.0, norm2 = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      norm1 += x[static_cast<size_t>(j)] * z[static_cast<size_t>(j)];
      norm2 += z[static_cast<size_t>(j)] * z[static_cast<size_t>(j)];
    }
    double norm_temp2 = 1.0 / std::sqrt(norm2);
    zeta = params_.shift + 1.0 / norm1;
    for (int64_t j = 0; j < n; ++j) {
      x[static_cast<size_t>(j)] = norm_temp2 * z[static_cast<size_t>(j)];
    }
  }
  result.total_seconds = now_seconds() - t0;
  result.zeta = zeta;
  // The official verification value holds only for the official niter.
  if (niter_ == params_.niter) {
    result.verified = std::abs(zeta - params_.zeta_verify) <= 1e-10;
  }
  return result;
}

}  // namespace sspar::kern
