// Compressed Sparse Row matrix and SpMV kernels.
//
// The row-pointer array is exactly the paper's monotonic index array: the
// parallel SpMV is legal because rowptr[r] <= rowptr[r+1] for all r — the
// property the compile-time analysis derives from the fill code.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "runtime/thread_pool.h"

namespace sspar::kern {

struct Csr {
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<int64_t> rowptr;  // size rows + 1, non-decreasing
  std::vector<int64_t> colidx;  // size nnz
  std::vector<double> values;   // size nnz

  int64_t nnz() const { return rowptr.empty() ? 0 : rowptr.back(); }

  // Builds from coordinate triples (duplicates summed). Triples need not be
  // sorted.
  static Csr from_triples(int64_t rows, int64_t cols,
                          std::span<const int64_t> row, std::span<const int64_t> col,
                          std::span<const double> val);

  // Dense random matrix thresholded to the requested density (deterministic
  // from `seed`); used by the Fig. 9 style workloads.
  static Csr random(int64_t rows, int64_t cols, double density, uint64_t seed);
};

// y = A * x, single thread.
void spmv_serial(const Csr& a, std::span<const double> x, std::span<double> y);

// y = A * x across pool threads (row-parallel; legal by rowptr monotonicity).
void spmv_parallel(const Csr& a, std::span<const double> x, std::span<double> y,
                   rt::ThreadPool& pool);

}  // namespace sspar::kern
