#include "kernels/pattern_kernels.h"

#include <algorithm>
#include <numeric>

namespace sspar::kern {

// --- Fig. 2 ------------------------------------------------------------------

InversePermutation InversePermutation::random(int64_t n, uint64_t seed) {
  InversePermutation kernel;
  kernel.mt_to_id.resize(static_cast<size_t>(n));
  std::iota(kernel.mt_to_id.begin(), kernel.mt_to_id.end(), 0);
  std::mt19937_64 rng(seed);
  std::shuffle(kernel.mt_to_id.begin(), kernel.mt_to_id.end(), rng);
  return kernel;
}

std::vector<int64_t> InversePermutation::run_serial() const {
  std::vector<int64_t> id_to_mt(mt_to_id.size(), -1);
  for (size_t miel = 0; miel < mt_to_id.size(); ++miel) {
    id_to_mt[static_cast<size_t>(mt_to_id[miel])] = static_cast<int64_t>(miel);
  }
  return id_to_mt;
}

std::vector<int64_t> InversePermutation::run_parallel(rt::ThreadPool& pool) const {
  std::vector<int64_t> id_to_mt(mt_to_id.size(), -1);
  pool.parallel_for(0, static_cast<int64_t>(mt_to_id.size()), [&](int64_t lo, int64_t hi) {
    for (int64_t miel = lo; miel < hi; ++miel) {
      id_to_mt[static_cast<size_t>(mt_to_id[static_cast<size_t>(miel)])] = miel;
    }
  });
  return id_to_mt;
}

// --- Fig. 3 / 9 ----------------------------------------------------------------

RowRangeProduct RowRangeProduct::random(int64_t rows, int64_t avg_row, uint64_t seed) {
  RowRangeProduct kernel;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> row_len(0, 2 * avg_row);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  kernel.rowptr.resize(static_cast<size_t>(rows) + 1);
  kernel.rowptr[0] = 0;
  for (int64_t r = 0; r < rows; ++r) {
    kernel.rowptr[static_cast<size_t>(r) + 1] = kernel.rowptr[static_cast<size_t>(r)] + row_len(rng);
  }
  int64_t nnz = kernel.rowptr.back();
  kernel.value.resize(static_cast<size_t>(nnz));
  kernel.vec.resize(static_cast<size_t>(nnz));
  for (int64_t k = 0; k < nnz; ++k) {
    kernel.value[static_cast<size_t>(k)] = val(rng);
    kernel.vec[static_cast<size_t>(k)] = val(rng);
  }
  return kernel;
}

std::vector<double> RowRangeProduct::run_serial() const {
  std::vector<double> product(value.size(), 0.0);
  int64_t rows = static_cast<int64_t>(rowptr.size()) - 1;
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = rowptr[static_cast<size_t>(i)]; j < rowptr[static_cast<size_t>(i) + 1]; ++j) {
      product[static_cast<size_t>(j)] = value[static_cast<size_t>(j)] * vec[static_cast<size_t>(j)];
    }
  }
  return product;
}

std::vector<double> RowRangeProduct::run_parallel(rt::ThreadPool& pool) const {
  std::vector<double> product(value.size(), 0.0);
  int64_t rows = static_cast<int64_t>(rowptr.size()) - 1;
  pool.parallel_for(0, rows, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      for (int64_t j = rowptr[static_cast<size_t>(i)]; j < rowptr[static_cast<size_t>(i) + 1]; ++j) {
        product[static_cast<size_t>(j)] = value[static_cast<size_t>(j)] * vec[static_cast<size_t>(j)];
      }
    }
  });
  return product;
}

// --- Fig. 5 ---------------------------------------------------------------------

GuardedScatter GuardedScatter::random(int64_t n, double match_fraction, uint64_t seed) {
  GuardedScatter kernel;
  kernel.m = n;
  kernel.jmatch.assign(static_cast<size_t>(n), -1);
  // Choose a random injective assignment for ~match_fraction of the entries.
  std::vector<int64_t> targets(static_cast<size_t>(n));
  std::iota(targets.begin(), targets.end(), 0);
  std::mt19937_64 rng(seed);
  std::shuffle(targets.begin(), targets.end(), rng);
  std::uniform_real_distribution<double> pick(0.0, 1.0);
  size_t next = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (pick(rng) < match_fraction) {
      kernel.jmatch[static_cast<size_t>(i)] = targets[next++];
    }
  }
  return kernel;
}

std::vector<int64_t> GuardedScatter::run_serial() const {
  std::vector<int64_t> imatch(static_cast<size_t>(m), -1);
  for (size_t i = 0; i < jmatch.size(); ++i) {
    if (jmatch[i] >= 0) imatch[static_cast<size_t>(jmatch[i])] = static_cast<int64_t>(i);
  }
  return imatch;
}

std::vector<int64_t> GuardedScatter::run_parallel(rt::ThreadPool& pool) const {
  std::vector<int64_t> imatch(static_cast<size_t>(m), -1);
  pool.parallel_for(0, static_cast<int64_t>(jmatch.size()), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      if (jmatch[static_cast<size_t>(i)] >= 0) {
        imatch[static_cast<size_t>(jmatch[static_cast<size_t>(i)])] = i;
      }
    }
  });
  return imatch;
}

// --- Fig. 6 ---------------------------------------------------------------------

BlockScatter BlockScatter::random(int64_t blocks, int64_t avg_block, uint64_t seed) {
  BlockScatter kernel;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> block_len(0, 2 * avg_block);
  kernel.r.resize(static_cast<size_t>(blocks) + 1);
  kernel.r[0] = 0;
  for (int64_t b = 0; b < blocks; ++b) {
    kernel.r[static_cast<size_t>(b) + 1] = kernel.r[static_cast<size_t>(b)] + block_len(rng);
  }
  kernel.p.resize(static_cast<size_t>(kernel.r.back()));
  std::iota(kernel.p.begin(), kernel.p.end(), 0);
  std::shuffle(kernel.p.begin(), kernel.p.end(), rng);
  return kernel;
}

std::vector<int64_t> BlockScatter::run_serial() const {
  std::vector<int64_t> blk(p.size(), -1);
  int64_t blocks = static_cast<int64_t>(r.size()) - 1;
  for (int64_t b = 0; b < blocks; ++b) {
    for (int64_t k = r[static_cast<size_t>(b)]; k < r[static_cast<size_t>(b) + 1]; ++k) {
      blk[static_cast<size_t>(p[static_cast<size_t>(k)])] = b;
    }
  }
  return blk;
}

std::vector<int64_t> BlockScatter::run_parallel(rt::ThreadPool& pool) const {
  std::vector<int64_t> blk(p.size(), -1);
  int64_t blocks = static_cast<int64_t>(r.size()) - 1;
  pool.parallel_for(0, blocks, [&](int64_t lo, int64_t hi) {
    for (int64_t b = lo; b < hi; ++b) {
      for (int64_t k = r[static_cast<size_t>(b)]; k < r[static_cast<size_t>(b) + 1]; ++k) {
        blk[static_cast<size_t>(p[static_cast<size_t>(k)])] = b;
      }
    }
  });
  return blk;
}

// --- Fig. 7 / 8 -------------------------------------------------------------------

WindowScatter WindowScatter::random(int64_t n, uint64_t seed) {
  WindowScatter kernel;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> gap(1, 3);
  kernel.front.resize(static_cast<size_t>(n));
  int64_t cur = 0;
  for (int64_t i = 0; i < n; ++i) {
    cur += gap(rng);
    kernel.front[static_cast<size_t>(i)] = cur;
  }
  return kernel;
}

std::vector<int64_t> WindowScatter::run_serial() const {
  int64_t size = front.empty() ? 0 : (front.back() + 1) * 7;
  std::vector<int64_t> tree(static_cast<size_t>(size), 0);
  for (size_t i = 0; i < front.size(); ++i) {
    int64_t base = front[i] * 7;
    for (int64_t j = 0; j < 7; ++j) {
      tree[static_cast<size_t>(base + j)] = static_cast<int64_t>(i) + (j + 1) % 8;
    }
  }
  return tree;
}

std::vector<int64_t> WindowScatter::run_parallel(rt::ThreadPool& pool) const {
  int64_t size = front.empty() ? 0 : (front.back() + 1) * 7;
  std::vector<int64_t> tree(static_cast<size_t>(size), 0);
  pool.parallel_for(0, static_cast<int64_t>(front.size()), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      int64_t base = front[static_cast<size_t>(i)] * 7;
      for (int64_t j = 0; j < 7; ++j) {
        tree[static_cast<size_t>(base + j)] = i + (j + 1) % 8;
      }
    }
  });
  return tree;
}

}  // namespace sspar::kern
