#include "kernels/csr.h"

#include <cassert>
#include <random>
#include <stdexcept>

namespace sspar::kern {

Csr Csr::from_triples(int64_t rows, int64_t cols, std::span<const int64_t> row,
                      std::span<const int64_t> col, std::span<const double> val) {
  if (row.size() != col.size() || row.size() != val.size()) {
    throw std::invalid_argument("triple arrays must have equal length");
  }
  Csr a;
  a.rows = rows;
  a.cols = cols;
  // Count entries per row (duplicates collapse later).
  std::vector<int64_t> count(static_cast<size_t>(rows), 0);
  for (int64_t r : row) {
    if (r < 0 || r >= rows) throw std::out_of_range("row index");
    ++count[static_cast<size_t>(r)];
  }
  a.rowptr.assign(static_cast<size_t>(rows) + 1, 0);
  for (int64_t r = 0; r < rows; ++r) {
    a.rowptr[static_cast<size_t>(r) + 1] = a.rowptr[static_cast<size_t>(r)] + count[static_cast<size_t>(r)];
  }
  a.colidx.assign(static_cast<size_t>(a.rowptr.back()), 0);
  a.values.assign(static_cast<size_t>(a.rowptr.back()), 0.0);
  std::vector<int64_t> cursor(a.rowptr.begin(), a.rowptr.end() - 1);
  for (size_t t = 0; t < row.size(); ++t) {
    if (col[t] < 0 || col[t] >= cols) throw std::out_of_range("col index");
    int64_t slot = cursor[static_cast<size_t>(row[t])]++;
    a.colidx[static_cast<size_t>(slot)] = col[t];
    a.values[static_cast<size_t>(slot)] = val[t];
  }
  // Sort each row by column and merge duplicates in place.
  std::vector<int64_t> new_rowptr(a.rowptr.size(), 0);
  size_t out = 0;
  for (int64_t r = 0; r < rows; ++r) {
    size_t lo = static_cast<size_t>(a.rowptr[static_cast<size_t>(r)]);
    size_t hi = static_cast<size_t>(a.rowptr[static_cast<size_t>(r) + 1]);
    std::vector<std::pair<int64_t, double>> entries;
    entries.reserve(hi - lo);
    for (size_t k = lo; k < hi; ++k) entries.emplace_back(a.colidx[k], a.values[k]);
    std::sort(entries.begin(), entries.end());
    size_t row_start = out;
    for (size_t k = 0; k < entries.size(); ++k) {
      if (k > 0 && entries[k].first == entries[k - 1].first) {
        a.values[out - 1] += entries[k].second;
      } else {
        a.colidx[out] = entries[k].first;
        a.values[out] = entries[k].second;
        ++out;
      }
    }
    (void)row_start;
    new_rowptr[static_cast<size_t>(r) + 1] = static_cast<int64_t>(out);
  }
  a.rowptr = std::move(new_rowptr);
  a.colidx.resize(out);
  a.values.resize(out);
  return a;
}

Csr Csr::random(int64_t rows, int64_t cols, double density, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> pick(0.0, 1.0);
  std::uniform_real_distribution<double> value(-1.0, 1.0);
  Csr a;
  a.rows = rows;
  a.cols = cols;
  a.rowptr.assign(static_cast<size_t>(rows) + 1, 0);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      if (pick(rng) < density) {
        a.colidx.push_back(c);
        a.values.push_back(value(rng));
      }
    }
    a.rowptr[static_cast<size_t>(r) + 1] = static_cast<int64_t>(a.colidx.size());
  }
  return a;
}

void spmv_serial(const Csr& a, std::span<const double> x, std::span<double> y) {
  assert(static_cast<int64_t>(x.size()) >= a.cols);
  assert(static_cast<int64_t>(y.size()) >= a.rows);
  for (int64_t r = 0; r < a.rows; ++r) {
    double sum = 0.0;
    for (int64_t k = a.rowptr[static_cast<size_t>(r)]; k < a.rowptr[static_cast<size_t>(r) + 1]; ++k) {
      sum += a.values[static_cast<size_t>(k)] * x[static_cast<size_t>(a.colidx[static_cast<size_t>(k)])];
    }
    y[static_cast<size_t>(r)] = sum;
  }
}

void spmv_parallel(const Csr& a, std::span<const double> x, std::span<double> y,
                   rt::ThreadPool& pool) {
  pool.parallel_for(0, a.rows, [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      double sum = 0.0;
      for (int64_t k = a.rowptr[static_cast<size_t>(r)]; k < a.rowptr[static_cast<size_t>(r) + 1]; ++k) {
        sum += a.values[static_cast<size_t>(k)] * x[static_cast<size_t>(a.colidx[static_cast<size_t>(k)])];
      }
      y[static_cast<size_t>(r)] = sum;
    }
  });
}

}  // namespace sspar::kern
