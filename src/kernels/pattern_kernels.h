// Runnable C++ versions of the paper's pattern catalogue (Figs. 2-9).
//
// Each kernel has a serial and a parallel implementation; the parallel one is
// legal exactly because of the index-array property the paper's analysis
// derives (injectivity / monotonicity / subset injectivity / disjoint
// windows). Tests verify serial == parallel on randomized inputs; the
// benches measure the speedup the property unlocks.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "runtime/thread_pool.h"

namespace sspar::kern {

// --- Fig. 2: inverse permutation (UA) ---------------------------------------
// id_to_mt[mt_to_id[i]] = i. Parallel-legal: mt_to_id injective.
struct InversePermutation {
  std::vector<int64_t> mt_to_id;  // a permutation of [0, n)

  static InversePermutation random(int64_t n, uint64_t seed);
  std::vector<int64_t> run_serial() const;
  std::vector<int64_t> run_parallel(rt::ThreadPool& pool) const;
};

// --- Fig. 3 / Fig. 9: CSR row-range traversal (CG) ---------------------------
// product[j] = value[j] * vec[j] for j in [rowptr[i-1], rowptr[i]).
// Parallel-legal: rowptr monotonic.
struct RowRangeProduct {
  std::vector<int64_t> rowptr;  // non-decreasing, size rows+1
  std::vector<double> value;
  std::vector<double> vec;

  static RowRangeProduct random(int64_t rows, int64_t avg_row, uint64_t seed);
  std::vector<double> run_serial() const;
  std::vector<double> run_parallel(rt::ThreadPool& pool) const;
};

// --- Fig. 5: guarded injective subset (CSparse maxtrans) --------------------
// if (jmatch[i] >= 0) imatch[jmatch[i]] = i. Parallel-legal: the non-negative
// subset of jmatch is injective.
struct GuardedScatter {
  std::vector<int64_t> jmatch;  // distinct non-negative values or -1
  int64_t m = 0;                // imatch size

  static GuardedScatter random(int64_t n, double match_fraction, uint64_t seed);
  std::vector<int64_t> run_serial() const;
  std::vector<int64_t> run_parallel(rt::ThreadPool& pool) const;
};

// --- Fig. 6: block scatter through a permutation (CSparse dmperm) ------------
// Blk[p[k]] = b for k in [r[b], r[b+1]). Parallel-legal: r monotonic and p
// injective.
struct BlockScatter {
  std::vector<int64_t> r;  // non-decreasing block boundaries
  std::vector<int64_t> p;  // permutation of [0, r.back())

  static BlockScatter random(int64_t blocks, int64_t avg_block, uint64_t seed);
  std::vector<int64_t> run_serial() const;
  std::vector<int64_t> run_parallel(rt::ThreadPool& pool) const;
};

// --- Fig. 7 / Fig. 8: strided disjoint windows (UA refinement) ---------------
// tree[front[i]*7 + j] = f(i, j) for j in [0, 7). Parallel-legal: front
// strictly monotonic, so the 7-wide windows are disjoint.
struct WindowScatter {
  std::vector<int64_t> front;  // strictly increasing

  static WindowScatter random(int64_t n, uint64_t seed);
  std::vector<int64_t> run_serial() const;
  std::vector<int64_t> run_parallel(rt::ThreadPool& pool) const;
};

}  // namespace sspar::kern
