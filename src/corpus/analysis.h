// Shared driver: run the staged pipeline (pipeline::Session) on a corpus
// entry. Used by the survey bench, the pattern-gallery example, and the
// integration tests.
#pragma once

#include <memory>

#include "core/parallelizer.h"
#include "corpus/corpus.h"
#include "frontend/frontend.h"
#include "interp/interpreter.h"
#include "pipeline/assumptions.h"

namespace sspar::corpus {

struct EntryAnalysis {
  const Entry* entry = nullptr;
  bool ok = false;
  std::string diagnostics;
  // Keep the program (and symbol table) alive: verdicts point into it.
  ast::ParseResult parsed;
  std::vector<core::LoopVerdict> verdicts;

  int loops = 0;
  int subscripted = 0;
  int parallel = 0;
  int parallel_subscripted = 0;
  // Distinct enabling properties among parallel subscripted-subscript loops.
  std::vector<std::string> properties;
};

EntryAnalysis analyze_entry(const Entry& entry, const core::AnalyzerOptions& options = {});

// The entry's size parameters as analyzer assumptions (name >= assume_min).
pipeline::Assumptions analyzer_assumptions(const Entry& entry);
// The same parameters as concrete interpreter inputs (name = interp_value).
pipeline::Assumptions interpreter_params(const Entry& entry);

// Seeds an interpreter with the entry's size parameters plus non-trivial data
// for input arrays the kernel reads but does not fill itself. Used by every
// dynamic-validation path (soundness tests, differential driver tests).
void seed_interpreter_inputs(const Entry& entry, interp::Interpreter& interp);

}  // namespace sspar::corpus
