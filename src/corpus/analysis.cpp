#include "corpus/analysis.h"

#include <algorithm>

#include "pipeline/session.h"
#include "support/diagnostics.h"

namespace sspar::corpus {

pipeline::Assumptions analyzer_assumptions(const Entry& entry) {
  pipeline::Assumptions assumptions;
  for (const auto& param : entry.params) assumptions.add(param.name, param.assume_min);
  return assumptions;
}

pipeline::Assumptions interpreter_params(const Entry& entry) {
  pipeline::Assumptions params;
  for (const auto& param : entry.params) params.add(param.name, param.interp_value);
  return params;
}

EntryAnalysis analyze_entry(const Entry& entry, const core::AnalyzerOptions& options) {
  EntryAnalysis result;
  result.entry = &entry;
  pipeline::Session session(entry.source, analyzer_assumptions(entry));
  bool parsed = session.parse();
  result.diagnostics = session.diagnostics().dump();
  if (!parsed) {
    result.parsed = session.take_parse();
    return result;
  }
  session.analyze(options);
  // Every corpus entry is a single function f(); the session's all-function
  // verdict list is exactly f()'s loops.
  if (const auto* verdicts = session.parallelize()) result.verdicts = *verdicts;
  result.parsed = session.take_parse();
  if (!result.parsed.program->find_function("f")) {
    result.verdicts.clear();
    return result;
  }

  for (const auto& v : result.verdicts) {
    ++result.loops;
    if (v.uses_subscripted_subscripts) ++result.subscripted;
    if (v.parallel) ++result.parallel;
    if (v.parallel && v.uses_subscripted_subscripts) {
      ++result.parallel_subscripted;
      if (std::find(result.properties.begin(), result.properties.end(), v.reason) ==
          result.properties.end()) {
        result.properties.push_back(v.reason);
      }
    }
  }
  result.ok = true;
  return result;
}

void seed_interpreter_inputs(const Entry& entry, interp::Interpreter& interp) {
  interpreter_params(entry).seed_interpreter(interp);
  auto fill_int = [&](const char* name, size_t count, auto fn) {
    std::vector<int64_t> data(count);
    for (size_t i = 0; i < count; ++i) data[i] = fn(i);
    interp.set_array_int(name, std::move(data));
  };
  auto fill_double = [&](const char* name, size_t count, auto fn) {
    std::vector<double> data(count);
    for (size_t i = 0; i < count; ++i) data[i] = fn(i);
    interp.set_array_double(name, std::move(data));
  };
  if (entry.name == "fig3" || entry.name == "CG" || entry.name == "ipa_cg") {
    fill_int("cols", 512, [](size_t i) { return static_cast<int64_t>(i % 3) - 1; });
  }
  if (entry.name == "fig4") {
    fill_int("w1", 512, [](size_t i) { return static_cast<int64_t>(i % 2); });
    fill_int("w2", 512, [](size_t i) { return static_cast<int64_t>((i + 1) % 3) - 1; });
    fill_double("v", 8192, [](size_t i) { return 0.25 * static_cast<double>(i % 17); });
    fill_int("iv", 8192, [](size_t i) { return static_cast<int64_t>(i % 29); });
  }
  if (entry.name == "fig8") {
    fill_int("ich", 2048, [](size_t i) { return static_cast<int64_t>(i % 5); });
  }
  if (entry.name == "fig9" || entry.name == "ipa_csr") {
    fill_int("a", 128 * 128,
             [](size_t i) { return i % 3 == 0 ? static_cast<int64_t>(i % 7 + 1) : 0; });
    fill_double("vector", 16384, [](size_t i) { return 0.125 * static_cast<double>(i % 11); });
  }
  if (entry.name == "CG") {
    fill_double("aval", 8192, [](size_t i) { return 0.5 * static_cast<double>(i % 13); });
    fill_double("p", 513, [](size_t i) { return 1.0 + 0.01 * static_cast<double>(i % 7); });
  }
  if (entry.name == "hybrid_perm") {
    // A genuine permutation of [0, 2048): the runtime injectivity check holds.
    fill_int("perm", 2048, [](size_t i) { return static_cast<int64_t>((i * 7) % 2048); });
  }
  if (entry.name == "hybrid_scatter") {
    // Sparse matches, all distinct where non-negative: subset-injective.
    fill_int("match", 2048, [](size_t i) {
      return i % 3 == 0 ? static_cast<int64_t>(2 * i) : int64_t{-1};
    });
  }
  if (entry.name == "hybrid_csr") {
    fill_int("rowcnt", 128, [](size_t i) { return static_cast<int64_t>(i % 4); });
    fill_double("value", 16384, [](size_t i) { return 0.5 * static_cast<double>(i % 17); });
    fill_double("vector", 16384,
                [](size_t i) { return 1.0 + static_cast<double>(i % 5); });
  }
  if (entry.name == "MG" || entry.name == "KLU") {
    fill_double(entry.name == "MG" ? "u" : "x", 8192,
                [](size_t i) { return 0.1 * static_cast<double>(i % 23); });
  }
}

}  // namespace sspar::corpus
