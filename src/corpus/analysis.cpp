#include "corpus/analysis.h"

#include <algorithm>

#include "support/diagnostics.h"

namespace sspar::corpus {

EntryAnalysis analyze_entry(const Entry& entry, const core::AnalyzerOptions& options) {
  EntryAnalysis result;
  result.entry = &entry;
  support::DiagnosticEngine diags;
  result.parsed = ast::parse_and_resolve(entry.source, diags);
  result.diagnostics = diags.dump();
  if (!result.parsed.ok) return result;

  core::Analyzer analyzer(*result.parsed.program, *result.parsed.symbols, options);
  for (const auto& param : entry.params) {
    const ast::VarDecl* decl = result.parsed.program->find_global(param.name);
    if (decl) analyzer.assume_ge(decl, param.assume_min);
  }
  analyzer.run();

  core::Parallelizer parallelizer(analyzer);
  const ast::FuncDecl* func = result.parsed.program->find_function("f");
  if (!func) return result;
  result.verdicts = parallelizer.analyze_all(*func);

  for (const auto& v : result.verdicts) {
    ++result.loops;
    if (v.uses_subscripted_subscripts) ++result.subscripted;
    if (v.parallel) ++result.parallel;
    if (v.parallel && v.uses_subscripted_subscripts) {
      ++result.parallel_subscripted;
      if (std::find(result.properties.begin(), result.properties.end(), v.reason) ==
          result.properties.end()) {
        result.properties.push_back(v.reason);
      }
    }
  }
  result.ok = true;
  return result;
}

}  // namespace sspar::corpus
