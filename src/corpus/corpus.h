// Benchmark corpus for the paper's empirical study (Section 2 / Fig. 1).
//
// Each entry is a representative mini-C kernel for one program of the NAS
// Parallel Benchmarks v3.3.1 or SuiteSparse v5.4.0, plus the verbatim
// patterns of the paper's Figs. 2-9. Fig. 1 itself is an image whose exact
// per-program counts are not recoverable from the text; the corpus
// reconstructs the program-level structure the prose states (6 of 10 NPB and
// 4 of 8 SuiteSparse programs exhibit parallelizable subscripted-subscript
// loops) with kernels modeled after each program's actual index-array use.
//
// Every source is self-contained: input index arrays are created by fill
// code inside the entry function (the paper's key claim is that these fill
// codes make the properties derivable at compile time), and problem sizes
// are symbolic globals so both the analyzer (with assumptions) and the
// interpreter (with concrete values) can consume the same program.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sspar::corpus {

enum class Suite { Paper, NPB, SuiteSparse };

const char* suite_name(Suite suite);

struct Entry {
  std::string name;         // program or figure name ("CG", "fig2", ...)
  Suite suite;
  std::string description;  // what the kernel models
  std::string source;       // mini-C translation unit with entry function f()
  // Size parameters: set as interpreter inputs AND assumed >= 1 (or the given
  // minimum) for the analyzer.
  struct Param {
    std::string name;
    int64_t interp_value;  // concrete value for dynamic validation
    int64_t assume_min;    // analyzer assumption: name >= assume_min
  };
  std::vector<Param> params;

  // Expected analysis outcome over all loops of f().
  int expected_loops = 0;               // total For loops
  int expected_subscripted = 0;         // loops using subscripted subscripts
  int expected_parallel = 0;            // loops proven parallel
  int expected_parallel_subscripted = 0;  // parallel ∧ subscripted
  bool has_pattern = false;             // counts toward the Fig. 1 ratio
};

// The full corpus (paper figures first, then NPB, then SuiteSparse).
const std::vector<Entry>& all_entries();

// Subsets.
std::vector<const Entry*> entries_of(Suite suite);
const Entry* find_entry(const std::string& name);

}  // namespace sspar::corpus
