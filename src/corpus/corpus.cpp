#include "corpus/corpus.h"

#include <stdexcept>

namespace sspar::corpus {

const char* suite_name(Suite suite) {
  switch (suite) {
    case Suite::Paper:
      return "paper";
    case Suite::NPB:
      return "NPB 3.3.1";
    case Suite::SuiteSparse:
      return "SuiteSparse 5.4.0";
  }
  return "?";
}

namespace {

std::vector<Entry> build_corpus() {
  std::vector<Entry> corpus;

  // ==========================================================================
  // Paper figures
  // ==========================================================================

  corpus.push_back(Entry{
      "fig2", Suite::Paper,
      "UA: inverse permutation through injective mt_to_id",
      R"(int nelt;
int mt_to_id[4096];
int id_to_mt[4096];
void f() {
  for (int i = 0; i < nelt; i++) {
    mt_to_id[i] = nelt - 1 - i;
  }
  for (int miel = 0; miel < nelt; miel++) {
    int iel = mt_to_id[miel];
    id_to_mt[iel] = miel;
  }
}
)",
      {{"nelt", 256, 1}},
      /*loops=*/2, /*subscripted=*/1, /*parallel=*/2, /*parallel_subscripted=*/1,
      /*has_pattern=*/true});

  corpus.push_back(Entry{
      "fig3", Suite::Paper,
      "CG: column adjustment over monotonic rowstr ranges",
      R"(int nrows;
int firstcol;
int cols[512];
int nzz[512];
int rowstr[513];
int colidx[8192];
void f() {
  for (int i = 0; i < nrows; i++) {
    nzz[i] = cols[i] > 0 ? 1 : 0;
  }
  rowstr[0] = 0;
  for (int i = 1; i < nrows + 1; i++) {
    rowstr[i] = rowstr[i-1] + nzz[i-1];
  }
  for (int j = 0; j < nrows; j++) {
    for (int k = rowstr[j]; k < rowstr[j+1]; k++) {
      colidx[k] = colidx[k] - firstcol;
    }
  }
}
)",
      {{"nrows", 256, 1}, {"firstcol", 3, 0}},
      4, 2, 3, 2, true});

  corpus.push_back(Entry{
      "fig4", Suite::Paper,
      "CG: compression via the monotonic difference of rowstr and nzloc",
      R"(int nrows;
int w1[512];
int w2[512];
int rowstr[513];
int nzloc[513];
double a[8192];
double v[8192];
int colidx[8192];
int iv[8192];
void f() {
  rowstr[0] = 0;
  nzloc[0] = 0;
  for (int i = 1; i < nrows + 1; i++) {
    rowstr[i] = rowstr[i-1] + 3 + (w1[i] > 0 ? 2 : 0);
  }
  for (int i = 1; i < nrows + 1; i++) {
    nzloc[i] = nzloc[i-1] + (w2[i] > 0 ? 2 : 0);
  }
  for (int j = 0; j < nrows; j++) {
    int j1;
    if (j > 0) {
      j1 = rowstr[j] - nzloc[j-1];
    } else {
      j1 = 0;
    }
    int j2 = rowstr[j+1] - nzloc[j];
    int nza = rowstr[j];
    for (int k = j1; k < j2; k++) {
      a[k] = v[nza];
      colidx[k] = iv[nza];
      nza = nza + 1;
    }
  }
}
)",
      {{"nrows", 256, 1}},
      4, 1, 1, 1, true});

  corpus.push_back(Entry{
      "fig5", Suite::Paper,
      "CSparse: guarded scatter through the injective subset of jmatch",
      R"(int m;
int flag[2048];
int jmatch[2048];
int imatch[8192];
void f() {
  for (int i = 0; i < m; i++) {
    flag[i] = (i % 3 == 0) ? 1 : 0;
  }
  for (int i = 0; i < m; i++) {
    if (flag[i] > 0) {
      jmatch[i] = 2 * i;
    } else {
      jmatch[i] = -1;
    }
  }
  for (int i = 0; i < m; i++) {
    if (jmatch[i] >= 0) {
      imatch[jmatch[i]] = i;
    }
  }
}
)",
      {{"m", 256, 1}},
      3, 1, 3, 1, true});

  corpus.push_back(Entry{
      "fig6", Suite::Paper,
      "CSparse: block scatter Blk[p[k]] with monotonic r and injective p",
      R"(int nb;
int nsz[512];
int r[513];
int pvec[2048];
int Blk[2048];
void f() {
  for (int i = 0; i < nb + 1; i++) {
    nsz[i] = i < nb ? 2 : 0;
  }
  r[0] = 0;
  for (int i = 1; i < nb + 1; i++) {
    r[i] = r[i-1] + nsz[i-1];
  }
  for (int i = 0; i < 2 * nb; i++) {
    pvec[i] = 2 * nb - 1 - i;
  }
  for (int b = 0; b < nb; b++) {
    for (int k = r[b]; k < r[b+1]; k++) {
      Blk[pvec[k]] = b;
    }
  }
}
)",
      {{"nb", 200, 1}},
      5, 2, 3, 1, true});

  corpus.push_back(Entry{
      "fig7", Suite::Paper,
      "UA: 7-wide windows over a strictly monotonic base",
      R"(int nref;
int nelttemp;
int ntemp;
int front[512];
int tree[8192];
void f() {
  for (int i = 0; i < nref; i++) {
    front[i] = i + 1;
  }
  for (int index = 0; index < nref; index++) {
    int nelt = nelttemp + front[index] * 7;
    for (int i = 0; i < 7; i++) {
      tree[nelt + i] = ntemp + (i + 1) % 8;
    }
  }
}
)",
      {{"nref", 256, 1}, {"nelttemp", 0, 0}, {"ntemp", 5, 0}},
      3, 1, 3, 1, true});

  corpus.push_back(Entry{
      "fig8", Suite::Paper,
      "UA: branch-dependent disjoint windows in the refinement step",
      R"(int nelt;
int ich[2048];
int front[2048];
int mt_to_id_old[2048];
int mt_to_id[32768];
int ref_front_id[32768];
void f() {
  for (int i = 0; i < nelt; i++) {
    front[i] = i + 1;
  }
  for (int i = 0; i < nelt; i++) {
    mt_to_id_old[i] = nelt - 1 - i;
  }
  for (int miel = 0; miel < nelt; miel++) {
    int iel = mt_to_id_old[miel];
    int ntemp;
    int mielnew;
    if (ich[iel] == 4) {
      ntemp = (front[miel] - 1) * 7;
      mielnew = miel + ntemp;
    } else {
      ntemp = front[miel] * 7;
      mielnew = miel + ntemp;
    }
    mt_to_id[mielnew] = iel;
    ref_front_id[iel] = nelt + ntemp;
  }
}
)",
      {{"nelt", 512, 1}},
      3, 1, 3, 1, true});

  corpus.push_back(Entry{
      "fig9", Suite::Paper,
      "CG: CSR construction and the rowptr-driven product loop",
      R"(int ROWLEN;
int COLUMNLEN;
int ind;
int index;
int j1;
int a[128][128];
int column_number[16384];
double value[16384];
double vector[16384];
double product_array[16384];
int rowsize[128];
int rowptr[129];
void f() {
  for (int i = 0; i < ROWLEN; i++) {
    int count = 0;
    for (int j = 0; j < COLUMNLEN; j++) {
      if (a[i][j] != 0) {
        count++;
        column_number[index++] = j;
        value[ind++] = a[i][j];
      }
    }
    rowsize[i] = count;
  }
  rowptr[0] = 0;
  for (int i = 1; i < ROWLEN + 1; i++) {
    rowptr[i] = rowptr[i-1] + rowsize[i-1];
  }
  for (int i = 0; i < ROWLEN + 1; i++) {
    if (i == 0) {
      j1 = i;
    } else {
      j1 = rowptr[i-1];
    }
    for (int j = j1; j < rowptr[i]; j++) {
      product_array[j] = value[j] * vector[j];
    }
  }
}
)",
      {{"ROWLEN", 96, 1}, {"COLUMNLEN", 96, 1}},
      5, 1, 2, 1, true});

  // ==========================================================================
  // Interprocedural variants: the index arrays are built inside helper
  // functions, the way real NPB/SuiteSparse codes structure their setup
  // (CG's makea/sparse). The analysis must prove the same properties through
  // function summaries that the hand-inlined twins (fig3/fig9/fig2) prove
  // directly; tests/ipa_test.cpp checks the verdicts are byte-identical.
  // ==========================================================================

  corpus.push_back(Entry{
      "ipa_cg", Suite::Paper,
      "CG setup in a helper: rowstr proven Monotonic_inc via its summary",
      R"(int nrows;
int firstcol;
int cols[512];
int nzz[512];
int rowstr[513];
int colidx[8192];
void build_rowstr() {
  for (int i = 0; i < nrows; i++) {
    nzz[i] = cols[i] > 0 ? 1 : 0;
  }
  rowstr[0] = 0;
  for (int i = 1; i < nrows + 1; i++) {
    rowstr[i] = rowstr[i-1] + nzz[i-1];
  }
}
void f() {
  build_rowstr();
  for (int j = 0; j < nrows; j++) {
    for (int k = rowstr[j]; k < rowstr[j+1]; k++) {
      colidx[k] = colidx[k] - firstcol;
    }
  }
}
)",
      {{"nrows", 256, 1}, {"firstcol", 3, 0}},
      4, 2, 3, 2, true});

  corpus.push_back(Entry{
      "ipa_csr", Suite::Paper,
      "CSR row gathering in a per-row helper called inside the build loop (Fig. 9)",
      R"(int ROWLEN;
int COLUMNLEN;
int ind;
int index;
int j1;
int a[128][128];
int column_number[16384];
double value[16384];
double vector[16384];
double product_array[16384];
int rowsize[128];
int rowptr[129];
void fill_row(int i) {
  int count = 0;
  for (int j = 0; j < COLUMNLEN; j++) {
    if (a[i][j] != 0) {
      count++;
      column_number[index++] = j;
      value[ind++] = a[i][j];
    }
  }
  rowsize[i] = count;
}
void f() {
  for (int i = 0; i < ROWLEN; i++) {
    fill_row(i);
  }
  rowptr[0] = 0;
  for (int i = 1; i < ROWLEN + 1; i++) {
    rowptr[i] = rowptr[i-1] + rowsize[i-1];
  }
  for (int i = 0; i < ROWLEN + 1; i++) {
    if (i == 0) {
      j1 = i;
    } else {
      j1 = rowptr[i-1];
    }
    for (int j = j1; j < rowptr[i]; j++) {
      product_array[j] = value[j] * vector[j];
    }
  }
}
)",
      {{"ROWLEN", 96, 1}, {"COLUMNLEN", 96, 1}},
      5, 1, 2, 1, true});

  corpus.push_back(Entry{
      "ipa_scatter", Suite::Paper,
      "permutation scatter through an int-returning lookup helper (Fig. 2)",
      R"(int nelt;
int mt_to_id[4096];
int id_to_mt[4096];
int lookup(int m) {
  return mt_to_id[m];
}
void fill_perm() {
  for (int i = 0; i < nelt; i++) {
    mt_to_id[i] = nelt - 1 - i;
  }
}
void f() {
  fill_perm();
  for (int miel = 0; miel < nelt; miel++) {
    id_to_mt[lookup(miel)] = miel;
  }
}
)",
      {{"nelt", 512, 1}},
      2, 1, 2, 1, true});

  // ==========================================================================
  // Context-sensitive chains: the fact chain is SPLIT across two helpers the
  // way NPB CG's makea/sparse actually split it — helper A fills the count
  // array, helper B builds the CSR row pointer from it. B's base summary
  // (empty entry facts) cannot bound nzz[i-1], so proving rowstr
  // Monotonic_inc requires re-summarizing B under the caller facts A's
  // summary established (entry-fact projection; see ipa/summary.h).
  // ipa_cg_chain and ipa_spmv_chain share byte-identical helpers over
  // byte-identical globals on purpose: in a batch run the cross-program
  // summary cache hands one entry's helper summaries to the other.
  // ==========================================================================

  corpus.push_back(Entry{
      "ipa_cg_chain", Suite::Paper,
      "CG setup split across two helpers: rowstr Monotonic_inc needs B's "
      "summary specialized to the nzz facts A established",
      R"(int nrows;
int firstcol;
int cols[512];
int nzz[512];
int rowstr[513];
int colidx[8192];
void fill_nzz() {
  for (int i = 0; i < nrows; i++) {
    nzz[i] = cols[i] > 0 ? 1 : 0;
  }
}
void build_rowstr() {
  rowstr[0] = 0;
  for (int i = 1; i < nrows + 1; i++) {
    rowstr[i] = rowstr[i-1] + nzz[i-1];
  }
}
void f() {
  fill_nzz();
  build_rowstr();
  for (int j = 0; j < nrows; j++) {
    for (int k = rowstr[j]; k < rowstr[j+1]; k++) {
      colidx[k] = colidx[k] - firstcol;
    }
  }
}
)",
      {{"nrows", 256, 1}, {"firstcol", 3, 0}},
      4, 2, 3, 2, true});

  corpus.push_back(Entry{
      "ipa_spmv_chain", Suite::Paper,
      "SpMV consumer over the same two-helper rowstr chain (helpers "
      "byte-identical to ipa_cg_chain: shared across programs in a batch)",
      R"(int nrows;
int cols[512];
int nzz[512];
int rowstr[513];
double aval[8192];
double p[513];
double q[513];
void fill_nzz() {
  for (int i = 0; i < nrows; i++) {
    nzz[i] = cols[i] > 0 ? 1 : 0;
  }
}
void build_rowstr() {
  rowstr[0] = 0;
  for (int i = 1; i < nrows + 1; i++) {
    rowstr[i] = rowstr[i-1] + nzz[i-1];
  }
}
void f() {
  fill_nzz();
  build_rowstr();
  for (int j = 0; j < nrows; j++) {
    double sum = 0.0;
    for (int k = rowstr[j]; k < rowstr[j+1]; k++) {
      sum = sum + aval[k];
    }
    q[j] = sum * p[j];
  }
}
)",
      {{"nrows", 256, 1}},
      4, 2, 2, 1, true});

  corpus.push_back(Entry{
      "ipa_csr_chain", Suite::Paper,
      "CSR build (Fig. 9) split across two helpers: rowptr Monotonic_inc "
      "needs build_rowptr specialized to fill_rows' rowsize facts",
      R"(int ROWLEN;
int COLUMNLEN;
int ind;
int index;
int j1;
int a[128][128];
int column_number[16384];
double value[16384];
double vector[16384];
double product_array[16384];
int rowsize[128];
int rowptr[129];
void fill_rows() {
  for (int i = 0; i < ROWLEN; i++) {
    int count = 0;
    for (int j = 0; j < COLUMNLEN; j++) {
      if (a[i][j] != 0) {
        count++;
        column_number[index++] = j;
        value[ind++] = a[i][j];
      }
    }
    rowsize[i] = count;
  }
}
void build_rowptr() {
  rowptr[0] = 0;
  for (int i = 1; i < ROWLEN + 1; i++) {
    rowptr[i] = rowptr[i-1] + rowsize[i-1];
  }
}
void f() {
  fill_rows();
  build_rowptr();
  for (int i = 0; i < ROWLEN + 1; i++) {
    if (i == 0) {
      j1 = i;
    } else {
      j1 = rowptr[i-1];
    }
    for (int j = j1; j < rowptr[i]; j++) {
      product_array[j] = value[j] * vector[j];
    }
  }
}
)",
      {{"ROWLEN", 96, 1}, {"COLUMNLEN", 96, 1}},
      5, 1, 2, 1, true});

  // ==========================================================================
  // Hybrid inspector–executor entries: the enabling property is data-dependent
  // (the index array is an INPUT, not produced by fill code), so it is out of
  // static reach by construction. The analyzer classifies these loops hybrid
  // and the emitter wraps them in a dual-version loop guarded by the matching
  // sspar::rt runtime check (Section 4's fallback when compile-time
  // propagation cannot close the proof).
  // ==========================================================================

  corpus.push_back(Entry{
      "hybrid_perm", Suite::Paper,
      "permutation scatter over an input array: injectivity checked at runtime",
      R"(int n;
int perm[2048];
int inv[2048];
void f(void) {
  for (int i = 0; i < n; i++) {
    inv[perm[i]] = i;
  }
}
)",
      {{"n", 512, 1}},
      1, 1, 0, 0, false});

  corpus.push_back(Entry{
      "hybrid_scatter", Suite::Paper,
      "guarded scatter over an input match array: subset-injectivity checked at runtime",
      R"(int n;
int match[2048];
int out[8192];
void f(void) {
  for (int i = 0; i < n; i++) {
    if (match[i] >= 0) {
      out[match[i]] = i;
    }
  }
}
)",
      {{"n", 512, 1}},
      1, 1, 0, 0, false});

  corpus.push_back(Entry{
      "hybrid_csr", Suite::Paper,
      "CSR product loop over a row pointer built from input counts: monotonicity "
      "checked at runtime",
      R"(int n;
int rowcnt[128];
int rowptr[129];
double value[16384];
double vector[16384];
double product_array[16384];
void build_rowptr(void) {
  rowptr[0] = 0;
  for (int i = 1; i < n + 1; i++) {
    rowptr[i] = rowptr[i-1] + rowcnt[i-1];
  }
}
void f(void) {
  build_rowptr();
  for (int i = 0; i < n; i++) {
    for (int j = rowptr[i]; j < rowptr[i+1]; j++) {
      product_array[j] = value[j] * vector[j];
    }
  }
}
)",
      {{"n", 96, 1}},
      3, 2, 1, 1, true});

  // Symbolic-stride fill: idx[i] = m*i + 2 with m >= 1 is injective, but the
  // stride is not an integer constant, so only the recurrence-chain layer's
  // affine-injectivity proof (not the affine-value rule) parallelizes the
  // scatter loop. Statically parallel — no runtime check needed.
  corpus.push_back(Entry{
      "rec_affine_stride", Suite::Paper,
      "scatter through a symbolic-stride affine fill: injective via the "
      "nonzero-stride recurrence chain",
      R"(int n;
int m;
int idx[4096];
double x[4096];
double y[4096];
void f(void) {
  for (int i = 0; i < n; i++) {
    idx[i] = m * i + 2;
  }
  for (int i = 0; i < n; i++) {
    y[idx[i]] = x[i] + 1.0;
  }
}
)",
      {{"n", 64, 1}, {"m", 3, 1}},
      2, 1, 2, 1, true});

  // Decreasing variant: stride -m <= -1 per position, still injective.
  corpus.push_back(Entry{
      "rec_affine_stride_dec", Suite::Paper,
      "scatter through a decreasing symbolic-stride fill (q - m*i)",
      R"(int n;
int m;
int q;
int idx[4096];
double x[4096];
double y[4096];
void f(void) {
  for (int i = 0; i < n; i++) {
    idx[i] = q - m * i;
  }
  for (int i = 0; i < n; i++) {
    y[idx[i]] = x[i] * 2.0;
  }
}
)",
      {{"n", 64, 1}, {"m", 3, 1}, {"q", 256, 200}},
      2, 1, 2, 1, true});

  // ==========================================================================
  // NAS Parallel Benchmarks v3.3.1 (6 of 10 programs exhibit the pattern)
  // ==========================================================================

  corpus.push_back(Entry{
      "CG", Suite::NPB,
      "sparse matrix-vector product over monotonic rowstr (Figs. 3/4/9)",
      R"(int nrows;
int cols[512];
int nzz[512];
int rowstr[513];
double aval[8192];
double p[513];
double q[513];
void f() {
  for (int i = 0; i < nrows; i++) {
    nzz[i] = cols[i] > 0 ? 2 : 1;
  }
  rowstr[0] = 0;
  for (int i = 1; i < nrows + 1; i++) {
    rowstr[i] = rowstr[i-1] + nzz[i-1];
  }
  for (int j = 0; j < nrows; j++) {
    double sum = 0.0;
    for (int k = rowstr[j]; k < rowstr[j+1]; k++) {
      sum = sum + aval[k];
    }
    q[j] = sum * p[j];
  }
}
)",
      {{"nrows", 256, 1}},
      4, 2, 2, 1, true});

  corpus.push_back(Entry{
      "IS", Suite::NPB,
      "integer sort: scatter through an injective rank array",
      R"(int n;
int key[4096];
int rank_arr[4096];
int sorted[8192];
void f() {
  for (int i = 0; i < n; i++) {
    key[i] = (i * 7 + 3) % n;
  }
  for (int i = 0; i < n; i++) {
    rank_arr[i] = 2 * i;
  }
  for (int i = 0; i < n; i++) {
    sorted[rank_arr[i]] = key[i];
  }
}
)",
      {{"n", 512, 1}},
      3, 1, 3, 1, true});

  corpus.push_back(Entry{
      "MG", Suite::NPB,
      "multigrid: per-level smoothing over prefix-sum level offsets",
      R"(int levels;
int m[128];
int off[129];
double u[8192];
void f() {
  for (int l = 0; l < levels; l++) {
    m[l] = l % 4 + 1;
  }
  off[0] = 0;
  for (int l = 1; l < levels + 1; l++) {
    off[l] = off[l-1] + m[l-1];
  }
  for (int l = 0; l < levels; l++) {
    for (int k = off[l]; k < off[l+1]; k++) {
      u[k] = u[k] * 0.5 + 1.0;
    }
  }
}
)",
      {{"levels", 100, 1}},
      4, 2, 3, 2, true});

  corpus.push_back(Entry{
      "SP", Suite::NPB,
      "scalar penta-diagonal: disjoint 5-wide cell windows",
      R"(int ncells;
int cell_start[512];
double rhs[8192];
void f() {
  for (int c = 0; c < ncells; c++) {
    cell_start[c] = 5 * c;
  }
  for (int c = 0; c < ncells; c++) {
    for (int j = 0; j < 5; j++) {
      rhs[cell_start[c] + j] = 1.0 * c + j;
    }
  }
}
)",
      {{"ncells", 512, 1}},
      3, 2, 3, 2, true});

  corpus.push_back(Entry{
      "LU", Suite::NPB,
      "LU: guarded update through a subset-injective pointer array",
      R"(int n;
int mask[4096];
int ptr[4096];
double z[8192];
void f() {
  for (int i = 0; i < n; i++) {
    mask[i] = (i % 3 == 0) ? 1 : 0;
  }
  for (int i = 0; i < n; i++) {
    if (mask[i] > 0) {
      ptr[i] = 2 * i;
    } else {
      ptr[i] = -1;
    }
  }
  for (int i = 0; i < n; i++) {
    if (ptr[i] >= 0) {
      z[ptr[i]] = 1.0 * i;
    }
  }
}
)",
      {{"n", 512, 1}},
      3, 1, 3, 1, true});

  corpus.push_back(Entry{
      "UA", Suite::NPB,
      "unstructured adaptive: permutation inversion plus refinement windows",
      R"(int nelt;
int mt_to_id[2048];
int id_to_mt[2048];
int front[2048];
int tree[32768];
void f() {
  for (int i = 0; i < nelt; i++) {
    mt_to_id[i] = nelt - 1 - i;
  }
  for (int miel = 0; miel < nelt; miel++) {
    int iel = mt_to_id[miel];
    id_to_mt[iel] = miel;
  }
  for (int i = 0; i < nelt; i++) {
    front[i] = i + 1;
  }
  for (int index = 0; index < nelt; index++) {
    int nelt2 = front[index] * 7;
    for (int i = 0; i < 7; i++) {
      tree[nelt2 + i] = index + (i + 1) % 8;
    }
  }
}
)",
      {{"nelt", 512, 1}},
      5, 2, 5, 2, true});

  corpus.push_back(Entry{
      "BT", Suite::NPB,
      "block tri-diagonal: dense affine stencils (no index arrays)",
      R"(int n;
double lhs[4096];
double rhs[4096];
void f() {
  for (int i = 1; i < n - 1; i++) {
    rhs[i] = lhs[i-1] + lhs[i+1];
  }
  for (int i = 0; i < n; i++) {
    lhs[i] = rhs[i] * 0.5;
  }
}
)",
      {{"n", 512, 3}},
      2, 0, 2, 0, false});

  corpus.push_back(Entry{
      "EP", Suite::NPB,
      "embarrassingly parallel: independent transform + histogram tally",
      R"(int n;
double q[10];
double xx[4096];
void f() {
  for (int i = 0; i < n; i++) {
    xx[i] = (1.0 * ((i * 31 + 7) % 100)) / 100.0;
  }
  for (int i = 0; i < n; i++) {
    int k = (i * 13) % 10;
    q[k] = q[k] + 1.0;
  }
}
)",
      {{"n", 512, 1}},
      2, 0, 1, 0, false});

  corpus.push_back(Entry{
      "FT", Suite::NPB,
      "fast Fourier transform: dense multi-dimensional initialization",
      R"(int n1;
int n2;
double u_r[64][64];
double u_i[64][64];
void f() {
  for (int i = 0; i < n1; i++) {
    for (int j = 0; j < n2; j++) {
      u_r[i][j] = 1.0 * i + j;
      u_i[i][j] = 1.0 * i - j;
    }
  }
}
)",
      {{"n1", 48, 1}, {"n2", 48, 1}},
      2, 0, 0, 0, false});

  corpus.push_back(Entry{
      "DC", Suite::NPB,
      "data cube: cursor-driven while loop (not analyzable statically)",
      R"(int n;
int total;
void f() {
  int i = 0;
  total = 0;
  while (i < n) {
    total = total + i;
    i = i + 1;
  }
}
)",
      {{"n", 512, 1}},
      0, 0, 0, 0, false});

  // ==========================================================================
  // SuiteSparse v5.4.0 (4 of 8 programs exhibit the pattern)
  // ==========================================================================

  corpus.push_back(Entry{
      "CSparse", Suite::SuiteSparse,
      "cs_maxtrans: guarded inverse of the injective match subset (Fig. 5)",
      R"(int m;
int deg[2048];
int jmatch[2048];
int imatch[8192];
void f() {
  for (int i = 0; i < m; i++) {
    deg[i] = (i % 2 == 0) ? 1 : 0;
  }
  for (int i = 0; i < m; i++) {
    if (deg[i] > 0) {
      jmatch[i] = 3 * i;
    } else {
      jmatch[i] = -1;
    }
  }
  for (int i = 0; i < m; i++) {
    if (jmatch[i] >= 0) {
      imatch[jmatch[i]] = i;
    }
  }
}
)",
      {{"m", 256, 1}},
      3, 1, 3, 1, true});

  corpus.push_back(Entry{
      "CXSparse", Suite::SuiteSparse,
      "cs_dmperm: block labeling through a permutation (Fig. 6)",
      R"(int nb;
int bw[512];
int r[513];
int pvec[2048];
int Blk[2048];
void f() {
  for (int i = 0; i < nb + 1; i++) {
    bw[i] = i < nb ? 3 : 0;
  }
  r[0] = 0;
  for (int i = 1; i < nb + 1; i++) {
    r[i] = r[i-1] + bw[i-1];
  }
  for (int i = 0; i < 3 * nb; i++) {
    pvec[i] = 3 * nb - 1 - i;
  }
  for (int b = 0; b < nb; b++) {
    for (int k = r[b]; k < r[b+1]; k++) {
      Blk[pvec[k]] = b;
    }
  }
}
)",
      {{"nb", 170, 1}},
      5, 2, 3, 1, true});

  corpus.push_back(Entry{
      "KLU", Suite::SuiteSparse,
      "klu: per-block solves over monotonic BTF boundaries",
      R"(int nblocks;
int bsz[512];
int btf[513];
double x[8192];
void f() {
  for (int b = 0; b < nblocks; b++) {
    bsz[b] = (b % 2 == 0) ? 3 : 1;
  }
  btf[0] = 0;
  for (int b = 1; b < nblocks + 1; b++) {
    btf[b] = btf[b-1] + bsz[b-1];
  }
  for (int b = 0; b < nblocks; b++) {
    for (int k = btf[b]; k < btf[b+1]; k++) {
      x[k] = x[k] * 2.0 + 1.0;
    }
  }
}
)",
      {{"nblocks", 256, 1}},
      4, 2, 3, 2, true});

  corpus.push_back(Entry{
      "CHOLMOD", Suite::SuiteSparse,
      "cholmod: scatter through the inverse fill-reducing permutation",
      R"(int n;
int perm[2048];
int iperm[2048];
void f() {
  for (int i = 0; i < n; i++) {
    perm[i] = n - 1 - i;
  }
  for (int i = 0; i < n; i++) {
    iperm[perm[i]] = i;
  }
}
)",
      {{"n", 512, 1}},
      2, 1, 2, 1, true});

  corpus.push_back(Entry{
      "AMD", Suite::SuiteSparse,
      "amd: degree initialization + sequential head accumulation",
      R"(int n;
int degree[4096];
int head;
void f() {
  head = 0;
  for (int i = 0; i < n; i++) {
    degree[i] = (i % 5 == 0) ? 2 : 1;
  }
  for (int i = 0; i < n; i++) {
    head = head + degree[i];
  }
}
)",
      {{"n", 512, 1}},
      2, 0, 1, 0, false});

  corpus.push_back(Entry{
      "COLAMD", Suite::SuiteSparse,
      "colamd: dense column scores (affine only)",
      R"(int n;
int score[4096];
int cdeg[4096];
void f() {
  for (int i = 0; i < n; i++) {
    cdeg[i] = (i % 7 == 0) ? 4 : 2;
  }
  for (int i = 0; i < n; i++) {
    score[i] = cdeg[i] * 2 + 1;
  }
}
)",
      {{"n", 512, 1}},
      2, 0, 2, 0, false});

  corpus.push_back(Entry{
      "UMFPACK", Suite::SuiteSparse,
      "umfpack: forward substitution (true flow recurrence)",
      R"(int n;
double lval[4096];
double b[4096];
double y[4096];
void f() {
  for (int i = 0; i < n; i++) {
    lval[i] = 0.5;
    b[i] = 1.0 * i;
  }
  y[0] = b[0];
  for (int i = 1; i < n; i++) {
    y[i] = b[i] - lval[i] * y[i-1];
  }
}
)",
      {{"n", 512, 2}},
      2, 0, 1, 0, false});

  corpus.push_back(Entry{
      "SPQR", Suite::SuiteSparse,
      "spqr: dense blocked Householder-like affine updates",
      R"(int n;
double w[4096];
double v[4096];
void f() {
  for (int i = 0; i < n; i++) {
    v[i] = 0.25 * i;
  }
  for (int i = 0; i < n; i++) {
    w[i] = v[i] * 2.0 - 1.0;
  }
}
)",
      {{"n", 512, 1}},
      2, 0, 2, 0, false});

  return corpus;
}

}  // namespace

const std::vector<Entry>& all_entries() {
  static const std::vector<Entry> corpus = build_corpus();
  return corpus;
}

std::vector<const Entry*> entries_of(Suite suite) {
  std::vector<const Entry*> out;
  for (const Entry& e : all_entries()) {
    if (e.suite == suite) out.push_back(&e);
  }
  return out;
}

const Entry* find_entry(const std::string& name) {
  for (const Entry& e : all_entries()) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

}  // namespace sspar::corpus
