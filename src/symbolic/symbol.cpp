#include "symbolic/symbol.h"

#include <cassert>

namespace sspar::sym {

SymbolId SymbolTable::intern(std::string_view name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

SymbolId SymbolTable::fresh(std::string_view base) {
  std::string candidate(base);
  if (!index_.contains(candidate)) return intern(candidate);
  auto it = fresh_suffix_.find(base);
  if (it == fresh_suffix_.end()) {
    it = fresh_suffix_.emplace(std::string(base), 0).first;
  }
  int& n = it->second;
  do {
    candidate = std::string(base) + "." + std::to_string(n++);
  } while (index_.contains(candidate));
  return intern(candidate);
}

const std::string& SymbolTable::name(SymbolId id) const {
  assert(id < names_.size());
  return names_[id];
}

SymbolId SymbolTable::lookup(std::string_view name) const {
  auto it = index_.find(name);
  return it == index_.end() ? kInvalidSymbol : it->second;
}

}  // namespace sspar::sym
