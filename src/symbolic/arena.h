// Hash-consed expression arena: the single owner of every sym::Expr node.
//
// All expression nodes are bump-allocated in blocks owned by an ExprArena and
// hash-consed at creation: two structurally equal expressions built through
// the factory functions of expr.h are the *same* node. Consequences:
//
//  * sym::equal is a pointer comparison,
//  * sym::hash is a field load (every node caches its structural hash),
//  * re-building an expression that already exists allocates nothing — the
//    intern table is probed with a lightweight "key view" (kind, scalar
//    fields, child-pointer span) and only a miss materializes a node,
//  * containment queries are O(1) (per-node subtree kind masks and a bloom
//    filter over the leaf atoms, both computed once at interning time),
//  * λ/Λ substitutions memoize per-arena, so the analyzer's abstract
//    interpretation stops re-walking identical subtrees.
//
// Threading model: arenas are NOT thread-safe; the intended ownership is one
// arena per pipeline::Session (sessions are per-program and per-worker in
// driver::BatchAnalyzer). The factory functions in expr.h allocate from the
// thread's *current* arena: a Session installs its arena with an ArenaScope
// for the duration of a stage, and code that never installs one (unit tests,
// micro benches) transparently uses a per-thread default arena that lives for
// the thread's lifetime.
//
// Lifetime rule: nodes live exactly as long as their arena. Everything a
// Session derives (FactDB entries, LoopSnapshots, AssumptionContexts) points
// into the session's arena and must not outlive the Session. LoopVerdicts
// carry no ExprPtr and may outlive it freely.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "symbolic/expr.h"

namespace sspar::sym {

class RecurrenceBuilder;

class ExprArena {
 public:
  ExprArena();
  ~ExprArena();

  ExprArena(const ExprArena&) = delete;
  ExprArena& operator=(const ExprArena&) = delete;

  // The arena new nodes are interned into: the innermost live ArenaScope's
  // arena, or a lazily created thread-local default arena.
  static ExprArena& current();

  // --- Node creation (all hash-consed) -------------------------------------

  ExprPtr bottom() const { return bottom_; }
  ExprPtr constant(int64_t v);
  ExprPtr symbol(SymbolId id);
  ExprPtr iter_start(SymbolId id);
  ExprPtr loop_start(SymbolId id);

  // Generic interning entry point used by the canonicalizing factories in
  // expr.cpp. `ops`/`coeffs` describe an already-canonical node (children
  // interned, Add/Mul/Min/Max operands sorted); the arena only deduplicates.
  ExprPtr node(ExprKind kind, int64_t value, SymbolId symbol, const ExprPtr* ops, size_t nops,
               const int64_t* coeffs = nullptr, size_t ncoeffs = 0);

  // --- Substitution memo (subst_sym / subst_iter_start / subst_loop_start) --

  struct SubstKey {
    const Expr* node = nullptr;
    const Expr* replacement = nullptr;
    SymbolId symbol = kInvalidSymbol;
    ExprKind kind = ExprKind::Sym;
    bool operator==(const SubstKey&) const = default;
  };
  // Null when not memoized.
  ExprPtr memo_get(const SubstKey& key) const;
  void memo_put(const SubstKey& key, ExprPtr result);

  // True if `e` was interned by this arena (O(1); used by tests/asserts).
  bool owns(const ExprPtr& e) const;

  // --- Recurrence chains (symbolic/recurrence.h) ----------------------------
  // The arena's chains-of-recurrences builder, created on first use. Chains
  // hold ExprPtrs into this arena, so anchoring the builder here aligns the
  // two lifetimes; per-(expr, loop) chain memoization lives in the builder.
  RecurrenceBuilder& recurrences();

  // --- Introspection ---------------------------------------------------------

  struct Stats {
    size_t nodes = 0;        // unique nodes interned
    size_t intern_hits = 0;  // factory calls satisfied without allocating
    size_t memo_entries = 0;
  };
  Stats stats() const;
  size_t node_count() const { return nodes_.size(); }

 private:
  struct TableSlot {
    size_t hash = 0;
    const Expr* node = nullptr;
  };

  Expr* allocate(ExprKind kind);
  void insert(size_t hash, const Expr* node);
  void rehash(size_t new_capacity);

  // Bump blocks (nodes never move; ids index nodes_).
  static constexpr size_t kBlockNodes = 256;
  std::vector<std::unique_ptr<std::byte[]>> blocks_;
  size_t block_used_ = kBlockNodes;
  std::vector<const Expr*> nodes_;

  // Open-addressed intern table (linear probing, power-of-two capacity).
  std::vector<TableSlot> table_;
  size_t table_used_ = 0;
  mutable size_t intern_hits_ = 0;

  // Hot-atom caches: small integer constants and per-symbol atoms resolve
  // without touching the intern table.
  static constexpr int64_t kConstLo = -1;
  static constexpr int64_t kConstHi = 16;
  const Expr* small_consts_[kConstHi - kConstLo + 1] = {};
  std::vector<const Expr*> sym_cache_;   // indexed by SymbolId
  std::vector<const Expr*> iter_cache_;  // indexed by SymbolId
  std::vector<const Expr*> loop_cache_;  // indexed by SymbolId

  struct SubstKeyHash {
    size_t operator()(const SubstKey& k) const;
  };
  std::unordered_map<SubstKey, const Expr*, SubstKeyHash> subst_memo_;

  std::unique_ptr<RecurrenceBuilder> recurrences_;

  const Expr* bottom_ = nullptr;
};

// RAII: installs `arena` as ExprArena::current() for the enclosing scope.
// Scopes nest; destruction restores the previous arena (or the thread
// default). Must be destroyed on the thread that created it.
class ArenaScope {
 public:
  explicit ArenaScope(ExprArena& arena);
  ~ArenaScope();

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  ExprArena* prev_;
};

}  // namespace sspar::sym
