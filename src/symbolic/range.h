// Symbolic may-ranges [lo : hi] (paper Section 3.2).
//
// A Range bounds the possible values of a scalar or array element. A null
// bound means unbounded in that direction; bottom() (both bounds null) is the
// unknown value ⊥. Bounds never contain the Bottom expression: factory
// functions map ⊥ bounds to null.
#pragma once

#include <optional>
#include <string>

#include "symbolic/expr.h"

namespace sspar::sym {

class Range {
 public:
  Range() = default;  // bottom

  static Range exact(ExprPtr e);
  static Range of(ExprPtr lo, ExprPtr hi);
  static Range bottom() { return Range(); }
  static Range of_consts(int64_t lo, int64_t hi) {
    return of(make_const(lo), make_const(hi));
  }

  const ExprPtr& lo() const { return lo_; }
  const ExprPtr& hi() const { return hi_; }
  bool lo_bounded() const { return lo_ != nullptr; }
  bool hi_bounded() const { return hi_ != nullptr; }
  bool is_bottom() const { return !lo_ && !hi_; }

  // Exact (single value) if both bounds are equal expressions.
  bool is_exact() const { return lo_ && hi_ && equal(lo_, hi_); }
  // The single value of an exact range.
  ExprPtr exact_value() const { return is_exact() ? lo_ : nullptr; }

  bool operator==(const Range& other) const {
    return equal(lo_, other.lo_) && equal(hi_, other.hi_);
  }

  std::string to_string(const SymbolTable& syms) const;

 private:
  ExprPtr lo_ = nullptr;
  ExprPtr hi_ = nullptr;
};

// Interval arithmetic over symbolic bounds.
Range range_add(const Range& a, const Range& b);
Range range_sub(const Range& a, const Range& b);
Range range_negate(const Range& a);
Range range_mul_const(const Range& a, int64_t c);
// Multiply by an expression known to be >= 0 (used for Λ + n*k aggregation).
Range range_mul_nonneg(const Range& a, const ExprPtr& factor);
// Union; uses min/max expressions when the ordering is not provable.
Range range_join(const Range& a, const Range& b);

// Substitutes a symbol by a *range* throughout an expression, yielding the
// interval of possible results. `env` maps each substituted symbol to its
// range; symbols not in the map stay symbolic (exact). Non-linear atoms whose
// arguments mention substituted symbols degrade to unbounded.
struct RangeEnv {
  std::vector<std::pair<SymbolId, Range>> entries;         // Sym atoms
  std::vector<std::pair<SymbolId, Range>> lambda_entries;  // IterStart atoms
  const Range* find(SymbolId id) const {
    for (const auto& [sym, r] : entries) {
      if (sym == id) return &r;
    }
    return nullptr;
  }
  const Range* find_lambda(SymbolId id) const {
    for (const auto& [sym, r] : lambda_entries) {
      if (sym == id) return &r;
    }
    return nullptr;
  }
};
Range eval_range(const ExprPtr& e, const RangeEnv& env);

// Rewrites IterStart(λ) to LoopStart(Λ) for every symbol (used when a
// one-iteration effect is promoted to a whole-loop effect).
ExprPtr promote_iter_to_loop(const ExprPtr& e);
Range promote_iter_to_loop(const Range& r);

}  // namespace sspar::sym
