// Interned symbols shared by the symbolic algebra and the analysis passes.
//
// A symbol stands for an integer-valued program entity: a scalar variable, a
// loop index, an array (when used as the base of an ArrayElem expression), or
// a free parameter such as a problem size N.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace sspar::sym {

using SymbolId = uint32_t;
inline constexpr SymbolId kInvalidSymbol = ~0u;

class SymbolTable {
 public:
  SymbolId intern(std::string_view name);

  // Creates a fresh symbol with a unique name derived from `base`.
  SymbolId fresh(std::string_view base);

  const std::string& name(SymbolId id) const;
  size_t size() const { return names_.size(); }

  // Returns kInvalidSymbol if not present.
  SymbolId lookup(std::string_view name) const;

 private:
  // Transparent hash: lets find() take a string_view without materializing a
  // temporary std::string per lookup.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const { return std::hash<std::string_view>{}(s); }
  };

  std::vector<std::string> names_;
  std::unordered_map<std::string, SymbolId, StringHash, std::equal_to<>> index_;
  // First ".<n>" suffix fresh() should try per base name. Suffixes are only
  // ever consumed (the index never shrinks), so scanning forward from the
  // cached point produces the same names as scanning from zero — without the
  // quadratic re-probing when one base ("i") is declared hundreds of times.
  std::unordered_map<std::string, int, StringHash, std::equal_to<>> fresh_suffix_;
};

}  // namespace sspar::sym
