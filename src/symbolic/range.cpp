#include "symbolic/range.h"

namespace sspar::sym {

namespace {
ExprPtr clean(ExprPtr e) {
  if (!e || is_bottom(e)) return nullptr;
  return e;
}
}  // namespace

Range Range::exact(ExprPtr e) { return of(e, e); }

Range Range::of(ExprPtr lo, ExprPtr hi) {
  Range r;
  r.lo_ = clean(std::move(lo));
  r.hi_ = clean(std::move(hi));
  return r;
}

std::string Range::to_string(const SymbolTable& syms) const {
  if (is_bottom()) return "_|_";
  std::string out = "[";
  out += lo_ ? sym::to_string(lo_, syms) : "-inf";
  out += " : ";
  out += hi_ ? sym::to_string(hi_, syms) : "+inf";
  out += "]";
  return out;
}

Range range_add(const Range& a, const Range& b) {
  ExprPtr lo = (a.lo() && b.lo()) ? add(a.lo(), b.lo()) : nullptr;
  ExprPtr hi = (a.hi() && b.hi()) ? add(a.hi(), b.hi()) : nullptr;
  return Range::of(std::move(lo), std::move(hi));
}

Range range_negate(const Range& a) {
  ExprPtr lo = a.hi() ? negate(a.hi()) : nullptr;
  ExprPtr hi = a.lo() ? negate(a.lo()) : nullptr;
  return Range::of(std::move(lo), std::move(hi));
}

Range range_sub(const Range& a, const Range& b) { return range_add(a, range_negate(b)); }

Range range_mul_const(const Range& a, int64_t c) {
  if (c == 0) return Range::exact(make_const(0));
  if (c > 0) {
    return Range::of(a.lo() ? mul_const(a.lo(), c) : nullptr,
                     a.hi() ? mul_const(a.hi(), c) : nullptr);
  }
  return Range::of(a.hi() ? mul_const(a.hi(), c) : nullptr,
                   a.lo() ? mul_const(a.lo(), c) : nullptr);
}

Range range_mul_nonneg(const Range& a, const ExprPtr& factor) {
  if (!factor || is_bottom(factor)) return Range::bottom();
  if (auto c = const_value(factor)) return range_mul_const(a, *c);
  return Range::of(a.lo() ? mul(a.lo(), factor) : nullptr,
                   a.hi() ? mul(a.hi(), factor) : nullptr);
}

Range range_join(const Range& a, const Range& b) {
  ExprPtr lo = (a.lo() && b.lo()) ? smin(a.lo(), b.lo()) : nullptr;
  ExprPtr hi = (a.hi() && b.hi()) ? smax(a.hi(), b.hi()) : nullptr;
  return Range::of(std::move(lo), std::move(hi));
}

namespace {

bool mentions_env(const ExprPtr& e, const RangeEnv& env) {
  return any_of(e, [&env](const Expr& n) {
    if (n.kind == ExprKind::Sym && env.find(n.symbol) != nullptr) return true;
    return n.kind == ExprKind::IterStart && env.find_lambda(n.symbol) != nullptr;
  });
}

Range atom_range(const ExprPtr& atom, const RangeEnv& env) {
  switch (atom->kind) {
    case ExprKind::Sym:
      if (const Range* r = env.find(atom->symbol)) return *r;
      return Range::exact(atom);
    case ExprKind::IterStart:
      if (const Range* r = env.find_lambda(atom->symbol)) return *r;
      return Range::exact(atom);
    case ExprKind::Min:
    case ExprKind::Max: {
      // min/max of intervals: combine bounds componentwise.
      Range acc = atom_range(atom->operands[0], env);
      for (size_t i = 1; i < atom->operands.size(); ++i) {
        Range next = atom_range(atom->operands[i], env);
        auto pick = [&](const ExprPtr& x, const ExprPtr& y) -> ExprPtr {
          if (!x || !y) return nullptr;
          return atom->kind == ExprKind::Min ? smin(x, y) : smax(x, y);
        };
        acc = Range::of(pick(acc.lo(), next.lo()), pick(acc.hi(), next.hi()));
      }
      return acc;
    }
    case ExprKind::Mod: {
      // mod(x, c) with c > 0 lies in [0, c-1] whatever x is (floor-mod).
      if (auto c = const_value(atom->operands[1]); c && *c > 0) {
        return Range::of_consts(0, *c - 1);
      }
      if (mentions_env(atom, env)) return Range::bottom();
      return Range::exact(atom);
    }
    default:
      // Non-linear atom: if its arguments are untouched by the env, it stays
      // symbolic; otherwise we cannot bound it.
      if (mentions_env(atom, env)) return Range::bottom();
      return Range::exact(atom);
  }
}

}  // namespace

Range eval_range(const ExprPtr& e, const RangeEnv& env) {
  if (!e || is_bottom(e)) return Range::bottom();
  LinearForm lf = to_linear(e);
  if (lf.bottom) return Range::bottom();
  Range acc = Range::exact(make_const(lf.constant));
  for (const auto& [atom, coeff] : lf.terms) {
    acc = range_add(acc, range_mul_const(atom_range(atom, env), coeff));
    if (acc.is_bottom()) return acc;
  }
  return acc;
}

ExprPtr promote_iter_to_loop(const ExprPtr& e) {
  // O(1) via the subtree kind mask: most promoted expressions carry no λ.
  if (e && !contains_kind(e, ExprKind::IterStart)) return e;
  return rewrite(e, [](const ExprPtr& n) -> std::optional<ExprPtr> {
    if (n->kind == ExprKind::IterStart) return make_loop_start(n->symbol);
    return std::nullopt;
  });
}

Range promote_iter_to_loop(const Range& r) {
  return Range::of(r.lo() ? promote_iter_to_loop(r.lo()) : nullptr,
                   r.hi() ? promote_iter_to_loop(r.hi()) : nullptr);
}

}  // namespace sspar::sym
