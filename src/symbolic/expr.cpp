#include "symbolic/expr.h"

#include <algorithm>
#include <cassert>

#include "symbolic/arena.h"

namespace sspar::sym {

namespace {

// Append-only vector with N inline slots; spills to the heap only past N.
// Backs every canonicalization scratch list so the hot path allocates
// nothing for typical operand counts.
template <typename T, size_t N>
class InlineVec {
 public:
  void push(const T& v) {
    if (heap_.empty()) {
      if (size_ < N) {
        buf_[size_++] = v;
        return;
      }
      heap_.assign(buf_, buf_ + N);
    }
    heap_.push_back(v);
  }
  T* data() { return heap_.empty() ? buf_ : heap_.data(); }
  size_t size() const { return heap_.empty() ? size_ : heap_.size(); }
  T& operator[](size_t i) { return data()[i]; }

 private:
  T buf_[N];
  size_t size_ = 0;
  std::vector<T> heap_;
};

// Flat accumulator of (atom, coefficient) pairs: the replacement for the old
// std::map-based TermMap. Atoms are interned, so the duplicate check is a
// pointer scan over a handful of entries; term lists stay in a small inline
// buffer, making canonicalization allocation-free for typical expressions.
class TermAccum {
 public:
  bool bottom = false;
  int64_t constant = 0;

  void accumulate(const ExprPtr& e, int64_t scale) {
    if (bottom || scale == 0) return;
    switch (e->kind) {
      case ExprKind::Bottom:
        bottom = true;
        return;
      case ExprKind::Const:
        constant += scale * e->value;
        return;
      case ExprKind::Add:
        constant += scale * e->value;
        for (size_t i = 0; i < e->operands.size(); ++i) {
          add_atom(e->operands[i], scale * e->coeffs[i]);
        }
        return;
      default:
        add_atom(e, scale);
        return;
    }
  }

  void add_atom(const ExprPtr& atom, int64_t coeff) {
    // Same-arena equal atoms are the same pointer; the structural fallback in
    // build() covers the (test-only) cross-arena case.
    for (size_t i = 0; i < terms_.size(); ++i) {
      if (terms_[i].first == atom) {
        terms_[i].second += coeff;
        return;
      }
    }
    terms_.push({atom, coeff});
  }

  // Canonical node for Σ coeff_k * atom_k + constant.
  ExprPtr build() {
    if (bottom) return make_bottom();
    std::pair<ExprPtr, int64_t>* data = terms_.data();
    size_t n = terms_.size();
    std::sort(data, data + n, [](const auto& a, const auto& b) {
      return compare(a.first, b.first) < 0;
    });
    // Merge structurally equal neighbours (cross-arena atoms only) and drop
    // zero coefficients in one pass.
    size_t out = 0;
    for (size_t i = 0; i < n;) {
      ExprPtr atom = data[i].first;
      int64_t coeff = data[i].second;
      size_t j = i + 1;
      while (j < n && (data[j].first == atom || compare(data[j].first, atom) == 0)) {
        coeff += data[j].second;
        ++j;
      }
      if (coeff != 0) data[out++] = {atom, coeff};
      i = j;
    }
    if (out == 0) return make_const(constant);
    if (out == 1 && data[0].second == 1 && constant == 0) return data[0].first;
    InlineVec<ExprPtr, 16> ops;
    InlineVec<int64_t, 16> coeffs;
    for (size_t i = 0; i < out; ++i) {
      ops.push(data[i].first);
      coeffs.push(data[i].second);
    }
    return ExprArena::current().node(ExprKind::Add, constant, kInvalidSymbol, ops.data(), out,
                                     coeffs.data(), out);
  }

  // Copies the (unsorted is fine — caller sorts) terms out for LinearForm.
  void export_terms(std::vector<std::pair<ExprPtr, int64_t>>& out) {
    out.reserve(terms_.size());
    for (size_t i = 0; i < terms_.size(); ++i) {
      if (terms_[i].second != 0) out.push_back(terms_[i]);
    }
  }

 private:
  InlineVec<std::pair<ExprPtr, int64_t>, 16> terms_;
};

ExprPtr linear_combine(const ExprPtr& a, int64_t ca, const ExprPtr& b, int64_t cb) {
  TermAccum acc;
  if (a) acc.accumulate(a, ca);
  if (b) acc.accumulate(b, cb);
  return acc.build();
}

// Appends `e` to `out`, splicing in the operands of nodes of kind `flatten`
// (Mul factors into a product, Min/Max operands into a combined min/max).
void flatten_into(InlineVec<ExprPtr, 8>& out, const ExprPtr& e, ExprKind flatten) {
  if (e->kind == flatten) {
    for (const auto& o : e->operands) out.push(o);
  } else {
    out.push(e);
  }
}

// Product of two canonical atoms/atom-products -> canonical Mul (or atom).
ExprPtr atom_product(const ExprPtr& a, const ExprPtr& b) {
  InlineVec<ExprPtr, 8> factors;
  flatten_into(factors, a, ExprKind::Mul);
  flatten_into(factors, b, ExprKind::Mul);
  std::sort(factors.data(), factors.data() + factors.size(),
            [](const ExprPtr& x, const ExprPtr& y) { return compare(x, y) < 0; });
  return ExprArena::current().node(ExprKind::Mul, 0, kInvalidSymbol, factors.data(),
                                   factors.size());
}

int compare_vec(const std::vector<ExprPtr>& a, const std::vector<ExprPtr>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = 0; i < a.size(); ++i) {
    int c = compare(a[i], b[i]);
    if (c != 0) return c;
  }
  return 0;
}

}  // namespace

ExprPtr make_const(int64_t v) { return ExprArena::current().constant(v); }
ExprPtr make_sym(SymbolId id) { return ExprArena::current().symbol(id); }
ExprPtr make_iter_start(SymbolId id) { return ExprArena::current().iter_start(id); }
ExprPtr make_loop_start(SymbolId id) { return ExprArena::current().loop_start(id); }

ExprPtr make_array_elem(SymbolId array, ExprPtr index) {
  if (!index || is_bottom(index)) return make_bottom();
  return ExprArena::current().node(ExprKind::ArrayElem, 0, array, &index, 1);
}

ExprPtr make_bottom() { return ExprArena::current().bottom(); }

ExprPtr add(const ExprPtr& a, const ExprPtr& b) { return linear_combine(a, 1, b, 1); }
ExprPtr sub(const ExprPtr& a, const ExprPtr& b) { return linear_combine(a, 1, b, -1); }
ExprPtr negate(const ExprPtr& a) { return linear_combine(a, -1, nullptr, 0); }
ExprPtr mul_const(const ExprPtr& a, int64_t c) { return linear_combine(a, c, nullptr, 0); }

ExprPtr mul(const ExprPtr& a, const ExprPtr& b) {
  if (!a || !b || is_bottom(a) || is_bottom(b)) return make_bottom();
  if (auto ca = const_value(a)) return mul_const(b, *ca);
  if (auto cb = const_value(b)) return mul_const(a, *cb);
  // Distribute sums (operand counts are tiny in practice).
  LinearForm la = to_linear(a);
  LinearForm lb = to_linear(b);
  TermAccum acc;
  // (Σ ci*ti + c0) * (Σ dj*uj + d0)
  acc.constant += la.constant * lb.constant;
  for (const auto& [t, c] : la.terms) acc.accumulate(t, c * lb.constant);
  for (const auto& [u, d] : lb.terms) acc.accumulate(u, d * la.constant);
  for (const auto& [t, c] : la.terms) {
    for (const auto& [u, d] : lb.terms) {
      acc.accumulate(atom_product(t, u), c * d);
    }
  }
  return acc.build();
}

ExprPtr div_floor(const ExprPtr& a, const ExprPtr& b) {
  if (!a || !b || is_bottom(a) || is_bottom(b)) return make_bottom();
  auto cb = const_value(b);
  if (cb && *cb == 0) return make_bottom();
  if (cb && *cb == 1) return a;
  if (auto ca = const_value(a)) {
    if (cb) {
      int64_t q = *ca / *cb;  // exact in our uses; truncation acceptable otherwise
      if ((*ca % *cb) != 0 && ((*ca < 0) != (*cb < 0))) --q;  // floor semantics
      return make_const(q);
    }
    if (*ca == 0) return make_const(0);
  }
  ExprPtr ops[2] = {a, b};
  return ExprArena::current().node(ExprKind::Div, 0, kInvalidSymbol, ops, 2);
}

ExprPtr mod(const ExprPtr& a, const ExprPtr& b) {
  if (!a || !b || is_bottom(a) || is_bottom(b)) return make_bottom();
  auto cb = const_value(b);
  if (cb && *cb == 0) return make_bottom();
  if (cb && (*cb == 1 || *cb == -1)) return make_const(0);
  if (auto ca = const_value(a); ca && cb) {
    int64_t r = *ca % *cb;
    if (r != 0 && ((r < 0) != (*cb < 0))) r += *cb;  // floor-mod
    return make_const(r);
  }
  ExprPtr ops[2] = {a, b};
  return ExprArena::current().node(ExprKind::Mod, 0, kInvalidSymbol, ops, 2);
}

namespace {
ExprPtr min_max(ExprKind kind, const ExprPtr& a, const ExprPtr& b) {
  if (!a || !b || is_bottom(a) || is_bottom(b)) return make_bottom();
  if (equal(a, b)) return a;
  auto ca = const_value(a);
  auto cb = const_value(b);
  if (ca && cb) {
    return make_const(kind == ExprKind::Min ? std::min(*ca, *cb) : std::max(*ca, *cb));
  }
  // Fold a difference that is a known constant: min(x, x+3) == x.
  if (auto d = const_value(sub(a, b))) {
    bool a_smaller = *d <= 0;
    if (kind == ExprKind::Min) return a_smaller ? a : b;
    return a_smaller ? b : a;
  }
  InlineVec<ExprPtr, 8> ops;
  flatten_into(ops, a, kind);
  flatten_into(ops, b, kind);
  ExprPtr* data = ops.data();
  size_t count = ops.size();
  std::sort(data, data + count,
            [](const ExprPtr& x, const ExprPtr& y) { return compare(x, y) < 0; });
  count = static_cast<size_t>(
      std::unique(data, data + count,
                  [](const ExprPtr& x, const ExprPtr& y) { return equal(x, y); }) -
      data);
  if (count == 1) return data[0];
  return ExprArena::current().node(kind, 0, kInvalidSymbol, data, count);
}
}  // namespace

ExprPtr smin(const ExprPtr& a, const ExprPtr& b) { return min_max(ExprKind::Min, a, b); }
ExprPtr smax(const ExprPtr& a, const ExprPtr& b) { return min_max(ExprKind::Max, a, b); }

bool is_bottom(const ExprPtr& e) { return !e || e->kind == ExprKind::Bottom; }
bool is_const(const ExprPtr& e) { return e && e->kind == ExprKind::Const; }

std::optional<int64_t> const_value(const ExprPtr& e) {
  if (is_const(e)) return e->value;
  return std::nullopt;
}

int compare(const ExprPtr& a, const ExprPtr& b) {
  if (a == b) return 0;
  if (!a || !b) return !a ? -1 : 1;
  if (a->kind != b->kind) return a->kind < b->kind ? -1 : 1;
  if (a->value != b->value) return a->value < b->value ? -1 : 1;
  if (a->symbol != b->symbol) return a->symbol < b->symbol ? -1 : 1;
  if (a->coeffs != b->coeffs) return a->coeffs < b->coeffs ? -1 : 1;
  return compare_vec(a->operands, b->operands);
}

bool equal(const ExprPtr& a, const ExprPtr& b) { return a == b || compare(a, b) == 0; }

size_t hash(const ExprPtr& e) { return e ? e->hash_value : 0; }

bool contains_kind(const ExprPtr& e, ExprKind kind) {
  return e && (e->subtree_kinds & kind_bit(kind)) != 0;
}

bool contains_sym(const ExprPtr& e, SymbolId id) {
  if (!e || !(e->subtree_kinds & kind_bit(ExprKind::Sym))) return false;
  const uint64_t bit = atom_bloom_bit(ExprKind::Sym, id);
  if (!(e->atom_bloom & bit)) return false;
  return any_of(e, [id](const Expr& n) { return n.kind == ExprKind::Sym && n.symbol == id; });
}

namespace {
void collect_array_elems_rec(const ExprPtr& n, std::optional<SymbolId> array,
                             std::vector<ExprPtr>& out) {
  if (!n || !(n->subtree_kinds & kind_bit(ExprKind::ArrayElem))) return;
  if (n->kind == ExprKind::ArrayElem && (!array || n->symbol == *array)) {
    out.push_back(n);
  }
  for (const auto& o : n->operands) collect_array_elems_rec(o, array, out);
}
}  // namespace

std::vector<ExprPtr> collect_array_elems(const ExprPtr& e, std::optional<SymbolId> array) {
  std::vector<ExprPtr> out;
  collect_array_elems_rec(e, array, out);
  return out;
}

int64_t LinearForm::coeff_of(const ExprPtr& atom) const {
  for (const auto& [t, c] : terms) {
    if (equal(t, atom)) return c;
  }
  return 0;
}

LinearForm to_linear(const ExprPtr& e) {
  LinearForm lf;
  if (!e || is_bottom(e)) {
    lf.bottom = true;
    return lf;
  }
  TermAccum acc;
  acc.accumulate(e, 1);
  lf.bottom = acc.bottom;
  lf.constant = acc.constant;
  acc.export_terms(lf.terms);
  std::sort(lf.terms.begin(), lf.terms.end(),
            [](const auto& a, const auto& b) { return compare(a.first, b.first) < 0; });
  return lf;
}

ExprPtr from_linear(const LinearForm& lf) {
  if (lf.bottom) return make_bottom();
  TermAccum acc;
  acc.constant = lf.constant;
  for (const auto& [atom, coeff] : lf.terms) acc.add_atom(atom, coeff);
  return acc.build();
}

std::optional<std::pair<int64_t, int64_t>> as_affine_in(const ExprPtr& e, SymbolId id) {
  LinearForm lf = to_linear(e);
  if (lf.bottom) return std::nullopt;
  int64_t c1 = 0;
  for (const auto& [atom, coeff] : lf.terms) {
    if (atom->kind == ExprKind::Sym && atom->symbol == id) {
      c1 = coeff;
    } else if (contains_sym(atom, id)) {
      return std::nullopt;  // id occurs non-linearly (inside Mul/Div/ArrayElem...)
    }
  }
  // All remaining terms must be free of `id` (checked above); fold them into
  // the "constant" only when there are none, otherwise this is not affine
  // with integer constant parts.
  for (const auto& [atom, coeff] : lf.terms) {
    (void)coeff;
    if (atom->kind == ExprKind::Sym && atom->symbol == id) continue;
    return std::nullopt;
  }
  return std::make_pair(c1, lf.constant);
}

std::optional<AffineSplit> split_affine_in(const ExprPtr& e, SymbolId id) {
  LinearForm lf = to_linear(e);
  if (lf.bottom) return std::nullopt;
  AffineSplit split;
  LinearForm rest;
  rest.constant = lf.constant;
  for (const auto& [atom, coeff] : lf.terms) {
    if (atom->kind == ExprKind::Sym && atom->symbol == id) {
      split.coeff = coeff;
    } else if (contains_sym(atom, id)) {
      return std::nullopt;  // id occurs non-linearly
    } else {
      rest.terms.emplace_back(atom, coeff);
    }
  }
  split.rest = from_linear(rest);
  return split;
}

ExprPtr rewrite(const ExprPtr& e, const RewriteFn& fn) {
  if (!e) return e;
  // Top-down: a replacement is final (children of the replacement are not
  // revisited), which gives capture-free substitution semantics.
  if (auto replaced = fn(e)) return *replaced;
  ExprPtr rebuilt = nullptr;
  switch (e->kind) {
    case ExprKind::Const:
    case ExprKind::Sym:
    case ExprKind::IterStart:
    case ExprKind::LoopStart:
    case ExprKind::Bottom:
      rebuilt = e;
      break;
    case ExprKind::ArrayElem: {
      ExprPtr index = rewrite(e->operands[0], fn);
      rebuilt = index == e->operands[0] ? e : make_array_elem(e->symbol, index);
      break;
    }
    case ExprKind::Add: {
      TermAccum acc;
      acc.constant = e->value;
      for (size_t i = 0; i < e->operands.size(); ++i) {
        acc.accumulate(rewrite(e->operands[i], fn), e->coeffs[i]);
      }
      rebuilt = acc.build();
      break;
    }
    case ExprKind::Mul: {
      ExprPtr acc = make_const(1);
      for (const auto& o : e->operands) acc = mul(acc, rewrite(o, fn));
      rebuilt = acc;
      break;
    }
    case ExprKind::Div:
      rebuilt = div_floor(rewrite(e->operands[0], fn), rewrite(e->operands[1], fn));
      break;
    case ExprKind::Mod:
      rebuilt = mod(rewrite(e->operands[0], fn), rewrite(e->operands[1], fn));
      break;
    case ExprKind::Min:
    case ExprKind::Max: {
      ExprPtr acc = rewrite(e->operands[0], fn);
      for (size_t i = 1; i < e->operands.size(); ++i) {
        auto next = rewrite(e->operands[i], fn);
        acc = e->kind == ExprKind::Min ? smin(acc, next) : smax(acc, next);
      }
      rebuilt = acc;
      break;
    }
  }
  return rebuilt;
}

namespace {
ExprPtr subst_kind(const ExprPtr& e, ExprKind kind, SymbolId id, const ExprPtr& replacement) {
  if (!e || !(e->subtree_kinds & kind_bit(kind))) return e;
  if (!(e->atom_bloom & atom_bloom_bit(kind, id))) return e;
  if (e->kind == kind && e->symbol == id) return replacement;
  ExprArena& arena = ExprArena::current();
  ExprArena::SubstKey key{e, replacement, id, kind};
  if (ExprPtr memo = arena.memo_get(key)) return memo;
  ExprPtr result = nullptr;
  switch (e->kind) {
    case ExprKind::Const:
    case ExprKind::Sym:
    case ExprKind::IterStart:
    case ExprKind::LoopStart:
    case ExprKind::Bottom:
      result = e;  // leaf of another kind/symbol (bloom false positive)
      break;
    case ExprKind::ArrayElem: {
      ExprPtr index = subst_kind(e->operands[0], kind, id, replacement);
      result = index == e->operands[0] ? e : make_array_elem(e->symbol, index);
      break;
    }
    case ExprKind::Add: {
      TermAccum acc;
      acc.constant = e->value;
      for (size_t i = 0; i < e->operands.size(); ++i) {
        acc.accumulate(subst_kind(e->operands[i], kind, id, replacement), e->coeffs[i]);
      }
      result = acc.build();
      break;
    }
    case ExprKind::Mul: {
      ExprPtr acc = make_const(1);
      for (const auto& o : e->operands) acc = mul(acc, subst_kind(o, kind, id, replacement));
      result = acc;
      break;
    }
    case ExprKind::Div:
      result = div_floor(subst_kind(e->operands[0], kind, id, replacement),
                         subst_kind(e->operands[1], kind, id, replacement));
      break;
    case ExprKind::Mod:
      result = mod(subst_kind(e->operands[0], kind, id, replacement),
                   subst_kind(e->operands[1], kind, id, replacement));
      break;
    case ExprKind::Min:
    case ExprKind::Max: {
      ExprPtr acc = subst_kind(e->operands[0], kind, id, replacement);
      for (size_t i = 1; i < e->operands.size(); ++i) {
        auto next = subst_kind(e->operands[i], kind, id, replacement);
        acc = e->kind == ExprKind::Min ? smin(acc, next) : smax(acc, next);
      }
      result = acc;
      break;
    }
  }
  arena.memo_put(key, result);
  return result;
}
}  // namespace

ExprPtr subst_sym(const ExprPtr& e, SymbolId id, const ExprPtr& replacement) {
  return subst_kind(e, ExprKind::Sym, id, replacement);
}
ExprPtr subst_iter_start(const ExprPtr& e, SymbolId id, const ExprPtr& replacement) {
  return subst_kind(e, ExprKind::IterStart, id, replacement);
}
ExprPtr subst_loop_start(const ExprPtr& e, SymbolId id, const ExprPtr& replacement) {
  return subst_kind(e, ExprKind::LoopStart, id, replacement);
}

namespace {
void print(const ExprPtr& e, const SymbolTable& syms, std::string& out, bool parens_for_sum);

void print_term(const ExprPtr& atom, int64_t coeff, const SymbolTable& syms, std::string& out,
                bool first) {
  if (coeff < 0) {
    out += first ? "-" : " - ";
  } else if (!first) {
    out += " + ";
  }
  int64_t mag = coeff < 0 ? -coeff : coeff;
  if (mag != 1) {
    out += std::to_string(mag);
    out += "*";
  }
  print(atom, syms, out, true);
}

void print(const ExprPtr& e, const SymbolTable& syms, std::string& out, bool parens_for_sum) {
  if (!e) {
    out += "<null>";
    return;
  }
  switch (e->kind) {
    case ExprKind::Const:
      out += std::to_string(e->value);
      return;
    case ExprKind::Sym:
      out += syms.name(e->symbol);
      return;
    case ExprKind::IterStart:
      out += "lam." + syms.name(e->symbol);
      return;
    case ExprKind::LoopStart:
      out += "LAM." + syms.name(e->symbol);
      return;
    case ExprKind::Bottom:
      out += "_|_";
      return;
    case ExprKind::ArrayElem:
      out += syms.name(e->symbol);
      out += "[";
      print(e->operands[0], syms, out, false);
      out += "]";
      return;
    case ExprKind::Add: {
      if (parens_for_sum) out += "(";
      bool first = true;
      for (size_t i = 0; i < e->operands.size(); ++i) {
        print_term(e->operands[i], e->coeffs[i], syms, out, first);
        first = false;
      }
      if (e->value != 0 || first) {
        if (!first) {
          out += e->value < 0 ? " - " : " + ";
          out += std::to_string(e->value < 0 ? -e->value : e->value);
        } else {
          out += std::to_string(e->value);
        }
      }
      if (parens_for_sum) out += ")";
      return;
    }
    case ExprKind::Mul: {
      for (size_t i = 0; i < e->operands.size(); ++i) {
        if (i) out += "*";
        print(e->operands[i], syms, out, true);
      }
      return;
    }
    case ExprKind::Div:
    case ExprKind::Mod: {
      out += e->kind == ExprKind::Div ? "div(" : "mod(";
      print(e->operands[0], syms, out, false);
      out += ", ";
      print(e->operands[1], syms, out, false);
      out += ")";
      return;
    }
    case ExprKind::Min:
    case ExprKind::Max: {
      out += e->kind == ExprKind::Min ? "min(" : "max(";
      for (size_t i = 0; i < e->operands.size(); ++i) {
        if (i) out += ", ";
        print(e->operands[i], syms, out, false);
      }
      out += ")";
      return;
    }
  }
}
}  // namespace

std::string to_string(const ExprPtr& e, const SymbolTable& syms) {
  std::string out;
  print(e, syms, out, false);
  return out;
}

}  // namespace sspar::sym
