#include "symbolic/expr.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace sspar::sym {

namespace {

ExprPtr make(ExprKind k) { return std::make_shared<Expr>(k); }

struct AtomLess {
  bool operator()(const ExprPtr& a, const ExprPtr& b) const { return compare(a, b) < 0; }
};

using TermMap = std::map<ExprPtr, int64_t, AtomLess>;

void accumulate(TermMap& terms, int64_t& constant, bool& bottom, const ExprPtr& e,
                int64_t scale) {
  if (bottom || scale == 0) return;
  switch (e->kind) {
    case ExprKind::Bottom:
      bottom = true;
      return;
    case ExprKind::Const:
      constant += scale * e->value;
      return;
    case ExprKind::Add:
      constant += scale * e->value;
      for (size_t i = 0; i < e->operands.size(); ++i) {
        accumulate(terms, constant, bottom, e->operands[i], scale * e->coeffs[i]);
      }
      return;
    default:
      terms[e] += scale;
      return;
  }
}

ExprPtr build_from_terms(const TermMap& terms, int64_t constant, bool bottom) {
  if (bottom) return make_bottom();
  std::vector<std::pair<ExprPtr, int64_t>> nonzero;
  for (const auto& [atom, coeff] : terms) {
    if (coeff != 0) nonzero.emplace_back(atom, coeff);
  }
  if (nonzero.empty()) return make_const(constant);
  if (nonzero.size() == 1 && nonzero[0].second == 1 && constant == 0) {
    return nonzero[0].first;
  }
  auto node = make(ExprKind::Add);
  auto mut = std::const_pointer_cast<Expr>(node);
  mut->value = constant;
  for (auto& [atom, coeff] : nonzero) {
    mut->operands.push_back(atom);
    mut->coeffs.push_back(coeff);
  }
  return node;
}

ExprPtr linear_combine(const ExprPtr& a, int64_t ca, const ExprPtr& b, int64_t cb) {
  TermMap terms;
  int64_t constant = 0;
  bool bottom = false;
  if (a) accumulate(terms, constant, bottom, a, ca);
  if (b) accumulate(terms, constant, bottom, b, cb);
  return build_from_terms(terms, constant, bottom);
}

// Product of two canonical atoms/atom-products -> canonical Mul (or atom).
ExprPtr atom_product(const ExprPtr& a, const ExprPtr& b) {
  std::vector<ExprPtr> factors;
  auto push = [&factors](const ExprPtr& e) {
    if (e->kind == ExprKind::Mul) {
      for (const auto& f : e->operands) factors.push_back(f);
    } else {
      factors.push_back(e);
    }
  };
  push(a);
  push(b);
  std::sort(factors.begin(), factors.end(),
            [](const ExprPtr& x, const ExprPtr& y) { return compare(x, y) < 0; });
  auto node = make(ExprKind::Mul);
  std::const_pointer_cast<Expr>(node)->operands = std::move(factors);
  return node;
}

int compare_vec(const std::vector<ExprPtr>& a, const std::vector<ExprPtr>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = 0; i < a.size(); ++i) {
    int c = compare(a[i], b[i]);
    if (c != 0) return c;
  }
  return 0;
}

}  // namespace

ExprPtr make_const(int64_t v) {
  auto node = make(ExprKind::Const);
  std::const_pointer_cast<Expr>(node)->value = v;
  return node;
}

ExprPtr make_sym(SymbolId id) {
  auto node = make(ExprKind::Sym);
  std::const_pointer_cast<Expr>(node)->symbol = id;
  return node;
}

ExprPtr make_iter_start(SymbolId id) {
  auto node = make(ExprKind::IterStart);
  std::const_pointer_cast<Expr>(node)->symbol = id;
  return node;
}

ExprPtr make_loop_start(SymbolId id) {
  auto node = make(ExprKind::LoopStart);
  std::const_pointer_cast<Expr>(node)->symbol = id;
  return node;
}

ExprPtr make_array_elem(SymbolId array, ExprPtr index) {
  if (!index || is_bottom(index)) return make_bottom();
  auto node = make(ExprKind::ArrayElem);
  auto mut = std::const_pointer_cast<Expr>(node);
  mut->symbol = array;
  mut->operands.push_back(std::move(index));
  return node;
}

ExprPtr make_bottom() {
  static const ExprPtr instance = make(ExprKind::Bottom);
  return instance;
}

ExprPtr add(const ExprPtr& a, const ExprPtr& b) { return linear_combine(a, 1, b, 1); }
ExprPtr sub(const ExprPtr& a, const ExprPtr& b) { return linear_combine(a, 1, b, -1); }
ExprPtr negate(const ExprPtr& a) { return linear_combine(a, -1, nullptr, 0); }
ExprPtr mul_const(const ExprPtr& a, int64_t c) { return linear_combine(a, c, nullptr, 0); }

ExprPtr mul(const ExprPtr& a, const ExprPtr& b) {
  if (!a || !b || is_bottom(a) || is_bottom(b)) return make_bottom();
  if (auto ca = const_value(a)) return mul_const(b, *ca);
  if (auto cb = const_value(b)) return mul_const(a, *cb);
  // Distribute sums (operand counts are tiny in practice).
  LinearForm la = to_linear(a);
  LinearForm lb = to_linear(b);
  TermMap terms;
  int64_t constant = 0;
  bool bottom = false;
  auto add_term = [&](const ExprPtr& atom, int64_t coeff) {
    accumulate(terms, constant, bottom, atom, coeff);
  };
  // (Σ ci*ti + c0) * (Σ dj*uj + d0)
  constant += la.constant * lb.constant;
  for (const auto& [t, c] : la.terms) add_term(t, c * lb.constant);
  for (const auto& [u, d] : lb.terms) add_term(u, d * la.constant);
  for (const auto& [t, c] : la.terms) {
    for (const auto& [u, d] : lb.terms) {
      add_term(atom_product(t, u), c * d);
    }
  }
  return build_from_terms(terms, constant, bottom);
}

ExprPtr div_floor(const ExprPtr& a, const ExprPtr& b) {
  if (!a || !b || is_bottom(a) || is_bottom(b)) return make_bottom();
  auto cb = const_value(b);
  if (cb && *cb == 0) return make_bottom();
  if (cb && *cb == 1) return a;
  if (auto ca = const_value(a)) {
    if (cb) {
      int64_t q = *ca / *cb;  // exact in our uses; truncation acceptable otherwise
      if ((*ca % *cb) != 0 && ((*ca < 0) != (*cb < 0))) --q;  // floor semantics
      return make_const(q);
    }
    if (*ca == 0) return make_const(0);
  }
  auto node = make(ExprKind::Div);
  auto mut = std::const_pointer_cast<Expr>(node);
  mut->operands = {a, b};
  return node;
}

ExprPtr mod(const ExprPtr& a, const ExprPtr& b) {
  if (!a || !b || is_bottom(a) || is_bottom(b)) return make_bottom();
  auto cb = const_value(b);
  if (cb && *cb == 0) return make_bottom();
  if (cb && (*cb == 1 || *cb == -1)) return make_const(0);
  if (auto ca = const_value(a); ca && cb) {
    int64_t r = *ca % *cb;
    if (r != 0 && ((r < 0) != (*cb < 0))) r += *cb;  // floor-mod
    return make_const(r);
  }
  auto node = make(ExprKind::Mod);
  auto mut = std::const_pointer_cast<Expr>(node);
  mut->operands = {a, b};
  return node;
}

namespace {
ExprPtr min_max(ExprKind kind, const ExprPtr& a, const ExprPtr& b) {
  if (!a || !b || is_bottom(a) || is_bottom(b)) return make_bottom();
  if (equal(a, b)) return a;
  auto ca = const_value(a);
  auto cb = const_value(b);
  if (ca && cb) {
    return make_const(kind == ExprKind::Min ? std::min(*ca, *cb) : std::max(*ca, *cb));
  }
  // Fold a difference that is a known constant: min(x, x+3) == x.
  if (auto d = const_value(sub(a, b))) {
    bool a_smaller = *d <= 0;
    if (kind == ExprKind::Min) return a_smaller ? a : b;
    return a_smaller ? b : a;
  }
  std::vector<ExprPtr> ops;
  auto push = [&](const ExprPtr& e) {
    if (e->kind == kind) {
      for (const auto& o : e->operands) ops.push_back(o);
    } else {
      ops.push_back(e);
    }
  };
  push(a);
  push(b);
  std::sort(ops.begin(), ops.end(),
            [](const ExprPtr& x, const ExprPtr& y) { return compare(x, y) < 0; });
  ops.erase(std::unique(ops.begin(), ops.end(),
                        [](const ExprPtr& x, const ExprPtr& y) { return equal(x, y); }),
            ops.end());
  if (ops.size() == 1) return ops[0];
  auto node = make(kind);
  std::const_pointer_cast<Expr>(node)->operands = std::move(ops);
  return node;
}
}  // namespace

ExprPtr smin(const ExprPtr& a, const ExprPtr& b) { return min_max(ExprKind::Min, a, b); }
ExprPtr smax(const ExprPtr& a, const ExprPtr& b) { return min_max(ExprKind::Max, a, b); }

bool is_bottom(const ExprPtr& e) { return !e || e->kind == ExprKind::Bottom; }
bool is_const(const ExprPtr& e) { return e && e->kind == ExprKind::Const; }

std::optional<int64_t> const_value(const ExprPtr& e) {
  if (is_const(e)) return e->value;
  return std::nullopt;
}

int compare(const ExprPtr& a, const ExprPtr& b) {
  if (a.get() == b.get()) return 0;
  if (!a || !b) return !a ? -1 : 1;
  if (a->kind != b->kind) return a->kind < b->kind ? -1 : 1;
  if (a->value != b->value) return a->value < b->value ? -1 : 1;
  if (a->symbol != b->symbol) return a->symbol < b->symbol ? -1 : 1;
  if (a->coeffs != b->coeffs) return a->coeffs < b->coeffs ? -1 : 1;
  return compare_vec(a->operands, b->operands);
}

bool equal(const ExprPtr& a, const ExprPtr& b) { return compare(a, b) == 0; }

size_t hash(const ExprPtr& e) {
  if (!e) return 0;
  size_t h = static_cast<size_t>(e->kind) * 0x9e3779b97f4a7c15ull;
  h ^= std::hash<int64_t>{}(e->value) + 0x9e3779b9 + (h << 6) + (h >> 2);
  h ^= std::hash<uint32_t>{}(e->symbol) + 0x9e3779b9 + (h << 6) + (h >> 2);
  for (const auto& o : e->operands) h ^= hash(o) + 0x9e3779b9 + (h << 6) + (h >> 2);
  for (int64_t c : e->coeffs) h ^= std::hash<int64_t>{}(c) + 0x9e3779b9 + (h << 6) + (h >> 2);
  return h;
}

bool any_of(const ExprPtr& e, const std::function<bool(const Expr&)>& pred) {
  if (!e) return false;
  if (pred(*e)) return true;
  for (const auto& o : e->operands) {
    if (any_of(o, pred)) return true;
  }
  return false;
}

bool contains_sym(const ExprPtr& e, SymbolId id) {
  return any_of(e, [id](const Expr& n) { return n.kind == ExprKind::Sym && n.symbol == id; });
}

bool contains_kind(const ExprPtr& e, ExprKind kind) {
  return any_of(e, [kind](const Expr& n) { return n.kind == kind; });
}

std::vector<ExprPtr> collect_array_elems(const ExprPtr& e, std::optional<SymbolId> array) {
  std::vector<ExprPtr> out;
  std::function<void(const ExprPtr&)> walk = [&](const ExprPtr& n) {
    if (!n) return;
    if (n->kind == ExprKind::ArrayElem && (!array || n->symbol == *array)) {
      out.push_back(n);
    }
    for (const auto& o : n->operands) walk(o);
  };
  walk(e);
  return out;
}

int64_t LinearForm::coeff_of(const ExprPtr& atom) const {
  for (const auto& [t, c] : terms) {
    if (equal(t, atom)) return c;
  }
  return 0;
}

LinearForm to_linear(const ExprPtr& e) {
  LinearForm lf;
  if (!e || is_bottom(e)) {
    lf.bottom = true;
    return lf;
  }
  TermMap terms;
  bool bottom = false;
  accumulate(terms, lf.constant, bottom, e, 1);
  lf.bottom = bottom;
  for (const auto& [atom, coeff] : terms) {
    if (coeff != 0) lf.terms.emplace_back(atom, coeff);
  }
  return lf;
}

ExprPtr from_linear(const LinearForm& lf) {
  if (lf.bottom) return make_bottom();
  TermMap terms;
  for (const auto& [atom, coeff] : lf.terms) terms[atom] += coeff;
  return build_from_terms(terms, lf.constant, false);
}

std::optional<std::pair<int64_t, int64_t>> as_affine_in(const ExprPtr& e, SymbolId id) {
  LinearForm lf = to_linear(e);
  if (lf.bottom) return std::nullopt;
  int64_t c1 = 0;
  for (const auto& [atom, coeff] : lf.terms) {
    if (atom->kind == ExprKind::Sym && atom->symbol == id) {
      c1 = coeff;
    } else if (contains_sym(atom, id)) {
      return std::nullopt;  // id occurs non-linearly (inside Mul/Div/ArrayElem...)
    }
  }
  // All remaining terms must be free of `id` (checked above); fold them into
  // the "constant" only when there are none, otherwise this is not affine
  // with integer constant parts.
  for (const auto& [atom, coeff] : lf.terms) {
    (void)coeff;
    if (atom->kind == ExprKind::Sym && atom->symbol == id) continue;
    return std::nullopt;
  }
  return std::make_pair(c1, lf.constant);
}

std::optional<AffineSplit> split_affine_in(const ExprPtr& e, SymbolId id) {
  LinearForm lf = to_linear(e);
  if (lf.bottom) return std::nullopt;
  AffineSplit split;
  LinearForm rest;
  rest.constant = lf.constant;
  for (const auto& [atom, coeff] : lf.terms) {
    if (atom->kind == ExprKind::Sym && atom->symbol == id) {
      split.coeff = coeff;
    } else if (contains_sym(atom, id)) {
      return std::nullopt;  // id occurs non-linearly
    } else {
      rest.terms.emplace_back(atom, coeff);
    }
  }
  split.rest = from_linear(rest);
  return split;
}

ExprPtr rewrite(const ExprPtr& e, const RewriteFn& fn) {
  if (!e) return e;
  // Top-down: a replacement is final (children of the replacement are not
  // revisited), which gives capture-free substitution semantics.
  if (auto replaced = fn(e)) return *replaced;
  ExprPtr rebuilt;
  switch (e->kind) {
    case ExprKind::Const:
    case ExprKind::Sym:
    case ExprKind::IterStart:
    case ExprKind::LoopStart:
    case ExprKind::Bottom:
      rebuilt = e;
      break;
    case ExprKind::ArrayElem:
      rebuilt = make_array_elem(e->symbol, rewrite(e->operands[0], fn));
      break;
    case ExprKind::Add: {
      ExprPtr acc = make_const(e->value);
      for (size_t i = 0; i < e->operands.size(); ++i) {
        acc = add(acc, mul_const(rewrite(e->operands[i], fn), e->coeffs[i]));
      }
      rebuilt = acc;
      break;
    }
    case ExprKind::Mul: {
      ExprPtr acc = make_const(1);
      for (const auto& o : e->operands) acc = mul(acc, rewrite(o, fn));
      rebuilt = acc;
      break;
    }
    case ExprKind::Div:
      rebuilt = div_floor(rewrite(e->operands[0], fn), rewrite(e->operands[1], fn));
      break;
    case ExprKind::Mod:
      rebuilt = mod(rewrite(e->operands[0], fn), rewrite(e->operands[1], fn));
      break;
    case ExprKind::Min:
    case ExprKind::Max: {
      ExprPtr acc = rewrite(e->operands[0], fn);
      for (size_t i = 1; i < e->operands.size(); ++i) {
        auto next = rewrite(e->operands[i], fn);
        acc = e->kind == ExprKind::Min ? smin(acc, next) : smax(acc, next);
      }
      rebuilt = acc;
      break;
    }
  }
  return rebuilt;
}

namespace {
ExprPtr subst_kind(const ExprPtr& e, ExprKind kind, SymbolId id, const ExprPtr& replacement) {
  return rewrite(e, [&](const ExprPtr& n) -> std::optional<ExprPtr> {
    if (n->kind == kind && n->symbol == id) return replacement;
    return std::nullopt;
  });
}
}  // namespace

ExprPtr subst_sym(const ExprPtr& e, SymbolId id, const ExprPtr& replacement) {
  return subst_kind(e, ExprKind::Sym, id, replacement);
}
ExprPtr subst_iter_start(const ExprPtr& e, SymbolId id, const ExprPtr& replacement) {
  return subst_kind(e, ExprKind::IterStart, id, replacement);
}
ExprPtr subst_loop_start(const ExprPtr& e, SymbolId id, const ExprPtr& replacement) {
  return subst_kind(e, ExprKind::LoopStart, id, replacement);
}

namespace {
void print(const ExprPtr& e, const SymbolTable& syms, std::string& out, bool parens_for_sum);

void print_term(const ExprPtr& atom, int64_t coeff, const SymbolTable& syms, std::string& out,
                bool first) {
  if (coeff < 0) {
    out += first ? "-" : " - ";
  } else if (!first) {
    out += " + ";
  }
  int64_t mag = coeff < 0 ? -coeff : coeff;
  if (mag != 1) {
    out += std::to_string(mag);
    out += "*";
  }
  print(atom, syms, out, true);
}

void print(const ExprPtr& e, const SymbolTable& syms, std::string& out, bool parens_for_sum) {
  if (!e) {
    out += "<null>";
    return;
  }
  switch (e->kind) {
    case ExprKind::Const:
      out += std::to_string(e->value);
      return;
    case ExprKind::Sym:
      out += syms.name(e->symbol);
      return;
    case ExprKind::IterStart:
      out += "lam." + syms.name(e->symbol);
      return;
    case ExprKind::LoopStart:
      out += "LAM." + syms.name(e->symbol);
      return;
    case ExprKind::Bottom:
      out += "_|_";
      return;
    case ExprKind::ArrayElem:
      out += syms.name(e->symbol);
      out += "[";
      print(e->operands[0], syms, out, false);
      out += "]";
      return;
    case ExprKind::Add: {
      if (parens_for_sum) out += "(";
      bool first = true;
      for (size_t i = 0; i < e->operands.size(); ++i) {
        print_term(e->operands[i], e->coeffs[i], syms, out, first);
        first = false;
      }
      if (e->value != 0 || first) {
        if (!first) {
          out += e->value < 0 ? " - " : " + ";
          out += std::to_string(e->value < 0 ? -e->value : e->value);
        } else {
          out += std::to_string(e->value);
        }
      }
      if (parens_for_sum) out += ")";
      return;
    }
    case ExprKind::Mul: {
      for (size_t i = 0; i < e->operands.size(); ++i) {
        if (i) out += "*";
        print(e->operands[i], syms, out, true);
      }
      return;
    }
    case ExprKind::Div:
    case ExprKind::Mod: {
      out += e->kind == ExprKind::Div ? "div(" : "mod(";
      print(e->operands[0], syms, out, false);
      out += ", ";
      print(e->operands[1], syms, out, false);
      out += ")";
      return;
    }
    case ExprKind::Min:
    case ExprKind::Max: {
      out += e->kind == ExprKind::Min ? "min(" : "max(";
      for (size_t i = 0; i < e->operands.size(); ++i) {
        if (i) out += ", ";
        print(e->operands[i], syms, out, false);
      }
      out += ")";
      return;
    }
  }
}
}  // namespace

std::string to_string(const ExprPtr& e, const SymbolTable& syms) {
  std::string out;
  print(e, syms, out, false);
  return out;
}

}  // namespace sspar::sym
