#include "symbolic/recurrence.h"

namespace sspar::sym {

namespace {

inline size_t mix_hash(size_t seed, size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

}  // namespace

size_t RecurrenceBuilder::ChainKeyHash::operator()(const ChainKey& k) const {
  size_t h = std::hash<uint32_t>{}(k.index);
  h = mix_hash(h, hash(k.first));
  h = mix_hash(h, hash(k.base));
  h = mix_hash(h, hash(k.stride));
  return h;
}

size_t RecurrenceBuilder::QueryKeyHash::operator()(const QueryKey& k) const {
  size_t h = std::hash<const void*>{}(k.expr);
  h = mix_hash(h, std::hash<uint32_t>{}(k.index));
  h = mix_hash(h, std::hash<const void*>{}(k.first));
  return h;
}

RecChainPtr RecurrenceBuilder::intern(SymbolId index, ExprPtr first, ExprPtr base,
                                      ExprPtr stride) {
  ChainKey key{index, first, base, stride};
  auto it = interned_.find(key);
  if (it != interned_.end()) return it->second;
  auto chain = std::make_unique<RecChain>();
  chain->index = index;
  chain->first = first;
  chain->base = base;
  chain->stride = stride;
  chain->id = static_cast<uint32_t>(chains_.size());
  // Built from the *structural* (arena-independent) expression hashes, so two
  // arenas interning the same loop produce chains with equal hash_value.
  size_t h = std::hash<uint32_t>{}(index);
  h = mix_hash(h, hash(first));
  h = mix_hash(h, hash(base));
  h = mix_hash(h, hash(stride));
  chain->hash_value = h;
  RecChainPtr out = chain.get();
  chains_.push_back(std::move(chain));
  interned_.emplace(key, out);
  ++stats_.chains;
  return out;
}

RecChainPtr RecurrenceBuilder::chain_for(ExprPtr e, SymbolId index, ExprPtr first) {
  ++stats_.queries;
  if (!e || !first || is_bottom(e) || is_bottom(first) || contains_sym(first, index)) {
    return nullptr;
  }
  QueryKey key{e, index, first};
  if (auto it = memo_.find(key); it != memo_.end()) {
    ++stats_.memo_hits;
    return it->second;
  }

  RecChainPtr result = nullptr;
  // λ markers evolve per iteration on their own; no closed form over the
  // index. Index-free expressions are the degenerate chain {e, +, 0}.
  if (!contains_kind(e, ExprKind::IterStart)) {
    if (!contains_sym(e, index)) {
      result = intern(index, first, e, make_const(0));
    } else {
      LinearForm lf = to_linear(e);
      ExprPtr stride = make_const(0);
      ExprPtr rest = make_const(lf.constant);
      bool ok = !lf.bottom;
      for (const auto& [atom, coeff] : lf.terms) {
        if (!ok) break;
        if (atom->kind == ExprKind::Sym && atom->symbol == index) {
          stride = add(stride, make_const(coeff));
          continue;
        }
        if (!contains_sym(atom, index)) {
          rest = add(rest, mul_const(atom, coeff));
          continue;
        }
        // The only index-carrying atom with a linear closed form is a product
        // with the index as a direct factor exactly once and every other
        // factor index-free: coeff * m1 * ... * i * ... * mk contributes
        // coeff * Π m to the stride.
        if (atom->kind != ExprKind::Mul) {
          ok = false;
          break;
        }
        ExprPtr others = make_const(1);
        int index_factors = 0;
        for (const ExprPtr& factor : atom->operands) {
          if (factor->kind == ExprKind::Sym && factor->symbol == index) {
            ++index_factors;
          } else if (contains_sym(factor, index)) {
            index_factors = -1;
            break;
          } else {
            others = mul(others, factor);
          }
        }
        if (index_factors != 1) {
          ok = false;
          break;
        }
        stride = add(stride, mul_const(others, coeff));
      }
      if (ok) {
        // base == e evaluated at index == first: stride * first + rest.
        ExprPtr base = add(mul(stride, first), rest);
        result = intern(index, first, base, stride);
      }
    }
  }
  memo_.emplace(key, result);
  return result;
}

ExprPtr RecurrenceBuilder::value_at(const RecChain& chain, ExprPtr k) {
  return add(chain.base, mul(chain.stride, sub(k, chain.first)));
}

std::optional<int64_t> RecurrenceBuilder::const_stride(const RecChain& chain) {
  return const_value(chain.stride);
}

}  // namespace sspar::sym
