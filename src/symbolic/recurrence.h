// Chains of recurrences (SCEV-style add-recs) over the hash-consed arena.
//
// A loop-varying expression that is affine in a loop index i decomposes into
// the add-rec {base, +, stride}_i anchored at the loop's first index value:
//
//     e(i) == base + stride * (i - first)       for i >= first
//
// where `base` (the value at i == first) and `stride` (the per-iteration
// increment) are index-free. The decomposition answers the questions the
// paper's enabling properties reduce to in O(1):
//
//  * stride / direction    -> monotonicity of the subscript sequence,
//  * |stride| == 1         -> consecutiveness (coalesced accesses),
//  * provably nonzero      -> injectivity of the filled section, even when
//    stride                   the stride is *symbolic* (e.g. m*i + q with
//                             m >= 1) and therefore invisible to the integer
//                             coefficient view of split_affine_in.
//
// Chains are hash-consed like expressions: within one RecurrenceBuilder, two
// structurally equal chains are the same RecChain object, so a relocated but
// otherwise identical loop yields the pointer-identical chain. Queries are
// memoized per (expr, index, first) — the builder walks each distinct
// subscript once per loop, not once per iteration.
//
// Lifetime: a builder's chains hold ExprPtrs and live exactly as long as the
// owning arena. The canonical instance is reached through
// ExprArena::recurrences(), which aligns the two lifetimes by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "symbolic/expr.h"

namespace sspar::sym {

struct RecChain {
  SymbolId index = kInvalidSymbol;  // loop index the chain varies over
  ExprPtr first = nullptr;          // index value of the first iteration
  ExprPtr base = nullptr;           // chain value at index == first (index-free)
  ExprPtr stride = nullptr;         // per-iteration increment (index-free)
  uint32_t id = 0;                  // dense per-builder id, creation-ordered
  size_t hash_value = 0;            // structural hash (arena-independent)
};
using RecChainPtr = const RecChain*;

class RecurrenceBuilder {
 public:
  RecurrenceBuilder() = default;
  RecurrenceBuilder(const RecurrenceBuilder&) = delete;
  RecurrenceBuilder& operator=(const RecurrenceBuilder&) = delete;

  // Canonicalizes `e` into an add-rec over `index` anchored at `first`.
  // Returns null when `e` is not affine in the index: the index appears under
  // Div/Mod/Min/Max, inside an array subscript, more than linearly in a
  // product, or the expression depends on a λ (IterStart) marker — λ values
  // change per iteration independently of the index, so no closed form over
  // the index exists. Both successes and failures are memoized.
  RecChainPtr chain_for(ExprPtr e, SymbolId index, ExprPtr first);

  // Closed form at iteration k: base + stride * (k - first). Folds through
  // the interning factories, so for the canonical affine fragment this is
  // pointer-equal to substituting k for the index in the original expression.
  static ExprPtr value_at(const RecChain& chain, ExprPtr k);

  // The stride as a compile-time constant, if it folds to one.
  static std::optional<int64_t> const_stride(const RecChain& chain);

  struct Stats {
    size_t chains = 0;       // unique chains interned
    size_t queries = 0;      // chain_for calls
    size_t memo_hits = 0;    // answered from the per-expression memo
  };
  Stats stats() const { return stats_; }

 private:
  struct ChainKey {
    SymbolId index;
    ExprPtr first;
    ExprPtr base;
    ExprPtr stride;
    bool operator==(const ChainKey&) const = default;
  };
  struct ChainKeyHash {
    size_t operator()(const ChainKey& k) const;
  };
  struct QueryKey {
    ExprPtr expr;
    SymbolId index;
    ExprPtr first;
    bool operator==(const QueryKey&) const = default;
  };
  struct QueryKeyHash {
    size_t operator()(const QueryKey& k) const;
  };

  RecChainPtr intern(SymbolId index, ExprPtr first, ExprPtr base, ExprPtr stride);

  // Nodes never move once created (pointers are handed out).
  std::vector<std::unique_ptr<RecChain>> chains_;
  std::unordered_map<ChainKey, RecChainPtr, ChainKeyHash> interned_;
  std::unordered_map<QueryKey, RecChainPtr, QueryKeyHash> memo_;  // null = known failure
  Stats stats_;
};

}  // namespace sspar::sym
