// Assumption context and tri-state prover.
//
// The prover decides questions of the form "is a >= b provable?" under:
//  * symbol bounds (e.g. the problem size N ∈ [1, +inf)),
//  * array-element difference facts supplied by the analysis layer
//    (e.g. Monotonic_inc of rowptr gives rowptr[i+1] - rowptr[i] ∈ [0:+inf)),
//  * array-element value facts (e.g. rowsize[i] ∈ [0 : COLUMNLEN]).
//
// The latter two arrive through callbacks so the symbolic layer stays
// independent of the property database; the core analysis wires them up.
// This is the machinery behind the paper's extended Range Test (Section 5).
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>

#include "symbolic/range.h"

namespace sspar::sym {

enum class Truth { True, False, Unknown };

class AssumptionContext {
 public:
  // Declares sym ∈ range (may-range). Later declarations overwrite.
  void assume(SymbolId sym, Range range) { bounds_[sym] = std::move(range); }
  // Convenience: sym >= lo.
  void assume_ge(SymbolId sym, int64_t lo) {
    bounds_[sym] = Range::of(make_const(lo), nullptr);
  }
  const Range* bound(SymbolId sym) const {
    auto it = bounds_.find(sym);
    return it == bounds_.end() ? nullptr : &it->second;
  }

  // Range of a[hiIdx] - a[loIdx]; the callback may assume nothing about the
  // index order (it must inspect the indices itself). Returning nullopt means
  // "no fact available".
  using ElemDiffFn =
      std::function<std::optional<Range>(SymbolId array, const ExprPtr& hi_index,
                                         const ExprPtr& lo_index)>;
  // Value range of a[index].
  using ElemValueFn =
      std::function<std::optional<Range>(SymbolId array, const ExprPtr& index)>;

  void set_elem_diff(ElemDiffFn fn) { elem_diff_ = std::move(fn); }
  void set_elem_value(ElemValueFn fn) { elem_value_ = std::move(fn); }

  const ElemDiffFn& elem_diff() const { return elem_diff_; }
  const ElemValueFn& elem_value() const { return elem_value_; }

 private:
  std::unordered_map<SymbolId, Range> bounds_;
  ElemDiffFn elem_diff_;
  ElemValueFn elem_value_;
};

// Interval of possible values of `e` under the context (bounds may stay
// symbolic; a null bound means unbounded).
Range bound_range(const ExprPtr& e, const AssumptionContext& ctx);

Truth prove_ge(const ExprPtr& a, const ExprPtr& b, const AssumptionContext& ctx);
Truth prove_gt(const ExprPtr& a, const ExprPtr& b, const AssumptionContext& ctx);
Truth prove_le(const ExprPtr& a, const ExprPtr& b, const AssumptionContext& ctx);
Truth prove_lt(const ExprPtr& a, const ExprPtr& b, const AssumptionContext& ctx);
Truth prove_eq(const ExprPtr& a, const ExprPtr& b, const AssumptionContext& ctx);

// Provability of the lower-bound condition lo(r) >= 0 / lo(r) >= 1. Note the
// tri-state is about the bound: False means the lower bound is provably below
// the threshold (the range *may* contain smaller values), not that every value
// violates the condition.
Truth prove_nonneg(const Range& r, const AssumptionContext& ctx);
Truth prove_pos(const Range& r, const AssumptionContext& ctx);

const char* truth_name(Truth t);

}  // namespace sspar::sym
