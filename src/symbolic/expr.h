// Immutable symbolic integer expressions in canonical (affine-normal) form.
//
// The representation follows the paper's needs (Section 3.2): expressions over
// program symbols, the per-iteration start value λ(x) (IterStart), the
// per-loop start value Λ(x) (LoopStart), symbolic array elements a[e]
// (ArrayElem, needed to express recurrences such as rowptr[i-1] + v and the
// Range-Test comparison rowptr[i] vs rowptr[i+1]), and the unknown value ⊥
// (Bottom).
//
// Canonical form invariants (enforced by the factory functions):
//  * Add nodes hold a sorted list of (atom, non-zero coefficient) pairs plus
//    an integer constant; they never nest, never have a single term with
//    coefficient 1 and constant 0, and never hold Const/Add atoms.
//  * Mul nodes hold >= 2 sorted non-constant factors; constant factors are
//    folded into Add coefficients.
//  * Bottom absorbs every operation.
// Because the form is canonical, structural equality is semantic equality for
// the affine fragment (atoms are compared structurally).
//
// Storage: every node is owned by an ExprArena (symbolic/arena.h) and
// hash-consed — within one arena, structural equality is pointer identity.
// ExprPtr is therefore a borrowed, non-owning handle; it stays valid exactly
// as long as the owning arena (for code without an explicit arena: the
// thread-local default arena, which lives until thread exit).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "symbolic/symbol.h"

namespace sspar::sym {

enum class ExprKind : uint8_t {
  Const,
  Sym,
  IterStart,  // λ(x): value of x at the start of the current iteration
  LoopStart,  // Λ(x): value of x at the start of the loop
  ArrayElem,  // a[index]
  Add,        // Σ coeff_k * atom_k + constant
  Mul,        // atom * atom * ...
  Div,        // integer division, operands (num, den)
  Mod,        // operands (num, den)
  Min,
  Max,
  Bottom,
};

inline constexpr uint32_t kind_bit(ExprKind k) { return 1u << static_cast<unsigned>(k); }

// Bloom-filter bit for a leaf atom (Sym/IterStart/LoopStart over `symbol`).
// Subtree blooms give an O(1) "definitely absent" answer for contains_sym and
// the substitution fast paths.
inline constexpr uint64_t atom_bloom_bit(ExprKind kind, SymbolId symbol) {
  uint64_t x = (static_cast<uint64_t>(symbol) << 4) ^ static_cast<uint64_t>(kind);
  x *= 0x9e3779b97f4a7c15ull;
  return 1ull << (x >> 58);
}

class Expr;
using ExprPtr = const Expr*;

class Expr {
 public:
  ExprKind kind;
  int64_t value = 0;                 // Const value / Add constant term
  SymbolId symbol = kInvalidSymbol;  // Sym/IterStart/LoopStart; array for ArrayElem
  std::vector<ExprPtr> operands;     // children (atoms for Add/Mul; args otherwise)
  std::vector<int64_t> coeffs;       // parallel to operands, Add only

  // Interning metadata, written exactly once by the owning ExprArena.
  uint32_t id = 0;             // dense per-arena id, creation-ordered
  uint32_t subtree_kinds = 0;  // exact union of kind_bit() over the subtree
  uint64_t atom_bloom = 0;     // union of atom_bloom_bit() over the subtree
  size_t hash_value = 0;       // structural hash (arena-independent)

  explicit Expr(ExprKind k) : kind(k) {}
};

// --- Factories (always canonicalize; allocate from ExprArena::current()) ----
ExprPtr make_const(int64_t v);
ExprPtr make_sym(SymbolId id);
ExprPtr make_iter_start(SymbolId id);
ExprPtr make_loop_start(SymbolId id);
ExprPtr make_array_elem(SymbolId array, ExprPtr index);
ExprPtr make_bottom();

ExprPtr add(const ExprPtr& a, const ExprPtr& b);
ExprPtr sub(const ExprPtr& a, const ExprPtr& b);
ExprPtr negate(const ExprPtr& a);
ExprPtr mul(const ExprPtr& a, const ExprPtr& b);
ExprPtr mul_const(const ExprPtr& a, int64_t c);
ExprPtr div_floor(const ExprPtr& a, const ExprPtr& b);  // used only where exact
ExprPtr mod(const ExprPtr& a, const ExprPtr& b);
ExprPtr smin(const ExprPtr& a, const ExprPtr& b);
ExprPtr smax(const ExprPtr& a, const ExprPtr& b);

// --- Predicates & queries ---------------------------------------------------
bool is_bottom(const ExprPtr& e);
bool is_const(const ExprPtr& e);
std::optional<int64_t> const_value(const ExprPtr& e);

// Within one arena, equality is pointer identity (hash-consing); the
// structural fallback only does work for nodes from different arenas.
bool equal(const ExprPtr& a, const ExprPtr& b);
// Total structural order; used for canonical sorting. Pointer-equal nodes
// short-circuit, and interned children make the recursion exit at the first
// differing field in practice.
int compare(const ExprPtr& a, const ExprPtr& b);
// Cached at interning time: a field load.
size_t hash(const ExprPtr& e);

// True if any subexpression satisfies `pred`. Iterative pre-order walk;
// allocation-free up to 64 pending nodes (deeper trees spill to the heap).
template <typename Pred>
bool any_of(const ExprPtr& e, Pred&& pred) {
  if (!e) return false;
  ExprPtr inline_stack[64];
  size_t top = 0;
  std::vector<ExprPtr> spill;
  inline_stack[top++] = e;
  while (top > 0 || !spill.empty()) {
    ExprPtr n;
    if (!spill.empty()) {
      n = spill.back();
      spill.pop_back();
    } else {
      n = inline_stack[--top];
    }
    if (pred(*n)) return true;
    for (const ExprPtr& o : n->operands) {
      if (top < 64) {
        inline_stack[top++] = o;
      } else {
        spill.push_back(o);
      }
    }
  }
  return false;
}

// O(1): exact subtree kind mask, computed at interning time.
bool contains_kind(const ExprPtr& e, ExprKind kind);
// O(1) "no" via the subtree atom bloom; bloom hits fall back to an
// allocation-free iterative walk.
bool contains_sym(const ExprPtr& e, SymbolId id);

// Collects every ArrayElem subexpression (of `array` if given).
std::vector<ExprPtr> collect_array_elems(const ExprPtr& e,
                                         std::optional<SymbolId> array = std::nullopt);

// --- Linear view ------------------------------------------------------------
// expr == constant + Σ coeff_k * atom_k, where atoms are non-Add non-Const.
struct LinearForm {
  bool bottom = false;
  int64_t constant = 0;
  std::vector<std::pair<ExprPtr, int64_t>> terms;  // sorted by compare()

  // Coefficient of `atom` (0 if absent).
  int64_t coeff_of(const ExprPtr& atom) const;
};
LinearForm to_linear(const ExprPtr& e);
ExprPtr from_linear(const LinearForm& lf);

// If e == c1 * sym(id) + c0, returns (c1, c0).
std::optional<std::pair<int64_t, int64_t>> as_affine_in(const ExprPtr& e, SymbolId id);

// General split: e == coeff * sym(id) + rest, where rest does not mention
// sym(id) at all (also not inside non-linear atoms). Returns (coeff, rest).
struct AffineSplit {
  int64_t coeff = 0;
  ExprPtr rest = nullptr;
};
std::optional<AffineSplit> split_affine_in(const ExprPtr& e, SymbolId id);

// --- Rewriting --------------------------------------------------------------
// Top-down rewrite: `fn` may replace a node before its children are visited;
// a replacement is final (capture-free substitution semantics). Returning
// nullopt rebuilds the node from rewritten children.
using RewriteFn = std::function<std::optional<ExprPtr>(const ExprPtr&)>;
ExprPtr rewrite(const ExprPtr& e, const RewriteFn& fn);

// Substitutions are memoized per-arena on (node, replacement, symbol) and
// prune untouched subtrees through the atom bloom in O(1).
ExprPtr subst_sym(const ExprPtr& e, SymbolId id, const ExprPtr& replacement);
ExprPtr subst_iter_start(const ExprPtr& e, SymbolId id, const ExprPtr& replacement);
ExprPtr subst_loop_start(const ExprPtr& e, SymbolId id, const ExprPtr& replacement);

// --- Printing ---------------------------------------------------------------
// ASCII rendering: λ(x) -> "lam.x", Λ(x) -> "LAM.x", ⊥ -> "_|_".
std::string to_string(const ExprPtr& e, const SymbolTable& syms);

}  // namespace sspar::sym
