// Immutable symbolic integer expressions in canonical (affine-normal) form.
//
// The representation follows the paper's needs (Section 3.2): expressions over
// program symbols, the per-iteration start value λ(x) (IterStart), the
// per-loop start value Λ(x) (LoopStart), symbolic array elements a[e]
// (ArrayElem, needed to express recurrences such as rowptr[i-1] + v and the
// Range-Test comparison rowptr[i] vs rowptr[i+1]), and the unknown value ⊥
// (Bottom).
//
// Canonical form invariants (enforced by the factory functions):
//  * Add nodes hold a sorted list of (atom, non-zero coefficient) pairs plus
//    an integer constant; they never nest, never have a single term with
//    coefficient 1 and constant 0, and never hold Const/Add atoms.
//  * Mul nodes hold >= 2 sorted non-constant factors; constant factors are
//    folded into Add coefficients.
//  * Bottom absorbs every operation.
// Because the form is canonical, structural equality is semantic equality for
// the affine fragment (atoms are compared structurally).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "symbolic/symbol.h"

namespace sspar::sym {

enum class ExprKind : uint8_t {
  Const,
  Sym,
  IterStart,  // λ(x): value of x at the start of the current iteration
  LoopStart,  // Λ(x): value of x at the start of the loop
  ArrayElem,  // a[index]
  Add,        // Σ coeff_k * atom_k + constant
  Mul,        // atom * atom * ...
  Div,        // integer division, operands (num, den)
  Mod,        // operands (num, den)
  Min,
  Max,
  Bottom,
};

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

class Expr {
 public:
  ExprKind kind;
  int64_t value = 0;                 // Const value / Add constant term
  SymbolId symbol = kInvalidSymbol;  // Sym/IterStart/LoopStart; array for ArrayElem
  std::vector<ExprPtr> operands;     // children (atoms for Add/Mul; args otherwise)
  std::vector<int64_t> coeffs;       // parallel to operands, Add only

  explicit Expr(ExprKind k) : kind(k) {}
};

// --- Factories (always canonicalize) ---------------------------------------
ExprPtr make_const(int64_t v);
ExprPtr make_sym(SymbolId id);
ExprPtr make_iter_start(SymbolId id);
ExprPtr make_loop_start(SymbolId id);
ExprPtr make_array_elem(SymbolId array, ExprPtr index);
ExprPtr make_bottom();

ExprPtr add(const ExprPtr& a, const ExprPtr& b);
ExprPtr sub(const ExprPtr& a, const ExprPtr& b);
ExprPtr negate(const ExprPtr& a);
ExprPtr mul(const ExprPtr& a, const ExprPtr& b);
ExprPtr mul_const(const ExprPtr& a, int64_t c);
ExprPtr div_floor(const ExprPtr& a, const ExprPtr& b);  // used only where exact
ExprPtr mod(const ExprPtr& a, const ExprPtr& b);
ExprPtr smin(const ExprPtr& a, const ExprPtr& b);
ExprPtr smax(const ExprPtr& a, const ExprPtr& b);

// --- Predicates & queries ---------------------------------------------------
bool is_bottom(const ExprPtr& e);
bool is_const(const ExprPtr& e);
std::optional<int64_t> const_value(const ExprPtr& e);

bool equal(const ExprPtr& a, const ExprPtr& b);
// Total structural order; used for canonical sorting.
int compare(const ExprPtr& a, const ExprPtr& b);
size_t hash(const ExprPtr& e);

// True if any subexpression satisfies `pred`.
bool any_of(const ExprPtr& e, const std::function<bool(const Expr&)>& pred);
bool contains_sym(const ExprPtr& e, SymbolId id);
bool contains_kind(const ExprPtr& e, ExprKind kind);

// Collects every ArrayElem subexpression (of `array` if given).
std::vector<ExprPtr> collect_array_elems(const ExprPtr& e,
                                         std::optional<SymbolId> array = std::nullopt);

// --- Linear view ------------------------------------------------------------
// expr == constant + Σ coeff_k * atom_k, where atoms are non-Add non-Const.
struct LinearForm {
  bool bottom = false;
  int64_t constant = 0;
  std::vector<std::pair<ExprPtr, int64_t>> terms;  // sorted by compare()

  // Coefficient of `atom` (0 if absent).
  int64_t coeff_of(const ExprPtr& atom) const;
};
LinearForm to_linear(const ExprPtr& e);
ExprPtr from_linear(const LinearForm& lf);

// If e == c1 * sym(id) + c0, returns (c1, c0).
std::optional<std::pair<int64_t, int64_t>> as_affine_in(const ExprPtr& e, SymbolId id);

// General split: e == coeff * sym(id) + rest, where rest does not mention
// sym(id) at all (also not inside non-linear atoms). Returns (coeff, rest).
struct AffineSplit {
  int64_t coeff = 0;
  ExprPtr rest;
};
std::optional<AffineSplit> split_affine_in(const ExprPtr& e, SymbolId id);

// --- Rewriting --------------------------------------------------------------
// Bottom-up rewrite: children are rebuilt first, then `fn` may replace the
// rebuilt node. Returning nullopt keeps the node.
using RewriteFn = std::function<std::optional<ExprPtr>(const ExprPtr&)>;
ExprPtr rewrite(const ExprPtr& e, const RewriteFn& fn);

ExprPtr subst_sym(const ExprPtr& e, SymbolId id, const ExprPtr& replacement);
ExprPtr subst_iter_start(const ExprPtr& e, SymbolId id, const ExprPtr& replacement);
ExprPtr subst_loop_start(const ExprPtr& e, SymbolId id, const ExprPtr& replacement);

// --- Printing ---------------------------------------------------------------
// ASCII rendering: λ(x) -> "lam.x", Λ(x) -> "LAM.x", ⊥ -> "_|_".
std::string to_string(const ExprPtr& e, const SymbolTable& syms);

}  // namespace sspar::sym
