#include "symbolic/arena.h"

#include <cassert>
#include <cstring>
#include <new>

#include "symbolic/recurrence.h"

namespace sspar::sym {

namespace {

thread_local ExprArena* g_current_arena = nullptr;

inline size_t hash_combine(size_t h, size_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
}

// Structural hash over a node "key view". Children contribute their cached
// hash_value, so the result is identical for structurally equal nodes across
// arenas and equals the hash the node will cache once interned.
size_t shallow_hash(ExprKind kind, int64_t value, SymbolId symbol, const ExprPtr* ops,
                    size_t nops, const int64_t* coeffs, size_t ncoeffs) {
  size_t h = static_cast<size_t>(kind) * 0x9e3779b97f4a7c15ull;
  h = hash_combine(h, static_cast<size_t>(value));
  h = hash_combine(h, static_cast<size_t>(symbol));
  for (size_t i = 0; i < nops; ++i) h = hash_combine(h, ops[i]->hash_value);
  for (size_t i = 0; i < ncoeffs; ++i) h = hash_combine(h, static_cast<size_t>(coeffs[i]));
  return h;
}

// Shallow structural identity between an interned node and a key view:
// children are compared by pointer (within one arena, interning makes this
// exact structural equality).
bool matches(const Expr& node, ExprKind kind, int64_t value, SymbolId symbol,
             const ExprPtr* ops, size_t nops, const int64_t* coeffs, size_t ncoeffs) {
  if (node.kind != kind || node.value != value || node.symbol != symbol) return false;
  if (node.operands.size() != nops || node.coeffs.size() != ncoeffs) return false;
  for (size_t i = 0; i < nops; ++i) {
    if (node.operands[i] != ops[i]) return false;
  }
  for (size_t i = 0; i < ncoeffs; ++i) {
    if (node.coeffs[i] != coeffs[i]) return false;
  }
  return true;
}

}  // namespace

ExprArena::ExprArena() {
  table_.resize(1024);
  // Bottom and the small constants are pre-interned so the hottest atoms
  // resolve through direct loads.
  bottom_ = node(ExprKind::Bottom, 0, kInvalidSymbol, nullptr, 0);
  for (int64_t v = kConstLo; v <= kConstHi; ++v) {
    small_consts_[v - kConstLo] = node(ExprKind::Const, v, kInvalidSymbol, nullptr, 0);
  }
}

ExprArena::~ExprArena() {
  for (const Expr* e : nodes_) const_cast<Expr*>(e)->~Expr();
}

RecurrenceBuilder& ExprArena::recurrences() {
  if (!recurrences_) recurrences_ = std::make_unique<RecurrenceBuilder>();
  return *recurrences_;
}

ExprArena& ExprArena::current() {
  if (g_current_arena) return *g_current_arena;
  static thread_local ExprArena default_arena;
  return default_arena;
}

Expr* ExprArena::allocate(ExprKind kind) {
  if (block_used_ == kBlockNodes) {
    blocks_.push_back(std::make_unique<std::byte[]>(kBlockNodes * sizeof(Expr)));
    block_used_ = 0;
  }
  void* slot = blocks_.back().get() + block_used_ * sizeof(Expr);
  ++block_used_;
  Expr* e = new (slot) Expr(kind);
  e->id = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(e);
  return e;
}

void ExprArena::insert(size_t hash, const Expr* node) {
  size_t mask = table_.size() - 1;
  size_t i = hash & mask;
  while (table_[i].node) i = (i + 1) & mask;
  table_[i] = {hash, node};
  ++table_used_;
}

void ExprArena::rehash(size_t new_capacity) {
  std::vector<TableSlot> old = std::move(table_);
  table_.assign(new_capacity, TableSlot{});
  table_used_ = 0;
  for (const TableSlot& slot : old) {
    if (slot.node) insert(slot.hash, slot.node);
  }
}

ExprPtr ExprArena::node(ExprKind kind, int64_t value, SymbolId symbol, const ExprPtr* ops,
                        size_t nops, const int64_t* coeffs, size_t ncoeffs) {
  size_t h = shallow_hash(kind, value, symbol, ops, nops, coeffs, ncoeffs);
  size_t mask = table_.size() - 1;
  size_t i = h & mask;
  while (table_[i].node) {
    if (table_[i].hash == h &&
        matches(*table_[i].node, kind, value, symbol, ops, nops, coeffs, ncoeffs)) {
      ++intern_hits_;
      return table_[i].node;
    }
    i = (i + 1) & mask;
  }

  Expr* e = allocate(kind);
  e->value = value;
  e->symbol = symbol;
  e->operands.assign(ops, ops + nops);
  e->coeffs.assign(coeffs, coeffs + ncoeffs);
  e->hash_value = h;
  e->subtree_kinds = kind_bit(kind);
  for (size_t k = 0; k < nops; ++k) {
    e->subtree_kinds |= ops[k]->subtree_kinds;
    e->atom_bloom |= ops[k]->atom_bloom;
  }
  if (kind == ExprKind::Sym || kind == ExprKind::IterStart || kind == ExprKind::LoopStart) {
    e->atom_bloom |= atom_bloom_bit(kind, symbol);
  }

  if ((table_used_ + 1) * 10 >= table_.size() * 7) {
    rehash(table_.size() * 2);
  }
  insert(h, e);
  return e;
}

ExprPtr ExprArena::constant(int64_t v) {
  if (v >= kConstLo && v <= kConstHi) return small_consts_[v - kConstLo];
  return node(ExprKind::Const, v, kInvalidSymbol, nullptr, 0);
}

namespace {
inline ExprPtr cached_atom(std::vector<const Expr*>& cache, SymbolId id, ExprArena& arena,
                           ExprKind kind) {
  if (id != kInvalidSymbol) {
    if (cache.size() <= id) cache.resize(id + 1, nullptr);
    if (cache[id]) return cache[id];
    ExprPtr e = arena.node(kind, 0, id, nullptr, 0);
    cache[id] = e;
    return e;
  }
  return arena.node(kind, 0, id, nullptr, 0);
}
}  // namespace

ExprPtr ExprArena::symbol(SymbolId id) {
  return cached_atom(sym_cache_, id, *this, ExprKind::Sym);
}
ExprPtr ExprArena::iter_start(SymbolId id) {
  return cached_atom(iter_cache_, id, *this, ExprKind::IterStart);
}
ExprPtr ExprArena::loop_start(SymbolId id) {
  return cached_atom(loop_cache_, id, *this, ExprKind::LoopStart);
}

size_t ExprArena::SubstKeyHash::operator()(const SubstKey& k) const {
  size_t h = std::hash<const void*>{}(k.node);
  h = hash_combine(h, std::hash<const void*>{}(k.replacement));
  h = hash_combine(h, static_cast<size_t>(k.symbol));
  h = hash_combine(h, static_cast<size_t>(k.kind));
  return h;
}

ExprPtr ExprArena::memo_get(const SubstKey& key) const {
  auto it = subst_memo_.find(key);
  return it == subst_memo_.end() ? nullptr : it->second;
}

void ExprArena::memo_put(const SubstKey& key, ExprPtr result) {
  subst_memo_.emplace(key, result);
}

bool ExprArena::owns(const ExprPtr& e) const {
  return e && e->id < nodes_.size() && nodes_[e->id] == e;
}

ExprArena::Stats ExprArena::stats() const {
  Stats s;
  s.nodes = nodes_.size();
  s.intern_hits = intern_hits_;
  s.memo_entries = subst_memo_.size();
  return s;
}

ArenaScope::ArenaScope(ExprArena& arena) : prev_(g_current_arena) {
  g_current_arena = &arena;
}

ArenaScope::~ArenaScope() { g_current_arena = prev_; }

}  // namespace sspar::sym
