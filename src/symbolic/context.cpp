#include "symbolic/context.h"

#include <algorithm>

namespace sspar::sym {

namespace {

constexpr int kMaxDepth = 3;

Range bound_range_impl(const ExprPtr& e, const AssumptionContext& ctx, int depth);

Range ctx_atom_range(const ExprPtr& atom, const AssumptionContext& ctx, int depth) {
  switch (atom->kind) {
    case ExprKind::Sym:
      if (const Range* r = ctx.bound(atom->symbol)) return *r;
      return Range::exact(atom);
    case ExprKind::ArrayElem:
      if (ctx.elem_value()) {
        if (auto r = ctx.elem_value()(atom->symbol, atom->operands[0])) return *r;
      }
      return Range::exact(atom);
    case ExprKind::Min:
    case ExprKind::Max: {
      Range acc = bound_range_impl(atom->operands[0], ctx, depth);
      for (size_t i = 1; i < atom->operands.size(); ++i) {
        Range next = bound_range_impl(atom->operands[i], ctx, depth);
        auto pick = [&](const ExprPtr& x, const ExprPtr& y) -> ExprPtr {
          if (!x || !y) return nullptr;
          return atom->kind == ExprKind::Min ? smin(x, y) : smax(x, y);
        };
        acc = Range::of(pick(acc.lo(), next.lo()), pick(acc.hi(), next.hi()));
      }
      return acc;
    }
    case ExprKind::Div: {
      auto den = const_value(atom->operands[1]);
      if (den && *den > 0) {
        Range num = bound_range_impl(atom->operands[0], ctx, depth);
        ExprPtr lo = num.lo() ? div_floor(num.lo(), atom->operands[1]) : nullptr;
        ExprPtr hi = num.hi() ? div_floor(num.hi(), atom->operands[1]) : nullptr;
        return Range::of(std::move(lo), std::move(hi));
      }
      return Range::exact(atom);
    }
    case ExprKind::Mod: {
      auto den = const_value(atom->operands[1]);
      if (den && *den > 0) return Range::of_consts(0, *den - 1);  // floor-mod semantics
      return Range::exact(atom);
    }
    case ExprKind::Mul: {
      // Product of atoms: bounded below by 0 if all factors are provably >= 0.
      bool all_nonneg = true;
      for (const auto& f : atom->operands) {
        Range fr = ctx_atom_range(f, ctx, depth);
        if (!fr.lo() || prove_ge(fr.lo(), make_const(0), ctx) != Truth::True) {
          all_nonneg = false;
          break;
        }
      }
      if (all_nonneg) return Range::of(make_const(0), nullptr);
      return Range::exact(atom);
    }
    default:
      return Range::exact(atom);
  }
}

// Rewrites Σ c_i * a[e_i] terms of the same array by pairing positive and
// negative coefficients through the elem_diff fact (monotonicity). Returns the
// interval contribution of the paired parts and removes them from `terms`.
Range pair_array_elems(std::vector<std::pair<ExprPtr, int64_t>>& terms,
                       const AssumptionContext& ctx) {
  Range acc = Range::exact(make_const(0));
  if (!ctx.elem_diff()) return acc;
  for (size_t i = 0; i < terms.size(); ++i) {
    auto& [ti, ci] = terms[i];
    if (ti->kind != ExprKind::ArrayElem || ci == 0) continue;
    for (size_t j = 0; j < terms.size() && ci != 0; ++j) {
      if (j == i) continue;
      auto& [tj, cj] = terms[j];
      if (tj->kind != ExprKind::ArrayElem || tj->symbol != ti->symbol) continue;
      if ((ci > 0) == (cj > 0) || cj == 0) continue;
      // ci and cj have opposite signs; orient the query as (positive, negative).
      const bool i_pos = ci > 0;
      const ExprPtr& hi_idx = i_pos ? ti->operands[0] : tj->operands[0];
      const ExprPtr& lo_idx = i_pos ? tj->operands[0] : ti->operands[0];
      auto diff = ctx.elem_diff()(ti->symbol, hi_idx, lo_idx);
      if (!diff) continue;
      int64_t mag = std::min(ci < 0 ? -ci : ci, cj < 0 ? -cj : cj);
      acc = range_add(acc, range_mul_const(*diff, mag));
      ci += i_pos ? -mag : mag;
      cj += i_pos ? mag : -mag;
    }
  }
  return acc;
}

Range bound_range_impl(const ExprPtr& e, const AssumptionContext& ctx, int depth) {
  if (!e || is_bottom(e)) return Range::bottom();
  if (depth <= 0) return Range::exact(e);
  LinearForm lf = to_linear(e);
  if (lf.bottom) return Range::bottom();
  auto terms = lf.terms;
  Range acc = range_add(Range::exact(make_const(lf.constant)), pair_array_elems(terms, ctx));
  for (const auto& [atom, coeff] : terms) {
    if (coeff == 0) continue;
    acc = range_add(acc, range_mul_const(ctx_atom_range(atom, ctx, depth - 1), coeff));
    if (acc.is_bottom()) return acc;
  }
  return acc;
}

// Chain-substitution bound search. Interval evaluation alone loses
// correlations (the lower bound of ROWLEN - i with i ∈ [1 : ROWLEN] is 0, but
// substituting ROWLEN's own bound first yields 1 - ROWLEN). The search
// substitutes ONE atom's bound at a time, re-canonicalizes (so symbolic
// cancellation fires), and recurses; all atom orders are explored up to a
// small depth. Returns the best (max for lower, min for upper) constant bound
// derivable, or nullopt.
std::optional<int64_t> chain_bound(const ExprPtr& e, const AssumptionContext& ctx, bool lower,
                                   int depth) {
  if (!e || is_bottom(e)) return std::nullopt;
  if (auto c = const_value(e)) return *c;
  if (depth <= 0) return std::nullopt;
  LinearForm lf = to_linear(e);
  if (lf.bottom) return std::nullopt;

  std::optional<int64_t> best;
  auto consider = [&](std::optional<int64_t> candidate) {
    if (!candidate) return;
    if (!best) {
      best = candidate;
    } else {
      best = lower ? std::max(*best, *candidate) : std::min(*best, *candidate);
    }
  };

  // First try collapsing array-element pairs through the monotonicity facts.
  {
    auto terms = lf.terms;
    Range paired = pair_array_elems(terms, ctx);
    bool changed = terms.size() != lf.terms.size();
    if (!changed) {
      for (size_t i = 0; i < terms.size(); ++i) {
        changed = changed || terms[i].second != lf.terms[i].second;
      }
    }
    if (changed) {
      ExprPtr contribution = lower ? paired.lo() : paired.hi();
      if (contribution) {
        LinearForm rest;
        rest.constant = lf.constant;
        for (const auto& [atom, coeff] : terms) {
          if (coeff != 0) rest.terms.emplace_back(atom, coeff);
        }
        consider(chain_bound(add(from_linear(rest), contribution), ctx, lower, depth - 1));
      }
    }
  }

  // Then substitute each atom's bound in turn.
  for (const auto& [atom, coeff] : lf.terms) {
    if (coeff == 0) continue;
    Range r = ctx_atom_range(atom, ctx, kMaxDepth);
    // Direction: positive coefficient needs the atom's lower bound for a
    // lower bound of e, and vice versa.
    bool want_lo = (coeff > 0) == lower;
    ExprPtr replacement = want_lo ? r.lo() : r.hi();
    if (!replacement || equal(replacement, atom)) continue;
    // e with this atom replaced by its bound.
    LinearForm rest;
    rest.constant = lf.constant;
    for (const auto& [other, c] : lf.terms) {
      if (!equal(other, atom)) rest.terms.emplace_back(other, c);
    }
    ExprPtr substituted = add(from_linear(rest), mul_const(replacement, coeff));
    consider(chain_bound(substituted, ctx, lower, depth - 1));
  }
  return best;
}

}  // namespace

Range bound_range(const ExprPtr& e, const AssumptionContext& ctx) {
  return bound_range_impl(e, ctx, kMaxDepth);
}

Truth prove_ge(const ExprPtr& a, const ExprPtr& b, const AssumptionContext& ctx) {
  if (!a || !b || is_bottom(a) || is_bottom(b)) return Truth::Unknown;
  ExprPtr d = sub(a, b);
  if (auto c = const_value(d)) return *c >= 0 ? Truth::True : Truth::False;
  // Fast path: plain interval evaluation.
  Range r = bound_range(d, ctx);
  if (auto c = const_value(r.lo()); c && *c >= 0) return Truth::True;
  if (auto c = const_value(r.hi()); c && *c < 0) return Truth::False;
  // Precise path: chain substitution with re-canonicalization.
  if (auto lo = chain_bound(d, ctx, /*lower=*/true, 5); lo && *lo >= 0) return Truth::True;
  if (auto hi = chain_bound(d, ctx, /*lower=*/false, 5); hi && *hi < 0) return Truth::False;
  return Truth::Unknown;
}

Truth prove_gt(const ExprPtr& a, const ExprPtr& b, const AssumptionContext& ctx) {
  return prove_ge(a, add(b, make_const(1)), ctx);
}

Truth prove_le(const ExprPtr& a, const ExprPtr& b, const AssumptionContext& ctx) {
  return prove_ge(b, a, ctx);
}

Truth prove_lt(const ExprPtr& a, const ExprPtr& b, const AssumptionContext& ctx) {
  return prove_gt(b, a, ctx);
}

Truth prove_eq(const ExprPtr& a, const ExprPtr& b, const AssumptionContext& ctx) {
  if (equal(a, b)) return Truth::True;
  Truth ge = prove_ge(a, b, ctx);
  Truth le = prove_le(a, b, ctx);
  if (ge == Truth::True && le == Truth::True) return Truth::True;
  if (ge == Truth::False || le == Truth::False) return Truth::False;
  return Truth::Unknown;
}

Truth prove_nonneg(const Range& r, const AssumptionContext& ctx) {
  if (!r.lo()) return Truth::Unknown;
  return prove_ge(r.lo(), make_const(0), ctx);
}

Truth prove_pos(const Range& r, const AssumptionContext& ctx) {
  if (!r.lo()) return Truth::Unknown;
  return prove_ge(r.lo(), make_const(1), ctx);
}

const char* truth_name(Truth t) {
  switch (t) {
    case Truth::True:
      return "true";
    case Truth::False:
      return "false";
    case Truth::Unknown:
      return "unknown";
  }
  return "?";
}

}  // namespace sspar::sym
