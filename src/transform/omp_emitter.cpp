#include "transform/omp_emitter.h"

#include <set>

#include "frontend/printer.h"
#include "frontend/sema.h"
#include "support/diagnostics.h"

namespace sspar::transform {

int annotate_parallel_loops(ast::Program& program,
                            const std::vector<core::LoopVerdict>& verdicts) {
  std::set<const ast::For*> parallel;
  std::map<const ast::For*, const core::LoopVerdict*> by_loop;
  for (const auto& v : verdicts) {
    if (v.parallel) parallel.insert(v.loop);
    by_loop[v.loop] = &v;
  }

  int annotated = 0;
  for (auto& function : program.functions) {
    // Pre-order walk; skip subtrees of annotated loops so only the outermost
    // parallel loop of each nest gets the pragma.
    std::function<void(ast::Stmt*)> visit = [&](ast::Stmt* stmt) {
      if (!stmt) return;
      if (auto* loop = stmt->as<ast::For>()) {
        if (parallel.count(loop)) {
          const core::LoopVerdict* v = by_loop[loop];
          std::string pragma = "#pragma omp parallel for";
          if (!v->privates.empty()) {
            pragma += " private(";
            for (size_t i = 0; i < v->privates.size(); ++i) {
              if (i) pragma += ", ";
              pragma += v->privates[i]->name;
            }
            pragma += ")";
          }
          loop->annotations.push_back(pragma);
          loop->annotations.push_back("// sspar: " + v->reason);
          ++annotated;
          return;  // don't annotate nested loops
        }
        visit(loop->body.get());
        return;
      }
      switch (stmt->kind) {
        case ast::StmtNodeKind::Compound:
          for (auto& s : stmt->as<ast::Compound>()->body) visit(s.get());
          break;
        case ast::StmtNodeKind::If: {
          auto* s = stmt->as<ast::If>();
          visit(s->then_branch.get());
          visit(s->else_branch.get());
          break;
        }
        case ast::StmtNodeKind::While:
          visit(stmt->as<ast::While>()->body.get());
          break;
        default:
          break;
      }
    };
    visit(function->body.get());
  }
  return annotated;
}

TranslateResult translate_source(
    std::string_view source, const core::AnalyzerOptions& options,
    const std::vector<std::pair<std::string, int64_t>>& assumptions) {
  TranslateResult result;
  support::DiagnosticEngine diags;
  result.parsed = ast::parse_and_resolve(source, diags);
  result.diagnostics = diags.dump();
  if (!result.parsed.ok) return result;

  core::Analyzer analyzer(*result.parsed.program, *result.parsed.symbols, options);
  for (const auto& [name, min] : assumptions) {
    if (const ast::VarDecl* decl = result.parsed.program->find_global(name)) {
      analyzer.assume_ge(decl, min);
    }
  }
  analyzer.run();
  core::Parallelizer parallelizer(analyzer);
  for (const auto& function : result.parsed.program->functions) {
    auto verdicts = parallelizer.analyze_all(*function);
    result.verdicts.insert(result.verdicts.end(), verdicts.begin(), verdicts.end());
  }
  result.parallelized = annotate_parallel_loops(*result.parsed.program, result.verdicts);
  result.output = ast::print_program(*result.parsed.program);
  result.ok = true;
  return result;
}

}  // namespace sspar::transform
