#include "transform/omp_emitter.h"

#include <set>

#include "frontend/printer.h"
#include "frontend/sema.h"
#include "pipeline/session.h"
#include "support/diagnostics.h"
#include "support/text.h"

namespace sspar::transform {

namespace {

std::string build_pragma(const core::LoopVerdict& v) {
  std::string pragma = "#pragma omp parallel for";
  if (!v.privates.empty()) {
    pragma += " private(";
    for (size_t i = 0; i < v.privates.size(); ++i) {
      if (i) pragma += ", ";
      pragma += v.privates[i]->name;
    }
    pragma += ")";
  }
  return pragma;
}

// The sspar::rt runtime check call guarding a hybrid dual-version loop. The
// re-parsed call stays unbound (the frontend leaves unknown callees opaque),
// and the interpreter handles these names as intrinsics.
std::string build_hybrid_check(const core::LoopVerdict& v) {
  switch (v.hybrid_property) {
    case core::EnablingProperty::Monotonic:
      return support::format("sspar_check_nondecreasing(%s, %s, %s)",
                             v.hybrid_index_array.c_str(), v.hybrid_check_lo.c_str(),
                             v.hybrid_check_hi.c_str());
    case core::EnablingProperty::Injective:
      return support::format("sspar_check_injective(%s, %s, %s)",
                             v.hybrid_index_array.c_str(), v.hybrid_check_lo.c_str(),
                             v.hybrid_check_hi.c_str());
    case core::EnablingProperty::SubsetInjective:
      return support::format("sspar_check_subset_injective(%s, %s, %s, %lld)",
                             v.hybrid_index_array.c_str(), v.hybrid_check_lo.c_str(),
                             v.hybrid_check_hi.c_str(), (long long)v.hybrid_min_value);
    default:
      return {};
  }
}

}  // namespace

int annotate_parallel_loops(ast::Program& program,
                            const std::vector<core::LoopVerdict>& verdicts) {
  std::map<const ast::For*, const core::LoopVerdict*> by_loop;
  // Duplicate verdicts for the same loop resolve deterministically: a
  // parallel verdict beats a hybrid one beats a serial one; ties keep the
  // first verdict seen, independent of input order beyond that.
  auto rank = [](const core::LoopVerdict* v) { return v->parallel ? 2 : (v->hybrid ? 1 : 0); };
  for (const auto& v : verdicts) {
    auto [it, inserted] = by_loop.emplace(v.loop, &v);
    if (!inserted && rank(&v) > rank(it->second)) it->second = &v;
  }

  int annotated = 0;
  for (auto& function : program.functions) {
    // Pre-order walk; skip subtrees of annotated loops so only the outermost
    // parallel loop of each nest gets the pragma.
    std::function<void(ast::Stmt*)> visit = [&](ast::Stmt* stmt) {
      if (!stmt) return;
      if (auto* loop = stmt->as<ast::For>()) {
        auto found = by_loop.find(loop);
        const core::LoopVerdict* v = found == by_loop.end() ? nullptr : found->second;
        if (v && v->parallel) {
          loop->annotations.push_back(build_pragma(*v));
          loop->annotations.push_back("// sspar: " + v->reason);
          if (v->schedule != core::LoopVerdict::ScheduleHint::None) {
            const char* kind =
                v->schedule == core::LoopVerdict::ScheduleHint::Static ? "static" : "dynamic";
            loop->annotations.push_back(support::format("// sspar: schedule(%s) — %s", kind,
                                                        v->schedule_reason.c_str()));
          }
          ++annotated;
          return;  // don't annotate nested loops
        }
        if (v && v->hybrid) {
          std::string check = build_hybrid_check(*v);
          if (!check.empty()) {
            loop->annotations.push_back(support::format(
                "// sspar: hybrid — %s of '%s' verified at runtime",
                core::property_name(v->hybrid_property), v->hybrid_index_array.c_str()));
            loop->hybrid_check = check;
            loop->hybrid_pragma = build_pragma(*v);
            return;  // the dual-version emission covers the whole nest
          }
        }
        visit(loop->body.get());
        return;
      }
      switch (stmt->kind) {
        case ast::StmtNodeKind::Compound:
          for (auto& s : stmt->as<ast::Compound>()->body) visit(s.get());
          break;
        case ast::StmtNodeKind::If: {
          auto* s = stmt->as<ast::If>();
          visit(s->then_branch.get());
          visit(s->else_branch.get());
          break;
        }
        case ast::StmtNodeKind::While:
          visit(stmt->as<ast::While>()->body.get());
          break;
        default:
          break;
      }
    };
    visit(function->body.get());
  }
  return annotated;
}

void clear_annotations(ast::Program& program) {
  for (auto& function : program.functions) {
    // collect_loops is recursive, so this reaches nested loops too.
    ast::Stmt* body = function->body.get();
    for (ast::For* loop : ast::collect_loops(body)) {
      loop->annotations.clear();
      loop->hybrid_check.clear();
      loop->hybrid_pragma.clear();
    }
  }
}

TranslateResult translate_source(std::string_view source, const core::AnalyzerOptions& options,
                                 const pipeline::Assumptions& assumptions) {
  pipeline::Session session(std::string(source), assumptions);
  TranslateResult result;
  if (session.parse()) {
    session.analyze(options);
    if (const auto* verdicts = session.parallelize()) result.verdicts = *verdicts;
    result.parallelized = session.annotate();
    result.output = session.emit().output;
    result.ok = true;
  }
  result.diagnostics = session.diagnostics().dump();
  result.diags = session.diagnostics().diagnostics();
  // Transfers AST + symbol ownership into the result; verdicts keep pointing
  // at the same nodes.
  result.parsed = session.take_parse();
  return result;
}

}  // namespace sspar::transform
