#include "transform/omp_emitter.h"

#include <set>

#include "frontend/printer.h"
#include "frontend/sema.h"
#include "pipeline/session.h"
#include "support/diagnostics.h"

namespace sspar::transform {

int annotate_parallel_loops(ast::Program& program,
                            const std::vector<core::LoopVerdict>& verdicts) {
  std::set<const ast::For*> parallel;
  std::map<const ast::For*, const core::LoopVerdict*> by_loop;
  for (const auto& v : verdicts) {
    if (v.parallel) parallel.insert(v.loop);
    by_loop[v.loop] = &v;
  }

  int annotated = 0;
  for (auto& function : program.functions) {
    // Pre-order walk; skip subtrees of annotated loops so only the outermost
    // parallel loop of each nest gets the pragma.
    std::function<void(ast::Stmt*)> visit = [&](ast::Stmt* stmt) {
      if (!stmt) return;
      if (auto* loop = stmt->as<ast::For>()) {
        if (parallel.count(loop)) {
          const core::LoopVerdict* v = by_loop[loop];
          std::string pragma = "#pragma omp parallel for";
          if (!v->privates.empty()) {
            pragma += " private(";
            for (size_t i = 0; i < v->privates.size(); ++i) {
              if (i) pragma += ", ";
              pragma += v->privates[i]->name;
            }
            pragma += ")";
          }
          loop->annotations.push_back(pragma);
          loop->annotations.push_back("// sspar: " + v->reason);
          ++annotated;
          return;  // don't annotate nested loops
        }
        visit(loop->body.get());
        return;
      }
      switch (stmt->kind) {
        case ast::StmtNodeKind::Compound:
          for (auto& s : stmt->as<ast::Compound>()->body) visit(s.get());
          break;
        case ast::StmtNodeKind::If: {
          auto* s = stmt->as<ast::If>();
          visit(s->then_branch.get());
          visit(s->else_branch.get());
          break;
        }
        case ast::StmtNodeKind::While:
          visit(stmt->as<ast::While>()->body.get());
          break;
        default:
          break;
      }
    };
    visit(function->body.get());
  }
  return annotated;
}

void clear_annotations(ast::Program& program) {
  for (auto& function : program.functions) {
    // collect_loops is recursive, so this reaches nested loops too.
    ast::Stmt* body = function->body.get();
    for (ast::For* loop : ast::collect_loops(body)) loop->annotations.clear();
  }
}

TranslateResult translate_source(std::string_view source, const core::AnalyzerOptions& options,
                                 const pipeline::Assumptions& assumptions) {
  pipeline::Session session(std::string(source), assumptions);
  TranslateResult result;
  if (session.parse()) {
    session.analyze(options);
    if (const auto* verdicts = session.parallelize()) result.verdicts = *verdicts;
    result.parallelized = session.annotate();
    result.output = session.emit().output;
    result.ok = true;
  }
  result.diagnostics = session.diagnostics().dump();
  result.diags = session.diagnostics().diagnostics();
  // Transfers AST + symbol ownership into the result; verdicts keep pointing
  // at the same nodes.
  result.parsed = session.take_parse();
  return result;
}

}  // namespace sspar::transform
