// Source-to-source output: annotates parallel loops with OpenMP pragmas and
// re-emits the program (the Cetus-style back end of the pipeline).
#pragma once

#include <string>
#include <vector>

#include "core/parallelizer.h"
#include "frontend/ast.h"
#include "frontend/sema.h"
#include "pipeline/assumptions.h"
#include "support/diagnostics.h"

namespace sspar::transform {

// Annotates every outermost parallel loop with
//   #pragma omp parallel for private(...)
// Nested parallel loops inside an annotated loop are left untouched (no
// nested parallel regions). Returns the number of loops annotated.
int annotate_parallel_loops(ast::Program& program,
                            const std::vector<core::LoopVerdict>& verdicts);

// Strips every loop annotation added by annotate_parallel_loops, so a
// program can be re-annotated under different verdicts (pipeline::Session
// re-entrancy).
void clear_annotations(ast::Program& program);

// Convenience one-shot: parse -> analyze -> parallelize -> annotate -> print.
// Compatibility wrapper over pipeline::Session — prefer the Session API for
// anything that re-runs stages (ablation loops, batch analysis).
struct TranslateResult {
  bool ok = false;
  std::string output;                          // transformed source
  // Owns the AST the verdicts point into; must stay alive while verdicts are
  // consumed.
  ast::ParseResult parsed;
  std::vector<core::LoopVerdict> verdicts;     // per-loop analysis results
  int parallelized = 0;                        // loops annotated
  std::string diagnostics;                     // frontend errors joined, if any
  // The same diagnostics as structured records (stable code + location).
  std::vector<support::Diagnostic> diags;
};
// `assumptions` declares lower bounds for global symbols (e.g. problem sizes
// known to be positive), mirroring the paper's implicit n >= 1 assumptions.
TranslateResult translate_source(std::string_view source,
                                 const core::AnalyzerOptions& options = {},
                                 const pipeline::Assumptions& assumptions = {});

}  // namespace sspar::transform
