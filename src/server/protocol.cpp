#include "server/protocol.h"

namespace sspar::server {

using support::json::Array;
using support::json::Object;
using support::json::Value;

const char* method_name(Method method) {
  switch (method) {
    case Method::Analyze:
      return "analyze";
    case Method::Ping:
      return "ping";
    case Method::Stats:
      return "stats";
    case Method::Shutdown:
      return "shutdown";
    case Method::OpenSession:
      return "open_session";
    case Method::Update:
      return "update";
    case Method::CloseSession:
      return "close_session";
  }
  return "ping";
}

std::optional<Request> parse_request(std::string_view line, std::string* error) {
  auto fail = [error](const char* why) -> std::optional<Request> {
    if (error) *error = why;
    return std::nullopt;
  };
  std::string parse_error;
  std::optional<Value> doc = support::json::parse(line, &parse_error);
  if (!doc) {
    if (error) *error = "malformed JSON: " + parse_error;
    return std::nullopt;
  }
  if (!doc->is_object()) return fail("request must be a JSON object");
  const Value* method = doc->find("method");
  if (!method || !method->is_string()) return fail("missing \"method\"");
  Request request;
  const std::string& name = method->as_string();
  if (name == "ping") {
    request.method = Method::Ping;
    return request;
  }
  if (name == "stats") {
    request.method = Method::Stats;
    return request;
  }
  if (name == "shutdown") {
    request.method = Method::Shutdown;
    return request;
  }
  if (name == "open_session" || name == "update" || name == "close_session") {
    const Value* session = doc->find("session");
    if (!session || !session->is_string() || session->as_string().empty()) {
      return fail("session methods need a non-empty \"session\" string");
    }
    request.session = session->as_string();
    if (name == "open_session") {
      request.method = Method::OpenSession;
      if (const Value* assume = doc->find("assume")) {
        if (!assume->is_array()) return fail("\"assume\" must be an array of NAME=VALUE");
        for (const Value& spec : assume->as_array()) {
          if (!spec.is_string() || !request.assumptions.add_spec(spec.as_string())) {
            return fail("bad \"assume\" spec (want NAME=VALUE)");
          }
        }
      }
      return request;
    }
    if (name == "close_session") {
      request.method = Method::CloseSession;
      return request;
    }
    request.method = Method::Update;
    const Value* source = doc->find("source");
    if (!source || !source->is_string()) return fail("update needs a \"source\" string");
    request.source = source->as_string();
    if (const Value* emit = doc->find("emit")) {
      if (!emit->is_bool()) return fail("\"emit\" must be a bool");
      request.emit = emit->as_bool();
    }
    return request;
  }
  if (name != "analyze") return fail("unknown method");
  request.method = Method::Analyze;
  const Value* programs = doc->find("programs");
  if (!programs || !programs->is_array()) return fail("analyze needs a \"programs\" array");
  if (programs->as_array().empty()) return fail("\"programs\" must not be empty");
  for (const Value& entry : programs->as_array()) {
    if (!entry.is_object()) return fail("program entries must be objects");
    const Value* name_field = entry.find("name");
    const Value* source = entry.find("source");
    if (!name_field || !name_field->is_string()) return fail("program missing \"name\"");
    if (!source || !source->is_string()) return fail("program missing \"source\"");
    driver::ProgramInput input;
    input.name = name_field->as_string();
    input.source = source->as_string();
    if (const Value* assume = entry.find("assume")) {
      if (!assume->is_array()) return fail("\"assume\" must be an array of NAME=VALUE");
      for (const Value& spec : assume->as_array()) {
        if (!spec.is_string() || !input.assumptions.add_spec(spec.as_string())) {
          return fail("bad \"assume\" spec (want NAME=VALUE)");
        }
      }
    }
    request.programs.push_back(std::move(input));
  }
  if (const Value* emit = doc->find("emit")) {
    if (!emit->is_bool()) return fail("\"emit\" must be a bool");
    request.emit = emit->as_bool();
  }
  if (const Value* threads = doc->find("threads")) {
    if (!threads->is_int() || threads->as_int() < 0) {
      return fail("\"threads\" must be a non-negative integer");
    }
    request.threads = static_cast<unsigned>(threads->as_int());
  }
  return request;
}

std::string make_analyze_request(const std::vector<driver::ProgramInput>& programs,
                                 bool emit, unsigned threads) {
  Object o;
  o.emplace("method", "analyze");
  Array entries;
  for (const driver::ProgramInput& input : programs) {
    Object entry;
    entry.emplace("name", input.name);
    entry.emplace("source", input.source);
    if (!input.assumptions.empty()) {
      Array assume;
      for (const pipeline::Assumption& a : input.assumptions.items()) {
        assume.emplace_back(a.name + "=" + std::to_string(a.value));
      }
      entry.emplace("assume", std::move(assume));
    }
    entries.push_back(Value(std::move(entry)));
  }
  o.emplace("programs", std::move(entries));
  o.emplace("emit", emit);
  o.emplace("threads", static_cast<int64_t>(threads));
  return Value(std::move(o)).dump();
}

std::string make_simple_request(Method method) {
  Object o;
  o.emplace("method", method_name(method));
  return Value(std::move(o)).dump();
}

std::string make_open_session_request(const std::string& session,
                                      const pipeline::Assumptions& assumptions) {
  Object o;
  o.emplace("method", "open_session");
  o.emplace("session", session);
  if (!assumptions.empty()) {
    Array assume;
    for (const pipeline::Assumption& a : assumptions.items()) {
      assume.emplace_back(a.name + "=" + std::to_string(a.value));
    }
    o.emplace("assume", std::move(assume));
  }
  return Value(std::move(o)).dump();
}

std::string make_update_request(const std::string& session, const std::string& source,
                                bool emit) {
  Object o;
  o.emplace("method", "update");
  o.emplace("session", session);
  o.emplace("source", source);
  o.emplace("emit", emit);
  return Value(std::move(o)).dump();
}

std::string make_close_session_request(const std::string& session) {
  Object o;
  o.emplace("method", "close_session");
  o.emplace("session", session);
  return Value(std::move(o)).dump();
}

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::BadRequest:
      return "E_BAD_REQUEST";
    case ErrorCode::ReqTooLarge:
      return "E_REQ_TOO_LARGE";
    case ErrorCode::Timeout:
      return "E_TIMEOUT";
    case ErrorCode::Deadline:
      return "E_DEADLINE";
    case ErrorCode::Overloaded:
      return "E_OVERLOADED";
    case ErrorCode::Internal:
      return "E_INTERNAL";
    case ErrorCode::NoSession:
      return "E_NO_SESSION";
  }
  return "E_INTERNAL";
}

std::string error_response(ErrorCode code, const std::string& message) {
  Object error;
  error.emplace("code", error_code_name(code));
  error.emplace("message", message);
  Object o;
  o.emplace("ok", false);
  o.emplace("error", std::move(error));
  return Value(std::move(o)).dump();
}

std::string error_response(const std::string& message) {
  return error_response(ErrorCode::BadRequest, message);
}

}  // namespace sspar::server
