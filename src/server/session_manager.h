// Named incremental-analysis sessions for the analysis server.
//
// A session is one warm incremental::IncrementalEngine held between requests
// so an editor front end can stream source versions ("update") against a
// persistent dirty-cone state. The manager bounds daemon memory two ways:
//
//   * LRU cap — opening a session past max_sessions evicts the least
//     recently used one (its engine is dropped; a later update on the
//     evicted name answers E_NO_SESSION),
//   * idle GC — sessions untouched for longer than idle_ms are purged by the
//     server's accept-loop tick (and rejected at access time, so an expired
//     session can never serve a stale update even before the tick runs).
//
// Thread safety: the manager's map is mutex-guarded; each session carries
// its own mutex serializing engine use, so two connections updating one
// session never interleave inside the engine, while different sessions run
// concurrently. Slots are handed out as shared_ptr — a slot being evicted
// while a handler still runs its update stays alive until the handler drops
// it.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "incremental/incremental_engine.h"
#include "support/json.h"

namespace sspar::server {

class SessionManager {
 public:
  struct Slot {
    explicit Slot(incremental::EngineOptions options) : engine(std::move(options)) {}
    incremental::IncrementalEngine engine;
    std::mutex mutex;  // serializes engine use per session
    // Guarded by the manager's mutex, not the slot's.
    std::chrono::steady_clock::time_point last_used{};
    uint64_t lru_seq = 0;
  };

  // `max_sessions` must be >= 1; `idle_ms` <= 0 disables idle GC.
  SessionManager(size_t max_sessions, int idle_ms)
      : max_sessions_(max_sessions != 0 ? max_sessions : 1), idle_ms_(idle_ms) {}

  // Creates (or replaces — re-opening a name starts a fresh engine) a
  // session, evicting the least recently used session when over the cap.
  std::shared_ptr<Slot> open(const std::string& name, incremental::EngineOptions options);

  // The named session, with its LRU clock touched; null when the name is
  // unknown, evicted, or idle-expired (expiry is enforced here too, so a
  // stale session is refused even before the next purge tick).
  std::shared_ptr<Slot> find(const std::string& name);

  // True when the session existed and was closed.
  bool close(const std::string& name);

  // Drops every session idle past idle_ms; returns the number purged.
  // Called from the server's accept-loop tick.
  size_t purge_idle();

  // Cumulative totals of one update, recorded by the caller after a
  // successful engine.update() (the engine's own totals die with the slot).
  void record_update(const incremental::UpdateStats& stats);

  size_t open_sessions() const;

  // The "incremental" object of the stats response and --json reports:
  // sessions open + lifetime opened/closed/evicted/expired counts, updates
  // served, and the cumulative dirty-cone/reuse totals.
  support::json::Object stats_json() const;

 private:
  void evict_lru_locked();
  bool expired_locked(const Slot& slot, std::chrono::steady_clock::time_point now) const;

  const size_t max_sessions_;
  const int idle_ms_;
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Slot>> sessions_;
  uint64_t next_seq_ = 0;
  uint64_t opened_ = 0;
  uint64_t closed_ = 0;
  uint64_t evicted_ = 0;
  uint64_t expired_ = 0;
  incremental::EngineTotals totals_;
};

}  // namespace sspar::server
