#include "server/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sspar::server {

Client::~Client() { close(); }

bool Client::connect(const std::string& socket_path, std::string* error) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    if (error) *error = "socket path empty or too long for AF_UNIX";
    return false;
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error) *error = "socket() failed";
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error) *error = "connect(" + socket_path + "): " + std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  return true;
}

void Client::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buffer_.clear();
}

bool Client::send_only(const std::string& line) { return send_bytes(line + "\n"); }

bool Client::send_bytes(std::string_view bytes) {
  if (fd_ < 0) return false;
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::optional<support::json::Value> Client::request(const std::string& line,
                                                    std::string* error) {
  if (!send_only(line)) {
    if (error) *error = "not connected or send failed";
    return std::nullopt;
  }
  for (;;) {
    size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string response = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      std::string parse_error;
      std::optional<support::json::Value> doc =
          support::json::parse(response, &parse_error);
      if (!doc && error) *error = "malformed response: " + parse_error;
      return doc;
    }
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      if (error) *error = "server closed the connection";
      return std::nullopt;
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace sspar::server
