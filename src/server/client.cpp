#include "server/client.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace sspar::server {

namespace {

using Clock = std::chrono::steady_clock;

int ms_until(Clock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now())
                  .count();
  return left < 0 ? 0 : static_cast<int>(left);
}

}  // namespace

Client::~Client() { close(); }

bool Client::connect(const std::string& socket_path, std::string* error) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    if (error) *error = "socket path empty or too long for AF_UNIX";
    return false;
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error) *error = "socket() failed";
    return false;
  }
  auto fail = [this, error](const std::string& why) {
    if (error) *error = why;
    ::close(fd_);
    fd_ = -1;
    return false;
  };
  // Non-blocking connect bounded by the timeout: a wedged daemon whose
  // accept backlog is full makes AF_UNIX connect() block (or, non-blocking,
  // fail with EAGAIN rather than EINPROGRESS) — the CLI must diagnose that,
  // not hang.
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  const auto deadline = Clock::now() + std::chrono::milliseconds(
                                           timeout_ms_ > 0 ? timeout_ms_ : 1 << 30);
  for (;;) {
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) break;
    if (errno == EINTR) continue;
    if (errno == EINPROGRESS) {
      pollfd p{fd_, POLLOUT, 0};
      int ready = ::poll(&p, 1, ms_until(deadline));
      if (ready < 0 && errno == EINTR) continue;
      if (ready <= 0) {
        return fail("connect(" + socket_path + ") timed out after " +
                    std::to_string(timeout_ms_) + " ms");
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &so_error, &len);
      if (so_error != 0) {
        return fail("connect(" + socket_path + "): " + std::strerror(so_error));
      }
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNREFUSED) {
      // EAGAIN: the daemon's accept backlog is full. ECONNREFUSED can be a
      // just-starting daemon racing its listen(). Both are retryable until
      // the deadline — only then is the daemon declared hung/absent.
      if (Clock::now() >= deadline) {
        return fail("connect(" + socket_path + ") timed out after " +
                    std::to_string(timeout_ms_) +
                    " ms (daemon hung or backlog full): " + std::strerror(errno));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    return fail("connect(" + socket_path + "): " + std::strerror(errno));
  }
  ::fcntl(fd_, F_SETFL, flags);  // back to blocking for send/recv
  if (timeout_ms_ > 0) {
    // Per-call send/recv bound; recv then reports EAGAIN on a hung daemon
    // instead of parking the CLI forever.
    timeval tv{};
    tv.tv_sec = timeout_ms_ / 1000;
    tv.tv_usec = (timeout_ms_ % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  return true;
}

void Client::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buffer_.clear();
}

bool Client::send_only(const std::string& line) { return send_bytes(line + "\n"); }

bool Client::send_bytes(std::string_view bytes) {
  if (fd_ < 0) return false;
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::optional<support::json::Value> Client::request(const std::string& line,
                                                    std::string* error) {
  if (!send_only(line)) {
    if (error) *error = "not connected or send failed";
    return std::nullopt;
  }
  return read_response(error);
}

std::optional<support::json::Value> Client::read_response(std::string* error) {
  if (fd_ < 0) {
    if (error) *error = "not connected";
    return std::nullopt;
  }
  for (;;) {
    size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string response = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      std::string parse_error;
      std::optional<support::json::Value> doc =
          support::json::parse(response, &parse_error);
      if (!doc && error) *error = "malformed response: " + parse_error;
      return doc;
    }
    if (buffer_.size() > max_response_bytes_) {
      // A runaway or hostile server must not balloon the client: drop the
      // connection rather than keep accumulating.
      if (error) {
        *error = "response exceeded " + std::to_string(max_response_bytes_) + " bytes";
      }
      close();
      return std::nullopt;
    }
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (error) {
        *error = "timed out after " + std::to_string(timeout_ms_) +
                 " ms waiting for a response (daemon hung?)";
      }
      return std::nullopt;
    }
    if (n <= 0) {
      if (error) *error = "server closed the connection";
      return std::nullopt;
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace sspar::server
