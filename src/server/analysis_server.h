// Long-lived analysis daemon behind `sspar-analyze --serve`.
//
// Listens on a Unix-domain stream socket and answers newline-delimited JSON
// requests (see server/protocol.h). Every connection gets its own handler
// thread; every analyze request runs driver::run_with_store against the
// shared persistent store, so concurrent clients reuse each other's function
// summaries across requests — the warm-cache economics of the batch driver,
// kept warm for the lifetime of the daemon instead of one process run.
//
// Threading model: one accept thread polls the listen socket plus an
// internal self-pipe (so stop() can wake it without races); each accepted
// connection is served by a dedicated thread reading request lines until the
// peer disconnects. Analysis parallelism *within* a request is the batch
// driver's rt::ThreadPool, bounded by ServerOptions::threads. A client that
// disconnects mid-request or mid-response never takes the server down:
// writes use MSG_NOSIGNAL and failures just close that connection.
//
// Shutdown: stop() — triggered by a "shutdown" request, a SIGTERM/SIGINT
// forwarded by the CLI, or the owner — closes the listener, joins all
// connection threads, flushes the store one final time, and unlinks the
// socket path.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/analyzer.h"
#include "store/summary_store.h"

namespace sspar::server {

struct ServerOptions {
  std::string socket_path;
  // Analysis threads per request (BatchOptions::threads semantics: 0 = one
  // lane per logical core). Requests may override with their own "threads".
  unsigned threads = 1;
  core::AnalyzerOptions analyzer;
  // Optional persistent store, owned by the caller and already open()ed.
  // Shared by every request; flushed after each absorb and at stop().
  store::SummaryStore* store = nullptr;
};

class AnalysisServer {
 public:
  explicit AnalysisServer(ServerOptions options);
  ~AnalysisServer();

  AnalysisServer(const AnalysisServer&) = delete;
  AnalysisServer& operator=(const AnalysisServer&) = delete;

  // Binds the socket and starts the accept thread. False (with a reason in
  // `error`) when the path cannot be bound — e.g. a live daemon already owns
  // it. A dead socket file from a crashed run is detected (connect fails)
  // and replaced.
  bool start(std::string* error);

  // Blocks until stop() is called (by a shutdown request, a signal handler
  // via request_stop(), or another thread).
  void wait();

  // Idempotent: wakes the accept thread, joins every connection, flushes the
  // store, unlinks the socket.
  void stop();

  // Async-signal-safe stop trigger: writes one byte to the self-pipe. The
  // accept thread then runs the orderly stop() on its own stack. Safe to
  // call from a SIGTERM/SIGINT handler.
  void request_stop();

  bool running() const { return running_.load(); }
  // Total requests answered (all methods, including errors).
  uint64_t requests() const { return requests_.load(); }
  const std::string& socket_path() const { return options_.socket_path; }

 private:
  void accept_loop();
  void serve_connection(int fd);
  // One request line -> one response line (no trailing newline). Sets
  // `shutdown` when the request asked the server to exit.
  std::string handle_line(const std::string& line, bool* shutdown);

  ServerOptions options_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<uint64_t> requests_{0};
  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::vector<std::thread> connections_;
  std::set<int> connection_fds_;  // live fds, shutdown() by stop()
  std::mutex stop_mutex_;         // serializes stop() callers
};

}  // namespace sspar::server
