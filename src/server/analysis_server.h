// Long-lived analysis daemon behind `sspar-analyze --serve`.
//
// Listens on a Unix-domain stream socket and answers newline-delimited JSON
// requests (see server/protocol.h). Every connection gets its own handler
// thread; every analyze request runs driver::run_with_store against the
// shared persistent store, so concurrent clients reuse each other's function
// summaries across requests — the warm-cache economics of the batch driver,
// kept warm for the lifetime of the daemon instead of one process run.
//
// Threading model: one accept thread polls the listen socket plus an
// internal self-pipe (so stop() can wake it without races); each accepted
// connection is served by a dedicated thread reading request lines until the
// peer disconnects. Finished handler threads are reaped by the accept loop
// (join + close), so a long-lived daemon's thread count tracks its LIVE
// connections, not its connection history. Analysis parallelism *within* a
// request is the batch driver's rt::ThreadPool, bounded by
// ServerOptions::threads. A client that disconnects mid-request or
// mid-response never takes the server down: writes use MSG_NOSIGNAL and
// failures just close that connection.
//
// Resilience (see server/protocol.h for the error codes):
//
//   * Admission control — at most max_connections live connections; excess
//     accepts get one E_OVERLOADED response and are closed by the accept
//     thread itself (load shedding: cost to the daemon is one write, never
//     a thread).
//   * Read timeout — a connection holding a PARTIAL request line that stays
//     silent for read_timeout_ms gets E_TIMEOUT and is closed (slowloris
//     defense). Idle connections BETWEEN requests wait forever.
//   * Write timeout — a peer that stops draining its response for
//     write_timeout_ms forfeits the connection.
//   * Request deadline — an analyze that runs past request_timeout_ms
//     answers E_DEADLINE instead of its report.
//   * Request-size cap — a request line over max_request_bytes gets
//     E_REQ_TOO_LARGE and the connection is closed (the buffer never grows
//     unboundedly).
//   * Exception isolation — a throwing analyze yields E_INTERNAL; the
//     connection and the daemon keep serving.
//
// Shutdown: stop() — triggered by a "shutdown" request, a SIGTERM/SIGINT
// forwarded by the CLI, or the owner — closes the listener, joins all
// connection threads, flushes the store one final time, and unlinks the
// socket path.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/analyzer.h"
#include "store/summary_store.h"

namespace sspar::server {

class SessionManager;

struct ServerOptions {
  std::string socket_path;
  // Analysis threads per request (BatchOptions::threads semantics: 0 = one
  // lane per logical core). Requests may override with their own "threads".
  unsigned threads = 1;
  core::AnalyzerOptions analyzer;
  // Optional persistent store, owned by the caller and already open()ed.
  // Shared by every request; flushed after each absorb and at stop().
  store::SummaryStore* store = nullptr;
  // --- Resilience knobs (appended so existing aggregate initializers keep
  // meaning what they always did) ---
  // Live-connection cap; excess accepts are shed with E_OVERLOADED.
  size_t max_connections = 64;
  // Deadline for one analyze request; 0 = no deadline. Over-deadline
  // requests answer E_DEADLINE instead of their report.
  int request_timeout_ms = 0;
  // Max silence while a PARTIAL request line is pending (slowloris defense);
  // <= 0 disables. Idle connections between requests are never timed out.
  int read_timeout_ms = 10000;
  // Max stall while a response waits for the peer to drain; <= 0 disables.
  int write_timeout_ms = 10000;
  // Request-line byte cap -> E_REQ_TOO_LARGE + close.
  size_t max_request_bytes = 8u << 20;
  // --- Incremental sessions (open_session / update / close_session) ---
  // LRU cap on warm sessions; opening past the cap evicts the least
  // recently used one.
  size_t max_sessions = 8;
  // Idle GC: sessions untouched for this long are purged by the accept
  // loop's tick (and refused at access time); <= 0 disables.
  int session_idle_ms = 0;
};

class AnalysisServer {
 public:
  explicit AnalysisServer(ServerOptions options);
  ~AnalysisServer();

  AnalysisServer(const AnalysisServer&) = delete;
  AnalysisServer& operator=(const AnalysisServer&) = delete;

  // Binds the socket and starts the accept thread. False (with a reason in
  // `error`) when the path cannot be bound — e.g. a live daemon already owns
  // it. A dead socket file from a crashed run is detected (connect fails)
  // and replaced.
  bool start(std::string* error);

  // Blocks until stop() is called (by a shutdown request, a signal handler
  // via request_stop(), or another thread).
  void wait();

  // Idempotent: wakes the accept thread, joins every connection, flushes the
  // store, unlinks the socket.
  void stop();

  // Async-signal-safe stop trigger: writes one byte to the self-pipe. The
  // accept thread then runs the orderly stop() on its own stack. Safe to
  // call from a SIGTERM/SIGINT handler.
  void request_stop();

  bool running() const { return running_.load(); }
  // Total requests answered (all methods, including errors).
  uint64_t requests() const { return requests_.load(); }
  const std::string& socket_path() const { return options_.socket_path; }

  // Cumulative resilience counters for the daemon's lifetime (also reported
  // by the "stats" method). These are SERVER totals — the per-run values in
  // a report's stats.resilience stay deterministic and are not affected by
  // other clients' behavior.
  uint64_t shed() const { return shed_.load(); }
  uint64_t timed_out() const { return timed_out_.load(); }
  uint64_t recovered() const { return recovered_.load(); }

 private:
  // One live connection: the handler thread flags `done` and shuts the
  // socket down on exit but never closes the fd — the accept loop (or
  // stop()) joins the thread first and closes after, so the fd number can
  // not be reused while any code still refers to it.
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void serve_connection(Connection* conn);
  // Joins and closes every finished connection; returns the live count.
  size_t reap_connections();
  // One request line -> one response line (no trailing newline). Sets
  // `shutdown` when the request asked the server to exit.
  std::string handle_line(const std::string& line, bool* shutdown);
  // The session-family handlers (split out of handle_line).
  std::string handle_open_session(const struct Request& request);
  std::string handle_update(const struct Request& request);
  std::string handle_close_session(const struct Request& request);
  bool send_with_timeout(int fd, std::string_view bytes);

  ServerOptions options_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> shed_{0};       // connections refused by the cap
  std::atomic<uint64_t> timed_out_{0};  // read timeouts + missed deadlines
  std::atomic<uint64_t> recovered_{0};  // analyze exceptions answered E_INTERNAL
  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::mutex stop_mutex_;  // serializes stop() callers
  // Warm incremental sessions (open_session / update / close_session).
  std::unique_ptr<SessionManager> sessions_;
};

}  // namespace sspar::server
