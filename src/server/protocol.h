// Wire protocol of the sspar-analyze analysis server: newline-delimited
// JSON over a Unix-domain stream socket. One request per line, one response
// per line; a connection may carry any number of request/response pairs.
//
// Requests:
//
//   {"method":"analyze","programs":[{"name":"p","source":"...",
//    "assume":["N=100","M=8"]}],"emit":false,"threads":0}
//   {"method":"ping"}
//   {"method":"stats"}
//   {"method":"shutdown"}
//
// Session family (incremental re-analysis; one warm IncrementalEngine per
// named session, LRU-capped and idle-collected):
//
//   {"method":"open_session","session":"s","assume":["N=100"]}
//   {"method":"update","session":"s","source":"...","emit":false}
//   {"method":"close_session","session":"s"}
//
// `assume` entries use the CLI's NAME=VALUE spec (pipeline::Assumptions::
// add_spec). `emit` includes the transformed OpenMP source per program;
// `threads` overrides the server's per-request analysis parallelism (0 =
// server default). Responses:
//
//   {"ok":true,"report":{...}}        analyze — driver::batch_report_to_json
//   {"ok":true,"method":"ping"}
//   {"ok":true,"requests":N,"store":{...},"resilience":{...}}
//   {"ok":true,"method":"shutdown"}   the server flushes its store and exits
//   {"ok":false,"error":{"code":"E_...","message":"..."}}
//
// Error responses carry a STABLE machine-readable code plus a human-readable
// message (see ErrorCode):
//
//   E_BAD_REQUEST    malformed JSON / unknown method / invalid payload
//   E_REQ_TOO_LARGE  request line exceeded the server's byte cap
//   E_TIMEOUT        mid-request read stalled past the read timeout
//   E_DEADLINE       the analyze ran past --request-timeout-ms
//   E_OVERLOADED     connection cap reached; retry later (load shedding)
//   E_INTERNAL       analyze pipeline threw; the daemon survives
//   E_NO_SESSION     update/close_session names an unknown, evicted, or
//                    idle-expired session
//
// The report object is byte-identical to one-shot `sspar-analyze --json` for
// the same inputs and persistent-store state (both run through
// driver::run_with_store; JSON objects serialize with sorted keys).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "driver/batch_analyzer.h"
#include "support/json.h"

namespace sspar::server {

enum class Method { Analyze, Ping, Stats, Shutdown, OpenSession, Update, CloseSession };

// Stable machine-readable error codes — part of the wire protocol; clients
// match on these, never on message text.
enum class ErrorCode {
  BadRequest,   // E_BAD_REQUEST
  ReqTooLarge,  // E_REQ_TOO_LARGE
  Timeout,      // E_TIMEOUT
  Deadline,     // E_DEADLINE
  Overloaded,   // E_OVERLOADED
  Internal,     // E_INTERNAL
  NoSession,    // E_NO_SESSION
};

const char* error_code_name(ErrorCode code);

struct Request {
  Method method = Method::Ping;
  // Analyze payload (empty for the other methods).
  std::vector<driver::ProgramInput> programs;
  bool emit = false;
  unsigned threads = 0;  // 0 = server default
  // Session-family payload.
  std::string session;               // open_session / update / close_session
  std::string source;                // update
  pipeline::Assumptions assumptions; // open_session
};

// Parses one request line. Null on malformed JSON, unknown method, or a
// structurally invalid analyze payload; `error` gets a one-line reason.
std::optional<Request> parse_request(std::string_view line, std::string* error);

// Client-side builder for an analyze request line (without the trailing
// newline — the transport adds it).
std::string make_analyze_request(const std::vector<driver::ProgramInput>& programs,
                                 bool emit, unsigned threads);
// Builder for the payload-free methods ("ping", "stats", "shutdown").
std::string make_simple_request(Method method);

// Session-family builders.
std::string make_open_session_request(const std::string& session,
                                      const pipeline::Assumptions& assumptions = {});
std::string make_update_request(const std::string& session, const std::string& source,
                                bool emit = false);
std::string make_close_session_request(const std::string& session);

// {"ok":false,"error":{"code":...,"message":...}} — the server's reply to
// anything it refuses or fails to serve.
std::string error_response(ErrorCode code, const std::string& message);
// Convenience overload: E_BAD_REQUEST (the pre-resilience error shape's only
// case) with the given message.
std::string error_response(const std::string& message);

const char* method_name(Method method);

}  // namespace sspar::server
