#include "server/analysis_server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <set>
#include <utility>

#include "driver/json_report.h"
#include "driver/store_session.h"
#include "server/protocol.h"
#include "support/json.h"

namespace sspar::server {

using support::json::Object;
using support::json::Value;

namespace {

bool send_all(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a client that disconnected mid-response must produce
    // EPIPE here, not a process-killing SIGPIPE.
    ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

AnalysisServer::AnalysisServer(ServerOptions options) : options_(std::move(options)) {}

AnalysisServer::~AnalysisServer() { stop(); }

bool AnalysisServer::start(std::string* error) {
  auto fail = [this, error](const std::string& why) {
    if (error) *error = why;
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
    for (int& fd : wake_pipe_) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    return false;
  };
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.empty() ||
      options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return fail("socket path empty or too long for AF_UNIX");
  }
  std::strncpy(addr.sun_path, options_.socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::pipe(wake_pipe_) != 0) return fail("pipe() failed");
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket() failed");
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EADDRINUSE) {
      return fail("bind(" + options_.socket_path + "): " + std::strerror(errno));
    }
    // The path exists. A live daemon accepts connections; a stale file from
    // a crashed run refuses them and is safe to replace.
    int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    bool alive = probe >= 0 && ::connect(probe, reinterpret_cast<sockaddr*>(&addr),
                                         sizeof(addr)) == 0;
    if (probe >= 0) ::close(probe);
    if (alive) {
      return fail("another server is already listening on " + options_.socket_path);
    }
    ::unlink(options_.socket_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      return fail("bind(" + options_.socket_path + "): " + std::strerror(errno));
    }
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::unlink(options_.socket_path.c_str());
    return fail("listen() failed");
  }
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void AnalysisServer::request_stop() {
  // Async-signal-safe: one write(), nothing else. The pipe is deliberately
  // never drained, so it stays readable and wakes BOTH the accept loop's
  // poll and wait()'s poll, no matter which observes it first.
  stop_requested_.store(true);
  if (wake_pipe_[1] >= 0) {
    char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void AnalysisServer::wait() {
  if (!running_.load()) return;
  pollfd wake{wake_pipe_[0], POLLIN, 0};
  while (!stop_requested_.load()) {
    if (::poll(&wake, 1, -1) < 0 && errno != EINTR) break;
  }
  stop();
}

void AnalysisServer::stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  if (!running_.exchange(false)) return;
  request_stop();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Unblock handler threads parked in recv(), then join them all. The join
  // happens OUTSIDE connections_mutex_: an exiting handler takes that mutex
  // to deregister its fd, so joining under it would deadlock.
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
    to_join.swap(connections_);
  }
  for (std::thread& t : to_join) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(options_.socket_path.c_str());
  if (options_.store) options_.store->flush();
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

void AnalysisServer::accept_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0 || stop_requested_.load()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connection_fds_.insert(conn);
    connections_.emplace_back([this, conn] { serve_connection(conn); });
  }
}

void AnalysisServer::serve_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool shutdown_server = false;
  for (;;) {
    // A peer that disconnects mid-request just ends the loop here — the
    // partial line in `buffer` is dropped, never parsed, never answered.
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    for (size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      std::string response = handle_line(line, &shutdown_server);
      response.push_back('\n');
      if (!send_all(fd, response)) {
        shutdown_server = false;
        break;
      }
      if (shutdown_server) break;
    }
    buffer.erase(0, start);
    if (shutdown_server) break;
  }
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connection_fds_.erase(fd);
  }
  ::close(fd);
  // Ordering matters: the shutdown response is already on the wire and the
  // socket closed before the stop is triggered, so the requesting client
  // always sees its acknowledgment.
  if (shutdown_server) request_stop();
}

std::string AnalysisServer::handle_line(const std::string& line, bool* shutdown) {
  requests_.fetch_add(1);
  std::string error;
  std::optional<Request> request = parse_request(line, &error);
  if (!request) return error_response(error);
  switch (request->method) {
    case Method::Ping: {
      Object o;
      o.emplace("ok", true);
      o.emplace("method", "ping");
      return Value(std::move(o)).dump();
    }
    case Method::Stats: {
      Object o;
      o.emplace("ok", true);
      o.emplace("requests", static_cast<int64_t>(requests_.load()));
      if (options_.store) {
        const store::SummaryStore::Stats s = options_.store->stats();
        Object st;
        st.emplace("records", static_cast<int64_t>(options_.store->size()));
        st.emplace("loaded", static_cast<int64_t>(s.loaded));
        st.emplace("rejected", static_cast<int64_t>(s.rejected));
        st.emplace("absorbed", static_cast<int64_t>(s.absorbed));
        st.emplace("evicted", static_cast<int64_t>(s.evicted));
        st.emplace("flushed", static_cast<int64_t>(s.flushed));
        o.emplace("store", std::move(st));
      } else {
        o.emplace("store", nullptr);
      }
      return Value(std::move(o)).dump();
    }
    case Method::Shutdown: {
      *shutdown = true;
      Object o;
      o.emplace("ok", true);
      o.emplace("method", "shutdown");
      return Value(std::move(o)).dump();
    }
    case Method::Analyze:
      break;
  }
  driver::BatchOptions options;
  options.threads = request->threads != 0 ? request->threads : options_.threads;
  options.analyzer = options_.analyzer;
  // Every request runs through the same store orchestration as one-shot
  // `--json --store`, so responses are byte-identical to the CLI for the
  // same inputs and store state.
  driver::BatchReport report =
      driver::run_with_store(request->programs, options, options_.store);
  const unsigned threads = driver::BatchAnalyzer(options).threads();
  Object o;
  o.emplace("ok", true);
  o.emplace("report", driver::batch_report_to_json(report, threads, request->emit));
  return Value(std::move(o)).dump();
}

}  // namespace sspar::server
