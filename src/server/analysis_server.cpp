#include "server/analysis_server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <exception>
#include <utility>

#include "driver/json_report.h"
#include "driver/store_session.h"
#include "incremental/incremental_engine.h"
#include "server/protocol.h"
#include "server/session_manager.h"
#include "support/faultpoint.h"
#include "support/json.h"

namespace sspar::server {

using support::json::Array;
using support::json::Object;
using support::json::Value;

AnalysisServer::AnalysisServer(ServerOptions options)
    : options_(std::move(options)),
      sessions_(std::make_unique<SessionManager>(options_.max_sessions,
                                                 options_.session_idle_ms)) {}

AnalysisServer::~AnalysisServer() { stop(); }

bool AnalysisServer::start(std::string* error) {
  auto fail = [this, error](const std::string& why) {
    if (error) *error = why;
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
    for (int& fd : wake_pipe_) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    return false;
  };
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.empty() ||
      options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return fail("socket path empty or too long for AF_UNIX");
  }
  std::strncpy(addr.sun_path, options_.socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::pipe(wake_pipe_) != 0) return fail("pipe() failed");
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket() failed");
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EADDRINUSE) {
      return fail("bind(" + options_.socket_path + "): " + std::strerror(errno));
    }
    // The path exists. A live daemon accepts connections; a stale file from
    // a crashed run refuses them and is safe to replace.
    int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    bool alive = probe >= 0 && ::connect(probe, reinterpret_cast<sockaddr*>(&addr),
                                         sizeof(addr)) == 0;
    if (probe >= 0) ::close(probe);
    if (alive) {
      return fail("another server is already listening on " + options_.socket_path);
    }
    ::unlink(options_.socket_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      return fail("bind(" + options_.socket_path + "): " + std::strerror(errno));
    }
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::unlink(options_.socket_path.c_str());
    return fail("listen() failed");
  }
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void AnalysisServer::request_stop() {
  // Async-signal-safe: one write(), nothing else. The pipe is deliberately
  // never drained, so it stays readable and wakes BOTH the accept loop's
  // poll and wait()'s poll, no matter which observes it first.
  stop_requested_.store(true);
  if (wake_pipe_[1] >= 0) {
    char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void AnalysisServer::wait() {
  if (!running_.load()) return;
  pollfd wake{wake_pipe_[0], POLLIN, 0};
  while (!stop_requested_.load()) {
    if (::poll(&wake, 1, -1) < 0 && errno != EINTR) break;
  }
  stop();
}

void AnalysisServer::stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  if (!running_.exchange(false)) return;
  request_stop();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Unblock handler threads parked in poll()/recv(), then join them all.
  // Handlers only flag `done` on exit (no mutex), so joining with
  // connections_mutex_ held cannot deadlock; the fd is closed strictly
  // after the join so no handler can race a reused fd number.
  std::vector<std::unique_ptr<Connection>> to_join;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const auto& conn : connections_) ::shutdown(conn->fd, SHUT_RDWR);
    to_join.swap(connections_);
  }
  for (const auto& conn : to_join) {
    if (conn->thread.joinable()) conn->thread.join();
    ::close(conn->fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(options_.socket_path.c_str());
  if (options_.store) options_.store->commit();
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

size_t AnalysisServer::reap_connections() {
  std::lock_guard<std::mutex> lock(connections_mutex_);
  size_t live = 0;
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      ::close((*it)->fd);
      it = connections_.erase(it);
    } else {
      ++live;
      ++it;
    }
  }
  return live;
}

void AnalysisServer::accept_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    // Wake periodically even with no new connections so finished handler
    // threads are reaped promptly, not only on the next accept.
    int ready = ::poll(fds, 2, 1000);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0 || stop_requested_.load()) break;
    size_t live = reap_connections();
    // Same periodic tick also garbage-collects idle incremental sessions.
    sessions_->purge_idle();
    if ((fds[0].revents & POLLIN) == 0) continue;
    int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    SSPAR_FAULTPOINT("server.accept.post_accept");
    if (live >= options_.max_connections) {
      // Load shedding: the refusal costs the daemon one write on the accept
      // thread — an over-cap burst never allocates handler threads.
      shed_.fetch_add(1);
      std::string response =
          error_response(ErrorCode::Overloaded,
                         "connection cap reached (" +
                             std::to_string(options_.max_connections) + "); retry later");
      response.push_back('\n');
      send_with_timeout(conn, response);
      ::shutdown(conn, SHUT_RDWR);
      ::close(conn);
      continue;
    }
    std::lock_guard<std::mutex> lock(connections_mutex_);
    auto connection = std::make_unique<Connection>();
    Connection* raw = connection.get();
    raw->fd = conn;
    connections_.push_back(std::move(connection));
    raw->thread = std::thread([this, raw] { serve_connection(raw); });
  }
}

void AnalysisServer::serve_connection(Connection* conn) {
  const int fd = conn->fd;
  std::string buffer;
  char chunk[4096];
  bool shutdown_server = false;
  bool open = true;
  while (open) {
    // Block only while nothing is pending. A connection holding a PARTIAL
    // request line is on the clock: a peer trickling bytes (slowloris) or
    // stalling mid-request gets E_TIMEOUT and the connection is dropped.
    // Idle connections between requests park here forever (timeout -1);
    // the wake pipe unparks them when the server stops.
    const bool partial = !buffer.empty();
    const int timeout =
        partial && options_.read_timeout_ms > 0 ? options_.read_timeout_ms : -1;
    pollfd fds[2] = {{fd, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    int ready = ::poll(fds, 2, timeout);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0 || stop_requested_.load()) break;
    if (ready == 0) {
      timed_out_.fetch_add(1);
      std::string response =
          error_response(ErrorCode::Timeout, "read timed out with a partial request");
      response.push_back('\n');
      send_with_timeout(fd, response);
      break;
    }
    SSPAR_FAULTPOINT("server.read.post_poll");
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    // A peer that disconnects mid-request ends the loop here — the partial
    // line in `buffer` is dropped, never parsed, never answered.
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    for (size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      std::string response;
      if (line.size() > options_.max_request_bytes) {
        response = error_response(ErrorCode::ReqTooLarge,
                                  "request line over " +
                                      std::to_string(options_.max_request_bytes) + " bytes");
        open = false;
      } else {
        response = handle_line(line, &shutdown_server);
      }
      response.push_back('\n');
      if (!send_with_timeout(fd, response)) {
        shutdown_server = false;
        open = false;
        break;
      }
      if (shutdown_server || !open) break;
    }
    buffer.erase(0, start);
    if (shutdown_server) break;
    // An oversized UNTERMINATED line must not grow the buffer without
    // bound: refuse it as soon as it passes the cap.
    if (open && buffer.size() > options_.max_request_bytes) {
      std::string response =
          error_response(ErrorCode::ReqTooLarge,
                         "request line over " +
                             std::to_string(options_.max_request_bytes) + " bytes");
      response.push_back('\n');
      send_with_timeout(fd, response);
      break;
    }
  }
  // Signal the peer, flag done for the reaper — but never close: the accept
  // loop (or stop()) closes the fd after joining this thread.
  ::shutdown(fd, SHUT_RDWR);
  conn->done.store(true);
  // Ordering matters: the shutdown response is already on the wire and the
  // socket shut down before the stop is triggered, so the requesting client
  // always sees its acknowledgment.
  if (shutdown_server) request_stop();
}

bool AnalysisServer::send_with_timeout(int fd, std::string_view bytes) {
  SSPAR_FAULTPOINT("server.write.pre_send");
  size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a client that disconnected mid-response must produce
    // EPIPE here, not a process-killing SIGPIPE. MSG_DONTWAIT so a peer
    // that stops draining parks us in poll below — bounded by the write
    // timeout — instead of blocking forever in send().
    ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) return false;
      pollfd p{fd, POLLOUT, 0};
      const int timeout = options_.write_timeout_ms > 0 ? options_.write_timeout_ms : -1;
      int ready = ::poll(&p, 1, timeout);
      if (ready < 0 && errno == EINTR) continue;
      if (ready <= 0) return false;  // write timeout or poll failure
      continue;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string AnalysisServer::handle_line(const std::string& line, bool* shutdown) {
  requests_.fetch_add(1);
  std::string error;
  std::optional<Request> request = parse_request(line, &error);
  if (!request) return error_response(error);
  switch (request->method) {
    case Method::Ping: {
      Object o;
      o.emplace("ok", true);
      o.emplace("method", "ping");
      return Value(std::move(o)).dump();
    }
    case Method::Stats: {
      Object o;
      o.emplace("ok", true);
      o.emplace("requests", static_cast<int64_t>(requests_.load()));
      if (options_.store) {
        const store::SummaryStore::Stats s = options_.store->stats();
        Object st;
        st.emplace("records", static_cast<int64_t>(options_.store->size()));
        st.emplace("loaded", static_cast<int64_t>(s.loaded));
        st.emplace("rejected", static_cast<int64_t>(s.rejected));
        st.emplace("absorbed", static_cast<int64_t>(s.absorbed));
        st.emplace("evicted", static_cast<int64_t>(s.evicted));
        st.emplace("flushed", static_cast<int64_t>(s.flushed));
        st.emplace("journal_replayed", static_cast<int64_t>(s.journal_replayed));
        st.emplace("journal_appended", static_cast<int64_t>(s.journal_appended));
        o.emplace("store", std::move(st));
      } else {
        o.emplace("store", nullptr);
      }
      // Cumulative daemon-lifetime totals — the per-run, deterministic
      // values live in each report's stats.resilience instead.
      Object resilience;
      resilience.emplace("shed", static_cast<int64_t>(shed_.load()));
      resilience.emplace("timed_out", static_cast<int64_t>(timed_out_.load()));
      resilience.emplace("recovered", static_cast<int64_t>(recovered_.load()));
      o.emplace("resilience", std::move(resilience));
      // Cumulative incremental-session totals — per-update deterministic
      // stats live in each update response instead.
      o.emplace("incremental", sessions_->stats_json());
      return Value(std::move(o)).dump();
    }
    case Method::Shutdown: {
      *shutdown = true;
      Object o;
      o.emplace("ok", true);
      o.emplace("method", "shutdown");
      return Value(std::move(o)).dump();
    }
    case Method::OpenSession:
      return handle_open_session(*request);
    case Method::Update:
      return handle_update(*request);
    case Method::CloseSession:
      return handle_close_session(*request);
    case Method::Analyze:
      break;
  }
  driver::BatchOptions options;
  options.threads = request->threads != 0 ? request->threads : options_.threads;
  options.analyzer = options_.analyzer;
  // Every request runs through the same store orchestration as one-shot
  // `--json --store`, so responses are byte-identical to the CLI for the
  // same inputs and store state.
  const auto start = std::chrono::steady_clock::now();
  driver::BatchReport report;
  try {
    SSPAR_FAULTPOINT("server.analyze.pre_run");
    report = driver::run_with_store(request->programs, options, options_.store);
  } catch (const std::exception& e) {
    // No pipeline failure may take down the connection thread (and with it
    // the daemon): every exception becomes a structured error response.
    recovered_.fetch_add(1);
    return error_response(ErrorCode::Internal, std::string("analyze failed: ") + e.what());
  } catch (...) {
    recovered_.fetch_add(1);
    return error_response(ErrorCode::Internal, "analyze failed: unknown exception");
  }
  if (options_.request_timeout_ms > 0) {
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    if (elapsed > options_.request_timeout_ms) {
      // The work is done (and its summaries absorbed — the warm cache keeps
      // the benefit), but the contract is the deadline: the client gets a
      // deterministic refusal, not a late report it may no longer want.
      timed_out_.fetch_add(1);
      return error_response(ErrorCode::Deadline,
                            "analyze exceeded its " +
                                std::to_string(options_.request_timeout_ms) + " ms deadline");
    }
  }
  const unsigned threads = driver::BatchAnalyzer(options).threads();
  Object o;
  o.emplace("ok", true);
  o.emplace("report", driver::batch_report_to_json(report, threads, request->emit));
  return Value(std::move(o)).dump();
}

std::string AnalysisServer::handle_open_session(const Request& request) {
  SSPAR_FAULTPOINT("server.session.open");
  incremental::EngineOptions engine_options;
  engine_options.analyzer = options_.analyzer;
  engine_options.assumptions = request.assumptions;
  engine_options.store = options_.store;
  sessions_->open(request.session, std::move(engine_options));
  Object o;
  o.emplace("ok", true);
  o.emplace("method", "open_session");
  o.emplace("session", request.session);
  return Value(std::move(o)).dump();
}

std::string AnalysisServer::handle_update(const Request& request) {
  std::shared_ptr<SessionManager::Slot> slot = sessions_->find(request.session);
  if (!slot) {
    return error_response(ErrorCode::NoSession,
                          "no session named \"" + request.session + "\" (never opened, "
                          "evicted, or idle-expired)");
  }
  incremental::UpdateResult result;
  try {
    SSPAR_FAULTPOINT("server.session.update.pre_run");
    std::lock_guard<std::mutex> lock(slot->mutex);
    result = slot->engine.update(request.source);
    // Same durability contract as analyze: the update's new summaries reach
    // the persistent store before the response goes out.
    if (result.ok) slot->engine.flush_store();
  } catch (const std::exception& e) {
    // The engine commits its snapshot only after a fully successful update,
    // so the session survives and serves the next update from the previous
    // state.
    recovered_.fetch_add(1);
    return error_response(ErrorCode::Internal, std::string("update failed: ") + e.what());
  } catch (...) {
    recovered_.fetch_add(1);
    return error_response(ErrorCode::Internal, "update failed: unknown exception");
  }
  if (result.ok) sessions_->record_update(result.stats);
  Object update;
  update.emplace("ok", result.ok);
  if (!result.ok) {
    update.emplace("error", result.error);
  } else {
    update.emplace("annotated", result.annotated);
    int parallel = 0;
    for (const core::LoopVerdict& v : result.verdicts) parallel += v.parallel ? 1 : 0;
    update.emplace("loops", static_cast<int64_t>(result.verdicts.size()));
    update.emplace("parallel", parallel);
    update.emplace("stats", incremental::to_json(result.stats));
    update.emplace("delta", incremental::to_json(result.delta));
    if (request.emit) update.emplace("output", result.output);
  }
  Array diagnostics;
  for (const auto& d : result.diagnostics) {
    diagnostics.emplace_back(incremental::diagnostic_to_json(d));
  }
  update.emplace("diagnostics", std::move(diagnostics));
  Object o;
  o.emplace("ok", true);
  o.emplace("method", "update");
  o.emplace("session", request.session);
  o.emplace("update", std::move(update));
  return Value(std::move(o)).dump();
}

std::string AnalysisServer::handle_close_session(const Request& request) {
  SSPAR_FAULTPOINT("server.session.close");
  if (!sessions_->close(request.session)) {
    return error_response(ErrorCode::NoSession,
                          "no session named \"" + request.session + "\" (never opened, "
                          "evicted, or idle-expired)");
  }
  Object o;
  o.emplace("ok", true);
  o.emplace("method", "close_session");
  o.emplace("session", request.session);
  return Value(std::move(o)).dump();
}

}  // namespace sspar::server
