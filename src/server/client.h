// Minimal blocking client for the analysis server (server/protocol.h):
// connect to the daemon's Unix-domain socket, write request lines, read
// response lines. Backs `sspar-analyze --connect` and the server tests.
//
// Defensive defaults: connect, send, and receive are all bounded by
// timeout_ms (30 s unless set_timeout_ms changes it), so a hung or wedged
// daemon yields a clear diagnostic instead of blocking the CLI forever; a
// response line is capped at max_response_bytes — a runaway or hostile
// server cannot balloon the client's memory.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "support/json.h"

namespace sspar::server {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Applies to connect(), send, and response reads; <= 0 waits forever.
  void set_timeout_ms(int timeout_ms) { timeout_ms_ = timeout_ms; }
  // Response-line cap; oversized responses fail the request.
  void set_max_response_bytes(size_t bytes) { max_response_bytes_ = bytes; }

  // False (with a reason in `error`) when nothing accepts on `socket_path`
  // within the timeout.
  bool connect(const std::string& socket_path, std::string* error = nullptr);
  void close();
  bool connected() const { return fd_ >= 0; }

  // Sends one request line (newline appended) and blocks for the one-line
  // response, up to the timeout. Null on transport failure, timeout, an
  // oversized response, or a response that is not valid JSON. The same
  // connection can issue any number of requests.
  std::optional<support::json::Value> request(const std::string& line,
                                              std::string* error = nullptr);

  // Sends the request line WITHOUT waiting for (or reading) the response —
  // used by the disconnect-mid-request robustness test.
  bool send_only(const std::string& line);

  // Raw bytes, no newline appended: lets tests leave a partial request line
  // on the wire before disconnecting.
  bool send_bytes(std::string_view bytes);

  // Reads the next response line (without sending anything first) — lets
  // tests collect a response pushed by the server, e.g. the E_OVERLOADED
  // shed notice.
  std::optional<support::json::Value> read_response(std::string* error = nullptr);

 private:
  int fd_ = -1;
  int timeout_ms_ = 30000;
  size_t max_response_bytes_ = 64u << 20;
  std::string buffer_;  // bytes past the last consumed response line
};

}  // namespace sspar::server
