// Minimal blocking client for the analysis server (server/protocol.h):
// connect to the daemon's Unix-domain socket, write request lines, read
// response lines. Backs `sspar-analyze --connect` and the server tests.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "support/json.h"

namespace sspar::server {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // False (with a reason in `error`) when nothing accepts on `socket_path`.
  bool connect(const std::string& socket_path, std::string* error = nullptr);
  void close();
  bool connected() const { return fd_ >= 0; }

  // Sends one request line (newline appended) and blocks for the one-line
  // response. Null on transport failure or a response that is not valid
  // JSON. The same connection can issue any number of requests.
  std::optional<support::json::Value> request(const std::string& line,
                                              std::string* error = nullptr);

  // Sends the request line WITHOUT waiting for (or reading) the response —
  // used by the disconnect-mid-request robustness test.
  bool send_only(const std::string& line);

  // Raw bytes, no newline appended: lets tests leave a partial request line
  // on the wire before disconnecting.
  bool send_bytes(std::string_view bytes);

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes past the last consumed response line
};

}  // namespace sspar::server
