#include "server/session_manager.h"

namespace sspar::server {

std::shared_ptr<SessionManager::Slot> SessionManager::open(const std::string& name,
                                                           incremental::EngineOptions options) {
  auto slot = std::make_shared<Slot>(std::move(options));
  std::lock_guard<std::mutex> lock(mutex_);
  ++opened_;
  auto it = sessions_.find(name);
  if (it != sessions_.end()) {
    // Re-opening a live name resets it to a cold engine (the client asked
    // for a fresh session, not the old dirty-cone state).
    it->second = slot;
  } else {
    while (sessions_.size() >= max_sessions_) evict_lru_locked();
    sessions_.emplace(name, slot);
  }
  slot->last_used = std::chrono::steady_clock::now();
  slot->lru_seq = ++next_seq_;
  return slot;
}

bool SessionManager::expired_locked(const Slot& slot,
                                    std::chrono::steady_clock::time_point now) const {
  if (idle_ms_ <= 0) return false;
  return now - slot.last_used > std::chrono::milliseconds(idle_ms_);
}

std::shared_ptr<SessionManager::Slot> SessionManager::find(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(name);
  if (it == sessions_.end()) return nullptr;
  const auto now = std::chrono::steady_clock::now();
  if (expired_locked(*it->second, now)) {
    ++expired_;
    sessions_.erase(it);
    return nullptr;
  }
  it->second->last_used = now;
  it->second->lru_seq = ++next_seq_;
  return it->second;
}

bool SessionManager::close(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(name);
  if (it == sessions_.end()) return false;
  ++closed_;
  sessions_.erase(it);
  return true;
}

void SessionManager::evict_lru_locked() {
  auto lru = sessions_.end();
  for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
    if (lru == sessions_.end() || it->second->lru_seq < lru->second->lru_seq) lru = it;
  }
  if (lru != sessions_.end()) {
    ++evicted_;
    sessions_.erase(lru);
  }
}

size_t SessionManager::purge_idle() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (idle_ms_ <= 0) return 0;
  const auto now = std::chrono::steady_clock::now();
  size_t purged = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (expired_locked(*it->second, now)) {
      ++expired_;
      ++purged;
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
  return purged;
}

void SessionManager::record_update(const incremental::UpdateStats& stats) {
  std::lock_guard<std::mutex> lock(mutex_);
  totals_.add(stats);
}

size_t SessionManager::open_sessions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

support::json::Object SessionManager::stats_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  support::json::Object o = incremental::to_json(totals_);
  o["sessions_open"] = static_cast<int64_t>(sessions_.size());
  o["sessions_opened"] = static_cast<int64_t>(opened_);
  o["sessions_closed"] = static_cast<int64_t>(closed_);
  o["sessions_evicted"] = static_cast<int64_t>(evicted_);
  o["sessions_expired"] = static_cast<int64_t>(expired_);
  return o;
}

}  // namespace sspar::server
