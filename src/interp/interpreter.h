// Mini-C interpreter with a dynamic dependence oracle.
//
// The interpreter executes programs directly, which gives the project a
// ground truth for the static analysis:
//  * the ORACLE records, for a target loop, the exact per-iteration read and
//    write sets of every memory location and decides whether the loop carries
//    a dependence (flow, anti, or output, with write-first scalar accesses
//    treated as privatizable) — every loop the static parallelizer marks
//    parallel must be dependence-free here (soundness tests);
//  * PERMUTED execution runs a target loop's iterations in a shuffled order
//    and compares final memory; a correctly-parallelized loop must produce
//    the same state.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "frontend/ast.h"

namespace sspar::interp {

struct ArrayStorage {
  ast::TypeKind elem = ast::TypeKind::Int;
  std::vector<size_t> dims;
  std::vector<int64_t> ints;
  std::vector<double> doubles;

  size_t size() const { return elem == ast::TypeKind::Int ? ints.size() : doubles.size(); }
};

// Result of the dynamic dependence oracle for one loop.
struct DependenceReport {
  bool executed = false;        // the loop ran at least one invocation
  bool dependence_free = true;  // no loop-carried dependence in any invocation
  // Counts aggregated over all invocations (for diagnostics).
  size_t invocations = 0;
  size_t conflicting_locations = 0;
  std::string first_conflict;  // human-readable description of one conflict
};

class Interpreter {
 public:
  explicit Interpreter(const ast::Program& program);
  ~Interpreter();

  // --- State setup / inspection --------------------------------------------
  void set_scalar(const std::string& name, int64_t value);
  void set_scalar(const std::string& name, double value);
  void set_array_int(const std::string& name, std::vector<int64_t> values);
  void set_array_double(const std::string& name, std::vector<double> values);

  int64_t scalar_int(const std::string& name) const;
  double scalar_double(const std::string& name) const;
  const std::vector<int64_t>& array_int(const std::string& name) const;
  const std::vector<double>& array_double(const std::string& name) const;

  // Deep snapshot of all global state; `exclude` names are skipped in
  // equal_state (e.g. privatized scalars whose post-loop value is unspecified
  // under OpenMP semantics).
  struct Snapshot {
    std::map<std::string, int64_t> int_scalars;
    std::map<std::string, double> double_scalars;
    std::map<std::string, ArrayStorage> arrays;
  };
  std::unique_ptr<Snapshot> snapshot() const;
  static bool equal_state(const Snapshot& a, const Snapshot& b,
                          const std::set<std::string>& exclude = {},
                          std::string* first_diff = nullptr);

  // --- Execution -------------------------------------------------------------
  // Runs `function` (no arguments). Throws std::runtime_error on dynamic
  // errors (OOB access, missing function, step limit).
  void run(const std::string& function);

  // Runs `function` while recording per-iteration access sets of `loop`.
  DependenceReport analyze_loop_dependences(const std::string& function,
                                            const ast::For* loop);

  // Runs `function`, executing the iterations of `loop` in a pseudo-random
  // order derived from `seed` (requires the loop to be canonical).
  void run_permuted(const std::string& function, const ast::For* loop, uint64_t seed);

  // Safety valve against runaway programs (default 500M steps).
  void set_step_limit(uint64_t limit);

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sspar::interp
