#include "interp/interpreter.h"

#include <algorithm>
#include <functional>
#include <random>
#include <span>
#include <stdexcept>

#include "runtime/inspector.h"
#include "support/text.h"

namespace sspar::interp {

namespace {

struct Value {
  ast::TypeKind type = ast::TypeKind::Int;
  int64_t i = 0;
  double d = 0.0;

  static Value of_int(int64_t v) { return Value{ast::TypeKind::Int, v, 0.0}; }
  static Value of_double(double v) { return Value{ast::TypeKind::Double, 0, v}; }

  int64_t as_int() const { return type == ast::TypeKind::Int ? i : static_cast<int64_t>(d); }
  double as_double() const { return type == ast::TypeKind::Int ? static_cast<double>(i) : d; }
  bool truthy() const { return type == ast::TypeKind::Int ? i != 0 : d != 0.0; }
};

Value arith(ast::BinaryOp op, const Value& l, const Value& r) {
  bool use_double = l.type == ast::TypeKind::Double || r.type == ast::TypeKind::Double;
  switch (op) {
    case ast::BinaryOp::Add:
      return use_double ? Value::of_double(l.as_double() + r.as_double())
                        : Value::of_int(l.as_int() + r.as_int());
    case ast::BinaryOp::Sub:
      return use_double ? Value::of_double(l.as_double() - r.as_double())
                        : Value::of_int(l.as_int() - r.as_int());
    case ast::BinaryOp::Mul:
      return use_double ? Value::of_double(l.as_double() * r.as_double())
                        : Value::of_int(l.as_int() * r.as_int());
    case ast::BinaryOp::Div:
      if (use_double) return Value::of_double(l.as_double() / r.as_double());
      if (r.as_int() == 0) throw std::runtime_error("integer division by zero");
      return Value::of_int(l.as_int() / r.as_int());
    case ast::BinaryOp::Rem:
      if (r.as_int() == 0) throw std::runtime_error("integer remainder by zero");
      return Value::of_int(l.as_int() % r.as_int());
    case ast::BinaryOp::Lt:
      return Value::of_int(use_double ? l.as_double() < r.as_double() : l.as_int() < r.as_int());
    case ast::BinaryOp::Le:
      return Value::of_int(use_double ? l.as_double() <= r.as_double()
                                      : l.as_int() <= r.as_int());
    case ast::BinaryOp::Gt:
      return Value::of_int(use_double ? l.as_double() > r.as_double() : l.as_int() > r.as_int());
    case ast::BinaryOp::Ge:
      return Value::of_int(use_double ? l.as_double() >= r.as_double()
                                      : l.as_int() >= r.as_int());
    case ast::BinaryOp::Eq:
      return Value::of_int(use_double ? l.as_double() == r.as_double()
                                      : l.as_int() == r.as_int());
    case ast::BinaryOp::Ne:
      return Value::of_int(use_double ? l.as_double() != r.as_double()
                                      : l.as_int() != r.as_int());
    case ast::BinaryOp::LAnd:
    case ast::BinaryOp::LOr:
      throw std::logic_error("short-circuit ops handled by caller");
  }
  throw std::logic_error("unknown binary op");
}

// Location identity for the dependence oracle.
struct Location {
  const ast::VarDecl* decl;
  size_t index;  // 0 for scalars; flat element index for arrays
  bool operator<(const Location& o) const {
    return decl != o.decl ? decl < o.decl : index < o.index;
  }
};

struct LocationState {
  std::set<int64_t> writers;
  std::set<int64_t> exposed_readers;  // iterations whose first access was a read
  std::map<int64_t, bool> first_was_write;
};

enum class Flow { Normal, Broke, Continued, Returned };

}  // namespace

class Interpreter::Impl {
 public:
  explicit Impl(const ast::Program& program) : program_(program) {
    for (const auto& g : program.globals) init_decl(*g);
    // Global initializers may reference other globals; evaluate in order.
    for (const auto& g : program.globals) {
      if (!g->is_array() && g->init) {
        store_scalar(g.get(), eval(*g->init));
      }
    }
  }

  const ast::Program& program_;
  std::map<const ast::VarDecl*, Value> scalars_;
  std::map<const ast::VarDecl*, ArrayStorage> arrays_;
  uint64_t step_limit_ = 500'000'000;
  uint64_t steps_ = 0;

  // Oracle state.
  const ast::For* oracle_loop_ = nullptr;
  int64_t oracle_iter_ = -1;  // current iteration id of the target loop
  std::map<Location, LocationState>* oracle_locations_ = nullptr;
  DependenceReport* oracle_report_ = nullptr;

  // Permutation state.
  const ast::For* permute_loop_ = nullptr;
  uint64_t permute_seed_ = 0;

  // Value carried by the innermost active Return up to its Call site.
  Value return_value_ = Value::of_int(0);

  // ------------------------------------------------------------------------
  void init_decl(const ast::VarDecl& decl) {
    if (!decl.is_array()) {
      scalars_[&decl] =
          decl.elem_type == ast::TypeKind::Double ? Value::of_double(0.0) : Value::of_int(0);
      return;
    }
    ArrayStorage storage;
    storage.elem = decl.elem_type;
    size_t total = 1;
    for (const auto& dim : decl.dims) {
      if (!dim) throw std::runtime_error("array '" + decl.name + "' has an unsized dimension");
      Value v = eval(*dim);
      if (v.as_int() <= 0) throw std::runtime_error("non-positive array dimension");
      storage.dims.push_back(static_cast<size_t>(v.as_int()));
      total *= storage.dims.back();
    }
    if (storage.elem == ast::TypeKind::Double) {
      storage.doubles.assign(total, 0.0);
    } else {
      storage.ints.assign(total, 0);
    }
    arrays_[&decl] = std::move(storage);
  }

  void tick() {
    if (++steps_ > step_limit_) throw std::runtime_error("step limit exceeded");
  }

  // --- Oracle recording ------------------------------------------------------
  void record(const ast::VarDecl* decl, size_t index, bool is_write) {
    if (!oracle_locations_ || oracle_iter_ < 0) return;
    LocationState& state = (*oracle_locations_)[Location{decl, index}];
    auto [it, inserted] = state.first_was_write.emplace(oracle_iter_, is_write);
    if (inserted && !is_write) state.exposed_readers.insert(oracle_iter_);
    if (is_write) state.writers.insert(oracle_iter_);
  }

  // --- Lvalue resolution -------------------------------------------------------
  struct LValue {
    const ast::VarDecl* decl = nullptr;
    bool is_array = false;
    size_t index = 0;
  };

  LValue resolve(const ast::Expr& target) {
    if (const auto* var = target.as<ast::VarRef>()) {
      if (!var->decl) throw std::runtime_error("unresolved variable " + var->name);
      return LValue{var->decl, false, 0};
    }
    if (const auto* arr = target.as<ast::ArrayRef>()) {
      const ast::VarRef* root = arr->root();
      if (!root || !root->decl) throw std::runtime_error("bad array reference");
      auto it = arrays_.find(root->decl);
      if (it == arrays_.end()) throw std::runtime_error("not an array: " + root->name);
      const ArrayStorage& storage = it->second;
      auto subs = arr->subscripts();
      if (subs.size() != storage.dims.size()) {
        throw std::runtime_error("wrong subscript count for " + root->name);
      }
      size_t flat = 0;
      for (size_t d = 0; d < subs.size(); ++d) {
        int64_t idx = eval(*subs[d]).as_int();
        if (idx < 0 || static_cast<size_t>(idx) >= storage.dims[d]) {
          throw std::runtime_error(support::format(
              "index %lld out of bounds [0, %zu) for %s", (long long)idx, storage.dims[d],
              root->name.c_str()));
        }
        flat = flat * storage.dims[d] + static_cast<size_t>(idx);
      }
      return LValue{root->decl, true, flat};
    }
    throw std::runtime_error("assignment target is not an lvalue");
  }

  Value load(const LValue& lv) {
    if (!lv.is_array) {
      record(lv.decl, 0, /*is_write=*/false);
      return scalars_.at(lv.decl);
    }
    record(lv.decl, lv.index, /*is_write=*/false);
    const ArrayStorage& storage = arrays_.at(lv.decl);
    return storage.elem == ast::TypeKind::Double ? Value::of_double(storage.doubles[lv.index])
                                                 : Value::of_int(storage.ints[lv.index]);
  }

  void store(const LValue& lv, const Value& v) {
    if (!lv.is_array) {
      record(lv.decl, 0, /*is_write=*/true);
      store_scalar(lv.decl, v);
      return;
    }
    record(lv.decl, lv.index, /*is_write=*/true);
    ArrayStorage& storage = arrays_.at(lv.decl);
    if (storage.elem == ast::TypeKind::Double) {
      storage.doubles[lv.index] = v.as_double();
    } else {
      storage.ints[lv.index] = v.as_int();
    }
  }

  void store_scalar(const ast::VarDecl* decl, const Value& v) {
    Value& slot = scalars_[decl];
    slot = decl->elem_type == ast::TypeKind::Double ? Value::of_double(v.as_double())
                                                    : Value::of_int(v.as_int());
  }

  // --- Expression evaluation ---------------------------------------------------
  Value eval(const ast::Expr& expr) {
    tick();
    switch (expr.kind) {
      case ast::ExprNodeKind::IntLit:
        return Value::of_int(expr.as<ast::IntLit>()->value);
      case ast::ExprNodeKind::FloatLit:
        return Value::of_double(expr.as<ast::FloatLit>()->value);
      case ast::ExprNodeKind::VarRef:
      case ast::ExprNodeKind::ArrayRef:
        return load(resolve(expr));
      case ast::ExprNodeKind::Binary: {
        const auto* b = expr.as<ast::Binary>();
        if (b->op == ast::BinaryOp::LAnd) {
          if (!eval(*b->lhs).truthy()) return Value::of_int(0);
          return Value::of_int(eval(*b->rhs).truthy());
        }
        if (b->op == ast::BinaryOp::LOr) {
          if (eval(*b->lhs).truthy()) return Value::of_int(1);
          return Value::of_int(eval(*b->rhs).truthy());
        }
        Value l = eval(*b->lhs);
        Value r = eval(*b->rhs);
        return arith(b->op, l, r);
      }
      case ast::ExprNodeKind::Unary: {
        const auto* u = expr.as<ast::Unary>();
        Value v = eval(*u->operand);
        if (u->op == ast::UnaryOp::Neg) {
          return v.type == ast::TypeKind::Double ? Value::of_double(-v.as_double())
                                                 : Value::of_int(-v.as_int());
        }
        return Value::of_int(!v.truthy());
      }
      case ast::ExprNodeKind::Assign: {
        const auto* a = expr.as<ast::Assign>();
        Value v = eval(*a->value);
        LValue lv = resolve(*a->target);
        if (a->op != ast::AssignOp::Assign) {
          Value old = load(lv);
          ast::BinaryOp op;
          switch (a->op) {
            case ast::AssignOp::Add: op = ast::BinaryOp::Add; break;
            case ast::AssignOp::Sub: op = ast::BinaryOp::Sub; break;
            case ast::AssignOp::Mul: op = ast::BinaryOp::Mul; break;
            case ast::AssignOp::Div: op = ast::BinaryOp::Div; break;
            default: op = ast::BinaryOp::Rem; break;
          }
          v = arith(op, old, v);
        }
        store(lv, v);
        return v;
      }
      case ast::ExprNodeKind::IncDec: {
        const auto* i = expr.as<ast::IncDec>();
        LValue lv = resolve(*i->target);
        Value old = load(lv);
        Value neu = arith(i->is_increment() ? ast::BinaryOp::Add : ast::BinaryOp::Sub, old,
                          Value::of_int(1));
        store(lv, neu);
        return i->is_post() ? old : neu;
      }
      case ast::ExprNodeKind::Conditional: {
        const auto* c = expr.as<ast::Conditional>();
        return eval(*c->cond).truthy() ? eval(*c->then_expr) : eval(*c->else_expr);
      }
      case ast::ExprNodeKind::Call: {
        const auto* call = expr.as<ast::Call>();
        if (auto intrinsic = eval_inspector_intrinsic(*call)) return *intrinsic;
        const ast::FuncDecl* callee = program_.find_function(call->callee);
        if (!callee) throw std::runtime_error("call to unknown function " + call->callee);
        if (call->args.size() != callee->params.size()) {
          throw std::runtime_error("wrong argument count for " + call->callee);
        }
        // Scalar parameters are passed by value; array parameters would need
        // aliasing storage, which the mini-C corpus does not use.
        std::vector<Value> args;
        args.reserve(call->args.size());
        for (size_t i = 0; i < call->args.size(); ++i) {
          if (callee->params[i]->is_array()) {
            throw std::runtime_error("interpreter does not support array arguments");
          }
          args.push_back(eval(*call->args[i]));
        }
        // Save and rebind the parameter slots (recursion reuses the decls).
        std::vector<std::pair<const ast::VarDecl*, std::optional<Value>>> saved;
        saved.reserve(args.size());
        for (size_t i = 0; i < args.size(); ++i) {
          const ast::VarDecl* param = callee->params[i].get();
          auto it = scalars_.find(param);
          saved.emplace_back(param, it == scalars_.end()
                                        ? std::optional<Value>()
                                        : std::optional<Value>(it->second));
          record(param, 0, /*is_write=*/true);  // binding defines the slot
          store_scalar(param, args[i]);
        }
        // Only an executed Return carries a value; falling off the end of the
        // body yields 0 (return_value_ may hold a nested call's leftover).
        Flow flow = exec(*callee->body);
        Value result = flow == Flow::Returned ? return_value_ : Value::of_int(0);
        for (auto& [param, old] : saved) {
          if (old) {
            scalars_[param] = *old;
          } else {
            scalars_.erase(param);
          }
        }
        return result;
      }
    }
    throw std::logic_error("unknown expr kind");
  }

  // --- Inspector intrinsics ---------------------------------------------------
  // The OpenMP emitter guards hybrid dual-version loops with calls to
  // sspar_check_* functions; they have no definition in the program (the
  // frontend leaves them unbound), so the interpreter implements them here on
  // top of the sspar::rt inspectors. Signature:
  //   sspar_check_nondecreasing(arr, lo, hi)            — inclusive [lo, hi]
  //   sspar_check_injective(arr, lo, hi)
  //   sspar_check_subset_injective(arr, lo, hi, min)
  // The section is clamped to the array extent; an empty section is
  // vacuously true. Returns int 0/1.
  std::optional<Value> eval_inspector_intrinsic(const ast::Call& call) {
    const bool subset = call.callee == "sspar_check_subset_injective";
    const bool nondecreasing = call.callee == "sspar_check_nondecreasing";
    const bool injective = call.callee == "sspar_check_injective";
    if (!subset && !nondecreasing && !injective) return std::nullopt;
    if (call.args.size() != (subset ? 4u : 3u)) {
      throw std::runtime_error("wrong argument count for " + call.callee);
    }
    const auto* var = call.args[0]->as<ast::VarRef>();
    if (!var || !var->decl || !var->decl->is_array()) {
      throw std::runtime_error(call.callee + " expects an array name as its first argument");
    }
    auto it = arrays_.find(var->decl);
    if (it == arrays_.end() || it->second.elem == ast::TypeKind::Double) {
      throw std::runtime_error(call.callee + " expects an int array");
    }
    const std::vector<int64_t>& ints = it->second.ints;
    int64_t lo = std::max<int64_t>(eval(*call.args[1]).as_int(), 0);
    int64_t hi = std::min<int64_t>(eval(*call.args[2]).as_int(),
                                   static_cast<int64_t>(ints.size()) - 1);
    std::span<const int64_t> section;
    if (hi >= lo) {
      section = std::span<const int64_t>(ints.data() + lo, static_cast<size_t>(hi - lo + 1));
      // The inspection reads the section; make that visible to the oracle.
      for (int64_t k = lo; k <= hi; ++k) record(var->decl, static_cast<size_t>(k), false);
    }
    bool ok;
    if (nondecreasing) {
      ok = rt::is_nondecreasing(section);
    } else if (subset) {
      ok = rt::is_subset_injective(section, eval(*call.args[3]).as_int());
    } else {
      ok = rt::is_injective(section);
    }
    return Value::of_int(ok ? 1 : 0);
  }

  // --- Statement execution ------------------------------------------------------
  Flow exec(const ast::Stmt& stmt) {
    tick();
    switch (stmt.kind) {
      case ast::StmtNodeKind::Empty:
        return Flow::Normal;
      case ast::StmtNodeKind::ExprStmt:
        eval(*stmt.as<ast::ExprStmt>()->expr);
        return Flow::Normal;
      case ast::StmtNodeKind::DeclStmt:
        for (const auto& d : stmt.as<ast::DeclStmt>()->decls) {
          init_decl(*d);
          if (!d->is_array() && d->init) {
            Value v = eval(*d->init);
            record(d.get(), 0, /*is_write=*/true);  // initializer defines the slot
            store_scalar(d.get(), v);
          }
        }
        return Flow::Normal;
      case ast::StmtNodeKind::Compound:
        for (const auto& s : stmt.as<ast::Compound>()->body) {
          Flow flow = exec(*s);
          if (flow != Flow::Normal) return flow;
        }
        return Flow::Normal;
      case ast::StmtNodeKind::If: {
        const auto* s = stmt.as<ast::If>();
        if (eval(*s->cond).truthy()) return exec(*s->then_branch);
        if (s->else_branch) return exec(*s->else_branch);
        return Flow::Normal;
      }
      case ast::StmtNodeKind::While: {
        const auto* s = stmt.as<ast::While>();
        while (eval(*s->cond).truthy()) {
          Flow flow = exec(*s->body);
          if (flow == Flow::Broke) break;
          if (flow == Flow::Returned) return flow;
          tick();
        }
        return Flow::Normal;
      }
      case ast::StmtNodeKind::For:
        return exec_for(*stmt.as<ast::For>());
      case ast::StmtNodeKind::Break:
        return Flow::Broke;
      case ast::StmtNodeKind::Continue:
        return Flow::Continued;
      case ast::StmtNodeKind::Return:
        return_value_ = stmt.as<ast::Return>()->value
                            ? eval(*stmt.as<ast::Return>()->value)
                            : Value::of_int(0);
        return Flow::Returned;
    }
    throw std::logic_error("unknown stmt kind");
  }

  Flow exec_for(const ast::For& loop) {
    if (&loop == permute_loop_) return exec_for_permuted(loop);
    const bool is_oracle_target = (&loop == oracle_loop_);
    if (loop.init) exec(*loop.init);
    int64_t iter = 0;
    int64_t saved_iter = oracle_iter_;
    if (is_oracle_target && oracle_report_) {
      oracle_report_->executed = true;
      ++oracle_report_->invocations;
    }
    std::map<Location, LocationState> invocation_locations;
    std::map<Location, LocationState>* saved_locations = oracle_locations_;
    if (is_oracle_target) oracle_locations_ = &invocation_locations;

    Flow result = Flow::Normal;
    for (;;) {
      if (loop.cond) {
        bool keep;
        if (is_oracle_target) {
          // Condition evaluation is loop bookkeeping, not iteration work.
          oracle_iter_ = -1;
          auto* tmp = oracle_locations_;
          oracle_locations_ = nullptr;
          keep = eval(*loop.cond).truthy();
          oracle_locations_ = tmp;
        } else {
          keep = eval(*loop.cond).truthy();
        }
        if (!keep) break;
      }
      if (is_oracle_target) oracle_iter_ = iter;
      Flow flow = exec(*loop.body);
      if (is_oracle_target) oracle_iter_ = saved_iter;
      if (flow == Flow::Broke) break;
      if (flow == Flow::Returned) {
        result = flow;
        break;
      }
      if (loop.step) {
        if (is_oracle_target) {
          auto* tmp = oracle_locations_;
          oracle_locations_ = nullptr;
          eval(*loop.step);
          oracle_locations_ = tmp;
        } else {
          eval(*loop.step);
        }
      }
      ++iter;
      tick();
    }
    if (is_oracle_target) {
      oracle_locations_ = saved_locations;
      finish_invocation(invocation_locations);
    }
    return result;
  }

  void finish_invocation(const std::map<Location, LocationState>& locations) {
    if (!oracle_report_) return;
    for (const auto& [loc, state] : locations) {
      if (state.writers.empty()) continue;
      bool conflict = false;
      if (state.writers.size() > 1) {
        // Write-write from different iterations: output dependence, unless
        // this is a scalar that every accessing iteration writes first
        // (privatizable).
        bool privatizable = loc.decl && !loc.decl->is_array() && state.exposed_readers.empty();
        conflict = !privatizable;
      }
      if (!conflict) {
        for (int64_t reader : state.exposed_readers) {
          if (state.writers.size() > 1 || !state.writers.count(reader)) {
            conflict = true;
            break;
          }
        }
      }
      if (conflict) {
        ++oracle_report_->conflicting_locations;
        oracle_report_->dependence_free = false;
        if (oracle_report_->first_conflict.empty()) {
          oracle_report_->first_conflict = support::format(
              "%s[%zu]: %zu writers, %zu exposed readers", loc.decl->name.c_str(), loc.index,
              state.writers.size(), state.exposed_readers.size());
        }
      }
    }
  }

  Flow exec_for_permuted(const ast::For& loop) {
    // Canonical form: evaluate bounds once, run iterations in shuffled order.
    if (loop.init) exec(*loop.init);
    const auto* init_expr = loop.init->as<ast::ExprStmt>();
    const auto* init_decl = loop.init->as<ast::DeclStmt>();
    const ast::VarDecl* index = nullptr;
    if (init_expr) {
      const auto* assign = init_expr->expr->as<ast::Assign>();
      if (assign) {
        if (const auto* var = assign->target->as<ast::VarRef>()) index = var->decl;
      }
    } else if (init_decl && init_decl->decls.size() == 1) {
      index = init_decl->decls[0].get();
    }
    if (!index || !loop.cond) throw std::runtime_error("permuted loop is not canonical");
    int64_t lb = scalars_.at(index).as_int();
    const auto* cond = loop.cond->as<ast::Binary>();
    if (!cond) throw std::runtime_error("permuted loop is not canonical");
    // Upper bound: evaluate the rhs once.
    int64_t bound = eval(*cond->rhs).as_int();
    int64_t ub = cond->op == ast::BinaryOp::Le ? bound + 1 : bound;
    if (ub < lb) ub = lb;
    std::vector<int64_t> order;
    order.reserve(static_cast<size_t>(ub - lb));
    for (int64_t v = lb; v < ub; ++v) order.push_back(v);
    std::mt19937_64 rng(permute_seed_);
    std::shuffle(order.begin(), order.end(), rng);
    // Never permute the same loop recursively.
    const ast::For* saved = permute_loop_;
    permute_loop_ = nullptr;
    Flow result = Flow::Normal;
    for (int64_t v : order) {
      store_scalar(index, Value::of_int(v));
      Flow flow = exec(*loop.body);
      if (flow == Flow::Broke) break;
      if (flow == Flow::Returned) {
        result = flow;
        break;
      }
      tick();
    }
    permute_loop_ = saved;
    // Leave the index with its sequential exit value.
    store_scalar(index, Value::of_int(ub < lb ? lb : ub));
    return result;
  }

  void run_function(const std::string& name) {
    const ast::FuncDecl* func = program_.find_function(name);
    if (!func) throw std::runtime_error("no function named " + name);
    exec(*func->body);
  }

  const ast::VarDecl* global(const std::string& name) const {
    const ast::VarDecl* decl = program_.find_global(name);
    if (!decl) throw std::runtime_error("no global named " + name);
    return decl;
  }
};

Interpreter::Interpreter(const ast::Program& program) : impl_(std::make_unique<Impl>(program)) {}
Interpreter::~Interpreter() = default;

void Interpreter::set_scalar(const std::string& name, int64_t value) {
  impl_->store_scalar(impl_->global(name), Value::of_int(value));
}
void Interpreter::set_scalar(const std::string& name, double value) {
  impl_->store_scalar(impl_->global(name), Value::of_double(value));
}

void Interpreter::set_array_int(const std::string& name, std::vector<int64_t> values) {
  ArrayStorage& storage = impl_->arrays_.at(impl_->global(name));
  if (values.size() > storage.ints.size()) throw std::runtime_error("initializer too large");
  std::copy(values.begin(), values.end(), storage.ints.begin());
}

void Interpreter::set_array_double(const std::string& name, std::vector<double> values) {
  ArrayStorage& storage = impl_->arrays_.at(impl_->global(name));
  if (values.size() > storage.doubles.size()) throw std::runtime_error("initializer too large");
  std::copy(values.begin(), values.end(), storage.doubles.begin());
}

int64_t Interpreter::scalar_int(const std::string& name) const {
  return impl_->scalars_.at(impl_->global(name)).as_int();
}
double Interpreter::scalar_double(const std::string& name) const {
  return impl_->scalars_.at(impl_->global(name)).as_double();
}
const std::vector<int64_t>& Interpreter::array_int(const std::string& name) const {
  return impl_->arrays_.at(impl_->global(name)).ints;
}
const std::vector<double>& Interpreter::array_double(const std::string& name) const {
  return impl_->arrays_.at(impl_->global(name)).doubles;
}

std::unique_ptr<Interpreter::Snapshot> Interpreter::snapshot() const {
  auto snap = std::make_unique<Snapshot>();
  for (const auto& g : impl_->program_.globals) {
    if (g->is_array()) {
      snap->arrays[g->name] = impl_->arrays_.at(g.get());
    } else if (g->elem_type == ast::TypeKind::Double) {
      snap->double_scalars[g->name] = impl_->scalars_.at(g.get()).as_double();
    } else {
      snap->int_scalars[g->name] = impl_->scalars_.at(g.get()).as_int();
    }
  }
  return snap;
}

bool Interpreter::equal_state(const Snapshot& a, const Snapshot& b,
                              const std::set<std::string>& exclude, std::string* first_diff) {
  for (const auto& [name, value] : a.int_scalars) {
    if (exclude.count(name)) continue;
    auto it = b.int_scalars.find(name);
    if (it == b.int_scalars.end() || it->second != value) {
      if (first_diff) *first_diff = "scalar " + name;
      return false;
    }
  }
  for (const auto& [name, value] : a.double_scalars) {
    if (exclude.count(name)) continue;
    auto it = b.double_scalars.find(name);
    if (it == b.double_scalars.end() || it->second != value) {
      if (first_diff) *first_diff = "scalar " + name;
      return false;
    }
  }
  for (const auto& [name, storage] : a.arrays) {
    if (exclude.count(name)) continue;
    const auto it = b.arrays.find(name);
    if (it == b.arrays.end()) return false;
    if (storage.ints != it->second.ints || storage.doubles != it->second.doubles) {
      if (first_diff) *first_diff = "array " + name;
      return false;
    }
  }
  return true;
}

void Interpreter::run(const std::string& function) { impl_->run_function(function); }

DependenceReport Interpreter::analyze_loop_dependences(const std::string& function,
                                                       const ast::For* loop) {
  DependenceReport report;
  impl_->oracle_loop_ = loop;
  impl_->oracle_report_ = &report;
  impl_->run_function(function);
  impl_->oracle_loop_ = nullptr;
  impl_->oracle_report_ = nullptr;
  return report;
}

void Interpreter::run_permuted(const std::string& function, const ast::For* loop,
                               uint64_t seed) {
  impl_->permute_loop_ = loop;
  impl_->permute_seed_ = seed;
  impl_->run_function(function);
  impl_->permute_loop_ = nullptr;
}

void Interpreter::set_step_limit(uint64_t limit) { impl_->step_limit_ = limit; }

}  // namespace sspar::interp
