// Static call graph over an ast::Program (interprocedural analysis, step 1).
//
// Nodes are the program's function definitions; an edge f -> g exists when
// f's body contains a call expression bound (by sema) to g. Calls to names
// with no definition in the translation unit are recorded as "unknown
// callees" — the summary layer treats such callers as opaque (they may write
// anything), which keeps the whole-program analysis sound.
//
// Strongly connected components are computed with Tarjan's algorithm; any
// function in a non-trivial SCC (or with a direct self-call) is flagged
// recursive, and the summary layer refuses to summarize it (recursion
// widening is a ROADMAP follow-up). Tarjan completes an SCC only after every
// SCC it reaches is complete, so the SCC completion order *is* a bottom-up
// (reverse topological) order: every callee precedes its callers. That is
// exactly the order in which function summaries must be computed.
#pragma once

#include <map>
#include <vector>

#include "frontend/ast.h"

namespace sspar::ipa {

class CallGraph {
 public:
  struct Node {
    const ast::FuncDecl* function = nullptr;
    std::vector<const ast::FuncDecl*> callees;  // unique, in first-call-site order
    std::vector<const ast::Call*> call_sites;   // every call expression in the body
    bool has_unknown_callee = false;            // calls a name with no definition
    bool called = false;                        // has at least one caller
    int scc = -1;                               // SCC id in completion (bottom-up) order
    bool recursive = false;                     // self-call or SCC of size >= 2
  };

  explicit CallGraph(const ast::Program& program);

  // Null for functions not defined in `program`.
  const Node* node(const ast::FuncDecl* function) const;

  // All functions in bottom-up (reverse topological, SCC-collapsed) order:
  // every callee precedes its callers; members of one SCC are adjacent.
  const std::vector<const ast::FuncDecl*>& bottom_up() const { return bottom_up_; }

  bool is_recursive(const ast::FuncDecl* function) const;
  // Direct unknown callee only; transitive opacity is the summary layer's job.
  bool has_unknown_callee(const ast::FuncDecl* function) const;

  // Members of one SCC in discovery (deterministic) order; empty vector for
  // out-of-range ids. The summary layer hashes whole SCCs into one combined
  // content key so recursive functions are addressable across programs.
  const std::vector<const ast::FuncDecl*>& scc_members(int scc) const;

 private:
  std::map<const ast::FuncDecl*, Node> nodes_;
  std::vector<const ast::FuncDecl*> bottom_up_;
  std::vector<std::vector<const ast::FuncDecl*>> scc_members_;  // by SCC id
};

}  // namespace sspar::ipa
