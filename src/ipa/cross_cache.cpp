#include "ipa/cross_cache.h"

#include <algorithm>

#include "core/facts.h"
#include "frontend/ast.h"
#include "support/text.h"

namespace sspar::ipa {

using sym::ExprPtr;
using sym::Range;

// ---------------------------------------------------------------------------
// ContentHasher
// ---------------------------------------------------------------------------

namespace {

inline uint64_t fnv_step(uint64_t h, uint8_t byte) {
  return (h ^ byte) * 1099511628211ull;
}

}  // namespace

void ContentHasher::mix(std::string_view text) {
  for (unsigned char c : text) {
    a_ = fnv_step(a_, c);
    b_ = fnv_step(b_, static_cast<uint8_t>(c ^ 0x5a));
  }
  // Length terminator: "ab" + "c" must not collide with "a" + "bc".
  a_ = fnv_step(a_, 0xff);
  b_ = fnv_step(b_, 0xee);
}

void ContentHasher::mix(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    a_ = fnv_step(a_, static_cast<uint8_t>(v >> (8 * i)));
    b_ = fnv_step(b_, static_cast<uint8_t>((v >> (8 * i)) ^ 0xa5));
  }
}

// ---------------------------------------------------------------------------
// Fact fingerprints
// ---------------------------------------------------------------------------

uint64_t fingerprint_facts(const core::FactDB& facts, const sym::SymbolTable& symbols) {
  if (facts.all().empty()) return 0;
  // Serialize arrays sorted by name (SymbolIds are session-local).
  std::vector<std::pair<std::string, sym::SymbolId>> arrays;
  for (const auto& [array, unused] : facts.all()) {
    arrays.emplace_back(symbols.name(array), array);
  }
  std::sort(arrays.begin(), arrays.end());
  ContentHasher h;
  h.mix("sspar-facts-v2");
  auto mix_expr = [&](const ExprPtr& e) {
    h.mix(e ? sym::to_string(e, symbols) : std::string("#"));
  };
  auto mix_range = [&](const Range& r) {
    mix_expr(r.lo());
    mix_expr(r.hi());
  };
  for (const auto& [name, array] : arrays) {
    const core::ArrayFacts* af = facts.find(array);
    if (!af) continue;
    h.mix(name);
    for (const auto& f : af->values) {
      h.mix("V");
      mix_expr(f.lo);
      mix_expr(f.hi);
      mix_range(f.value);
    }
    for (const auto& f : af->steps) {
      h.mix("S");
      mix_expr(f.lo);
      mix_expr(f.hi);
      mix_range(f.step);
    }
    for (const auto& f : af->injectives) {
      h.mix("I");
      mix_expr(f.lo);
      mix_expr(f.hi);
      // Presence encoded separately: a +1 offset would alias min_value == -1
      // with the no-threshold case.
      h.mix(f.min_value ? "m" : "-");
      if (f.min_value) h.mix(static_cast<uint64_t>(*f.min_value));
      h.mix(f.from_chain ? "c" : "-");
    }
    for (const auto& f : af->identities) {
      h.mix("D");
      mix_expr(f.lo);
      mix_expr(f.hi);
    }
  }
  uint64_t fp = h.value64();
  return fp == 0 ? 1 : fp;  // 0 is reserved for "no entry facts"
}

std::set<sym::SymbolId> collect_fact_scalar_symbols(const core::FactDB& facts) {
  std::set<sym::SymbolId> mentioned;
  auto collect = [&mentioned](const ExprPtr& e) {
    if (!e) return;
    (void)sym::any_of(e, [&mentioned](const sym::Expr& n) {
      if (n.kind == sym::ExprKind::Sym) mentioned.insert(n.symbol);
      return false;
    });
  };
  auto collect_range = [&collect](const Range& r) {
    collect(r.lo());
    collect(r.hi());
  };
  for (const auto& [array, af_ptr] : facts.all()) {
    (void)array;
    const core::ArrayFacts& af = *af_ptr;
    for (const auto& f : af.values) {
      collect(f.lo);
      collect(f.hi);
      collect_range(f.value);
    }
    for (const auto& f : af.steps) {
      collect(f.lo);
      collect(f.hi);
      collect_range(f.step);
    }
    for (const auto& f : af.injectives) {
      collect(f.lo);
      collect(f.hi);
    }
    for (const auto& f : af.identities) {
      collect(f.lo);
      collect(f.hi);
    }
  }
  return mentioned;
}

// ---------------------------------------------------------------------------
// to_portable
// ---------------------------------------------------------------------------

namespace {

// Declaration namespace of one summary: SymbolId -> name for every symbol
// its expressions may mention. Fails (sets ok=false) on two symbols sharing
// one name — rehydration could not tell them apart.
class DeclNames {
 public:
  void add(const ast::VarDecl* decl) {
    if (!decl || !ok) return;
    auto [it, inserted] = by_symbol_.emplace(decl->symbol, decl->name);
    if (!inserted) return;  // same decl seen twice
    auto [name_it, name_fresh] = by_name_.emplace(decl->name, decl->symbol);
    if (!name_fresh && name_it->second != decl->symbol) ok = false;
  }

  const std::string* name_of(sym::SymbolId symbol) const {
    auto it = by_symbol_.find(symbol);
    return it == by_symbol_.end() ? nullptr : &it->second;
  }

  bool ok = true;

 private:
  std::map<sym::SymbolId, std::string> by_symbol_;
  std::map<std::string, sym::SymbolId> by_name_;
};

bool expr_to_portable(const ExprPtr& e, const DeclNames& names, PortableExpr& out) {
  if (!e) return false;
  out.kind = e->kind;
  out.value = e->value;
  out.coeffs = e->coeffs;
  switch (e->kind) {
    case sym::ExprKind::Sym:
    case sym::ExprKind::IterStart:
    case sym::ExprKind::LoopStart:
    case sym::ExprKind::ArrayElem: {
      const std::string* name = names.name_of(e->symbol);
      if (!name) return false;  // session-local symbol (e.g. a body local)
      out.symbol = *name;
      break;
    }
    default:
      break;
  }
  out.operands.resize(e->operands.size());
  for (size_t i = 0; i < e->operands.size(); ++i) {
    if (!expr_to_portable(e->operands[i], names, out.operands[i])) return false;
  }
  return true;
}

bool range_to_portable(const Range& r, const DeclNames& names, PortableRange& out) {
  if (r.lo()) {
    out.lo.emplace();
    if (!expr_to_portable(r.lo(), names, *out.lo)) return false;
  }
  if (r.hi()) {
    out.hi.emplace();
    if (!expr_to_portable(r.hi(), names, *out.hi)) return false;
  }
  return true;
}

bool effect_to_portable(const core::ArrayWriteEffect& e, const DeclNames& names,
                        PortableEffect& out) {
  if (!e.array) return false;
  out.array = e.array->name;
  out.dims = e.dims;
  if (e.index) {
    out.index.emplace();
    if (!expr_to_portable(e.index, names, *out.index)) return false;
  }
  if (!range_to_portable(e.index_range, names, out.index_range)) return false;
  if (!range_to_portable(e.value, names, out.value)) return false;
  out.conditional = e.conditional;
  out.from_inner = e.from_inner;
  for (const core::AccessGuard& g : e.guards) {
    if (!g.array || !g.index) return false;
    PortableGuard pg;
    pg.array = g.array->name;
    pg.min = g.min;
    if (!expr_to_portable(g.index, names, pg.index)) return false;
    out.guards.push_back(std::move(pg));
  }
  if (e.via_array) {
    out.via_array = e.via_array->name;
    if (!range_to_portable(e.via_domain, names, out.via_domain)) return false;
  }
  if (e.post_inc_subscript) out.post_inc_subscript = e.post_inc_subscript->name;
  return true;
}

}  // namespace

std::optional<PortableSummary> to_portable(const FunctionSummary& summary,
                                           const ast::Program& program,
                                           const sym::SymbolTable& symbols,
                                           bool allow_unanalyzable) {
  if (!summary.function) return std::nullopt;
  if ((!summary.analyzable || summary.opaque) && !allow_unanalyzable) return std::nullopt;

  // The name namespace: the program's global scope plus the function's
  // parameters — exactly what DeclResolver reconstructs on rehydration. The
  // whole global scope (not just declarations the summary mentions) because
  // a context-sensitive summary's entry facts may reference globals the
  // callee itself never touches (e.g. a size symbol bounding another
  // helper's fill values).
  DeclNames names;
  for (const auto& g : program.globals) names.add(g.get());
  for (const auto& p : summary.function->params) names.add(p.get());
  if (!names.ok) return std::nullopt;  // shadowed name: not portable

  PortableSummary out;
  out.function = summary.function->name;
  out.writes_array_params = summary.writes_array_params;
  out.analyzable = summary.analyzable;
  out.opaque = summary.opaque;
  if (!summary.analyzable) {
    out.failure = summary.failure;
    out.failure_line = summary.failure_location.line;
    out.failure_column = summary.failure_location.column;
  }
  out.entry_fingerprint = summary.entry_fingerprint;
  for (const ast::VarDecl* d : summary.may_write_scalars) {
    out.may_write_scalars.push_back(d->name);
  }
  for (const ast::VarDecl* d : summary.may_write_arrays) {
    out.may_write_arrays.push_back(d->name);
  }
  for (const ast::VarDecl* d : summary.definite_scalar_writes) {
    out.definite_scalar_writes.push_back(d->name);
  }
  for (const ast::VarDecl* d : summary.exposed_scalar_reads) {
    out.exposed_scalar_reads.push_back(d->name);
  }
  // std::set<VarDecl*> iterates in pointer order; sort the name lists so the
  // portable form (and everything rehydrated from it) is address-independent.
  std::sort(out.may_write_scalars.begin(), out.may_write_scalars.end());
  std::sort(out.may_write_arrays.begin(), out.may_write_arrays.end());
  std::sort(out.definite_scalar_writes.begin(), out.definite_scalar_writes.end());
  std::sort(out.exposed_scalar_reads.begin(), out.exposed_scalar_reads.end());

  for (const auto& [decl, final] : summary.scalar_finals) {
    PortableRange r;
    if (!range_to_portable(final, names, r)) return std::nullopt;
    out.scalar_finals.emplace(decl->name, std::move(r));
  }
  for (const auto& w : summary.writes) {
    PortableEffect e;
    if (!effect_to_portable(w, names, e)) return std::nullopt;
    out.writes.push_back(std::move(e));
  }
  for (const auto& r : summary.reads) {
    PortableEffect e;
    if (!effect_to_portable(r, names, e)) return std::nullopt;
    out.reads.push_back(std::move(e));
  }
  for (const auto& [array, facts_ptr] : summary.end_facts.all()) {
    const core::ArrayFacts& facts = *facts_ptr;
    const std::string* array_name = names.name_of(array);
    if (!array_name) return std::nullopt;
    PortableArrayFacts pf;
    for (const auto& f : facts.values) {
      PortableValueFact v;
      if (!expr_to_portable(f.lo, names, v.lo)) return std::nullopt;
      if (!expr_to_portable(f.hi, names, v.hi)) return std::nullopt;
      if (!range_to_portable(f.value, names, v.value)) return std::nullopt;
      pf.values.push_back(std::move(v));
    }
    for (const auto& f : facts.steps) {
      PortableStepFact s;
      if (!expr_to_portable(f.lo, names, s.lo)) return std::nullopt;
      if (!expr_to_portable(f.hi, names, s.hi)) return std::nullopt;
      if (!range_to_portable(f.step, names, s.step)) return std::nullopt;
      pf.steps.push_back(std::move(s));
    }
    for (const auto& f : facts.injectives) {
      PortableInjectiveFact s;
      if (!expr_to_portable(f.lo, names, s.lo)) return std::nullopt;
      if (!expr_to_portable(f.hi, names, s.hi)) return std::nullopt;
      s.min_value = f.min_value;
      s.from_chain = f.from_chain;
      pf.injectives.push_back(std::move(s));
    }
    for (const auto& f : facts.identities) {
      PortableIdentityFact s;
      if (!expr_to_portable(f.lo, names, s.lo)) return std::nullopt;
      if (!expr_to_portable(f.hi, names, s.hi)) return std::nullopt;
      pf.identities.push_back(std::move(s));
    }
    out.end_facts.emplace(*array_name, std::move(pf));
  }
  if (summary.return_value) {
    out.return_value.emplace();
    if (!range_to_portable(*summary.return_value, names, *out.return_value)) {
      return std::nullopt;
    }
  }
  (void)symbols;
  return out;
}

// ---------------------------------------------------------------------------
// rehydrate
// ---------------------------------------------------------------------------

namespace {

// Name -> declaration for one target program + function, parameters
// shadowing globals exactly as sema scoping does.
class DeclResolver {
 public:
  DeclResolver(const ast::Program& program, const ast::FuncDecl& function) {
    for (const auto& g : program.globals) by_name_[g->name] = g.get();
    for (const auto& p : function.params) by_name_[p->name] = p.get();
  }

  const ast::VarDecl* resolve(const std::string& name) const {
    auto it = by_name_.find(name);
    return it == by_name_.end() ? nullptr : it->second;
  }

 private:
  std::map<std::string, const ast::VarDecl*> by_name_;
};

ExprPtr expr_from_portable(const PortableExpr& p, const DeclResolver& decls) {
  switch (p.kind) {
    case sym::ExprKind::Const:
      return sym::make_const(p.value);
    case sym::ExprKind::Bottom:
      return sym::make_bottom();
    case sym::ExprKind::Sym:
    case sym::ExprKind::IterStart:
    case sym::ExprKind::LoopStart: {
      const ast::VarDecl* decl = decls.resolve(p.symbol);
      if (!decl) return nullptr;
      if (p.kind == sym::ExprKind::Sym) return sym::make_sym(decl->symbol);
      if (p.kind == sym::ExprKind::IterStart) return sym::make_iter_start(decl->symbol);
      return sym::make_loop_start(decl->symbol);
    }
    case sym::ExprKind::ArrayElem: {
      const ast::VarDecl* decl = decls.resolve(p.symbol);
      if (!decl || p.operands.size() != 1) return nullptr;
      ExprPtr index = expr_from_portable(p.operands[0], decls);
      if (!index) return nullptr;
      return sym::make_array_elem(decl->symbol, index);
    }
    case sym::ExprKind::Add: {
      if (p.coeffs.size() != p.operands.size()) return nullptr;
      ExprPtr acc = sym::make_const(p.value);
      for (size_t i = 0; i < p.operands.size(); ++i) {
        ExprPtr term = expr_from_portable(p.operands[i], decls);
        if (!term) return nullptr;
        acc = sym::add(acc, sym::mul_const(term, p.coeffs[i]));
      }
      return acc;
    }
    case sym::ExprKind::Mul: {
      ExprPtr acc = nullptr;
      for (const PortableExpr& op : p.operands) {
        ExprPtr factor = expr_from_portable(op, decls);
        if (!factor) return nullptr;
        acc = acc ? sym::mul(acc, factor) : factor;
      }
      return acc;
    }
    case sym::ExprKind::Div:
    case sym::ExprKind::Mod: {
      if (p.operands.size() != 2) return nullptr;
      ExprPtr num = expr_from_portable(p.operands[0], decls);
      ExprPtr den = expr_from_portable(p.operands[1], decls);
      if (!num || !den) return nullptr;
      return p.kind == sym::ExprKind::Div ? sym::div_floor(num, den) : sym::mod(num, den);
    }
    case sym::ExprKind::Min:
    case sym::ExprKind::Max: {
      ExprPtr acc = nullptr;
      for (const PortableExpr& op : p.operands) {
        ExprPtr next = expr_from_portable(op, decls);
        if (!next) return nullptr;
        if (!acc) {
          acc = next;
        } else {
          acc = p.kind == sym::ExprKind::Min ? sym::smin(acc, next) : sym::smax(acc, next);
        }
      }
      return acc;
    }
  }
  return nullptr;
}

bool range_from_portable(const PortableRange& p, const DeclResolver& decls, Range& out) {
  ExprPtr lo = nullptr, hi = nullptr;
  if (p.lo) {
    lo = expr_from_portable(*p.lo, decls);
    if (!lo) return false;
  }
  if (p.hi) {
    hi = expr_from_portable(*p.hi, decls);
    if (!hi) return false;
  }
  out = Range::of(lo, hi);
  return true;
}

bool effect_from_portable(const PortableEffect& p, const DeclResolver& decls,
                          core::ArrayWriteEffect& out) {
  out.array = decls.resolve(p.array);
  if (!out.array) return false;
  out.dims = p.dims;
  if (p.index) {
    out.index = expr_from_portable(*p.index, decls);
    if (!out.index) return false;
  }
  if (!range_from_portable(p.index_range, decls, out.index_range)) return false;
  if (!range_from_portable(p.value, decls, out.value)) return false;
  out.conditional = p.conditional;
  out.from_inner = p.from_inner;
  for (const PortableGuard& g : p.guards) {
    core::AccessGuard guard;
    guard.array = decls.resolve(g.array);
    guard.index = expr_from_portable(g.index, decls);
    guard.min = g.min;
    if (!guard.array || !guard.index) return false;
    out.guards.push_back(std::move(guard));
  }
  if (!p.via_array.empty()) {
    out.via_array = decls.resolve(p.via_array);
    if (!out.via_array) return false;
    if (!range_from_portable(p.via_domain, decls, out.via_domain)) return false;
  }
  if (!p.post_inc_subscript.empty()) {
    out.post_inc_subscript = decls.resolve(p.post_inc_subscript);
    if (!out.post_inc_subscript) return false;
  }
  out.summary_origin = nullptr;
  return true;
}

}  // namespace

std::optional<FunctionSummary> rehydrate(const PortableSummary& portable,
                                         const ast::Program& program,
                                         const sym::SymbolTable& symbols) {
  (void)symbols;
  const ast::FuncDecl* function = program.find_function(portable.function);
  if (!function) return std::nullopt;
  DeclResolver decls(program, *function);

  FunctionSummary out;
  out.function = function;
  out.writes_array_params = portable.writes_array_params;
  out.opaque = portable.opaque;
  out.entry_fingerprint = portable.entry_fingerprint;
  auto resolve_into = [&](const std::vector<std::string>& names,
                          std::set<const ast::VarDecl*>& sink) {
    for (const std::string& name : names) {
      const ast::VarDecl* decl = decls.resolve(name);
      if (!decl) return false;
      sink.insert(decl);
    }
    return true;
  };
  if (!resolve_into(portable.may_write_scalars, out.may_write_scalars)) return std::nullopt;
  if (!resolve_into(portable.may_write_arrays, out.may_write_arrays)) return std::nullopt;
  if (!resolve_into(portable.definite_scalar_writes, out.definite_scalar_writes)) {
    return std::nullopt;
  }
  if (!resolve_into(portable.exposed_scalar_reads, out.exposed_scalar_reads)) {
    return std::nullopt;
  }
  for (const auto& [name, r] : portable.scalar_finals) {
    const ast::VarDecl* decl = decls.resolve(name);
    Range range;
    if (!decl || !range_from_portable(r, decls, range)) return std::nullopt;
    out.scalar_finals.emplace(decl, std::move(range));
  }
  for (const PortableEffect& e : portable.writes) {
    core::ArrayWriteEffect effect;
    if (!effect_from_portable(e, decls, effect)) return std::nullopt;
    out.writes.push_back(std::move(effect));
  }
  for (const PortableEffect& e : portable.reads) {
    core::ArrayWriteEffect effect;
    if (!effect_from_portable(e, decls, effect)) return std::nullopt;
    out.reads.push_back(std::move(effect));
  }
  for (const auto& [array_name, pf] : portable.end_facts) {
    const ast::VarDecl* array = decls.resolve(array_name);
    if (!array) return std::nullopt;
    core::ArrayFacts facts;
    for (const auto& f : pf.values) {
      core::ValueFact v;
      v.lo = expr_from_portable(f.lo, decls);
      v.hi = expr_from_portable(f.hi, decls);
      if (!v.lo || !v.hi || !range_from_portable(f.value, decls, v.value)) {
        return std::nullopt;
      }
      facts.values.push_back(std::move(v));
    }
    for (const auto& f : pf.steps) {
      core::StepFact s;
      s.lo = expr_from_portable(f.lo, decls);
      s.hi = expr_from_portable(f.hi, decls);
      if (!s.lo || !s.hi || !range_from_portable(f.step, decls, s.step)) {
        return std::nullopt;
      }
      facts.steps.push_back(std::move(s));
    }
    for (const auto& f : pf.injectives) {
      core::InjectiveFact s;
      s.lo = expr_from_portable(f.lo, decls);
      s.hi = expr_from_portable(f.hi, decls);
      s.min_value = f.min_value;
      s.from_chain = f.from_chain;
      if (!s.lo || !s.hi) return std::nullopt;
      facts.injectives.push_back(std::move(s));
    }
    for (const auto& f : pf.identities) {
      core::IdentityFact s;
      s.lo = expr_from_portable(f.lo, decls);
      s.hi = expr_from_portable(f.hi, decls);
      if (!s.lo || !s.hi) return std::nullopt;
      facts.identities.push_back(std::move(s));
    }
    out.end_facts.restore(array->symbol, std::move(facts));
  }
  if (portable.return_value) {
    Range range;
    if (!range_from_portable(*portable.return_value, decls, range)) return std::nullopt;
    out.return_value = std::move(range);
  }
  out.analyzable = portable.analyzable;
  if (!portable.analyzable) {
    // SCC-member summaries: the content key folds the members' source
    // locations in, so the stored line/column are valid for this program.
    out.failure = portable.failure;
    out.failure_location.line = portable.failure_line;
    out.failure_location.column = portable.failure_column;
  }
  return out;
}

// ---------------------------------------------------------------------------
// CrossProgramCache
// ---------------------------------------------------------------------------

std::shared_ptr<const PortableSummary> CrossProgramCache::find(const CacheKey& key,
                                                               bool* from_store) {
  if (from_store) *from_store = false;
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.lookups;
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  ++it->second.hits;
  if (it->second.preloaded) {
    ++stats_.preloaded_hits;
    if (from_store) *from_store = true;
  }
  return it->second.summary;
}

bool CrossProgramCache::insert_impl(const CacheKey& key, PortableSummary summary,
                                    bool preloaded) {
  auto entry = std::make_shared<const PortableSummary>(std::move(summary));
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = entries_.emplace(key, Entry{std::move(entry), preloaded, 0});
  (void)it;
  if (inserted) {
    if (preloaded) {
      ++stats_.preloaded;
    } else {
      ++stats_.inserts;
    }
    stats_.entries = entries_.size();
  }
  return inserted;
}

void CrossProgramCache::insert(const CacheKey& key, PortableSummary summary) {
  insert_impl(key, std::move(summary), /*preloaded=*/false);
}

void CrossProgramCache::insert_preloaded(const CacheKey& key, PortableSummary summary) {
  insert_impl(key, std::move(summary), /*preloaded=*/true);
}

std::vector<CrossProgramCache::Snapshot> CrossProgramCache::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Snapshot> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    out.push_back(Snapshot{key, entry.summary, entry.preloaded, entry.hits});
  }
  return out;
}

CrossProgramCache::Stats CrossProgramCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

size_t CrossProgramCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace sspar::ipa
