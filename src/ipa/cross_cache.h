// Content-addressed cross-program summary cache (interprocedural analysis,
// step 4 — the scale half of the context-sensitivity upgrade).
//
// A FunctionSummary references AST declarations and arena-interned symbolic
// expressions, so it is bound to the pipeline::Session that computed it.
// Sharing summaries *across* programs (the batch driver analyzing a corpus
// where many entries contain byte-identical helper functions) therefore goes
// through a portable mirror form:
//
//   * PortableSummary — the summary with every decl pointer replaced by the
//     declaration's NAME and every sym::Expr replaced by a PortableExpr tree
//     whose atoms carry symbol names. Converting back ("rehydration")
//     resolves names against the target program (function parameters first,
//     then globals — the same scoping sema used) and re-interns every
//     expression in the target session's arena, so a rehydrated summary is
//     indistinguishable from a locally computed one.
//
//   * CacheKey — a 128-bit content address. The analyzer derives it from the
//     function's printed source, the declarations (name:type:dims) and
//     analyzer assumptions of every global the function references, the
//     content keys of its callees (a summary folds callee effects in, so the
//     address must cover the transitive closure), the AnalyzerOptions bits,
//     and the entry-fact fingerprint for context-sensitive re-summaries.
//     Identical key => identical analysis input => identical summary.
//
//   * CrossProgramCache — a thread-safe map from CacheKey to an immutable
//     PortableSummary, shared by driver::BatchAnalyzer across every corpus
//     entry's session. First writer wins; readers get a shared_ptr snapshot
//     and never block each other. Whether a session hits or misses can
//     depend on scheduling, but the rehydrated summary is always identical
//     to what the session would have computed, so batch verdicts stay
//     deterministic for every thread count.
//
// Analyzable summaries are always cacheable. Unanalyzable summaries carry
// program-specific failure locations, so they are shared only for
// call-graph SCC members (recursion), whose content keys fold the members'
// source locations in — identical key then implies identical locations, and
// the persistent store covers recursive helpers instead of silently
// recomputing their conservative effect sets every run. A summary whose
// expressions mention non-portable symbols (e.g. a function-body local) is
// skipped at insert time, and a rehydration that cannot resolve a name
// reports failure — both degrade to a local recompute, never to a wrong
// summary.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "ipa/summary.h"
#include "symbolic/expr.h"

namespace sspar::ipa {

// ---------------------------------------------------------------------------
// Portable mirror types (no pointers into any session)
// ---------------------------------------------------------------------------

// Mirror of sym::Expr with symbol NAMES for atoms. Rehydration rebuilds the
// expression through the canonicalizing factories, which re-interns it in
// the current arena; because the source expression was canonical, the
// rebuilt node is structurally identical.
struct PortableExpr {
  sym::ExprKind kind = sym::ExprKind::Const;
  int64_t value = 0;                   // Const value / Add constant term
  std::string symbol;                  // declaration name for atom kinds
  std::vector<PortableExpr> operands;  // children
  std::vector<int64_t> coeffs;         // parallel to operands, Add only
};

struct PortableRange {
  std::optional<PortableExpr> lo, hi;  // nullopt = unbounded on that side
};

struct PortableGuard {
  std::string array;
  PortableExpr index;
  int64_t min = 0;
};

// Mirror of core::ArrayWriteEffect (summary_origin is dropped: summaries
// store their effects origin-free and the call site re-attributes them).
struct PortableEffect {
  std::string array;
  size_t dims = 1;
  std::optional<PortableExpr> index;
  PortableRange index_range;
  PortableRange value;
  bool conditional = false;
  bool from_inner = false;
  std::vector<PortableGuard> guards;
  std::string via_array;  // empty = none
  PortableRange via_domain;
  std::string post_inc_subscript;  // empty = none
};

struct PortableValueFact {
  PortableExpr lo, hi;
  PortableRange value;
};
struct PortableStepFact {
  PortableExpr lo, hi;
  PortableRange step;
};
struct PortableInjectiveFact {
  PortableExpr lo, hi;
  std::optional<int64_t> min_value;
  bool from_chain = false;
};
struct PortableIdentityFact {
  PortableExpr lo, hi;
};

struct PortableArrayFacts {
  std::vector<PortableValueFact> values;
  std::vector<PortableStepFact> steps;
  std::vector<PortableInjectiveFact> injectives;
  std::vector<PortableIdentityFact> identities;
};

// Name-keyed mirror of FunctionSummary. Analyzable summaries carry the full
// effect payload; unanalyzable ones (shared for SCC members only, see the
// header comment) carry the conservative may-write sets plus the failure
// text/location, exactly what their callers' havoc paths consume.
struct PortableSummary {
  std::string function;
  std::vector<std::string> may_write_scalars;
  std::vector<std::string> may_write_arrays;
  std::vector<std::string> definite_scalar_writes;
  std::vector<std::string> exposed_scalar_reads;
  bool writes_array_params = false;
  bool analyzable = true;
  bool opaque = false;
  std::string failure;        // non-empty only when !analyzable
  uint32_t failure_line = 0;  // mirror of FunctionSummary::failure_location
  uint32_t failure_column = 0;
  std::map<std::string, PortableRange> scalar_finals;
  std::vector<PortableEffect> writes;
  std::vector<PortableEffect> reads;
  std::map<std::string, PortableArrayFacts> end_facts;
  std::optional<PortableRange> return_value;
  uint64_t entry_fingerprint = 0;
};

// ---------------------------------------------------------------------------
// Content addressing
// ---------------------------------------------------------------------------

// 128-bit content address (two independent FNV-1a streams; collisions across
// a corpus are then out of practical reach).
struct CacheKey {
  uint64_t hi = 0;
  uint64_t lo = 0;
  bool operator<(const CacheKey& o) const {
    return hi != o.hi ? hi < o.hi : lo < o.lo;
  }
  bool operator==(const CacheKey& o) const { return hi == o.hi && lo == o.lo; }
  explicit operator bool() const { return hi != 0 || lo != 0; }
};

// Streaming hasher for content keys and fact fingerprints.
class ContentHasher {
 public:
  void mix(std::string_view text);
  void mix(uint64_t v);
  CacheKey key() const { return CacheKey{a_, b_}; }
  uint64_t value64() const { return a_; }

 private:
  uint64_t a_ = 1469598103934665603ull;   // FNV-1a offset basis
  uint64_t b_ = 14695981039346656037ull;  // independent second stream
};

// ---------------------------------------------------------------------------
// Conversion (implemented in cross_cache.cpp)
// ---------------------------------------------------------------------------

// Null on any non-portable content: a symbol that is neither a global of
// `program` nor a parameter of `summary.function` (a context-sensitive
// summary's entry facts may mention globals the callee itself never
// references, hence the whole program's global scope), or two distinct
// symbols sharing one declaration name (shadowing would mis-resolve on
// rehydration). Unanalyzable summaries convert when `allow_unanalyzable`
// (the SCC path); only their conservative sets and failure are carried.
std::optional<PortableSummary> to_portable(const FunctionSummary& summary,
                                           const ast::Program& program,
                                           const sym::SymbolTable& symbols,
                                           bool allow_unanalyzable = false);

// Resolves names against `program` (parameters of the named function first,
// then globals) and interns every expression in the CURRENT arena. Null when
// the program has no matching function/declaration shape — the caller then
// computes locally.
std::optional<FunctionSummary> rehydrate(const PortableSummary& portable,
                                         const ast::Program& program,
                                         const sym::SymbolTable& symbols);

// Deterministic 64-bit fingerprint of a fact database's content, serialized
// by symbol NAME (so two programs with identical declarations produce the
// same fingerprint for the same facts). 0 for an empty database, never 0
// otherwise — the SummaryDB uses 0 as the "no entry facts" base key.
uint64_t fingerprint_facts(const core::FactDB& facts, const sym::SymbolTable& symbols);

// Every scalar symbol (Sym atom) mentioned by any expression of any fact in
// the database. The analyzer folds the assumption bounds of these symbols
// into a context summary's content address: the fingerprint covers the
// facts' text, but proofs made under the facts may also depend on what is
// assumed about the scalars they mention.
std::set<sym::SymbolId> collect_fact_scalar_symbols(const core::FactDB& facts);

// ---------------------------------------------------------------------------
// The shared cache
// ---------------------------------------------------------------------------

class CrossProgramCache {
 public:
  struct Stats {
    size_t lookups = 0;
    size_t hits = 0;
    size_t misses = 0;
    size_t inserts = 0;    // first-writer inserts (duplicates not counted)
    size_t entries = 0;    // current size; == inserts + preloaded
    size_t preloaded = 0;  // entries loaded from a persistent store
    // Hits served by a preloaded entry. Unlike the raw hit/miss split, this
    // IS deterministic for a fixed input set: a preloaded key is present
    // from the first lookup on, so scheduling cannot flip it.
    size_t preloaded_hits = 0;
    // lookups and entries are deterministic for a fixed input set; the
    // hit/miss split can vary with scheduling when sessions race on the same
    // key (both compute, one inserts) — never the analysis results.
  };

  // One cache entry as exported to the persistent store.
  struct Snapshot {
    CacheKey key;
    std::shared_ptr<const PortableSummary> summary;
    bool preloaded = false;  // came from SummaryStore::preload
    size_t hits = 0;         // find()s served by this entry
  };

  // Counts the lookup and a hit or miss; null on miss. The returned snapshot
  // is immutable and safe to read without the lock. `from_store`, if given,
  // reports whether the hit was served by a preloaded (persistent-store)
  // entry.
  std::shared_ptr<const PortableSummary> find(const CacheKey& key,
                                              bool* from_store = nullptr);

  // First writer wins (a concurrent duplicate insert is dropped; both
  // writers computed the identical summary, so either copy serves).
  void insert(const CacheKey& key, PortableSummary summary);

  // Store-side insert: marks the entry as preloaded so later hits are
  // attributed to the persistent store. Same first-writer-wins contract.
  void insert_preloaded(const CacheKey& key, PortableSummary summary);

  // Every entry with its preloaded/hit bookkeeping, in key order — the
  // store's absorb() input. Entries are shared_ptr snapshots; safe to use
  // after the lock is released.
  std::vector<Snapshot> snapshot() const;

  Stats stats() const;
  size_t size() const;

 private:
  struct Entry {
    std::shared_ptr<const PortableSummary> summary;
    bool preloaded = false;
    size_t hits = 0;
  };

  bool insert_impl(const CacheKey& key, PortableSummary summary, bool preloaded);

  mutable std::mutex mutex_;
  std::map<CacheKey, Entry> entries_;
  Stats stats_;
};

}  // namespace sspar::ipa
