#include "ipa/call_graph.h"

#include <algorithm>

namespace sspar::ipa {

namespace {

// Iterative Tarjan SCC state per node.
struct TarjanState {
  int index = -1;
  int lowlink = -1;
  bool on_stack = false;
};

}  // namespace

CallGraph::CallGraph(const ast::Program& program) {
  // --- Nodes and edges -------------------------------------------------------
  for (const auto& function : program.functions) {
    Node node;
    node.function = function.get();
    ast::walk_exprs(function->body.get(), [&](const ast::Expr* e) {
      const auto* call = e->as<ast::Call>();
      if (!call) return;
      node.call_sites.push_back(call);
      if (!call->decl) {
        node.has_unknown_callee = true;
        return;
      }
      if (std::find(node.callees.begin(), node.callees.end(), call->decl) ==
          node.callees.end()) {
        node.callees.push_back(call->decl);
      }
    });
    nodes_.emplace(function.get(), std::move(node));
  }
  for (auto& [function, node] : nodes_) {
    for (const ast::FuncDecl* callee : node.callees) {
      auto it = nodes_.find(callee);
      if (it != nodes_.end()) it->second.called = true;
    }
  }

  // --- Tarjan SCC (iterative; roots in program order for determinism) --------
  std::map<const ast::FuncDecl*, TarjanState> state;
  for (auto& [function, node] : nodes_) state.emplace(function, TarjanState{});
  int next_index = 0;
  int next_scc = 0;
  std::vector<const ast::FuncDecl*> stack;

  struct Frame {
    const ast::FuncDecl* function;
    size_t next_callee = 0;
  };

  for (const auto& root : program.functions) {
    if (state[root.get()].index != -1) continue;
    std::vector<Frame> frames;
    frames.push_back(Frame{root.get()});
    state[root.get()].index = state[root.get()].lowlink = next_index++;
    state[root.get()].on_stack = true;
    stack.push_back(root.get());
    while (!frames.empty()) {
      Frame& frame = frames.back();
      Node& node = nodes_.at(frame.function);
      TarjanState& ts = state[frame.function];
      if (frame.next_callee < node.callees.size()) {
        const ast::FuncDecl* callee = node.callees[frame.next_callee++];
        auto it = state.find(callee);
        if (it == state.end()) continue;  // callee not defined in this program
        if (it->second.index == -1) {
          it->second.index = it->second.lowlink = next_index++;
          it->second.on_stack = true;
          stack.push_back(callee);
          frames.push_back(Frame{callee});
        } else if (it->second.on_stack) {
          ts.lowlink = std::min(ts.lowlink, it->second.index);
        }
        continue;
      }
      // Frame finished: pop an SCC if this is its root.
      if (ts.lowlink == ts.index) {
        std::vector<const ast::FuncDecl*> members;
        for (;;) {
          const ast::FuncDecl* member = stack.back();
          stack.pop_back();
          state[member].on_stack = false;
          members.push_back(member);
          if (member == frame.function) break;
        }
        // Tarjan pops members root-last; reverse so intra-SCC order follows
        // discovery order (deterministic, roughly program order).
        std::reverse(members.begin(), members.end());
        bool self_loop = false;
        for (const ast::FuncDecl* member : members) {
          const Node& m = nodes_.at(member);
          if (std::find(m.callees.begin(), m.callees.end(), member) != m.callees.end()) {
            self_loop = true;
          }
        }
        for (const ast::FuncDecl* member : members) {
          nodes_.at(member).scc = next_scc;
          nodes_.at(member).recursive = members.size() > 1 || self_loop;
          bottom_up_.push_back(member);
        }
        scc_members_.push_back(std::move(members));
        ++next_scc;
      }
      const ast::FuncDecl* finished = frame.function;
      frames.pop_back();
      if (!frames.empty()) {
        TarjanState& parent = state[frames.back().function];
        parent.lowlink = std::min(parent.lowlink, state[finished].lowlink);
      }
    }
  }
}

const CallGraph::Node* CallGraph::node(const ast::FuncDecl* function) const {
  auto it = nodes_.find(function);
  return it == nodes_.end() ? nullptr : &it->second;
}

bool CallGraph::is_recursive(const ast::FuncDecl* function) const {
  const Node* n = node(function);
  return n && n->recursive;
}

bool CallGraph::has_unknown_callee(const ast::FuncDecl* function) const {
  const Node* n = node(function);
  return n && n->has_unknown_callee;
}

const std::vector<const ast::FuncDecl*>& CallGraph::scc_members(int scc) const {
  static const std::vector<const ast::FuncDecl*> empty;
  if (scc < 0 || static_cast<size_t>(scc) >= scc_members_.size()) return empty;
  return scc_members_[static_cast<size_t>(scc)];
}

}  // namespace sspar::ipa
